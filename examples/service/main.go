// Service: the scaling manager as a network service, end to end on one
// machine. The program embeds a ds2d scaling server on HTTP loopback,
// registers the §5.2 Heron wordcount benchmark as a remote job, and
// drives the streaming-engine simulator through the full Fig. 5 cycle:
// report one 60 s interval of per-instance instrumentation, long-poll
// for the scaling command, apply it via the engine's rescale API, ack
// the redeployment. The decisions are the same ones the in-process
// controller takes — one rescale straight to the optimum (10 FlatMap,
// 20 Count) — but every byte of metrics and every command crosses the
// network boundary.
//
// Run: go run ./examples/service
// Against a real daemon: go run ./cmd/ds2d & then point Client at it.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"ds2"
)

func main() {
	// A ds2d scaling service on HTTP loopback. `go run ./cmd/ds2d`
	// runs the same server standalone.
	server := ds2.NewScalingServer(ds2.ScalingServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, server) }()
	defer ln.Close()
	defer server.Close()
	client := ds2.NewScalingClient("http://"+ln.Addr().String(), nil)

	// The job itself: the Heron-mode wordcount simulator, exactly as
	// in examples/wordcount — except nothing here links the policy.
	g, err := ds2.LinearGraph("source", "flatmap", "count")
	if err != nil {
		log.Fatal(err)
	}
	const (
		perMin     = 1.0 / 60.0
		sourceRate = 1_000_000 * perMin // sentences/s
		flatmapCap = 100_000 * perMin   // sentences/s per instance
		countCap   = 1_000_000 * perMin // words/s per instance
	)
	specs := map[string]ds2.OperatorSpec{
		"flatmap": {
			CostPerRecord: 1 / flatmapCap,
			DeserFrac:     0.1, SerFrac: 0.2,
			Selectivity: 20,
		},
		"count": {
			CostPerRecord: 1 / countCap,
			DeserFrac:     0.1,
		},
	}
	sources := map[string]ds2.SourceSpec{
		"source": {Rate: ds2.ConstantRate(sourceRate), NoBacklog: true},
	}
	initial := ds2.Parallelism{"source": 1, "flatmap": 1, "count": 1}
	sim, err := ds2.NewSimulator(g, specs, sources, initial, ds2.SimulatorConfig{
		Mode:          ds2.ModeHeron,
		RedeployDelay: 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Register the job: graph, deployed parallelism, autoscaler
	// choice, and the decision schedule. The service runs one
	// controlloop.Controller per registered job.
	spec := ds2.JobSpec{
		Name: "wordcount",
		Operators: []ds2.JobOperator{
			{Name: "source"}, {Name: "flatmap"}, {Name: "count"},
		},
		Edges:        [][2]string{{"source", "flatmap"}, {"flatmap", "count"}},
		Initial:      initial,
		Autoscaler:   "ds2",
		IntervalSec:  60,
		MaxIntervals: 5,
	}

	// SimulatedJob plays the engine side of Fig. 5 over HTTP.
	job := ds2.NewSimulatedJob(client, sim, spec, true)
	trace, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== wordcount through the ds2d scaling service (job %s) ==\n", job.ID)
	fmt.Print(trace.String())
	fmt.Printf("deployed: %s (optimal: flatmap=10 count=20)\n", trace.Final)
}
