// Livenexmark: DS2 scaling a really-executing Nexmark query. The Q5
// hot-items query runs on the live dataflow runtime: a deterministic
// bid source paced at a real rate, a keyed sliding-window operator
// counting bids per auction (per-key panes that survive live
// rescales), and a keyed sink accumulating fired window results —
// goroutine-per-instance workers over bounded channels, instrumented
// with wall-clock time.Now() splits exactly as §3 prescribes. When the
// bid rate steps up mid-run, DS2 re-provisions the running query with
// a real drain → snapshot window state → repartition by hash → restart
// redeployment; no fired window is lost or duplicated across it.
//
// Run: go run ./examples/livenexmark        (~6 s wall clock)
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"ds2"
)

func main() {
	cfg := ds2.LiveNexmarkConfig{
		Rate1:  100, // bids/s until the step
		Rate2:  400, // after it
		StepAt: 2.0, // seconds of job time
		Seed:   1,
		// One-second windows sliding every half second: fired hot-item
		// updates arrive at 2x the auction universe per second.
		WindowSize:  time.Second,
		WindowSlide: 500 * time.Millisecond,
	}
	w, err := ds2.LiveNexmarkQuery("q5", cfg)
	if err != nil {
		log.Fatal(err)
	}
	job, err := ds2.NewLiveJob(w.Pipeline, w.Initial, ds2.LiveJobConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	policy, err := ds2.NewPolicy(w.Pipeline.Graph(), ds2.PolicyConfig{})
	if err != nil {
		log.Fatal(err)
	}
	manager, err := ds2.NewScalingManager(policy, w.Initial, ds2.ScalingManagerConfig{TargetRateRatio: 0.8})
	if err != nil {
		log.Fatal(err)
	}

	const interval = 0.5 // seconds — real seconds
	fmt.Printf("== live nexmark q5: %g → %g bids/s at t=%gs, policy interval %gs ==\n",
		cfg.Rate1, cfg.Rate2, cfg.StepAt, interval)
	fmt.Printf("window %v sliding %v over %d auctions; analytic optimum after the step: %s\n\n",
		cfg.WindowSize, cfg.WindowSlide, 100, w.Optimal(cfg.Rate2))

	start := time.Now()
	ctrl, err := ds2.NewController(ds2.NewLiveRuntime(job), ds2.DS2Autoscaler(manager), ds2.ControllerConfig{
		Interval:     interval,
		MaxIntervals: 12,
		OnInterval: func(iv ds2.TraceInterval) {
			action := iv.Action
			if iv.Reason != "" {
				action += ": " + iv.Reason
			}
			fmt.Printf("t=%4.1fs target=%4.0f/s achieved=%4.0f/s %s %s\n",
				iv.Time, iv.Target, iv.Achieved, iv.Parallelism, action)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := ctrl.Run()
	if err != nil {
		log.Fatal(err)
	}
	states := job.Stop()

	fmt.Printf("\ndecisions=%d converged_at=%.1fs final=%s (wall clock %.1fs)\n",
		trace.Decisions, trace.ConvergedAt, trace.Final, time.Since(start).Seconds())

	// The sink's keyed state is the query output: per-auction fired
	// hot-item updates. Every rescale above snapshotted the open window
	// panes and repartitioned them; the firing watermark rode along, so
	// each window fired exactly once.
	type hot struct {
		auction string
		agg     ds2.LiveNexmarkQ5Agg
	}
	var hots []hot
	for auction, st := range states["q5-sink"] {
		hots = append(hots, hot{auction, st.(ds2.LiveNexmarkQ5Agg)})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].agg.Bids != hots[j].agg.Bids {
			return hots[i].agg.Bids > hots[j].agg.Bids
		}
		return hots[i].auction < hots[j].auction
	})
	fmt.Println("\nhottest auctions (fired windows, total bids reported):")
	for i, h := range hots {
		if i == 5 {
			break
		}
		fmt.Printf("  auction %-4s %3d windows %5d bids\n", h.auction, h.agg.Windows, h.agg.Bids)
	}
}
