// Livewordcount: DS2 converging on a job that is actually running.
// Unlike every other example, nothing here is simulated — the pipeline
// executes on the live dataflow runtime (internal/streamrt): a
// zipf-skewed sentence source paced at a real rate, a splitter and a
// keyed counter as goroutine-per-instance workers exchanging records
// over bounded channels, instrumented with wall-clock time.Now()
// measurements exactly as §3 prescribes. The DS2 policy reads those
// true rates through the standard Controller; when the source rate
// steps up mid-run, it re-provisions the running job with a real
// drain → snapshot → repartition-keyed-state → restart redeployment
// and converges within three policy intervals.
//
// Run: go run ./examples/livewordcount        (~6 s wall clock)
package main

import (
	"fmt"
	"log"
	"time"

	"ds2"
)

func main() {
	cfg := ds2.LiveWordCountConfig{
		Rate1:  100, // sentences/s until the step
		Rate2:  400, // after it
		StepAt: 2.0, // seconds of job time
		ZipfS:  1.1, // hot-key skew on the counter's keyed exchange (~14% on one word)
		Seed:   1,
		// Counter capacity ~1333 words/s per instance: the post-step
		// optimum needs two instances, with enough headroom that the
		// zipf hot key (which hashes to a single instance and cannot
		// be split, §4.2.3) does not saturate its owner.
		CountCost: 750 * time.Microsecond,
	}
	pipeline, err := ds2.LiveWordCount(cfg)
	if err != nil {
		log.Fatal(err)
	}
	initial := ds2.Parallelism{
		ds2.LiveWordCountSource: 1,
		ds2.LiveWordCountSplit:  1,
		ds2.LiveWordCountCount:  1,
	}
	job, err := ds2.NewLiveJob(pipeline, initial, ds2.LiveJobConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	policy, err := ds2.NewPolicy(pipeline.Graph(), ds2.PolicyConfig{})
	if err != nil {
		log.Fatal(err)
	}
	// MaxBoost 1 disables the §4.2.1 target-rate correction: under
	// keyed skew the residual shortfall lives on the hot key's
	// instance and no amount of extra parallelism removes it
	// (§4.2.3), so chasing it would add spurious decisions.
	manager, err := ds2.NewScalingManager(policy, initial, ds2.ScalingManagerConfig{MaxBoost: 1})
	if err != nil {
		log.Fatal(err)
	}

	const interval = 0.5 // seconds — real seconds this time
	fmt.Printf("== live wordcount: %g → %g sentences/s at t=%gs, policy interval %gs ==\n",
		cfg.Rate1, cfg.Rate2, cfg.StepAt, interval)
	fmt.Printf("analytic optimum after the step: %s\n\n", ds2.LiveWordCountOptimal(cfg, cfg.Rate2))

	start := time.Now()
	ctrl, err := ds2.NewController(ds2.NewLiveRuntime(job), ds2.DS2Autoscaler(manager), ds2.ControllerConfig{
		Interval:     interval,
		MaxIntervals: 12,
		OnInterval: func(iv ds2.TraceInterval) {
			action := iv.Action
			if iv.Reason != "" {
				action += ": " + iv.Reason
			}
			fmt.Printf("t=%4.1fs target=%4.0f/s achieved=%4.0f/s p99=%5.1fms %s %s\n",
				iv.Time, iv.Target, iv.Achieved, iv.Latency.P99*1e3, iv.Parallelism, action)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := ctrl.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndecisions=%d converged_at=%.1fs final=%s (wall clock %.1fs)\n",
		trace.Decisions, trace.ConvergedAt, trace.Final, time.Since(start).Seconds())
	fmt.Println("every rescale above drained the running job, snapshotted the keyed")
	fmt.Println("word counts, repartitioned them by hash, and restarted — live.")
}
