// Quickstart: the minimal DS2 flow. Build the logical graph, hand the
// policy one interval of aggregated true rates, and read back the
// optimal parallelism for every operator — computed in a single graph
// traversal (paper §3.2).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ds2"
)

func main() {
	// The paper's three-stage word count: a source producing 1M
	// sentences/min, a FlatMap splitting each sentence into 20 words,
	// and a Count aggregating word frequencies.
	g, err := ds2.LinearGraph("source", "flatmap", "count")
	if err != nil {
		log.Fatal(err)
	}

	policy, err := ds2.NewPolicy(g, ds2.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		log.Fatal(err)
	}

	// One decision interval's instrumentation, aggregated per
	// operator (Eq. 5–6). True rates are records per second of
	// *useful* time — what the operator could do if it never waited.
	snapshot := ds2.Snapshot{
		Operators: map[string]ds2.OperatorRates{
			"flatmap": {
				Operator:       "flatmap",
				Instances:      1,
				TrueProcessing: 1_667,  // sentences/s per the rate limit
				TrueOutput:     33_340, // words/s (selectivity 20)
			},
			"count": {
				Operator:       "count",
				Instances:      1,
				TrueProcessing: 16_667, // words/s
			},
		},
		SourceRates: map[string]float64{"source": 16_667}, // sentences/s
	}

	current := ds2.Parallelism{"source": 1, "flatmap": 1, "count": 1}
	decision, err := policy.Decide(snapshot, current, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("current deployment: ", current)
	fmt.Println("optimal deployment: ", decision.Parallelism)
	for _, op := range []string{"flatmap", "count"} {
		fmt.Printf("  %-8s must sustain %8.0f rec/s -> %d instances\n",
			op, decision.TargetRate[op], decision.Parallelism[op])
	}
	fmt.Println("Timely-style total workers:", ds2.TotalWorkers(decision))
}
