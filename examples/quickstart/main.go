// Quickstart: the two levels of the DS2 API. First the decision
// function alone — hand the policy one interval of aggregated true
// rates and read back the optimal parallelism for every operator,
// computed in a single graph traversal (paper §3.2). Then the same
// topology closed-loop: a ds2.Controller drives the scaling manager
// over the simulator until the deployment converges.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ds2"
)

func main() {
	// The paper's three-stage word count: a source producing 1M
	// sentences/min, a FlatMap splitting each sentence into 20 words,
	// and a Count aggregating word frequencies.
	g, err := ds2.LinearGraph("source", "flatmap", "count")
	if err != nil {
		log.Fatal(err)
	}

	policy, err := ds2.NewPolicy(g, ds2.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		log.Fatal(err)
	}

	// --- Level 1: one decision from one interval of metrics ------------
	//
	// True rates are records per second of *useful* time — what the
	// operator could do if it never waited (Eq. 5–6).
	snapshot := ds2.Snapshot{
		Operators: map[string]ds2.OperatorRates{
			"flatmap": {
				Operator:       "flatmap",
				Instances:      1,
				TrueProcessing: 1_667,  // sentences/s per the rate limit
				TrueOutput:     33_340, // words/s (selectivity 20)
			},
			"count": {
				Operator:       "count",
				Instances:      1,
				TrueProcessing: 16_667, // words/s
			},
		},
		SourceRates: map[string]float64{"source": 16_667}, // sentences/s
	}

	current := ds2.Parallelism{"source": 1, "flatmap": 1, "count": 1}
	decision, err := policy.Decide(snapshot, current, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("current deployment: ", current)
	fmt.Println("optimal deployment: ", decision.Parallelism)
	for _, op := range []string{"flatmap", "count"} {
		fmt.Printf("  %-8s must sustain %8.0f rec/s -> %d instances\n",
			op, decision.TargetRate[op], decision.Parallelism[op])
	}
	fmt.Println("Timely-style total workers:", ds2.TotalWorkers(decision))

	// --- Level 2: the closed loop ---------------------------------------
	//
	// The same decision, live: a Controller runs the simulated job one
	// policy interval at a time, feeds each snapshot to the scaling
	// manager, and applies the rescale it proposes.
	sim, err := ds2.NewSimulator(g,
		map[string]ds2.OperatorSpec{
			"flatmap": {CostPerRecord: 1 / 1_667.0, Selectivity: 20},
			"count":   {CostPerRecord: 1 / 16_667.0},
		},
		map[string]ds2.SourceSpec{
			"source": {Rate: ds2.ConstantRate(16_667)},
		},
		current, ds2.SimulatorConfig{Mode: ds2.ModeFlink})
	if err != nil {
		log.Fatal(err)
	}
	manager, err := ds2.NewScalingManager(policy, current, ds2.ScalingManagerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	loop, err := ds2.NewController(
		ds2.NewSimulatorRuntime(sim, true),
		ds2.DS2Autoscaler(manager),
		ds2.ControllerConfig{Interval: 10, MaxIntervals: 6, StableIntervals: 3})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := loop.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclosed loop: %d decision(s), final deployment %s\n",
		trace.Decisions, trace.Final)
}
