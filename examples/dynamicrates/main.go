// Dynamicrates: scaling up AND down under a changing workload — the
// Fig. 7 scenario in miniature. The source runs at 2,000 rec/s for
// five minutes and then halves; DS2 scales the pipeline up during
// phase 1 and releases the surplus instances in phase 2, without
// oscillating in between. The controller's trace doubles as the
// printed timeline.
//
// Run: go run ./examples/dynamicrates
package main

import (
	"fmt"
	"log"

	"ds2"
)

func main() {
	g, err := ds2.LinearGraph("source", "parse", "aggregate")
	if err != nil {
		log.Fatal(err)
	}
	specs := map[string]ds2.OperatorSpec{
		"parse":     {CostPerRecord: 1.0 / 300, Selectivity: 1}, // 300 rec/s/instance
		"aggregate": {CostPerRecord: 1.0 / 500},                 // 500 rec/s/instance
	}
	sources := map[string]ds2.SourceSpec{
		// Phase 1: 2,000 rec/s. Phase 2 (after t=300s): 1,000 rec/s.
		"source": {Rate: ds2.StepRate(300, 2000, 1000)},
	}

	initial := ds2.Parallelism{"source": 1, "parse": 2, "aggregate": 1}
	sim, err := ds2.NewSimulator(g, specs, sources, initial, ds2.SimulatorConfig{
		Mode:          ds2.ModeFlink,
		RedeployDelay: 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	policy, err := ds2.NewPolicy(g, ds2.PolicyConfig{})
	if err != nil {
		log.Fatal(err)
	}
	manager, err := ds2.NewScalingManager(policy, initial, ds2.ScalingManagerConfig{
		WarmupIntervals: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("time(s)  target  achieved  parse  aggregate  action")
	loop, err := ds2.NewController(
		ds2.NewSimulatorRuntime(sim, false),
		ds2.DS2Autoscaler(manager),
		ds2.ControllerConfig{
			Interval:     15,
			MaxIntervals: 40,
			OnInterval: func(iv ds2.TraceInterval) {
				fmt.Printf("%7.0f  %6.0f  %8.0f  %5d  %9d  %s\n",
					iv.Time, iv.Target, iv.Achieved,
					iv.Parallelism["parse"], iv.Parallelism["aggregate"], iv.Action)
			},
		})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := loop.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final deployment:", trace.Final)
}
