// Nexmark: DS2 controlling a windowed query. Q5 (hot items — a sliding
// window over a 500K bids/s stream) is the paper's stress test for
// bursty operators: the window stashes records cheaply and then fires,
// so naive per-interval decisions whipsaw. The scaling manager's
// activation window with max-aggregation (§4.2.1) keeps DS2 stable
// while it converges onto the indicated parallelism of 16.
//
// Run: go run ./examples/nexmark
package main

import (
	"fmt"
	"log"

	"ds2"
	"ds2/internal/nexmark"
)

func main() {
	// The workload definitions (Table 3 rates, per-operator cost
	// models) ship with the repository; see internal/nexmark.
	w, err := nexmark.Query("q5", nexmark.SystemFlink)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s: source rates %v, paper-indicated parallelism %d for %s\n\n",
		w.Query, w.Rates, w.Indicated, w.MainOperator)

	initial := w.InitialParallelism(8)
	sim, err := ds2.NewSimulator(w.Graph, w.Specs, w.Sources, initial, ds2.SimulatorConfig{
		Mode:          ds2.ModeFlink,
		RedeployDelay: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	policy, err := ds2.NewPolicy(w.Graph, ds2.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		log.Fatal(err)
	}
	manager, err := ds2.NewScalingManager(policy, initial, ds2.ScalingManagerConfig{
		WarmupIntervals:     1,
		ActivationIntervals: 2,
		Aggregation:         ds2.AggMax, // ride out the window's fire bursts
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("time(s)  achieved(rec/s)  p99 latency(s)  main-op parallelism")
	for i := 0; i < 12; i++ {
		stats := sim.RunInterval(30)
		fmt.Printf("%7.0f  %15.0f  %14.3f  %d\n",
			stats.End, stats.SourceObserved[nexmark.SrcBids],
			ds2.LatencyQuantile(stats.Latencies, 0.99),
			stats.Parallelism[w.MainOperator])
		if sim.Paused() {
			continue
		}
		snapshot, err := ds2.SimulatorSnapshot(stats)
		if err != nil {
			log.Fatal(err)
		}
		action, err := manager.OnInterval(snapshot)
		if err != nil {
			log.Fatal(err)
		}
		if action != nil {
			fmt.Printf("         -> rescale %s to %d instances\n",
				w.MainOperator, action.New[w.MainOperator])
			if err := sim.Rescale(action.New); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nfinal: %s at %d instances (paper indicated %d)\n",
		w.MainOperator, sim.Parallelism()[w.MainOperator], w.Indicated)
}
