// Nexmark: DS2 controlling a windowed query. Q5 (hot items — a sliding
// window over a 500K bids/s stream) is the paper's stress test for
// bursty operators: the window stashes records cheaply and then fires,
// so naive per-interval decisions whipsaw. The scaling manager's
// activation window with max-aggregation (§4.2.1) keeps DS2 stable
// while the shared control loop converges onto the indicated
// parallelism of 16.
//
// Run: go run ./examples/nexmark
package main

import (
	"fmt"
	"log"

	"ds2"
	"ds2/internal/nexmark"
)

func main() {
	// The workload definitions (Table 3 rates, per-operator cost
	// models) ship with the repository; see internal/nexmark.
	w, err := nexmark.Query("q5", nexmark.SystemFlink)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s: source rates %v, paper-indicated parallelism %d for %s\n\n",
		w.Query, w.Rates, w.Indicated, w.MainOperator)

	initial := w.InitialParallelism(8)
	sim, err := ds2.NewSimulator(w.Graph, w.Specs, w.Sources, initial, ds2.SimulatorConfig{
		Mode:          ds2.ModeFlink,
		RedeployDelay: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	policy, err := ds2.NewPolicy(w.Graph, ds2.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		log.Fatal(err)
	}
	manager, err := ds2.NewScalingManager(policy, initial, ds2.ScalingManagerConfig{
		WarmupIntervals:     1,
		ActivationIntervals: 2,
		Aggregation:         ds2.AggMax, // ride out the window's fire bursts
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("time(s)  achieved(rec/s)  p99 latency(s)  main-op parallelism")
	loop, err := ds2.NewController(
		ds2.NewSimulatorRuntime(sim, false),
		ds2.DS2Autoscaler(manager),
		ds2.ControllerConfig{
			Interval:     30,
			MaxIntervals: 12,
			OnInterval: func(iv ds2.TraceInterval) {
				fmt.Printf("%7.0f  %15.0f  %14.3f  %d\n",
					iv.Time, iv.Achieved, iv.Latency.P99, iv.Parallelism[w.MainOperator])
				if iv.Action != "" {
					fmt.Printf("         -> %s %s to %d instances\n",
						iv.Action, w.MainOperator, iv.Applied[w.MainOperator])
				}
			},
		})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := loop.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: %s at %d instances (paper indicated %d)\n",
		w.MainOperator, trace.Final[w.MainOperator], w.Indicated)
}
