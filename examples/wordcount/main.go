// Wordcount: closed-loop autoscaling end to end. The word-count
// topology runs on the streaming-engine simulator in Heron mode,
// starting under-provisioned at one instance per operator; the DS2
// scaling manager observes one 60 s metrics interval and jumps
// directly to the backpressure-free optimum (10 FlatMap, 20 Count) —
// the §5.2 experiment as a program. The whole loop — run an interval,
// consult the manager, apply the rescale — is one ds2.Controller.
//
// Run: go run ./examples/wordcount
package main

import (
	"fmt"
	"log"

	"ds2"
)

func main() {
	g, err := ds2.LinearGraph("source", "flatmap", "count")
	if err != nil {
		log.Fatal(err)
	}

	const (
		perMin     = 1.0 / 60.0
		sourceRate = 1_000_000 * perMin // sentences/s
		flatmapCap = 100_000 * perMin   // sentences/s per instance
		countCap   = 1_000_000 * perMin // words/s per instance
	)
	specs := map[string]ds2.OperatorSpec{
		"flatmap": {
			CostPerRecord: 1 / flatmapCap,
			DeserFrac:     0.1, SerFrac: 0.2,
			Selectivity: 20, // words per sentence
		},
		"count": {
			CostPerRecord: 1 / countCap,
			DeserFrac:     0.1,
		},
	}
	sources := map[string]ds2.SourceSpec{
		"source": {Rate: ds2.ConstantRate(sourceRate), NoBacklog: true},
	}

	initial := ds2.Parallelism{"source": 1, "flatmap": 1, "count": 1}
	sim, err := ds2.NewSimulator(g, specs, sources, initial, ds2.SimulatorConfig{
		Mode:          ds2.ModeHeron,
		RedeployDelay: 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	policy, err := ds2.NewPolicy(g, ds2.PolicyConfig{})
	if err != nil {
		log.Fatal(err)
	}
	manager, err := ds2.NewScalingManager(policy, initial, ds2.ScalingManagerConfig{
		ActivationIntervals: 1,
		TargetRateRatio:     1.0,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("time(s)  target(rec/s)  achieved(rec/s)  deployment")
	loop, err := ds2.NewController(
		ds2.NewSimulatorRuntime(sim, false), // let the 20 s redeployment ride through the next interval
		ds2.DS2Autoscaler(manager),
		ds2.ControllerConfig{
			Interval:     60,
			MaxIntervals: 8,
			OnInterval: func(iv ds2.TraceInterval) {
				fmt.Printf("%7.0f  %13.0f  %15.0f  %s\n",
					iv.Time, iv.Target, iv.Achieved, iv.Parallelism)
				if iv.Action != "" {
					fmt.Printf("         -> %s to %s (%s)\n", iv.Action, iv.Applied, iv.Reason)
				}
			},
		})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := loop.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final deployment:", trace.Final)
}
