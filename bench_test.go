// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§5), regenerating the corresponding rows and
// reporting the headline quantities as custom metrics, plus
// micro-benchmarks of the policy's decision path (the paper's claim
// that a decision costs "a few seconds" is dominated by metric
// collection — the computation itself is microseconds).
//
// Run with: go test -bench=. -benchmem
package ds2_test

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"ds2"
	"ds2/internal/experiments"
)

// BenchmarkFig1Fig6DS2vsDhalion regenerates Figures 1 and 6: both
// controllers drive the under-provisioned wordcount on the Heron-mode
// engine. Reported metrics: decisions and convergence time of each.
func BenchmarkFig1Fig6DS2vsDhalion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunWordcountComparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.DS2.Decisions), "ds2-decisions")
		b.ReportMetric(r.DS2.ConvergedAt, "ds2-converge-s")
		b.ReportMetric(float64(r.Dhalion.Decisions), "dhalion-decisions")
		b.ReportMetric(r.Dhalion.ConvergedAt, "dhalion-converge-s")
	}
}

// BenchmarkFig7DynamicScaling regenerates Figure 7: the two-phase
// wordcount under DS2 on the Flink-mode engine.
func BenchmarkFig7DynamicScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunDynamicScaling()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Timeline.Decisions), "decisions")
		b.ReportMetric(float64(r.Phase1Final["flatmap"]), "phase1-flatmap")
		b.ReportMetric(float64(r.Phase2Final["flatmap"]), "phase2-flatmap")
	}
}

// BenchmarkTable4Convergence regenerates Table 4: all six Nexmark
// queries from six initial configurations each. Reported metric: the
// maximum number of steps DS2 needed (paper: 3).
func BenchmarkTable4Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunConvergenceTable()
		if err != nil {
			b.Fatal(err)
		}
		oneStep := 0
		for _, c := range r.Cells {
			if len(c.Steps) == 1 {
				oneStep++
			}
		}
		b.ReportMetric(float64(r.MaxSteps), "max-steps")
		b.ReportMetric(float64(oneStep), "one-step-cells")
	}
}

// BenchmarkFig8Accuracy regenerates Figure 8: the parallelism sweep of
// every query on the Flink-mode engine.
func BenchmarkFig8Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAccuracy(nil)
		if err != nil {
			b.Fatal(err)
		}
		// Fraction of indicated configurations sustaining the target.
		sustained, total := 0, 0
		for _, row := range r.Rows {
			if row.Indicated {
				total++
				if row.Achieved >= row.Target*0.98 {
					sustained++
				}
			}
		}
		b.ReportMetric(float64(sustained)/float64(total), "indicated-sustain-frac")
	}
}

// BenchmarkFig9TimelyLatency regenerates Figure 9: per-epoch latency
// CDF inputs for Q3, Q5, Q11 in Timely mode.
func BenchmarkFig9TimelyLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTimelyLatency(nil, 60)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, row := range r.Rows {
			if row.Indicated && row.Latency.P99 > worst {
				worst = row.Latency.P99
			}
		}
		b.ReportMetric(worst, "worst-indicated-p99-s")
	}
}

// BenchmarkFig10Overhead regenerates Figure 10: instrumentation on/off
// latency for every query on both systems.
func BenchmarkFig10Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunOverhead(60)
		if err != nil {
			b.Fatal(err)
		}
		maxFlink, maxTimely := 0.0, 0.0
		for _, row := range r.Rows {
			if row.System == "flink" && row.OverheadPct > maxFlink {
				maxFlink = row.OverheadPct
			}
			if row.System == "timely" && row.OverheadPct > maxTimely {
				maxTimely = row.OverheadPct
			}
		}
		b.ReportMetric(maxFlink, "max-flink-overhead-pct")
		b.ReportMetric(maxTimely, "max-timely-overhead-pct")
	}
}

// BenchmarkSkew regenerates the §4.2.3 skew experiment.
func BenchmarkSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSkew()
		if err != nil {
			b.Fatal(err)
		}
		maxDecisions := 0
		for _, res := range r.Results {
			if res.Decisions > maxDecisions {
				maxDecisions = res.Decisions
			}
		}
		b.ReportMetric(float64(maxDecisions), "max-decisions")
	}
}

// BenchmarkAblationBaselines compares DS2 vs Dhalion vs the
// queueing-theory controller end to end.
func BenchmarkAblationBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBaselines()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.Decisions), row.Controller+"-decisions")
		}
	}
}

// BenchmarkAblationBoost measures the target-rate-ratio correction.
func BenchmarkAblationBoost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBoostAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			name := "boost-off-achieved-frac"
			if row.BoostEnabled {
				name = "boost-on-achieved-frac"
			}
			b.ReportMetric(row.Achieved/row.Target, name)
		}
	}
}

// BenchmarkAblationActivation measures activation-window stability on
// the bursty Q5 window.
func BenchmarkAblationActivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunActivationAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].Decisions), "every-interval-decisions")
		b.ReportMetric(float64(r.Rows[1].Decisions), "windowed-decisions")
	}
}

// --- micro-benchmarks ----------------------------------------------------

// benchPipeline builds a deep pipeline with synthetic rates for policy
// micro-benchmarks.
func benchPipeline(depth int) (*ds2.Graph, ds2.Parallelism, ds2.Snapshot) {
	names := make([]string, depth)
	names[0] = "src"
	for i := 1; i < depth; i++ {
		names[i] = string(rune('a'+(i-1)%26)) + string(rune('0'+(i-1)/26))
	}
	g, err := ds2.LinearGraph(names...)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))
	cur := ds2.Parallelism{"src": 1}
	snap := ds2.Snapshot{
		Operators:   map[string]ds2.OperatorRates{},
		SourceRates: map[string]float64{"src": 1_000_000},
	}
	for _, n := range names[1:] {
		p := 1 + rng.Intn(30)
		cur[n] = p
		rate := float64(p) * (1000 + rng.Float64()*100_000)
		snap.Operators[n] = ds2.OperatorRates{
			Operator: n, Instances: p,
			TrueProcessing: rate, TrueOutput: rate * (0.2 + rng.Float64()),
		}
	}
	return g, cur, snap
}

// BenchmarkPolicyDecide measures one full Eq. 7–8 evaluation — the
// cost of a DS2 scaling decision once metrics are in hand.
func BenchmarkPolicyDecide(b *testing.B) {
	for _, depth := range []int{4, 16, 64} {
		b.Run(map[int]string{4: "depth4", 16: "depth16", 64: "depth64"}[depth], func(b *testing.B) {
			g, cur, snap := benchPipeline(depth)
			pol, err := ds2.NewPolicy(g, ds2.PolicyConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pol.Decide(snap, cur, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkManagerInterval measures one scaling-manager step including
// the policy evaluation.
func BenchmarkManagerInterval(b *testing.B) {
	g, cur, snap := benchPipeline(16)
	pol, err := ds2.NewPolicy(g, ds2.PolicyConfig{})
	if err != nil {
		b.Fatal(err)
	}
	mgr, err := ds2.NewScalingManager(pol, cur, ds2.ScalingManagerConfig{ActivationIntervals: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.OnInterval(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerInterval measures one full controller cycle on
// the simulator-backed loop — advance an interval, build the snapshot,
// evaluate the scaling manager, apply any action — the per-interval
// cost of the controlloop path that every experiment and example now
// takes.
func BenchmarkControllerInterval(b *testing.B) {
	g, err := ds2.LinearGraph("src", "map", "sink")
	if err != nil {
		b.Fatal(err)
	}
	initial := ds2.Parallelism{"src": 1, "map": 8, "sink": 2}
	sim, err := ds2.NewSimulator(g,
		map[string]ds2.OperatorSpec{
			"map":  {CostPerRecord: 0.00005, Selectivity: 1},
			"sink": {CostPerRecord: 0.00001},
		},
		map[string]ds2.SourceSpec{"src": {Rate: ds2.ConstantRate(100_000)}},
		initial,
		ds2.SimulatorConfig{Mode: ds2.ModeFlink, Tick: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	pol, err := ds2.NewPolicy(g, ds2.PolicyConfig{})
	if err != nil {
		b.Fatal(err)
	}
	rt := ds2.NewSimulatorRuntime(sim, true)
	cfg := ds2.ControllerConfig{Interval: 1, MaxIntervals: 1 << 30}
	var loop *ds2.Controller
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rebuild the manager and controller periodically so both the
		// accumulated trace and the manager's never-firing activation
		// window stay bounded, and the measurement reflects
		// per-interval work rather than slice growth. The simulator
		// (the actual job state) lives in the runtime and persists
		// across rebuilds.
		if i%1024 == 0 {
			// A huge activation window keeps the manager evaluating
			// without ever rescaling, so every iteration measures the
			// same work.
			mgr, err := ds2.NewScalingManager(pol, initial, ds2.ScalingManagerConfig{ActivationIntervals: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			loop, err = ds2.NewController(rt, ds2.DS2Autoscaler(mgr), cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		if _, err := loop.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSecond measures simulating one virtual second of a
// three-stage pipeline at 100K records/s.
func BenchmarkSimulatorSecond(b *testing.B) {
	g, err := ds2.LinearGraph("src", "map", "sink")
	if err != nil {
		b.Fatal(err)
	}
	sim, err := ds2.NewSimulator(g,
		map[string]ds2.OperatorSpec{
			"map":  {CostPerRecord: 0.00005, Selectivity: 1},
			"sink": {CostPerRecord: 0.00001},
		},
		map[string]ds2.SourceSpec{"src": {Rate: ds2.ConstantRate(100_000)}},
		ds2.Parallelism{"src": 1, "map": 8, "sink": 2},
		ds2.SimulatorConfig{Mode: ds2.ModeFlink})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(1)
		if (i+1)%100 == 0 {
			// Drain accumulated latency samples outside the timer so
			// the measurement is the steady-state tick kernel, not the
			// growth of an unboundedly accumulating sample buffer (no
			// real caller runs 1000s of virtual seconds between
			// Collects).
			b.StopTimer()
			sim.Collect()
			b.StartTimer()
		}
	}
	b.StopTimer()
	sim.Collect()
}

// BenchmarkMetricsManagerRecord measures the per-event cost of the
// instrumentation aggregation path.
func BenchmarkMetricsManagerRecord(b *testing.B) {
	mgr, err := ds2.NewMetricsManager(10)
	if err != nil {
		b.Fatal(err)
	}
	id := ds2.InstanceID{Operator: "map", Index: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Record(ds2.MetricsEvent{Time: float64(i) * 1e-6, ID: id, Kind: ds2.EvRecordsProcessed, Value: 1})
	}
}

// BenchmarkMetricsManagerRecordAll measures the batched ingestion
// path: one lock round-trip per 64-event flush instead of one per
// event.
func BenchmarkMetricsManagerRecordAll(b *testing.B) {
	mgr, err := ds2.NewMetricsManager(10)
	if err != nil {
		b.Fatal(err)
	}
	id := ds2.InstanceID{Operator: "map", Index: 3}
	const batch = 64
	events := make([]ds2.MetricsEvent, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range events {
			events[j] = ds2.MetricsEvent{
				Time: float64(i*batch+j) * 1e-6, ID: id,
				Kind: ds2.EvRecordsProcessed, Value: 1,
			}
		}
		mgr.RecordAll(events)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkServiceIngest measures the scaling service's metrics
// ingestion path end to end over HTTP loopback: one report of 33
// per-instance windows per policy interval, consumed by a per-job
// decision loop (hold autoscaler, so the measurement is ingestion +
// interval aggregation, not policy work). Reported metric: windows
// ingested per second.
func BenchmarkServiceIngest(b *testing.B) {
	srv := ds2.NewScalingServer(ds2.ScalingServerConfig{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ds2.NewScalingClient(ts.URL, ts.Client())

	const instances = 32
	id, err := client.Register(ds2.JobSpec{
		Name:        "ingest-bench",
		Operators:   []ds2.JobOperator{{Name: "src"}, {Name: "op"}},
		Edges:       [][2]string{{"src", "op"}},
		Initial:     ds2.Parallelism{"src": 1, "op": instances},
		Autoscaler:  "hold",
		IntervalSec: 1, MaxIntervals: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}

	report := func(t float64) ds2.MetricsReport {
		rep := ds2.MetricsReport{
			Start:          t,
			End:            t + 1,
			TargetRates:    map[string]float64{"src": 100_000},
			SourceObserved: map[string]float64{"src": 100_000},
			Parallelism:    ds2.Parallelism{"src": 1, "op": instances},
		}
		rep.Windows = append(rep.Windows, ds2.WindowMetrics{
			ID: ds2.InstanceID{Operator: "src"}, Window: 1,
			Serialization: 0.1, Pushed: 100_000,
		})
		for i := 0; i < instances; i++ {
			rep.Windows = append(rep.Windows, ds2.WindowMetrics{
				ID: ds2.InstanceID{Operator: "op", Index: i}, Window: 1,
				Processing: 0.5, Processed: 100_000.0 / instances,
			})
		}
		return rep
	}

	b.ResetTimer()
	windows := 0
	for i := 0; i < b.N; i++ {
		rep := report(float64(i))
		for {
			state, err := client.Report(id, rep)
			if err == nil {
				if state != ds2.JobRunning {
					b.Fatalf("job state %s", state)
				}
				break
			}
			if !errors.Is(err, ds2.ErrReportBacklogged) {
				b.Fatal(err)
			}
			// The bounded ingestion buffer pushed back (HTTP 429):
			// give the decision loop a beat and retry, as a real
			// reporter would.
			time.Sleep(time.Millisecond)
		}
		windows += len(rep.Windows)
	}
	b.StopTimer()
	b.ReportMetric(float64(windows)/b.Elapsed().Seconds(), "windows/s")
}

// BenchmarkLiveExchangeRecord measures the live runtime's per-record
// overhead with zero user cost: one record generated at the source,
// hash-exchanged through a stateless splitter and a keyed counter
// (goroutine hop + bounded channel + codec + wall-clock
// instrumentation at every stage). Reported metric: records/s
// end to end.
func BenchmarkLiveExchangeRecord(b *testing.B) {
	keys := [256]string{}
	for i := range keys {
		keys[i] = "k" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	p, err := ds2.NewLivePipeline().
		AddSource("src", ds2.LiveSourceSpec{
			Rate:  func(float64) float64 { return 1e12 }, // always behind schedule: emit flat out
			Next:  func(seq int64) (string, any) { return "", keys[seq%256] },
			Limit: int64(b.N),
		}).
		AddOperator("split", ds2.LiveOperatorSpec{
			Process: func(_ any, _ string, v any, emit ds2.LiveEmit) any {
				s := v.(string)
				emit(s, s)
				return nil
			},
		}).
		AddOperator("count", ds2.LiveOperatorSpec{
			Keyed: true,
			Process: func(state any, _ string, _ any, _ ds2.LiveEmit) any {
				c, _ := state.(int)
				return c + 1
			},
			Codec: ds2.LiveStringCodec{},
		}).
		AddEdge("src", "split").
		AddEdge("split", "count").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// A huge latency-sampling stride keeps the sink's sample buffer
	// from accumulating O(b.N) entries inside the timed region (the
	// benchmark never Collects — same discipline as
	// BenchmarkSimulatorSecond's drain).
	job, err := ds2.NewLiveJob(p, ds2.Parallelism{"src": 1, "split": 1, "count": 1},
		ds2.LiveJobConfig{ChannelCapacity: 256, LatencySampleEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	job.Wait()
	b.StopTimer()
	job.Stop()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkLiveNexmark measures the live runtime's per-record overhead
// through real Nexmark pipelines with zero pacing cost: q1 is the
// map-filter shape (JSON bid codec + keyed sink), q5 adds the keyed
// sliding-window path (pane insert, due-window firing, fired-result
// exchange). Reported metric: source records/s end to end.
func BenchmarkLiveNexmark(b *testing.B) {
	for _, query := range []string{"q1", "q5"} {
		b.Run(query, func(b *testing.B) {
			zero := map[string]time.Duration{}
			for _, stage := range []string{"q1-map", "q1-sink", "q5-window", "q5-sink"} {
				zero[stage] = 0
			}
			w, err := ds2.LiveNexmarkQuery(query, ds2.LiveNexmarkConfig{
				Rate1: 1e12, // always behind schedule: emit flat out
				Seed:  1,
				Limit: int64(b.N),
				Costs: zero,
				// Small windows so q5 really fires inside the timed
				// region instead of only buffering panes.
				WindowSize:  50 * time.Millisecond,
				WindowSlide: 50 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			job, err := ds2.NewLiveJob(w.Pipeline, w.Initial,
				ds2.LiveJobConfig{ChannelCapacity: 256, LatencySampleEvery: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			job.Wait()
			b.StopTimer()
			job.Stop()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkLiveNexmarkObserved is BenchmarkLiveNexmark/q1 with the
// metrics exporter attached: every batch flush bumps pre-registered
// atomic counters and the sink samples one latency observation per
// 1024 records. The records/s delta against the unobserved q1 run is
// the exporter's whole-pipeline overhead — the zero-overhead telemetry
// claim, measured.
func BenchmarkLiveNexmarkObserved(b *testing.B) {
	zero := map[string]time.Duration{"q1-map": 0, "q1-sink": 0}
	reg := ds2.NewObsRegistry()
	w, err := ds2.LiveNexmarkQuery("q1", ds2.LiveNexmarkConfig{
		Rate1: 1e12, // always behind schedule: emit flat out
		Seed:  1,
		Limit: int64(b.N),
		Costs: zero,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	job, err := ds2.NewLiveJob(w.Pipeline, w.Initial,
		ds2.LiveJobConfig{ChannelCapacity: 256, LatencySampleEvery: 1 << 30, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	job.Wait()
	b.StopTimer()
	job.Stop()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// nilCodec moves zero-byte record values: the remote-exchange
// benchmark measures transport overhead (framing, batching, credit,
// sockets), not payload encoding.
type nilCodec struct{}

func (nilCodec) Encode(any) []byte                     { return nil }
func (nilCodec) AppendEncode(dst []byte, _ any) []byte { return dst }
func (nilCodec) Decode([]byte) any                     { return nil }

// BenchmarkRemoteExchangeRecord measures the distributed exchange: two
// worker processes (in-process Workers over real loopback TCP), a
// single source on worker 0 round-robinning to two sink instances —
// one local, one on worker 1 — so exactly half of all records cross
// the framed transport. Per-record cost covers batch encode-at-flush,
// length-prefixed framing, socket writes with coalescing, receive-side
// batch rebuild, and credit returns. Reported metrics: end-to-end
// records/s, and records/s over the remote link (b.N/2 records).
func BenchmarkRemoteExchangeRecord(b *testing.B) {
	p, err := ds2.NewLivePipeline().
		AddSource("src", ds2.LiveSourceSpec{
			Rate:  func(float64) float64 { return 1e12 }, // always behind schedule: emit flat out
			Next:  func(seq int64) (string, any) { return "", nil },
			Limit: int64(b.N),
		}).
		AddOperator("sink", ds2.LiveOperatorSpec{
			Process: func(any, string, any, ds2.LiveEmit) any { return nil },
			Codec:   nilCodec{},
		}).
		AddEdge("src", "sink").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]string, 2)
	for i := range addrs {
		w := ds2.NewLiveWorker(i, map[string]*ds2.LivePipeline{"bench": p}, nil)
		addr, err := w.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		addrs[i] = addr
	}
	b.ResetTimer()
	cluster, err := ds2.NewLiveCluster(p, "bench", ds2.Parallelism{"src": 1, "sink": 2}, addrs,
		ds2.LiveJobConfig{ChannelCapacity: 256, LatencySampleEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	cluster.Wait()
	b.StopTimer()
	cluster.Stop()
	cluster.Close()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(b.N)/2/b.Elapsed().Seconds(), "link-records/s")
}

// BenchmarkRemoteNexmarkQ1 is BenchmarkLiveNexmark/q1 deployed over
// two worker processes: the bid stream crosses the framed transport
// into the remote q1-map instance and the converted results cross
// again into the keyed sinks. On a multi-core host the aggregate
// should exceed the single-process q1 run; on a single-CPU host both
// processes share one core and the wire overhead is pure cost — the
// records/s metric is the honest measurement either way.
func BenchmarkRemoteNexmarkQ1(b *testing.B) {
	zero := map[string]time.Duration{"q1-map": 0, "q1-sink": 0}
	w, err := ds2.LiveNexmarkQuery("q1", ds2.LiveNexmarkConfig{
		Rate1:       1e12, // always behind schedule: emit flat out
		Seed:        1,
		Limit:       int64(b.N),
		Costs:       zero,
		Distributed: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]string, 2)
	for i := range addrs {
		wk := ds2.NewLiveWorker(i, map[string]*ds2.LivePipeline{"q1": w.Pipeline}, nil)
		addr, err := wk.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer wk.Close()
		addrs[i] = addr
	}
	b.ResetTimer()
	cluster, err := ds2.NewLiveCluster(w.Pipeline, "q1",
		ds2.Parallelism{"bids": 1, "q1-map": 2, "q1-sink": 2}, addrs,
		ds2.LiveJobConfig{ChannelCapacity: 256, LatencySampleEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	cluster.Wait()
	b.StopTimer()
	cluster.Stop()
	cluster.Close()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkWallClockWindow measures building one validated
// WindowMetrics from wall-clock durations — the per-instance
// per-interval cost of the live collection path.
func BenchmarkWallClockWindow(b *testing.B) {
	id := ds2.InstanceID{Operator: "op", Index: 3}
	d := ds2.WallClockDurations{
		Deserialization: 10 * time.Millisecond,
		Processing:      120 * time.Millisecond,
		Serialization:   15 * time.Millisecond,
		WaitingInput:    50 * time.Millisecond,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds2.WallClockWindow(id, 200*time.Millisecond, d, 1000, 1000, 0); err != nil {
			b.Fatal(err)
		}
	}
}
