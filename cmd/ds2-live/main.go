// Command ds2-live runs a really-executing streaming job on the live
// dataflow runtime (internal/streamrt) and has DS2 scale it from
// wall-clock instrumentation. The -workload flag selects what runs:
// the three-stage word count, or one of the live Nexmark queries
// (q1/q2 map-filter, q3 incremental join, q5 sliding hot-items window,
// q8 tumbling-window join — the windowed queries exercise per-key
// window state that survives live rescales). Three control modes:
//
//	ds2-live                      in-process: the standard Controller
//	                              drives the job directly
//	ds2-live -serve-inproc        boots a ds2d scaling server on HTTP
//	                              loopback and attaches the job through
//	                              the ingestion/poll/ack API — the full
//	                              Fig. 5 cycle in one process
//	ds2-live -addr http://host:7361
//	                              attaches the job to an external ds2d
//
// The source steps from -rate1 to -rate2 at -step seconds, so a
// correctly converging run shows one provisioning decision shortly
// after the step and quiet intervals after it. -require-decision makes
// the exit status assert that (the `make live-smoke` CI gate).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ds2"
	"ds2/internal/obs"
)

func main() {
	workload := flag.String("workload", "wordcount", "what to run: wordcount, or a Nexmark query (q1|q2|q3|q5|q8)")
	addr := flag.String("addr", "", "external ds2d base URL (e.g. http://127.0.0.1:7361); empty = in-process")
	serveInproc := flag.Bool("serve-inproc", false, "boot a ds2d server on HTTP loopback and attach to it")
	interval := flag.Float64("interval", 0.25, "policy interval in seconds (wall clock)")
	intervals := flag.Int("intervals", 12, "maximum policy intervals")
	stable := flag.Int("stable", 4, "stop after this many consecutive quiet intervals (0 = run all)")
	rate1 := flag.Float64("rate1", 100, "primary-source rate in records/s before the step")
	rate2 := flag.Float64("rate2", 400, "primary-source rate after the step")
	// The default step lands after two quiet intervals — early enough
	// that the -stable stopping rule can never fire before the step is
	// even visible.
	step := flag.Float64("step", 0.6, "job time of the rate step in seconds (0 = no step)")
	seed := flag.Int64("seed", 1, "stream seed")
	zipf := flag.Float64("zipf", 0, "wordcount: zipf skew exponent for word choice (> 1 enables skew)")
	splitCost := flag.Duration("split-cost", 4*time.Millisecond, "wordcount: per-sentence splitter cost")
	countCost := flag.Duration("count-cost", 1200*time.Microsecond, "wordcount: per-word counter cost")
	workers := flag.Int("workers", 0,
		"deploy the workload over this many worker processes (re-execs this binary; Nexmark q1/q5 only; 0 = single-process)")
	distWorker := flag.Int("dist-worker", -1,
		"internal: run as a streamrt worker with this cluster index (spawned by -workers)")
	calibrateScale := flag.Float64("calibrate-scale", 0,
		"nexmark: pace the query's main stage at its measured calibration cost times this scale (0 = built-in defaults)")
	requireDecision := flag.Bool("require-decision", false, "exit nonzero unless at least one scale decision was applied and acked")
	metricsAddr := flag.String("metrics-addr", "",
		"serve the run's telemetry as Prometheus text on this address (e.g. 127.0.0.1:9361); with -serve-inproc the ds2d families share the page")
	requireMetrics := flag.String("require-metrics", "",
		"comma-separated metric families that must appear in a /metrics self-scrape at exit; exit nonzero otherwise (enables the exporter)")
	requireWorkerMetrics := flag.String("require-worker-metrics", "",
		"comma-separated families every spawned worker must serve on its own /metrics at exit, and that must reappear worker-labeled on the ds2d exposition when attached; exit nonzero otherwise (needs -workers)")
	requireRescaleTrace := flag.Bool("require-rescale-trace", false,
		"exit nonzero unless GET /jobs/{id}/rescales serves at least one complete rescale timeline with every phase (needs -serve-inproc or -addr)")
	savepointDir := flag.String("savepoint-dir", "",
		"cut one durable savepoint into this directory (attached modes request it through the service mid-run; in-process cuts it directly after the run)")
	restoreFrom := flag.String("restore-from", "",
		"deploy the job from this savepoint file instead of starting fresh (a path written by -savepoint-dir, e.g. dir/savepoint-1)")
	requireSavepoint := flag.Bool("require-savepoint", false,
		"exit nonzero unless at least one savepoint settled without error and its file is on disk (needs -savepoint-dir)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")
	flag.Parse()
	if *addr != "" && *serveInproc {
		log.Fatal("ds2-live: -addr and -serve-inproc are mutually exclusive")
	}
	distributed := *workers > 0 || *distWorker >= 0
	if distributed {
		if *workload != "q1" && *workload != "q5" {
			log.Fatalf("ds2-live: -workers needs a distributed-capable workload (q1 or q5), not %s", *workload)
		}
		if *calibrateScale > 0 {
			log.Fatal("ds2-live: -calibrate-scale is incompatible with -workers (per-process calibration would diverge)")
		}
	}
	if *requireSavepoint && *savepointDir == "" {
		log.Fatal("ds2-live: -require-savepoint needs -savepoint-dir")
	}
	finishProfiles := startProfiles(*cpuprofile, *memprofile, *mutexprofile)
	defer finishProfiles()

	// The checkpoint store savepoints persist into (nil = savepoints off).
	var spStore *ds2.LiveDirStore
	if *savepointDir != "" {
		st, err := ds2.NewLiveDirStore(*savepointDir)
		if err != nil {
			log.Fatal(err)
		}
		spStore = st
	}

	// The exporter: one shared registry for runtime and (inproc)
	// service telemetry, served over real HTTP so the self-scrape below
	// exercises the same path an external Prometheus would. Rescale
	// tracing rides the same registry (the runtime records spans only
	// when observed), so asserting a timeline turns the exporter on.
	var reg *ds2.ObsRegistry
	var metricsBase string
	if *metricsAddr != "" || *requireMetrics != "" || *requireRescaleTrace {
		reg = ds2.NewObsRegistry()
		listen := *metricsAddr
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		go func() { _ = (&http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}).Serve(ln) }()
		defer ln.Close()
		metricsBase = "http://" + ln.Addr().String()
		fmt.Printf("metrics on %s/metrics\n", metricsBase)
	}

	var (
		pipeline *ds2.LivePipeline
		initial  ds2.Parallelism
		optimal  ds2.Parallelism
	)
	finalRate := *rate1
	if *step > 0 {
		finalRate = *rate2
	}
	switch *workload {
	case "wordcount":
		cfg := ds2.LiveWordCountConfig{
			Rate1:     *rate1,
			Rate2:     *rate2,
			StepAt:    *step,
			ZipfS:     *zipf,
			Seed:      *seed,
			SplitCost: *splitCost,
			CountCost: *countCost,
		}
		p, err := ds2.LiveWordCount(cfg)
		if err != nil {
			log.Fatal(err)
		}
		pipeline = p
		initial = ds2.Parallelism{
			ds2.LiveWordCountSource: 1,
			ds2.LiveWordCountSplit:  1,
			ds2.LiveWordCountCount:  1,
		}
		optimal = ds2.LiveWordCountOptimal(cfg, finalRate)
	default:
		cfg := ds2.LiveNexmarkConfig{
			Rate1:       *rate1,
			Rate2:       *rate2,
			StepAt:      *step,
			Seed:        *seed,
			Distributed: distributed,
		}
		w, err := ds2.LiveNexmarkQuery(*workload, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *calibrateScale > 0 {
			cost, err := ds2.LiveNexmarkCalibratedCost(*workload, 100_000, *calibrateScale)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("calibrated %s cost: %v/record\n", w.Main, cost)
			cfg.Costs = map[string]time.Duration{w.Main: cost}
			if w, err = ds2.LiveNexmarkQuery(*workload, cfg); err != nil {
				log.Fatal(err)
			}
		}
		pipeline = w.Pipeline
		initial = w.Initial
		optimal = w.Optimal(finalRate)
	}

	// Worker mode: host operator instances for a coordinating parent.
	// Announce the bound control address (and metrics endpoint, when
	// serving one) on stdout and exit when the parent closes our stdin
	// (so orphaned workers die with it).
	if *distWorker >= 0 {
		w := ds2.NewLiveWorker(*distWorker, map[string]*ds2.LivePipeline{*workload: pipeline}, reg)
		bound, err := w.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dist-worker %d %s\n", *distWorker, bound)
		if metricsBase != "" {
			fmt.Printf("dist-worker-metrics %d %s\n", *distWorker, strings.TrimPrefix(metricsBase, "http://"))
		}
		_, _ = io.Copy(io.Discard, os.Stdin)
		w.Close()
		return
	}

	// eng is the control seam both deployments implement; the rest of
	// the command drives a 2-worker cluster and a single-process job
	// identically.
	var (
		eng               ds2.LiveEngine
		rescales          func() int
		workerAddrs       []string
		workerMetricsURLs []string
	)
	if *workers > 0 {
		// Workers serve their own /metrics when anything downstream
		// consumes them: the parent's exporter (federation) or the
		// worker-metrics exit assertion.
		withMetrics := reg != nil || *requireWorkerMetrics != ""
		addrs, maddrs, release := spawnDistWorkers(*workers, *workload, *rate1, *rate2, *step, *seed, withMetrics)
		defer release()
		var cluster *ds2.LiveCluster
		var err error
		if *restoreFrom != "" {
			store, name, serr := savepointAt(*restoreFrom)
			if serr != nil {
				log.Fatal(serr)
			}
			cluster, err = ds2.NewLiveClusterFromSavepoint(pipeline, *workload, initial, addrs, ds2.LiveJobConfig{Metrics: reg}, store, name)
			if err == nil {
				fmt.Printf("restored from savepoint %s\n", *restoreFrom)
			}
		} else {
			cluster, err = ds2.NewLiveCluster(pipeline, *workload, initial, addrs, ds2.LiveJobConfig{Metrics: reg})
		}
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		defer cluster.Stop()
		eng, rescales = cluster, cluster.Rescales
		workerAddrs, workerMetricsURLs = addrs, maddrs
		fmt.Printf("distributed over %d worker processes: %s\n", *workers, strings.Join(addrs, " "))
	} else {
		var job *ds2.LiveJob
		var err error
		if *restoreFrom != "" {
			store, name, serr := savepointAt(*restoreFrom)
			if serr != nil {
				log.Fatal(serr)
			}
			job, err = ds2.NewLiveJobFromSavepoint(pipeline, initial, ds2.LiveJobConfig{Metrics: reg}, store, name)
			if err == nil {
				fmt.Printf("restored from savepoint %s\n", *restoreFrom)
			}
		} else {
			job, err = ds2.NewLiveJob(pipeline, initial, ds2.LiveJobConfig{Metrics: reg})
		}
		if err != nil {
			log.Fatal(err)
		}
		defer job.Stop()
		eng, rescales = job, job.Rescales
	}

	fmt.Printf("== ds2-live %s: %g → %g records/s at t=%gs, interval %gs, optimum %s ==\n",
		*workload, *rate1, *rate2, *step, *interval, optimal)

	// The engine adapter both control modes drive; with -savepoint-dir
	// it also executes savepoint requests into the store.
	rt := ds2.NewLiveEngineRuntime(eng)
	if spStore != nil {
		rt.SavepointTo(spStore, "savepoint")
	}
	var savepoints []ds2.SavepointRecord

	var trace ds2.Trace
	var err error
	serviceBase := ""
	switch {
	case *addr != "" || *serveInproc:
		base := *addr
		if *serveInproc {
			server := ds2.NewScalingServer(ds2.ScalingServerConfig{Metrics: reg})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			// The loopback server gets the same hardening as cmd/ds2d:
			// slowloris header timeout and the request-body cap.
			srv := &http.Server{Handler: server, ReadHeaderTimeout: 10 * time.Second}
			go func() { _ = srv.Serve(ln) }()
			defer ln.Close()
			defer server.Close()
			base = "http://" + ln.Addr().String()
			fmt.Printf("ds2d on %s\n", base)
		}
		serviceBase = base
		client := ds2.NewScalingClient(base, nil)
		// Announce the worker fleet (with metrics endpoints) so the
		// service's /metrics federates their expositions.
		for i, a := range workerAddrs {
			info := ds2.WorkerInfo{ID: i, Addr: a}
			if i < len(workerMetricsURLs) {
				info.MetricsAddr = workerMetricsURLs[i]
			}
			if err := client.RegisterWorker(info); err != nil {
				log.Fatal(err)
			}
		}
		operators, edges := graphSpec(pipeline.Graph())
		spec := ds2.JobSpec{
			Name:            "ds2-live-" + *workload,
			Operators:       operators,
			Edges:           edges,
			Initial:         initial,
			Autoscaler:      "ds2",
			IntervalSec:     *interval,
			MaxIntervals:    *intervals,
			StableIntervals: *stable,
			Manager:         &ds2.JobManagerConfig{TargetRateRatio: 0.8},
		}
		attached := ds2.NewAttachedJob(client, rt, spec)
		if spStore != nil {
			// Pre-register so the savepoint can be requested through the
			// service API mid-run — the full request/poll/execute/settle
			// cycle, not an engine-side shortcut. The request lands after
			// a couple of intervals, well inside the run.
			id, err := client.Register(spec)
			if err != nil {
				log.Fatal(err)
			}
			attached.ID = id
			go func() {
				time.Sleep(time.Duration(1.5 * *interval * float64(time.Second)))
				if _, err := client.RequestSavepoint(id); err != nil {
					log.Print("ds2-live: savepoint request: ", err)
				}
			}()
		}
		trace, err = attached.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %s driven over HTTP\n", attached.ID)
		if spStore != nil {
			st, err := client.Savepoints(attached.ID)
			if err != nil {
				log.Fatal(err)
			}
			savepoints = st.Savepoints
			for _, r := range savepoints {
				if r.Error != "" {
					fmt.Printf("savepoint %d failed: %s\n", r.Seq, r.Error)
				} else {
					fmt.Printf("savepoint %d written: %s\n", r.Seq, r.Path)
				}
			}
		}
	default:
		policy, err := ds2.NewPolicy(pipeline.Graph(), ds2.PolicyConfig{})
		if err != nil {
			log.Fatal(err)
		}
		manager, err := ds2.NewScalingManager(policy, initial, ds2.ScalingManagerConfig{TargetRateRatio: 0.8})
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := ds2.NewController(rt, ds2.DS2Autoscaler(manager), ds2.ControllerConfig{
			Interval:        *interval,
			MaxIntervals:    *intervals,
			StableIntervals: *stable,
		})
		if err != nil {
			log.Fatal(err)
		}
		trace, err = ctrl.Run()
		if err != nil {
			log.Fatal(err)
		}
		if spStore != nil {
			// The engine is still deployed (Stop is deferred); cut the
			// savepoint directly — the in-process analogue of the
			// service-requested cycle above.
			path, err := rt.Savepoint()
			if err != nil {
				fmt.Printf("savepoint 1 failed: %v\n", err)
				savepoints = append(savepoints, ds2.SavepointRecord{Seq: 1, Error: err.Error()})
			} else {
				fmt.Printf("savepoint 1 written: %s\n", path)
				savepoints = append(savepoints, ds2.SavepointRecord{Seq: 1, Path: path})
			}
		}
	}

	fmt.Print(trace.String())
	if *requireDecision {
		if trace.Decisions < 1 {
			fmt.Fprintln(os.Stderr, "ds2-live: FAIL: no scale decision was applied")
			finishProfiles()
			os.Exit(2)
		}
		if rescales() < 1 {
			fmt.Fprintln(os.Stderr, "ds2-live: FAIL: the live job performed no redeployment")
			finishProfiles()
			os.Exit(2)
		}
		fmt.Printf("OK: %d decision(s) applied and acked, %d live redeployment(s)\n",
			trace.Decisions, rescales())
	}
	if *requireMetrics != "" {
		want := strings.Split(*requireMetrics, ",")
		if err := assertMetrics(metricsBase, want); err != nil {
			fmt.Fprintln(os.Stderr, "ds2-live: FAIL:", err)
			finishProfiles()
			os.Exit(2)
		}
		fmt.Printf("OK: /metrics is valid exposition and serves all %d required families\n", len(want))
	}
	if *requireWorkerMetrics != "" {
		want := strings.Split(*requireWorkerMetrics, ",")
		if err := assertWorkerMetrics(workerMetricsURLs, serviceBase, want); err != nil {
			fmt.Fprintln(os.Stderr, "ds2-live: FAIL:", err)
			finishProfiles()
			os.Exit(2)
		}
		fmt.Printf("OK: all %d workers serve the %d required families; federation labels them\n",
			len(workerMetricsURLs), len(want))
	}
	if *requireRescaleTrace {
		phases := []string{"drain", "snapshot", "restart", "first_record"}
		if *workers > 0 {
			phases = []string{"drain", "snapshot", "router_rebuild", "transfer", "restart", "first_record"}
		}
		if err := assertRescaleTrace(serviceBase, phases); err != nil {
			fmt.Fprintln(os.Stderr, "ds2-live: FAIL:", err)
			finishProfiles()
			os.Exit(2)
		}
		fmt.Printf("OK: a complete rescale timeline with all %d phases is served\n", len(phases))
	}
	if *requireSavepoint {
		if err := assertSavepoints(savepoints); err != nil {
			fmt.Fprintln(os.Stderr, "ds2-live: FAIL:", err)
			finishProfiles()
			os.Exit(2)
		}
		fmt.Printf("OK: %d savepoint(s) settled durably on disk\n", len(savepoints))
	}
}

// savepointAt splits a savepoint file path into its directory store
// and savepoint name for the restore constructors.
func savepointAt(path string) (*ds2.LiveDirStore, string, error) {
	store, err := ds2.NewLiveDirStore(filepath.Dir(path))
	if err != nil {
		return nil, "", err
	}
	return store, filepath.Base(path), nil
}

// assertSavepoints checks every settled savepoint succeeded and its
// file is a non-empty presence on disk — the savepoint-smoke gate.
func assertSavepoints(savepoints []ds2.SavepointRecord) error {
	if len(savepoints) == 0 {
		return fmt.Errorf("no savepoint settled during the run")
	}
	for _, r := range savepoints {
		if r.Error != "" {
			return fmt.Errorf("savepoint %d failed: %s", r.Seq, r.Error)
		}
		fi, err := os.Stat(r.Path)
		if err != nil {
			return fmt.Errorf("savepoint %d: %w", r.Seq, err)
		}
		if fi.Size() == 0 {
			return fmt.Errorf("savepoint %d: %s is empty", r.Seq, r.Path)
		}
	}
	return nil
}

// assertWorkerMetrics self-scrapes every spawned worker's own /metrics
// for the required families, then — when the run was attached to a
// scaling service — checks the service's federated exposition carries
// the same families under worker labels.
func assertWorkerMetrics(workerURLs []string, serviceBase string, want []string) error {
	if len(workerURLs) == 0 {
		return fmt.Errorf("-require-worker-metrics needs -workers with worker metrics enabled")
	}
	for i, hostport := range workerURLs {
		if err := assertMetrics("http://"+hostport, want); err != nil {
			return fmt.Errorf("worker %d (%s): %w", i, hostport, err)
		}
	}
	if serviceBase == "" {
		return nil
	}
	resp, err := http.Get(serviceBase + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	scrape, err := obs.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("invalid federated exposition: %w", err)
	}
	labeled := make(map[string]bool)
	for _, s := range scrape.Samples {
		if s.Label("worker") != "" {
			labeled[s.Name] = true
		}
	}
	for _, fam := range want {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		// Histogram families federate as their _bucket/_sum/_count
		// series; accept any worker-labeled series with the family
		// prefix.
		ok := labeled[fam] || labeled[fam+"_count"]
		if !ok {
			return fmt.Errorf("family %s has no worker-labeled series on the service exposition", fam)
		}
	}
	return nil
}

// assertRescaleTrace fetches the first job's rescale timelines from
// the scaling service and checks at least one is complete with every
// required phase, in order, non-overlapping.
func assertRescaleTrace(serviceBase string, phases []string) error {
	if serviceBase == "" {
		return fmt.Errorf("-require-rescale-trace needs -serve-inproc or -addr")
	}
	resp, err := http.Get(serviceBase + "/jobs")
	if err != nil {
		return err
	}
	var jobs []struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&jobs)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("listing jobs: %w", err)
	}
	if len(jobs) == 0 {
		return fmt.Errorf("no jobs registered with the service")
	}
	resp, err = http.Get(serviceBase + "/jobs/" + jobs[0].ID + "/rescales")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var body struct {
		Total    int             `json:"total"`
		Rescales []obs.TraceView `json:"rescales"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("decoding rescale timelines: %w", err)
	}
	if body.Total == 0 {
		return fmt.Errorf("no rescale timelines reported")
	}
	var lastErr error
	for _, v := range body.Rescales {
		if !v.Complete {
			continue
		}
		if err := checkPhases(v, phases); err != nil {
			lastErr = fmt.Errorf("timeline %s: %w", v.ID, err)
			continue
		}
		return nil
	}
	if lastErr != nil {
		return lastErr
	}
	return fmt.Errorf("%d timelines reported, none complete", body.Total)
}

func checkPhases(v obs.TraceView, phases []string) error {
	prevEnd := int64(-1)
	for _, name := range phases {
		s, ok := v.Span(name)
		if !ok {
			return fmt.Errorf("phase %s missing", name)
		}
		if s.StartNs < prevEnd {
			return fmt.Errorf("phase %s overlaps its predecessor", name)
		}
		prevEnd = s.EndNs
	}
	return nil
}

// assertMetrics scrapes the exporter over HTTP, strictly parses the
// exposition, and checks every required family is present — the
// live-smoke gate for the telemetry path.
func assertMetrics(base string, want []string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics returned %s", resp.Status)
	}
	scrape, err := obs.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	have := make(map[string]bool)
	for _, fam := range scrape.Families() {
		have[fam] = true
	}
	var missing []string
	for _, fam := range want {
		if fam = strings.TrimSpace(fam); fam != "" && !have[fam] {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing metric families: %s", strings.Join(missing, ", "))
	}
	return nil
}

// startProfiles arms the requested pprof outputs and returns the
// finalizer that writes them. The finalizer is idempotent so the
// os.Exit paths can call it explicitly (deferred calls don't run
// through os.Exit).
func startProfiles(cpu, mem, mutex string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuFile = f
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			writeProfile("heap", mem, true)
		}
		if mutex != "" {
			writeProfile("mutex", mutex, false)
		}
	}
}

// writeProfile dumps one named runtime/pprof profile to path.
func writeProfile(name, path string, gcFirst bool) {
	f, err := os.Create(path)
	if err != nil {
		log.Print(err)
		return
	}
	defer f.Close()
	if gcFirst {
		runtime.GC() // heap profile reports live objects post-GC
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		log.Print(err)
	}
}

// spawnDistWorkers re-execs this binary once per worker index in the
// internal -dist-worker mode, passing exactly the flags that shape the
// dataflow (workload, rates, step, seed) so every process builds the
// identical pipeline. Each child announces its bound control address
// (and, with withMetrics, its /metrics host:port) on stdout; its
// lifetime is tied to ours through a held-open stdin pipe, which the
// returned release function closes.
func spawnDistWorkers(n int, workload string, rate1, rate2, step float64, seed int64, withMetrics bool) ([]string, []string, func()) {
	addrs := make([]string, n)
	maddrs := make([]string, n)
	pipes := make([]io.Closer, 0, n)
	procs := make([]*exec.Cmd, 0, n)
	release := func() {
		for _, p := range pipes {
			p.Close()
		}
		for _, c := range procs {
			_ = c.Wait()
		}
	}
	for i := range addrs {
		args := []string{
			"-dist-worker", strconv.Itoa(i),
			"-workload", workload,
			"-rate1", fmt.Sprint(rate1),
			"-rate2", fmt.Sprint(rate2),
			"-step", fmt.Sprint(step),
			"-seed", strconv.FormatInt(seed, 10),
		}
		if withMetrics {
			args = append(args, "-metrics-addr", "127.0.0.1:0")
		}
		cmd := exec.Command(os.Args[0], args...)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			log.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		pipes = append(pipes, stdin)
		procs = append(procs, cmd)
		sc := bufio.NewScanner(stdout)
		for (addrs[i] == "" || (withMetrics && maddrs[i] == "")) && sc.Scan() {
			var idx int
			var a string
			if _, err := fmt.Sscanf(sc.Text(), "dist-worker %d %s", &idx, &a); err == nil && idx == i {
				addrs[i] = a
			} else if _, err := fmt.Sscanf(sc.Text(), "dist-worker-metrics %d %s", &idx, &a); err == nil && idx == i {
				maddrs[i] = a
			}
		}
		if addrs[i] == "" || (withMetrics && maddrs[i] == "") {
			release()
			log.Fatalf("ds2-live: worker %d exited before announcing its address", i)
		}
		// Drain the rest of the child's stdout so it never blocks on a
		// full pipe.
		go func() { _, _ = io.Copy(io.Discard, stdout) }()
	}
	if !withMetrics {
		maddrs = nil
	}
	return addrs, maddrs, release
}

// graphSpec derives the JobSpec topology from the pipeline's own
// graph, so the registered spec can never diverge from the job
// actually attached.
func graphSpec(g *ds2.Graph) ([]ds2.JobOperator, [][2]string) {
	var ops []ds2.JobOperator
	var edges [][2]string
	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		ops = append(ops, ds2.JobOperator{Name: op.Name, NonScalable: !op.Scalable})
		for _, d := range g.Downstream(i) {
			edges = append(edges, [2]string{op.Name, g.Operator(d).Name})
		}
	}
	return ops, edges
}
