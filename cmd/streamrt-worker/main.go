// Command streamrt-worker runs one worker process of a distributed
// live deployment: it binds the framed TCP transport, serves the
// configured workloads, and hosts whatever operator instances a
// cluster coordinator places on it. Workers are passive — deployment,
// rescaling, and state transfer all arrive over the control channel —
// so a fleet is just N of these plus one coordinator (e.g.
// `ds2-live -workers N`, which spawns its own, or a custom program
// using ds2.NewLiveCluster against the addresses below).
//
//	streamrt-worker -index 0 -listen 127.0.0.1:7400 -workloads q1,q5
//	streamrt-worker -index 1 -listen 127.0.0.1:7401 -workloads q1,q5 \
//	    -register http://127.0.0.1:7361
//
// -register announces the worker to a ds2d scaling service's worker
// registry (POST /workers), where a deployer can discover the fleet
// with GET /workers. Every process in one cluster must build the
// identical pipelines, so the workload flags (rates, step, seed,
// windows) must match across the fleet and the coordinator.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ds2"
)

func main() {
	index := flag.Int("index", 0, "this worker's cluster index (placements identify workers by it)")
	listen := flag.String("listen", "127.0.0.1:0", "transport listen address (control + data on one listener)")
	workloads := flag.String("workloads", "q1,q5", "comma-separated live workloads to serve (Nexmark q1, q5)")
	register := flag.String("register", "", "ds2d base URL to announce this worker to (POST /workers); empty = don't")
	rate1 := flag.Float64("rate1", 100, "primary-source rate in records/s before the step")
	rate2 := flag.Float64("rate2", 400, "primary-source rate after the step")
	step := flag.Float64("step", 0.6, "job time of the rate step in seconds (0 = no step)")
	seed := flag.Int64("seed", 1, "stream seed")
	limit := flag.Int64("limit", 0, "bound the primary source (events; 0 = unbounded)")
	window := flag.Duration("window", 0, "q5 window size (0 = query default)")
	slide := flag.Duration("slide", 0, "q5 window slide (0 = query default)")
	metricsAddr := flag.String("metrics-addr", "", "serve this worker's telemetry as Prometheus text on this address")
	flag.Parse()
	if *index < 0 {
		log.Fatal("streamrt-worker: -index must be >= 0")
	}

	var reg *ds2.ObsRegistry
	servedMetrics := ""
	if *metricsAddr != "" {
		reg = ds2.NewObsRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		go func() { _ = (&http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}).Serve(ln) }()
		defer ln.Close()
		servedMetrics = ln.Addr().String()
		fmt.Printf("metrics on http://%s/metrics\n", servedMetrics)
	}

	cfg := ds2.LiveNexmarkConfig{
		Rate1:       *rate1,
		Rate2:       *rate2,
		StepAt:      *step,
		Seed:        *seed,
		Limit:       *limit,
		WindowSize:  *window,
		WindowSlide: *slide,
		Distributed: true,
	}
	pipes := make(map[string]*ds2.LivePipeline)
	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, err := ds2.LiveNexmarkQuery(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pipes[name] = w.Pipeline
	}
	if len(pipes) == 0 {
		log.Fatal("streamrt-worker: no workloads to serve")
	}

	worker := ds2.NewLiveWorker(*index, pipes, reg)
	addr, err := worker.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker %d serving %s on %s\n", *index, *workloads, addr)

	if *register != "" {
		client := ds2.NewScalingClient(*register, nil)
		// MetricsAddr lets the service federate this worker's exposition
		// into its own /metrics under a worker label.
		if err := client.RegisterWorker(ds2.WorkerInfo{ID: *index, Addr: addr, MetricsAddr: servedMetrics}); err != nil {
			worker.Close()
			log.Fatalf("streamrt-worker: registering with %s: %v", *register, err)
		}
		fmt.Printf("registered with %s\n", *register)
		defer func() {
			if err := client.DeregisterWorker(*index); err != nil {
				log.Printf("streamrt-worker: deregistering: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	worker.Close()
}
