// Command ds2-sim runs a benchmark workload on the streaming-engine
// simulator under a chosen scaling controller and prints the resulting
// throughput/parallelism timeline — a workbench for comparing
// controller behaviour interactively.
//
// Usage:
//
//	ds2-sim -workload wordcount -controller ds2 -duration 600
//	ds2-sim -workload q5 -controller dhalion -interval 60
//	ds2-sim -workload q3 -controller none -initial 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/dhalion"
	"ds2/internal/engine"
	"ds2/internal/nexmark"
	"ds2/internal/queueing"
	"ds2/internal/wordcount"
)

func main() {
	workload := flag.String("workload", "wordcount", "wordcount | q1 | q2 | q3 | q5 | q8 | q11")
	controller := flag.String("controller", "ds2", "ds2 | dhalion | queueing | none")
	duration := flag.Float64("duration", 600, "virtual seconds to simulate")
	interval := flag.Float64("interval", 30, "policy interval in virtual seconds")
	initial := flag.Int("initial", 1, "initial parallelism per non-source operator")
	heron := flag.Bool("heron", false, "Heron-mode engine (deep queues) instead of Flink-mode")
	flag.Parse()

	if err := run(*workload, *controller, *duration, *interval, *initial, *heron); err != nil {
		fmt.Fprintln(os.Stderr, "ds2-sim:", err)
		os.Exit(1)
	}
}

func run(workload, controller string, duration, interval float64, initial int, heron bool) error {
	graph, specs, sources, err := buildWorkload(workload)
	if err != nil {
		return err
	}
	initPar := dataflow.UniformParallelism(graph, initial)
	cfg := engine.Config{Mode: engine.ModeFlink, Tick: 0.05, QueueCapacity: 20_000, RedeployDelay: 20}
	if heron {
		cfg.Mode = engine.ModeHeron
		cfg.QueueCapacity = 200_000
	}
	e, err := engine.New(graph, specs, sources, initPar, cfg)
	if err != nil {
		return err
	}

	var decide func(st engine.IntervalStats) (dataflow.Parallelism, string, error)
	switch controller {
	case "none":
		decide = func(engine.IntervalStats) (dataflow.Parallelism, string, error) { return nil, "", nil }
	case "ds2":
		pol, err := core.NewPolicy(graph, core.PolicyConfig{MaxParallelism: 64})
		if err != nil {
			return err
		}
		mgr, err := core.NewManager(pol, initPar, core.ManagerConfig{WarmupIntervals: 1, Aggregation: core.AggMax})
		if err != nil {
			return err
		}
		decide = func(st engine.IntervalStats) (dataflow.Parallelism, string, error) {
			snap, err := engine.Snapshot(st)
			if err != nil {
				return nil, "", err
			}
			act, err := mgr.OnInterval(snap)
			if err != nil || act == nil {
				return nil, "", err
			}
			return act.New, act.Kind.String(), nil
		}
	case "dhalion":
		ctrl, err := dhalion.New(graph, dhalion.Config{MaxParallelism: 64})
		if err != nil {
			return err
		}
		decide = func(st engine.IntervalStats) (dataflow.Parallelism, string, error) {
			act, err := ctrl.OnInterval(dhalion.Observation{
				Backpressured:        st.Backpressured,
				BackpressureFraction: st.BackpressureFraction,
				Parallelism:          st.Parallelism,
			})
			if err != nil || act == nil {
				return nil, "", err
			}
			next := st.Parallelism.Clone()
			next[act.Operator] = act.To
			return next, act.Reason, nil
		}
	case "queueing":
		ctrl, err := queueing.New(graph, queueing.Config{MaxParallelism: 64})
		if err != nil {
			return err
		}
		decide = func(st engine.IntervalStats) (dataflow.Parallelism, string, error) {
			snap, err := engine.Snapshot(st)
			if err != nil {
				return nil, "", err
			}
			dec, err := ctrl.Decide(snap, st.Parallelism)
			if err != nil {
				return nil, "", err
			}
			if dec.Equal(st.Parallelism) {
				return nil, "", nil
			}
			return dec, "queueing model", nil
		}
	default:
		return fmt.Errorf("unknown controller %q", controller)
	}

	fmt.Println("time(s)\ttarget(rec/s)\tachieved(rec/s)\tp99 latency(s)\tconfig\taction")
	for t := 0.0; t < duration; t += interval {
		st := e.RunInterval(interval)
		target, achieved := 0.0, 0.0
		for _, r := range st.TargetRates {
			target += r
		}
		for _, r := range st.SourceObserved {
			achieved += r
		}
		action := ""
		if !e.Paused() {
			next, reason, err := decide(st)
			if err != nil {
				return err
			}
			if next != nil {
				if err := e.Rescale(next); err != nil {
					return err
				}
				for e.Paused() {
					e.Run(1)
				}
				e.Collect()
				action = reason
			}
		}
		fmt.Printf("%.0f\t%.0f\t%.0f\t%.3f\t%s\t%s\n",
			st.End, target, achieved,
			engine.LatencyQuantile(st.Latencies, 0.99),
			st.Parallelism, action)
	}
	fmt.Printf("final configuration: %s (total tasks %d)\n", e.Parallelism(), e.Parallelism().Total())
	return nil
}

func buildWorkload(name string) (*dataflow.Graph, map[string]engine.OperatorSpec, map[string]engine.SourceSpec, error) {
	if name == "wordcount" {
		w, err := wordcount.Heron(0)
		if err != nil {
			return nil, nil, nil, err
		}
		return w.Graph, w.Specs, w.Sources, nil
	}
	for _, q := range nexmark.QueryNames() {
		if q == name {
			w, err := nexmark.Query(name, nexmark.SystemFlink)
			if err != nil {
				return nil, nil, nil, err
			}
			return w.Graph, w.Specs, w.Sources, nil
		}
	}
	known := append([]string{"wordcount"}, nexmark.QueryNames()...)
	sort.Strings(known)
	return nil, nil, nil, fmt.Errorf("unknown workload %q (have %v)", name, known)
}
