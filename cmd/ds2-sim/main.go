// Command ds2-sim runs a benchmark workload on the streaming-engine
// simulator under a chosen scaling controller and prints the resulting
// throughput/parallelism timeline — a workbench for comparing
// controller behaviour interactively. Every controller runs through
// the same controlloop.Controller; picking one only swaps the
// Autoscaler plugged into the loop.
//
// Usage:
//
//	ds2-sim -workload wordcount -controller ds2 -duration 600
//	ds2-sim -workload q5 -controller dhalion -interval 60
//	ds2-sim -workload q3 -controller none -initial 4
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/dhalion"
	"ds2/internal/engine"
	"ds2/internal/nexmark"
	"ds2/internal/queueing"
	"ds2/internal/wordcount"
)

func main() {
	workload := flag.String("workload", "wordcount", "wordcount | q1 | q2 | q3 | q5 | q8 | q11")
	controller := flag.String("controller", "ds2", "ds2 | dhalion | queueing | none")
	duration := flag.Float64("duration", 600, "virtual seconds to simulate")
	interval := flag.Float64("interval", 30, "policy interval in virtual seconds")
	initial := flag.Int("initial", 1, "initial parallelism per non-source operator")
	heron := flag.Bool("heron", false, "Heron-mode engine (deep queues) instead of Flink-mode")
	flag.Parse()

	if err := run(*workload, *controller, *duration, *interval, *initial, *heron); err != nil {
		fmt.Fprintln(os.Stderr, "ds2-sim:", err)
		os.Exit(1)
	}
}

func run(workload, controller string, duration, interval float64, initial int, heron bool) error {
	if interval <= 0 {
		return fmt.Errorf("-interval must be > 0 (got %v)", interval)
	}
	if duration < interval {
		return fmt.Errorf("-duration must cover at least one interval (got %v with -interval %v)", duration, interval)
	}
	graph, specs, sources, err := buildWorkload(workload)
	if err != nil {
		return err
	}
	initPar := dataflow.UniformParallelism(graph, initial)
	cfg := engine.Config{Mode: engine.ModeFlink, Tick: 0.05, QueueCapacity: 20_000, RedeployDelay: 20}
	if heron {
		cfg.Mode = engine.ModeHeron
		cfg.QueueCapacity = 200_000
	}
	e, err := engine.New(graph, specs, sources, initPar, cfg)
	if err != nil {
		return err
	}

	auto, err := buildAutoscaler(controller, graph, initPar)
	if err != nil {
		return err
	}

	fmt.Println("time(s)\ttarget(rec/s)\tachieved(rec/s)\tp99 latency(s)\tconfig\taction")
	loop, err := controlloop.New(
		controlloop.NewEngineRuntime(e, true),
		auto,
		controlloop.Config{
			Interval:     interval,
			MaxIntervals: int(math.Ceil(duration / interval)),
			OnInterval: func(iv controlloop.Interval) {
				action := iv.Action
				if iv.Reason != "" {
					action = iv.Reason
				}
				fmt.Printf("%.0f\t%.0f\t%.0f\t%.3f\t%s\t%s\n",
					iv.Time, iv.Target, iv.Achieved, iv.Latency.P99, iv.Parallelism, action)
			},
		})
	if err != nil {
		return err
	}
	tr, err := loop.Run()
	if err != nil {
		return err
	}
	fmt.Printf("final configuration: %s (total tasks %d)\n", tr.Final, tr.Final.Total())
	return nil
}

func buildAutoscaler(controller string, graph *dataflow.Graph, initPar dataflow.Parallelism) (controlloop.Autoscaler, error) {
	switch controller {
	case "none":
		return controlloop.Hold(), nil
	case "ds2":
		pol, err := core.NewPolicy(graph, core.PolicyConfig{MaxParallelism: 64})
		if err != nil {
			return nil, err
		}
		mgr, err := core.NewManager(pol, initPar, core.ManagerConfig{WarmupIntervals: 1, Aggregation: core.AggMax})
		if err != nil {
			return nil, err
		}
		return controlloop.DS2Autoscaler(mgr), nil
	case "dhalion":
		ctrl, err := dhalion.New(graph, dhalion.Config{MaxParallelism: 64})
		if err != nil {
			return nil, err
		}
		return dhalion.Autoscaler(ctrl), nil
	case "queueing":
		ctrl, err := queueing.New(graph, queueing.Config{MaxParallelism: 64})
		if err != nil {
			return nil, err
		}
		return queueing.Autoscaler(ctrl), nil
	default:
		return nil, fmt.Errorf("unknown controller %q", controller)
	}
}

func buildWorkload(name string) (*dataflow.Graph, map[string]engine.OperatorSpec, map[string]engine.SourceSpec, error) {
	if name == "wordcount" {
		w, err := wordcount.Heron(0)
		if err != nil {
			return nil, nil, nil, err
		}
		return w.Graph, w.Specs, w.Sources, nil
	}
	for _, q := range nexmark.QueryNames() {
		if q == name {
			w, err := nexmark.Query(name, nexmark.SystemFlink)
			if err != nil {
				return nil, nil, nil, err
			}
			return w.Graph, w.Specs, w.Sources, nil
		}
	}
	known := append([]string{"wordcount"}, nexmark.QueryNames()...)
	sort.Strings(known)
	return nil, nil, nil, fmt.Errorf("unknown workload %q (have %v)", name, known)
}
