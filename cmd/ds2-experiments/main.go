// Command ds2-experiments regenerates the paper's tables and figures
// on the simulator substrate. Each experiment id corresponds to one
// artifact of the evaluation section (§5), and every experiment drives
// its engine through the shared controlloop.Controller; see DESIGN.md
// for the per-experiment index and the control-loop architecture.
//
// Usage:
//
//	ds2-experiments -list
//	ds2-experiments -exp table4
//	ds2-experiments -all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ds2/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run")
	list := flag.Bool("list", false, "list experiment ids")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	switch {
	case *list:
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
	case *all:
		for _, n := range experiments.Names() {
			if n == "fig1" { // same runner as fig6
				continue
			}
			if err := run(n); err != nil {
				fmt.Fprintln(os.Stderr, "ds2-experiments:", err)
				os.Exit(1)
			}
		}
	case *exp != "":
		if err := run(*exp); err != nil {
			fmt.Fprintln(os.Stderr, "ds2-experiments:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(id string) error {
	start := time.Now()
	res, err := experiments.Run(id)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Printf("### %s (wall clock %.1fs)\n", id, time.Since(start).Seconds())
	fmt.Println(res)
	return nil
}
