// Command ds2-experiments regenerates the paper's tables and figures
// on the simulator substrate. Each experiment id corresponds to one
// artifact of the evaluation section (§5), and every experiment drives
// its engine through the shared controlloop.Controller; see DESIGN.md
// for the per-experiment index and the control-loop architecture.
//
// Experiments fan their independent cells (Table 4's 36 convergence
// runs, the Fig. 8/9 sweeps, Fig. 10's query grid, ...) across a
// bounded worker pool; -all additionally runs whole experiments
// concurrently. Results are assembled deterministically, so output is
// byte-identical to a serial (-parallel 1) run.
//
// Usage:
//
//	ds2-experiments -list
//	ds2-experiments -exp table4
//	ds2-experiments -all
//	ds2-experiments -all -parallel 1   # serial reference run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ds2/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run")
	list := flag.Bool("list", false, "list experiment ids")
	all := flag.Bool("all", false, "run every experiment")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker pool size for experiment cells (1 = serial)")
	flag.Parse()

	experiments.SetParallelism(*parallel)

	switch {
	case *list:
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
	case *all:
		ids := make([]string, 0, len(experiments.Names()))
		for _, n := range experiments.Names() {
			if n == "fig1" { // same runner as fig6
				continue
			}
			ids = append(ids, n)
		}
		// Results stream in registry order as each prefix completes,
		// so a failure late in the suite cannot discard output that
		// already finished.
		err := experiments.RunManyFunc(ids, func(r experiments.Result) {
			fmt.Printf("### %s (wall clock %.1fs)\n", r.ID, r.Elapsed.Seconds())
			fmt.Println(r.Output)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ds2-experiments:", err)
			os.Exit(1)
		}
	case *exp != "":
		if err := run(*exp); err != nil {
			fmt.Fprintln(os.Stderr, "ds2-experiments:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(id string) error {
	start := time.Now()
	res, err := experiments.Run(id)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Printf("### %s (wall clock %.1fs)\n", id, time.Since(start).Seconds())
	fmt.Println(res)
	return nil
}
