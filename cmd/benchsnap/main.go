// Command benchsnap parses `go test -bench` output from stdin and
// writes a BENCH_<n>.json snapshot — one point of the repo's
// performance trajectory. Each snapshot records the date, toolchain,
// and per-benchmark ns/op, B/op, allocs/op and custom metrics, so
// perf-focused PRs can be judged against the committed history:
//
//	go test -run XXX -bench . -benchmem . | go run ./cmd/benchsnap
//
// Stdin is echoed to stdout, so the tool tees transparently at the
// end of a pipeline. With no -out flag the snapshot lands in the next
// unused BENCH_<n>.json in the working directory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_<n>.json schema.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "snapshot path (default: next unused BENCH_<n>.json)")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	flag.Parse()

	snap := Snapshot{
		Date:      time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Note:      *note,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	sawPass, sawFail := false, false
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee
		switch {
		case line == "PASS" || strings.HasPrefix(line, "ok "):
			sawPass = true
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			sawFail = true
		}
		if b, ok := parseLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: read:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin; snapshot not written")
		os.Exit(1)
	}
	if sawFail || !sawPass {
		// A truncated or failing run must not become a trajectory
		// point: only a clean `go test` trailer persists a snapshot.
		fmt.Fprintln(os.Stderr, "benchsnap: benchmark run did not finish cleanly; snapshot not written")
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = nextSnapshotPath()
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   1234   56789 ns/op   100 B/op   3 allocs/op   1.5 custom-metric
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -N GOMAXPROCS suffix, whatever host produced it.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// nextSnapshotPath returns BENCH_<n>.json for the smallest n not yet
// taken, so successive `make bench` runs extend the trajectory.
func nextSnapshotPath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
