// Command benchsnap parses `go test -bench` output from stdin and
// writes a BENCH_<n>.json snapshot — one point of the repo's
// performance trajectory. Each snapshot records the date, toolchain,
// and per-benchmark ns/op, B/op, allocs/op and custom metrics, so
// perf-focused PRs can be judged against the committed history:
//
//	go test -run XXX -bench . -benchmem . | go run ./cmd/benchsnap
//
// Stdin is echoed to stdout, so the tool tees transparently at the
// end of a pipeline. With no -out flag the snapshot lands in the next
// unused BENCH_<n>.json in the working directory.
//
// With -compare BENCH_<n>.json the tool writes nothing: it parses the
// run the same way and prints per-benchmark deltas against the given
// snapshot instead — the CI smoke step runs one iteration of every
// benchmark against the latest committed snapshot so throughput
// regressions surface in the job log (single-iteration timings are
// noisy; the deltas are a tripwire, not a gate, so compare mode fails
// only on test failure, never on a slow run).
//
// -regress <pct> turns the tripwire into a gate: any compared
// benchmark whose ns/op grew by more than pct percent is flagged and
// the exit status becomes 1. -regress-match <regexp> narrows the gate
// to matching benchmark names, and -regress-min-iters (default 2)
// exempts runs too short to time honestly — a `-benchtime 1x` smoke
// pass never trips the gate by accident.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_<n>.json schema.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "snapshot path (default: next unused BENCH_<n>.json)")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	compare := flag.String("compare", "", "print deltas against this BENCH_<n>.json instead of writing a snapshot")
	regress := flag.Float64("regress", 0, "with -compare: fail (exit 1) on ns/op regressions beyond this percentage (0 disables)")
	regressMatch := flag.String("regress-match", "", "with -regress: gate only benchmarks whose name matches this regexp")
	regressMinIters := flag.Int64("regress-min-iters", 2, "with -regress: exempt benchmarks that ran fewer iterations than this")
	flag.Parse()
	var matchRE *regexp.Regexp
	if *regressMatch != "" {
		re, err := regexp.Compile(*regressMatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap: -regress-match:", err)
			os.Exit(1)
		}
		matchRE = re
	}

	snap := Snapshot{
		Date:      time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Note:      *note,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	sawPass, sawFail := false, false
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee
		switch {
		case line == "PASS" || strings.HasPrefix(line, "ok "):
			sawPass = true
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			sawFail = true
		}
		if b, ok := parseLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: read:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin; snapshot not written")
		os.Exit(1)
	}
	if sawFail || !sawPass {
		// A truncated or failing run must not become a trajectory
		// point: only a clean `go test` trailer persists a snapshot.
		fmt.Fprintln(os.Stderr, "benchsnap: benchmark run did not finish cleanly; snapshot not written")
		os.Exit(1)
	}
	if *compare != "" {
		gate := regressionGate{threshold: *regress, match: matchRE, minIters: *regressMinIters}
		if err := printComparison(*compare, snap.Benchmarks, gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		return
	}
	path := *out
	if path == "" {
		path = nextSnapshotPath()
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   1234   56789 ns/op   100 B/op   3 allocs/op   1.5 custom-metric
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -N GOMAXPROCS suffix, whatever host produced it.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// regressionGate decides which compared benchmarks may fail the run.
type regressionGate struct {
	threshold float64 // percent ns/op growth tolerated; 0 disables
	match     *regexp.Regexp
	minIters  int64
}

// check reports whether this benchmark regressed past the gate.
func (g regressionGate) check(old, cur Benchmark) bool {
	if g.threshold <= 0 || old.NsPerOp == 0 {
		return false
	}
	if cur.Iterations < g.minIters {
		return false // too few iterations to time honestly
	}
	if g.match != nil && !g.match.MatchString(cur.Name) {
		return false
	}
	return (cur.NsPerOp-old.NsPerOp)/old.NsPerOp*100 > g.threshold
}

// printComparison loads a baseline snapshot and prints one delta line
// per benchmark of the current run: ns/op and allocs/op always, plus
// every custom metric the two runs share. New and vanished benchmarks
// are flagged rather than silently dropped. A non-zero gate threshold
// turns flagged regressions into a failure.
func printComparison(path string, current []Benchmark, gate regressionGate) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	fmt.Printf("\nbenchsnap: vs %s (%s, %s)\n", path, base.Date, base.GoVersion)
	seen := make(map[string]bool, len(current))
	var regressed []string
	for _, b := range current {
		seen[b.Name] = true
		old, ok := baseline[b.Name]
		if !ok {
			fmt.Printf("  %-44s new benchmark (%.0f ns/op)\n", b.Name, b.NsPerOp)
			continue
		}
		line := fmt.Sprintf("  %-44s ns/op %s", b.Name, delta(old.NsPerOp, b.NsPerOp))
		if old.AllocsPerOp != 0 || b.AllocsPerOp != 0 {
			line += fmt.Sprintf("   allocs/op %.0f -> %.0f", old.AllocsPerOp, b.AllocsPerOp)
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if ov, ok := old.Metrics[unit]; ok {
				line += fmt.Sprintf("   %s %s", unit, delta(ov, b.Metrics[unit]))
			}
		}
		if gate.check(old, b) {
			regressed = append(regressed, b.Name)
			line += "   REGRESSION"
		}
		fmt.Println(line)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Printf("  %-44s MISSING from this run (was %.0f ns/op)\n", b.Name, b.NsPerOp)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.1f%% in ns/op: %s",
			len(regressed), gate.threshold, strings.Join(regressed, ", "))
	}
	return nil
}

// delta formats "old -> new (+x%)".
func delta(old, cur float64) string {
	if old == 0 {
		return fmt.Sprintf("%.4g -> %.4g", old, cur)
	}
	return fmt.Sprintf("%.4g -> %.4g (%+.1f%%)", old, cur, (cur-old)/old*100)
}

// nextSnapshotPath returns BENCH_<n>.json for the smallest n not yet
// taken, so successive `make bench` runs extend the trajectory.
func nextSnapshotPath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
