// Command ds2d is the DS2 scaling service: the deployment architecture
// of the paper's Fig. 5 as a long-running daemon. Streaming jobs
// register their logical graph and autoscaler choice, report
// per-window instrumentation over HTTP, and poll for rescale commands
// which they apply through their engine's API and ack once the
// savepoint-and-restore cycle completes. One decision loop runs per
// job, so a single daemon scales a whole fleet of jobs concurrently.
//
// Usage:
//
//	ds2d [-addr :7361] [-history 256] [-max-pending 64] [-poll-wait 30s]
//	     [-max-request-bytes 8388608] [-header-timeout 10s]
//	     [-audit 256] [-log-json] [-quiet] [-pprof]
//
// API (all request/response bodies are JSON unless noted):
//
//	GET    /healthz              readiness: job counts, uptime, build info
//	GET    /metrics              Prometheus text-format exposition
//	POST   /jobs                 register a job spec, returns {"id": ...}
//	GET    /jobs                 list jobs
//	GET    /jobs/{id}            one job's status
//	DELETE /jobs/{id}            stop the job, returns its final trace
//	POST   /jobs/{id}/metrics    ingest one instrumentation report
//	GET    /jobs/{id}/action     poll the pending scaling command
//	                             (?seen=N&wait_ms=M long-polls)
//	POST   /jobs/{id}/acked      ack a completed redeployment
//	GET    /jobs/{id}/trace      the structured per-interval trace
//	GET    /jobs/{id}/snapshots  recent aggregated metric snapshots
//	GET    /jobs/{id}/decisions  the scaling-decision audit trace (?n=K)
//	GET    /debug/pprof/...      profiling, only with -pprof
//
// Try it end to end without a real engine: `go run ./examples/service`
// registers the Heron wordcount benchmark as a simulated remote job
// against a ds2d instance and prints the decision timeline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ds2/internal/service"
)

func main() {
	addr := flag.String("addr", ":7361", "listen address")
	history := flag.Int("history", 256, "aggregated snapshots retained per job")
	maxPending := flag.Int("max-pending", 64, "ingestion buffer bound per job (reports)")
	pollWait := flag.Duration("poll-wait", 30*time.Second, "maximum action long-poll")
	maxBody := flag.Int64("max-request-bytes", 8<<20, "per-request body cap (413 beyond it)")
	headerTimeout := flag.Duration("header-timeout", 10*time.Second, "read-header timeout (slowloris guard)")
	audit := flag.Int("audit", 256, "scaling decisions retained per job for /decisions")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of key=value text")
	quiet := flag.Bool("quiet", false, "disable per-request and job-lifecycle logging")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof/ (exposes heap contents; keep off on shared networks)")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	svcLogger := logger
	if *quiet {
		svcLogger = nil
	}

	svc := service.NewServer(service.ServerConfig{
		HistoryLimit:      *history,
		MaxPendingReports: *maxPending,
		MaxPollWait:       *pollWait,
		MaxRequestBytes:   *maxBody,
		AuditLimit:        *audit,
		Logger:            svcLogger,
		EnablePprof:       *enablePprof,
	})
	// ReadHeaderTimeout bounds how long an idle connection may dribble
	// its headers; without it every half-open socket pins a goroutine
	// forever (slowloris). It deliberately does NOT bound the body or
	// the response: action long-polls hold requests open for up to
	// -poll-wait by design.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: *headerTimeout,
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("ds2d listening", "addr", *addr, "pprof", *enablePprof)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ds2d:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		logger.Info("ds2d shutting down", "signal", sig.String())
		// Stop the jobs first: Close wakes every parked action
		// long-poll, so Shutdown can actually drain in-flight
		// handlers instead of timing out on them.
		svc.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("ds2d shutdown", "err", err)
		}
	}
}
