package main

import (
	"strings"
	"testing"
)

func TestEvaluateExample(t *testing.T) {
	resp, err := Evaluate([]byte(RequestExample))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Parallelism["flatmap"] != 10 || resp.Parallelism["count"] != 20 {
		t.Errorf("decision = %v, want flatmap:10 count:20", resp.Parallelism)
	}
	if resp.TotalWorkers != 31 {
		t.Errorf("total workers = %d, want 31", resp.TotalWorkers)
	}
	pretty := resp.Pretty()
	for _, want := range []string{"flatmap\t10", "count\t20", "total workers"} {
		if !strings.Contains(pretty, want) {
			t.Errorf("pretty output missing %q:\n%s", want, pretty)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	cases := []struct {
		name string
		req  string
		want string
	}{
		{"bad json", `{`, "parsing request"},
		{"unknown field", `{"nope": 1}`, "parsing request"},
		{"empty", `{}`, "no operators"},
		{"source without rate", `{
			"operators": [{"name":"s"},{"name":"m"}],
			"edges": [["s","m"]],
			"current": {"s":1,"m":1},
			"rates": {"m": {"operator":"m","instances":1,"true_processing":10}}
		}`, "no source_rate"},
		{"rate on non-source", `{
			"operators": [{"name":"s","source_rate":5},{"name":"m","source_rate":5}],
			"edges": [["s","m"]],
			"current": {"s":1,"m":1},
			"rates": {"m": {"operator":"m","instances":1,"true_processing":10}}
		}`, "incoming edges"},
		{"graph error", `{
			"operators": [{"name":"s","source_rate":5},{"name":"s"}],
			"edges": [],
			"current": {},
			"rates": {}
		}`, "duplicate"},
		{"missing operator rates", `{
			"operators": [{"name":"s","source_rate":5},{"name":"m"}],
			"edges": [["s","m"]],
			"current": {"s":1,"m":1},
			"rates": {}
		}`, "missing rates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Evaluate([]byte(tc.req))
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v missing %q", err, tc.want)
			}
		})
	}
}

func TestEvaluateNonScalable(t *testing.T) {
	req := `{
		"operators": [{"name":"s","source_rate":100},{"name":"m","non_scalable":true},{"name":"k"}],
		"edges": [["s","m"],["m","k"]],
		"current": {"s":1,"m":1,"k":1},
		"rates": {
			"m": {"operator":"m","instances":1,"true_processing":10,"true_output":10},
			"k": {"operator":"k","instances":1,"true_processing":10}
		}
	}`
	resp, err := Evaluate([]byte(req))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Parallelism["m"] != 1 {
		t.Errorf("non-scalable m resized to %d", resp.Parallelism["m"])
	}
	if resp.Parallelism["k"] != 10 {
		t.Errorf("k = %d, want 10", resp.Parallelism["k"])
	}
}

func TestEvaluateBoost(t *testing.T) {
	req := `{
		"operators": [{"name":"s","source_rate":400},{"name":"m"}],
		"edges": [["s","m"]],
		"current": {"s":1,"m":1},
		"rates": {"m": {"operator":"m","instances":1,"true_processing":100}},
		"boost": 1.25
	}`
	resp, err := Evaluate([]byte(req))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Parallelism["m"] != 5 {
		t.Errorf("m = %d, want 5 (boosted)", resp.Parallelism["m"])
	}
}

func TestEvaluateWindows(t *testing.T) {
	// The example request's rates, delivered as raw per-instance
	// windows instead: flatmap did 0.1 s useful work in a 1 s window
	// processing 166.7 sentences (true rate 1667/s), count 0.1 s
	// processing 1666.7 words (true rate 16667/s).
	req := `{
		"operators": [{"name":"source","source_rate":16667},{"name":"flatmap"},{"name":"count"}],
		"edges": [["source","flatmap"],["flatmap","count"]],
		"current": {"source":1,"flatmap":1,"count":1},
		"windows": [
			{"id":{"operator":"flatmap","index":0},"window":1,"processing":0.1,"processed":166.7,"pushed":3334},
			{"id":{"operator":"count","index":0},"window":1,"processing":0.1,"processed":1666.7,"pushed":0}
		],
		"max_parallelism": 36
	}`
	resp, err := Evaluate([]byte(req))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Parallelism["flatmap"] != 10 || resp.Parallelism["count"] != 20 {
		t.Errorf("decision = %v, want flatmap:10 count:20", resp.Parallelism)
	}
}

func TestEvaluateWindowsDuplicateInstance(t *testing.T) {
	req := `{
		"operators": [{"name":"s","source_rate":100},{"name":"m"}],
		"edges": [["s","m"]],
		"current": {"s":1,"m":1},
		"windows": [
			{"id":{"operator":"m","index":0},"window":1,"processing":0.5,"processed":50,"pushed":0},
			{"id":{"operator":"m","index":0},"window":1,"processing":0.5,"processed":50,"pushed":0}
		]
	}`
	_, err := Evaluate([]byte(req))
	if err == nil {
		t.Fatal("duplicate instance id accepted")
	}
	if !strings.Contains(err.Error(), "duplicate instance id m[0]") {
		t.Errorf("error %v does not name the duplicate instance", err)
	}
}

func TestEvaluateWindowsRatesConflict(t *testing.T) {
	req := `{
		"operators": [{"name":"s","source_rate":100},{"name":"m"}],
		"edges": [["s","m"]],
		"current": {"s":1,"m":1},
		"rates": {"m": {"operator":"m","instances":1,"true_processing":100}},
		"windows": [
			{"id":{"operator":"m","index":0},"window":1,"processing":0.5,"processed":50,"pushed":0}
		]
	}`
	_, err := Evaluate([]byte(req))
	if err == nil {
		t.Fatal("rates+windows conflict accepted")
	}
	if !strings.Contains(err.Error(), "both rates and windows") {
		t.Errorf("error %v does not explain the conflict", err)
	}
}

func TestEvaluateWindowsUnknownOperator(t *testing.T) {
	req := `{
		"operators": [{"name":"s","source_rate":100},{"name":"m"}],
		"edges": [["s","m"]],
		"current": {"s":1,"m":1},
		"rates": {"m": {"operator":"m","instances":1,"true_processing":100}},
		"windows": [
			{"id":{"operator":"mm","index":0},"window":1,"processing":0.5,"processed":50,"pushed":0}
		]
	}`
	_, err := Evaluate([]byte(req))
	if err == nil {
		t.Fatal("window for unknown operator accepted")
	}
	if !strings.Contains(err.Error(), `unknown operator "mm"`) {
		t.Errorf("error %v does not name the unknown operator", err)
	}
}
