// Command ds2 is the standalone scaling controller CLI: it reads a
// request describing the logical dataflow, the current deployment and
// one interval's aggregated metrics, evaluates the DS2 policy, and
// prints the optimal parallelism for every operator.
//
// Usage:
//
//	ds2 [-in request.json] [-pretty]
//
// The request is read from stdin when -in is omitted. See
// RequestExample (printed with -example) for the format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	in := flag.String("in", "", "request JSON file (default: stdin)")
	pretty := flag.Bool("pretty", false, "human-readable output instead of JSON")
	example := flag.Bool("example", false, "print an example request and exit")
	flag.Parse()

	if *example {
		fmt.Println(RequestExample)
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	resp, err := Evaluate(data)
	if err != nil {
		fatal(err)
	}
	if *pretty {
		fmt.Print(resp.Pretty())
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ds2:", err)
	os.Exit(1)
}
