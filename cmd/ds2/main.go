// Command ds2 is the standalone scaling controller CLI: it reads a
// request describing the logical dataflow, the current deployment and
// one interval's metrics — either pre-aggregated per-operator rates or
// raw per-instance windows — evaluates the DS2 policy, and prints the
// optimal parallelism for every operator.
//
// Usage:
//
//	ds2 [-in request.json] [-pretty]
//
// The request is read from stdin when -in is omitted. See
// RequestExample (printed with -example) for the format.
//
// ds2 is one-shot: one request, one decision, exit. For a long-running
// scaling service — a job registry, continuous metrics ingestion and a
// decision loop per job over HTTP — run the ds2d daemon instead:
//
//	go run ./cmd/ds2d
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	in := flag.String("in", "", "request JSON file (default: stdin)")
	pretty := flag.Bool("pretty", false, "human-readable output instead of JSON")
	example := flag.Bool("example", false, "print an example request and exit")
	serve := flag.Bool("serve", false, "unsupported here: the scaling service lives in ds2d")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: ds2 [-in request.json] [-pretty | -example]\n\n"+
				"One-shot DS2 policy evaluation: read a request, print the optimal\n"+
				"parallelism, exit. For a long-running scaling service (job registry,\n"+
				"metrics ingestion API, per-job decision loops over HTTP) use the ds2d\n"+
				"daemon instead:  go run ./cmd/ds2d\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *serve {
		fatal(errors.New("ds2 is one-shot; run the scaling service with: go run ./cmd/ds2d"))
	}

	if *example {
		fmt.Println(RequestExample)
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	resp, err := Evaluate(data)
	if err != nil {
		fatal(err)
	}
	if *pretty {
		fmt.Print(resp.Pretty())
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ds2:", err)
	os.Exit(1)
}
