package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ds2"
)

// OperatorInput describes one operator of the request graph.
type OperatorInput struct {
	Name string `json:"name"`
	// SourceRate marks the operator as a source with the given target
	// output rate in records/s.
	SourceRate *float64 `json:"source_rate,omitempty"`
	// NonScalable pins the operator's parallelism.
	NonScalable bool `json:"non_scalable,omitempty"`
}

// Request is the controller CLI's input.
type Request struct {
	Operators []OperatorInput `json:"operators"`
	Edges     [][2]string     `json:"edges"`
	Current   ds2.Parallelism `json:"current"`
	// Rates carries each non-source operator's aggregated true rates
	// for the interval (Eq. 5–6).
	Rates map[string]ds2.OperatorRates `json:"rates"`
	// Windows alternatively carries the raw per-instance windows of
	// the interval (§4.1); the CLI aggregates them per Eq. 5–6. Two
	// windows for the same instance id are rejected — a duplicated
	// instance would silently inflate the operator's measured
	// capacity. An operator may appear in Rates or Windows, not both.
	Windows []ds2.WindowMetrics `json:"windows,omitempty"`
	// MaxParallelism caps the decision (0 = uncapped).
	MaxParallelism int `json:"max_parallelism,omitempty"`
	// Boost multiplies source targets (>= 1); see the paper's target
	// rate ratio (§4.2.1). Defaults to 1.
	Boost float64 `json:"boost,omitempty"`
}

// Response is the controller CLI's output.
type Response struct {
	Parallelism   ds2.Parallelism    `json:"parallelism"`
	TotalWorkers  int                `json:"total_workers"`
	TargetRate    map[string]float64 `json:"target_rate"`
	OptimalOutput map[string]float64 `json:"optimal_output"`
}

// Pretty renders the response as a table.
func (r Response) Pretty() string {
	names := make([]string, 0, len(r.Parallelism))
	for n := range r.Parallelism {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("operator\tparallelism\ttarget rate (rec/s)\toptimal output (rec/s)\n")
	for _, n := range names {
		fmt.Fprintf(&sb, "%s\t%d\t%.0f\t%.0f\n", n, r.Parallelism[n], r.TargetRate[n], r.OptimalOutput[n])
	}
	fmt.Fprintf(&sb, "total workers (Timely-style sum): %d\n", r.TotalWorkers)
	return sb.String()
}

// Evaluate parses a request and runs one policy decision.
func Evaluate(data []byte) (*Response, error) {
	var req Request
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("parsing request: %w", err)
	}
	if len(req.Operators) == 0 {
		return nil, fmt.Errorf("request has no operators")
	}

	b := ds2.NewGraphBuilder()
	sourceRates := map[string]float64{}
	for _, op := range req.Operators {
		if op.NonScalable {
			b.AddNonScalableOperator(op.Name)
		} else {
			b.AddOperator(op.Name)
		}
		if op.SourceRate != nil {
			sourceRates[op.Name] = *op.SourceRate
		}
	}
	for _, e := range req.Edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Every declared source must carry a rate and vice versa.
	for _, s := range g.Sources() {
		if _, ok := sourceRates[s]; !ok {
			return nil, fmt.Errorf("source %q has no source_rate", s)
		}
	}
	for s := range sourceRates {
		op, ok := g.Lookup(s)
		if !ok || op.Role != ds2.RoleSource {
			return nil, fmt.Errorf("operator %q has source_rate but incoming edges", s)
		}
	}

	rates := req.Rates
	if len(req.Windows) > 0 {
		// Reject unknown operators and duplicate instance ids before
		// aggregating, so a typo or a double-pasted window surfaces as
		// a named error instead of a silently wrong decision.
		seen := make(map[ds2.InstanceID]bool, len(req.Windows))
		for _, w := range req.Windows {
			if _, ok := g.Lookup(w.ID.Operator); !ok {
				return nil, fmt.Errorf("request windows: unknown operator %q", w.ID.Operator)
			}
			if seen[w.ID] {
				return nil, fmt.Errorf("request windows: duplicate instance id %s", w.ID)
			}
			seen[w.ID] = true
		}
		snap, err := ds2.BuildSnapshot(0, req.Windows, nil)
		if err != nil {
			return nil, fmt.Errorf("request windows: %w", err)
		}
		if rates == nil {
			rates = make(map[string]ds2.OperatorRates, len(snap.Operators))
		}
		for op, r := range snap.Operators {
			if _, dup := rates[op]; dup {
				return nil, fmt.Errorf("operator %q appears in both rates and windows", op)
			}
			rates[op] = r
		}
	}

	pol, err := ds2.NewPolicy(g, ds2.PolicyConfig{MaxParallelism: req.MaxParallelism})
	if err != nil {
		return nil, err
	}
	boost := req.Boost
	if boost == 0 {
		boost = 1
	}
	snap := ds2.Snapshot{Operators: rates, SourceRates: sourceRates}
	decision, err := pol.Decide(snap, req.Current, boost)
	if err != nil {
		return nil, err
	}
	return &Response{
		Parallelism:   decision.Parallelism,
		TotalWorkers:  ds2.TotalWorkers(decision),
		TargetRate:    decision.TargetRate,
		OptimalOutput: decision.OptimalOutput,
	}, nil
}

// RequestExample is a complete request for the paper's wordcount
// benchmark: one 60 s interval of metrics from the (1, 1, 1)
// deployment; the response indicates 10 FlatMap and 20 Count.
const RequestExample = `{
  "operators": [
    {"name": "source", "source_rate": 16667},
    {"name": "flatmap"},
    {"name": "count"}
  ],
  "edges": [["source", "flatmap"], ["flatmap", "count"]],
  "current": {"source": 1, "flatmap": 1, "count": 1},
  "rates": {
    "flatmap": {"operator": "flatmap", "instances": 1, "true_processing": 1667, "true_output": 33340},
    "count":   {"operator": "count",   "instances": 1, "true_processing": 16667, "true_output": 0}
  },
  "max_parallelism": 36
}`
