// Command ds2-top is a terminal dashboard for a running ds2d (or a
// ds2-live exporter): it polls GET /metrics, renders each operator's
// §3 time split as a bar — deserialization/processing/serialization
// useful time against waiting time — next to its instance count,
// true/observed rates and backpressure, summarizes the sampled
// record-latency histogram, and, when the target is a ds2d, tails the
// scaling-decision audit trace (GET /jobs/{id}/decisions) and draws
// each recent rescale's phase timeline (GET /jobs/{id}/rescales) as a
// gantt of drain/snapshot/router_rebuild/transfer/restart/first_record.
//
// Usage:
//
//	ds2-top [-addr http://127.0.0.1:7361] [-interval 2s] [-once]
//	        [-decisions 8] [-rescales 4]
//
// The bar legend: '#' processing, '=' serialization, '-'
// deserialization, '.' waiting (input or output). A healthy saturated
// operator is mostly '#'; a mostly-'.' operator is idle or blocked.
//
// Each panel degrades independently: a scrape that fails or a family
// the exporter stopped serving this tick blanks that panel with a
// notice while the rest of the frame keeps rendering — a dashboard
// must survive the restarts and rescales it exists to show.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ds2/internal/obs"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7361", "base URL of the /metrics exporter (ds2d or ds2-live -metrics-addr)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	nDecisions := flag.Int("decisions", 8, "audit-trace entries to tail per job")
	nRescales := flag.Int("rescales", 4, "rescale timelines to draw per job")
	flag.Parse()
	base := strings.TrimRight(*addr, "/")

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		frame, ok := render(client, base, *nDecisions, *nRescales)
		if *once {
			fmt.Print(frame)
			if !ok {
				os.Exit(1)
			}
			return
		}
		fmt.Print("\x1b[2J\x1b[H", frame)
		time.Sleep(*interval)
	}
}

// render lays out the full frame. It always returns a frame — a
// failed scrape or a missing family degrades its panel with an inline
// notice instead of aborting — and reports whether the /metrics
// scrape itself succeeded (the -once exit code).
func render(client *http.Client, base string, nDecisions, nRescales int) (string, bool) {
	var b strings.Builder
	fmt.Fprintf(&b, "ds2-top  %s  %s\n", base, time.Now().Format("15:04:05"))
	sc, err := scrapeMetrics(client, base)
	if err != nil {
		// The exporter may be mid-restart or mid-rescale; blank the
		// metrics panels for this tick and keep the frame alive.
		fmt.Fprintf(&b, "metrics unavailable: %v\n\n", err)
	} else {
		if up := sc.Get("ds2d_uptime_seconds"); len(up) == 1 {
			fmt.Fprintf(&b, "ds2d up %s", (time.Duration(up[0].Value) * time.Second).String())
			for _, s := range sc.Get("ds2d_jobs") {
				if s.Value > 0 {
					fmt.Fprintf(&b, "  %s:%d", s.Label("state"), int(s.Value))
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
		renderOperators(&b, sc)
		renderLatency(&b, sc)
	}
	jobs := listJobs(client, base)
	renderDecisions(&b, client, base, jobs, nDecisions)
	renderRescales(&b, client, base, jobs, nRescales)
	return b.String(), err == nil
}

func scrapeMetrics(client *http.Client, base string) (obs.Scrape, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return obs.Scrape{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Scrape{}, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// opRow is one operator's signals gathered from the scrape.
type opRow struct {
	name                string
	instances           float64
	phases              map[string]float64 // time fractions
	trueProc, obsProc   float64
	bp                  float64
	haveRates, haveInst bool
}

func renderOperators(b *strings.Builder, sc obs.Scrape) {
	rows := make(map[string]*opRow)
	row := func(op string) *opRow {
		r, ok := rows[op]
		if !ok {
			r = &opRow{name: op, phases: make(map[string]float64)}
			rows[op] = r
		}
		return r
	}
	for _, s := range sc.Get("streamrt_time_fraction") {
		row(s.Label("operator")).phases[s.Label("phase")] = s.Value
	}
	for _, s := range sc.Get("streamrt_operator_instances") {
		r := row(s.Label("operator"))
		r.instances, r.haveInst = s.Value, true
	}
	for _, s := range sc.Get("streamrt_true_rate") {
		if s.Label("kind") == "processing" {
			r := row(s.Label("operator"))
			r.trueProc, r.haveRates = s.Value, true
		}
	}
	for _, s := range sc.Get("streamrt_observed_rate") {
		if s.Label("kind") == "processing" {
			row(s.Label("operator")).obsProc = s.Value
		}
	}
	for _, s := range sc.Get("streamrt_backpressure_fraction") {
		row(s.Label("operator")).bp = s.Value
	}
	if len(rows) == 0 {
		b.WriteString("no streamrt operator telemetry (is a live job exporting?)\n\n")
		return
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(b, "%-14s %5s  %-40s %10s %10s %5s\n",
		"OPERATOR", "INST", "TIME SPLIT (#=proc ==ser -=deser .=wait)", "TRUE r/s", "OBS r/s", "BP%")
	for _, n := range names {
		r := rows[n]
		inst := "-"
		if r.haveInst {
			inst = fmt.Sprintf("%d", int(r.instances))
		}
		tr, ob := "-", "-"
		if r.haveRates {
			tr = fmtRate(r.trueProc)
			ob = fmtRate(r.obsProc)
		}
		fmt.Fprintf(b, "%-14s %5s  %-40s %10s %10s %4.0f%%\n",
			r.name, inst, bar(r.phases, 40), tr, ob, r.bp*100)
	}
	b.WriteString("\n")
}

// bar renders the time-split fractions as a fixed-width segment bar.
func bar(phases map[string]float64, width int) string {
	segs := []struct {
		phase string
		ch    byte
	}{
		{"deserialization", '-'},
		{"processing", '#'},
		{"serialization", '='},
		{"waiting_input", '.'},
		{"waiting_output", '.'},
	}
	var out []byte
	for _, seg := range segs {
		n := int(phases[seg.phase]*float64(width) + 0.5)
		for i := 0; i < n && len(out) < width; i++ {
			out = append(out, seg.ch)
		}
	}
	for len(out) < width {
		out = append(out, ' ')
	}
	return string(out)
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// renderLatency summarizes the sampled record-latency histogram per
// sink: count plus bucket-estimated p50/p99.
func renderLatency(b *strings.Builder, sc obs.Scrape) {
	type hist struct {
		count float64
		// cumulative buckets in le order
		uppers []float64
		cums   []float64
	}
	hists := make(map[string]*hist)
	for _, s := range sc.Get("streamrt_record_latency_seconds_bucket") {
		op := s.Label("operator")
		h, ok := hists[op]
		if !ok {
			h = &hist{}
			hists[op] = h
		}
		le := s.Label("le")
		var upper float64
		if le == "+Inf" {
			upper = -1 // sorts last via the append order below
		} else {
			fmt.Sscanf(le, "%g", &upper)
		}
		h.uppers = append(h.uppers, upper)
		h.cums = append(h.cums, s.Value)
	}
	for _, s := range sc.Get("streamrt_record_latency_seconds_count") {
		if h := hists[s.Label("operator")]; h != nil {
			h.count = s.Value
		}
	}
	ops := make([]string, 0, len(hists))
	for op := range hists {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		h := hists[op]
		if h.count == 0 {
			continue
		}
		fmt.Fprintf(b, "latency %-12s samples=%d (1/1024)  p50≈%s  p99≈%s\n",
			op, int(h.count), fmtDur(quantile(h.uppers, h.cums, h.count, 0.5)),
			fmtDur(quantile(h.uppers, h.cums, h.count, 0.99)))
	}
	if len(ops) > 0 {
		b.WriteString("\n")
	}
}

// quantile returns the upper bound of the first bucket whose
// cumulative count reaches q*total (the writer emits buckets in le
// order, so no re-sort is needed). A -1 upper marks +Inf.
func quantile(uppers, cums []float64, total, q float64) float64 {
	target := q * total
	best := -1.0
	for i, c := range cums {
		if c >= target {
			best = uppers[i]
			break
		}
	}
	return best
}

func fmtDur(v float64) string {
	if v < 0 {
		return ">max"
	}
	return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// jobInfo is the slice of GET /jobs the dashboard needs to key the
// per-job panels.
type jobInfo struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	State      string `json:"state"`
	Autoscaler string `json:"autoscaler"`
}

// listJobs fetches the job registry; nil means the endpoint is absent
// (a bare ds2-live exporter) or failed this tick, and the per-job
// panels are skipped.
func listJobs(client *http.Client, base string) []jobInfo {
	var jobs []jobInfo
	if !getJSON(client, fmt.Sprintf("%s/jobs", base), &jobs) {
		return nil
	}
	return jobs
}

// renderDecisions tails the audit trace of every registered job. The
// endpoints only exist on a ds2d; a bare ds2-live exporter 404s and
// the section is skipped silently.
func renderDecisions(b *strings.Builder, client *http.Client, base string, jobs []jobInfo, n int) {
	for _, j := range jobs {
		var body struct {
			Total     int `json:"total"`
			Decisions []struct {
				Seq     int     `json:"seq"`
				Time    float64 `json:"time"`
				Kind    string  `json:"kind"`
				Reason  string  `json:"reason"`
				Target  float64 `json:"target"`
				New     map[string]int
				Outcome string `json:"outcome"`
			} `json:"decisions"`
		}
		if !getJSON(client, fmt.Sprintf("%s/jobs/%s/decisions?n=%d", base, j.ID, n), &body) {
			continue
		}
		fmt.Fprintf(b, "decisions %s (%s, %s, %s): %d total\n", j.ID, j.Name, j.Autoscaler, j.State, body.Total)
		for _, d := range body.Decisions {
			newStr := make([]string, 0, len(d.New))
			ops := make([]string, 0, len(d.New))
			for op := range d.New {
				ops = append(ops, op)
			}
			sort.Strings(ops)
			for _, op := range ops {
				newStr = append(newStr, fmt.Sprintf("%s:%d", op, d.New[op]))
			}
			fmt.Fprintf(b, "  #%-3d t=%6.1fs %-8s target=%s -> {%s} [%s] %s\n",
				d.Seq, d.Time, d.Kind, fmtRate(d.Target), strings.Join(newStr, " "), d.Outcome, d.Reason)
		}
	}
}

// renderRescales draws each job's recent rescale timelines as phase
// gantts: one row per coordinator phase, its offset and width
// proportional to its place in the trace, with the per-worker fan-out
// count alongside. An incomplete timeline (first_record still
// pending, or a rescale that never finished) renders as "in flight".
func renderRescales(b *strings.Builder, client *http.Client, base string, jobs []jobInfo, n int) {
	for _, j := range jobs {
		var body struct {
			Total    int             `json:"total"`
			Rescales []obs.TraceView `json:"rescales"`
		}
		if !getJSON(client, fmt.Sprintf("%s/jobs/%s/rescales?n=%d", base, j.ID, n), &body) {
			continue
		}
		if len(body.Rescales) == 0 {
			continue
		}
		fmt.Fprintf(b, "rescales %s (%s): %d total\n", j.ID, j.Name, body.Total)
		for _, v := range body.Rescales {
			b.WriteString(timelineGantt(v))
		}
		b.WriteString("\n")
	}
}

// ganttWidth is the character budget of one timeline bar.
const ganttWidth = 44

// timelineGantt renders one rescale's coordinator phases as aligned
// proportional bars. Worker sub-spans are summarized as a fan-out
// count on their phase row; the span tree itself is on the wire for
// tools that want it.
func timelineGantt(v obs.TraceView) string {
	var b strings.Builder
	state := "in flight"
	if v.Complete {
		state = "complete"
	}
	fmt.Fprintf(&b, "  %-12s %-10s total=%s\n", v.ID, state, fmtDur(float64(v.DurationNs)/1e9))
	if v.DurationNs <= 0 {
		return b.String()
	}
	for _, s := range v.Spans {
		if s.Parent != 0 {
			continue
		}
		workers := 0
		for _, c := range v.Spans {
			if c.Parent == s.ID {
				workers++
			}
		}
		note := ""
		if workers > 0 {
			note = fmt.Sprintf("  %dw", workers)
		}
		fmt.Fprintf(&b, "    %-14s |%s| %s%s\n",
			s.Name, ganttBar(s, v.DurationNs), fmtDur(float64(s.Duration())/1e9), note)
	}
	return b.String()
}

// ganttBar places one span on the shared time axis; a nonzero span
// always shows at least one cell.
func ganttBar(s obs.Span, total int64) string {
	start := int(float64(s.StartNs) / float64(total) * ganttWidth)
	end := int(float64(s.EndNs)/float64(total)*ganttWidth + 0.5)
	if end <= start {
		end = start + 1
	}
	if end > ganttWidth {
		end = ganttWidth
		if start >= end {
			start = end - 1
		}
	}
	bar := make([]byte, ganttWidth)
	for i := range bar {
		if i >= start && i < end {
			bar[i] = '#'
		} else {
			bar[i] = ' '
		}
	}
	return string(bar)
}

// getJSON fetches and decodes one endpoint; false means skip the
// section (endpoint absent or malformed) rather than fail the frame.
func getJSON(client *http.Client, url string, v any) bool {
	resp, err := client.Get(url)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return false
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v) == nil
}
