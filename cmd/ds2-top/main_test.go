package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ds2/internal/obs"
)

func fullRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Gauge("ds2d_uptime_seconds", "Uptime.").Set(12)
	reg.Gauge("streamrt_operator_instances", "Instances.", obs.L("operator", "count")).Set(2)
	reg.Gauge("streamrt_time_fraction", "Share.", obs.L("operator", "count"), obs.L("phase", "processing")).Set(0.7)
	reg.Gauge("streamrt_true_rate", "True rate.", obs.L("operator", "count"), obs.L("kind", "processing")).Set(1500)
	return reg
}

func rescaleFixture() obs.TraceView {
	return obs.TraceView{
		ID: "rescale-1", Name: "rescale", StartedAt: time.Unix(0, 0), Complete: true,
		DurationNs: 10e6,
		Spans: []obs.Span{
			{ID: 1, Name: "drain", Worker: -1, StartNs: 0, EndNs: 3e6},
			{ID: 2, Parent: 1, Name: "drain/w0", Worker: 0, StartNs: 1e5, EndNs: 29e5},
			{ID: 3, Name: "snapshot", Worker: -1, StartNs: 3e6, EndNs: 35e5},
			{ID: 4, Name: "router_rebuild", Worker: -1, StartNs: 35e5, EndNs: 4e6},
			{ID: 5, Name: "transfer", Worker: -1, StartNs: 4e6, EndNs: 6e6},
			{ID: 6, Parent: 5, Name: "transfer/w0", Worker: 0, StartNs: 41e5, EndNs: 59e5},
			{ID: 7, Name: "restart", Worker: -1, StartNs: 6e6, EndNs: 7e6},
			{ID: 8, Name: "first_record", Worker: -1, StartNs: 7e6, EndNs: 10e6},
		},
	}
}

// fakeTarget is a ds2d-shaped endpoint whose /metrics behavior is
// switchable mid-run: 0 = full families, 1 = streamrt families
// dropped, 2 = scrape fails outright. The job endpoints keep working
// in every mode.
func fakeTarget(t *testing.T) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var mode atomic.Int32
	full, bare := fullRegistry(), obs.NewRegistry()
	bare.Gauge("ds2d_uptime_seconds", "Uptime.").Set(13)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case 0:
			full.Handler().ServeHTTP(w, r)
		case 1:
			bare.Handler().ServeHTTP(w, r)
		default:
			http.Error(w, "restarting", http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]jobInfo{{ID: "j1", Name: "q5", State: "running", Autoscaler: "ds2"}})
	})
	mux.HandleFunc("GET /jobs/j1/rescales", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"total": 1, "rescales": []obs.TraceView{rescaleFixture()},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &mode
}

// TestRenderDegradesPerPanel pins the resilience contract: when the
// exporter drops families mid-run or stops answering entirely, only
// the affected panel degrades — the frame still renders and the
// HTTP-API panels (rescale timelines) survive.
func TestRenderDegradesPerPanel(t *testing.T) {
	srv, mode := fakeTarget(t)
	client := srv.Client()

	frame, ok := render(client, srv.URL, 4, 4)
	if !ok {
		t.Fatalf("healthy target reported not-ok; frame:\n%s", frame)
	}
	for _, want := range []string{"OPERATOR", "count", "rescales j1 (q5): 1 total", "rescale-1", "drain", "first_record"} {
		if !strings.Contains(frame, want) {
			t.Errorf("healthy frame missing %q:\n%s", want, frame)
		}
	}

	// Families dropped mid-run: the operator panel degrades with its
	// notice, the scrape still counts as healthy, the rescale panel is
	// untouched.
	mode.Store(1)
	frame, ok = render(client, srv.URL, 4, 4)
	if !ok {
		t.Fatalf("dropped families reported as scrape failure; frame:\n%s", frame)
	}
	if !strings.Contains(frame, "no streamrt operator telemetry") {
		t.Errorf("operator panel did not degrade:\n%s", frame)
	}
	if !strings.Contains(frame, "rescale-1") {
		t.Errorf("rescale panel lost on family drop:\n%s", frame)
	}

	// Scrape fails outright: the metrics panels blank with a notice,
	// ok goes false (the -once exit code), and the frame still carries
	// the timeline.
	mode.Store(2)
	frame, ok = render(client, srv.URL, 4, 4)
	if ok {
		t.Fatalf("failed scrape reported ok; frame:\n%s", frame)
	}
	if !strings.Contains(frame, "metrics unavailable") {
		t.Errorf("no degradation notice on failed scrape:\n%s", frame)
	}
	if !strings.Contains(frame, "rescale-1") {
		t.Errorf("rescale panel lost on scrape failure:\n%s", frame)
	}
}

// TestTimelineGantt pins the timeline layout: one aligned row per
// coordinator phase, proportional bars on a shared axis, worker
// fan-out counts, and a safe render for an empty in-flight trace.
func TestTimelineGantt(t *testing.T) {
	out := timelineGantt(rescaleFixture())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // header + 6 phase rows (worker sub-spans fold in)
		t.Fatalf("got %d lines, want 7:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "rescale-1") || !strings.Contains(lines[0], "complete") {
		t.Errorf("bad header: %q", lines[0])
	}
	wantOrder := []string{"drain", "snapshot", "router_rebuild", "transfer", "restart", "first_record"}
	for i, phase := range wantOrder {
		row := lines[i+1]
		if !strings.Contains(row, phase) {
			t.Fatalf("row %d = %q, want phase %s", i, row, phase)
		}
		bar := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
		if len(bar) != ganttWidth {
			t.Errorf("%s bar width %d, want %d", phase, len(bar), ganttWidth)
		}
		if !strings.Contains(bar, "#") {
			t.Errorf("%s bar empty: %q", phase, bar)
		}
	}
	// drain and transfer fan out to one worker each.
	for _, phase := range []string{"drain", "transfer"} {
		if !strings.Contains(lines[indexOf(wantOrder, phase)+1], "1w") {
			t.Errorf("%s row missing worker fan-out count:\n%s", phase, out)
		}
	}
	// Phase bars tile the axis left to right.
	prev := -1
	for _, phase := range wantOrder {
		row := lines[indexOf(wantOrder, phase)+1]
		bar := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
		first := strings.Index(bar, "#")
		if first < prev {
			t.Errorf("%s bar starts at %d, before previous phase start %d", phase, first, prev)
		}
		prev = first
	}

	// An in-flight trace with no spans yet renders just its header.
	empty := timelineGantt(obs.TraceView{ID: "rescale-2", Name: "rescale"})
	if !strings.Contains(empty, "in flight") || strings.Count(empty, "\n") != 1 {
		t.Errorf("empty trace render: %q", empty)
	}
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}
