// Command nexmark-calibrate runs generated Nexmark events through the
// record-level reference implementations of the six queries and prints
// each stage's measured per-record cost and selectivity — the numbers
// an OperatorSpec cost model is calibrated from on real hardware
// (DESIGN.md describes how the simulator consumes them).
//
// Usage:
//
//	nexmark-calibrate [-n 200000] [-query q5]
package main

import (
	"flag"
	"fmt"
	"os"

	"ds2/internal/nexmark"
)

func main() {
	n := flag.Int("n", 200_000, "number of events to generate")
	query := flag.String("query", "", "single query to calibrate (default: all)")
	flag.Parse()

	queries := nexmark.QueryNames()
	if *query != "" {
		queries = []string{*query}
	}
	fmt.Printf("calibrating over %d generated events (1 person : 3 auctions : 46 bids)\n\n", *n)
	fmt.Println("query\tstage\tin\tout\tselectivity\tns/record\timplied capacity (rec/s/core)")
	for _, q := range queries {
		cals, err := nexmark.Calibrate(q, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nexmark-calibrate:", err)
			os.Exit(1)
		}
		for _, c := range cals {
			capacity := 0.0
			if c.NsPerRecord > 0 {
				capacity = 1e9 / c.NsPerRecord
			}
			fmt.Printf("%s\t%s\t%d\t%d\t%.4f\t%.0f\t%.0f\n",
				c.Query, c.Stage, c.RecordsIn, c.RecordsOut, c.Selectivity, c.NsPerRecord, capacity)
		}
	}
}
