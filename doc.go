// Package ds2 is a Go implementation of DS2 — the automatic scaling
// controller for distributed streaming dataflows from "Three steps is
// all you need: fast, accurate, automatic scaling decisions for
// distributed streaming dataflows" (Kalavri et al., OSDI 2018) — plus
// everything required to evaluate it end to end: an instrumentation
// model, a deterministic streaming-engine simulator with Flink-, Heron-
// and Timely-style execution modes, the Dhalion and queueing-theory
// baseline controllers, and the paper's benchmark workloads.
//
// # The model in one paragraph
//
// Each operator instance is instrumented to report, per observation
// window, the records it pulled and pushed and its useful time (time
// spent deserializing, processing and serializing — excluding waiting
// on input or output). Useful time yields true rates: the records an
// instance can process/produce per unit of useful time, i.e. its
// capacity, unpolluted by backpressure. Given the logical dataflow
// graph, the source rates, and per-operator aggregated true rates, one
// traversal of the graph in topological order computes the optimal
// parallelism of every operator simultaneously (Eq. 7–8 of the paper):
//
//	πᵢ = ⌈ Σ_{j→i} oⱼ[λo]* / (oᵢ[λp] / pᵢ) ⌉
//
// where oⱼ[λo]* is the output rate operator j would have if the whole
// upstream dataflow ran at its optimal parallelism. Under linear
// scaling the estimate never overshoots on the way up nor undershoots
// on the way down, so repeated application converges monotonically —
// in practice within three steps.
//
// # Quick start
//
//	g, _ := ds2.NewGraphBuilder().
//		AddOperator("source").
//		AddOperator("flatmap").
//		AddOperator("count").
//		AddEdge("source", "flatmap").
//		AddEdge("flatmap", "count").
//		Build()
//	policy, _ := ds2.NewPolicy(g, ds2.PolicyConfig{})
//	decision, _ := policy.Decide(snapshot, current, 1)
//
// where snapshot carries the per-operator true rates (see Snapshot and
// BuildSnapshot) and current is the deployed Parallelism. For an
// operational controller — policy intervals, warm-up, activation
// windows, target-rate correction, rollback — wrap the policy in a
// ScalingManager. To run closed-loop, plug a Runtime (NewSimulatorRuntime
// over a Simulator today; a real engine integration tomorrow) and an
// Autoscaler (DS2Autoscaler over the manager, or the Dhalion/queueing
// baselines) into a Controller: one NewController(...).Run() replaces
// the hand-rolled snapshot→evaluate→rescale loop and returns a
// structured Trace of every interval.
//
// # The scaling service
//
// To run the controller as the paper deploys it — an external service
// beside the engine (Fig. 5) — start the ds2d daemon and register
// jobs over HTTP instead of linking the policy into the job:
//
//	go run ./cmd/ds2d            # serves the scaling API on :7361
//
//	client := ds2.NewScalingClient("http://127.0.0.1:7361", nil)
//	id, _ := client.Register(ds2.JobSpec{
//		Operators:    []ds2.JobOperator{{Name: "source"}, {Name: "flatmap"}, {Name: "count"}},
//		Edges:        [][2]string{{"source", "flatmap"}, {"flatmap", "count"}},
//		Initial:      ds2.Parallelism{"source": 1, "flatmap": 1, "count": 1},
//		Autoscaler:   "ds2",
//		IntervalSec:  60,
//		MaxIntervals: 30,
//	})
//	// per interval: client.Report(id, ...) the instrumentation
//	// windows, client.PollAction(id, ...) for a rescale command,
//	// apply it through the engine, client.Ack(id, seq, applied).
//
// The service runs the identical Controller per job, so decisions
// match the in-process loop exactly; `go run ./examples/service`
// demonstrates the full cycle on HTTP loopback with the simulator as
// the remote job.
//
// # The live runtime
//
// Everything above can also run against a job that actually executes:
// the live dataflow runtime (goroutine per operator instance, bounded
// channels as backpressured queues, hash-partitioned keyed exchange)
// instrumented with wall-clock measurements exactly as §3 prescribes:
//
//	pipeline, _ := ds2.LiveWordCount(ds2.LiveWordCountConfig{
//		Rate1: 100, Rate2: 400, StepAt: 5, ZipfS: 1.1,
//	})
//	initial := ds2.Parallelism{"source": 1, "splitter": 1, "counter": 1}
//	job, _ := ds2.NewLiveJob(pipeline, initial, ds2.LiveJobConfig{})
//	defer job.Stop()
//
//	// In-process: the standard Controller paces on the wall clock.
//	policy, _ := ds2.NewPolicy(pipeline.Graph(), ds2.PolicyConfig{})
//	manager, _ := ds2.NewScalingManager(policy, initial, ds2.ScalingManagerConfig{})
//	ctrl, _ := ds2.NewController(ds2.NewLiveRuntime(job), ds2.DS2Autoscaler(manager),
//		ds2.ControllerConfig{Interval: 1, MaxIntervals: 10})
//	trace, _ := ctrl.Run() // rescales really drain/repartition/restart the job
//
//	// Or against ds2d, through the same ingestion/poll/ack API a
//	// simulated job uses — the server cannot tell the difference:
//	attached := ds2.AttachLiveJob(client, job, spec)
//	trace, _ = attached.Run()
//
// Custom pipelines use NewLivePipeline (AddSource/AddOperator/AddEdge/
// Build) with arbitrary user functions and keyed state; a keyed
// operator with a LiveWindowSpec becomes windowed (processing-time
// tumbling or sliding panes that survive rescales). The Nexmark
// queries run live too — LiveNexmarkQuery("q5", ds2.LiveNexmarkConfig{...})
// returns a ready workload with its analytic optimum. `go run
// ./examples/livewordcount` shows DS2 converging on a running job in
// one decision; `go run ./examples/livenexmark` does the same for the
// windowed Q5 hot-items query; `go run ./cmd/ds2-live -serve-inproc
// [-workload q5]` drives the full live cycle against an embedded ds2d.
//
// # The distributed runtime
//
// A live pipeline can also span worker processes: operator instances
// are placed across streamrt workers and every cross-worker edge
// moves pooled batches as length-prefixed binary frames over
// persistent TCP, with credit-based backpressure per link. Start a
// fleet of workers, then deploy a cluster against their addresses:
//
//	streamrt-worker -index 0 -listen 127.0.0.1:7400 -workloads q1,q5
//	streamrt-worker -index 1 -listen 127.0.0.1:7401 -workloads q1,q5 \
//	    -register http://127.0.0.1:7361   # announce to ds2d's /workers
//
//	w, _ := ds2.LiveNexmarkQuery("q5", ds2.LiveNexmarkConfig{Distributed: true})
//	cluster, _ := ds2.NewLiveCluster(w.Pipeline, "q5", w.Initial,
//		[]string{"127.0.0.1:7400", "127.0.0.1:7401"}, ds2.LiveJobConfig{})
//	defer cluster.Close()
//
//	// The cluster implements the same engine seam as a LiveJob, so
//	// the Controller — or a ds2d attachment — drives it unchanged;
//	// rescales drain all workers, migrate keyed state between
//	// processes over the framed transport, and restart.
//	ctrl, _ := ds2.NewController(ds2.NewLiveEngineRuntime(cluster), autoscaler, ccfg)
//
// Every process must build the identical pipeline (same workload
// flags), and a distributed pipeline needs codecs everywhere: a
// LiveCodec on every non-source operator and a LiveStateCodec on
// every keyed one (LiveNexmarkConfig.Distributed wires these in for
// q1/q5). `ds2-live -workers 2 -workload q5` spawns the workers
// itself and runs the whole cycle in one command (`make dist-smoke`).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured results of every table and figure, and examples/
// for runnable programs.
package ds2
