GO ?= go
# bench pipes `go test` into benchsnap; pipefail keeps a failed
# benchmark run from being committed as a valid snapshot.
SHELL := /bin/bash -o pipefail

.PHONY: build test race bench bench-smoke bench-gate vet live-smoke dist-smoke savepoint-smoke profile-live

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The scaling service and metrics repository are concurrent; run the
# whole tree under the race detector.
race:
	$(GO) test -race ./...

# Run the benchmark suite and append a BENCH_<n>.json snapshot (date,
# go version, ns/op, allocs/op, custom metrics) — the repo's perf
# trajectory. Committed snapshots are the baselines perf PRs are
# judged against. Override the target file with BENCH_OUT=path.
BENCH_OUT ?=
bench:
	$(GO) test -run XXX -bench . -benchmem . | $(GO) run ./cmd/benchsnap $(if $(BENCH_OUT),-out $(BENCH_OUT))

# One iteration of every benchmark — the CI guard that keeps the
# bench suite compiling and running without paying full measurement
# time — diffed against the latest committed BENCH_<n>.json so
# throughput regressions surface in the job log (1x timings are noisy:
# the deltas are a tripwire, not a gate).
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x -benchmem . | \
		$(GO) run ./cmd/benchsnap -compare "$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)"

# Full-measurement regression gate on the live hot path: rerun the
# live Nexmark benchmarks at real benchtime and fail if ns/op grew
# more than 5% over the latest committed snapshot. This is the check
# perf-sensitive PRs (and the observability exporter) are held to;
# bench-smoke's 1x run never trips it (-regress-min-iters exempts
# single-iteration timings). Override the bar with REGRESS_PCT=n.
REGRESS_PCT ?= 5
bench-gate:
	$(GO) test -run XXX -bench 'BenchmarkLive' -benchmem . | \
		$(GO) run ./cmd/benchsnap -compare "$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)" \
			-regress $(REGRESS_PCT) -regress-match 'BenchmarkLive'

# Profile the live hot path from a flag, not a code edit: run a
# ds2-live workload with CPU, heap, and mutex-contention profiles
# enabled. Inspect with `go tool pprof <binary|.> $(PROFILE_DIR)/cpu.out`.
# Override the workload/flags with PROFILE_ARGS.
PROFILE_DIR ?= /tmp/ds2-profiles
PROFILE_ARGS ?= -workload q1
profile-live:
	mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/ds2-live $(PROFILE_ARGS) \
		-cpuprofile $(PROFILE_DIR)/cpu.out \
		-memprofile $(PROFILE_DIR)/mem.out \
		-mutexprofile $(PROFILE_DIR)/mutex.out
	@echo "profiles written: $(PROFILE_DIR)/{cpu,mem,mutex}.out"

# End-to-end liveness gate: boot a ds2d scaling server plus a live
# streamrt job in one process, drive the ingestion/poll/ack cycle over
# real HTTP loopback for a few wall-clock policy intervals, and
# require that a scale decision was applied and acked. Runs twice: the
# word count, then the windowed Nexmark Q5 (sliding hot-items window —
# live window state crosses a real rescale). ~6 s total. Each run also
# self-scrapes /metrics and requires valid Prometheus exposition
# covering the HTTP, decision, and per-operator telemetry families.
SMOKE_FAMILIES := ds2d_http_requests_total,ds2d_decisions_total,ds2d_reports_total,streamrt_time_fraction,streamrt_operator_instances,streamrt_true_rate,streamrt_batch_flushes_total,streamrt_record_latency_seconds
live-smoke:
	$(GO) run ./cmd/ds2-live -serve-inproc -require-decision -require-metrics $(SMOKE_FAMILIES)
	$(GO) run ./cmd/ds2-live -serve-inproc -require-decision -workload q5 -require-metrics $(SMOKE_FAMILIES)

# Distributed liveness gate: the windowed Nexmark Q5 deployed over two
# worker processes (re-exec'd by ds2-live) plus an in-process ds2d,
# the decision loop driven over HTTP and the dataflow over the framed
# loopback-TCP exchange. Requires DS2's scale-up decision to be
# applied as a cross-process rescale (keyed window state migrates
# between workers) and the /metrics self-scrape to serve the per-link
# transport families alongside the service's. ~4 s.
DIST_FAMILIES := ds2d_http_requests_total,ds2d_decisions_total,ds2d_reports_total,streamrt_link_bytes_total,streamrt_link_frames_total,streamrt_link_stalls_total,streamrt_rescale_phase_seconds,streamrt_rescale_downtime_seconds
DIST_WORKER_FAMILIES := streamrt_link_frames_total,streamrt_operator_instances,streamrt_time_fraction
dist-smoke:
	$(GO) run ./cmd/ds2-live -workload q5 -workers 2 -serve-inproc -require-decision -require-metrics $(DIST_FAMILIES) -require-worker-metrics $(DIST_WORKER_FAMILIES) -require-rescale-trace

# Durable-savepoint gate: run the windowed Nexmark Q5 attached to an
# in-process ds2d, have the service request a savepoint mid-stream
# (POST /jobs/{id}/savepoint riding the poll cycle), and require it
# settled durably on disk plus the savepoint-latency histogram on
# /metrics. Then boot a second run from that savepoint file
# (-restore-from) and require DS2 still converges to an applied scale
# decision — the restored job is a first-class citizen of the control
# loop, not just a state dump. ~7 s.
SAVEPOINT_DIR ?= /tmp/ds2-savepoint-smoke
savepoint-smoke:
	rm -rf $(SAVEPOINT_DIR)
	$(GO) run ./cmd/ds2-live -workload q5 -serve-inproc -savepoint-dir $(SAVEPOINT_DIR) -require-savepoint -require-metrics streamrt_savepoint_seconds
	$(GO) run ./cmd/ds2-live -workload q5 -serve-inproc -restore-from $(SAVEPOINT_DIR)/savepoint-1 -require-decision
