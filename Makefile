GO ?= go
# bench pipes `go test` into benchsnap; pipefail keeps a failed
# benchmark run from being committed as a valid snapshot.
SHELL := /bin/bash -o pipefail

.PHONY: build test race bench bench-smoke vet live-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The scaling service and metrics repository are concurrent; run the
# whole tree under the race detector.
race:
	$(GO) test -race ./...

# Run the benchmark suite and append a BENCH_<n>.json snapshot (date,
# go version, ns/op, allocs/op, custom metrics) — the repo's perf
# trajectory. Committed snapshots are the baselines perf PRs are
# judged against. Override the target file with BENCH_OUT=path.
BENCH_OUT ?=
bench:
	$(GO) test -run XXX -bench . -benchmem . | $(GO) run ./cmd/benchsnap $(if $(BENCH_OUT),-out $(BENCH_OUT))

# One iteration of every benchmark — the CI guard that keeps the
# bench suite compiling and running without paying full measurement
# time.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x -benchmem .

# End-to-end liveness gate: boot a ds2d scaling server plus a live
# streamrt job in one process, drive the ingestion/poll/ack cycle over
# real HTTP loopback for a few wall-clock policy intervals, and
# require that a scale decision was applied and acked. Runs twice: the
# word count, then the windowed Nexmark Q5 (sliding hot-items window —
# live window state crosses a real rescale). ~6 s total.
live-smoke:
	$(GO) run ./cmd/ds2-live -serve-inproc -require-decision
	$(GO) run ./cmd/ds2-live -serve-inproc -require-decision -workload q5
