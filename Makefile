GO ?= go

.PHONY: build test bench vet

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

bench:
	$(GO) test -run XXX -bench . -benchmem .
