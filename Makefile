GO ?= go

.PHONY: build test race bench vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The scaling service and metrics repository are concurrent; run the
# whole tree under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench . -benchmem .
