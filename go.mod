module ds2

go 1.24
