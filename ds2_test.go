package ds2_test

import (
	"fmt"
	"testing"

	"ds2"
)

// Example demonstrates the minimal decision flow: build a graph, report
// rates, get the optimal parallelism for every operator in one call.
func Example() {
	g, err := ds2.LinearGraph("source", "flatmap", "count")
	if err != nil {
		panic(err)
	}
	policy, err := ds2.NewPolicy(g, ds2.PolicyConfig{})
	if err != nil {
		panic(err)
	}
	current := ds2.Parallelism{"source": 1, "flatmap": 1, "count": 1}
	snapshot := ds2.Snapshot{
		Operators: map[string]ds2.OperatorRates{
			// One FlatMap instance processes 100K sentences/min and
			// emits 20 words each; one Count instance counts 1M
			// words/min.
			"flatmap": {Operator: "flatmap", Instances: 1, TrueProcessing: 100_000, TrueOutput: 2_000_000},
			"count":   {Operator: "count", Instances: 1, TrueProcessing: 1_000_000},
		},
		SourceRates: map[string]float64{"source": 1_000_000}, // sentences/min
	}
	dec, err := policy.Decide(snapshot, current, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(dec.Parallelism)
	// Output: {count:20 flatmap:10 source:1}
}

// TestFacadeClosedLoop exercises the full public API: simulator +
// policy + scaling manager converge on a synthetic pipeline.
func TestFacadeClosedLoop(t *testing.T) {
	g, err := ds2.NewGraphBuilder().
		AddOperator("src").
		AddOperator("stage").
		AddOperator("sink").
		AddEdge("src", "stage").
		AddEdge("stage", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]ds2.OperatorSpec{
		"stage": {CostPerRecord: 0.001, Selectivity: 1}, // 1000 rec/s/instance
		"sink":  {CostPerRecord: 0.0001},
	}
	srcs := map[string]ds2.SourceSpec{
		"src": {Rate: ds2.ConstantRate(3500)},
	}
	initial := ds2.Parallelism{"src": 1, "stage": 1, "sink": 1}
	sim, err := ds2.NewSimulator(g, specs, srcs, initial, ds2.SimulatorConfig{Mode: ds2.ModeFlink})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := ds2.NewPolicy(g, ds2.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := ds2.NewScalingManager(pol, initial, ds2.ScalingManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		st := sim.RunInterval(10)
		snap, err := ds2.SimulatorSnapshot(st)
		if err != nil {
			t.Fatal(err)
		}
		act, err := mgr.OnInterval(snap)
		if err != nil {
			t.Fatal(err)
		}
		if act != nil {
			if err := sim.Rescale(act.New); err != nil {
				t.Fatal(err)
			}
		}
	}
	final := sim.Parallelism()
	if final["stage"] != 4 { // ceil(3500/1000)
		t.Errorf("stage = %d, want 4", final["stage"])
	}
	st := sim.RunInterval(10)
	if got := st.SourceObserved["src"]; got < 3450 {
		t.Errorf("throughput %v, want ~3500", got)
	}
}

func TestFacadeMetricsPath(t *testing.T) {
	mgr, err := ds2.NewMetricsManager(1)
	if err != nil {
		t.Fatal(err)
	}
	id := ds2.InstanceID{Operator: "map", Index: 0}
	mgr.Record(ds2.MetricsEvent{Time: 0.2, ID: id, Kind: ds2.EvRecordsProcessed, Value: 500})
	mgr.Record(ds2.MetricsEvent{Time: 0.3, ID: id, Kind: ds2.EvProcessing, Value: 0.5})
	mgr.Record(ds2.MetricsEvent{Time: 0.4, ID: id, Kind: ds2.EvRecordsPushed, Value: 250})
	mgr.Advance(1)
	windows := mgr.Flush()
	if len(windows) != 1 {
		t.Fatalf("windows = %d", len(windows))
	}
	merged, err := ds2.MergeByInstance(windows)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ds2.BuildSnapshot(1, merged, map[string]float64{"src": 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Operators["map"].TrueProcessing; got != 1000 {
		t.Errorf("true processing = %v, want 1000", got)
	}
	repo := ds2.NewMetricsRepository(4)
	repo.Publish(snap)
	if _, ok := repo.Latest(); !ok {
		t.Error("repository empty after publish")
	}
}

func TestFacadeTimelyHelpers(t *testing.T) {
	g, err := ds2.LinearGraph("src", "op")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ds2.NewSimulator(g,
		map[string]ds2.OperatorSpec{"op": {CostPerRecord: 0.004}},
		map[string]ds2.SourceSpec{"src": {Rate: ds2.ConstantRate(100)}},
		ds2.UniformParallelism(g, 1),
		ds2.SimulatorConfig{Mode: ds2.ModeTimely, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.RunInterval(20)
	if len(st.EpochLatencies) == 0 {
		t.Fatal("no epochs completed")
	}
	if q := ds2.EpochQuantile(st.EpochLatencies, 0.5); q > 1 {
		t.Errorf("p50 epoch latency = %v", q)
	}
	snap, err := ds2.SimulatorSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	pol, _ := ds2.NewPolicy(g, ds2.PolicyConfig{})
	dec, err := pol.Decide(snap, ds2.Parallelism{"src": 1, "op": 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.TotalWorkers(dec) < 2 {
		t.Errorf("total workers = %d", ds2.TotalWorkers(dec))
	}
}
