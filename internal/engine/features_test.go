package engine

import (
	"math"
	"testing"

	"ds2/internal/dataflow"
)

func TestHiddenAlphaInvisibleToInstrumentation(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.001, Selectivity: 0, HiddenAlpha: 0.05}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(20_000)}},
		dataflow.Parallelism{"src": 1, "map": 10},
		Config{Mode: ModeFlink, QueueCapacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	e.RunInterval(5)
	st := e.RunInterval(10)
	r := opRates(t, st, "map")
	// Measured true rate stays LINEAR (10 × 1000 = 10000/s)...
	if math.Abs(r.TrueProcessing-10_000) > 150 {
		t.Errorf("measured true rate = %v, want ~10000 (hidden overhead invisible)", r.TrueProcessing)
	}
	// ...but actual throughput is cut by 1 + 0.05·9 = 1.45.
	want := 10_000 / 1.45
	if got := st.SourceObserved["src"]; math.Abs(got-want) > 150 {
		t.Errorf("achieved = %v, want ~%v (hidden overhead real)", got, want)
	}
}

func TestVisibleAlphaShowsInTrueRates(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.001, Selectivity: 0, Alpha: 0.05}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(20_000)}},
		dataflow.Parallelism{"src": 1, "map": 10},
		Config{Mode: ModeFlink, QueueCapacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	e.RunInterval(5)
	st := e.RunInterval(10)
	r := opRates(t, st, "map")
	want := 10_000 / 1.45
	if math.Abs(r.TrueProcessing-want) > 150 {
		t.Errorf("measured true rate = %v, want ~%v (visible overhead measured)", r.TrueProcessing, want)
	}
}

func TestFlushBufferResidenceLatency(t *testing.T) {
	mk := func(flush float64, instr bool) float64 {
		g := mustGraph(t, "src", "map", "sink")
		e, err := New(g,
			map[string]OperatorSpec{
				"map":  {CostPerRecord: 0.001, Selectivity: 1},
				"sink": {CostPerRecord: 0.0001},
			},
			map[string]SourceSpec{"src": {Rate: ConstantRate(100)}},
			dataflow.Parallelism{"src": 1, "map": 1, "sink": 1},
			Config{Mode: ModeFlink, FlushBufferRecords: flush, Instrumented: instr, InstrOverhead: 0.10})
		if err != nil {
			t.Fatal(err)
		}
		st := e.RunInterval(10)
		return LatencyQuantile(st.Latencies, 0.5)
	}
	base := mk(0, false)
	withBuf := mk(2000, false)
	// Residence = (2000/2)·(0.001 + 0.0001) = 1.1 s on top of base.
	if withBuf-base < 1.09 || withBuf-base > 1.11 {
		t.Errorf("buffer residence delta = %v, want ~1.1s", withBuf-base)
	}
	withInstr := mk(2000, true)
	// Instrumentation inflates residence by 10%.
	delta := (withInstr - base) / (withBuf - base)
	if delta < 1.08 || delta > 1.12 {
		t.Errorf("instrumented residence ratio = %v, want ~1.10", delta)
	}
}

func TestNoBacklogSourceDropsExcess(t *testing.T) {
	g := mustGraph(t, "src", "map")
	mk := func(noBacklog bool) *Engine {
		e, err := New(g,
			map[string]OperatorSpec{"map": {CostPerRecord: 0.01, Selectivity: 0}}, // 100/s
			map[string]SourceSpec{"src": {Rate: ConstantRate(200), NoBacklog: noBacklog}},
			dataflow.Parallelism{"src": 1, "map": 1},
			Config{Mode: ModeFlink, QueueCapacity: 200})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// With backlog: after the bottleneck is removed, the source
	// catches up above the target rate.
	e := mk(false)
	e.Run(20)
	if e.Backlog("src") < 1500 {
		t.Fatalf("backlog = %v, want ~2000 accrued", e.Backlog("src"))
	}
	e.Collect()
	if err := e.Rescale(dataflow.Parallelism{"src": 1, "map": 4}); err != nil {
		t.Fatal(err)
	}
	st := e.RunInterval(10)
	if got := st.SourceObserved["src"]; got < 250 {
		t.Errorf("catch-up rate = %v, want > 250 (2x bound)", got)
	}
	// Without backlog: unproduced records are gone; post-rescale rate
	// equals the target.
	e2 := mk(true)
	e2.Run(20)
	if e2.Backlog("src") > 1 {
		t.Fatalf("NoBacklog source accrued %v", e2.Backlog("src"))
	}
	e2.Collect()
	if err := e2.Rescale(dataflow.Parallelism{"src": 1, "map": 4}); err != nil {
		t.Fatal(err)
	}
	st = e2.RunInterval(10)
	if got := st.SourceObserved["src"]; math.Abs(got-200) > 20 {
		t.Errorf("NoBacklog post-rescale rate = %v, want ~200", got)
	}
}

func TestWaterfill(t *testing.T) {
	cases := []struct {
		demand   []float64
		capacity float64
		want     []float64
	}{
		// Under capacity: everyone gets their demand.
		{[]float64{1, 2, 3}, 10, []float64{1, 2, 3}},
		// Max-min fair: small demand served fully, rest split.
		{[]float64{1, 9, 9}, 7, []float64{1, 3, 3}},
		// All equal, over capacity: even split.
		{[]float64{5, 5}, 4, []float64{2, 2}},
		// Zero demands get nothing.
		{[]float64{0, 8}, 4, []float64{0, 4}},
		// Cascading fills.
		{[]float64{1, 2, 100}, 12, []float64{1, 2, 9}},
	}
	for i, tc := range cases {
		got := waterfill(tc.demand, tc.capacity)
		for j := range tc.want {
			if math.Abs(got[j]-tc.want[j]) > 1e-9 {
				t.Errorf("case %d: waterfill = %v, want %v", i, got, tc.want)
				break
			}
		}
	}
}

func TestWaterfillConservation(t *testing.T) {
	demand := []float64{0.3, 1.7, 0, 2.4, 0.9}
	for _, capacity := range []float64{0.5, 2, 5, 10} {
		got := waterfill(demand, capacity)
		sum := 0.0
		for i, g := range got {
			if g < -1e-12 || g > demand[i]+1e-12 {
				t.Fatalf("allocation %v outside [0, demand] for %v", got, demand)
			}
			sum += g
		}
		limit := math.Min(capacity, total(demand))
		if sum > limit+1e-9 {
			t.Errorf("capacity %v: allocated %v > %v", capacity, sum, limit)
		}
		if limit-sum > 1e-9 {
			t.Errorf("capacity %v: left %v unallocated despite demand", capacity, limit-sum)
		}
	}
}

func TestInstrumentedModeReducesCapacity(t *testing.T) {
	mk := func(instr bool) float64 {
		g := mustGraph(t, "src", "map")
		e, err := New(g,
			map[string]OperatorSpec{"map": {CostPerRecord: 0.001, Selectivity: 0}},
			map[string]SourceSpec{"src": {Rate: ConstantRate(5000)}},
			dataflow.Parallelism{"src": 1, "map": 1},
			Config{Mode: ModeFlink, QueueCapacity: 200, Instrumented: instr, InstrOverhead: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		e.RunInterval(5)
		st := e.RunInterval(10)
		return st.SourceObserved["src"]
	}
	vanilla, instr := mk(false), mk(true)
	if math.Abs(vanilla-1000) > 30 {
		t.Errorf("vanilla throughput = %v", vanilla)
	}
	if math.Abs(instr-800) > 30 { // 1000/1.25
		t.Errorf("instrumented throughput = %v, want ~800", instr)
	}
}

func TestCollectOnEmptyInterval(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.001}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(10)}},
		dataflow.Parallelism{"src": 1, "map": 1},
		Config{Mode: ModeFlink})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Collect() // zero-length interval
	if len(st.Windows) != 0 {
		t.Errorf("windows on empty interval: %v", st.Windows)
	}
	// Normal interval afterwards works.
	st = e.RunInterval(1)
	if len(st.Windows) == 0 {
		t.Error("no windows after real interval")
	}
	for _, w := range st.Windows {
		if err := w.Validate(); err != nil {
			t.Errorf("invalid window: %v", err)
		}
	}
}

func TestBacklogUnknownSource(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.001}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(10)}},
		dataflow.Parallelism{"src": 1, "map": 1},
		Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(e.Backlog("ghost")) {
		t.Error("Backlog of unknown source should be NaN")
	}
}

func TestModeString(t *testing.T) {
	if ModeFlink.String() != "flink" || ModeHeron.String() != "heron" || ModeTimely.String() != "timely" {
		t.Error("mode names")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode renders empty")
	}
}

func TestRescaleDuringWindowStash(t *testing.T) {
	g := mustGraph(t, "src", "win", "sink")
	e, err := New(g,
		map[string]OperatorSpec{
			"win":  {CostPerRecord: 0.001, Selectivity: 1, Window: &WindowSpec{Slide: 5, InsertFrac: 0.5}},
			"sink": {CostPerRecord: 0.0001},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(100)}},
		dataflow.Parallelism{"src": 1, "win": 1, "sink": 1},
		Config{Mode: ModeFlink, RedeployDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2) // ~200 records stashed, none fired yet
	var stashed float64
	for _, inst := range e.ops[1].instances {
		stashed += inst.stash.count
	}
	if stashed < 150 {
		t.Fatalf("stash = %v, want ~200", stashed)
	}
	e.Collect()
	if err := e.Rescale(dataflow.Parallelism{"src": 1, "win": 3, "sink": 1}); err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	var after float64
	for _, inst := range e.ops[1].instances {
		after += inst.stash.count
	}
	if after < stashed {
		t.Errorf("stash lost in rescale: %v -> %v", stashed, after)
	}
	// The fire at t=5 must still emit everything stashed so far.
	st := e.RunInterval(5)
	win := 0.0
	for _, w := range st.Windows {
		if w.ID.Operator == "win" {
			win += w.Pushed
		}
	}
	if win < 300 { // ~4s of stash at 100/s fired (pause excluded)
		t.Errorf("fired output = %v, want several hundred", win)
	}
}

func TestZeroRateSource(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.001, Selectivity: 0}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(0)}},
		dataflow.Parallelism{"src": 1, "map": 1},
		Config{Mode: ModeFlink})
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunInterval(5)
	if st.SourceObserved["src"] != 0 {
		t.Errorf("zero-rate source emitted %v", st.SourceObserved["src"])
	}
	// The idle map reports a full window of input waiting.
	w := findWindow(t, st.Windows, "map", 0)
	if w.WaitingInput < 4.9 {
		t.Errorf("idle map waiting = %v", w.WaitingInput)
	}
	if w.Useful() != 0 {
		t.Errorf("idle map useful = %v", w.Useful())
	}
}
