package engine

import (
	"math"
	"testing"

	"ds2/internal/core"
	"ds2/internal/dataflow"
)

func timelyEngine(t *testing.T, rate float64, workers int) *Engine {
	t.Helper()
	g := mustGraph(t, "src", "a", "b")
	e, err := New(g,
		map[string]OperatorSpec{
			"a": {CostPerRecord: 0.004, Selectivity: 1},
			"b": {CostPerRecord: 0.004, Selectivity: 0},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(rate)}},
		dataflow.Parallelism{"src": 1, "a": 1, "b": 1},
		Config{Mode: ModeTimely, Workers: workers, EpochSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTimelySourcesNeverDelayed(t *testing.T) {
	// Demand is 8 worker-seconds per second but only 1 worker: the
	// system cannot keep up, yet the source still emits at full rate
	// (§5.5: "Timely does not have a backpressure mechanism").
	e := timelyEngine(t, 1000, 1)
	st := e.RunInterval(10)
	if got := st.SourceObserved["src"]; math.Abs(got-1000) > 10 {
		t.Errorf("timely source rate = %v, want full 1000", got)
	}
	// Queues grow instead.
	var queued float64
	for _, s := range e.ops {
		for _, inst := range s.instances {
			queued += inst.queue.count
		}
	}
	if queued < 1000 {
		t.Errorf("queued = %v, want growing backlog", queued)
	}
}

func TestTimelyEpochLatencyKeepsUpWithEnoughWorkers(t *testing.T) {
	// Demand = 100 rec/s × (0.004+0.004) s/rec = 0.8 workers.
	e := timelyEngine(t, 100, 1)
	st := e.RunInterval(30)
	if len(st.EpochLatencies) < 25 {
		t.Fatalf("completed epochs = %d, want ~29", len(st.EpochLatencies))
	}
	if p99 := EpochQuantile(st.EpochLatencies, 0.99); p99 > 0.2 {
		t.Errorf("p99 epoch latency = %v, want well under the 1s target", p99)
	}
}

func TestTimelyEpochLatencyFallsBehindWhenUnderprovisioned(t *testing.T) {
	// Demand = 300 × 0.008 = 2.4 workers, only 1 available.
	e := timelyEngine(t, 300, 1)
	st := e.RunInterval(30)
	// Few epochs complete, and the ones that do are late — or none
	// complete at all.
	if n := len(st.EpochLatencies); n > 0 {
		last := st.EpochLatencies[n-1]
		if last.Latency < 1 {
			t.Errorf("underprovisioned epoch latency = %v, want > 1s", last.Latency)
		}
	}
	if len(st.EpochLatencies) >= 29 {
		t.Errorf("all %d epochs completed despite 2.4x overload", len(st.EpochLatencies))
	}
}

func TestTimelyMetricsDriveWorkerCountDecision(t *testing.T) {
	// §4.3: DS2 sums per-operator optimal parallelism to get the
	// global worker count. With costs 0.004+0.004 at 300 rec/s the
	// per-operator requirements are ceil(1.2)=2 and ceil(1.2)=2 → 4
	// workers (+1 source op at its own count).
	e := timelyEngine(t, 300, 2)
	e.RunInterval(5)
	st := e.RunInterval(10)
	snap, err := Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(e.Graph(), core.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Current view: every non-source operator runs on all workers.
	cur := dataflow.Parallelism{"src": 1, "a": e.Workers(), "b": e.Workers()}
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["a"] != 2 || dec.Parallelism["b"] != 2 {
		t.Errorf("per-op decision = %v, want a:2 b:2", dec.Parallelism)
	}
	workers := dec.Parallelism["a"] + dec.Parallelism["b"]
	if workers != 4 {
		t.Errorf("summed workers = %d, want 4", workers)
	}
}

func TestTimelyRescaleWorkers(t *testing.T) {
	e := timelyEngine(t, 300, 1)
	e.Run(5)
	if err := e.Rescale(dataflow.Parallelism{"src": 1, "a": 2, "b": 2}); err == nil {
		t.Error("per-operator Rescale accepted in Timely mode")
	}
	if err := e.RescaleWorkers(0); err == nil {
		t.Error("zero workers accepted")
	}
	if err := e.RescaleWorkers(4); err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 4 {
		t.Errorf("workers = %d", e.Workers())
	}
	// With 4 workers (need 2.4) the system drains its backlog and
	// newly arriving epochs complete on time.
	e.RunInterval(30)
	st := e.RunInterval(20)
	if len(st.EpochLatencies) < 15 {
		t.Fatalf("epochs completing after scale-up = %d", len(st.EpochLatencies))
	}
	if p90 := EpochQuantile(st.EpochLatencies, 0.9); p90 > 1 {
		t.Errorf("p90 epoch latency after scale-up = %v", p90)
	}
}

func TestTimelyWindowedOperatorEpochs(t *testing.T) {
	g := mustGraph(t, "src", "win")
	e, err := New(g,
		map[string]OperatorSpec{
			"win": {CostPerRecord: 0.002, Selectivity: 0,
				Window: &WindowSpec{Slide: 1, InsertFrac: 0.3}},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(100)}},
		dataflow.Parallelism{"src": 1, "win": 1},
		Config{Mode: ModeTimely, Workers: 2, EpochSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunInterval(20)
	if len(st.EpochLatencies) < 15 {
		t.Fatalf("epochs = %d", len(st.EpochLatencies))
	}
	// Epochs complete only after the window fires, so latency is
	// bounded by the slide plus burst processing, not near-zero.
	p50 := EpochQuantile(st.EpochLatencies, 0.5)
	if p50 > 1.2 {
		t.Errorf("p50 epoch latency = %v, want <= slide + burst", p50)
	}
}

func TestTimelyWindowMetricsSplitAcrossWorkers(t *testing.T) {
	e := timelyEngine(t, 100, 3)
	st := e.RunInterval(10)
	// Every non-source operator reports one window per worker.
	count := map[string]int{}
	for _, w := range st.Windows {
		count[w.ID.Operator]++
		if err := w.Validate(); err != nil {
			t.Errorf("invalid window: %v", err)
		}
	}
	if count["a"] != 3 || count["b"] != 3 {
		t.Errorf("windows per op = %v, want 3 each", count)
	}
}
