package engine

// bucket is a fluid parcel of records sharing an emission timestamp
// (when they left their source) and an epoch (ModeTimely). emit is the
// count-weighted average emission time of the merged records; first is
// the earliest emission time merged in — a bucket only absorbs pushes
// within mergeEps of its first record, bounding each bucket's time
// span and hence the latency-resolution loss.
type bucket struct {
	count float64
	emit  float64
	first float64
	epoch int64
}

// bucketQueue is a FIFO of buckets with O(1) amortized push/pop.
// Adjacent pushes with the same epoch and nearby emission times merge
// (weighted-average emit), which bounds memory to roughly one bucket
// per tick per producer group without losing latency resolution beyond
// the tick size.
//
// The queue maintains an incremental min-epoch frontier: the smallest
// epoch among visible (count > dust) buckets is tracked across
// push/pop/transfer, so minEpoch is O(1) in the steady state instead of
// a full scan per call. Invariant: when minDirty is false, (minEp,
// minOk) equal what a scan of buckets[head:] ignoring dust would
// return. Pushes can only lower the frontier (updated eagerly); pops
// can only raise it (the cache turns dirty when a bucket carrying the
// frontier epoch leaves, and the next minEpoch call rescans).
type bucketQueue struct {
	buckets []bucket
	head    int
	count   float64

	minEp    int64
	minOk    bool // a visible bucket exists; minEp is the frontier
	minDirty bool // frontier must be recomputed by the next minEpoch
	track    bool // maintain the frontier incrementally (ModeTimely)
}

// mergeEps: pushes whose emit differs from the tail bucket's latest
// merged emit by at most this are merged (weighted-average emit), so a
// steadily fed queue grows one bucket per mergeEps of wall time.
const defaultMergeEps = 0.05

// maxBuckets hard-caps the bucket count per queue: beyond it, pushes
// merge into the tail unconditionally. Latency resolution degrades
// gracefully (residence time / maxBuckets) instead of memory growing
// without bound on long-stalled queues.
const maxBuckets = 4096

// dust is the record-count threshold below which a bucket is float
// residue, not real work: pop sweeps such buckets away and minEpoch
// ignores them, so rounding noise can never pin an epoch open.
const dust = 1e-6

func (q *bucketQueue) push(count, emit float64, epoch int64) {
	if count <= 0 {
		return
	}
	q.count += count
	if n := len(q.buckets); n > q.head {
		t := &q.buckets[n-1]
		if t.epoch == epoch && emit >= t.first &&
			(emit-t.first <= defaultMergeEps || n-q.head >= maxBuckets) {
			t.emit = (t.emit*t.count + emit*count) / (t.count + count)
			t.count += count
			q.noteVisible(t)
			return
		}
	}
	q.buckets = append(q.buckets, bucket{count: count, emit: emit, first: emit, epoch: epoch})
	q.noteVisible(&q.buckets[len(q.buckets)-1])
}

// noteVisible folds bucket b (just pushed or grown at the tail) into
// the frontier cache. Growth can only lower the min, so the update is
// exact while the cache is clean; a dirty cache stays dirty. Untracked
// queues (blocking modes, which never read the frontier) skip the
// bookkeeping entirely.
func (q *bucketQueue) noteVisible(b *bucket) {
	if !q.track || q.minDirty || b.count <= dust {
		return
	}
	if !q.minOk || b.epoch < q.minEp {
		q.minOk, q.minEp = true, b.epoch
	}
}

// noteRemoved marks the frontier dirty when a bucket that may carry the
// frontier epoch leaves the queue.
func (q *bucketQueue) noteRemoved(epoch int64) {
	if q.track && !q.minDirty && q.minOk && epoch == q.minEp {
		q.minDirty = true
	}
}

// pop removes up to n records from the front and returns the removed
// pieces (in order). The returned slice aliases an internal scratch
// buffer valid until the next pop on this queue.
func (q *bucketQueue) pop(n float64, scratch []bucket) []bucket {
	out := scratch[:0]
	for n > 1e-12 && q.head < len(q.buckets) {
		b := &q.buckets[q.head]
		take := b.count
		if take > n {
			take = n
		}
		out = append(out, bucket{count: take, emit: b.emit, first: b.first, epoch: b.epoch})
		b.count -= take
		q.count -= take
		n -= take
		if b.count <= 1e-12 {
			q.count -= b.count // absorb residue
			b.count = 0
			q.noteRemoved(b.epoch)
			q.head++
		}
	}
	// Sweep float residue so dust buckets cannot linger (they would
	// otherwise be unpoppable: callers never request <= dust records).
	for q.head < len(q.buckets) && q.buckets[q.head].count <= dust {
		q.count -= q.buckets[q.head].count
		q.noteRemoved(q.buckets[q.head].epoch)
		q.head++
	}
	if q.count < 0 {
		q.count = 0
	}
	if q.head == len(q.buckets) {
		// Empty: the frontier is trivially known again.
		q.minOk, q.minDirty = false, false
	}
	q.compact()
	return out
}

// popAll drains the queue, returning all pieces.
func (q *bucketQueue) popAll(scratch []bucket) []bucket {
	return q.pop(q.count+1, scratch)
}

func (q *bucketQueue) compact() {
	if q.head > 64 && q.head*2 >= len(q.buckets) {
		n := copy(q.buckets, q.buckets[q.head:])
		q.buckets = q.buckets[:n]
		q.head = 0
	}
	if q.head == len(q.buckets) {
		q.buckets = q.buckets[:0]
		q.head = 0
	}
}

// minEpoch returns the smallest epoch present (ignoring dust residue),
// or ok=false when effectively empty. O(1) while the incremental
// frontier is clean; rescans once per frontier advance otherwise.
func (q *bucketQueue) minEpoch() (int64, bool) {
	if !q.track {
		// Untracked queue: fall back to a full scan.
		min, found := int64(0), false
		for i := q.head; i < len(q.buckets); i++ {
			b := &q.buckets[i]
			if b.count <= dust {
				continue
			}
			if !found || b.epoch < min {
				min, found = b.epoch, true
			}
		}
		return min, found
	}
	if q.minDirty {
		q.minOk, q.minDirty = false, false
		for i := q.head; i < len(q.buckets); i++ {
			b := &q.buckets[i]
			if b.count <= dust {
				continue
			}
			if !q.minOk || b.epoch < q.minEp {
				q.minOk, q.minEp = true, b.epoch
			}
		}
	}
	return q.minEp, q.minOk
}

// transferAll moves every non-dust bucket of src onto q, preserving
// order and applying the same tail-merge and maxBuckets discipline as
// push. Dust buckets (0 < count <= dust) are dropped instead of
// appended, and boundary buckets merge into q's tail under push's
// rules (preserving an appended bucket's own first-emit span), so
// fired-window queues cannot accrete residue or grow without bound
// through repeated transfers.
func (q *bucketQueue) transferAll(src *bucketQueue) {
	for i := src.head; i < len(src.buckets); i++ {
		b := src.buckets[i]
		if b.count <= dust {
			continue
		}
		q.count += b.count
		if n := len(q.buckets); n > q.head {
			t := &q.buckets[n-1]
			if t.epoch == b.epoch && b.emit >= t.first &&
				(b.emit-t.first <= defaultMergeEps || n-q.head >= maxBuckets) {
				t.emit = (t.emit*t.count + b.emit*b.count) / (t.count + b.count)
				t.count += b.count
				q.noteVisible(t)
				continue
			}
		}
		q.buckets = append(q.buckets, b)
		q.noteVisible(&q.buckets[len(q.buckets)-1])
	}
	src.reset()
}

// reset empties the queue, retaining the backing array.
func (q *bucketQueue) reset() {
	q.buckets = q.buckets[:0]
	q.head = 0
	q.count = 0
	q.minOk, q.minDirty = false, false
}

// enableFrontier turns on incremental min-epoch tracking. Must be
// called while the queue is empty (at construction/resize).
func (q *bucketQueue) enableFrontier() {
	q.track = true
	q.minOk, q.minDirty = false, false
}
