package engine

import (
	"fmt"
	"sort"

	"ds2/internal/dataflow"
)

// Rescale schedules a redeployment with the given per-operator
// parallelism (Flink/Heron modes). The job stops immediately — the
// savepoint-and-restore cycle of §4.2 — and resumes after
// cfg.RedeployDelay with the new instance counts; queued records are
// preserved and redistributed across the new instances.
//
// Counters accumulated since the last Collect are discarded for
// resized operators, so call Collect (or RunInterval) before
// rescaling; the scaling manager's warm-up intervals make this the
// natural usage anyway.
func (e *Engine) Rescale(p dataflow.Parallelism) error {
	if e.cfg.Mode == ModeTimely {
		return fmt.Errorf("engine: use RescaleWorkers in Timely mode")
	}
	if err := p.Validate(e.graph); err != nil {
		return err
	}
	if e.paused {
		return fmt.Errorf("engine: rescale while redeployment in progress")
	}
	e.pendingP = p.Clone()
	e.beginPause()
	return nil
}

// RescaleWorkers schedules a change of the global worker count
// (Timely mode).
func (e *Engine) RescaleWorkers(w int) error {
	if e.cfg.Mode != ModeTimely {
		return fmt.Errorf("engine: RescaleWorkers requires Timely mode")
	}
	if w < 1 {
		return fmt.Errorf("engine: worker count %d < 1", w)
	}
	if e.paused {
		return fmt.Errorf("engine: rescale while redeployment in progress")
	}
	e.pendingW = w
	e.beginPause()
	return nil
}

func (e *Engine) beginPause() {
	if e.cfg.RedeployDelay <= 0 {
		e.applyRescale()
		return
	}
	e.paused = true
	e.resumeAt = e.now + e.cfg.RedeployDelay
}

// applyRescale installs the pending configuration and resumes the job.
func (e *Engine) applyRescale() {
	e.paused = false
	e.residence = -1 // effective costs change with parallelism
	if e.pendingW > 0 {
		e.workers = e.pendingW
		e.pendingW = 0
	}
	if e.pendingP == nil {
		return
	}
	for _, s := range e.ops {
		want := e.pendingP[s.name]
		if want == s.par || (e.cfg.Mode == ModeTimely && !s.isSource) {
			continue
		}
		if s.isSource {
			s.resize(want)
			continue
		}
		// Gather in-flight work from the old instances, ordered by
		// emission time so FIFO latency semantics survive the move.
		var qs, st, fr []bucket
		for k := range s.instances {
			inst := &s.instances[k]
			qs = append(qs, drain(&inst.queue)...)
			st = append(st, drain(&inst.stash)...)
			fr = append(fr, drain(&inst.fire)...)
		}
		s.resize(want)
		w := s.weights()
		redistribute(s, qs, w, func(i *instance) *bucketQueue { return &i.queue })
		redistribute(s, st, w, func(i *instance) *bucketQueue { return &i.stash })
		redistribute(s, fr, w, func(i *instance) *bucketQueue { return &i.fire })
	}
	e.pendingP = nil
}

func drain(q *bucketQueue) []bucket {
	out := make([]bucket, 0, len(q.buckets)-q.head)
	for i := q.head; i < len(q.buckets); i++ {
		if q.buckets[i].count > 0 {
			out = append(out, q.buckets[i])
		}
	}
	q.reset()
	return out
}

func redistribute(s *opState, buckets []bucket, w []float64, sel func(*instance) *bucketQueue) {
	if len(buckets) == 0 {
		return
	}
	sort.SliceStable(buckets, func(i, j int) bool { return buckets[i].emit < buckets[j].emit })
	for _, b := range buckets {
		for k := range s.instances {
			sel(&s.instances[k]).push(b.count*w[k], b.emit, b.epoch)
		}
	}
}

// Paused reports whether the job is stopped for redeployment.
func (e *Engine) Paused() bool { return e.paused }
