package engine

import (
	"math"
	"math/rand"
	"testing"
)

func TestBucketQueuePushPop(t *testing.T) {
	var q bucketQueue
	q.push(10, 1.0, 0)
	q.push(5, 2.0, 0)
	if q.count != 15 {
		t.Fatalf("count = %v", q.count)
	}
	got := q.pop(12, nil)
	if len(got) != 2 || got[0].count != 10 || got[1].count != 2 {
		t.Fatalf("pop pieces = %+v", got)
	}
	if math.Abs(q.count-3) > 1e-9 {
		t.Fatalf("remaining = %v", q.count)
	}
	got = q.pop(100, nil)
	if len(got) != 1 || math.Abs(got[0].count-3) > 1e-9 {
		t.Fatalf("final pop = %+v", got)
	}
	if q.count != 0 {
		t.Fatalf("not empty: %v", q.count)
	}
}

func TestBucketQueueFIFOOrder(t *testing.T) {
	var q bucketQueue
	for i := 0; i < 5; i++ {
		q.push(1, float64(i), 0)
	}
	prev := -1.0
	for q.count > 0.5 {
		p := q.pop(1, nil)
		if len(p) == 0 {
			t.Fatal("empty pop")
		}
		if p[0].emit < prev {
			t.Fatalf("out of order: %v after %v", p[0].emit, prev)
		}
		prev = p[0].emit
	}
}

func TestBucketQueueMergesNearbyPushes(t *testing.T) {
	var q bucketQueue
	// Pushes within the merge window and same epoch collapse.
	q.push(1, 1.000, 3)
	q.push(1, 1.010, 3)
	q.push(1, 1.020, 3)
	if n := len(q.buckets); n != 1 {
		t.Fatalf("buckets = %d, want 1 (merged)", n)
	}
	if math.Abs(q.buckets[0].emit-1.01) > 1e-9 {
		t.Fatalf("merged emit = %v, want weighted avg 1.01", q.buckets[0].emit)
	}
	// Different epoch never merges.
	q.push(1, 1.021, 4)
	if len(q.buckets) != 2 {
		t.Fatal("cross-epoch merge")
	}
	// Far-apart emit never merges.
	q.push(1, 9, 4)
	if len(q.buckets) != 3 {
		t.Fatal("distant merge")
	}
}

func TestBucketQueueZeroAndNegativePush(t *testing.T) {
	var q bucketQueue
	q.push(0, 1, 0)
	q.push(-5, 1, 0)
	if q.count != 0 || len(q.buckets) != 0 {
		t.Fatalf("queue accepted non-positive: %v", q.count)
	}
}

func TestBucketQueueMinEpoch(t *testing.T) {
	var q bucketQueue
	if _, ok := q.minEpoch(); ok {
		t.Fatal("minEpoch on empty")
	}
	q.push(1, 1, 7)
	q.push(1, 2, 5) // out-of-order epoch (window reassembly case)
	if me, ok := q.minEpoch(); !ok || me != 5 {
		t.Fatalf("minEpoch = %d, %v", me, ok)
	}
}

func TestBucketQueueTransferAll(t *testing.T) {
	var a, b bucketQueue
	a.push(3, 1, 0)
	a.push(4, 5, 1)
	b.push(2, 0.5, 0)
	b.transferAll(&a)
	if a.count != 0 {
		t.Fatalf("source not drained: %v", a.count)
	}
	if math.Abs(b.count-9) > 1e-9 {
		t.Fatalf("dest count = %v", b.count)
	}
}

// referenceMinEpoch is the O(n) scan the incremental frontier must
// agree with at every point.
func referenceMinEpoch(q *bucketQueue) (int64, bool) {
	var min int64
	found := false
	for i := q.head; i < len(q.buckets); i++ {
		b := q.buckets[i]
		if b.count <= dust {
			continue
		}
		if !found || b.epoch < min {
			min = b.epoch
			found = true
		}
	}
	return min, found
}

// TestBucketQueueFrontierInvariant drives a tracked queue through
// random pushes, pops and transfers and checks the incremental
// min-epoch frontier against the reference scan after every step —
// including out-of-order epochs (window reassembly) and dust-scale
// pushes.
func TestBucketQueueFrontierInvariant(t *testing.T) {
	var q, staging bucketQueue
	q.enableFrontier()
	staging.enableFrontier()
	rng := rand.New(rand.NewSource(42))
	check := func(step int) {
		t.Helper()
		gotE, gotOK := q.minEpoch()
		wantE, wantOK := referenceMinEpoch(&q)
		if gotOK != wantOK || (gotOK && gotE != wantE) {
			t.Fatalf("step %d: minEpoch = (%d, %v), reference scan = (%d, %v)",
				step, gotE, gotOK, wantE, wantOK)
		}
	}
	for i := 0; i < 5000; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // push, occasionally out-of-order epoch or dust-sized
			epoch := int64(i / 50)
			if rng.Intn(5) == 0 {
				epoch -= int64(rng.Intn(3)) // older epoch arrives late
			}
			count := rng.Float64() * 10
			if rng.Intn(10) == 0 {
				count = dust / 2 // dust: invisible to the frontier
			}
			q.push(count, float64(i)*0.01, epoch)
		case op < 8: // pop a random amount
			q.pop(rng.Float64()*15, nil)
		case op < 9: // transfer a staged batch in
			staging.push(rng.Float64()*5, float64(i)*0.01, int64(i/50))
			q.transferAll(&staging)
		default:
			q.popAll(nil)
		}
		check(i)
	}
}

func TestBucketQueueTransferSkipsDustAndMerges(t *testing.T) {
	var stash, fire bucketQueue
	stash.push(dust/2, 1.0, 0) // dust: dropped on transfer
	stash.push(5, 2.0, 0)
	fire.push(3, 1.99, 0) // tail within mergeEps of the incoming bucket
	fire.transferAll(&stash)
	if len(fire.buckets) != 1 {
		t.Fatalf("buckets = %d, want 1 (dust dropped, adjacent merged)", len(fire.buckets))
	}
	if math.Abs(fire.count-8) > 1e-9 {
		t.Fatalf("count = %v, want 8 (dust excluded)", fire.count)
	}
	// Weighted-average emit of the merge: (1.99*3 + 2.0*5) / 8.
	want := (1.99*3 + 2.0*5) / 8
	if math.Abs(fire.buckets[0].emit-want) > 1e-12 {
		t.Fatalf("merged emit = %v, want %v", fire.buckets[0].emit, want)
	}
	if stash.count != 0 || len(stash.buckets) != 0 {
		t.Fatal("source not drained")
	}
}

func TestBucketQueueCompaction(t *testing.T) {
	var q bucketQueue
	rng := rand.New(rand.NewSource(1))
	pushed, popped := 0.0, 0.0
	for i := 0; i < 10000; i++ {
		c := rng.Float64()
		q.push(c, float64(i), int64(i/100)) // distinct epochs defeat merging sometimes
		pushed += c
		p := q.pop(rng.Float64(), nil)
		for _, b := range p {
			popped += b.count
		}
	}
	p := q.popAll(nil)
	for _, b := range p {
		popped += b.count
	}
	if math.Abs(pushed-popped) > 1e-6 {
		t.Fatalf("conservation: pushed %v, popped %v", pushed, popped)
	}
	if len(q.buckets) != 0 || q.head != 0 {
		t.Fatalf("not compacted: len=%d head=%d", len(q.buckets), q.head)
	}
}
