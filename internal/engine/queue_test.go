package engine

import (
	"math"
	"math/rand"
	"testing"
)

func TestBucketQueuePushPop(t *testing.T) {
	var q bucketQueue
	q.push(10, 1.0, 0)
	q.push(5, 2.0, 0)
	if q.count != 15 {
		t.Fatalf("count = %v", q.count)
	}
	got := q.pop(12, nil)
	if len(got) != 2 || got[0].count != 10 || got[1].count != 2 {
		t.Fatalf("pop pieces = %+v", got)
	}
	if math.Abs(q.count-3) > 1e-9 {
		t.Fatalf("remaining = %v", q.count)
	}
	got = q.pop(100, nil)
	if len(got) != 1 || math.Abs(got[0].count-3) > 1e-9 {
		t.Fatalf("final pop = %+v", got)
	}
	if q.count != 0 {
		t.Fatalf("not empty: %v", q.count)
	}
}

func TestBucketQueueFIFOOrder(t *testing.T) {
	var q bucketQueue
	for i := 0; i < 5; i++ {
		q.push(1, float64(i), 0)
	}
	prev := -1.0
	for q.count > 0.5 {
		p := q.pop(1, nil)
		if len(p) == 0 {
			t.Fatal("empty pop")
		}
		if p[0].emit < prev {
			t.Fatalf("out of order: %v after %v", p[0].emit, prev)
		}
		prev = p[0].emit
	}
}

func TestBucketQueueMergesNearbyPushes(t *testing.T) {
	var q bucketQueue
	// Pushes within the merge window and same epoch collapse.
	q.push(1, 1.000, 3)
	q.push(1, 1.010, 3)
	q.push(1, 1.020, 3)
	if n := len(q.buckets); n != 1 {
		t.Fatalf("buckets = %d, want 1 (merged)", n)
	}
	if math.Abs(q.buckets[0].emit-1.01) > 1e-9 {
		t.Fatalf("merged emit = %v, want weighted avg 1.01", q.buckets[0].emit)
	}
	// Different epoch never merges.
	q.push(1, 1.021, 4)
	if len(q.buckets) != 2 {
		t.Fatal("cross-epoch merge")
	}
	// Far-apart emit never merges.
	q.push(1, 9, 4)
	if len(q.buckets) != 3 {
		t.Fatal("distant merge")
	}
}

func TestBucketQueueZeroAndNegativePush(t *testing.T) {
	var q bucketQueue
	q.push(0, 1, 0)
	q.push(-5, 1, 0)
	if q.count != 0 || len(q.buckets) != 0 {
		t.Fatalf("queue accepted non-positive: %v", q.count)
	}
}

func TestBucketQueueMinEpoch(t *testing.T) {
	var q bucketQueue
	if _, ok := q.minEpoch(); ok {
		t.Fatal("minEpoch on empty")
	}
	q.push(1, 1, 7)
	q.push(1, 2, 5) // out-of-order epoch (window reassembly case)
	if me, ok := q.minEpoch(); !ok || me != 5 {
		t.Fatalf("minEpoch = %d, %v", me, ok)
	}
}

func TestBucketQueueTransferAll(t *testing.T) {
	var a, b bucketQueue
	a.push(3, 1, 0)
	a.push(4, 5, 1)
	b.push(2, 0.5, 0)
	b.transferAll(&a)
	if a.count != 0 {
		t.Fatalf("source not drained: %v", a.count)
	}
	if math.Abs(b.count-9) > 1e-9 {
		t.Fatalf("dest count = %v", b.count)
	}
}

func TestBucketQueueCompaction(t *testing.T) {
	var q bucketQueue
	rng := rand.New(rand.NewSource(1))
	pushed, popped := 0.0, 0.0
	for i := 0; i < 10000; i++ {
		c := rng.Float64()
		q.push(c, float64(i), int64(i/100)) // distinct epochs defeat merging sometimes
		pushed += c
		p := q.pop(rng.Float64(), nil)
		for _, b := range p {
			popped += b.count
		}
	}
	p := q.popAll(nil)
	for _, b := range p {
		popped += b.count
	}
	if math.Abs(pushed-popped) > 1e-6 {
		t.Fatalf("conservation: pushed %v, popped %v", pushed, popped)
	}
	if len(q.buckets) != 0 || q.head != 0 {
		t.Fatalf("not compacted: len=%d head=%d", len(q.buckets), q.head)
	}
}
