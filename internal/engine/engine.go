// Package engine is a deterministic fluid discrete-time simulator of a
// distributed streaming dataflow runtime. It stands in for the paper's
// host systems (Apache Flink, Apache Heron, Timely Dataflow), which we
// do not have: DS2 only observes per-instance records-in/records-out
// and the useful/waiting time split, so a simulator that reproduces the
// runtime *mechanisms* those numbers depend on — bounded buffers and
// emergent backpressure, rate-limited operators, windowed operators
// that stash and fire, savepoint-style stop/redeploy rescaling, shared
// round-robin workers (Timely) — exercises exactly the same controller
// code paths as the real engines. See DESIGN.md for the substitution
// argument.
//
// The simulation advances in fixed ticks of virtual time. Queues carry
// FIFO "buckets" (count, emission timestamp, epoch), so per-record
// latency (Flink mode) and per-epoch completion latency (Timely mode)
// are exact under the fluid approximation.
package engine

import (
	"fmt"
	"math"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// Mode selects the execution model being simulated.
type Mode int

const (
	// ModeFlink: each operator has its own instances; bounded input
	// buffers; a full downstream buffer blocks the producer
	// (backpressure); sources are throttled by downstream space.
	ModeFlink Mode = iota
	// ModeHeron behaves like ModeFlink but with much deeper queues
	// and an explicit backpressure *signal* that fires only once a
	// queue crosses a threshold — the slow-reacting signal Dhalion
	// depends on (§5.2).
	ModeHeron
	// ModeTimely: a global pool of workers runs every operator
	// round-robin; queues are unbounded; sources are never delayed;
	// there is no backpressure (§4.3, §5.5).
	ModeTimely
)

func (m Mode) String() string {
	switch m {
	case ModeFlink:
		return "flink"
	case ModeHeron:
		return "heron"
	case ModeTimely:
		return "timely"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// WindowSpec makes an operator windowed: input records are stashed at a
// small insert cost and the actual computation runs when the window
// fires, producing a burst of useful time and output (§4.2.1's
// "naively-implemented window operators").
type WindowSpec struct {
	// Slide is the firing period in seconds.
	Slide float64
	// InsertFrac is the fraction of CostPerRecord paid at insertion;
	// the remainder is paid per stashed record when the window fires.
	InsertFrac float64
}

// OperatorSpec is the performance model of one non-source operator.
type OperatorSpec struct {
	// CostPerRecord is the useful time (deserialize + process +
	// serialize) one record costs one instance, in seconds, at
	// parallelism 1.
	CostPerRecord float64
	// DeserFrac and SerFrac split the cost for reporting; the
	// remainder is processing. Both default to 0.
	DeserFrac, SerFrac float64
	// Selectivity is output records per input record.
	Selectivity float64
	// RateLimit caps each instance at this many records/s (0 = no
	// cap). Used by the Dhalion benchmark's rate-limited operators.
	RateLimit float64
	// Alpha is the coordination overhead: the effective per-record
	// cost at parallelism p is CostPerRecord·(1+Alpha·(p−1)). This is
	// the sub-linear scaling that makes DS2 take 2–3 steps (§3.4).
	Alpha float64
	// HiddenAlpha is coordination overhead that consumes capacity but
	// is *invisible to instrumentation* (channel selection, network
	// stack): throughput drops by 1+HiddenAlpha·(p−1) but useful time
	// does not grow, so measured true rates stay linear. This is the
	// "overheads not captured by instrumentation" that the manager's
	// target-rate-ratio correction compensates for (§4.2.1).
	HiddenAlpha float64
	// SkewHot routes this extra fraction of the operator's input to
	// instance 0 on top of the uniform share (§4.2.3). 0 = balanced.
	SkewHot float64
	// Window, when non-nil, makes the operator windowed.
	Window *WindowSpec
}

func (s OperatorSpec) validate(name string) error {
	if s.CostPerRecord <= 0 {
		return fmt.Errorf("engine: operator %q: cost per record %v <= 0", name, s.CostPerRecord)
	}
	if s.Selectivity < 0 {
		return fmt.Errorf("engine: operator %q: negative selectivity", name)
	}
	if s.DeserFrac < 0 || s.SerFrac < 0 || s.DeserFrac+s.SerFrac > 1 {
		return fmt.Errorf("engine: operator %q: bad deser/ser fractions", name)
	}
	if s.RateLimit < 0 || s.Alpha < 0 || s.HiddenAlpha < 0 {
		return fmt.Errorf("engine: operator %q: negative rate limit or alpha", name)
	}
	if s.SkewHot < 0 || s.SkewHot >= 1 {
		return fmt.Errorf("engine: operator %q: skew %v outside [0,1)", name, s.SkewHot)
	}
	if s.Window != nil {
		if s.Window.Slide <= 0 {
			return fmt.Errorf("engine: operator %q: window slide %v <= 0", name, s.Window.Slide)
		}
		if s.Window.InsertFrac < 0 || s.Window.InsertFrac > 1 {
			return fmt.Errorf("engine: operator %q: window insert fraction outside [0,1]", name)
		}
	}
	return nil
}

// RateFn gives a source's target output rate (records/s) at virtual
// time t. It must be non-negative.
type RateFn func(t float64) float64

// ConstantRate returns a RateFn with a fixed rate.
func ConstantRate(r float64) RateFn { return func(float64) float64 { return r } }

// StepRate returns a RateFn that is `before` until t0 and `after` from
// t0 on — the two-phase workload of Fig. 7.
func StepRate(t0, before, after float64) RateFn {
	return func(t float64) float64 {
		if t < t0 {
			return before
		}
		return after
	}
}

// SourceSpec is the performance model of one source operator.
type SourceSpec struct {
	// Rate is the externally defined target output rate.
	Rate RateFn
	// CostPerRecord is the emission cost per record per instance
	// (serialization); 0 means emission is free.
	CostPerRecord float64
	// CatchupFactor bounds how fast a source drains accumulated
	// backlog after backpressure clears, as a multiple of the target
	// rate. Defaults to 2.
	CatchupFactor float64
	// NoBacklog marks a generator-style source (like the Heron
	// benchmark's spout): records it cannot emit are never produced
	// rather than buffered upstream, so there is no catch-up phase
	// after backpressure clears. Kafka-style replayable sources leave
	// this false.
	NoBacklog bool
}

// Config tunes the simulated runtime.
type Config struct {
	Mode Mode
	// Tick is the simulation quantum in seconds (default 0.01).
	Tick float64
	// QueueCapacity is the per-instance input buffer size in records
	// (default 10_000 for Flink; Heron runs default 200_000,
	// standing in for its 100 MiB queues).
	QueueCapacity float64
	// BackpressureThreshold is the queue occupancy fraction at which
	// the backpressure *signal* fires (default 0.5). The signal is
	// what Dhalion-style controllers read; blocking itself always
	// happens at full occupancy.
	BackpressureThreshold float64
	// RedeployDelay is how long a rescale stops the job (savepoint +
	// restore), in seconds.
	RedeployDelay float64
	// Workers is the initial global worker count (ModeTimely only).
	Workers int
	// EpochSize is the epoch granularity for per-epoch latency
	// (ModeTimely; default 1 s).
	EpochSize float64
	// FlushBufferRecords models Flink's output-buffer flushing: a
	// record waits on average half a buffer's fill time in each
	// operator's output stage before shipping, so per-record latency
	// gains Σ_ops (FlushBufferRecords/2)·effCost(op) even on an idle
	// pipeline — and instrumentation overhead, which inflates
	// effCost, becomes visible as a proportional latency penalty
	// (Fig. 10). 0 disables the model (records ship immediately).
	FlushBufferRecords float64
	// Instrumented enables the DS2 instrumentation cost model:
	// every operator's per-record cost is inflated by InstrOverhead.
	Instrumented bool
	// InstrOverhead is the fractional per-record instrumentation
	// cost (default 0.08).
	InstrOverhead float64
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = 0.01
	}
	if c.QueueCapacity <= 0 {
		if c.Mode == ModeHeron {
			c.QueueCapacity = 200_000
		} else {
			c.QueueCapacity = 10_000
		}
	}
	if c.BackpressureThreshold <= 0 {
		c.BackpressureThreshold = 0.5
	}
	if c.EpochSize <= 0 {
		c.EpochSize = 1
	}
	if c.InstrOverhead <= 0 {
		c.InstrOverhead = 0.08
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// instance is the runtime state of one parallel operator instance.
type instance struct {
	queue bucketQueue // input buffer (non-source)
	// window state (windowed operators only)
	stash bucketQueue // records assigned to the open window
	fire  bucketQueue // records of a fired window awaiting computation

	// counters since the last Collect
	processed float64
	pushed    float64
	useful    float64
	waitIn    float64
	waitOut   float64
	serExtra  float64 // sources: useful time that is pure serialization

	// per-tick scratch, reset at the end of each processOp
	tickUseful   float64
	tickPulled   float64
	tickOutBound bool
}

// opState is the runtime state of one logical operator.
type opState struct {
	name      string
	idx       int // topological index
	isSource  bool
	spec      OperatorSpec
	src       SourceSpec
	par       int
	instances []instance // value slice: one cache-friendly block per operator
	nextFire  float64    // windowed: next fire time

	// down caches the downstream opStates (adjacency resolved once at
	// construction) so the per-tick paths never re-index the graph.
	down   []*opState
	isSink bool
	// trackEpochs enables incremental min-epoch frontiers on the
	// instance queues (ModeTimely, the only consumer of the frontier).
	trackEpochs bool

	// weightsBuf caches weights(); rebuilt lazily after resize.
	weightsBuf []float64
	// costCache/ufCache memoize effCost/usefulFrac for the current
	// parallelism; 0 = dirty (recomputed lazily; both are always > 0).
	costCache float64
	ufCache   float64
	// desired is the per-instance pull scratch reused by
	// processOp/drainFire each tick; re-sized on rescale.
	desired []float64

	// Per-tick allowedInput memoization: valid while (tick, generation)
	// match the engine tick and this operator's queue state. queueGen
	// is bumped on every push into or pop from the input queues, so a
	// cached value is reused only when recomputing it would read the
	// exact same state.
	inAllowed     float64
	inAllowedTick uint64
	inAllowedGen  uint64
	queueGen      uint64

	// source-only counters
	backlog    float64 // records owed: cumulative target − emitted
	emitted    float64 // since last Collect
	cumEmitted float64

	// backpressure-signal time since the last Collect (blocking modes)
	bpTime float64
}

// LatencySample is a weighted per-record latency observation taken at
// a sink. The type lives in internal/metrics (the shared
// instrumentation vocabulary); this alias keeps the simulator's
// surface unchanged.
type LatencySample = metrics.LatencySample

// Engine simulates one job.
type Engine struct {
	graph *dataflow.Graph
	cfg   Config
	specs map[string]OperatorSpec
	srcs  map[string]SourceSpec

	ops []*opState
	now float64

	workers int // ModeTimely

	// pending rescale: applied when now reaches resumeAt
	paused   bool
	resumeAt float64
	pendingP dataflow.Parallelism
	pendingW int

	intervalStart float64
	latencies     []LatencySample
	scratchBuf    []bucket
	residence     float64 // cached flushResidence; -1 = dirty

	// tickID stamps per-tick memoized values (allowedInput); bumped at
	// the start of every step so stamps from prior ticks never match.
	tickID uint64
	// bpLevel is the precomputed backpressure-signal occupancy
	// (threshold · capacity), hoisted out of the per-op tick scan.
	bpLevel float64
	// srcPiece is the reusable single-piece buffer for source emission.
	srcPiece [1]bucket
	// demandBuf/budgetBuf/wfActive are stepTimely/waterfill scratch,
	// sized to len(ops) once and reused every tick.
	demandBuf []float64
	budgetBuf []float64
	wfActive  []int

	// epoch accounting (ModeTimely)
	epochDone map[int64]float64 // epoch -> completion time
	epochMax  int64             // highest epoch fully emitted
	epochLats []EpochLatency
}

// EpochLatency records when a 1-epoch batch of source data finished
// flowing through the dataflow (ModeTimely).
type EpochLatency struct {
	Epoch   int64   `json:"epoch"`
	Latency float64 `json:"latency"` // completion − epoch end; >= 0
}

// New builds an engine for the graph. specs must cover every non-source
// operator and srcs every source. initial must validate against g; in
// ModeTimely the per-operator counts are ignored in favour of
// cfg.Workers.
func New(g *dataflow.Graph, specs map[string]OperatorSpec, srcs map[string]SourceSpec,
	initial dataflow.Parallelism, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("engine: nil graph")
	}
	cfg = cfg.withDefaults()
	if err := initial.Validate(g); err != nil {
		return nil, err
	}
	e := &Engine{
		graph:     g,
		cfg:       cfg,
		specs:     specs,
		srcs:      srcs,
		workers:   cfg.Workers,
		epochDone: make(map[int64]float64),
		residence: -1,
	}
	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		st := &opState{name: op.Name, idx: i, isSource: op.Role == dataflow.RoleSource}
		if st.isSource {
			src, ok := srcs[op.Name]
			if !ok {
				return nil, fmt.Errorf("engine: missing source spec for %q", op.Name)
			}
			if src.Rate == nil {
				return nil, fmt.Errorf("engine: source %q has nil rate", op.Name)
			}
			if src.CatchupFactor <= 0 {
				src.CatchupFactor = 2
			}
			st.src = src
		} else {
			spec, ok := specs[op.Name]
			if !ok {
				return nil, fmt.Errorf("engine: missing operator spec for %q", op.Name)
			}
			if err := spec.validate(op.Name); err != nil {
				return nil, err
			}
			st.spec = spec
			if spec.Window != nil {
				st.nextFire = spec.Window.Slide
			}
		}
		st.trackEpochs = cfg.Mode == ModeTimely
		st.par = initial[op.Name]
		if cfg.Mode == ModeTimely && !st.isSource {
			// One logical instance per operator; capacity is the
			// shared worker pool. Reporting one instance makes
			// Eq. 7 return per-operator required worker counts
			// directly (§4.3).
			st.par = 1
		}
		st.resize(st.par)
		e.ops = append(e.ops, st)
	}
	// Resolve the downstream adjacency once: the tick paths iterate
	// s.down instead of re-indexing the graph per call.
	for _, st := range e.ops {
		for _, j := range g.Downstream(st.idx) {
			st.down = append(st.down, e.ops[j])
		}
		st.isSink = len(st.down) == 0
	}
	e.demandBuf = make([]float64, len(e.ops))
	e.budgetBuf = make([]float64, len(e.ops))
	e.wfActive = make([]int, 0, len(e.ops))
	e.bpLevel = cfg.BackpressureThreshold * cfg.QueueCapacity
	return e, nil
}

// resize recreates the instance slice with n entries, redistributing
// any queued work evenly (weight-aware redistribution happens in
// rescale; at construction queues are empty). Per-parallelism caches
// (weights, pull scratch) are invalidated here — the only place the
// instance count changes.
func (s *opState) resize(n int) {
	s.par = n
	s.instances = make([]instance, n)
	if s.trackEpochs {
		for i := range s.instances {
			s.instances[i].queue.enableFrontier()
			s.instances[i].stash.enableFrontier()
			s.instances[i].fire.enableFrontier()
		}
	}
	s.weightsBuf = nil
	s.costCache, s.ufCache = 0, 0
	s.desired = make([]float64, n)
	s.queueGen++
}

// weights returns the input partition weights across the operator's
// instances, honouring SkewHot. The result is cached until the next
// resize; callers must not mutate it.
func (s *opState) weights() []float64 {
	if s.weightsBuf == nil {
		w := make([]float64, s.par)
		base := (1 - s.spec.SkewHot) / float64(s.par)
		for i := range w {
			w[i] = base
		}
		w[0] += s.spec.SkewHot
		s.weightsBuf = w
	}
	return s.weightsBuf
}

// effCost returns the effective per-record *capacity* cost for the
// operator at its current parallelism, including visible and hidden
// coordination overhead and, when enabled, instrumentation overhead.
// The value only changes on rescale (resize clears the cache), so the
// per-tick paths hit the memo.
func (e *Engine) effCost(s *opState) float64 {
	if s.costCache > 0 {
		return s.costCache
	}
	c := s.spec.CostPerRecord *
		(1 + s.spec.Alpha*float64(s.par-1)) *
		(1 + s.spec.HiddenAlpha*float64(s.par-1))
	if e.cfg.Instrumented {
		c *= 1 + e.cfg.InstrOverhead
	}
	s.costCache = c
	return c
}

// usefulFrac is the fraction of an operator's capacity cost that shows
// up as useful time in the instrumentation; the hidden-overhead
// remainder is experienced as waiting. Cached like effCost.
func (s *opState) usefulFrac() float64 {
	if s.ufCache > 0 {
		return s.ufCache
	}
	s.ufCache = 1 / (1 + s.spec.HiddenAlpha*float64(s.par-1))
	return s.ufCache
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Workers returns the current global worker count (ModeTimely).
func (e *Engine) Workers() int { return e.workers }

// Parallelism returns the currently deployed per-operator instance
// counts.
func (e *Engine) Parallelism() dataflow.Parallelism {
	out := make(dataflow.Parallelism, len(e.ops))
	for _, s := range e.ops {
		out[s.name] = s.par
	}
	return out
}

// Graph returns the logical graph the engine executes.
func (e *Engine) Graph() *dataflow.Graph { return e.graph }

// TargetRates returns the current target rate of every source —
// the externally monitored λsrc the policy consumes.
func (e *Engine) TargetRates() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range e.ops {
		if s.isSource {
			out[s.name] = s.src.Rate(e.now)
		}
	}
	return out
}

// Backlog returns the number of records a source owes (accumulated
// while backpressured or paused).
func (e *Engine) Backlog(source string) float64 {
	for _, s := range e.ops {
		if s.isSource && s.name == source {
			return s.backlog
		}
	}
	return math.NaN()
}
