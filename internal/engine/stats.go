package engine

import (
	"sort"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// IntervalStats carries everything observed since the previous Collect:
// the per-instance instrumentation windows DS2 consumes, the externally
// observed source rates, backpressure signals, latency samples and
// (Timely) epoch completions.
type IntervalStats struct {
	Start, End float64
	// Windows are the per-instance instrumentation windows (§4.1).
	Windows []metrics.WindowMetrics
	// SourceObserved is the achieved output rate per source over the
	// interval — what an external monitor sees.
	SourceObserved map[string]float64
	// TargetRates is the target rate per source at interval end.
	TargetRates map[string]float64
	// Backpressured lists operators whose input queues crossed the
	// backpressure threshold (signal consumed by Dhalion-style
	// policies; meaningless in Timely mode).
	Backpressured []string
	// BackpressureFraction is the fraction of the interval each
	// operator spent signaling backpressure.
	BackpressureFraction map[string]float64
	// MaxOccupancy is each operator's worst input-queue occupancy in
	// [0, 1] at collection time.
	MaxOccupancy map[string]float64
	// Latencies are weighted per-record latency samples taken at
	// sinks during the interval.
	Latencies []LatencySample
	// EpochLatencies are completed-epoch latencies (Timely mode).
	EpochLatencies []EpochLatency
	// Parallelism and Workers snapshot the deployment.
	Parallelism dataflow.Parallelism
	Workers     int
}

// Collect closes the current observation interval: it materializes
// per-instance windows from the counters, resets them, and returns the
// interval's statistics.
func (e *Engine) Collect() IntervalStats {
	d := e.now - e.intervalStart
	out := IntervalStats{
		Start:                e.intervalStart,
		End:                  e.now,
		SourceObserved:       make(map[string]float64),
		TargetRates:          e.TargetRates(),
		MaxOccupancy:         make(map[string]float64),
		BackpressureFraction: make(map[string]float64),
		Parallelism:          e.Parallelism(),
		Workers:              e.workers,
	}
	if d <= 0 {
		return out
	}
	for _, s := range e.ops {
		occ := 0.0
		for k := range s.instances {
			inst := &s.instances[k]
			if e.cfg.QueueCapacity > 0 {
				if o := inst.queue.count / e.cfg.QueueCapacity; o > occ {
					occ = o
				}
			}
			shares := 1
			if e.cfg.Mode == ModeTimely && !s.isSource {
				// Report one window per worker: every worker hosts
				// one instance of each operator (§4.3), and the
				// processor-sharing budget spreads evenly.
				shares = e.workers
			}
			for sh := 0; sh < shares; sh++ {
				w := e.buildWindow(s, inst, d, shares)
				w.ID = metrics.InstanceID{Operator: s.name, Index: k*shares + sh}
				out.Windows = append(out.Windows, w)
			}
			inst.processed, inst.pushed, inst.useful = 0, 0, 0
			inst.waitIn, inst.waitOut, inst.serExtra = 0, 0, 0
		}
		if !s.isSource {
			out.MaxOccupancy[s.name] = occ
			out.BackpressureFraction[s.name] = clamp(s.bpTime/d, 0, 1)
			s.bpTime = 0
			if occ >= e.cfg.BackpressureThreshold {
				out.Backpressured = append(out.Backpressured, s.name)
			}
		}
		if s.isSource {
			out.SourceObserved[s.name] = s.emitted / d
			s.emitted = 0
		}
	}
	sort.Strings(out.Backpressured)
	out.Latencies = e.latencies
	e.latencies = nil
	out.EpochLatencies = e.epochLats
	e.epochLats = nil
	e.intervalStart = e.now
	return out
}

// buildWindow converts an instance's counters into one WindowMetrics,
// splitting useful time into the deser/proc/ser activities by the
// spec's fractions. shares > 1 divides everything evenly (Timely's
// per-worker reporting).
func (e *Engine) buildWindow(s *opState, inst *instance, d float64, shares int) metrics.WindowMetrics {
	f := 1.0 / float64(shares)
	useful := inst.useful * f
	if useful > d {
		useful = d // float safety: Wu <= W
	}
	w := metrics.WindowMetrics{
		Window:        d,
		Processed:     inst.processed * f,
		Pushed:        inst.pushed * f,
		WaitingInput:  clamp(inst.waitIn*f, 0, d),
		WaitingOutput: clamp(inst.waitOut*f, 0, d),
	}
	if s.isSource {
		w.Serialization = clamp(inst.serExtra*f, 0, useful)
		return w
	}
	deser := useful * s.spec.DeserFrac
	ser := useful * s.spec.SerFrac
	w.Deserialization = deser
	w.Serialization = ser
	w.Processing = useful - deser - ser
	return w
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RunInterval advances the simulation by d seconds and collects the
// interval's statistics — the harness's main loop primitive.
func (e *Engine) RunInterval(d float64) IntervalStats {
	e.Run(d)
	return e.Collect()
}

// Snapshot aggregates interval stats into the policy's input. In
// Timely mode the current parallelism passed to the policy should be
// the per-worker view (every operator at parallelism == workers);
// stats windows already reflect that split.
func Snapshot(st IntervalStats) (metrics.Snapshot, error) {
	return metrics.BuildSnapshot(st.End, st.Windows, st.TargetRates)
}

// LatencyQuantile computes the q-quantile (0..1) of weighted latency
// samples. It returns 0 when there are no samples.
func LatencyQuantile(samples []LatencySample, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]LatencySample(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i].Latency < s[j].Latency })
	total := 0.0
	for _, x := range s {
		total += x.Weight
	}
	if total <= 0 {
		return 0
	}
	target := q * total
	cum := 0.0
	for _, x := range s {
		cum += x.Weight
		if cum >= target {
			return x.Latency
		}
	}
	return s[len(s)-1].Latency
}

// EpochQuantile computes the q-quantile of epoch latencies.
func EpochQuantile(eps []EpochLatency, q float64) float64 {
	if len(eps) == 0 {
		return 0
	}
	ls := make([]float64, len(eps))
	for i, e := range eps {
		ls[i] = e.Latency
	}
	sort.Float64s(ls)
	idx := int(q * float64(len(ls)-1))
	return ls[idx]
}
