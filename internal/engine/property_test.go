package engine

import (
	"math"
	"math/rand"
	"testing"

	"ds2/internal/dataflow"
)

// randomWorkload builds a random DAG with random cost models.
func randomWorkload(rng *rand.Rand) (*dataflow.Graph, map[string]OperatorSpec, map[string]SourceSpec, dataflow.Parallelism) {
	depth := 2 + rng.Intn(4)
	names := []string{"src"}
	b := dataflow.NewBuilder().AddOperator("src")
	for i := 1; i < depth; i++ {
		n := string(rune('a' + i - 1))
		b.AddOperator(n)
		// Connect to 1-2 random earlier operators.
		b.AddEdge(names[rng.Intn(len(names))], n)
		if len(names) > 1 && rng.Intn(2) == 0 {
			// second edge to a different predecessor if possible
			from := names[rng.Intn(len(names))]
			// duplicate edges are builder errors; skip quietly by
			// trying only once
			if from != names[len(names)-1] {
				b.AddEdge(from, n)
			}
		}
		names = append(names, n)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, nil, nil
	}
	specs := map[string]OperatorSpec{}
	par := dataflow.Parallelism{}
	for i, n := range g.Names() {
		if i < g.NumSources() {
			par[n] = 1
			continue
		}
		specs[n] = OperatorSpec{
			CostPerRecord: 0.0005 + rng.Float64()*0.005,
			Selectivity:   rng.Float64() * 2,
			Alpha:         rng.Float64() * 0.02,
		}
		par[n] = 1 + rng.Intn(4)
	}
	srcs := map[string]SourceSpec{
		"src": {Rate: ConstantRate(50 + rng.Float64()*2000)},
	}
	return g, specs, srcs, par
}

// TestQuickConservationRandomTopologies: for random DAGs and cost
// models, records are conserved at every operator — what a source or
// upstream operator emitted equals what the consumer processed plus
// what still sits in its queues (and window stashes).
func TestQuickConservationRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	built := 0
	for trial := 0; trial < 60; trial++ {
		g, specs, srcs, par := randomWorkload(rng)
		if g == nil {
			continue
		}
		built++
		e, err := New(g, specs, srcs, par, Config{Mode: ModeFlink, QueueCapacity: 300 + rng.Float64()*5000})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(5 + rng.Float64()*10)
		for i := 0; i < g.NumOperators(); i++ {
			s := e.ops[i]
			// Inflow into operator i: sum of upstream pushes scaled
			// by how upstream fans out (each downstream gets the full
			// stream).
			inflow := 0.0
			for _, u := range g.Upstream(i) {
				us := e.ops[u]
				if us.isSource {
					inflow += us.cumEmitted
				} else {
					for _, inst := range us.instances {
						inflow += inst.pushed
					}
				}
			}
			if s.isSource {
				continue
			}
			held := 0.0
			for _, inst := range s.instances {
				held += inst.processed + inst.queue.count
			}
			if diff := math.Abs(inflow - held); diff > 1e-6*math.Max(1, inflow) {
				t.Fatalf("trial %d op %s: inflow %v vs processed+queued %v",
					trial, s.name, inflow, held)
			}
		}
	}
	if built < 30 {
		t.Fatalf("only %d workloads built", built)
	}
}

// TestQuickThroughputNeverExceedsTargetOrCapacity: observed source
// rate is bounded by the target rate (no records invented) and each
// operator's processing is bounded by its CPU capacity.
func TestQuickThroughputBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		g, specs, srcs, par := randomWorkload(rng)
		if g == nil {
			continue
		}
		e, err := New(g, specs, srcs, par, Config{Mode: ModeFlink, QueueCapacity: 1000})
		if err != nil {
			t.Fatal(err)
		}
		st := e.RunInterval(10)
		rate := srcs["src"].Rate(0)
		if got := st.SourceObserved["src"]; got > rate*1.001 {
			t.Fatalf("trial %d: observed %v > target %v", trial, got, rate)
		}
		for _, w := range st.Windows {
			if err := w.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if w.ID.Operator == "src" {
				continue
			}
			spec := specs[w.ID.Operator]
			p := float64(st.Parallelism[w.ID.Operator])
			capRecords := w.Window / (spec.CostPerRecord * (1 + spec.Alpha*(p-1)))
			if w.Processed > capRecords*1.001 {
				t.Fatalf("trial %d %s: processed %v > capacity %v",
					trial, w.ID, w.Processed, capRecords)
			}
		}
	}
}

// TestQuickRescaleConservesWork: rescaling at arbitrary points never
// creates or destroys queued records.
func TestQuickRescaleConservesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 25; trial++ {
		g, specs, srcs, par := randomWorkload(rng)
		if g == nil {
			continue
		}
		e, err := New(g, specs, srcs, par, Config{Mode: ModeFlink, QueueCapacity: 500, RedeployDelay: 0})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(3 + rng.Float64()*5)
		queued := func() float64 {
			total := 0.0
			for _, s := range e.ops {
				for _, inst := range s.instances {
					total += inst.queue.count + inst.stash.count + inst.fire.count
				}
			}
			return total
		}
		before := queued()
		next := par.Clone()
		for _, n := range g.Names()[g.NumSources():] {
			next[n] = 1 + rng.Intn(8)
		}
		if err := e.Rescale(next); err != nil {
			t.Fatal(err)
		}
		after := queued()
		if math.Abs(before-after) > 1e-6*math.Max(1, before) {
			t.Fatalf("trial %d: rescale changed in-flight work %v -> %v", trial, before, after)
		}
	}
}
