package engine

import "math"

// Run advances the simulation by d seconds of virtual time.
func (e *Engine) Run(d float64) {
	end := e.now + d
	for e.now < end-1e-9 {
		dt := e.cfg.Tick
		if e.now+dt > end {
			dt = end - e.now
		}
		e.step(dt)
	}
}

// step advances one tick.
func (e *Engine) step(dt float64) {
	e.tickID++
	if e.paused {
		// The job is stopped for redeployment: external data keeps
		// arriving (sources accrue backlog) but nothing moves.
		for _, s := range e.ops {
			if s.isSource {
				s.backlog += s.src.Rate(e.now) * dt
			}
		}
		e.now += dt
		if e.now >= e.resumeAt-1e-9 {
			e.applyRescale()
		}
		return
	}
	if e.cfg.Mode == ModeTimely {
		e.stepTimely(dt)
	} else {
		e.stepBlocking(dt)
	}
	e.now += dt
	if e.cfg.Mode == ModeTimely {
		e.recordEpochCompletions()
	}
}

func (e *Engine) epochOf(t float64) int64 {
	// Accumulated float drift in the tick clock can leave t a hair
	// below an epoch boundary; the tolerance (far below any tick
	// size) keeps boundary-tick records in their nominal epoch.
	return int64((t + 1e-6) / e.cfg.EpochSize)
}

// allowedInput returns how many records operator j can accept during a
// tick of length dt: per instance, the free buffer space plus what the
// instance itself can drain within the tick (producers and consumers
// run concurrently — without the drain credit, sustained throughput
// would be artificially capped at queue-capacity/tick). The result is
// the largest E with E·w_k <= room_k for every instance k.
//
// The result is memoized for the current tick and invalidated whenever
// j's input queues change (queueGen), so several upstream producers
// querying an untouched consumer share one computation while any
// producer that actually emitted forces the next query to see the
// fuller queue — bit-identical to recomputing every time.
func (e *Engine) allowedInput(j *opState, dt float64) float64 {
	if j.inAllowedTick == e.tickID && j.inAllowedGen == j.queueGen {
		return j.inAllowed
	}
	w := j.weights()
	cost := e.effCost(j)
	if j.spec.Window != nil {
		cost *= j.spec.Window.InsertFrac
	}
	drain := math.Inf(1)
	if cost > 0 {
		drain = dt / cost
	}
	if j.spec.RateLimit > 0 {
		if lim := j.spec.RateLimit * dt; lim < drain {
			drain = lim
		}
	}
	allowed := math.Inf(1)
	for k := range j.instances {
		if w[k] <= 0 {
			continue
		}
		// free may be negative: the drain credit lets one tick's worth
		// of records overshoot the capacity when the consumer is
		// itself blocked downstream; the negative free then cancels
		// the credit on the next tick, so sustained inflow converges
		// to the consumer's actual drain rate.
		free := e.cfg.QueueCapacity - j.instances[k].queue.count
		room := free + drain
		if room < 0 {
			room = 0
		}
		if v := room / w[k]; v < allowed {
			allowed = v
		}
	}
	j.inAllowed, j.inAllowedTick, j.inAllowedGen = allowed, e.tickID, j.queueGen
	return allowed
}

// allowedOutput returns how many records operator s may emit this tick
// before some downstream buffer fills (Flink/Heron backpressure). The
// fluid approximation of Flink's semantics: a full consumer buffer
// blocks the producer entirely, so the binding constraint is the
// tightest downstream operator.
func (e *Engine) allowedOutput(s *opState, dt float64) float64 {
	allowed := math.Inf(1)
	for _, j := range s.down {
		if v := e.allowedInput(j, dt); v < allowed {
			allowed = v
		}
	}
	return allowed
}

// emitPieces fans pieces out to every downstream operator of s,
// partitioned across instances by each consumer's weights. scale
// multiplies piece counts (selectivity).
//
// The inner loop is bucketQueue.push hand-inlined (the compiler won't:
// push exceeds the inline budget, and this producer→consumer edge is
// the hottest path in the simulator). It must mirror push exactly.
func (e *Engine) emitPieces(s *opState, pieces []bucket, scale float64) {
	for _, j := range s.down {
		w := j.weights()
		j.queueGen++ // input queues change: invalidate memoized allowedInput
		for _, p := range pieces {
			n := p.count * scale
			for k := range j.instances {
				count := n * w[k]
				if count <= 0 {
					continue
				}
				q := &j.instances[k].queue
				q.count += count
				if qn := len(q.buckets); qn > q.head {
					t := &q.buckets[qn-1]
					if t.epoch == p.epoch && p.emit >= t.first &&
						(p.emit-t.first <= defaultMergeEps || qn-q.head >= maxBuckets) {
						t.emit = (t.emit*t.count + p.emit*count) / (t.count + count)
						t.count += count
						q.noteVisible(t)
						continue
					}
				}
				q.buckets = append(q.buckets, bucket{count: count, emit: p.emit, first: p.emit, epoch: p.epoch})
				q.noteVisible(&q.buckets[len(q.buckets)-1])
			}
		}
	}
}

// stepBlocking simulates one tick of the Flink/Heron execution model.
// Backpressure-signal accounting (what Dhalion-style controllers
// consume) is folded into processOp's first instance pass: the
// operator signals while any instance's pre-pull queue occupancy is at
// or above the threshold.
func (e *Engine) stepBlocking(dt float64) {
	for _, s := range e.ops {
		if s.isSource {
			e.emitSource(s, dt)
		} else {
			e.processOp(s, dt, dt, false)
		}
	}
}

// emitSource advances one source by dt: external data accrues at the
// target rate; emission is bounded by catch-up policy, per-instance
// serialization capacity, and downstream space.
func (e *Engine) emitSource(s *opState, dt float64) {
	rate := s.src.Rate(e.now)
	s.backlog += rate * dt
	want := s.backlog
	if lim := s.src.CatchupFactor * rate * dt; want > lim {
		want = lim
	}
	cost := s.src.CostPerRecord
	if e.cfg.Instrumented {
		cost *= 1 + e.cfg.InstrOverhead
	}
	if cost > 0 {
		if lim := float64(s.par) * dt / cost; want > lim {
			want = lim
		}
	}
	spaceBound := false
	if space := e.allowedOutput(s, dt); want > space {
		want = space
		spaceBound = true
	}
	if want < 0 {
		want = 0
	}
	if want > 0 {
		e.srcPiece[0] = bucket{count: want, emit: e.now, epoch: e.epochOf(e.now)}
		e.emitPieces(s, e.srcPiece[:], 1)
	}
	s.backlog -= want
	if s.src.NoBacklog {
		s.backlog = 0
	}
	s.emitted += want
	s.cumEmitted += want

	// Per-instance accounting: emission spreads uniformly.
	share := want / float64(s.par)
	for k := range s.instances {
		inst := &s.instances[k]
		inst.pushed += share
		useful := share * cost
		if useful > dt {
			useful = dt
		}
		inst.useful += useful
		inst.addSerialization(useful)
		slack := dt - useful
		if slack > 0 {
			if spaceBound {
				inst.waitOut += slack
			} else {
				inst.waitIn += slack
			}
		}
	}
}

// addSerialization notes useful time that is pure serialization.
// Regular operators split useful time by the spec's fractions when
// windows are collected; sources are all serialization, tracked here.
func (i *instance) addSerialization(v float64) { i.serExtra += v }

// scratch returns the engine's reusable pop buffer. Callers must
// finish with the previous pop's result before popping again, and call
// keepScratch with the result so grown capacity is retained.
func (e *Engine) scratch() []bucket {
	if e.scratchBuf == nil {
		e.scratchBuf = make([]bucket, 0, 256)
	}
	return e.scratchBuf
}

// keepScratch retains a pop result's backing array for reuse.
func (e *Engine) keepScratch(pieces []bucket) {
	if cap(pieces) > cap(e.scratchBuf) {
		e.scratchBuf = pieces[:0]
	}
}

// processOp advances one non-source operator by one tick. budget is
// the per-instance useful-time budget (== dt in blocking mode; a
// processor-sharing slice in Timely mode). shared marks Timely mode
// (no output constraints, single logical instance).
func (e *Engine) processOp(s *opState, dt, budget float64, shared bool) {
	cost := e.effCost(s)
	uf := s.usefulFrac()
	sel := s.spec.Selectivity
	isSink := s.isSink

	insertCost := cost
	fireCost := 0.0
	if s.spec.Window != nil {
		insertCost = cost * s.spec.Window.InsertFrac
		fireCost = cost * (1 - s.spec.Window.InsertFrac)
	}

	// Phase 1: fire backlog (windowed operators), which produces the
	// operator's output burst.
	if s.spec.Window != nil {
		e.drainFire(s, dt, budget, fireCost, sel, isSink, shared)
	}

	// Phase 2: pull new records from the input queue.
	allowedOut := math.Inf(1)
	if !shared && !isSink && sel > 0 && s.spec.Window == nil {
		allowedOut = e.allowedOutput(s, dt)
	}

	// Desired per-instance pull, bounded by queue, remaining budget
	// and rate limit. The scratch slice is reused across ticks, so
	// every entry is written unconditionally. The full-budget limit is
	// hoisted: instances that spent nothing in phase 1 (all of them,
	// for non-windowed operators) share one division. The backpressure
	// signal scan (blocking modes) is folded into this pass: it reads
	// the pre-pull occupancy at this operator's turn in the tick —
	// after upstream operators have emitted, the same program point as
	// the scan stepBlocking used to run just before processOp (phase 1
	// never touches the input queues, so folding it here is
	// bit-identical to that scan).
	fullLim := math.Inf(1)
	if insertCost > 0 {
		fullLim = budget / insertCost
	}
	bpSeen := false
	desired := s.desired
	totalOut := 0.0
	for k := range s.instances {
		inst := &s.instances[k]
		if !shared && inst.queue.count >= e.bpLevel {
			bpSeen = true
		}
		d := 0.0
		if rem := budget - inst.tickUseful; rem > 0 {
			d = inst.queue.count
			if insertCost > 0 {
				lim := fullLim
				if inst.tickUseful != 0 {
					lim = rem / insertCost
				}
				if d > lim {
					d = lim
				}
			}
			if s.spec.RateLimit > 0 {
				if lim := s.spec.RateLimit*dt - inst.tickPulled; d > lim {
					d = lim
				}
			}
			if d < 0 {
				d = 0
			}
		}
		desired[k] = d
		totalOut += d * sel
	}
	if bpSeen {
		s.bpTime += dt
	}
	factor := 1.0
	outBound := false
	if s.spec.Window == nil && totalOut > allowedOut {
		factor = allowedOut / totalOut
		outBound = true
	}

	for k := range s.instances {
		inst := &s.instances[k]
		n := desired[k] * factor
		if n > 0 {
			s.queueGen++ // input queue changes: invalidate memoized allowedInput
			pieces := inst.queue.pop(n, e.scratch())
			if s.spec.Window != nil {
				for _, p := range pieces {
					inst.stash.push(p.count, p.emit, p.epoch)
				}
			} else if isSink {
				e.sampleLatency(pieces)
			} else {
				e.emitPieces(s, pieces, sel)
				for _, p := range pieces {
					inst.pushed += p.count * sel
				}
			}
			e.keepScratch(pieces)
			inst.processed += n
			inst.tickPulled += n
			busy := n * insertCost
			inst.useful += busy * uf
			inst.tickUseful += busy
		}
		// Wait attribution for the whole tick happens once, here,
		// after both phases.
		slack := dt - inst.tickUseful
		if slack > 1e-12 {
			if outBound || inst.tickOutBound {
				inst.waitOut += slack
			} else {
				inst.waitIn += slack
			}
		}
		inst.tickUseful = 0
		inst.tickPulled = 0
		inst.tickOutBound = false
	}

	// Window firing at slide boundaries, checked after this tick's
	// inserts so every record pulled before the boundary joins the
	// closing window (event-time assignment); the burst drains from
	// the next tick on. Multiple boundaries can pass if the tick is
	// long or the job was paused.
	if s.spec.Window != nil {
		for s.nextFire <= e.now+dt+1e-12 {
			for k := range s.instances {
				inst := &s.instances[k]
				inst.fire.transferAll(&inst.stash)
			}
			s.nextFire += s.spec.Window.Slide
		}
	}
}

// drainFire processes fired-window backlog: each stashed record costs
// fireCost and produces sel output records.
func (e *Engine) drainFire(s *opState, dt, budget, fireCost, sel float64, isSink, shared bool) {
	// Output constraint across the whole operator.
	allowedOut := math.Inf(1)
	if !shared && !isSink && sel > 0 {
		allowedOut = e.allowedOutput(s, dt)
	}
	desired := s.desired
	totalOut := 0.0
	for k := range s.instances {
		inst := &s.instances[k]
		d := inst.fire.count
		if fireCost > 0 {
			if lim := (budget - inst.tickUseful) / fireCost; d > lim {
				d = lim
			}
		}
		if d < 0 {
			d = 0
		}
		desired[k] = d
		totalOut += d * sel
	}
	factor := 1.0
	if totalOut > allowedOut {
		factor = allowedOut / totalOut
		for k := range s.instances {
			s.instances[k].tickOutBound = true
		}
	}
	for k := range s.instances {
		inst := &s.instances[k]
		n := desired[k] * factor
		if n <= 0 {
			continue
		}
		pieces := inst.fire.pop(n, e.scratch())
		if isSink {
			e.sampleLatency(pieces)
		} else {
			e.emitPieces(s, pieces, sel)
			for _, p := range pieces {
				inst.pushed += p.count * sel
			}
		}
		e.keepScratch(pieces)
		busy := n * fireCost
		inst.useful += busy * s.usefulFrac()
		inst.tickUseful += busy
	}
}

// sampleLatency records one weighted latency observation for the
// records arriving at a sink this tick (aggregated so long queues with
// many buckets cannot blow up the sample buffer).
func (e *Engine) sampleLatency(pieces []bucket) {
	total, wsum := 0.0, 0.0
	for _, p := range pieces {
		if p.count <= 0 {
			continue
		}
		lat := e.now - p.emit
		if lat < 0 {
			lat = 0
		}
		total += lat * p.count
		wsum += p.count
	}
	if wsum > 0 {
		e.latencies = append(e.latencies, LatencySample{
			Latency: total/wsum + e.flushResidence(),
			Weight:  wsum,
		})
	}
}

// flushResidence is the pipeline's aggregate output-buffer residence
// per record (see Config.FlushBufferRecords). Recomputed lazily after
// rescales since effective costs depend on parallelism.
func (e *Engine) flushResidence() float64 {
	if e.cfg.FlushBufferRecords <= 0 {
		return 0
	}
	if e.residence >= 0 {
		return e.residence
	}
	r := 0.0
	for _, s := range e.ops {
		if s.isSource {
			continue
		}
		r += e.cfg.FlushBufferRecords / 2 * e.effCost(s)
	}
	e.residence = r
	return r
}

// stepTimely simulates one tick of Timely's shared-worker model:
// sources emit unconditionally, then the worker pool's aggregate
// capacity (workers·dt) is shared across operators in proportion to
// their demand (round-robin scheduling in the fluid limit).
func (e *Engine) stepTimely(dt float64) {
	for _, s := range e.ops {
		if s.isSource {
			e.emitSourceTimely(s, dt)
		}
	}
	// Demands, measured in worker-seconds for this tick.
	total := 0.0
	demand := e.demandBuf
	for i, s := range e.ops {
		demand[i] = 0
		if s.isSource {
			continue
		}
		cost := e.effCost(s)
		insertCost, fireCost := cost, 0.0
		if s.spec.Window != nil {
			insertCost = cost * s.spec.Window.InsertFrac
			fireCost = cost * (1 - s.spec.Window.InsertFrac)
		}
		// Windows fire at end-of-tick, so a closing window's stash
		// becomes fire demand only from the next tick on; demanding
		// it here would starve this tick's inserts and make the
		// boundary records miss their window.
		d := 0.0
		for k := range s.instances {
			d += s.instances[k].queue.count*insertCost + s.instances[k].fire.count*fireCost
		}
		demand[i] = d
		total += d
	}
	capacity := float64(e.workers) * dt
	budgets := e.waterfill(demand, capacity)
	for i, s := range e.ops {
		if s.isSource {
			continue
		}
		e.processOp(s, dt, budgets[i], true)
	}
}

// waterfill allocates capacity across demands max-min fairly — the
// fluid limit of round-robin scheduling: operators with little work
// are served completely and the leftover is split among the busy
// ones. (Proportional sharing would instead starve small residual
// demands exponentially, holding epochs open far too long.)
func waterfill(demand []float64, capacity float64) []float64 {
	return waterfillInto(make([]float64, len(demand)), make([]int, 0, len(demand)), demand, capacity)
}

// waterfill is the engine's zero-alloc entry: out and the active-index
// scratch are engine-owned, reused every tick.
func (e *Engine) waterfill(demand []float64, capacity float64) []float64 {
	return waterfillInto(e.budgetBuf[:len(demand)], e.wfActive[:0], demand, capacity)
}

// waterfillInto computes the max-min fair allocation into out (same
// length as demand), using active as index scratch.
func waterfillInto(out []float64, active []int, demand []float64, capacity float64) []float64 {
	if total(demand) <= capacity {
		copy(out, demand)
		return out
	}
	for i := range out {
		out[i] = 0
	}
	remaining := active
	for i, d := range demand {
		if d > 0 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 && capacity > 1e-15 {
		share := capacity / float64(len(remaining))
		next := remaining[:0]
		progressed := false
		for _, i := range remaining {
			if demand[i]-out[i] <= share {
				grant := demand[i] - out[i]
				out[i] = demand[i]
				capacity -= grant
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		if !progressed {
			// Everyone wants more than the fair share: split evenly.
			for _, i := range next {
				out[i] += share
			}
			break
		}
		remaining = next
	}
	return out
}

func total(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// emitSourceTimely: Timely sources are never delayed by the dataflow.
func (e *Engine) emitSourceTimely(s *opState, dt float64) {
	rate := s.src.Rate(e.now)
	s.backlog += rate * dt
	want := s.backlog
	if lim := s.src.CatchupFactor * rate * dt; want > lim {
		want = lim
	}
	if want > 0 {
		e.srcPiece[0] = bucket{count: want, emit: e.now, epoch: e.epochOf(e.now)}
		e.emitPieces(s, e.srcPiece[:], 1)
	}
	s.backlog -= want
	if s.src.NoBacklog {
		s.backlog = 0
	}
	s.emitted += want
	s.cumEmitted += want
	share := want / float64(s.par)
	for k := range s.instances {
		s.instances[k].pushed += share
	}
}

// recordEpochCompletions finds the minimum epoch still in flight;
// every fully emitted epoch below it has now completely flowed through
// the dataflow. Each queue maintains its min-epoch frontier
// incrementally (see bucketQueue), so this is O(instances) per tick
// rather than O(total buckets).
func (e *Engine) recordEpochCompletions() {
	minE := int64(math.MaxInt64)
	for _, s := range e.ops {
		for k := range s.instances {
			inst := &s.instances[k]
			if me, ok := inst.queue.minEpoch(); ok && me < minE {
				minE = me
			}
			if me, ok := inst.stash.minEpoch(); ok && me < minE {
				minE = me
			}
			if me, ok := inst.fire.minEpoch(); ok && me < minE {
				minE = me
			}
		}
	}
	// Epoch x is fully emitted once now >= (x+1)·epoch.
	fullyEmitted := int64(e.now/e.cfg.EpochSize) - 1
	limit := fullyEmitted
	if minE-1 < limit {
		limit = minE - 1
	}
	for ep := e.epochMax; ep <= limit; ep++ {
		lat := e.now - float64(ep+1)*e.cfg.EpochSize
		if lat < 0 {
			lat = 0
		}
		e.epochLats = append(e.epochLats, EpochLatency{Epoch: ep, Latency: lat})
	}
	if limit+1 > e.epochMax {
		e.epochMax = limit + 1
	}
}
