package engine

import (
	"testing"

	"ds2/internal/dataflow"
)

// allocPipeline builds the benchmark pipeline (src -> map x8 -> sink
// x2 at 100K rec/s) in the given mode and runs it to steady state.
func allocPipeline(t *testing.T, mode Mode, window *WindowSpec) *Engine {
	t.Helper()
	g, err := dataflow.NewBuilder().
		AddOperator("src").AddOperator("map").AddOperator("sink").
		AddEdge("src", "map").AddEdge("map", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g,
		map[string]OperatorSpec{
			"map":  {CostPerRecord: 0.00005, Selectivity: 1, Window: window},
			"sink": {CostPerRecord: 0.00001},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(100_000)}},
		dataflow.Parallelism{"src": 1, "map": 8, "sink": 2},
		Config{Mode: mode, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(20) // reach steady state: queues, scratch and buckets warmed
	return e
}

// reserveSamples pre-grows the engine's latency/epoch sample buffers
// so the measured region cannot hit an amortized append growth (the
// buffers legitimately accumulate one entry per tick/epoch between
// Collects; growth is amortized O(1) but not allocation-free at the
// growth points).
func reserveSamples(e *Engine, extra int) {
	lat := make([]LatencySample, len(e.latencies), len(e.latencies)+extra)
	copy(lat, e.latencies)
	e.latencies = lat
	eps := make([]EpochLatency, len(e.epochLats), len(e.epochLats)+extra)
	copy(eps, e.epochLats)
	e.epochLats = eps
}

// TestSteadyStateTickZeroAllocs pins the per-tick fast path at zero
// allocations in all three engine modes — the regression guard for
// the zero-alloc tick kernel (weights/desired/demand buffers, the
// allowedInput memo, waterfill scratch, the incremental epoch
// frontier).
func TestSteadyStateTickZeroAllocs(t *testing.T) {
	for _, mode := range []Mode{ModeFlink, ModeHeron, ModeTimely} {
		t.Run(mode.String(), func(t *testing.T) {
			e := allocPipeline(t, mode, nil)
			const runs = 500
			reserveSamples(e, runs+runs/2)
			allocs := testing.AllocsPerRun(runs, func() {
				e.step(e.cfg.Tick)
			})
			if allocs != 0 {
				t.Errorf("steady-state tick allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestSteadyStateWindowedTickZeroAllocs covers the windowed operator
// path (stash/fire queues and slide-boundary transfers) — the shape
// Q5/Q11 exercise.
func TestSteadyStateWindowedTickZeroAllocs(t *testing.T) {
	e := allocPipeline(t, ModeFlink, &WindowSpec{Slide: 0.5, InsertFrac: 0.5})
	const runs = 500
	reserveSamples(e, runs+runs/2)
	allocs := testing.AllocsPerRun(runs, func() {
		e.step(e.cfg.Tick)
	})
	if allocs != 0 {
		t.Errorf("steady-state windowed tick allocates %.1f objects/op, want 0", allocs)
	}
}
