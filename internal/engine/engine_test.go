package engine

import (
	"math"
	"testing"

	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

func mustGraph(t *testing.T, names ...string) *dataflow.Graph {
	t.Helper()
	g, err := dataflow.Linear(names...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func findWindow(t *testing.T, ws []metrics.WindowMetrics, op string, idx int) metrics.WindowMetrics {
	t.Helper()
	for _, w := range ws {
		if w.ID.Operator == op && w.ID.Index == idx {
			return w
		}
	}
	t.Fatalf("window %s[%d] not found", op, idx)
	return metrics.WindowMetrics{}
}

func opRates(t *testing.T, st IntervalStats, op string) metrics.OperatorRates {
	t.Helper()
	snap, err := Snapshot(st)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	r, ok := snap.Operators[op]
	if !ok {
		t.Fatalf("operator %s missing from snapshot", op)
	}
	return r
}

// --- steady state -------------------------------------------------------

func TestSteadyStatePipeline(t *testing.T) {
	g := mustGraph(t, "src", "map", "sink")
	e, err := New(g,
		map[string]OperatorSpec{
			"map":  {CostPerRecord: 0.001, Selectivity: 1},
			"sink": {CostPerRecord: 0.0001, Selectivity: 0},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(100)}},
		dataflow.Parallelism{"src": 1, "map": 1, "sink": 1},
		Config{Mode: ModeFlink})
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunInterval(10)

	if got := st.SourceObserved["src"]; math.Abs(got-100) > 1 {
		t.Errorf("observed source rate = %v, want ~100", got)
	}
	r := opRates(t, st, "map")
	// True rate is 1/cost regardless of load.
	if math.Abs(r.TrueProcessing-1000) > 1 {
		t.Errorf("map true processing = %v, want ~1000", r.TrueProcessing)
	}
	if math.Abs(r.ObservedProcessing-100) > 2 {
		t.Errorf("map observed processing = %v, want ~100", r.ObservedProcessing)
	}
	// The map waits on input most of the time.
	w := findWindow(t, st.Windows, "map", 0)
	if w.WaitingInput < 8 {
		t.Errorf("map waiting input = %v, want most of the 10s", w.WaitingInput)
	}
	if len(st.Backpressured) != 0 {
		t.Errorf("unexpected backpressure: %v", st.Backpressured)
	}
	// End-to-end latency is sub-tick in steady state.
	if p99 := LatencyQuantile(st.Latencies, 0.99); p99 > 0.05 {
		t.Errorf("steady-state p99 latency = %v", p99)
	}
}

func TestSelectivityConservation(t *testing.T) {
	g := mustGraph(t, "src", "flatmap", "count")
	e, err := New(g,
		map[string]OperatorSpec{
			"flatmap": {CostPerRecord: 0.0001, Selectivity: 20},
			"count":   {CostPerRecord: 0.00001, Selectivity: 0},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(50)}},
		dataflow.Parallelism{"src": 1, "flatmap": 1, "count": 1},
		Config{Mode: ModeFlink})
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunInterval(10)
	fm := findWindow(t, st.Windows, "flatmap", 0)
	if math.Abs(fm.Pushed-fm.Processed*20) > 1e-6 {
		t.Errorf("pushed %v != 20×processed %v", fm.Pushed, fm.Processed)
	}
	cnt := findWindow(t, st.Windows, "count", 0)
	// All flatmap output reaches count (steady state, small queues).
	if math.Abs(cnt.Processed-fm.Pushed) > 20 {
		t.Errorf("count processed %v vs flatmap pushed %v", cnt.Processed, fm.Pushed)
	}
}

// --- backpressure -------------------------------------------------------

func TestBackpressureSuppressesObservedNotTrueRates(t *testing.T) {
	g := mustGraph(t, "src", "map", "sink")
	e, err := New(g,
		map[string]OperatorSpec{
			"map":  {CostPerRecord: 0.002, Selectivity: 1}, // capacity 500/s < 1000/s offered
			"sink": {CostPerRecord: 0.0001},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(1000)}},
		dataflow.Parallelism{"src": 1, "map": 1, "sink": 1},
		Config{Mode: ModeFlink, QueueCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Let the queue fill, then measure a clean window.
	e.RunInterval(5)
	st := e.RunInterval(10)

	if got := st.SourceObserved["src"]; math.Abs(got-500) > 10 {
		t.Errorf("backpressured source rate = %v, want ~500", got)
	}
	r := opRates(t, st, "map")
	if math.Abs(r.TrueProcessing-500) > 5 {
		t.Errorf("map true rate = %v, want ~500 (unchanged by backpressure)", r.TrueProcessing)
	}
	found := false
	for _, op := range st.Backpressured {
		if op == "map" {
			found = true
		}
	}
	if !found {
		t.Errorf("map not flagged backpressured: %v (occ %v)", st.Backpressured, st.MaxOccupancy)
	}
	// Source reports output waiting, not input waiting.
	sw := findWindow(t, st.Windows, "src", 0)
	if sw.WaitingOutput < sw.WaitingInput {
		t.Errorf("source waits: in=%v out=%v, want mostly output", sw.WaitingInput, sw.WaitingOutput)
	}
	// Latency reflects the standing queue: ~1000 records / 500 rec/s = ~2s.
	if p50 := LatencyQuantile(st.Latencies, 0.5); p50 < 1 || p50 > 3.5 {
		t.Errorf("median latency under backpressure = %v, want ~2s", p50)
	}
	if e.Backlog("src") <= 0 {
		t.Error("source accrued no backlog under backpressure")
	}
}

// TestFig2DownstreamStarvation verifies the Fig. 2 phenomenon end to
// end: a bottleneck suppresses *observed* rates of downstream
// operators, while true rates reveal the capacity — and the real DS2
// policy derives the paper's exact answer (o1→4, o2→2) from engine
// measurements.
func TestFig2DownstreamStarvation(t *testing.T) {
	g := mustGraph(t, "src", "o1", "o2")
	e, err := New(g,
		map[string]OperatorSpec{
			"o1": {CostPerRecord: 0.1, Selectivity: 10},  // 10 rec/s true
			"o2": {CostPerRecord: 0.005, Selectivity: 0}, // 200 rec/s true
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(40)}},
		dataflow.Parallelism{"src": 1, "o1": 1, "o2": 1},
		Config{Mode: ModeFlink, QueueCapacity: 200})
	if err != nil {
		t.Fatal(err)
	}
	e.RunInterval(30) // fill queues / reach regime
	st := e.RunInterval(30)

	snap, err := Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := snap.Operators["o1"], snap.Operators["o2"]
	if math.Abs(o1.TrueProcessing-10) > 0.5 {
		t.Errorf("o1 true rate = %v, want ~10", o1.TrueProcessing)
	}
	if math.Abs(o2.TrueProcessing-200) > 5 {
		t.Errorf("o2 true rate = %v, want ~200", o2.TrueProcessing)
	}
	if o2.ObservedProcessing > 110 {
		t.Errorf("o2 observed = %v, want suppressed ~100", o2.ObservedProcessing)
	}
	if got := st.SourceObserved["src"]; got > 12 {
		t.Errorf("observed source rate = %v, want throttled to ~10", got)
	}

	pol, err := core.NewPolicy(g, core.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := pol.Decide(snap, st.Parallelism, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["o1"] != 4 || dec.Parallelism["o2"] != 2 {
		t.Errorf("policy decision = %v, want o1:4 o2:2", dec.Parallelism)
	}
}

// --- rate limits, skew, parallelism -------------------------------------

func TestRateLimit(t *testing.T) {
	g := mustGraph(t, "src", "lim")
	e, err := New(g,
		map[string]OperatorSpec{"lim": {CostPerRecord: 1e-6, Selectivity: 0, RateLimit: 50}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(500)}},
		dataflow.Parallelism{"src": 1, "lim": 1},
		Config{Mode: ModeFlink, QueueCapacity: 100000})
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunInterval(10)
	lim := findWindow(t, st.Windows, "lim", 0)
	if math.Abs(lim.Processed-500) > 5 { // 50/s × 10s
		t.Errorf("rate-limited processed = %v, want ~500", lim.Processed)
	}
}

func TestParallelismScalesThroughput(t *testing.T) {
	mk := func(p int) float64 {
		g := mustGraph(t, "src", "map")
		e, err := New(g,
			map[string]OperatorSpec{"map": {CostPerRecord: 0.01, Selectivity: 0}},
			map[string]SourceSpec{"src": {Rate: ConstantRate(1000)}},
			dataflow.Parallelism{"src": 1, "map": p},
			Config{Mode: ModeFlink, QueueCapacity: 500})
		if err != nil {
			t.Fatal(err)
		}
		e.RunInterval(5)
		st := e.RunInterval(10)
		return st.SourceObserved["src"]
	}
	r1, r4 := mk(1), mk(4)
	if math.Abs(r1-100) > 5 {
		t.Errorf("p=1 throughput = %v, want ~100", r1)
	}
	if math.Abs(r4-400) > 15 {
		t.Errorf("p=4 throughput = %v, want ~400", r4)
	}
}

func TestCoordinationOverheadSublinear(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.01, Selectivity: 0, Alpha: 0.02}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(10000)}},
		dataflow.Parallelism{"src": 1, "map": 11},
		Config{Mode: ModeFlink, QueueCapacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	e.RunInterval(5)
	st := e.RunInterval(10)
	r := opRates(t, st, "map")
	// Per-instance true rate = 100/(1+0.02·10) = 83.3; aggregate ≈ 917.
	want := 11.0 * 100 / 1.2
	if math.Abs(r.TrueProcessing-want) > 10 {
		t.Errorf("aggregated true rate = %v, want ~%v", r.TrueProcessing, want)
	}
}

func TestSkewHotInstanceSaturates(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.005, Selectivity: 0, SkewHot: 0.5}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(300)}},
		dataflow.Parallelism{"src": 1, "map": 2},
		Config{Mode: ModeFlink, QueueCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Weights: inst0 = 0.5+0.25 = 0.75 (225/s offered > 200/s cap),
	// inst1 = 0.25 (75/s, idle capacity).
	e.RunInterval(10)
	st := e.RunInterval(10)
	hot := findWindow(t, st.Windows, "map", 0)
	cold := findWindow(t, st.Windows, "map", 1)
	if hot.Processed <= cold.Processed*2 {
		t.Errorf("hot %v vs cold %v, want ≫", hot.Processed, cold.Processed)
	}
	if hot.WaitingInput > 1 {
		t.Errorf("hot instance waiting input %v, want saturated", hot.WaitingInput)
	}
	if cold.WaitingInput < 5 {
		t.Errorf("cold instance waiting %v, want mostly idle", cold.WaitingInput)
	}
	// Throughput capped by hot instance: 200/0.75 ≈ 267 < 300.
	if got := st.SourceObserved["src"]; got > 280 {
		t.Errorf("throughput with skew = %v, want < 280", got)
	}
}

// --- windows -------------------------------------------------------------

func TestWindowStashAndFire(t *testing.T) {
	g := mustGraph(t, "src", "win", "sink")
	e, err := New(g,
		map[string]OperatorSpec{
			"win":  {CostPerRecord: 0.002, Selectivity: 0.1, Window: &WindowSpec{Slide: 1, InsertFrac: 0.2}},
			"sink": {CostPerRecord: 1e-5},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(100)}},
		dataflow.Parallelism{"src": 1, "win": 1, "sink": 1},
		Config{Mode: ModeFlink})
	if err != nil {
		t.Fatal(err)
	}
	// Before the first fire: inserts only, no output.
	st := e.RunInterval(0.95)
	w := findWindow(t, st.Windows, "win", 0)
	if w.Processed < 80 {
		t.Errorf("pre-fire processed = %v", w.Processed)
	}
	if w.Pushed != 0 {
		t.Errorf("pre-fire pushed = %v, want 0", w.Pushed)
	}
	preRate := w.Processed / w.Useful() // insert-only: looks fast
	// Cross the fire boundary.
	st = e.RunInterval(0.2)
	w = findWindow(t, st.Windows, "win", 0)
	if w.Pushed < 5 {
		t.Errorf("post-fire pushed = %v, want ~10 (100 records × 0.1)", w.Pushed)
	}
	postRate := w.Processed / w.Useful()
	if postRate >= preRate {
		t.Errorf("processing rate did not drop on fire: pre %v post %v", preRate, postRate)
	}
}

func TestWindowFireCatchesUpAfterPause(t *testing.T) {
	g := mustGraph(t, "src", "win")
	e, err := New(g,
		map[string]OperatorSpec{"win": {CostPerRecord: 0.001, Selectivity: 0, Window: &WindowSpec{Slide: 0.5, InsertFrac: 0.5}}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(10)}},
		dataflow.Parallelism{"src": 1, "win": 1},
		Config{Mode: ModeFlink, RedeployDelay: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1)
	if err := e.Rescale(dataflow.Parallelism{"src": 1, "win": 2}); err != nil {
		t.Fatal(err)
	}
	e.Run(5) // pause spans several slide boundaries; must not wedge
	if e.Paused() {
		t.Fatal("still paused")
	}
	if got := e.Parallelism()["win"]; got != 2 {
		t.Errorf("win parallelism = %d", got)
	}
}

// --- rescaling ------------------------------------------------------------

func TestRescalePausesAndPreservesWork(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.01, Selectivity: 0}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(500)}},
		dataflow.Parallelism{"src": 1, "map": 1},
		Config{Mode: ModeFlink, QueueCapacity: 2000, RedeployDelay: 3})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10) // map saturates at 100/s; queue fills
	var before float64
	for _, inst := range e.ops[1].instances {
		before += inst.queue.count
	}
	if before < 1000 {
		t.Fatalf("expected standing queue, got %v", before)
	}
	e.Collect()
	if err := e.Rescale(dataflow.Parallelism{"src": 1, "map": 6}); err != nil {
		t.Fatal(err)
	}
	if !e.Paused() {
		t.Fatal("not paused after rescale")
	}
	// During the pause nothing is emitted.
	st := e.RunInterval(3)
	if st.SourceObserved["src"] > 1e-9 {
		t.Errorf("source emitted during redeploy: %v", st.SourceObserved["src"])
	}
	if e.Paused() {
		t.Fatal("still paused after delay")
	}
	var after float64
	for _, inst := range e.ops[1].instances {
		after += inst.queue.count
	}
	if math.Abs(after-before) > 1 {
		t.Errorf("queued work not preserved: %v -> %v", before, after)
	}
	if len(e.ops[1].instances) != 6 {
		t.Errorf("instances = %d, want 6", len(e.ops[1].instances))
	}
	// 6 instances (600/s) handle 500/s and drain the backlog at the
	// catch-up bound.
	e.RunInterval(30)
	st = e.RunInterval(10)
	if got := st.SourceObserved["src"]; math.Abs(got-500) > 10 {
		t.Errorf("post-rescale throughput = %v, want ~500", got)
	}
}

func TestRescaleErrors(t *testing.T) {
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.01}},
		map[string]SourceSpec{"src": {Rate: ConstantRate(1)}},
		dataflow.Parallelism{"src": 1, "map": 1},
		Config{Mode: ModeFlink, RedeployDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Rescale(dataflow.Parallelism{"src": 1}); err == nil {
		t.Error("invalid parallelism accepted")
	}
	if err := e.RescaleWorkers(4); err == nil {
		t.Error("RescaleWorkers accepted in Flink mode")
	}
	if err := e.Rescale(dataflow.Parallelism{"src": 1, "map": 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.Rescale(dataflow.Parallelism{"src": 1, "map": 3}); err == nil {
		t.Error("concurrent rescale accepted")
	}
}

// --- construction errors ---------------------------------------------------

func TestNewErrors(t *testing.T) {
	g := mustGraph(t, "src", "map")
	good := map[string]OperatorSpec{"map": {CostPerRecord: 0.01}}
	goodSrc := map[string]SourceSpec{"src": {Rate: ConstantRate(1)}}
	p := dataflow.Parallelism{"src": 1, "map": 1}

	if _, err := New(nil, good, goodSrc, p, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(g, nil, goodSrc, p, Config{}); err == nil {
		t.Error("missing op spec accepted")
	}
	if _, err := New(g, good, nil, p, Config{}); err == nil {
		t.Error("missing source spec accepted")
	}
	if _, err := New(g, good, map[string]SourceSpec{"src": {}}, p, Config{}); err == nil {
		t.Error("nil rate accepted")
	}
	if _, err := New(g, map[string]OperatorSpec{"map": {}}, goodSrc, p, Config{}); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := New(g, map[string]OperatorSpec{"map": {CostPerRecord: 1, SkewHot: 1.5}}, goodSrc, p, Config{}); err == nil {
		t.Error("bad skew accepted")
	}
	if _, err := New(g, map[string]OperatorSpec{"map": {CostPerRecord: 1, Window: &WindowSpec{}}}, goodSrc, p, Config{}); err == nil {
		t.Error("zero slide accepted")
	}
	if _, err := New(g, good, goodSrc, dataflow.Parallelism{"src": 1}, Config{}); err == nil {
		t.Error("bad parallelism accepted")
	}
}

// --- dynamic rates ----------------------------------------------------------

func TestStepRateAndBacklogCatchup(t *testing.T) {
	fn := StepRate(10, 200, 50)
	if fn(0) != 200 || fn(9.99) != 200 || fn(10) != 50 || fn(100) != 50 {
		t.Error("StepRate boundaries")
	}
	g := mustGraph(t, "src", "map")
	e, err := New(g,
		map[string]OperatorSpec{"map": {CostPerRecord: 0.001, Selectivity: 0}},
		map[string]SourceSpec{"src": {Rate: fn}},
		dataflow.Parallelism{"src": 1, "map": 1},
		Config{Mode: ModeFlink})
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunInterval(10)
	if math.Abs(st.SourceObserved["src"]-200) > 5 {
		t.Errorf("phase 1 rate = %v", st.SourceObserved["src"])
	}
	st = e.RunInterval(10)
	if math.Abs(st.SourceObserved["src"]-50) > 5 {
		t.Errorf("phase 2 rate = %v", st.SourceObserved["src"])
	}
}

// --- conservation property ---------------------------------------------------

func TestRecordConservation(t *testing.T) {
	g := mustGraph(t, "src", "a", "b")
	e, err := New(g,
		map[string]OperatorSpec{
			"a": {CostPerRecord: 0.004, Selectivity: 2},
			"b": {CostPerRecord: 0.001, Selectivity: 0},
		},
		map[string]SourceSpec{"src": {Rate: ConstantRate(300)}},
		dataflow.Parallelism{"src": 1, "a": 1, "b": 1},
		Config{Mode: ModeFlink, QueueCapacity: 700})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(20)
	// Emitted = processed by a + still queued at a.
	aProc, aQueue := 0.0, 0.0
	for _, inst := range e.ops[1].instances {
		aProc += inst.processed
		aQueue += inst.queue.count
	}
	if diff := math.Abs(e.ops[0].cumEmitted - (aProc + aQueue)); diff > 1e-6*e.ops[0].cumEmitted+1e-6 {
		t.Errorf("conservation at a: emitted %v vs %v", e.ops[0].cumEmitted, aProc+aQueue)
	}
	// a's output = b processed + b queued.
	aPushed, bProc, bQueue := 0.0, 0.0, 0.0
	for _, inst := range e.ops[1].instances {
		aPushed += inst.pushed
	}
	for _, inst := range e.ops[2].instances {
		bProc += inst.processed
		bQueue += inst.queue.count
	}
	if diff := math.Abs(aPushed - (bProc + bQueue)); diff > 1e-6*aPushed+1e-6 {
		t.Errorf("conservation at b: pushed %v vs %v", aPushed, bProc+bQueue)
	}
}
