package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ds2/internal/controlloop"
	"ds2/internal/obs"
	"ds2/internal/service"
)

// newObservedLoopback is newLoopback plus the base URL, for tests that
// hit observability endpoints directly.
func newObservedLoopback(t *testing.T, cfg service.ServerConfig) (*service.Server, *service.Client, string) {
	t.Helper()
	srv := service.NewServer(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return srv, service.NewClient(ts.URL, ts.Client()), ts.URL
}

func scrape(t *testing.T, url string) obs.Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content-type = %q, want %q", ct, obs.ContentType)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	return sc
}

// TestServiceMetricsEndpoint drives a real job through the service and
// asserts /metrics exposes every family the ds2d catalog promises,
// with values consistent with the run.
func TestServiceMetricsEndpoint(t *testing.T) {
	srv, client, url := newObservedLoopback(t, service.ServerConfig{})
	tr, err := service.NewSimulatedJob(client, heronEngine(t), wordcountSpec(service.AutoscalerDS2, 10), true).Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Decisions == 0 {
		t.Fatal("job made no decisions; metrics assertions would be vacuous")
	}

	sc := scrape(t, url)
	fams := make(map[string]bool)
	for _, f := range sc.Families() {
		fams[f] = true
	}
	for _, fam := range []string{
		"ds2d_http_requests_total",
		"ds2d_http_request_seconds",
		"ds2d_reports_total",
		"ds2d_windows_ingested_total",
		"ds2d_jobs",
		"ds2d_jobs_registered_total",
		"ds2d_uptime_seconds",
		"ds2d_snapshot_evictions_total",
		"ds2d_decisions_total",
		"ds2d_intervals_total",
	} {
		if !fams[fam] {
			t.Errorf("family %s missing from exposition", fam)
		}
	}

	var decided float64
	for _, s := range sc.Get("ds2d_decisions_total") {
		if s.Label("autoscaler") != service.AutoscalerDS2 {
			t.Errorf("decision counted under autoscaler=%q", s.Label("autoscaler"))
		}
		decided += s.Value
	}
	if decided != float64(tr.Decisions) {
		t.Errorf("ds2d_decisions_total sums to %v, trace has %d decisions", decided, tr.Decisions)
	}

	// Every sample of the report counter must carry an outcome label,
	// and the accepted series must have seen the job's reports.
	var accepted float64
	for _, s := range sc.Get("ds2d_reports_total") {
		if s.Label("outcome") == "" {
			t.Errorf("ds2d_reports_total sample without outcome label")
		}
		if s.Label("outcome") == "accepted" {
			accepted = s.Value
		}
	}
	if accepted == 0 {
		t.Error("no accepted reports counted")
	}

	// The HTTP middleware labels by route pattern, never raw path.
	sawMetricsRoute := false
	for _, s := range sc.Get("ds2d_http_requests_total") {
		route := s.Label("route")
		if strings.Contains(route, "job-") {
			t.Errorf("raw path leaked into route label: %q", route)
		}
		if route == "POST /jobs/{id}/metrics" {
			sawMetricsRoute = true
		}
	}
	if !sawMetricsRoute {
		t.Error("no ds2d_http_requests_total series for POST /jobs/{id}/metrics")
	}

	_ = srv
}

// TestHealthzReadiness pins both the legacy contract (200, "status",
// "jobs") and the readiness additions.
func TestHealthzReadiness(t *testing.T) {
	_, client, url := newObservedLoopback(t, service.ServerConfig{})
	if _, err := client.Register(wordcountSpec(service.AutoscalerDS2, 1000)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	var body struct {
		Status    string         `json:"status"`
		Jobs      int            `json:"jobs"`
		Uptime    float64        `json:"uptime_seconds"`
		JobStates map[string]int `json:"job_states"`
		GoVersion string         `json:"go_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Jobs != 1 {
		t.Errorf("status=%q jobs=%d, want ok/1", body.Status, body.Jobs)
	}
	if body.Uptime < 0 {
		t.Errorf("uptime %v", body.Uptime)
	}
	if body.JobStates["running"] != 1 {
		t.Errorf("job_states = %v, want 1 running", body.JobStates)
	}
	if body.GoVersion == "" {
		t.Error("go_version missing from readiness payload")
	}
}

// TestDecisionsEndpoint pins the audit trace: every decision the job
// made is retained with its rates and an acked outcome (SimulatedJob
// acks each action), seqs are consecutive, and ?n= trims.
func TestDecisionsEndpoint(t *testing.T) {
	srv, client, url := newObservedLoopback(t, service.ServerConfig{})
	tr, err := service.NewSimulatedJob(client, heronEngine(t), wordcountSpec(service.AutoscalerDS2, 10), true).Run()
	if err != nil {
		t.Fatal(err)
	}
	id := srv.Jobs()[0].ID

	get := func(path string) (total int, ds []controlloop.Decision) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		var body struct {
			Total     int                    `json:"total"`
			Decisions []controlloop.Decision `json:"decisions"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Total, body.Decisions
	}

	total, ds := get("/jobs/" + id + "/decisions")
	if total != tr.Decisions || len(ds) != tr.Decisions {
		t.Fatalf("decisions total=%d len=%d, trace has %d", total, len(ds), tr.Decisions)
	}
	for i, d := range ds {
		if d.Seq != i+1 {
			t.Errorf("decision %d has seq %d", i, d.Seq)
		}
		if d.Outcome != controlloop.OutcomeAcked {
			t.Errorf("decision %d outcome %q, want acked", i, d.Outcome)
		}
		if d.Target <= 0 || len(d.New) == 0 {
			t.Errorf("decision %d missing rates or target config: %+v", i, d)
		}
	}
	if _, trimmed := get("/jobs/" + id + "/decisions?n=1"); len(trimmed) != 1 || trimmed[0].Seq != total {
		t.Errorf("?n=1 returned %+v, want just seq %d", trimmed, total)
	}

	if _, err := http.Get(url + "/jobs/nope/decisions"); err != nil {
		t.Fatal(err)
	}
}

// TestPprofGated: profiling endpoints must be absent by default and
// present when opted in.
func TestPprofGated(t *testing.T) {
	_, _, off := newObservedLoopback(t, service.ServerConfig{})
	resp, err := http.Get(off + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable without opt-in: %d", resp.StatusCode)
	}

	_, _, on := newObservedLoopback(t, service.ServerConfig{EnablePprof: true})
	resp, err = http.Get(on + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof opt-in not mounted: %d", resp.StatusCode)
	}
}
