package service

import (
	"errors"
	"fmt"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/dataflow"
)

// AttachedEngine is the engine side of Fig. 5 for a locally running
// job of any kind: something that can report one policy interval of
// instrumentation and execute a rescale. internal/streamrt's Runtime
// implements it for the live dataflow runtime; a real Flink/Heron
// integration would implement it against savepoints and the engine's
// metrics.
//
// The contract assumes settling redeployments: Rescale returns once
// the restart is complete with the configuration actually deployed,
// and the next NextReport covers a clean post-restart window. Engines
// with slow, non-settling restarts should instead report Busy spans
// through the Report they return.
type AttachedEngine interface {
	// NextReport blocks for one policy interval of job time and
	// returns its instrumentation report. It returns an error when the
	// job is gone.
	NextReport(intervalSec float64) (Report, error)
	// Rescale deploys the configuration (savepoint -> restore) and
	// returns what was actually deployed.
	Rescale(p dataflow.Parallelism) (dataflow.Parallelism, error)
}

// SavepointEngine is the optional AttachedEngine extension for engines
// that can cut durable checkpoints. Savepoint drains the job, persists
// its state and source positions, restarts it, and returns where the
// savepoint landed (a file path or store-specific name). The attached
// driver calls it when the service parks a savepoint request; engines
// without it settle such requests with an error instead of stalling
// them forever.
type SavepointEngine interface {
	Savepoint() (path string, err error)
}

// AttachedJob registers a local engine with a ds2d scaling service and
// plays the report/poll/ack cycle against it — the generalization of
// SimulatedJob to any AttachedEngine. To the server, an attached live
// job and a simulated one are indistinguishable.
type AttachedJob struct {
	// PollWait bounds each action long-poll (default 10 s).
	PollWait time.Duration
	// ID is the assigned job id, set by Run immediately after
	// registration. Pre-setting it makes Run drive an
	// already-registered job instead of registering a new one.
	ID string

	client *Client
	eng    AttachedEngine
	spec   JobSpec
}

// NewAttachedJob wires an engine to a scaling service client.
func NewAttachedJob(c *Client, eng AttachedEngine, spec JobSpec) *AttachedJob {
	return &AttachedJob{client: c, eng: eng, spec: spec}
}

// Run registers the job and drives it until the service finishes the
// decision loop, returning the service-side trace.
func (a *AttachedJob) Run() (controlloop.Trace, error) {
	pollWait := a.PollWait
	if pollWait <= 0 {
		pollWait = 10 * time.Second
	}
	id := a.ID
	if id == "" {
		var err error
		if id, err = a.client.Register(a.spec); err != nil {
			return controlloop.Trace{}, err
		}
		a.ID = id
	}

	var lastSeq, lastSpSeq, reported int
	// Bounded defensively: the service finishes after MaxIntervals
	// reports at the latest.
	for cycle := 0; cycle < a.spec.MaxIntervals+16; cycle++ {
		rep, err := a.eng.NextReport(a.spec.IntervalSec)
		if err != nil {
			if errors.Is(err, controlloop.ErrStopped) {
				// The engine side went away cleanly (e.g. the live job
				// was stopped); the service-side trace is still the
				// run's record.
				break
			}
			return controlloop.Trace{}, err
		}
		state, err := a.client.Report(id, rep)
		if err != nil {
			return controlloop.Trace{}, err
		}
		if state != StateRunning {
			break
		}
		reported++

		dec, err := a.client.PollAction(id, reported-1, pollWait)
		if err != nil {
			return controlloop.Trace{}, err
		}
		if act := dec.Action; act != nil && act.Seq != lastSeq {
			lastSeq = act.Seq
			applied, err := a.eng.Rescale(act.New)
			if err != nil {
				if errors.Is(err, controlloop.ErrStopped) {
					break // same clean end as on the report path
				}
				return controlloop.Trace{}, fmt.Errorf("service: applying action %d: %w", act.Seq, err)
			}
			if err := a.client.Ack(id, act.Seq, applied); err != nil {
				return controlloop.Trace{}, err
			}
		}
		if seq := dec.SavepointSeq; seq != 0 && seq != lastSpSeq {
			lastSpSeq = seq
			var path string
			spErr := errors.New("service: engine does not support savepoints")
			if se, ok := a.eng.(SavepointEngine); ok {
				path, spErr = se.Savepoint()
				if spErr != nil && errors.Is(spErr, controlloop.ErrStopped) {
					break // clean end, like the report and rescale paths
				}
			}
			if err := a.client.SavepointDone(id, seq, path, spErr); err != nil {
				return controlloop.Trace{}, err
			}
		}
		if dec.State != StateRunning {
			break
		}
	}
	return a.client.Trace(id)
}
