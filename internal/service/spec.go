// Package service turns the scaling manager into the long-running
// network service of the paper's deployment architecture (Fig. 5, §4):
// a daemon (cmd/ds2d) that sits beside running streaming jobs, ingests
// their per-window instrumentation over HTTP, evaluates the chosen
// autoscaling policy once per policy interval, and surfaces rescale
// commands back to the engine through a poll/ack pair that mirrors the
// savepoint-and-restore redeployment cycle.
//
// The package hosts three roles:
//
//   - Server: the daemon side. A job registry (POST /jobs with a
//     JobSpec), a metrics ingestion API (POST /jobs/{id}/metrics with
//     Report batches into a bounded, concurrency-safe
//     metrics.Repository per job), and one decision loop per job — the
//     same controlloop.Controller the in-process experiments use,
//     driven over a RemoteRuntime that spans the network boundary.
//   - Client: a thin Go client for every endpoint.
//   - SimulatedJob: a harness that runs the streaming-engine simulator
//     as a remote job over HTTP loopback, proving (and pinning, in
//     tests) that the service code path takes the same decisions as
//     the in-process loop.
package service

import (
	"fmt"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/dhalion"
	"ds2/internal/queueing"
)

// Autoscaler names accepted in a JobSpec.
const (
	AutoscalerDS2      = "ds2"
	AutoscalerDhalion  = "dhalion"
	AutoscalerQueueing = "queueing"
	AutoscalerHold     = "hold"
)

// JobOperator declares one vertex of a registered job's logical graph.
type JobOperator struct {
	Name string `json:"name"`
	// NonScalable pins the operator's parallelism (paper §3.3).
	NonScalable bool `json:"non_scalable,omitempty"`
}

// ManagerConfig is the wire form of the DS2 scaling manager's
// operational knobs (core.ManagerConfig, §4.2.1–4.2.2).
type ManagerConfig struct {
	WarmupIntervals       int     `json:"warmup_intervals,omitempty"`
	ActivationIntervals   int     `json:"activation_intervals,omitempty"`
	Aggregation           string  `json:"aggregation,omitempty"` // last|max|median
	TargetRateRatio       float64 `json:"target_rate_ratio,omitempty"`
	MaxBoost              float64 `json:"max_boost,omitempty"`
	MinChange             int     `json:"min_change,omitempty"`
	MaxDecisions          int     `json:"max_decisions,omitempty"`
	RollbackOnDegradation bool    `json:"rollback_on_degradation,omitempty"`
	DegradationTolerance  float64 `json:"degradation_tolerance,omitempty"`
}

func (c ManagerConfig) core() (core.ManagerConfig, error) {
	out := core.ManagerConfig{
		WarmupIntervals:       c.WarmupIntervals,
		ActivationIntervals:   c.ActivationIntervals,
		TargetRateRatio:       c.TargetRateRatio,
		MaxBoost:              c.MaxBoost,
		MinChange:             c.MinChange,
		MaxDecisions:          c.MaxDecisions,
		RollbackOnDegradation: c.RollbackOnDegradation,
		DegradationTolerance:  c.DegradationTolerance,
	}
	switch c.Aggregation {
	case "", "last":
		out.Aggregation = core.AggLast
	case "max":
		out.Aggregation = core.AggMax
	case "median":
		out.Aggregation = core.AggMedian
	default:
		return out, fmt.Errorf("service: unknown aggregation %q (want last|max|median)", c.Aggregation)
	}
	return out, out.Validate()
}

// DhalionConfig is the wire form of dhalion.Config.
type DhalionConfig struct {
	MaxFactor          float64 `json:"max_factor,omitempty"`
	StabilizeIntervals int     `json:"stabilize_intervals,omitempty"`
	QuietIntervals     int     `json:"quiet_intervals,omitempty"`
	MaxParallelism     int     `json:"max_parallelism,omitempty"`
}

// QueueingConfig is the wire form of queueing.Config.
type QueueingConfig struct {
	LatencySLO     float64 `json:"latency_slo,omitempty"`
	Headroom       float64 `json:"headroom,omitempty"`
	MaxParallelism int     `json:"max_parallelism,omitempty"`
}

// JobSpec registers one streaming job with the scaling service: its
// logical graph, the deployed parallelism, which autoscaler decides,
// and the decision-loop schedule. The job itself runs elsewhere — it
// only reports instrumentation (Report) and polls for actions.
type JobSpec struct {
	// Name is a human-readable label, informational only.
	Name string `json:"name,omitempty"`
	// Operators and Edges define the logical dataflow graph.
	Operators []JobOperator `json:"operators"`
	Edges     [][2]string   `json:"edges"`
	// Initial is the currently deployed configuration.
	Initial dataflow.Parallelism `json:"initial"`
	// Autoscaler selects the decision maker: ds2 (default), dhalion,
	// queueing, or hold.
	Autoscaler string `json:"autoscaler,omitempty"`

	// IntervalSec is the policy interval in seconds of job time: a
	// decision fires once ingested reports cover this much of the
	// job's clock.
	IntervalSec float64 `json:"interval_sec"`
	// MaxIntervals bounds the decision loop; the job finishes after
	// this many intervals.
	MaxIntervals int `json:"max_intervals"`
	// StableIntervals, when > 0, finishes the job after this many
	// consecutive quiet intervals (§5.4 stability criterion).
	StableIntervals int `json:"stable_intervals,omitempty"`

	// MaxParallelism caps per-operator decisions (0 = uncapped).
	// Applies to the ds2 policy; dhalion/queueing carry their own cap.
	MaxParallelism int `json:"max_parallelism,omitempty"`
	// Manager tunes the DS2 scaling manager (ds2 autoscaler only).
	Manager *ManagerConfig `json:"manager,omitempty"`
	// Dhalion tunes the Dhalion controller (dhalion autoscaler only).
	Dhalion *DhalionConfig `json:"dhalion,omitempty"`
	// Queueing tunes the queueing controller (queueing only).
	Queueing *QueueingConfig `json:"queueing,omitempty"`
}

// buildGraph validates the spec's topology and returns the frozen
// graph.
func (s JobSpec) buildGraph() (*dataflow.Graph, error) {
	if len(s.Operators) == 0 {
		return nil, fmt.Errorf("service: job spec has no operators")
	}
	b := dataflow.NewBuilder()
	for _, op := range s.Operators {
		if op.NonScalable {
			b.AddNonScalableOperator(op.Name)
		} else {
			b.AddOperator(op.Name)
		}
	}
	for _, e := range s.Edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// build materializes the spec: the frozen graph, the chosen autoscaler
// wired to it, and the loop config (including any convergence
// predicate the autoscaler provides).
func (s JobSpec) build() (*dataflow.Graph, controlloop.Autoscaler, controlloop.Config, error) {
	fail := func(err error) (*dataflow.Graph, controlloop.Autoscaler, controlloop.Config, error) {
		return nil, nil, controlloop.Config{}, err
	}
	g, err := s.buildGraph()
	if err != nil {
		return fail(err)
	}
	if err := s.Initial.Validate(g); err != nil {
		return fail(fmt.Errorf("service: initial parallelism: %w", err))
	}
	if s.IntervalSec <= 0 {
		return fail(fmt.Errorf("service: interval_sec %v <= 0", s.IntervalSec))
	}
	if s.MaxIntervals <= 0 {
		return fail(fmt.Errorf("service: max_intervals %d <= 0", s.MaxIntervals))
	}

	var as controlloop.Autoscaler
	var done func() bool
	switch s.Autoscaler {
	case "", AutoscalerDS2:
		pol, err := core.NewPolicy(g, core.PolicyConfig{MaxParallelism: s.MaxParallelism})
		if err != nil {
			return fail(err)
		}
		var mc core.ManagerConfig
		if s.Manager != nil {
			if mc, err = s.Manager.core(); err != nil {
				return fail(err)
			}
		}
		mgr, err := core.NewManager(pol, s.Initial, mc)
		if err != nil {
			return fail(err)
		}
		as = controlloop.DS2Autoscaler(mgr)
	case AutoscalerDhalion:
		var dc dhalion.Config
		if s.Dhalion != nil {
			dc = dhalion.Config{
				MaxFactor:          s.Dhalion.MaxFactor,
				StabilizeIntervals: s.Dhalion.StabilizeIntervals,
				QuietIntervals:     s.Dhalion.QuietIntervals,
				MaxParallelism:     s.Dhalion.MaxParallelism,
			}
		}
		ctrl, err := dhalion.New(g, dc)
		if err != nil {
			return fail(err)
		}
		as = dhalion.Autoscaler(ctrl)
		done = ctrl.Converged
	case AutoscalerQueueing:
		var qc queueing.Config
		if s.Queueing != nil {
			qc = queueing.Config{
				LatencySLO:     s.Queueing.LatencySLO,
				Headroom:       s.Queueing.Headroom,
				MaxParallelism: s.Queueing.MaxParallelism,
			}
		}
		ctrl, err := queueing.New(g, qc)
		if err != nil {
			return fail(err)
		}
		as = queueing.Autoscaler(ctrl)
	case AutoscalerHold:
		as = controlloop.Hold()
	default:
		return fail(fmt.Errorf("service: unknown autoscaler %q (want ds2|dhalion|queueing|hold)", s.Autoscaler))
	}

	cfg := controlloop.Config{
		Interval:        s.IntervalSec,
		MaxIntervals:    s.MaxIntervals,
		StableIntervals: s.StableIntervals,
		Done:            done,
	}
	return g, as, cfg, nil
}

// Interval returns the policy interval as a wall-clock duration.
func (s JobSpec) Interval() time.Duration {
	return time.Duration(s.IntervalSec * float64(time.Second))
}
