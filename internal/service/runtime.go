package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
	"ds2/internal/metrics"
	"ds2/internal/obs"
)

// Report is one instrumentation delivery from a running job instance
// (or its metrics sidecar) to the scaling service: the per-instance
// windows of §4.1 plus the coarse external signals rule-based
// controllers consume, covering the job-time span [Start, End).
// Reports may be finer-grained than the policy interval; the service
// merges them until one interval's worth of coverage has arrived.
type Report struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Busy marks a span the job spent (at least partly) redeploying;
	// its windows are polluted and no decision will consume them.
	Busy bool `json:"busy,omitempty"`
	// Windows are the per-instance instrumentation windows.
	Windows []metrics.WindowMetrics `json:"windows,omitempty"`
	// TargetRates is the target rate per source at End.
	TargetRates map[string]float64 `json:"target_rates,omitempty"`
	// SourceObserved is the achieved output rate per source.
	SourceObserved map[string]float64 `json:"source_observed,omitempty"`
	// Backpressured and BackpressureFraction are the Dhalion signals.
	Backpressured        []string           `json:"backpressured,omitempty"`
	BackpressureFraction map[string]float64 `json:"backpressure_fraction,omitempty"`
	// Parallelism and Workers snapshot the deployment the span ran
	// under.
	Parallelism dataflow.Parallelism `json:"parallelism,omitempty"`
	Workers     int                  `json:"workers,omitempty"`
	// Latencies and EpochLatencies feed the trace's quantile columns.
	Latencies      []metrics.LatencySample `json:"latencies,omitempty"`
	EpochLatencies []engine.EpochLatency   `json:"epoch_latencies,omitempty"`
	// Rescales carries the engine's retained rescale span timelines,
	// oldest first. The service merges them into the job's record by
	// trace ID — a timeline first delivered incomplete (its trailing
	// first_record span pending) is replaced once a later report
	// carries the finished version. Served by GET /jobs/{id}/rescales.
	Rescales []obs.TraceView `json:"rescales,omitempty"`
}

// Span returns the job-time coverage of the report.
func (r Report) Span() float64 { return r.End - r.Start }

// Validate checks the report's structural invariants against the job's
// graph.
func (r Report) Validate(g *dataflow.Graph) error {
	if !(r.End > r.Start) {
		return fmt.Errorf("service: report span [%v, %v) is empty", r.Start, r.End)
	}
	for _, w := range r.Windows {
		if _, ok := g.Lookup(w.ID.Operator); !ok {
			return fmt.Errorf("service: report window for unknown operator %q", w.ID.Operator)
		}
		if err := w.Validate(); err != nil {
			return err
		}
	}
	for src := range r.TargetRates {
		op, ok := g.Lookup(src)
		if !ok || op.Role != dataflow.RoleSource {
			return fmt.Errorf("service: target rate for non-source %q", src)
		}
	}
	if r.Parallelism != nil {
		if err := r.Parallelism.Validate(g); err != nil {
			return err
		}
	}
	return nil
}

// ReportFromStats converts one simulator interval into a Report — the
// bridge SimulatedJob (and any simulator-backed integration test) uses
// to speak the service's ingestion format.
func ReportFromStats(st engine.IntervalStats, busy bool) Report {
	return Report{
		Start:                st.Start,
		End:                  st.End,
		Busy:                 busy,
		Windows:              st.Windows,
		TargetRates:          st.TargetRates,
		SourceObserved:       st.SourceObserved,
		Backpressured:        st.Backpressured,
		BackpressureFraction: st.BackpressureFraction,
		Parallelism:          st.Parallelism,
		Workers:              st.Workers,
		Latencies:            st.Latencies,
		EpochLatencies:       st.EpochLatencies,
	}
}

// ActionEnvelope is a scaling command in flight between the service
// and the engine: the paper's "rescale via the engine's API" edge of
// Fig. 5. Seq orders actions within one job; the engine acknowledges
// completion of the savepoint-and-restore cycle with the same Seq.
type ActionEnvelope struct {
	Seq    int                  `json:"seq"`
	Kind   string               `json:"kind"` // rescale|rollback
	New    dataflow.Parallelism `json:"new"`
	Old    dataflow.Parallelism `json:"old,omitempty"`
	Reason string               `json:"reason,omitempty"`
}

// ErrBacklogged is returned by Ingest when the job's report buffer is
// full — the decision loop has fallen behind the reporters and the
// caller should retry after backing off.
var ErrBacklogged = errors.New("service: report buffer full")

// ErrStaleAck is returned by Ack when the sequence number does not
// match the pending action (already acked, superseded, or never
// issued) — a state conflict, as opposed to a malformed request.
var ErrStaleAck = errors.New("service: ack does not match pending action")

// RemoteRuntime implements controlloop.Runtime across the network
// boundary: the Controller that drives it lives in the scaling
// service, while the job it "advances" runs elsewhere and communicates
// only through Ingest (metrics in) and WaitDecision/Ack (actions out).
//
//   - Advance blocks until ingested reports cover one policy interval
//     of job time, then merges them into a single Observation. This is
//     the loop's real wall-clock pacing: the remote job's reporting
//     cadence, not a timer, paces decisions.
//   - Apply does not rescale anything itself — it parks the action in
//     a mailbox for the engine to poll, and every subsequent interval
//     is observed Busy until the engine acks the redeployment,
//     mirroring a savepoint-and-restore cycle that spans metric
//     intervals (Heron in §5.2). An engine that settles the restart
//     synchronously acks before its next report and never produces a
//     Busy interval, matching the Flink-style integration.
//
// Each non-busy interval's aggregated snapshot is published to the
// job's bounded metrics.Repository — the metrics repository of Fig. 5,
// which the HTTP API exposes for observability.
type RemoteRuntime struct {
	graph *dataflow.Graph
	repo  *metrics.Repository

	mu sync.Mutex
	// notify is closed and replaced on every state change — a
	// broadcast that, unlike sync.Cond, cannot lose a wakeup to a
	// timer racing the wait (receivers capture the channel under mu;
	// a generation closed before they select is ready immediately).
	notify chan struct{}

	closed bool
	// queue holds ingested, not-yet-consumed reports; queued is their
	// total job-time coverage. maxQueue bounds the buffer. watermark
	// is the highest job time ingested so far: reports must move
	// forward (gaps are fine — a settling redeployment discards job
	// time — but overlaps would double-count windows, e.g. a reporter
	// retrying a delivery whose response got lost).
	queue     []Report
	queued    float64
	maxQueue  int
	watermark float64

	cur     dataflow.Parallelism
	workers int

	pending   *ActionEnvelope // unacked action, nil when idle
	seq       int             // last issued action sequence number
	intervals int             // policy intervals fully decided so far

	// spPending is the unacknowledged savepoint request the engine is
	// expected to execute (0 when none); spSeq numbers requests. A
	// savepoint is a pure engine-side operation — unlike a rescale it
	// does not make intervals Busy: the engine's drain/restore shows up
	// in the instrumentation it reports, not as a service-side state.
	spPending int
	spSeq     int
}

// NewRemoteRuntime creates the runtime for one registered job.
// maxQueue bounds the ingestion buffer (reports, not windows);
// values < 1 default to 64. repo receives one aggregated snapshot per
// non-busy interval; it may be nil.
func NewRemoteRuntime(g *dataflow.Graph, initial dataflow.Parallelism, repo *metrics.Repository, maxQueue int) *RemoteRuntime {
	if maxQueue < 1 {
		maxQueue = 64
	}
	return &RemoteRuntime{
		graph:    g,
		repo:     repo,
		maxQueue: maxQueue,
		cur:      initial.Clone(),
		notify:   make(chan struct{}),
	}
}

// signalLocked wakes every current waiter. Callers hold r.mu.
func (r *RemoteRuntime) signalLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// Ingest accepts one report into the buffer. It returns ErrBacklogged
// when the buffer is full and ErrStopped when the job was shut down.
func (r *RemoteRuntime) Ingest(rep Report) error {
	if err := rep.Validate(r.graph); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return controlloop.ErrStopped
	}
	if len(r.queue) >= r.maxQueue {
		return ErrBacklogged
	}
	// Tolerance scaled to the span absorbs float noise on boundaries
	// without letting a retried duplicate slip through.
	if rep.Start < r.watermark-rep.Span()*1e-9 {
		return fmt.Errorf("service: report [%v, %v) overlaps already-ingested job time (watermark %v): duplicate or out-of-order delivery",
			rep.Start, rep.End, r.watermark)
	}
	r.watermark = rep.End
	r.queue = append(r.queue, rep)
	r.queued += rep.Span()
	r.signalLocked()
	return nil
}

// Advance blocks until the buffered reports cover d seconds of job
// time (or the runtime is closed), consumes them, and merges them into
// one Observation.
func (r *RemoteRuntime) Advance(d float64) (controlloop.Observation, error) {
	// Tolerate float noise in report spans: a report covering
	// 59.999999996 s satisfies a 60 s interval.
	need := d * (1 - 1e-9)
	r.mu.Lock()
	for r.queued < need && !r.closed {
		ch := r.notify
		r.mu.Unlock()
		<-ch
		r.mu.Lock()
	}
	if r.queued < need {
		r.mu.Unlock()
		return controlloop.Observation{}, controlloop.ErrStopped
	}
	var taken []Report
	covered := 0.0
	// The length guard protects against float drift between the
	// incremental r.queued accumulator and the true sum of spans: an
	// unguarded r.queue[0] here would panic the job's decision-loop
	// goroutine — and with it the whole daemon.
	for covered < need && len(r.queue) > 0 {
		rep := r.queue[0]
		r.queue = r.queue[1:]
		covered += rep.Span()
		taken = append(taken, rep)
	}
	r.queued -= covered
	if len(r.queue) == 0 {
		// Resync the accumulator whenever the buffer drains so drift
		// cannot build up over a long-running job.
		r.queued = 0
	} else if r.queued < 0 {
		r.queued = 0
	}
	busyAction := r.pending != nil
	cur := r.cur.Clone()
	workers := r.workers
	r.mu.Unlock()

	obs, err := mergeReports(taken, cur, workers)
	if err != nil {
		return controlloop.Observation{}, err
	}
	// An interval is busy while the engine still owes an ack for an
	// issued action — the job is mid-redeployment from the service's
	// point of view even if individual reports did not flag it.
	obs.Busy = obs.Busy || busyAction
	if !obs.Busy && len(taken) > 0 {
		windows, err := mergedWindows(taken)
		if err != nil {
			return controlloop.Observation{}, err
		}
		snap, err := metrics.BuildSnapshot(obs.End, windows, obs.TargetRates)
		if err != nil {
			return controlloop.Observation{}, err
		}
		if r.repo != nil {
			r.repo.Publish(snap)
		}
		obs.SnapshotFn = func() (metrics.Snapshot, error) { return snap, nil }
	}
	return obs, nil
}

// mergedWindows folds the taken reports' windows into one window per
// instance.
func mergedWindows(taken []Report) ([]metrics.WindowMetrics, error) {
	var all []metrics.WindowMetrics
	for _, rep := range taken {
		all = append(all, rep.Windows...)
	}
	return metrics.MergeByInstance(all)
}

// mergeReports combines consecutive reports into one Observation
// covering their union: last-value semantics for deployment state and
// target rates, time-weighted means for rates and signal fractions,
// concatenation for latency samples.
func mergeReports(taken []Report, cur dataflow.Parallelism, workers int) (controlloop.Observation, error) {
	if len(taken) == 0 {
		return controlloop.Observation{}, errors.New("service: no reports to merge")
	}
	last := taken[len(taken)-1]
	obs := controlloop.Observation{
		Start:       taken[0].Start,
		End:         last.End,
		TargetRates: last.TargetRates,
		Parallelism: cur,
		Workers:     workers,
	}
	if last.Parallelism != nil {
		obs.Parallelism = last.Parallelism.Clone()
	}
	if last.Workers > 0 {
		obs.Workers = last.Workers
	}

	if len(taken) == 1 {
		// The common case — one report per policy interval — passes
		// signal values through bit-exact instead of taking the
		// weighted mean (whose multiply-then-divide round trip is not
		// an identity in floating point). Decision parity with the
		// in-process loop depends on this.
		one := taken[0]
		obs.Busy = one.Busy
		obs.SourceObserved = one.SourceObserved
		obs.BackpressureFraction = one.BackpressureFraction
		obs.Backpressured = one.Backpressured
		obs.Latencies = one.Latencies
		obs.EpochLatencies = one.EpochLatencies
		return obs, nil
	}

	total := 0.0
	srcObs := make(map[string]float64)
	bpFrac := make(map[string]float64)
	bpSet := make(map[string]bool)
	for _, rep := range taken {
		span := rep.Span()
		total += span
		obs.Busy = obs.Busy || rep.Busy
		for s, v := range rep.SourceObserved {
			srcObs[s] += v * span
		}
		for op, f := range rep.BackpressureFraction {
			bpFrac[op] += f * span
		}
		for _, op := range rep.Backpressured {
			bpSet[op] = true
		}
		obs.Latencies = append(obs.Latencies, rep.Latencies...)
		obs.EpochLatencies = append(obs.EpochLatencies, rep.EpochLatencies...)
	}
	if total > 0 {
		if len(srcObs) > 0 {
			obs.SourceObserved = make(map[string]float64, len(srcObs))
			for s, v := range srcObs {
				obs.SourceObserved[s] = v / total
			}
		}
		if len(bpFrac) > 0 {
			obs.BackpressureFraction = make(map[string]float64, len(bpFrac))
			for op, v := range bpFrac {
				obs.BackpressureFraction[op] = v / total
			}
		}
	}
	for op := range bpSet {
		obs.Backpressured = append(obs.Backpressured, op)
	}
	sort.Strings(obs.Backpressured)
	return obs, nil
}

// Apply parks the action in the mailbox for the engine to poll. The
// runtime reports Busy intervals until the engine acks.
func (r *RemoteRuntime) Apply(act *core.Action) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return controlloop.ErrStopped
	}
	r.seq++
	r.pending = &ActionEnvelope{
		Seq:    r.seq,
		Kind:   act.Kind.String(),
		New:    act.New.Clone(),
		Old:    act.Old.Clone(),
		Reason: act.Reason,
	}
	r.signalLocked()
	return nil
}

// Parallelism returns the configuration the service believes is
// deployed: the initial spec until the first ack, then whatever the
// engine last acked.
func (r *RemoteRuntime) Parallelism() dataflow.Parallelism {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur.Clone()
}

// NoteInterval records that the decision loop finished one interval
// (observe + apply), waking long-pollers. The server's OnInterval hook
// calls it, making WaitDecision's "the service has decided on
// everything you reported" contract precise.
func (r *RemoteRuntime) NoteInterval() {
	r.mu.Lock()
	r.intervals++
	r.signalLocked()
	r.mu.Unlock()
}

// Intervals returns the number of fully decided policy intervals.
func (r *RemoteRuntime) Intervals() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.intervals
}

// WaitDecision long-polls for the engine: it returns as soon as an
// action or a savepoint request is pending or the decision loop has
// completed more intervals than the caller has seen, and otherwise
// after the timeout. It returns the pending action (nil if none) and
// the decided-interval count; the poll handler reads the pending
// savepoint separately.
func (r *RemoteRuntime) WaitDecision(seen int, timeout time.Duration) (*ActionEnvelope, int) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()

	r.mu.Lock()
	for r.pending == nil && r.spPending == 0 && r.intervals <= seen && !r.closed {
		ch := r.notify
		r.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			r.mu.Lock()
			act, n := r.pendingLocked(), r.intervals
			r.mu.Unlock()
			return act, n
		}
		r.mu.Lock()
	}
	act, n := r.pendingLocked(), r.intervals
	r.mu.Unlock()
	return act, n
}

// Pending returns the unacked action, if any, without waiting.
func (r *RemoteRuntime) Pending() *ActionEnvelope {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pendingLocked()
}

func (r *RemoteRuntime) pendingLocked() *ActionEnvelope {
	if r.pending == nil {
		return nil
	}
	cp := *r.pending
	cp.New = cp.New.Clone()
	cp.Old = cp.Old.Clone()
	return &cp
}

// RequestSavepoint parks a savepoint request for the engine to poll —
// the durable-checkpoint counterpart of Apply's rescale mailbox. One
// request is in flight at a time: asking again while one is pending
// returns the pending sequence number rather than queueing a second.
func (r *RemoteRuntime) RequestSavepoint() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, controlloop.ErrStopped
	}
	if r.spPending != 0 {
		return r.spPending, nil
	}
	r.spSeq++
	r.spPending = r.spSeq
	r.signalLocked()
	return r.spPending, nil
}

// PendingSavepoint returns the unacknowledged savepoint request's
// sequence number, or 0.
func (r *RemoteRuntime) PendingSavepoint() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spPending
}

// AckSavepoint settles a savepoint request (whether the engine
// succeeded or failed — the outcome is the server's record, not the
// runtime's). A stale or unknown seq is rejected.
func (r *RemoteRuntime) AckSavepoint(seq int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spPending == 0 || r.spPending != seq {
		return fmt.Errorf("%w: savepoint seq %d", ErrStaleAck, seq)
	}
	r.spPending = 0
	r.signalLocked()
	return nil
}

// Ack reports that the engine completed the redeployment for the
// action with the given sequence number. applied is the configuration
// the engine actually deployed; nil means the action's target. A stale
// or unknown seq is rejected.
func (r *RemoteRuntime) Ack(seq int, applied dataflow.Parallelism) error {
	if applied != nil {
		if err := applied.Validate(r.graph); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending == nil || r.pending.Seq != seq {
		return fmt.Errorf("%w: seq %d", ErrStaleAck, seq)
	}
	if applied != nil {
		r.cur = applied.Clone()
	} else {
		r.cur = r.pending.New.Clone()
	}
	r.pending = nil
	r.signalLocked()
	return nil
}

// Close shuts the runtime down: Advance returns ErrStopped once the
// buffer cannot satisfy another interval, Ingest rejects new reports,
// and pollers wake.
func (r *RemoteRuntime) Close() {
	r.mu.Lock()
	r.closed = true
	r.signalLocked()
	r.mu.Unlock()
}
