package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// raceGraph builds the three-stage wordcount topology used by the
// concurrency pins.
func raceGraph(t *testing.T) *dataflow.Graph {
	t.Helper()
	g, err := dataflow.Linear("source", "flatmap", "count")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestConcurrentAcksSingleWinner pins that a decision in flight can be
// applied exactly once: many engines (or one engine retrying) racing
// to ack the same sequence number see one success and the rest
// ErrStaleAck, and the runtime's deployed configuration is the winner's.
func TestConcurrentAcksSingleWinner(t *testing.T) {
	g := raceGraph(t)
	initial := dataflow.Parallelism{"source": 1, "flatmap": 1, "count": 1}
	rt := NewRemoteRuntime(g, initial, nil, 0)
	defer rt.Close()

	target := dataflow.Parallelism{"source": 1, "flatmap": 4, "count": 2}
	if err := rt.Apply(&core.Action{Kind: core.ActionRescale, New: target, Old: initial}); err != nil {
		t.Fatal(err)
	}
	act := rt.Pending()
	if act == nil {
		t.Fatal("no pending action after Apply")
	}

	const ackers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	wins, stales := 0, 0
	for i := 0; i < ackers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each acker reports a distinguishable applied config so a
			// double-apply would be visible in the final state.
			applied := target.Clone()
			applied["count"] = 2 + i%2
			err := rt.Ack(act.Seq, applied)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				wins++
			case errors.Is(err, ErrStaleAck):
				stales++
			default:
				t.Errorf("unexpected ack error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 || stales != ackers-1 {
		t.Fatalf("wins = %d, stales = %d; want exactly one winner of %d", wins, stales, ackers)
	}
	if rt.Pending() != nil {
		t.Fatal("action still pending after a successful ack")
	}
}

// TestSequentialDecisionsNoDoubleApply pins the two-in-flight-decisions
// scenario: after a second decision supersedes an acked first one, a
// late engine replaying the first ack must be rejected and must not
// clobber the second decision's deployment.
func TestSequentialDecisionsNoDoubleApply(t *testing.T) {
	g := raceGraph(t)
	initial := dataflow.Parallelism{"source": 1, "flatmap": 1, "count": 1}
	rt := NewRemoteRuntime(g, initial, nil, 0)
	defer rt.Close()

	first := dataflow.Parallelism{"source": 1, "flatmap": 2, "count": 2}
	if err := rt.Apply(&core.Action{Kind: core.ActionRescale, New: first, Old: initial}); err != nil {
		t.Fatal(err)
	}
	a1 := rt.Pending()
	if err := rt.Ack(a1.Seq, nil); err != nil {
		t.Fatal(err)
	}

	second := dataflow.Parallelism{"source": 1, "flatmap": 3, "count": 4}
	if err := rt.Apply(&core.Action{Kind: core.ActionRescale, New: second, Old: first}); err != nil {
		t.Fatal(err)
	}
	a2 := rt.Pending()
	if a2.Seq == a1.Seq {
		t.Fatalf("second action reuses seq %d", a1.Seq)
	}

	// The late replay of the first ack and the genuine second ack race.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = rt.Ack(a1.Seq, first) }()
	go func() { defer wg.Done(); errs[1] = rt.Ack(a2.Seq, second) }()
	wg.Wait()

	if !errors.Is(errs[0], ErrStaleAck) {
		t.Fatalf("replayed first ack: %v, want ErrStaleAck", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("second ack: %v", errs[1])
	}
	if got := rt.Parallelism(); !got.Equal(second) {
		t.Fatalf("deployed %s after races, want %s", got, second)
	}
}

// TestServicePollAckRaceOverHTTP drives a full ds2d job whose policy
// rescales every interval while two engine-side workers race to poll
// and ack each decision over real HTTP: every decision must be applied
// exactly once (one HTTP 200, conflicts for the rest), reports must
// keep flowing, and the service's decision count must match the acked
// set. Runs under -race in CI.
func TestServicePollAckRaceOverHTTP(t *testing.T) {
	srv := NewServer(ServerConfig{})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := NewClient(hs.URL, nil)

	const nIntervals = 8
	spec := JobSpec{
		Operators:    []JobOperator{{Name: "source"}, {Name: "flatmap"}, {Name: "count"}},
		Edges:        [][2]string{{"source", "flatmap"}, {"flatmap", "count"}},
		Initial:      dataflow.Parallelism{"source": 1, "flatmap": 1, "count": 1},
		Autoscaler:   AutoscalerDS2,
		IntervalSec:  1,
		MaxIntervals: nIntervals,
	}
	id, err := client.Register(spec)
	if err != nil {
		t.Fatal(err)
	}

	// rawAck posts an ack and reports (status, decoded seq error kind).
	rawAck := func(seq int, applied dataflow.Parallelism) int {
		body, _ := json.Marshal(ackRequest{Seq: seq, Applied: applied})
		resp, err := http.Post(hs.URL+"/jobs/"+id+"/acked", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	// reporter: feeds windows whose true rates force a fresh decision
	// every interval (target rate grows each round, so the policy
	// always proposes a larger flatmap).
	report := func(round int) Report {
		target := 1000.0 * float64(round+2)
		win := func(op string, idx int, proc, push float64) metrics.WindowMetrics {
			return metrics.WindowMetrics{
				ID:         metrics.InstanceID{Operator: op, Index: idx},
				Window:     1,
				Processing: 0.5,
				Processed:  proc,
				Pushed:     push,
			}
		}
		return Report{
			Start: float64(round),
			End:   float64(round + 1),
			Windows: []metrics.WindowMetrics{
				win("source", 0, target, target),
				win("flatmap", 0, 500, 500),
				win("count", 0, 500, 0),
			},
			TargetRates:    map[string]float64{"source": target},
			SourceObserved: map[string]float64{"source": target},
		}
	}

	var mu sync.Mutex
	applied := make(map[int]int) // seq -> success count
	state := StateRunning
	for round := 0; round < nIntervals && state == StateRunning; round++ {
		st, err := client.Report(id, report(round))
		if err != nil {
			t.Fatal(err)
		}
		if st != StateRunning {
			break
		}
		dec, err := client.PollAction(id, round, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		state = dec.State
		if dec.Action == nil {
			continue
		}
		act := dec.Action
		// Two engine workers race to apply the same decision.
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				code := rawAck(act.Seq, act.New)
				mu.Lock()
				defer mu.Unlock()
				switch code {
				case http.StatusOK:
					applied[act.Seq]++
				case http.StatusConflict: // stale: the sibling won
				default:
					t.Errorf("ack seq %d: unexpected HTTP %d", act.Seq, code)
				}
			}()
		}
		wg.Wait()
	}

	mu.Lock()
	defer mu.Unlock()
	if len(applied) == 0 {
		t.Fatal("no decisions were issued")
	}
	for seq, n := range applied {
		if n != 1 {
			t.Errorf("seq %d acked successfully %d times, want exactly 1", seq, n)
		}
	}
	st, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Decisions != len(applied) {
		t.Errorf("service decided %d times, engines applied %d distinct decisions", st.Decisions, len(applied))
	}
	if _, err := client.Deregister(id); err != nil {
		t.Fatal(err)
	}
}
