package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

func testGraph(t *testing.T) *dataflow.Graph {
	t.Helper()
	g, err := dataflow.Linear("src", "op")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func window(op string, idx int, w, useful, processed, pushed float64) metrics.WindowMetrics {
	return metrics.WindowMetrics{
		ID:         metrics.InstanceID{Operator: op, Index: idx},
		Window:     w,
		Processing: useful,
		Processed:  processed,
		Pushed:     pushed,
	}
}

func testReport(start, end float64) Report {
	return Report{
		Start:          start,
		End:            end,
		Windows:        []metrics.WindowMetrics{window("op", 0, end-start, end-start, 100, 100)},
		TargetRates:    map[string]float64{"src": 100},
		SourceObserved: map[string]float64{"src": 90},
		Parallelism:    dataflow.Parallelism{"src": 1, "op": 1},
	}
}

func TestRemoteRuntimeAdvanceAggregatesReports(t *testing.T) {
	g := testGraph(t)
	repo := metrics.NewRepository(8)
	rt := NewRemoteRuntime(g, dataflow.Parallelism{"src": 1, "op": 1}, repo, 8)

	// Two half-interval reports satisfy one 10 s interval.
	if err := rt.Ingest(testReport(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Ingest(testReport(5, 10)); err != nil {
		t.Fatal(err)
	}
	obs, err := rt.Advance(10)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Start != 0 || obs.End != 10 || obs.Busy {
		t.Errorf("obs span [%v, %v] busy=%v", obs.Start, obs.End, obs.Busy)
	}
	snap, err := obs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Two 5 s windows with 100 processed each merge into 200/10 s.
	if got := snap.Operators["op"].TrueProcessing; got != 20 {
		t.Errorf("true processing = %v, want 20", got)
	}
	if got := obs.AchievedRate(); got != 90 {
		t.Errorf("achieved = %v, want 90", got)
	}
	if repo.Len() != 1 {
		t.Errorf("repository holds %d snapshots, want 1", repo.Len())
	}
}

func TestRemoteRuntimeAdvanceBlocksUntilCovered(t *testing.T) {
	g := testGraph(t)
	rt := NewRemoteRuntime(g, dataflow.Parallelism{"src": 1, "op": 1}, nil, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	var obs controlloop.Observation
	var advErr error
	go func() {
		defer wg.Done()
		obs, advErr = rt.Advance(10)
	}()
	// The advance cannot complete on half an interval.
	if err := rt.Ingest(testReport(0, 5)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := rt.Ingest(testReport(5, 10)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if advErr != nil {
		t.Fatal(advErr)
	}
	if obs.End != 10 {
		t.Errorf("obs.End = %v", obs.End)
	}
}

func TestRemoteRuntimeRejectsOverlappingReports(t *testing.T) {
	g := testGraph(t)
	rt := NewRemoteRuntime(g, dataflow.Parallelism{"src": 1, "op": 1}, nil, 8)
	if err := rt.Ingest(testReport(0, 10)); err != nil {
		t.Fatal(err)
	}
	// A retried duplicate delivery must not double-count job time.
	if err := rt.Ingest(testReport(0, 10)); err == nil {
		t.Fatal("duplicate report accepted")
	}
	// Partial overlap is rejected too.
	if err := rt.Ingest(testReport(5, 15)); err == nil {
		t.Fatal("overlapping report accepted")
	}
	// A gap (job time discarded during a settling redeployment) is
	// fine.
	if err := rt.Ingest(testReport(30, 40)); err != nil {
		t.Fatalf("gapped report rejected: %v", err)
	}
}

func TestRemoteRuntimeBacklogBound(t *testing.T) {
	g := testGraph(t)
	rt := NewRemoteRuntime(g, dataflow.Parallelism{"src": 1, "op": 1}, nil, 2)
	if err := rt.Ingest(testReport(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Ingest(testReport(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Ingest(testReport(2, 3)); !errors.Is(err, ErrBacklogged) {
		t.Fatalf("third ingest: %v, want ErrBacklogged", err)
	}
}

func TestRemoteRuntimeApplyAckCycle(t *testing.T) {
	g := testGraph(t)
	initial := dataflow.Parallelism{"src": 1, "op": 1}
	rt := NewRemoteRuntime(g, initial, nil, 8)

	next := dataflow.Parallelism{"src": 1, "op": 3}
	err := rt.Apply(&core.Action{Kind: core.ActionRescale, New: next, Old: initial, Reason: "test"})
	if err != nil {
		t.Fatal(err)
	}
	act := rt.Pending()
	if act == nil || act.Seq != 1 || act.Kind != "rescale" || !act.New.Equal(next) {
		t.Fatalf("pending = %+v", act)
	}
	// The deployment does not change until the engine acks.
	if !rt.Parallelism().Equal(initial) {
		t.Error("parallelism changed before ack")
	}
	// An interval observed while unacked is busy.
	if err := rt.Ingest(testReport(0, 10)); err != nil {
		t.Fatal(err)
	}
	obs, err := rt.Advance(10)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Busy {
		t.Error("interval with unacked action not busy")
	}
	// Wrong seq is rejected; right seq lands.
	if err := rt.Ack(7, nil); err == nil {
		t.Error("stale ack accepted")
	}
	if err := rt.Ack(1, nil); err != nil {
		t.Fatal(err)
	}
	if !rt.Parallelism().Equal(next) {
		t.Errorf("parallelism = %v, want %v", rt.Parallelism(), next)
	}
	if rt.Pending() != nil {
		t.Error("pending survives ack")
	}
}

func TestRemoteRuntimeWaitDecision(t *testing.T) {
	g := testGraph(t)
	rt := NewRemoteRuntime(g, dataflow.Parallelism{"src": 1, "op": 1}, nil, 8)

	// Timeout path: nothing pending, nothing decided.
	start := time.Now()
	act, n := rt.WaitDecision(0, 20*time.Millisecond)
	if act != nil || n != 0 {
		t.Errorf("WaitDecision = %v, %d", act, n)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("WaitDecision returned before timeout")
	}

	// Wake on decided interval.
	go func() {
		time.Sleep(5 * time.Millisecond)
		rt.NoteInterval()
	}()
	_, n = rt.WaitDecision(0, time.Second)
	if n != 1 {
		t.Errorf("intervals = %d, want 1", n)
	}
}

func TestRemoteRuntimeClose(t *testing.T) {
	g := testGraph(t)
	rt := NewRemoteRuntime(g, dataflow.Parallelism{"src": 1, "op": 1}, nil, 8)
	done := make(chan error, 1)
	go func() {
		_, err := rt.Advance(10)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	rt.Close()
	if err := <-done; !errors.Is(err, controlloop.ErrStopped) {
		t.Fatalf("Advance after close: %v, want ErrStopped", err)
	}
	if err := rt.Ingest(testReport(0, 1)); !errors.Is(err, controlloop.ErrStopped) {
		t.Fatalf("Ingest after close: %v, want ErrStopped", err)
	}
}

func TestReportValidate(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		name string
		rep  Report
	}{
		{"empty span", Report{Start: 5, End: 5}},
		{"unknown operator", Report{Start: 0, End: 1,
			Windows: []metrics.WindowMetrics{window("ghost", 0, 1, 1, 1, 1)}}},
		{"target rate for non-source", Report{Start: 0, End: 1,
			TargetRates: map[string]float64{"op": 10}}},
		{"bad parallelism", Report{Start: 0, End: 1,
			Parallelism: dataflow.Parallelism{"src": 1}}},
	}
	for _, tc := range cases {
		if err := tc.rep.Validate(g); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

func TestJobSpecBuildErrors(t *testing.T) {
	ops := []JobOperator{{Name: "src"}, {Name: "op"}}
	edges := [][2]string{{"src", "op"}}
	good := JobSpec{
		Operators: ops, Edges: edges,
		Initial:     dataflow.Parallelism{"src": 1, "op": 1},
		IntervalSec: 10, MaxIntervals: 5,
	}
	if _, _, _, err := good.build(); err != nil {
		t.Fatalf("good spec: %v", err)
	}

	bad := []struct {
		name string
		mut  func(*JobSpec)
	}{
		{"no operators", func(s *JobSpec) { s.Operators = nil }},
		{"bad autoscaler", func(s *JobSpec) { s.Autoscaler = "magic" }},
		{"no interval", func(s *JobSpec) { s.IntervalSec = 0 }},
		{"no horizon", func(s *JobSpec) { s.MaxIntervals = 0 }},
		{"bad initial", func(s *JobSpec) { s.Initial = dataflow.Parallelism{"src": 1} }},
		{"bad aggregation", func(s *JobSpec) { s.Manager = &ManagerConfig{Aggregation: "mean"} }},
	}
	for _, tc := range bad {
		spec := good
		tc.mut(&spec)
		if _, _, _, err := spec.build(); err == nil {
			t.Errorf("%s: built", tc.name)
		}
	}
}
