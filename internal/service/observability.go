package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"ds2/internal/obs"
)

// serverObs is the service's observability plane: the metric handles
// the handlers record into, the request middleware, and the /metrics
// exposition. Everything is registered once at server construction;
// per-request work is counter/histogram recording plus (when a logger
// is configured) one structured log line.
type serverObs struct {
	reg   *obs.Registry
	log   *slog.Logger
	start time.Time

	reports *obs.Counter // accepted ingests; other outcomes looked up per label
	windows *obs.Counter
	routes  map[string]*routeObs // static after initRoutes; nil entry = slow path
}

// routeObs holds one route pattern's pre-resolved handles so the
// request middleware costs two atomic ops on the 200 path instead of
// two registry lookups.
type routeObs struct {
	hist *obs.Histogram
	ok   *obs.Counter // code 200 — the hot path

	mu   sync.Mutex
	rest map[int]*obs.Counter // other codes, resolved on first use
}

func (ro *routeObs) counter(o *serverObs, route string, code int) *obs.Counter {
	if code == http.StatusOK {
		return ro.ok
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	c, ok := ro.rest[code]
	if !ok {
		c = o.requestCounter(route, code)
		ro.rest[code] = c
	}
	return c
}

// httpLatencyBuckets: 100µs to ~400s (long-polls park for up to
// MaxPollWait by design, so the grid must reach past it).
var httpLatencyBuckets = obs.HistogramOpts{Min: 1e-4, Growth: 2, Buckets: 22}

func newServerObs(s *Server, reg *obs.Registry, log *slog.Logger) *serverObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &serverObs{reg: reg, log: log, start: time.Now()}
	o.reports = reg.Counter("ds2d_reports_total",
		"Instrumentation reports ingested, by outcome.", obs.L("outcome", "accepted"))
	o.windows = reg.Counter("ds2d_windows_ingested_total",
		"Per-instance instrumentation windows accepted across all jobs.")
	reg.GaugeFunc("ds2d_uptime_seconds", "Seconds since the service started.",
		func() float64 { return time.Since(o.start).Seconds() })
	for _, state := range []JobState{StateRunning, StateFinished, StateStopped, StateFailed} {
		state := state
		reg.GaugeFunc("ds2d_jobs", "Registered jobs by lifecycle state.",
			func() float64 { return float64(s.countJobs(state)) },
			obs.L("state", string(state)))
	}
	reg.CounterFunc("ds2d_jobs_registered_total", "Jobs ever registered.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.nextID)
		})
	reg.CounterFunc("ds2d_snapshot_evictions_total",
		"Aggregated snapshots evicted from bounded per-job history rings — silent data loss if a scraper needed them.",
		func() float64 { return s.snapshotEvictions() })
	return o
}

// initRoutes pre-resolves the request counter and latency histogram
// for every known route pattern (plus the unmatched fallback), so the
// middleware's steady state never touches the registry. Patterns
// outside this set (the optional pprof mounts) fall back to per-request
// resolution.
func (o *serverObs) initRoutes(patterns []string) {
	o.routes = make(map[string]*routeObs, len(patterns)+1)
	for _, pat := range append([]string{"unmatched"}, patterns...) {
		o.routes[pat] = &routeObs{
			hist: o.reg.Histogram("ds2d_http_request_seconds",
				"HTTP request latency by route pattern.",
				httpLatencyBuckets, obs.L("route", pat)),
			ok:   o.requestCounter(pat, http.StatusOK),
			rest: make(map[int]*obs.Counter),
		}
	}
}

func (o *serverObs) requestCounter(route string, code int) *obs.Counter {
	return o.reg.Counter("ds2d_http_requests_total",
		"HTTP requests served, by route pattern and status code.",
		obs.L("route", route), obs.L("code", strconv.Itoa(code)))
}

// httpDone records one finished request.
func (o *serverObs) httpDone(route string, code int, seconds float64) {
	if ro := o.routes[route]; ro != nil {
		ro.counter(o, route, code).Inc()
		ro.hist.Observe(seconds)
		return
	}
	o.requestCounter(route, code).Inc()
	o.reg.Histogram("ds2d_http_request_seconds",
		"HTTP request latency by route pattern.",
		httpLatencyBuckets, obs.L("route", route)).Observe(seconds)
}

// reportOutcome counts one non-accepted ingest outcome.
func (o *serverObs) reportOutcome(outcome string) {
	o.reg.Counter("ds2d_reports_total",
		"Instrumentation reports ingested, by outcome.", obs.L("outcome", outcome)).Inc()
}

// decision counts one applied scaling decision by policy and verdict.
func (o *serverObs) decision(autoscaler, kind string) {
	o.reg.Counter("ds2d_decisions_total",
		"Scaling decisions applied, by policy and verdict.",
		obs.L("autoscaler", autoscaler), obs.L("kind", kind)).Inc()
}

// interval counts one fully decided policy interval by verdict
// ("hold" when the deployment was left alone).
func (o *serverObs) interval(autoscaler, verdict string) {
	o.reg.Counter("ds2d_intervals_total",
		"Decided policy intervals, by policy and verdict.",
		obs.L("autoscaler", autoscaler), obs.L("verdict", verdict)).Inc()
}

// statusWriter captures the response code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// middleware wraps the mux with per-endpoint request counting, latency
// histograms, and structured request logging with request ids. The
// route label is the ServeMux pattern that matched (so /jobs/job-17
// and /jobs/job-3 share one series), never the raw path — raw paths
// are unbounded-cardinality and belong in the log line, not a label.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(t0)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.obs.httpDone(route, sw.code, dur.Seconds())
		if s.obs.log != nil {
			s.obs.log.Info("http",
				"req", s.nextRequestID(),
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", sw.code,
				"dur_ms", float64(dur.Microseconds())/1000,
				"remote", r.RemoteAddr,
			)
		}
	})
}

// nextRequestID returns a process-unique request id for log
// correlation.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("r%06d", s.reqID.Add(1))
}

// countJobs counts registered jobs in one state.
func (s *Server) countJobs(state JobState) int {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	n := 0
	for _, j := range js {
		if j.stateNow() == state {
			n++
		}
	}
	return n
}

// snapshotEvictions sums ring-buffer evictions across live jobs plus
// everything accumulated from deregistered ones, so the exported
// counter stays monotone as jobs come and go.
func (s *Server) snapshotEvictions() float64 {
	s.mu.Lock()
	total := s.evictedGone
	for _, j := range s.jobs {
		total += j.repo.Evicted()
	}
	s.mu.Unlock()
	return float64(total)
}

// noteRemovedLocked folds a removed job's eviction count into the
// retained total. Callers hold s.mu.
func (s *Server) noteRemovedLocked(j *job) {
	s.evictedGone += j.repo.Evicted()
}

// registerPprof mounts the standard pprof handlers (gated behind
// ServerConfig.EnablePprof / ds2d -pprof: profiling endpoints expose
// heap contents and must be opt-in on a network daemon).
func (s *Server) registerPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// buildInfo extracts the readiness payload's build identity once.
func buildInfo() (goVersion, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	goVersion = bi.GoVersion
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return goVersion, revision
}
