package service_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ds2/internal/obs"
	"ds2/internal/service"
)

// fakeWorkerMetrics serves a worker-shaped /metrics page and returns
// its host:port for WorkerInfo.MetricsAddr.
func fakeWorkerMetrics(t *testing.T, fill func(reg *obs.Registry)) string {
	t.Helper()
	reg := obs.NewRegistry()
	fill(reg)
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func workerFamilies(reg *obs.Registry) {
	reg.Counter("streamrt_link_frames_total",
		"Exchange frames moved.", obs.L("dir", "tx")).Add(5)
	reg.Gauge("streamrt_operator_instances",
		"Deployed instances.", obs.L("operator", "count")).Set(2)
	reg.Histogram("streamrt_record_latency_seconds",
		"Record latency.", obs.HistogramOpts{Min: 1e-4, Growth: 2, Buckets: 4},
		obs.L("operator", "sink")).Observe(0.01)
}

// TestMetricsFederation pins the merged exposition: every worker
// sample reappears on the coordinator page under a worker="<id>"
// label, local families stay unlabeled, and a family the coordinator
// does not export gets exactly one TYPE declaration.
func TestMetricsFederation(t *testing.T) {
	srv, client, url := newObservedLoopback(t, service.ServerConfig{})
	_ = srv
	for i := 0; i < 2; i++ {
		addr := fakeWorkerMetrics(t, workerFamilies)
		if err := client.RegisterWorker(service.WorkerInfo{ID: i, Addr: "127.0.0.1:9", MetricsAddr: addr}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rawBytes, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(rawBytes)
	sc, err := obs.ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("federated page does not parse: %v", err)
	}

	// Every worker series carries its worker label; both workers show.
	for _, fam := range []string{"streamrt_link_frames_total", "streamrt_operator_instances"} {
		seen := map[string]bool{}
		for _, s := range sc.Get(fam) {
			w := s.Label("worker")
			if w == "" {
				t.Errorf("%s sample without worker label: %+v", fam, s)
			}
			seen[w] = true
		}
		if !seen["0"] || !seen["1"] {
			t.Errorf("%s: workers seen = %v, want 0 and 1", fam, seen)
		}
	}
	// One TYPE declaration per federated-only family, not one per
	// worker.
	for _, fam := range []string{"streamrt_link_frames_total", "streamrt_record_latency_seconds"} {
		if n := strings.Count(page, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("%d TYPE lines for %s, want 1", n, fam)
		}
	}
	// Histogram buckets survive with le-ordering intact per worker.
	var les []float64
	for _, s := range sc.Get("streamrt_record_latency_seconds_bucket") {
		if s.Label("worker") != "0" {
			continue
		}
		les = append(les, leValue(t, s.Label("le")))
	}
	if len(les) < 2 {
		t.Fatalf("worker 0 bucket series missing: %d samples", len(les))
	}
	for i := 1; i < len(les); i++ {
		if !(les[i] > les[i-1]) {
			t.Fatalf("bucket le values out of order: %v", les)
		}
	}
	// The coordinator's own families stay unlabeled.
	for _, s := range sc.Get("ds2d_uptime_seconds") {
		if s.Label("worker") != "" {
			t.Errorf("local family gained a worker label: %+v", s)
		}
	}
}

func leValue(t *testing.T, le string) float64 {
	t.Helper()
	if le == "+Inf" {
		return 1e300
	}
	var v float64
	if _, err := fmt.Sscanf(le, "%g", &v); err != nil {
		t.Fatalf("bad le %q: %v", le, err)
	}
	return v
}

// TestMetricsFederationDegradation: an unreachable or garbage-serving
// worker must not fail the coordinator's page — its samples are
// absent, the healthy worker's present, and the failure is counted in
// the same response.
func TestMetricsFederationDegradation(t *testing.T) {
	_, client, url := newObservedLoopback(t, service.ServerConfig{})
	good := fakeWorkerMetrics(t, workerFamilies)
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "}{ not an exposition")
	}))
	t.Cleanup(garbage.Close)
	for _, w := range []service.WorkerInfo{
		{ID: 0, Addr: "127.0.0.1:9", MetricsAddr: good},
		{ID: 1, Addr: "127.0.0.1:9", MetricsAddr: "127.0.0.1:1"}, // nothing listens
		{ID: 2, Addr: "127.0.0.1:9", MetricsAddr: strings.TrimPrefix(garbage.URL, "http://")},
	} {
		if err := client.RegisterWorker(w); err != nil {
			t.Fatal(err)
		}
	}

	sc := scrape(t, url)
	workers := map[string]bool{}
	for _, s := range sc.Get("streamrt_link_frames_total") {
		workers[s.Label("worker")] = true
	}
	if !workers["0"] || workers["1"] || workers["2"] {
		t.Errorf("federated workers = %v, want only 0", workers)
	}
	failed := map[string]float64{}
	for _, s := range sc.Get("ds2d_federation_errors_total") {
		failed[s.Label("worker")] = s.Value
	}
	if failed["1"] < 1 || failed["2"] < 1 {
		t.Errorf("federation errors = %v, want workers 1 and 2 counted", failed)
	}
	if _, ok := failed["0"]; ok {
		t.Errorf("healthy worker 0 counted as failed")
	}
}

// TestWorkersEndpointInstrumented pins that the worker rendezvous
// endpoints go through the request middleware: their route patterns
// show up in the request counter like any job route.
func TestWorkersEndpointInstrumented(t *testing.T) {
	_, client, url := newObservedLoopback(t, service.ServerConfig{})
	if err := client.RegisterWorker(service.WorkerInfo{ID: 0, Addr: "127.0.0.1:9"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Workers(); err != nil {
		t.Fatal(err)
	}
	if err := client.DeregisterWorker(0); err != nil {
		t.Fatal(err)
	}

	sc := scrape(t, url)
	got := map[string]bool{}
	for _, s := range sc.Get("ds2d_http_requests_total") {
		got[s.Label("route")] = true
	}
	for _, route := range []string{"POST /workers", "GET /workers", "DELETE /workers/{id}"} {
		if !got[route] {
			t.Errorf("no request-counter series for route %q (got %v)", route, got)
		}
	}
}

// TestRescalesEndpoint pins the report → /rescales path: timelines
// ride reports, merge by trace ID (an in-flight timeline is replaced
// by its completed version, and re-sending the engine's whole ring
// never duplicates), and survive even a report the ingestion buffer
// rejects.
func TestRescalesEndpoint(t *testing.T) {
	srv, client, url := newObservedLoopback(t, service.ServerConfig{})
	id, err := srv.Register(wordcountSpec(service.AutoscalerDS2, 1000))
	if err != nil {
		t.Fatal(err)
	}

	tl := func(traceID string, complete bool) obs.TraceView {
		return obs.TraceView{
			ID: traceID, Name: "rescale", Complete: complete,
			Spans: []obs.Span{{ID: 1, Name: "drain", Worker: -1, StartNs: 0, EndNs: 10}},
		}
	}
	get := func() (int, []obs.TraceView) {
		t.Helper()
		resp, err := http.Get(url + "/jobs/" + id + "/rescales")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /rescales = %d", resp.StatusCode)
		}
		var body struct {
			Total    int             `json:"total"`
			Rescales []obs.TraceView `json:"rescales"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Total, body.Rescales
	}

	// Busy reports carry the timeline without feeding the decision loop
	// a window-less snapshot.
	if _, err := client.Report(id, service.Report{Start: 0, End: 60, Busy: true,
		Rescales: []obs.TraceView{tl("rescale-1", false)}}); err != nil {
		t.Fatal(err)
	}
	total, vs := get()
	if total != 1 || len(vs) != 1 || vs[0].Complete {
		t.Fatalf("after first report: total=%d len=%d complete=%v, want 1/1/false", total, len(vs), vs[0].Complete)
	}

	// The engine re-sends its whole ring: rescale-1 now complete plus a
	// new rescale-2. No duplicates, in-flight replaced.
	if _, err := client.Report(id, service.Report{Start: 60, End: 120, Busy: true,
		Rescales: []obs.TraceView{tl("rescale-1", true), tl("rescale-2", false)}}); err != nil {
		t.Fatal(err)
	}
	total, vs = get()
	if total != 2 || len(vs) != 2 {
		t.Fatalf("after second report: total=%d len=%d, want 2/2", total, len(vs))
	}
	if vs[0].ID != "rescale-1" || !vs[0].Complete {
		t.Errorf("rescale-1 not replaced by completed version: %+v", vs[0])
	}
	if vs[1].ID != "rescale-2" || vs[1].Complete {
		t.Errorf("rescale-2 wrong: %+v", vs[1])
	}

	// An invalid report (empty span) is rejected by ingestion with 400,
	// but its timelines still land.
	if _, err := client.Report(id, service.Report{Start: 120, End: 120,
		Rescales: []obs.TraceView{tl("rescale-3", true)}}); err == nil {
		t.Fatal("empty-span report unexpectedly accepted")
	}
	total, vs = get()
	if total != 3 || len(vs) != 3 || vs[2].ID != "rescale-3" {
		t.Fatalf("timelines on a rejected report dropped: total=%d %+v", total, vs)
	}

	// ?n trims to the newest.
	resp, err := http.Get(url + "/jobs/" + id + "/rescales?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Total    int             `json:"total"`
		Rescales []obs.TraceView `json:"rescales"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Total != 3 || len(body.Rescales) != 1 || body.Rescales[0].ID != "rescale-3" {
		t.Errorf("?n=1: total=%d %+v", body.Total, body.Rescales)
	}
	_ = client
}
