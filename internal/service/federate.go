package service

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ds2/internal/obs"
)

// Worker /metrics federation: the coordinator's exposition is the
// single scrape target for a distributed deployment, so ds2d folds
// every registered worker's own /metrics page (WorkerInfo.MetricsAddr)
// into its response, each sample gaining a worker="<id>" label. The
// merge is append-only text: worker pages are parsed (validating
// them), re-rendered with the label injected, grouped by family across
// workers, and written after the local page. A family the coordinator
// does not export locally gets one # TYPE line; families present in
// both keep the local declaration. Workers never share a series — the
// worker label separates them from each other and from the
// coordinator's own (label-free) cluster-level series.

// federateTimeout bounds one worker scrape. A worker that cannot
// answer within it is skipped for this response and counted in
// ds2d_federation_errors_total — the coordinator's page must not hang
// on a stuck worker.
const federateTimeout = time.Second

// maxFederatedBytes caps one worker page; a runaway exposition must
// not balloon the coordinator's response.
const maxFederatedBytes = 4 << 20

// workerScrape is one successfully scraped and parsed worker page.
type workerScrape struct {
	worker string
	page   obs.Scrape
}

// handleMetricsPage serves the Prometheus exposition: the service's
// own registry, then the federated worker families.
func (s *Server) handleMetricsPage(w http.ResponseWriter, r *http.Request) {
	var targets []WorkerInfo
	for _, wi := range s.Workers() {
		if wi.MetricsAddr != "" {
			targets = append(targets, wi)
		}
	}
	// Scrape before rendering the local page so a federation error's
	// counter increment is visible in this very response.
	scrapes := s.scrapeWorkers(targets)
	var page bytes.Buffer
	_ = s.obs.reg.WritePrometheus(&page)
	appendFederated(&page, scrapes)
	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = w.Write(page.Bytes())
}

// scrapeWorkers fetches and parses every target's page concurrently,
// dropping (and counting) failures. Results keep the targets' order —
// sorted by worker index.
func (s *Server) scrapeWorkers(targets []WorkerInfo) []workerScrape {
	if len(targets) == 0 {
		return nil
	}
	client := &http.Client{Timeout: federateTimeout}
	got := make([]*workerScrape, len(targets))
	var wg sync.WaitGroup
	for i, wi := range targets {
		wg.Add(1)
		go func(i int, wi WorkerInfo) {
			defer wg.Done()
			page, err := scrapeOne(client, wi.MetricsAddr)
			if err != nil {
				s.obs.federationError(strconv.Itoa(wi.ID))
				return
			}
			got[i] = &workerScrape{worker: strconv.Itoa(wi.ID), page: page}
		}(i, wi)
	}
	wg.Wait()
	out := make([]workerScrape, 0, len(targets))
	for _, g := range got {
		if g != nil {
			out = append(out, *g)
		}
	}
	return out
}

func scrapeOne(client *http.Client, addr string) (obs.Scrape, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return obs.Scrape{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Scrape{}, fmt.Errorf("scrape status %s", resp.Status)
	}
	return obs.ParseText(io.LimitReader(resp.Body, maxFederatedBytes))
}

// appendFederated renders the worker samples after the local page,
// grouped by family (sorted), within a family by worker then source
// order — which preserves each histogram's le-bucket ordering.
func appendFederated(page *bytes.Buffer, scrapes []workerScrape) {
	if len(scrapes) == 0 {
		return
	}
	// Families already declared locally keep their local # TYPE line;
	// re-declaring them would be a duplicate the stricter parsers
	// reject.
	localFams := make(map[string]bool)
	if local, err := obs.ParseText(bytes.NewReader(page.Bytes())); err == nil {
		for _, fam := range local.Families() {
			localFams[fam] = true
		}
	}
	fams := make(map[string]string) // family -> TYPE ("" unknown)
	for _, sc := range scrapes {
		for _, sm := range sc.page.Samples {
			fam := foldFamily(sm.Name, sc.page.Types)
			if fams[fam] == "" {
				fams[fam] = sc.page.Types[fam]
			}
		}
	}
	names := make([]string, 0, len(fams))
	for fam := range fams {
		names = append(names, fam)
	}
	sort.Strings(names)
	for _, fam := range names {
		if !localFams[fam] && fams[fam] != "" {
			fmt.Fprintf(page, "# TYPE %s %s\n", fam, fams[fam])
		}
		for _, sc := range scrapes {
			for _, sm := range sc.page.Samples {
				if foldFamily(sm.Name, sc.page.Types) == fam {
					appendSample(page, sm, sc.worker)
				}
			}
		}
	}
}

// foldFamily maps a histogram's _bucket/_sum/_count series back onto
// its base family, using the page's TYPE declarations to avoid folding
// a counter that merely ends in _count.
func foldFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// appendSample re-renders one sample with the worker label appended.
func appendSample(buf *bytes.Buffer, sm obs.Sample, worker string) {
	buf.WriteString(sm.Name)
	buf.WriteByte('{')
	for _, l := range sm.Labels {
		if l.Name == "worker" {
			// A worker page carrying its own worker label would forge
			// another worker's identity in the merged view; ours wins.
			continue
		}
		appendLabel(buf, l.Name, l.Value)
		buf.WriteByte(',')
	}
	appendLabel(buf, "worker", worker)
	buf.WriteString("} ")
	buf.WriteString(formatSampleValue(sm.Value))
	buf.WriteByte('\n')
}

func appendLabel(buf *bytes.Buffer, name, value string) {
	buf.WriteString(name)
	buf.WriteString(`="`)
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\':
			buf.WriteString(`\\`)
		case '"':
			buf.WriteString(`\"`)
		case '\n':
			buf.WriteString(`\n`)
		default:
			buf.WriteByte(c)
		}
	}
	buf.WriteByte('"')
}

func formatSampleValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// federationError counts one failed worker scrape.
func (o *serverObs) federationError(worker string) {
	o.reg.Counter("ds2d_federation_errors_total",
		"Worker /metrics federation scrapes that failed (unreachable, non-200, or unparseable), by worker.",
		obs.L("worker", worker)).Inc()
}
