package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/dataflow"
)

// Client speaks the scaling service's HTTP API: the side of Fig. 5
// that lives next to the engine. A streaming-job integration uses it
// to register the job, push instrumentation reports, poll for rescale
// commands, and ack completed redeployments.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for a ds2d server at baseURL (e.g.
// "http://127.0.0.1:7361"). httpClient may be nil for a default with a
// timeout comfortably above the server's long-poll cap.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 2 * time.Minute}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// roundTrip issues one request and returns the status code and raw
// response body.
func (c *Client) roundTrip(method, path string, in any) (int, []byte, error) {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return 0, nil, err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return 0, nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// apiErr shapes a non-2xx body into an error.
func apiErr(context string, code int, data []byte) error {
	var ae apiError
	if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
		return fmt.Errorf("service: %s: %s (HTTP %d)", context, ae.Error, code)
	}
	return fmt.Errorf("service: %s: HTTP %d", context, code)
}

// do issues one request and decodes the JSON response into out (unless
// nil). Non-2xx responses decode the uniform error body.
func (c *Client) do(method, path string, in, out any) error {
	code, data, err := c.roundTrip(method, path, in)
	if err != nil {
		return err
	}
	if code < 200 || code > 299 {
		return apiErr(method+" "+path, code, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health pings the server.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Register submits a job spec and returns the assigned job id.
func (c *Client) Register(spec JobSpec) (string, error) {
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.do(http.MethodPost, "/jobs", spec, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Deregister stops a job and returns its final trace.
func (c *Client) Deregister(id string) (controlloop.Trace, error) {
	var tr controlloop.Trace
	err := c.do(http.MethodDelete, "/jobs/"+url.PathEscape(id), nil, &tr)
	return tr, err
}

// RegisterWorker announces a streamrt worker's control address to the
// service's worker registry.
func (c *Client) RegisterWorker(w WorkerInfo) error {
	return c.do(http.MethodPost, "/workers", w, nil)
}

// Workers lists registered streamrt workers, sorted by index.
func (c *Client) Workers() ([]WorkerInfo, error) {
	var out []WorkerInfo
	err := c.do(http.MethodGet, "/workers", nil, &out)
	return out, err
}

// DeregisterWorker removes a worker from the registry.
func (c *Client) DeregisterWorker(id int) error {
	return c.do(http.MethodDelete, "/workers/"+strconv.Itoa(id), nil, nil)
}

// Jobs lists all registered jobs.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(http.MethodGet, "/jobs", nil, &out)
	return out, err
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodGet, "/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// ReportResult tells a reporter whether the decision loop is still
// consuming.
type ReportResult struct {
	State JobState `json:"state"`
}

// Report delivers one instrumentation report. When the job's loop has
// already finished the server answers HTTP 409; Report surfaces that
// as (state, nil) so reporters can stop cleanly rather than treat the
// natural end of a job as a failure.
func (c *Client) Report(id string, rep Report) (JobState, error) {
	code, data, err := c.roundTrip(http.MethodPost, "/jobs/"+url.PathEscape(id)+"/metrics", rep)
	if err != nil {
		return "", err
	}
	switch code {
	case http.StatusAccepted, http.StatusConflict:
		var rr ReportResult
		if err := json.Unmarshal(data, &rr); err != nil {
			return "", err
		}
		return rr.State, nil
	case http.StatusTooManyRequests:
		// Surface server-side pushback as the typed sentinel so
		// reporters can back off with errors.Is(err, ErrBacklogged)
		// instead of matching message text.
		return "", fmt.Errorf("service: report: %w", ErrBacklogged)
	default:
		return "", apiErr("report", code, data)
	}
}

// Decision is the poll endpoint's answer: the pending action (nil if
// none), the job state, the decided-interval count to pass back as
// seen on the next poll, and the pending savepoint request (0 if
// none).
type Decision struct {
	Action       *ActionEnvelope
	State        JobState
	Intervals    int
	SavepointSeq int
}

// PollAction asks for the pending scaling command. seen is the
// interval count from the previous poll (-1 initially): with wait > 0
// the server long-polls until a new interval has been decided, an
// action is pending, or the timeout expires.
func (c *Client) PollAction(id string, seen int, wait time.Duration) (Decision, error) {
	q := url.Values{}
	if seen >= 0 {
		q.Set("seen", strconv.Itoa(seen))
	}
	if wait > 0 {
		q.Set("wait_ms", strconv.Itoa(int(wait.Milliseconds())))
	}
	path := "/jobs/" + url.PathEscape(id) + "/action"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var resp actionResponse
	if err := c.do(http.MethodGet, path, nil, &resp); err != nil {
		return Decision{}, err
	}
	return Decision{Action: resp.Action, State: resp.State, Intervals: resp.Intervals, SavepointSeq: resp.SavepointSeq}, nil
}

// Ack reports a completed redeployment. applied is the configuration
// actually deployed (nil = the action's target).
func (c *Client) Ack(id string, seq int, applied dataflow.Parallelism) error {
	return c.do(http.MethodPost, "/jobs/"+url.PathEscape(id)+"/acked",
		ackRequest{Seq: seq, Applied: applied}, nil)
}

// RequestSavepoint asks the service to have the job's engine take a
// durable savepoint; it returns the request's sequence number. The
// savepoint itself is asynchronous — poll Savepoints for the outcome.
func (c *Client) RequestSavepoint(id string) (int, error) {
	var resp struct {
		Seq int `json:"seq"`
	}
	err := c.do(http.MethodPost, "/jobs/"+url.PathEscape(id)+"/savepoint", struct{}{}, &resp)
	return resp.Seq, err
}

// SavepointDone reports a savepoint request's outcome back to the
// service: the persisted path on success, the failure otherwise.
func (c *Client) SavepointDone(id string, seq int, path string, spErr error) error {
	req := savepointedRequest{Seq: seq, Path: path}
	if spErr != nil {
		req.Error = spErr.Error()
	}
	return c.do(http.MethodPost, "/jobs/"+url.PathEscape(id)+"/savepointed", req, nil)
}

// Savepoints fetches a job's savepoint record: settled savepoints plus
// the in-flight request, if any.
func (c *Client) Savepoints(id string) (SavepointsStatus, error) {
	var resp savepointsResponse
	err := c.do(http.MethodGet, "/jobs/"+url.PathEscape(id)+"/savepoints", nil, &resp)
	return SavepointsStatus{Total: resp.Total, Pending: resp.Pending, Savepoints: resp.Savepoints}, err
}

// SavepointsStatus is the savepoint listing in client form.
type SavepointsStatus struct {
	Total      int
	Pending    int
	Savepoints []SavepointRecord
}

// Trace fetches a job's trace (final once finished, live otherwise).
func (c *Client) Trace(id string) (controlloop.Trace, error) {
	var tr controlloop.Trace
	err := c.do(http.MethodGet, "/jobs/"+url.PathEscape(id)+"/trace", nil, &tr)
	return tr, err
}
