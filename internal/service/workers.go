package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// The worker registry is the rendezvous between streamrt worker
// processes and whoever deploys clusters onto them. Workers announce
// their control address at startup (POST /workers); a deployer lists
// the fleet (GET /workers), sorts by index, and hands the addresses
// to streamrt.NewCluster. The registry is deliberately dumb — no
// health checking, no leases — because the cluster coordinator owns
// liveness: a dead worker surfaces as a connection error at the next
// control round trip, with the job's name attached.

// WorkerInfo is one registered worker process.
type WorkerInfo struct {
	// ID is the worker's index in the cluster — the identity routing
	// tables and placements are computed against. Re-registering an
	// index replaces the previous address (a restarted worker).
	ID int `json:"id"`
	// Addr is the worker's control listener, host:port.
	Addr string `json:"addr"`
	// MetricsAddr is the worker's /metrics listener, host:port, if the
	// worker serves one. The coordinator's /metrics federates every
	// registered worker exposition under a worker="<id>" label (see
	// federate.go); empty opts the worker out of federation.
	MetricsAddr string `json:"metrics_addr,omitempty"`
}

// RegisterWorker records (or replaces) a worker's control address.
// It is the programmatic form of POST /workers.
func (s *Server) RegisterWorker(w WorkerInfo) error {
	if w.ID < 0 {
		return fmt.Errorf("worker id %d < 0", w.ID)
	}
	if w.Addr == "" {
		return fmt.Errorf("worker %d has no address", w.ID)
	}
	s.mu.Lock()
	s.workers[w.ID] = w
	s.mu.Unlock()
	return nil
}

// Workers lists registered workers sorted by index.
func (s *Server) Workers() []WorkerInfo {
	s.mu.Lock()
	out := make([]WorkerInfo, 0, len(s.workers))
	for _, w := range s.workers {
		out = append(out, w)
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// DeregisterWorker removes a worker by index.
func (s *Server) DeregisterWorker(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.workers[id]; !ok {
		return fmt.Errorf("no worker %d", id)
	}
	delete(s.workers, id)
	return nil
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var info WorkerInfo
	if err := s.decodeStrict(w, r, &info); err != nil {
		writeDecodeErr(w, fmt.Errorf("parsing worker info: %w", err))
		return
	}
	if err := s.RegisterWorker(info); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Workers())
}

func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("worker id: %w", err))
		return
	}
	if err := s.DeregisterWorker(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"id": id})
}
