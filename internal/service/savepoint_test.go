// Savepoint protocol acceptance: the request parks on the job, rides
// the poll response to the engine, and the settled outcome (path or
// error) is recorded and listed — with stale acks refused.
package service_test

import (
	"strings"
	"sync"
	"testing"

	"ds2/internal/controlloop"
	"ds2/internal/dataflow"
	"ds2/internal/metrics"
	"ds2/internal/service"
)

func savepointSpec() service.JobSpec {
	return service.JobSpec{
		Name:         "sp-test",
		Operators:    []service.JobOperator{{Name: "src"}, {Name: "op"}},
		Edges:        [][2]string{{"src", "op"}},
		Initial:      dataflow.Parallelism{"src": 1, "op": 1},
		Autoscaler:   service.AutoscalerDS2,
		IntervalSec:  1,
		MaxIntervals: 6,
	}
}

// spReporter is a minimal AttachedEngine: synthetic steady reports,
// no-op rescales, and a SavepointEngine implementation that counts
// the cuts.
type spReporter struct {
	mu         sync.Mutex
	reports    int
	savepoints int
}

func (e *spReporter) NextReport(intervalSec float64) (service.Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reports >= 6 {
		return service.Report{}, controlloop.ErrStopped
	}
	start := float64(e.reports) * intervalSec
	e.reports++
	return service.Report{
		Start: start,
		End:   start + intervalSec,
		Windows: []metrics.WindowMetrics{{
			ID:         metrics.InstanceID{Operator: "op", Index: 0},
			Window:     intervalSec,
			Processing: intervalSec / 2,
			Processed:  100,
			Pushed:     100,
		}},
		TargetRates:    map[string]float64{"src": 100},
		SourceObserved: map[string]float64{"src": 100},
		Parallelism:    dataflow.Parallelism{"src": 1, "op": 1},
	}, nil
}

func (e *spReporter) Rescale(p dataflow.Parallelism) (dataflow.Parallelism, error) {
	return p, nil
}

func (e *spReporter) Savepoint() (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.savepoints++
	return "/checkpoints/sp-1", nil
}

func TestSavepointEndpointLifecycle(t *testing.T) {
	_, client := newLoopback(t)
	id, err := client.Register(savepointSpec())
	if err != nil {
		t.Fatal(err)
	}

	seq, err := client.RequestSavepoint(id)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first savepoint seq = %d, want 1", seq)
	}
	// Re-requesting while one is in flight returns the pending seq
	// instead of stacking a second request.
	if again, err := client.RequestSavepoint(id); err != nil || again != 1 {
		t.Fatalf("re-request = (%d, %v), want the pending seq 1", again, err)
	}

	// The pending request rides the poll response.
	dec, err := client.PollAction(id, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SavepointSeq != 1 {
		t.Fatalf("poll SavepointSeq = %d, want 1", dec.SavepointSeq)
	}

	// A stale ack is refused.
	if err := client.SavepointDone(id, 7, "/x", nil); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("stale ack error = %v, want HTTP 409", err)
	}

	if err := client.SavepointDone(id, 1, "/checkpoints/sp-1", nil); err != nil {
		t.Fatal(err)
	}
	st, err := client.Savepoints(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 1 || st.Pending != 0 || len(st.Savepoints) != 1 {
		t.Fatalf("savepoints = %+v, want one settled record", st)
	}
	if r := st.Savepoints[0]; r.Seq != 1 || r.Path != "/checkpoints/sp-1" || r.Error != "" {
		t.Fatalf("record = %+v", r)
	}

	// A second request gets the next seq, and a failed cut is recorded
	// with its error.
	if seq, err = client.RequestSavepoint(id); err != nil || seq != 2 {
		t.Fatalf("second request = (%d, %v), want seq 2", seq, err)
	}
	if st, err = client.Savepoints(id); err != nil || st.Pending != 2 {
		t.Fatalf("pending = %d (%v), want 2", st.Pending, err)
	}
	if err := client.SavepointDone(id, 2, "", controlloop.ErrStopped); err != nil {
		t.Fatal(err)
	}
	if st, err = client.Savepoints(id); err != nil || st.Total != 2 || st.Savepoints[1].Error == "" {
		t.Fatalf("failed cut not recorded: %+v (%v)", st, err)
	}
}

// TestAttachedJobExecutesSavepointRequest drives the full Fig. 5 cycle:
// the request parked before the run is delivered through the driver's
// poll, executed by the engine, and settled back onto the service.
func TestAttachedJobExecutesSavepointRequest(t *testing.T) {
	_, client := newLoopback(t)
	spec := savepointSpec()
	id, err := client.Register(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestSavepoint(id); err != nil {
		t.Fatal(err)
	}

	eng := &spReporter{}
	attached := service.NewAttachedJob(client, eng, spec)
	attached.ID = id
	if _, err := attached.Run(); err != nil {
		t.Fatal(err)
	}

	if eng.savepoints != 1 {
		t.Fatalf("engine cut %d savepoints, want 1", eng.savepoints)
	}
	st, err := client.Savepoints(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 1 || st.Pending != 0 || st.Savepoints[0].Path != "/checkpoints/sp-1" || st.Savepoints[0].Error != "" {
		t.Fatalf("savepoints = %+v, want one clean record", st)
	}
}

// plainReporter has the AttachedEngine surface but deliberately NOT
// the Savepoint method (no embedding — promotion would smuggle it in):
// the attached driver must settle requests against it with an error
// rather than stalling them forever.
type plainReporter struct{ inner spReporter }

func (e *plainReporter) NextReport(intervalSec float64) (service.Report, error) {
	return e.inner.NextReport(intervalSec)
}

func (e *plainReporter) Rescale(p dataflow.Parallelism) (dataflow.Parallelism, error) {
	return p, nil
}

func TestAttachedJobWithoutSavepointSupportSettlesWithError(t *testing.T) {
	_, client := newLoopback(t)
	spec := savepointSpec()
	id, err := client.Register(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestSavepoint(id); err != nil {
		t.Fatal(err)
	}

	attached := service.NewAttachedJob(client, &plainReporter{}, spec)
	attached.ID = id
	if _, err := attached.Run(); err != nil {
		t.Fatal(err)
	}

	st, err := client.Savepoints(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 1 || st.Savepoints[0].Error == "" {
		t.Fatalf("savepoints = %+v, want one record settled with an error", st)
	}
}
