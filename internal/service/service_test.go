package service_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/dhalion"
	"ds2/internal/engine"
	"ds2/internal/service"
	"ds2/internal/wordcount"
)

// heronEngine builds the §5.2 Heron wordcount engine used by the
// parity tests — identical construction to the in-process experiment.
func heronEngine(t *testing.T) *engine.Engine {
	t.Helper()
	w, err := wordcount.Heron(0)
	if err != nil {
		t.Fatal(err)
	}
	initial := dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 1, wordcount.Count: 1}
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initial, engine.Config{
		Mode:          engine.ModeHeron,
		Tick:          0.05,
		QueueCapacity: 200_000,
		RedeployDelay: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func wordcountSpec(autoscaler string, maxIntervals int) service.JobSpec {
	return service.JobSpec{
		Name: "heron-wordcount",
		Operators: []service.JobOperator{
			{Name: wordcount.Source}, {Name: wordcount.FlatMap}, {Name: wordcount.Count},
		},
		Edges: [][2]string{
			{wordcount.Source, wordcount.FlatMap},
			{wordcount.FlatMap, wordcount.Count},
		},
		Initial:      dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 1, wordcount.Count: 1},
		Autoscaler:   autoscaler,
		IntervalSec:  60,
		MaxIntervals: maxIntervals,
	}
}

func newLoopback(t *testing.T) (*service.Server, *service.Client) {
	t.Helper()
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return srv, service.NewClient(ts.URL, ts.Client())
}

// TestServiceParityDS2 is the acceptance pin: the Heron wordcount job
// driven through ds2d over HTTP loopback must converge to the same
// final parallelism, in the same number of decisions, as the
// in-process EngineRuntime run — the trace printouts must match
// byte for byte.
func TestServiceParityDS2(t *testing.T) {
	// In-process reference: the exact §5.2 DS2 configuration, through
	// controlloop.EngineRuntime with synchronous settling.
	e := heronEngine(t)
	pol, err := core.NewPolicy(e.Graph(), core.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(pol, e.Parallelism(), core.ManagerConfig{
		WarmupIntervals:     0,
		ActivationIntervals: 1,
		TargetRateRatio:     1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	loop, err := controlloop.New(
		controlloop.NewEngineRuntime(e, true),
		controlloop.DS2Autoscaler(mgr),
		controlloop.Config{Interval: 60, MaxIntervals: 10})
	if err != nil {
		t.Fatal(err)
	}
	want, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Remote run: same engine construction, but the decision loop
	// lives behind the HTTP API and the engine is driven by
	// SimulatedJob with settling redeployments.
	_, client := newLoopback(t)
	got, err := service.NewSimulatedJob(client, heronEngine(t), wordcountSpec(service.AutoscalerDS2, 10), true).Run()
	if err != nil {
		t.Fatal(err)
	}

	if got.Decisions != want.Decisions {
		t.Errorf("decisions = %d, want %d", got.Decisions, want.Decisions)
	}
	if !got.Final.Equal(want.Final) {
		t.Errorf("final = %s, want %s", got.Final, want.Final)
	}
	if gs, ws := got.String(), want.String(); gs != ws {
		t.Errorf("trace mismatch:\n-- service --\n%s\n-- in-process --\n%s", gs, ws)
	}
	// The paper's headline: DS2 reaches the optimum (10 FlatMap,
	// 20 Count) — guard against both traces being identically wrong.
	if want.Final[wordcount.FlatMap] != 10 || want.Final[wordcount.Count] != 20 {
		t.Errorf("reference final = %s, want flatmap=10 count=20", want.Final)
	}
}

// TestServiceParityDhalion pins the Busy/ack path: Dhalion's
// non-settling redeployments ride through reported intervals, and the
// remote trace must still match the in-process one byte for byte.
func TestServiceParityDhalion(t *testing.T) {
	const maxIntervals = 50 // 3000 s horizon / 60 s interval, as in §5.2

	e := heronEngine(t)
	ctrl, err := dhalion.New(e.Graph(), dhalion.Config{})
	if err != nil {
		t.Fatal(err)
	}
	loop, err := controlloop.New(
		controlloop.NewEngineRuntime(e, false),
		dhalion.Autoscaler(ctrl),
		controlloop.Config{Interval: 60, MaxIntervals: maxIntervals, Done: ctrl.Converged})
	if err != nil {
		t.Fatal(err)
	}
	want, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}

	_, client := newLoopback(t)
	got, err := service.NewSimulatedJob(client, heronEngine(t), wordcountSpec(service.AutoscalerDhalion, maxIntervals), false).Run()
	if err != nil {
		t.Fatal(err)
	}

	if got.Decisions != want.Decisions {
		t.Errorf("decisions = %d, want %d", got.Decisions, want.Decisions)
	}
	if !got.Final.Equal(want.Final) {
		t.Errorf("final = %s, want %s", got.Final, want.Final)
	}
	if gs, ws := got.String(), want.String(); gs != ws {
		t.Errorf("trace mismatch:\n-- service --\n%s\n-- in-process --\n%s", gs, ws)
	}
}

// TestServiceJobLifecycle walks the registry API: register, list,
// status, report, deregister.
func TestServiceJobLifecycle(t *testing.T) {
	_, client := newLoopback(t)

	spec := wordcountSpec(service.AutoscalerHold, 1000)
	id, err := client.Register(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
	jobs, err := client.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != id || jobs[0].State != service.StateRunning {
		t.Fatalf("jobs = %+v", jobs)
	}

	// One interval's worth of reports flows through to the status.
	e := heronEngine(t)
	st := e.RunInterval(60)
	if _, err := client.Report(id, service.ReportFromStats(st, false)); err != nil {
		t.Fatal(err)
	}
	dec, err := client.PollAction(id, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Intervals != 1 || dec.Action != nil {
		t.Fatalf("decision = %+v (hold must not act)", dec)
	}
	status, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if status.Intervals != 1 || status.Decisions != 0 {
		t.Errorf("status = %+v", status)
	}

	tr, err := client.Deregister(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) != 1 {
		t.Errorf("final trace has %d intervals, want 1", len(tr.Intervals))
	}
	if _, err := client.Status(id); err == nil {
		t.Error("status of deregistered job succeeded")
	}
}

// TestServiceWorkerRegistry pins the worker rendezvous: streamrt
// worker processes announce their control addresses, a deployer lists
// them sorted by index, a restarted worker's re-registration replaces
// the stale address, and deregistration removes it.
func TestServiceWorkerRegistry(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := service.NewClient(ts.URL, nil)

	if err := client.RegisterWorker(service.WorkerInfo{ID: 1, Addr: "127.0.0.1:7101"}); err != nil {
		t.Fatal(err)
	}
	if err := client.RegisterWorker(service.WorkerInfo{ID: 0, Addr: "127.0.0.1:7100"}); err != nil {
		t.Fatal(err)
	}
	if err := client.RegisterWorker(service.WorkerInfo{ID: -1, Addr: "x"}); err == nil {
		t.Fatal("negative worker index registered")
	}
	if err := client.RegisterWorker(service.WorkerInfo{ID: 2}); err == nil {
		t.Fatal("addressless worker registered")
	}

	ws, err := client.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].ID != 0 || ws[1].ID != 1 || ws[0].Addr != "127.0.0.1:7100" {
		t.Fatalf("workers = %+v", ws)
	}

	// A restarted worker re-announces under the same index.
	if err := client.RegisterWorker(service.WorkerInfo{ID: 1, Addr: "127.0.0.1:7201"}); err != nil {
		t.Fatal(err)
	}
	ws, err = client.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[1].Addr != "127.0.0.1:7201" {
		t.Fatalf("workers after re-registration = %+v", ws)
	}

	if err := client.DeregisterWorker(0); err != nil {
		t.Fatal(err)
	}
	if err := client.DeregisterWorker(0); err == nil {
		t.Fatal("double deregistration succeeded")
	}
	ws, err = client.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].ID != 1 {
		t.Fatalf("workers after deregistration = %+v", ws)
	}
}

// TestServiceBackloggedRetryAfter pins the backpressure contract of
// the ingestion endpoint: when a job's decision loop is saturated (its
// report buffer full), POST /jobs/{id}/metrics answers 429 with a
// Retry-After header telling the reporter to back off for one policy
// interval — the rate at which the loop actually drains.
func TestServiceBackloggedRetryAfter(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{MaxPendingReports: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	client := service.NewClient(ts.URL, ts.Client())

	spec := wordcountSpec(service.AutoscalerHold, 10) // IntervalSec 60
	id, err := client.Register(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Tiny spans never cover the 60 s policy interval, so the decision
	// loop cannot drain the buffer between posts: the single slot
	// stays occupied and the second report must be turned away.
	post := func(start, end float64) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"start":%g,"end":%g}`, start, end)
		resp, err := http.Post(ts.URL+"/jobs/"+id+"/metrics", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp
	}
	if resp := post(0, 0.5); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first report: status %d, want 202", resp.StatusCode)
	}
	resp := post(0.5, 1)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated report: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "60" {
		t.Fatalf("Retry-After = %q, want %q (one policy interval)", got, "60")
	}

	// The typed client surfaces the same condition as ErrBacklogged so
	// reporters can back off programmatically.
	if _, err := client.Report(id, service.Report{Start: 1, End: 1.5}); !errors.Is(err, service.ErrBacklogged) {
		t.Fatalf("client report on saturated job: %v, want ErrBacklogged", err)
	}
}

// TestServiceRejectsBadInput covers the ingestion-side validation.
func TestServiceRejectsBadInput(t *testing.T) {
	_, client := newLoopback(t)

	if _, err := client.Register(service.JobSpec{}); err == nil {
		t.Error("empty spec registered")
	}
	spec := wordcountSpec("", 10)
	spec.Autoscaler = "magic"
	if _, err := client.Register(spec); err == nil {
		t.Error("unknown autoscaler registered")
	}

	id, err := client.Register(wordcountSpec(service.AutoscalerHold, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Report(id, service.Report{Start: 5, End: 5}); err == nil {
		t.Error("empty-span report accepted")
	}
	if _, err := client.Report("job-999", service.Report{Start: 0, End: 60}); err == nil {
		t.Error("report for unknown job accepted")
	}
	if err := client.Ack(id, 3, nil); err == nil {
		t.Error("ack with no pending action accepted")
	}
}

// TestServiceConcurrentJobs runs several simulated jobs against one
// server at once while other goroutines poll read endpoints — the
// race-detector workout for the whole service layer.
func TestServiceConcurrentJobs(t *testing.T) {
	srv, client := newLoopback(t)

	const jobs = 3
	var wg sync.WaitGroup
	finals := make([]dataflow.Parallelism, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sj := service.NewSimulatedJob(client, heronEngine(t), wordcountSpec(service.AutoscalerDS2, 6), true)
			tr, err := sj.Run()
			finals[i], errs[i] = tr.Final, err
		}(i)
	}
	// A reader goroutine hammers the read endpoints while the jobs
	// run, stopping once every job reaches a terminal state.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, j := range srv.Jobs() {
				_, _ = client.Status(j.ID)
				_, _ = client.Trace(j.ID)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for {
		js := srv.Jobs()
		terminal := 0
		for _, j := range js {
			if j.State != service.StateRunning {
				terminal++
			}
		}
		if len(js) == jobs && terminal == jobs {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	want := finals[0]
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if !finals[i].Equal(want) {
			t.Errorf("job %d final = %s, want %s", i, finals[i], want)
		}
	}
}

// TestServiceSubIntervalReports checks that reports finer than the
// policy interval aggregate into whole-interval decisions: four 15 s
// reports per 60 s interval still converge to the optimum.
func TestServiceSubIntervalReports(t *testing.T) {
	_, client := newLoopback(t)
	spec := wordcountSpec(service.AutoscalerDS2, 6)
	id, err := client.Register(spec)
	if err != nil {
		t.Fatal(err)
	}
	e := heronEngine(t)
	var lastSeq, reported int
	for cycle := 0; cycle < 6; cycle++ {
		for q := 0; q < 4; q++ {
			st := e.RunInterval(15)
			if _, err := client.Report(id, service.ReportFromStats(st, e.Paused())); err != nil {
				t.Fatal(err)
			}
		}
		reported++
		dec, err := client.PollAction(id, reported-1, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if act := dec.Action; act != nil && act.Seq != lastSeq {
			lastSeq = act.Seq
			if err := e.Rescale(act.New); err != nil {
				t.Fatal(err)
			}
			for e.Paused() {
				e.Run(1)
			}
			e.Collect()
			if err := client.Ack(id, act.Seq, e.Parallelism()); err != nil {
				t.Fatal(err)
			}
		}
		if dec.State != service.StateRunning {
			break
		}
	}
	status, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if status.Parallelism[wordcount.FlatMap] != 10 || status.Parallelism[wordcount.Count] != 20 {
		t.Errorf("parallelism = %s, want flatmap=10 count=20", status.Parallelism)
	}
}

// TestServiceRejectsOversizedBody pins the ingestion hardening: a POST
// body beyond ServerConfig.MaxRequestBytes is refused with 413 on
// every decoding endpoint, and neither the job registry nor a running
// job's decision state is touched by the rejected request.
func TestServiceRejectsOversizedBody(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{MaxRequestBytes: 2048})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})

	post := func(path string, body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	// A syntactically plausible JSON prefix followed by bulk, so the
	// rejection is provably the size cap and not a parse error.
	oversized := append([]byte(`{"name":"`), bytes.Repeat([]byte("x"), 64<<10)...)
	oversized = append(oversized, []byte(`"}`)...)

	if code := post("/jobs", oversized); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized register: status %d, want 413", code)
	}
	if jobs := srv.Jobs(); len(jobs) != 0 {
		t.Fatalf("oversized register left %d jobs in the registry", len(jobs))
	}

	client := service.NewClient(ts.URL, ts.Client())
	id, err := client.Register(wordcountSpec(service.AutoscalerHold, 10))
	if err != nil {
		t.Fatal(err)
	}
	before, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if code := post("/jobs/"+id+"/metrics", oversized); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized report: status %d, want 413", code)
	}
	if code := post("/jobs/"+id+"/acked", oversized); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ack: status %d, want 413", code)
	}
	after, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != service.StateRunning || after.Intervals != before.Intervals || after.Decisions != before.Decisions {
		t.Fatalf("oversized posts disturbed the job: before %+v, after %+v", before, after)
	}

	// A body right at the cap still decodes (the cap is a ceiling, not
	// an off-by-one trap): a small valid report goes through.
	st, err := client.Report(id, service.Report{
		Start: 0, End: 60,
		TargetRates:    map[string]float64{wordcount.Source: 1},
		SourceObserved: map[string]float64{wordcount.Source: 1},
		Parallelism:    dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 1, wordcount.Count: 1},
	})
	if err != nil {
		t.Fatalf("small report after oversized rejections: %v", err)
	}
	if st != service.StateRunning {
		t.Fatalf("job state %s after valid report, want running", st)
	}
}
