package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/dataflow"
	"ds2/internal/metrics"
	"ds2/internal/obs"
)

// JobState is the lifecycle of one registered job.
type JobState string

const (
	// StateRunning: the decision loop is live and consuming reports.
	StateRunning JobState = "running"
	// StateFinished: the loop completed (max intervals, stability, or
	// the autoscaler's convergence predicate).
	StateFinished JobState = "finished"
	// StateStopped: the job was deregistered before finishing.
	StateStopped JobState = "stopped"
	// StateFailed: the loop aborted on a policy or runtime error.
	StateFailed JobState = "failed"
)

// ServerConfig tunes the scaling service.
type ServerConfig struct {
	// HistoryLimit bounds each job's metrics.Repository (snapshots
	// retained). Values < 1 default to 256.
	HistoryLimit int
	// MaxPendingReports bounds each job's ingestion buffer. Values
	// < 1 default to 64.
	MaxPendingReports int
	// MaxPollWait caps the long-poll timeout a client may request.
	// Zero defaults to 30 s.
	MaxPollWait time.Duration
	// TraceLimit bounds the per-job retained trace intervals — a job
	// with an effectively unbounded horizon must not accrete memory in
	// a long-running daemon. Values < 1 default to 4096.
	TraceLimit int
	// MaxRequestBytes caps every request body the service decodes
	// (spec registrations, metrics reports, acks); an oversized POST
	// is rejected with 413 before it can balloon the daemon's heap.
	// Values < 1 default to 8 MiB — far above any sane report, which
	// even at hundreds of instances stays in the tens of KiB.
	MaxRequestBytes int64
	// AuditLimit bounds the per-job scaling-decision audit ring served
	// by GET /jobs/{id}/decisions. Values < 1 default to 256.
	AuditLimit int
	// RescaleLimit bounds the per-job retained rescale span timelines
	// served by GET /jobs/{id}/rescales. Values < 1 default to 64.
	RescaleLimit int
	// Metrics is the registry /metrics exposes. Nil creates a private
	// one; pass a shared registry to fold the service's families into
	// an embedding process's exposition (ds2-live does this).
	Metrics *obs.Registry
	// Logger receives one structured line per HTTP request (with a
	// request id) and job lifecycle events. Nil disables logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents.
	EnablePprof bool
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.HistoryLimit < 1 {
		c.HistoryLimit = 256
	}
	if c.MaxPendingReports < 1 {
		c.MaxPendingReports = 64
	}
	if c.MaxPollWait <= 0 {
		c.MaxPollWait = 30 * time.Second
	}
	if c.TraceLimit < 1 {
		c.TraceLimit = 4096
	}
	if c.MaxRequestBytes < 1 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.AuditLimit < 1 {
		c.AuditLimit = 256
	}
	if c.RescaleLimit < 1 {
		c.RescaleLimit = 64
	}
	return c
}

// job is one registered job: the runtime spanning the network
// boundary, its decision loop, and the loop's observable state.
type job struct {
	id   string
	seq  int // registration order, for stable listings
	spec JobSpec
	rt   *RemoteRuntime
	repo *metrics.Repository
	// audit retains the job's recent scaling decisions for
	// GET /jobs/{id}/decisions.
	audit *controlloop.AuditRing
	// policy is the spec's (defaulted) autoscaler name, the label
	// decision metrics are counted under.
	policy string

	done chan struct{} // closed when the decision loop exits

	mu        sync.Mutex
	state     JobState
	intervals []controlloop.Interval
	decisions int
	// convergedAt is the job time of the last applied action, tracked
	// here because the retained interval window is trimmed to
	// TraceLimit and may no longer contain it.
	convergedAt float64
	trace       controlloop.Trace // final, valid once done is closed
	failure     string
	// rescales holds the engine-reported rescale span timelines,
	// merged by trace ID (reports resend the engine's whole retained
	// ring, and an in-flight timeline is replaced by its completed
	// version); rescalesTotal counts distinct timelines ever seen.
	rescales      []obs.TraceView
	rescalesTotal int
	// savepoints records completed savepoint requests (oldest first,
	// bounded by RescaleLimit); savepointsTotal counts them all.
	savepoints      []SavepointRecord
	savepointsTotal int
}

// SavepointRecord is the server's record of one completed savepoint
// request: where the engine persisted it, or why it could not.
type SavepointRecord struct {
	Seq int `json:"seq"`
	// Path is the engine-reported location of the savepoint (a file
	// path, or a store-specific name); empty when the attempt failed.
	Path string `json:"path,omitempty"`
	// Error carries the engine-side failure, if any.
	Error string `json:"error,omitempty"`
}

// JobStatus is the wire form of one job's observable state.
type JobStatus struct {
	ID    string   `json:"id"`
	Name  string   `json:"name,omitempty"`
	State JobState `json:"state"`
	// Autoscaler echoes the spec's (defaulted) policy choice.
	Autoscaler string `json:"autoscaler"`
	// Parallelism is the configuration the service believes deployed.
	Parallelism dataflow.Parallelism `json:"parallelism"`
	// Intervals and Decisions count decided intervals and applied
	// actions so far.
	Intervals int `json:"intervals"`
	Decisions int `json:"decisions"`
	// Failure carries the loop error for StateFailed.
	Failure string `json:"failure,omitempty"`
}

// Server is the ds2d scaling service: a registry of jobs, each with a
// metrics ingestion buffer, a bounded snapshot repository, and a
// decision loop run by the shared controlloop.Controller.
type Server struct {
	cfg     ServerConfig
	mux     *http.ServeMux
	handler http.Handler
	obs     *serverObs
	reqID   atomic.Uint64

	mu      sync.Mutex
	jobs    map[string]*job
	workers map[int]WorkerInfo
	nextID  int
	// evictedGone accumulates snapshot evictions of deregistered jobs
	// so the exported counter stays monotone.
	evictedGone int
}

// NewServer creates the service.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		jobs:    make(map[string]*job),
		workers: make(map[int]WorkerInfo),
	}
	s.obs = newServerObs(s, s.cfg.Metrics, s.cfg.Logger)
	s.mux = http.NewServeMux()
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"GET /healthz", s.handleHealth},
		{"GET /metrics", s.handleMetricsPage},
		{"POST /jobs", s.handleRegister},
		{"GET /jobs", s.handleList},
		{"GET /jobs/{id}", s.handleStatus},
		{"DELETE /jobs/{id}", s.handleDeregister},
		{"POST /jobs/{id}/metrics", s.handleMetrics},
		{"GET /jobs/{id}/action", s.handleAction},
		{"POST /jobs/{id}/acked", s.handleAcked},
		{"POST /jobs/{id}/savepoint", s.handleSavepointRequest},
		{"POST /jobs/{id}/savepointed", s.handleSavepointed},
		{"GET /jobs/{id}/savepoints", s.handleSavepoints},
		{"GET /jobs/{id}/trace", s.handleTrace},
		{"GET /jobs/{id}/snapshots", s.handleSnapshots},
		{"GET /jobs/{id}/decisions", s.handleDecisions},
		{"GET /jobs/{id}/rescales", s.handleRescales},
		{"POST /workers", s.handleWorkerRegister},
		{"GET /workers", s.handleWorkerList},
		{"DELETE /workers/{id}", s.handleWorkerDeregister},
	}
	patterns := make([]string, 0, len(routes))
	for _, r := range routes {
		s.mux.HandleFunc(r.pattern, r.h)
		patterns = append(patterns, r.pattern)
	}
	s.obs.initRoutes(patterns)
	if s.cfg.EnablePprof {
		s.registerPprof()
	}
	s.handler = s.middleware(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Metrics returns the registry the service records into (the one
// /metrics exposes).
func (s *Server) Metrics() *obs.Registry {
	return s.obs.reg
}

// Register validates a spec, starts its decision loop, and returns the
// job id. It is the programmatic form of POST /jobs.
func (s *Server) Register(spec JobSpec) (string, error) {
	g, as, cfg, err := spec.build()
	if err != nil {
		return "", err
	}
	repo := metrics.NewRepository(s.cfg.HistoryLimit)
	rt := NewRemoteRuntime(g, spec.Initial, repo, s.cfg.MaxPendingReports)

	policy := spec.Autoscaler
	if policy == "" {
		policy = AutoscalerDS2
	}
	j := &job{
		spec:   spec,
		rt:     rt,
		repo:   repo,
		audit:  controlloop.NewAuditRing(s.cfg.AuditLimit),
		policy: policy,
		done:   make(chan struct{}),
		state:  StateRunning,
	}
	cfg.TraceLimit = s.cfg.TraceLimit
	cfg.OnInterval = func(iv controlloop.Interval) {
		j.mu.Lock()
		j.intervals = append(j.intervals, iv)
		if len(j.intervals) > s.cfg.TraceLimit {
			j.intervals = j.intervals[len(j.intervals)-s.cfg.TraceLimit:]
		}
		if iv.Action != "" {
			j.decisions++
			j.convergedAt = iv.Time
		}
		j.mu.Unlock()
		verdict := iv.Action
		if verdict == "" {
			verdict = "hold"
		}
		s.obs.interval(policy, verdict)
		rt.NoteInterval()
	}
	// The runtime parks actions for the engine to poll and ack, so a
	// fresh decision starts pending; the ack path below settles it.
	cfg.OnDecision = func(d controlloop.Decision) {
		d.Outcome = controlloop.OutcomePendingAck
		j.audit.Append(d)
		s.obs.decision(policy, d.Kind)
	}
	ctrl, err := controlloop.New(rt, as, cfg)
	if err != nil {
		return "", err
	}

	s.mu.Lock()
	s.nextID++
	j.seq = s.nextID
	j.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[j.id] = j
	s.mu.Unlock()

	go func() {
		tr, err := ctrl.Run()
		// The loop is done: stop accepting reports so late reporters
		// get ErrStopped instead of silently filling the buffer.
		rt.Close()
		j.mu.Lock()
		j.trace = tr
		switch {
		case err == nil:
			j.state = StateFinished
		case errors.Is(err, controlloop.ErrStopped):
			j.state = StateStopped
		default:
			j.state = StateFailed
			j.failure = err.Error()
		}
		j.mu.Unlock()
		if s.obs.log != nil {
			s.obs.log.Info("job done", "job", j.id, "state", j.stateNow(),
				"intervals", rt.Intervals(), "decisions", j.audit.Total())
		}
		close(j.done)
	}()
	if s.obs.log != nil {
		s.obs.log.Info("job registered", "job", j.id, "name", spec.Name, "autoscaler", policy)
	}
	return j.id, nil
}

// Deregister stops a job's decision loop and removes it from the
// registry, returning its final trace.
func (s *Server) Deregister(id string) (controlloop.Trace, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if ok {
		delete(s.jobs, id)
		s.noteRemovedLocked(j)
	}
	s.mu.Unlock()
	if !ok {
		return controlloop.Trace{}, fmt.Errorf("service: unknown job %q", id)
	}
	j.rt.Close()
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace, nil
}

// Job returns a job's status.
func (s *Server) Job(id string) (JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	return j.status(), nil
}

// Jobs lists all registered jobs in registration order (ids are
// "job-N", so a lexicographic sort would misplace job-10 before
// job-2).
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	sort.Slice(js, func(i, k int) bool { return js[i].seq < js[k].seq })
	out := make([]JobStatus, 0, len(js))
	for _, j := range js {
		out = append(out, j.status())
	}
	return out
}

func (s *Server) lookup(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	return j, nil
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	as := j.spec.Autoscaler
	if as == "" {
		as = AutoscalerDS2
	}
	return JobStatus{
		ID:          j.id,
		Name:        j.spec.Name,
		State:       j.state,
		Autoscaler:  as,
		Parallelism: j.rt.Parallelism(),
		// The runtime's counter, not len(j.intervals): the retained
		// trace is trimmed to TraceLimit but the count never resets.
		Intervals: j.rt.Intervals(),
		Decisions: j.decisions,
		Failure:   j.failure,
	}
}

// liveTrace returns the final trace once the loop exited, or a trace
// built from the intervals recorded so far.
func (j *job) liveTrace() controlloop.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.done:
		return j.trace
	default:
	}
	return controlloop.Trace{
		Intervals:   append([]controlloop.Interval(nil), j.intervals...),
		Decisions:   j.decisions,
		ConvergedAt: j.convergedAt,
		Final:       j.rt.Parallelism(),
	}
}

// --- HTTP handlers ------------------------------------------------------

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// decodeStrict decodes a request body under the configured size cap.
// MaxBytesReader both truncates the read and closes the connection on
// overflow, so a single oversized POST can neither balloon the heap
// nor keep streaming.
func (s *Server) decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeDecodeErr maps a decodeStrict failure to its status: 413 for a
// body over the cap, 400 for malformed JSON.
func writeDecodeErr(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	writeErr(w, http.StatusBadRequest, err)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Readiness payload. The contract older probes rely on — 200 with
	// "status" and "jobs" fields — is preserved; everything else is
	// additive.
	body := map[string]any{
		"status":         "ok",
		"jobs":           0,
		"uptime_seconds": time.Since(s.obs.start).Seconds(),
	}
	s.mu.Lock()
	body["jobs"] = len(s.jobs)
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	states := map[JobState]int{}
	for _, j := range js {
		states[j.stateNow()]++
	}
	body["job_states"] = states
	if goVersion, revision := buildInfo(); goVersion != "" {
		body["go_version"] = goVersion
		if revision != "" {
			body["revision"] = revision
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := s.decodeStrict(w, r, &spec); err != nil {
		writeDecodeErr(w, fmt.Errorf("parsing job spec: %w", err))
		return
	}
	id, err := s.Register(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	tr, err := s.Deregister(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var rep Report
	if err := s.decodeStrict(w, r, &rep); err != nil {
		s.obs.reportOutcome("malformed")
		writeDecodeErr(w, fmt.Errorf("parsing report: %w", err))
		return
	}
	// Rescale timelines are merged even when ingestion rejects the
	// report: a backlogged buffer or a stopped loop says nothing about
	// the timelines' validity, and dropping them would lose the
	// completion of a trace first delivered in flight.
	j.mergeRescales(rep.Rescales, s.cfg.RescaleLimit)
	switch err := j.rt.Ingest(rep); {
	case err == nil:
		s.obs.reports.Inc()
		s.obs.windows.Add(uint64(len(rep.Windows)))
		writeJSON(w, http.StatusAccepted, map[string]any{"state": j.stateNow()})
	case errors.Is(err, ErrBacklogged):
		// The decision loop is saturated: its buffer already holds
		// more reports than it has consumed. Tell the reporter when
		// trying again is useful — the loop drains one policy
		// interval's worth per evaluation, so one interval (floored
		// at 1s, the header's resolution) is the natural backoff.
		s.obs.reportOutcome("backlogged")
		retry := int(math.Ceil(j.spec.IntervalSec))
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, controlloop.ErrStopped):
		// The loop is done; tell the reporter so it stops sending.
		s.obs.reportOutcome("stopped")
		writeJSON(w, http.StatusConflict, map[string]any{"state": j.stateNow()})
	default:
		s.obs.reportOutcome("invalid")
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (j *job) stateNow() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// actionResponse is the poll endpoint's body.
type actionResponse struct {
	// Action is the pending scaling command, if any.
	Action *ActionEnvelope `json:"action,omitempty"`
	// State is the job's lifecycle state.
	State JobState `json:"state"`
	// Intervals is the number of fully decided policy intervals;
	// pass it back as ?seen= to long-poll for the next decision.
	Intervals int `json:"intervals"`
	// SavepointSeq is the pending savepoint request's sequence number
	// (0 when none): the engine takes the savepoint and settles it via
	// POST /jobs/{id}/savepointed.
	SavepointSeq int `json:"savepoint_seq,omitempty"`
}

func (s *Server) handleAction(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	q := r.URL.Query()
	wait := time.Duration(0)
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad wait_ms %q", ms))
			return
		}
		wait = time.Duration(n) * time.Millisecond
	}
	if wait > s.cfg.MaxPollWait {
		wait = s.cfg.MaxPollWait
	}
	seen := -1
	if sv := q.Get("seen"); sv != "" {
		n, err := strconv.Atoi(sv)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad seen %q", sv))
			return
		}
		seen = n
	}
	var act *ActionEnvelope
	var intervals int
	if wait > 0 {
		act, intervals = j.rt.WaitDecision(seen, wait)
	} else {
		act, intervals = j.rt.Pending(), j.rt.Intervals()
	}
	writeJSON(w, http.StatusOK, actionResponse{
		Action:       act,
		State:        j.stateNow(),
		Intervals:    intervals,
		SavepointSeq: j.rt.PendingSavepoint(),
	})
}

// handleSavepointRequest (POST /jobs/{id}/savepoint) asks the job's
// engine for a durable savepoint. The request is asynchronous: it is
// parked for the engine's next action poll; the outcome lands in
// GET /jobs/{id}/savepoints once the engine reports back.
func (s *Server) handleSavepointRequest(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	seq, err := j.rt.RequestSavepoint()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"seq": seq, "state": j.stateNow()})
}

// savepointedRequest is the engine's completion report for a savepoint
// request.
type savepointedRequest struct {
	Seq   int    `json:"seq"`
	Path  string `json:"path,omitempty"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleSavepointed(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req savepointedRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeDecodeErr(w, fmt.Errorf("parsing savepoint completion: %w", err))
		return
	}
	if err := j.rt.AckSavepoint(req.Seq); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	j.mu.Lock()
	j.savepoints = append(j.savepoints, SavepointRecord{Seq: req.Seq, Path: req.Path, Error: req.Error})
	j.savepointsTotal++
	if len(j.savepoints) > s.cfg.RescaleLimit {
		j.savepoints = j.savepoints[len(j.savepoints)-s.cfg.RescaleLimit:]
	}
	j.mu.Unlock()
	if s.obs.log != nil {
		s.obs.log.Info("savepoint settled", "job", j.id, "seq", req.Seq, "path", req.Path, "error", req.Error)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// savepointsResponse is the savepoint listing's body.
type savepointsResponse struct {
	// Total counts savepoints ever settled; Pending is the in-flight
	// request's seq (0 when none); Savepoints holds the retained tail
	// (oldest first), bounded by ServerConfig.RescaleLimit.
	Total      int               `json:"total"`
	Pending    int               `json:"pending,omitempty"`
	Savepoints []SavepointRecord `json:"savepoints"`
}

func (s *Server) handleSavepoints(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	j.mu.Lock()
	resp := savepointsResponse{
		Total:      j.savepointsTotal,
		Savepoints: append([]SavepointRecord(nil), j.savepoints...),
	}
	j.mu.Unlock()
	resp.Pending = j.rt.PendingSavepoint()
	writeJSON(w, http.StatusOK, resp)
}

// ackRequest is the ack endpoint's body.
type ackRequest struct {
	Seq int `json:"seq"`
	// Applied is the configuration the engine actually deployed;
	// omitted means the action's target.
	Applied dataflow.Parallelism `json:"applied,omitempty"`
}

func (s *Server) handleAcked(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var ack ackRequest
	if err := s.decodeStrict(w, r, &ack); err != nil {
		writeDecodeErr(w, fmt.Errorf("parsing ack: %w", err))
		return
	}
	if err := j.rt.Ack(ack.Seq, ack.Applied); err != nil {
		// Stale seq is a state conflict (refetch the action and
		// retry); anything else — e.g. an applied config that fails
		// validation — is a malformed request.
		code := http.StatusBadRequest
		if errors.Is(err, ErrStaleAck) {
			code = http.StatusConflict
		}
		writeErr(w, code, err)
		return
	}
	// The decision's audit seq equals the envelope seq (both count
	// applied actions 1-based), so the ack settles the audit entry.
	j.audit.ResolveAck(ack.Seq, ack.Applied)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decisionsResponse is the audit endpoint's body.
type decisionsResponse struct {
	// Total counts decisions ever made; Decisions holds the retained
	// tail (oldest first), bounded by ServerConfig.AuditLimit.
	Total     int                    `json:"total"`
	Decisions []controlloop.Decision `json:"decisions"`
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ds := j.audit.Decisions()
	if nv := r.URL.Query().Get("n"); nv != "" {
		n, err := strconv.Atoi(nv)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q", nv))
			return
		}
		if n >= 0 && n < len(ds) {
			ds = ds[len(ds)-n:]
		}
	}
	writeJSON(w, http.StatusOK, decisionsResponse{Total: j.audit.Total(), Decisions: ds})
}

// mergeRescales folds engine-reported rescale timelines into the job's
// record: replace by trace ID, else append, trimmed to limit oldest
// first.
func (j *job) mergeRescales(vs []obs.TraceView, limit int) {
	if len(vs) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, v := range vs {
		replaced := false
		for i := range j.rescales {
			if j.rescales[i].ID == v.ID {
				j.rescales[i] = v
				replaced = true
				break
			}
		}
		if !replaced {
			j.rescales = append(j.rescales, v)
			j.rescalesTotal++
		}
	}
	if len(j.rescales) > limit {
		j.rescales = j.rescales[len(j.rescales)-limit:]
	}
}

// rescalesResponse is the rescale-timeline endpoint's body.
type rescalesResponse struct {
	// Total counts timelines ever reported; Rescales holds the
	// retained tail (oldest first), bounded by
	// ServerConfig.RescaleLimit.
	Total    int             `json:"total"`
	Rescales []obs.TraceView `json:"rescales"`
}

func (s *Server) handleRescales(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	j.mu.Lock()
	resp := rescalesResponse{
		Total:    j.rescalesTotal,
		Rescales: append([]obs.TraceView(nil), j.rescales...),
	}
	j.mu.Unlock()
	if nv := r.URL.Query().Get("n"); nv != "" {
		n, err := strconv.Atoi(nv)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q", nv))
			return
		}
		if n >= 0 && n < len(resp.Rescales) {
			resp.Rescales = resp.Rescales[len(resp.Rescales)-n:]
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.liveTrace())
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	n := 0
	if nv := r.URL.Query().Get("n"); nv != "" {
		if n, err = strconv.Atoi(nv); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q", nv))
			return
		}
	}
	writeJSON(w, http.StatusOK, j.repo.History(n))
}

// Close deregisters every job, stopping all decision loops.
func (s *Server) Close() {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for id, j := range s.jobs {
		js = append(js, j)
		delete(s.jobs, id)
		s.noteRemovedLocked(j)
	}
	s.mu.Unlock()
	for _, j := range js {
		j.rt.Close()
		<-j.done
	}
}
