package service

import (
	"fmt"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
)

// SimulatedJob runs the streaming-engine simulator as a remote job
// under a ds2d scaling service: it registers the job, then plays the
// engine side of Fig. 5 — run one policy interval, report the
// interval's instrumentation, poll for a scaling command, apply it
// via the engine's rescale API, and ack the redeployment.
//
// With Settle, a rescale's savepoint/restore pause is run out
// synchronously and the polluted partial metric window discarded
// before acking (the Flink-style integration, §4.1); this mode is the
// AttachedEngine contract, so it delegates to the shared AttachedJob
// driver. Without it the action stays unacked while the pause rides
// through subsequent reported intervals, which the service observes
// as Busy (Heron's slow redeployments, §5.2). Both mirror the
// corresponding controlloop.EngineRuntime settle modes exactly, which
// is what the decision-parity tests pin.
type SimulatedJob struct {
	// PollWait bounds each action long-poll (default 10 s).
	PollWait time.Duration
	// ID is the assigned job id, set by Run after registration.
	ID string

	client *Client
	eng    *engine.Engine
	spec   JobSpec
	settle bool
}

// NewSimulatedJob wires an engine to a scaling service client.
func NewSimulatedJob(c *Client, e *engine.Engine, spec JobSpec, settle bool) *SimulatedJob {
	return &SimulatedJob{client: c, eng: e, spec: spec, settle: settle}
}

// settledSim adapts the simulator's settle mode to AttachedEngine:
// Rescale runs the savepoint/restore pause out and discards the
// polluted partial window, so every report covers a clean interval.
type settledSim struct {
	eng *engine.Engine
}

// NextReport implements AttachedEngine.
func (s settledSim) NextReport(intervalSec float64) (Report, error) {
	st := s.eng.RunInterval(intervalSec)
	return ReportFromStats(st, s.eng.Paused()), nil
}

// Rescale implements AttachedEngine.
func (s settledSim) Rescale(p dataflow.Parallelism) (dataflow.Parallelism, error) {
	if err := s.eng.Rescale(p); err != nil {
		return nil, err
	}
	for s.eng.Paused() {
		s.eng.Run(1)
	}
	s.eng.Collect() // discard the polluted partial window
	return s.eng.Parallelism(), nil
}

// Run registers the job and drives it until the service finishes the
// decision loop, returning the service-side trace. ID holds the
// assigned job id from the moment registration completes.
func (sj *SimulatedJob) Run() (controlloop.Trace, error) {
	id, err := sj.client.Register(sj.spec)
	if err != nil {
		return controlloop.Trace{}, err
	}
	sj.ID = id

	if sj.settle {
		aj := NewAttachedJob(sj.client, settledSim{eng: sj.eng}, sj.spec)
		aj.PollWait = sj.PollWait
		aj.ID = id // already registered above
		return aj.Run()
	}

	pollWait := sj.PollWait
	if pollWait <= 0 {
		pollWait = 10 * time.Second
	}

	var pendingSeq, lastSeq, reported int
	// The loop is bounded defensively: the service finishes after
	// MaxIntervals reports at the latest, busy ones included.
	for cycle := 0; cycle < sj.spec.MaxIntervals+16; cycle++ {
		st := sj.eng.RunInterval(sj.spec.IntervalSec)
		// A non-settling redeployment that completed during this
		// interval is acked before the interval's report goes out —
		// the moment a real engine would announce the restore done.
		// The service then observes the interval with the pause
		// already cleared, exactly as the in-process loop does.
		if pendingSeq != 0 && !sj.eng.Paused() {
			if err := sj.client.Ack(id, pendingSeq, sj.eng.Parallelism()); err != nil {
				return controlloop.Trace{}, err
			}
			pendingSeq = 0
		}
		state, err := sj.client.Report(id, ReportFromStats(st, sj.eng.Paused()))
		if err != nil {
			return controlloop.Trace{}, err
		}
		if state != StateRunning {
			break
		}
		reported++

		dec, err := sj.client.PollAction(id, reported-1, pollWait)
		if err != nil {
			return controlloop.Trace{}, err
		}
		if act := dec.Action; act != nil && act.Seq != lastSeq {
			lastSeq = act.Seq
			if err := sj.eng.Rescale(act.New); err != nil {
				return controlloop.Trace{}, fmt.Errorf("service: applying action %d: %w", act.Seq, err)
			}
			pendingSeq = act.Seq
		}
		if dec.State != StateRunning {
			break
		}
	}
	return sj.client.Trace(id)
}
