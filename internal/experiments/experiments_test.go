// Integration tests: every experiment must reproduce the paper's
// qualitative result (who wins, by roughly what factor, where the
// crossovers fall). EXPERIMENTS.md records the exact measured rows.
package experiments

import (
	"strings"
	"testing"
)

func TestFig6WordcountComparison(t *testing.T) {
	r, err := RunWordcountComparison()
	if err != nil {
		t.Fatal(err)
	}
	// §5.2 headline: DS2 finds the exact optimum (10 FlatMap, 20
	// Count) in ONE decision after one 60s interval of metrics.
	if r.DS2.Decisions != 1 {
		t.Errorf("DS2 decisions = %d, want 1", r.DS2.Decisions)
	}
	if !r.DS2.Final.Equal(r.Optimal) {
		t.Errorf("DS2 final = %v, want optimal %v", r.DS2.Final, r.Optimal)
	}
	if r.DS2.ConvergedAt < 59 || r.DS2.ConvergedAt > 61 {
		t.Errorf("DS2 converged at %v, want 60s", r.DS2.ConvergedAt)
	}
	// Dhalion: many single-operator speculative steps, an order of
	// magnitude slower, over-provisioned final configuration.
	if r.Dhalion.Decisions < 5 {
		t.Errorf("Dhalion decisions = %d, want >= 5", r.Dhalion.Decisions)
	}
	if r.Dhalion.ConvergedAt < 10*r.DS2.ConvergedAt {
		t.Errorf("Dhalion converged at %v, want >= 10x DS2's %v", r.Dhalion.ConvergedAt, r.DS2.ConvergedAt)
	}
	fm, cnt := r.Dhalion.Final["flatmap"], r.Dhalion.Final["count"]
	if fm <= r.Optimal["flatmap"] || cnt <= r.Optimal["count"] {
		t.Errorf("Dhalion final %v not over-provisioned vs %v", r.Dhalion.Final, r.Optimal)
	}
	// Both eventually sustain the target.
	last := r.Dhalion.Last()
	if last.Achieved < last.Target*0.98 {
		t.Errorf("Dhalion final throughput %v < target %v", last.Achieved, last.Target)
	}
}

func TestFig7DynamicScaling(t *testing.T) {
	r, err := RunDynamicScaling()
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 needs multiple scale-ups from (10, 5) to ~(19, 11-12).
	fm1, cnt1 := r.Phase1Final["flatmap"], r.Phase1Final["count"]
	if fm1 < 18 || fm1 > 21 {
		t.Errorf("phase 1 flatmap = %d, want ~19", fm1)
	}
	if cnt1 < 10 || cnt1 > 13 {
		t.Errorf("phase 1 count = %d, want ~11", cnt1)
	}
	// Phase 2 scales down to roughly the half-rate optimum (7-8, 5-6).
	fm2, cnt2 := r.Phase2Final["flatmap"], r.Phase2Final["count"]
	if fm2 < 7 || fm2 > 10 {
		t.Errorf("phase 2 flatmap = %d, want ~7-8", fm2)
	}
	if cnt2 < 5 || cnt2 > 7 {
		t.Errorf("phase 2 count = %d, want ~5-6", cnt2)
	}
	if fm2 >= fm1 {
		t.Errorf("no scale-down: %d -> %d", fm1, fm2)
	}
	// Bounded number of reconfigurations in 1200s (stability).
	if r.Timeline.Decisions > 6 {
		t.Errorf("decisions = %d, want <= 6", r.Timeline.Decisions)
	}
	// Phase 2 steady state sustains the reduced target.
	last := r.Timeline.Last()
	if last.Achieved < last.Target*0.98 {
		t.Errorf("final throughput %v < target %v", last.Achieved, last.Target)
	}
}

func TestTable3Rates(t *testing.T) {
	r, err := RunRatesTable()
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check Table 3 cells.
	if got := r.Rows["q1"]["flink"]["bids"]; got != 4_000_000 {
		t.Errorf("q1 flink bids = %v", got)
	}
	if got := r.Rows["q1"]["timely"]["bids"]; got != 5_000_000 {
		t.Errorf("q1 timely bids = %v", got)
	}
	if got := r.Rows["q8"]["flink"]["auctions"]; got != 420_000 {
		t.Errorf("q8 flink auctions = %v", got)
	}
	if got := r.Rows["q3"]["timely"]["persons"]; got != 800_000 {
		t.Errorf("q3 timely persons = %v", got)
	}
	if !strings.Contains(r.String(), "q11\tflink\tbids\t1000000") {
		t.Error("table rendering missing q11 row")
	}
}

func TestTable4Convergence(t *testing.T) {
	r, err := RunConvergenceTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 36 {
		t.Fatalf("cells = %d, want 36", len(r.Cells))
	}
	oneStep := 0
	for _, c := range r.Cells {
		// §5.4 headline: at most three steps everywhere.
		if len(c.Steps) > 3 {
			t.Errorf("%s from %d took %d steps: %v", c.Query, c.Initial, len(c.Steps), c.Steps)
		}
		ind := r.Indicated[c.Query]
		// Finals land on the indicated optimum, at most one instance
		// above it (sub-linear scaling measured from above biases the
		// fixpoint up by one; see EXPERIMENTS.md).
		if c.Final < ind || c.Final > ind+1 {
			t.Errorf("%s from %d ended at %d, want %d..%d", c.Query, c.Initial, c.Final, ind, ind+1)
		}
		// From far below, DS2 lands exactly on the optimum.
		if c.Initial == 8 && c.Final != ind {
			t.Errorf("%s from 8 ended at %d, want exactly %d", c.Query, c.Initial, ind)
		}
		if len(c.Steps) == 1 {
			oneStep++
		}
	}
	if r.MaxSteps > 3 {
		t.Errorf("max steps = %d", r.MaxSteps)
	}
	if oneStep < 5 {
		t.Errorf("only %d one-step cells; expected many (paper: 19/36)", oneStep)
	}
}

func TestFig8Accuracy(t *testing.T) {
	r, err := RunAccuracy(nil)
	if err != nil {
		t.Fatal(err)
	}
	byQuery := map[string][]AccuracyRow{}
	for _, row := range r.Rows {
		byQuery[row.Query] = append(byQuery[row.Query], row)
	}
	for q, rows := range byQuery {
		var atInd *AccuracyRow
		for i := range rows {
			if rows[i].Indicated {
				atInd = &rows[i]
			}
		}
		if atInd == nil {
			t.Fatalf("%s: no indicated row", q)
		}
		// The indicated parallelism sustains the source rate...
		if atInd.Achieved < atInd.Target*0.98 {
			t.Errorf("%s: indicated config achieves %v of %v", q, atInd.Achieved, atInd.Target)
		}
		for _, row := range rows {
			// ...every configuration below it does not...
			if row.Parallelism < atInd.Parallelism && row.Achieved >= row.Target*0.995 {
				t.Errorf("%s: p=%d already sustains the target (%v)", q, row.Parallelism, row.Achieved)
			}
			// ...and higher parallelism does not improve latency
			// enough to justify the resources (paper: "further
			// increasing the parallelism does not significantly
			// improve latency").
			if row.Parallelism > atInd.Parallelism && atInd.Latency.P99 > 0.01 &&
				row.Latency.P99 < atInd.Latency.P99*0.5 {
				t.Errorf("%s: p=%d halves p99 latency (%v -> %v); indicated config not accurate",
					q, row.Parallelism, atInd.Latency.P99, row.Latency.P99)
			}
		}
	}
}

func TestFig9TimelyLatency(t *testing.T) {
	r, err := RunTimelyLatency(nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	byQuery := map[string][]TimelyRow{}
	for _, row := range r.Rows {
		byQuery[row.Query] = append(byQuery[row.Query], row)
	}
	for q, rows := range byQuery {
		var atInd, below *TimelyRow
		for i := range rows {
			if rows[i].Indicated {
				atInd = &rows[i]
			}
			if rows[i].Workers == rows[0].Workers && i == 0 {
				below = &rows[i]
			}
		}
		if atInd == nil {
			t.Fatalf("%s: no indicated row", q)
		}
		// §5.5: the indicated worker count is 4 for all queries.
		if atInd.Workers != 4 {
			t.Errorf("%s: indicated workers = %d, want 4", q, atInd.Workers)
		}
		// At the indicated count, (almost) all epochs complete and
		// most are on time; below it, the system falls behind badly.
		if float64(atInd.EpochsCompleted) < 0.95*float64(atInd.EpochsTotal) {
			t.Errorf("%s: only %d/%d epochs completed at indicated count",
				q, atInd.EpochsCompleted, atInd.EpochsTotal)
		}
		if atInd.OnTimeFraction < 0.5 {
			t.Errorf("%s: on-time fraction %v at indicated count", q, atInd.OnTimeFraction)
		}
		if below != nil && !below.Indicated {
			if below.OnTimeFraction > 0.3 {
				t.Errorf("%s: under-provisioned (%d workers) still %v on-time",
					q, below.Workers, below.OnTimeFraction)
			}
		}
	}
}

func TestFig10Overhead(t *testing.T) {
	r, err := RunOverhead(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper bounds: at most 13% on Flink, at most 20% on Timely;
		// allow a little slack plus quantization noise around zero.
		limit := 16.0
		if row.System == "timely" {
			limit = 25.0
		}
		if row.OverheadPct > limit || row.OverheadPct < -8 {
			t.Errorf("%s/%s overhead %.1f%% outside [-8%%, %.0f%%]",
				row.Query, row.System, row.OverheadPct, limit)
		}
	}
}

func TestSkewBehaviour(t *testing.T) {
	r, err := RunSkew()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3 {
		t.Fatalf("results = %d", len(r.Results))
	}
	for _, res := range r.Results {
		// §4.2.3: bounded decisions, converges to the no-skew optimum,
		// does NOT over-provision, does NOT meet the target.
		if res.Decisions > 3 {
			t.Errorf("skew %v: %d decisions", res.Skew, res.Decisions)
		}
		if !res.Final.Equal(res.NoSkewOptimal) {
			t.Errorf("skew %v: final %v != no-skew optimal %v", res.Skew, res.Final, res.NoSkewOptimal)
		}
		if res.Achieved >= res.Target*0.9 {
			t.Errorf("skew %v: achieved %v suspiciously close to target %v", res.Skew, res.Achieved, res.Target)
		}
	}
	// More skew, less throughput.
	if !(r.Results[0].Achieved > r.Results[1].Achieved && r.Results[1].Achieved > r.Results[2].Achieved) {
		t.Errorf("achieved not decreasing in skew: %v %v %v",
			r.Results[0].Achieved, r.Results[1].Achieved, r.Results[2].Achieved)
	}
}

func TestBaselineComparison(t *testing.T) {
	r, err := RunBaselines()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BaselineRow{}
	for _, row := range r.Rows {
		byName[row.Controller] = row
	}
	ds2, dh, qu := byName["ds2"], byName["dhalion"], byName["queueing"]
	if ds2.Decisions != 1 {
		t.Errorf("ds2 decisions = %d", ds2.Decisions)
	}
	if dh.Decisions <= ds2.Decisions*3 {
		t.Errorf("dhalion decisions = %d, want many more than ds2", dh.Decisions)
	}
	if qu.Decisions <= dh.Decisions {
		t.Errorf("queueing decisions = %d, want more than dhalion's %d (slow observed-rate climb)",
			qu.Decisions, dh.Decisions)
	}
	// Resource efficiency: DS2 minimal, others over-provisioned.
	if ds2.TotalTasks >= dh.TotalTasks {
		t.Errorf("ds2 tasks %d >= dhalion %d", ds2.TotalTasks, dh.TotalTasks)
	}
	if ds2.TotalTasks >= qu.TotalTasks {
		t.Errorf("ds2 tasks %d >= queueing %d", ds2.TotalTasks, qu.TotalTasks)
	}
	for name, row := range byName {
		if row.Achieved < row.Target*0.95 {
			t.Errorf("%s final throughput %v < target %v", name, row.Achieved, row.Target)
		}
	}
}

func TestBoostAblation(t *testing.T) {
	r, err := RunBoostAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatal("want 2 arms")
	}
	off, on := r.Rows[0], r.Rows[1]
	if off.BoostEnabled || !on.BoostEnabled {
		t.Fatal("arm order")
	}
	// Without the correction, hidden overhead leaves the job short of
	// the target; with it, the target is met within a few decisions.
	if off.Achieved >= off.Target*0.9 {
		t.Errorf("boost-off achieved %v, expected well short of %v", off.Achieved, off.Target)
	}
	if on.Achieved < on.Target*0.99 {
		t.Errorf("boost-on achieved %v of %v", on.Achieved, on.Target)
	}
	if on.Decisions > 5 {
		t.Errorf("boost-on decisions = %d, want <= 5", on.Decisions)
	}
	if on.Final <= off.Final {
		t.Errorf("boost-on final %d <= boost-off %d", on.Final, off.Final)
	}
}

func TestActivationAblation(t *testing.T) {
	r, err := RunActivationAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatal("want 2 arms")
	}
	every, windowed := r.Rows[0], r.Rows[1]
	// Deciding on every short interval chases the window's
	// stash/fire phases; the activation window stays stable.
	if every.Decisions <= windowed.Decisions*2 {
		t.Errorf("single-interval decisions (%d) not clearly worse than windowed (%d)",
			every.Decisions, windowed.Decisions)
	}
	if windowed.Decisions > 4 {
		t.Errorf("windowed activation still unstable: %d decisions", windowed.Decisions)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, want := range []string{"fig1", "fig6", "fig7", "table3", "table4", "fig8", "fig9", "fig10", "skew"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q", want)
		}
	}
	if _, err := Run("nonsense"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// table3 is cheap enough to run through the registry.
	res, err := Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "Table 3") {
		t.Error("table3 output malformed")
	}
}
