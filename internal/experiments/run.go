package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one named experiment and returns a printable result.
type Runner func() (fmt.Stringer, error)

// Registry maps experiment ids (as used by cmd/ds2-experiments and
// DESIGN.md's per-experiment index) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":                func() (fmt.Stringer, error) { return RunWordcountComparison() },
		"fig6":                func() (fmt.Stringer, error) { return RunWordcountComparison() },
		"fig7":                func() (fmt.Stringer, error) { return RunDynamicScaling() },
		"table3":              func() (fmt.Stringer, error) { return RunRatesTable() },
		"table4":              func() (fmt.Stringer, error) { return RunConvergenceTable() },
		"fig8":                func() (fmt.Stringer, error) { return RunAccuracy(nil) },
		"fig9":                func() (fmt.Stringer, error) { return RunTimelyLatency(nil, 120) },
		"fig10":               func() (fmt.Stringer, error) { return RunOverhead(120) },
		"skew":                func() (fmt.Stringer, error) { return RunSkew() },
		"ablation-baselines":  func() (fmt.Stringer, error) { return RunBaselines() },
		"ablation-boost":      func() (fmt.Stringer, error) { return RunBoostAblation() },
		"ablation-activation": func() (fmt.Stringer, error) { return RunActivationAblation() },
	}
}

// Names returns the registered experiment ids, sorted.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string) (fmt.Stringer, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, Names())
	}
	return r()
}
