package experiments

import (
	"fmt"
	"strings"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
	"ds2/internal/nexmark"
)

// RatesTable reproduces Table 3: the target source rates used for the
// Nexmark queries on each system.
type RatesTable struct {
	Rows map[string]map[string]map[string]float64 // query -> system -> source -> rate
}

func (t RatesTable) String() string {
	var sb strings.Builder
	sb.WriteString("== Table 3: target source rates (records/s) ==\n")
	sb.WriteString("query\tsystem\tsource\trate\n")
	for _, q := range nexmark.QueryNames() {
		for _, sys := range []string{"flink", "timely"} {
			for _, src := range sortedKeys(t.Rows[q][sys]) {
				fmt.Fprintf(&sb, "%s\t%s\t%s\t%.0f\n", q, sys, src, t.Rows[q][sys][src])
			}
		}
	}
	return sb.String()
}

// RunRatesTable materializes Table 3 from the workload definitions.
func RunRatesTable() (*RatesTable, error) {
	t := &RatesTable{Rows: make(map[string]map[string]map[string]float64)}
	for _, name := range nexmark.QueryNames() {
		t.Rows[name] = make(map[string]map[string]float64)
		for _, sys := range []nexmark.System{nexmark.SystemFlink, nexmark.SystemTimely} {
			w, err := nexmark.Query(name, sys)
			if err != nil {
				return nil, err
			}
			t.Rows[name][sys.String()] = w.Rates
		}
	}
	return t, nil
}

// ConvergenceCell is one cell of Table 4: the sequence of main-operator
// parallelism values DS2 walked through from one initial configuration.
type ConvergenceCell struct {
	Query   string
	Initial int
	Steps   []int // main-operator parallelism after each decision
	Final   int
}

func (c ConvergenceCell) String() string {
	parts := make([]string, 0, len(c.Steps)+1)
	parts = append(parts, fmt.Sprintf("%d", c.Initial))
	for _, s := range c.Steps {
		parts = append(parts, fmt.Sprintf("%d", s))
	}
	return strings.Join(parts, "→")
}

// ConvergenceTable is the full Table 4 sweep.
type ConvergenceTable struct {
	Cells     []ConvergenceCell
	Initials  []int
	Queries   []string
	Indicated map[string]int
	MaxSteps  int
}

func (t ConvergenceTable) String() string {
	var sb strings.Builder
	sb.WriteString("== Table 4: DS2 convergence steps for Nexmark queries on Flink ==\n")
	sb.WriteString("initial")
	for _, q := range t.Queries {
		fmt.Fprintf(&sb, "\t%s", q)
	}
	sb.WriteByte('\n')
	byKey := make(map[string]ConvergenceCell, len(t.Cells))
	for _, c := range t.Cells {
		byKey[fmt.Sprintf("%s/%d", c.Query, c.Initial)] = c
	}
	for _, init := range t.Initials {
		fmt.Fprintf(&sb, "%d", init)
		for _, q := range t.Queries {
			fmt.Fprintf(&sb, "\t%s", byKey[fmt.Sprintf("%s/%d", q, init)])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "paper-indicated optima: %v; max steps observed: %d\n", t.Indicated, t.MaxSteps)
	return sb.String()
}

// convergenceRun drives one query from one initial parallelism with
// the §5.4 configuration: 30 s decision interval, 30 s warm-up (one
// interval), target ratio 1.0, five-interval stability criterion.
func convergenceRun(query string, initial int) (ConvergenceCell, error) {
	w, err := nexmark.Query(query, nexmark.SystemFlink)
	if err != nil {
		return ConvergenceCell{}, err
	}
	initPar := w.InitialParallelism(initial)
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initPar, engine.Config{
		Mode:          engine.ModeFlink,
		Tick:          0.05,
		QueueCapacity: 20_000,
		RedeployDelay: 10,
	})
	if err != nil {
		return ConvergenceCell{}, err
	}
	pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		return ConvergenceCell{}, err
	}
	mgr, err := core.NewManager(pol, initPar, core.ManagerConfig{
		WarmupIntervals:     1,
		ActivationIntervals: 1,
		Aggregation:         core.AggMax,
		TargetRateRatio:     1.0,
	})
	if err != nil {
		return ConvergenceCell{}, err
	}
	cell := ConvergenceCell{Query: query, Initial: initial}
	// Flink-mode redeployments here are short relative to the 30 s
	// interval, so the runtime lets the pause ride through the next
	// interval instead of settling (the historical §5.4 setup); the
	// five-interval stability criterion is the loop's stop rule.
	loop, err := controlloop.New(
		controlloop.NewEngineRuntime(e, false),
		controlloop.DS2Autoscaler(mgr),
		controlloop.Config{Interval: 30, MaxIntervals: 40, StableIntervals: 5})
	if err != nil {
		return cell, err
	}
	tr, err := loop.Run()
	if err != nil {
		return cell, err
	}
	for _, iv := range tr.Intervals {
		if iv.Applied != nil {
			cell.Steps = append(cell.Steps, iv.Applied[w.MainOperator])
		}
	}
	cell.Final = tr.Final[w.MainOperator]
	return cell, nil
}

// RunConvergenceTable reproduces Table 4: every query from initial
// parallelism 8, 12, 16, 20, 24, 28. The 36 cells are independent
// simulations and fan out across the worker budget; cells are
// assembled in (query, initial) order so the table renders
// identically to a serial run.
func RunConvergenceTable() (*ConvergenceTable, error) {
	t := &ConvergenceTable{
		Initials:  []int{8, 12, 16, 20, 24, 28},
		Queries:   nexmark.QueryNames(),
		Indicated: make(map[string]int),
	}
	for _, q := range t.Queries {
		w, err := nexmark.Query(q, nexmark.SystemFlink)
		if err != nil {
			return nil, err
		}
		t.Indicated[q] = w.Indicated
	}
	t.Cells = make([]ConvergenceCell, len(t.Queries)*len(t.Initials))
	err := forEach(len(t.Cells), func(i int) error {
		q := t.Queries[i/len(t.Initials)]
		init := t.Initials[i%len(t.Initials)]
		cell, err := convergenceRun(q, init)
		if err != nil {
			return fmt.Errorf("%s from %d: %w", q, init, err)
		}
		t.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, cell := range t.Cells {
		if len(cell.Steps) > t.MaxSteps {
			t.MaxSteps = len(cell.Steps)
		}
	}
	return t, nil
}

// AccuracyRow is one configuration of one query in Fig. 8: observed
// source rate and per-record latency quantiles.
type AccuracyRow struct {
	Query       string
	Parallelism int
	Indicated   bool
	Achieved    float64
	Target      float64
	Latency     quantileRow
}

// AccuracyResult is the Fig. 8 sweep for all queries.
type AccuracyResult struct{ Rows []AccuracyRow }

func (r AccuracyResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Fig. 8: observed source rates and latency vs parallelism (Flink) ==\n")
	sb.WriteString("query\tparallelism\tachieved(rec/s)\ttarget(rec/s)\tp50(s)\tp99(s)\tindicated\n")
	for _, row := range r.Rows {
		mark := ""
		if row.Indicated {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s\t%d\t%.0f\t%.0f\t%.3f\t%.3f\t%s\n",
			row.Query, row.Parallelism, row.Achieved, row.Target,
			row.Latency.P50, row.Latency.P99, mark)
	}
	sb.WriteString("(*) = DS2-indicated parallelism: the smallest that sustains the target\n")
	return sb.String()
}

// RunAccuracy reproduces Fig. 8: each query runs at a sweep of
// main-operator parallelism around the DS2-indicated optimum (other
// operators held at their decided values), measuring the achieved
// source rate and per-record latency. Two parallel stages: the
// per-query baseline decisions, then every (query, parallelism) sweep
// cell; rows are assembled in (query, sweep) order.
func RunAccuracy(queries []string) (*AccuracyResult, error) {
	if len(queries) == 0 {
		queries = nexmark.QueryNames()
	}
	// Stage 1: per-query workload + DS2 baseline deployment from a
	// well-provisioned measurement run.
	type queryBase struct {
		w      *nexmark.Workload
		base   dataflow.Parallelism
		target float64
	}
	bases := make([]queryBase, len(queries))
	err := forEach(len(queries), func(i int) error {
		w, err := nexmark.Query(queries[i], nexmark.SystemFlink)
		if err != nil {
			return err
		}
		base, err := decideOnce(w)
		if err != nil {
			return fmt.Errorf("%s: %w", queries[i], err)
		}
		target := 0.0
		for _, r := range w.Rates {
			target += r
		}
		bases[i] = queryBase{w: w, base: base, target: target}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Stage 2: flatten the (query, parallelism) grid into independent
	// cells.
	type cellJob struct {
		qb *queryBase
		p  int
	}
	var jobs []cellJob
	for i := range bases {
		for _, p := range sweep(bases[i].w.Indicated) {
			jobs = append(jobs, cellJob{qb: &bases[i], p: p})
		}
	}
	res := &AccuracyResult{Rows: make([]AccuracyRow, len(jobs))}
	err = forEach(len(jobs), func(i int) error {
		w, p := jobs[i].qb.w, jobs[i].p
		par := jobs[i].qb.base.Clone()
		par[w.MainOperator] = p
		e, err := engine.New(w.Graph, w.Specs, w.Sources, par, engine.Config{
			Mode:               engine.ModeFlink,
			Tick:               0.05,
			QueueCapacity:      20_000,
			FlushBufferRecords: 4000,
		})
		if err != nil {
			return err
		}
		e.RunInterval(60) // warm-up, fills queues when under-provisioned
		st := e.RunInterval(120)
		achieved := 0.0
		for _, r := range st.SourceObserved {
			achieved += r
		}
		res.Rows[i] = AccuracyRow{
			Query:       w.Query,
			Parallelism: p,
			Indicated:   p == w.Indicated,
			Achieved:    achieved,
			Target:      jobs[i].qb.target,
			Latency:     latQuantiles(st.Latencies),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// sweep picks the configurations Fig. 8 compares: below, at, and above
// the indicated parallelism.
func sweep(indicated int) []int {
	raw := []int{indicated - 4, indicated - 2, indicated, indicated + 4, indicated + 8}
	out := raw[:0]
	for _, p := range raw {
		if p >= 1 {
			out = append(out, p)
		}
	}
	return out
}

// decideOnce runs the workload briefly in an over-provisioned
// configuration and asks the policy for the optimal deployment — the
// configuration Fig. 8 anchors its sweep on.
func decideOnce(w *nexmark.Workload) (dataflow.Parallelism, error) {
	probe := w.InitialParallelism(w.Indicated + 8)
	e, err := engine.New(w.Graph, w.Specs, w.Sources, probe, engine.Config{
		Mode:          engine.ModeFlink,
		Tick:          0.05,
		QueueCapacity: 20_000,
	})
	if err != nil {
		return nil, err
	}
	e.RunInterval(15)
	st := e.RunInterval(30)
	snap, err := engine.Snapshot(st)
	if err != nil {
		return nil, err
	}
	pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		return nil, err
	}
	dec, err := pol.Decide(snap, probe, 1)
	if err != nil {
		return nil, err
	}
	return dec.Parallelism, nil
}
