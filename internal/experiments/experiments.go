// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) on the simulator substrate. Each experiment has a
// Run function returning a structured result whose String method
// prints the same rows/series the paper reports; cmd/ds2-experiments
// exposes them by id and bench_test.go wraps them in testing.B
// benchmarks. EXPERIMENTS.md records measured-vs-paper outcomes.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
)

// Sample is one point of a throughput/parallelism timeline.
type Sample struct {
	Time        float64
	Target      float64
	Achieved    float64
	Parallelism dataflow.Parallelism
	Workers     int
	Action      string // "", "rescale", "rollback", or the Dhalion reason
}

// Timeline is a series of samples plus the decisions taken.
type Timeline struct {
	Samples   []Sample
	Decisions int
	Final     dataflow.Parallelism
	// ConvergedAt is the virtual time of the last configuration
	// change (0 if none).
	ConvergedAt float64
}

func (t Timeline) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "time(s)\ttarget(rec/s)\tachieved(rec/s)\tconfig\taction\n")
	for _, s := range t.Samples {
		fmt.Fprintf(&sb, "%.0f\t%.0f\t%.0f\t%s\t%s\n",
			s.Time, s.Target, s.Achieved, s.Parallelism, s.Action)
	}
	fmt.Fprintf(&sb, "decisions=%d converged_at=%.0fs final=%s\n",
		t.Decisions, t.ConvergedAt, t.Final)
	return sb.String()
}

// ds2Loop drives a Flink/Heron-mode engine under the DS2 manager for
// maxIntervals policy intervals, recording a timeline. The manager is
// only consulted when the engine is not mid-redeployment.
func ds2Loop(e *engine.Engine, mgr *core.Manager, interval float64, maxIntervals int) (Timeline, error) {
	var tl Timeline
	for i := 0; i < maxIntervals; i++ {
		st := e.RunInterval(interval)
		target := 0.0
		for _, r := range st.TargetRates {
			target += r
		}
		achieved := 0.0
		for _, r := range st.SourceObserved {
			achieved += r
		}
		sample := Sample{
			Time:        st.End,
			Target:      target,
			Achieved:    achieved,
			Parallelism: st.Parallelism,
		}
		if !e.Paused() {
			snap, err := engine.Snapshot(st)
			if err != nil {
				return tl, err
			}
			act, err := mgr.OnInterval(snap)
			if err != nil {
				return tl, err
			}
			if act != nil {
				if err := e.Rescale(act.New); err != nil {
					return tl, err
				}
				// Metric windows restart once the job is redeployed:
				// run the savepoint/restore pause out and discard the
				// partial window, exactly as the real integration
				// resets its MetricsManager on restart (§4.1).
				for e.Paused() {
					e.Run(1)
				}
				e.Collect()
				sample.Action = act.Kind.String()
				tl.Decisions++
				tl.ConvergedAt = st.End
			}
		}
		tl.Samples = append(tl.Samples, sample)
	}
	tl.Final = e.Parallelism()
	return tl, nil
}

// quantileRow formats a set of latency quantiles.
type quantileRow struct {
	P50, P95, P99 float64
}

func latQuantiles(samples []engine.LatencySample) quantileRow {
	return quantileRow{
		P50: engine.LatencyQuantile(samples, 0.50),
		P95: engine.LatencyQuantile(samples, 0.95),
		P99: engine.LatencyQuantile(samples, 0.99),
	}
}

func epochQuantiles(eps []engine.EpochLatency) quantileRow {
	return quantileRow{
		P50: engine.EpochQuantile(eps, 0.50),
		P95: engine.EpochQuantile(eps, 0.95),
		P99: engine.EpochQuantile(eps, 0.99),
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
