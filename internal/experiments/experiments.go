// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) on the simulator substrate. Each experiment has a
// Run function returning a structured result whose String method
// prints the same rows/series the paper reports; cmd/ds2-experiments
// exposes them by id and bench_test.go wraps them in testing.B
// benchmarks. EXPERIMENTS.md records measured-vs-paper outcomes.
//
// Every experiment drives its engine through the shared
// controlloop.Controller — the same loop the examples and cmd binaries
// use — so a run is fully described by (workload, engine config,
// autoscaler, loop config) and the resulting controlloop.Trace.
package experiments

import (
	"sort"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/engine"
)

// runDS2 drives a Flink/Heron-mode engine under the DS2 scaling
// manager for maxIntervals policy intervals through the shared control
// loop. Redeployments settle synchronously: the savepoint/restore
// pause is run out and the polluted partial metric window discarded,
// exactly as the real integration resets its MetricsManager on restart
// (§4.1).
func runDS2(e *engine.Engine, mgr *core.Manager, interval float64, maxIntervals int) (controlloop.Trace, error) {
	loop, err := controlloop.New(
		controlloop.NewEngineRuntime(e, true),
		controlloop.DS2Autoscaler(mgr),
		controlloop.Config{Interval: interval, MaxIntervals: maxIntervals})
	if err != nil {
		return controlloop.Trace{}, err
	}
	return loop.Run()
}

// quantileRow formats a set of latency quantiles.
type quantileRow struct {
	P50, P95, P99 float64
}

func latQuantiles(samples []engine.LatencySample) quantileRow {
	return quantileRow{
		P50: engine.LatencyQuantile(samples, 0.50),
		P95: engine.LatencyQuantile(samples, 0.95),
		P99: engine.LatencyQuantile(samples, 0.99),
	}
}

func epochQuantiles(eps []engine.EpochLatency) quantileRow {
	return quantileRow{
		P50: engine.EpochQuantile(eps, 0.50),
		P95: engine.EpochQuantile(eps, 0.95),
		P99: engine.EpochQuantile(eps, 0.99),
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
