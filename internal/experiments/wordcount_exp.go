package experiments

import (
	"fmt"
	"strings"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/dhalion"
	"ds2/internal/engine"
	"ds2/internal/wordcount"
)

// WordcountComparison is the Fig. 1 / Fig. 6 experiment: Dhalion and
// DS2 each drive the same under-provisioned wordcount topology on the
// Heron-mode engine — through the identical control loop.
type WordcountComparison struct {
	Dhalion controlloop.Trace
	DS2     controlloop.Trace
	Optimal dataflow.Parallelism
}

func (r WordcountComparison) String() string {
	var sb strings.Builder
	sb.WriteString("== Fig. 1 / Fig. 6: DS2 vs Dhalion on Heron (wordcount) ==\n")
	sb.WriteString("-- Dhalion --\n")
	sb.WriteString(r.Dhalion.String())
	sb.WriteString("-- DS2 --\n")
	sb.WriteString(r.DS2.String())
	fmt.Fprintf(&sb, "optimal=%s\n", r.Optimal)
	fmt.Fprintf(&sb, "summary: DS2 %d decision(s) to %s in %.0fs; Dhalion %d decisions to %s in %.0fs\n",
		r.DS2.Decisions, r.DS2.Final, r.DS2.ConvergedAt,
		r.Dhalion.Decisions, r.Dhalion.Final, r.Dhalion.ConvergedAt)
	return sb.String()
}

func heronEngine(skew float64, initial dataflow.Parallelism) (*engine.Engine, *wordcount.Workload, error) {
	w, err := wordcount.Heron(skew)
	if err != nil {
		return nil, nil, err
	}
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initial, engine.Config{
		Mode:          engine.ModeHeron,
		Tick:          0.05,
		QueueCapacity: 200_000, // Heron's deep (100 MiB) operator queues
		RedeployDelay: 20,
	})
	if err != nil {
		return nil, nil, err
	}
	return e, w, nil
}

// RunWordcountComparison reproduces §5.2: both controllers start from
// one instance per operator; the source produces 1M sentences/min.
// Dhalion uses the default 60 s Heron metric interval; DS2 uses a 60 s
// decision interval, no warm-up, one-interval activation, target
// ratio 1.0 — the exact §5.2 configuration.
func RunWordcountComparison() (*WordcountComparison, error) {
	initial := dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 1, wordcount.Count: 1}
	const interval, horizon = 60.0, 3000.0

	// The two controller arms are independent simulations; run them as
	// parallel cells.
	res := &WordcountComparison{}
	err := forEach(2, func(arm int) error {
		if arm == 0 {
			// --- Dhalion ---
			// Heron redeployments are slow relative to the metric
			// interval, so the runtime does not settle them: the pause
			// rides through the following intervals as Busy
			// observations, exactly as the paper's Fig. 1 timeline
			// shows.
			e, w, err := heronEngine(0, initial)
			if err != nil {
				return err
			}
			ctrl, err := dhalion.New(w.Graph, dhalion.Config{})
			if err != nil {
				return err
			}
			dloop, err := controlloop.New(
				controlloop.NewEngineRuntime(e, false),
				dhalion.Autoscaler(ctrl),
				controlloop.Config{
					Interval:     interval,
					MaxIntervals: int(horizon / interval),
					Done:         ctrl.Converged,
				})
			if err != nil {
				return err
			}
			res.Dhalion, err = dloop.Run()
			res.Optimal = w.Optimal
			return err
		}
		// --- DS2 ---
		e2, w2, err := heronEngine(0, initial)
		if err != nil {
			return err
		}
		pol, err := core.NewPolicy(w2.Graph, core.PolicyConfig{})
		if err != nil {
			return err
		}
		mgr, err := core.NewManager(pol, initial, core.ManagerConfig{
			WarmupIntervals:     0,
			ActivationIntervals: 1,
			TargetRateRatio:     1.0,
		})
		if err != nil {
			return err
		}
		res.DS2, err = runDS2(e2, mgr, interval, 10)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// DynamicScalingResult is the Fig. 7 experiment.
type DynamicScalingResult struct {
	Timeline controlloop.Trace
	// Phase1Final and Phase2Final are the configurations DS2 settled
	// on in each phase.
	Phase1Final dataflow.Parallelism
	Phase2Final dataflow.Parallelism
}

func (r DynamicScalingResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Fig. 7: dynamic scaling with Flink (wordcount, 2M/s then 1M/s) ==\n")
	sb.WriteString(r.Timeline.String())
	fmt.Fprintf(&sb, "phase1 final=%s phase2 final=%s\n", r.Phase1Final, r.Phase2Final)
	return sb.String()
}

// RunDynamicScaling reproduces §5.3: the wordcount job starts
// under-provisioned (10 FlatMap, 5 Count) at a 2M sentences/s source
// rate; after phaseLen the rate halves. DS2 runs with a 10 s decision
// interval, 30 s warm-up (3 intervals), one-interval activation and
// target ratio 1.0; Flink-mode redeployment takes ~40 s.
func RunDynamicScaling() (*DynamicScalingResult, error) {
	const (
		interval = 10.0
		phaseLen = 600.0
		horizon  = 1200.0
	)
	w, err := wordcount.Flink(phaseLen)
	if err != nil {
		return nil, err
	}
	initial := dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 10, wordcount.Count: 5}
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initial, engine.Config{
		Mode:          engine.ModeFlink,
		Tick:          0.05,
		QueueCapacity: 50_000,
		RedeployDelay: 40,
	})
	if err != nil {
		return nil, err
	}
	pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		return nil, err
	}
	mgr, err := core.NewManager(pol, initial, core.ManagerConfig{
		WarmupIntervals:     3,
		ActivationIntervals: 1,
		TargetRateRatio:     1.0,
	})
	if err != nil {
		return nil, err
	}
	tl, err := runDS2(e, mgr, interval, int(horizon/interval))
	if err != nil {
		return nil, err
	}
	res := &DynamicScalingResult{Timeline: tl, Phase2Final: e.Parallelism()}
	for _, s := range tl.Intervals {
		if s.Time <= phaseLen {
			res.Phase1Final = s.Parallelism
		}
	}
	return res, nil
}

// SkewResult is the §4.2.3 experiment.
type SkewResult struct {
	Skew      float64
	Decisions int
	Final     dataflow.Parallelism
	// NoSkewOptimal is the configuration that would be optimal
	// without imbalance; DS2 must converge to it without
	// over-provisioning even though it cannot meet the target.
	NoSkewOptimal dataflow.Parallelism
	Target        float64
	Achieved      float64
}

func (r SkewResult) String() string {
	return fmt.Sprintf("skew=%.0f%%: decisions=%d final=%s (no-skew optimal %s) achieved %.0f of target %.0f rec/s",
		r.Skew*100, r.Decisions, r.Final, r.NoSkewOptimal, r.Achieved, r.Target)
}

// SkewSuite runs the experiment for the paper's three skew settings.
type SkewSuite struct{ Results []SkewResult }

func (s SkewSuite) String() string {
	var sb strings.Builder
	sb.WriteString("== §4.2.3: DS2 in the presence of skew (wordcount) ==\n")
	for _, r := range s.Results {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RunSkew varies the Dhalion-benchmark skew parameter (20%, 50%, 70%)
// and verifies DS2 converges in a bounded number of steps to the
// configuration that would be optimal without skew, without
// over-provisioning, while the target is not met. The boost correction
// is disabled (MaxBoost=1) and decisions are limited (§4.2.2), which
// is what guarantees convergence when the target is unreachable.
func RunSkew() (*SkewSuite, error) {
	skews := []float64{0.2, 0.5, 0.7}
	suite := &SkewSuite{Results: make([]SkewResult, len(skews))}
	err := forEach(len(skews), func(i int) error {
		initial := dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 1, wordcount.Count: 1}
		e, w, err := heronEngine(skews[i], initial)
		if err != nil {
			return err
		}
		pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{})
		if err != nil {
			return err
		}
		mgr, err := core.NewManager(pol, initial, core.ManagerConfig{
			WarmupIntervals:     0,
			ActivationIntervals: 1,
			MaxBoost:            1, // disable target-ratio correction
			MaxDecisions:        3, // decision limiting guarantees convergence
		})
		if err != nil {
			return err
		}
		tl, err := runDS2(e, mgr, 60, 10)
		if err != nil {
			return err
		}
		last := tl.Last()
		suite.Results[i] = SkewResult{
			Skew:          skews[i],
			Decisions:     tl.Decisions,
			Final:         tl.Final,
			NoSkewOptimal: w.Optimal,
			Target:        last.Target,
			Achieved:      last.Achieved,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return suite, nil
}
