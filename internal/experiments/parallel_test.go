package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestParallelDeterminism asserts the harness's core contract: every
// Registry experiment renders byte-identical output whether its cells
// run serially or fanned out across workers. (fig1 aliases fig6's
// runner and is skipped.)
func TestParallelDeterminism(t *testing.T) {
	defer SetParallelism(1)
	for _, id := range Names() {
		if id == "fig1" { // same runner as fig6
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			SetParallelism(1)
			serial, err := Run(id)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			SetParallelism(8)
			par, err := Run(id)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if s, p := serial.String(), par.String(); s != p {
				t.Errorf("output differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

func TestForEachSerialWhenUnset(t *testing.T) {
	SetParallelism(1)
	order := []int{}
	err := forEach(5, func(i int) error {
		order = append(order, i) // safe: serial path, no goroutines
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForEachErrorShortCircuits(t *testing.T) {
	// Serial: the first error stops the sweep — later cells never run.
	SetParallelism(1)
	e2 := errors.New("cell 2")
	ran := [6]bool{}
	err := forEach(6, func(i int) error {
		ran[i] = true
		if i == 2 {
			return e2
		}
		return nil
	})
	if !errors.Is(err, e2) {
		t.Errorf("serial err = %v, want %v", err, e2)
	}
	if ran[3] || ran[4] || ran[5] {
		t.Errorf("serial run continued past the error: %v", ran)
	}

	// Parallel: an error stops workers from claiming further cells;
	// whichever recorded error has the lowest index is returned.
	defer SetParallelism(1)
	SetParallelism(4)
	e4 := errors.New("cell 4")
	var claimed int32
	err = forEach(64, func(i int) error {
		atomic.AddInt32(&claimed, 1)
		if i == 2 {
			return e2
		}
		if i == 4 {
			return e4
		}
		return nil
	})
	if !errors.Is(err, e2) && !errors.Is(err, e4) {
		t.Errorf("parallel err = %v, want one of the injected errors", err)
	}
	if claimed == 64 {
		t.Error("parallel sweep ran every cell despite an early error")
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(8)
	const n = 100
	var counts [n]int32
	if err := forEach(n, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestForEachNestedNoDeadlock exercises the composition the harness
// relies on: outer fan-out (RunMany-style) whose cells themselves fan
// out. Helpers are claimed without blocking, so nesting must complete
// even when the budget is tiny.
func TestForEachNestedNoDeadlock(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(2)
	var total int64
	err := forEach(4, func(i int) error {
		return forEach(4, func(j int) error {
			atomic.AddInt64(&total, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 {
		t.Fatalf("ran %d inner cells, want 16", total)
	}
}

func TestRunManyOrderAndErrors(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(4)
	ids := []string{"table3", "skew", "ablation-boost"}
	results, err := RunMany(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Errorf("result %d is %q, want %q (input order)", i, r.ID, ids[i])
		}
		if r.Output == nil {
			t.Errorf("result %d has no output", i)
		}
	}
	if _, err := RunMany([]string{"table3", "nonsense"}); err == nil {
		t.Error("unknown id accepted")
	}
}
