package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The experiment harness fans independent cells (Table 4's 36
// convergence runs, Fig. 8/9 sweeps, Fig. 10's query grid, the skew
// suite, the two arms of each ablation) across a bounded worker
// budget. Every cell is a pure function of its inputs — each builds
// its own engine, policy and manager from deterministic seeds — so
// results are computed concurrently but assembled by index, and every
// experiment's String() output is byte-identical to a serial run (see
// TestParallelDeterminism).
//
// Concurrency model: forEach never blocks waiting for a worker slot.
// The calling goroutine always participates, and helper goroutines are
// claimed from a global budget with a non-blocking acquire, so nested
// fan-outs (RunMany over the registry, experiments over their cells)
// compose without deadlock while total concurrency stays bounded at
// the configured width.

var (
	parMu   sync.Mutex
	helpers chan struct{} // global helper budget, capacity workers-1
)

// SetParallelism sets the worker budget for experiment execution.
// n <= 1 selects fully serial execution. Safe to call between runs;
// calling it while experiments are in flight only affects new fan-outs.
func SetParallelism(n int) {
	parMu.Lock()
	defer parMu.Unlock()
	if n > 1 {
		helpers = make(chan struct{}, n-1)
	} else {
		helpers = nil
	}
}

func helperBudget() chan struct{} {
	parMu.Lock()
	defer parMu.Unlock()
	return helpers
}

// forEach runs fn(0..n-1) across the worker budget and returns the
// lowest-index error among the cells that ran. A failure stops
// workers from claiming further cells, so a fast-failing fan-out does
// not burn through the remaining grid first. Results must be written
// by index into caller-owned slices, which keeps output assembly
// deterministic regardless of scheduling.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	budget := helperBudget()
	if budget == nil || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := int64(-1)
	var failed int32 // set once any cell errors: stop claiming new cells
	work := func() {
		for atomic.LoadInt32(&failed) == 0 {
			i := int(atomic.AddInt64(&next, 1))
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				atomic.StoreInt32(&failed, 1)
			}
		}
	}
	var wg sync.WaitGroup
claim:
	for claimed := 0; claimed < n-1; claimed++ {
		select {
		case budget <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-budget }()
				work()
			}()
		default:
			break claim // budget exhausted
		}
	}
	work() // the caller always participates
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Result pairs an experiment id with its rendered output.
type Result struct {
	ID      string
	Output  fmt.Stringer
	Elapsed time.Duration
}

// RunManyFunc executes the given experiments across the worker budget
// — the registry-level fan-out — and streams results to emit in input
// order: each result is emitted as soon as it and every experiment
// before it have finished, so a long tail doesn't hold completed
// output hostage, and results already emitted survive a later
// failure. Individual experiments additionally fan their internal
// cells out over the same budget. emit is never called concurrently.
func RunManyFunc(ids []string, emit func(Result)) error {
	var mu sync.Mutex
	done := make([]*Result, len(ids))
	emitted := 0
	return forEach(len(ids), func(i int) error {
		start := time.Now()
		res, err := Run(ids[i])
		if err != nil {
			return fmt.Errorf("%s: %w", ids[i], err)
		}
		mu.Lock()
		defer mu.Unlock()
		done[i] = &Result{ID: ids[i], Output: res, Elapsed: time.Since(start)}
		for emitted < len(done) && done[emitted] != nil {
			emit(*done[emitted])
			emitted++
		}
		return nil
	})
}

// RunMany executes the given experiments across the worker budget and
// returns results in input order. The first recorded error (by input
// order) is returned, with no partial results.
func RunMany(ids []string) ([]Result, error) {
	out := make([]Result, 0, len(ids))
	if err := RunManyFunc(ids, func(r Result) { out = append(out, r) }); err != nil {
		return nil, err
	}
	return out, nil
}
