package experiments

import (
	"fmt"
	"strings"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
	"ds2/internal/nexmark"
	"ds2/internal/queueing"
	"ds2/internal/wordcount"
)

// BaselineRow summarizes one controller's run on the Heron wordcount
// benchmark.
type BaselineRow struct {
	Controller  string
	Decisions   int
	ConvergedAt float64
	Final       dataflow.Parallelism
	TotalTasks  int
	Achieved    float64
	Target      float64
}

// BaselineResult is the controller-comparison ablation: DS2 vs the
// Dhalion reimplementation vs the queueing-theory (DRS/Nephele-style)
// baseline on identical workloads.
type BaselineResult struct{ Rows []BaselineRow }

func (r BaselineResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Ablation: controller comparison on the Heron wordcount ==\n")
	sb.WriteString("controller\tdecisions\tconverged(s)\tfinal\ttasks\tachieved/target\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s\t%d\t%.0f\t%s\t%d\t%.0f/%.0f\n",
			row.Controller, row.Decisions, row.ConvergedAt, row.Final,
			row.TotalTasks, row.Achieved, row.Target)
	}
	return sb.String()
}

// RunBaselines compares the three controllers end to end. The
// queueing-theory controller scales on *observed* rates, so under
// backpressure it needs several rounds; Dhalion scales one operator at
// a time geometrically; DS2 solves the whole dataflow per decision.
func RunBaselines() (*BaselineResult, error) {
	initial := dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 1, wordcount.Count: 1}
	const interval = 60.0
	target := 1_000_000.0 / 60

	// Two independent parallel cells: the Fig. 1/6 comparison (which
	// itself runs its two controllers as cells) and the
	// queueing-theory baseline.
	var cmp *WordcountComparison
	var qtl controlloop.Trace
	err := forEach(2, func(arm int) error {
		if arm == 0 {
			var err error
			cmp, err = RunWordcountComparison()
			return err
		}
		// Queueing-theory baseline. It runs on Flink-style shallow
		// buffers: with Heron's deep queues, every one of its
		// (frequent) scale-downs concentrates megabytes of queued
		// records on fewer instances and the job stalls for minutes —
		// an artifact that would bury the comparison we are after,
		// namely how slowly an observed-rate model climbs to the true
		// requirement.
		w, err := wordcount.Heron(0)
		if err != nil {
			return err
		}
		e, err := engine.New(w.Graph, w.Specs, w.Sources, initial, engine.Config{
			Mode:          engine.ModeFlink,
			Tick:          0.05,
			QueueCapacity: 10_000,
			RedeployDelay: 20,
		})
		if err != nil {
			return err
		}
		qc, err := queueing.New(w.Graph, queueing.Config{LatencySLO: 1})
		if err != nil {
			return err
		}
		// Same metric-window discipline as the DS2 runs: the runtime
		// settles each redeployment and discards the polluted window.
		qloop, err := controlloop.New(
			controlloop.NewEngineRuntime(e, true),
			queueing.Autoscaler(qc),
			controlloop.Config{Interval: interval, MaxIntervals: 80})
		if err != nil {
			return err
		}
		qtl, err = qloop.Run()
		return err
	})
	if err != nil {
		return nil, err
	}

	lastD := cmp.Dhalion.Last()
	lastS := cmp.DS2.Last()
	res := &BaselineResult{}
	res.Rows = append(res.Rows,
		BaselineRow{
			Controller: "ds2", Decisions: cmp.DS2.Decisions,
			ConvergedAt: cmp.DS2.ConvergedAt, Final: cmp.DS2.Final,
			TotalTasks: cmp.DS2.Final.Total(), Achieved: lastS.Achieved, Target: target,
		},
		BaselineRow{
			Controller: "dhalion", Decisions: cmp.Dhalion.Decisions,
			ConvergedAt: cmp.Dhalion.ConvergedAt, Final: cmp.Dhalion.Final,
			TotalTasks: cmp.Dhalion.Final.Total(), Achieved: lastD.Achieved, Target: target,
		},
		BaselineRow{
			Controller:  "queueing",
			Decisions:   qtl.Decisions,
			ConvergedAt: qtl.ConvergedAt,
			Final:       qtl.Final,
			TotalTasks:  qtl.Final.Total(),
			Achieved:    qtl.Last().Achieved,
			Target:      target,
		})
	return res, nil
}

// BoostRow is one arm of the target-ratio ablation.
type BoostRow struct {
	BoostEnabled bool
	Decisions    int
	Final        int // main operator parallelism
	Achieved     float64
	Target       float64
}

// BoostResult demonstrates §4.2.1's target-rate-ratio correction: with
// overheads invisible to instrumentation (channel selection, network),
// plain Eq. 7 stalls below the target; the boost closes the gap.
type BoostResult struct{ Rows []BoostRow }

func (r BoostResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Ablation: target-rate-ratio correction under uncaptured overhead ==\n")
	sb.WriteString("boost\tdecisions\tfinal main p\tachieved/target\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%v\t%d\t%d\t%.0f/%.0f\n",
			row.BoostEnabled, row.Decisions, row.Final, row.Achieved, row.Target)
	}
	return sb.String()
}

// RunBoostAblation runs a map pipeline whose operator loses 1.5% of
// capacity per extra instance *without* the loss being visible in
// useful time (engine HiddenAlpha), with the manager's correction
// enabled (MaxBoost 2) and disabled (MaxBoost 1).
func RunBoostAblation() (*BoostResult, error) {
	const target = 1_000_000.0
	g, err := dataflow.Linear("src", "map", "sink")
	if err != nil {
		return nil, err
	}
	specs := map[string]engine.OperatorSpec{
		"map": {
			CostPerRecord: 16.0 / (target * 1.01),
			Selectivity:   1,
			HiddenAlpha:   0.015,
		},
		"sink": {CostPerRecord: 2.0 / (target * 1.3), Selectivity: 0},
	}
	srcs := map[string]engine.SourceSpec{
		"src": {Rate: engine.ConstantRate(target), CostPerRecord: 1e-8},
	}
	boosts := []float64{1, 2}
	res := &BoostResult{Rows: make([]BoostRow, len(boosts))}
	err = forEach(len(boosts), func(i int) error {
		boost := boosts[i]
		initial := dataflow.Parallelism{"src": 1, "map": 8, "sink": 2}
		e, err := engine.New(g, specs, srcs, initial, engine.Config{
			Mode: engine.ModeFlink, Tick: 0.05, QueueCapacity: 20_000, RedeployDelay: 10,
		})
		if err != nil {
			return err
		}
		pol, err := core.NewPolicy(g, core.PolicyConfig{MaxParallelism: 64})
		if err != nil {
			return err
		}
		mgr, err := core.NewManager(pol, initial, core.ManagerConfig{
			WarmupIntervals: 1,
			MaxBoost:        boost,
		})
		if err != nil {
			return err
		}
		tl, err := runDS2(e, mgr, 30, 25)
		if err != nil {
			return err
		}
		last := tl.Last()
		res.Rows[i] = BoostRow{
			BoostEnabled: boost > 1,
			Decisions:    tl.Decisions,
			Final:        tl.Final["map"],
			Achieved:     last.Achieved,
			Target:       target,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ActivationRow is one arm of the activation-time ablation.
type ActivationRow struct {
	Intervals   int
	Aggregation string
	Decisions   int
	Final       int
}

// ActivationResult demonstrates §4.2.1's activation time on a bursty
// windowed operator (Q5): deciding on every interval chases the
// window's fire/stash phases, while a multi-interval activation window
// with max-aggregation stays stable.
type ActivationResult struct{ Rows []ActivationRow }

func (r ActivationResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Ablation: activation time on the bursty Q5 window ==\n")
	sb.WriteString("activation\taggregation\tdecisions\tfinal main p\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%d\t%s\t%d\t%d\n", row.Intervals, row.Aggregation, row.Decisions, row.Final)
	}
	return sb.String()
}

// RunActivationAblation compares single-interval activation with the
// §5.4 five-interval/maximum configuration on Q5 using a deliberately
// short 5 s decision interval (comparable to the window slide, so
// individual intervals see wildly different rates).
func RunActivationAblation() (*ActivationResult, error) {
	arms := []struct {
		intervals int
		agg       core.Aggregation
	}{
		{1, core.AggLast},
		{5, core.AggMax},
	}
	res := &ActivationResult{Rows: make([]ActivationRow, len(arms))}
	err := forEach(len(arms), func(i int) error {
		arm := arms[i]
		w, err := nexmark.Query("q5", nexmark.SystemFlink)
		if err != nil {
			return err
		}
		initial := w.InitialParallelism(8)
		e, err := engine.New(w.Graph, w.Specs, w.Sources, initial, engine.Config{
			Mode: engine.ModeFlink, Tick: 0.05, QueueCapacity: 20_000, RedeployDelay: 5,
		})
		if err != nil {
			return err
		}
		pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{MaxParallelism: 36})
		if err != nil {
			return err
		}
		mgr, err := core.NewManager(pol, initial, core.ManagerConfig{
			WarmupIntervals:     1,
			ActivationIntervals: arm.intervals,
			Aggregation:         arm.agg,
		})
		if err != nil {
			return err
		}
		tl, err := runDS2(e, mgr, 5, 60)
		if err != nil {
			return err
		}
		res.Rows[i] = ActivationRow{
			Intervals:   arm.intervals,
			Aggregation: arm.agg.String(),
			Decisions:   tl.Decisions,
			Final:       tl.Final[w.MainOperator],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
