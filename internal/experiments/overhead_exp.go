package experiments

import (
	"fmt"
	"math"
	"strings"

	"ds2/internal/dataflow"
	"ds2/internal/engine"
	"ds2/internal/nexmark"
)

// OverheadRow compares vanilla vs instrumented latency for one query
// on one system (Fig. 10).
type OverheadRow struct {
	Query   string
	System  string
	Vanilla quantileRow
	Instr   quantileRow
	// OverheadPct is the relative median-latency increase.
	OverheadPct float64
}

// OverheadResult is the Fig. 10 suite.
type OverheadResult struct{ Rows []OverheadRow }

func (r OverheadResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Fig. 10: instrumentation overhead (vanilla vs instr) ==\n")
	sb.WriteString("query\tsystem\tvanilla p50/p99 (s)\tinstr p50/p99 (s)\toverhead\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s\t%s\t%.4f/%.4f\t%.4f/%.4f\t%+.1f%%\n",
			row.Query, row.System,
			row.Vanilla.P50, row.Vanilla.P99,
			row.Instr.P50, row.Instr.P99,
			row.OverheadPct)
	}
	return sb.String()
}

// RunOverhead reproduces Fig. 10: every query runs for `horizon`
// seconds twice — instrumentation off and on — at a configuration
// with enough headroom to absorb the instrumentation cost, exactly as
// the paper's fixed testbed configurations had. The instrumentation
// cost model inflates every per-record cost by the configured
// fraction, which surfaces as a latency penalty.
//
// The (query, system) grid fans out across the worker budget: one
// task per row, each running its vanilla and instrumented arms. Rows
// are assembled in (query, flink-then-timely) order.
func RunOverhead(horizon float64) (*OverheadResult, error) {
	if horizon <= 0 {
		horizon = 120
	}
	queries := nexmark.QueryNames()
	res := &OverheadResult{Rows: make([]OverheadRow, 2*len(queries))}
	err := forEach(len(res.Rows), func(i int) error {
		q := queries[i/2]
		if i%2 == 0 {
			row, err := overheadFlink(q, horizon)
			if err != nil {
				return err
			}
			res.Rows[i] = row
			return nil
		}
		row, err := overheadTimely(q, horizon)
		if err != nil {
			return err
		}
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// overheadFlink measures one query's Fig. 10 Flink row (per-record
// latency, vanilla vs instrumented).
func overheadFlink(q string, horizon float64) (OverheadRow, error) {
	row := OverheadRow{Query: q, System: "flink"}
	w, err := nexmark.Query(q, nexmark.SystemFlink)
	if err != nil {
		return row, err
	}
	par, err := decideOnce(w)
	if err != nil {
		return row, err
	}
	// Headroom so the instrumented run still keeps up.
	for op, p := range par {
		if w.Graph.IndexOf(op) >= w.Graph.NumSources() {
			par[op] = int(math.Ceil(float64(p)*1.15)) + 1
		}
	}
	for _, instr := range []bool{false, true} {
		e, err := engine.New(w.Graph, w.Specs, w.Sources, par, engine.Config{
			Mode:               engine.ModeFlink,
			Tick:               0.05,
			QueueCapacity:      20_000,
			FlushBufferRecords: 4000,
			Instrumented:       instr,
			InstrOverhead:      0.08,
		})
		if err != nil {
			return row, err
		}
		e.RunInterval(30)
		st := e.RunInterval(horizon)
		if instr {
			row.Instr = latQuantiles(st.Latencies)
		} else {
			row.Vanilla = latQuantiles(st.Latencies)
		}
	}
	row.OverheadPct = pctDelta(row.Vanilla.P50, row.Instr.P50)
	return row, nil
}

// overheadTimely measures one query's Fig. 10 Timely row (per-epoch
// latency, vanilla vs instrumented).
func overheadTimely(q string, horizon float64) (OverheadRow, error) {
	row := OverheadRow{Query: q, System: "timely"}
	wt, err := nexmark.Query(q, nexmark.SystemTimely)
	if err != nil {
		return row, err
	}
	for _, instr := range []bool{false, true} {
		e, err := engine.New(wt.Graph, wt.Specs, wt.Sources,
			dataflow.UniformParallelism(wt.Graph, 1),
			engine.Config{
				Mode:          engine.ModeTimely,
				Tick:          0.01, // fine grain: epoch deltas are sub-50ms
				Workers:       wt.Indicated + 2,
				EpochSize:     1,
				Instrumented:  instr,
				InstrOverhead: 0.12,
			})
		if err != nil {
			return row, err
		}
		e.RunInterval(10)
		st := e.RunInterval(horizon)
		if instr {
			row.Instr = epochQuantiles(st.EpochLatencies)
		} else {
			row.Vanilla = epochQuantiles(st.EpochLatencies)
		}
	}
	row.OverheadPct = pctDelta(row.Vanilla.P50, row.Instr.P50)
	return row, nil
}

func pctDelta(vanilla, instr float64) float64 {
	if vanilla <= 0 {
		return 0
	}
	return (instr - vanilla) / vanilla * 100
}
