package experiments

import (
	"fmt"
	"strings"

	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
	"ds2/internal/nexmark"
)

// TimelyRow is one worker-count configuration of one query in Fig. 9.
type TimelyRow struct {
	Query     string
	Workers   int
	Indicated bool
	// EpochsCompleted out of EpochsTotal 1 s epochs.
	EpochsCompleted int
	EpochsTotal     int
	// OnTimeFraction is the fraction of epochs processed within the
	// 1 s target.
	OnTimeFraction float64
	Latency        quantileRow
}

// TimelyResult is the Fig. 9 sweep.
type TimelyResult struct{ Rows []TimelyRow }

func (r TimelyResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Fig. 9: per-epoch latency vs worker count (Timely) ==\n")
	sb.WriteString("query\tworkers\tepochs done\ton-time\tp50(s)\tp99(s)\tindicated\n")
	for _, row := range r.Rows {
		mark := ""
		if row.Indicated {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s\t%d\t%d/%d\t%.0f%%\t%.3f\t%.3f\t%s\n",
			row.Query, row.Workers, row.EpochsCompleted, row.EpochsTotal,
			row.OnTimeFraction*100, row.Latency.P50, row.Latency.P99, mark)
	}
	sb.WriteString("(*) = DS2-indicated worker count (sum of per-operator optima, §4.3)\n")
	return sb.String()
}

// timelyEngine builds a Timely-mode engine for the workload.
func timelyEngine(w *nexmark.Workload, workers int) (*engine.Engine, error) {
	return engine.New(w.Graph, w.Specs, w.Sources, dataflow.UniformParallelism(w.Graph, 1),
		engine.Config{
			Mode:      engine.ModeTimely,
			Tick:      0.05,
			Workers:   workers,
			EpochSize: 1,
		})
}

// DecideTimelyWorkers measures the workload on a generously sized
// worker pool and returns the DS2 worker-count decision: the sum of
// the per-operator optimal parallelism over non-source operators
// (§4.3).
func DecideTimelyWorkers(w *nexmark.Workload, probeWorkers int) (int, error) {
	e, err := timelyEngine(w, probeWorkers)
	if err != nil {
		return 0, err
	}
	e.RunInterval(10)
	st := e.RunInterval(30)
	snap, err := engine.Snapshot(st)
	if err != nil {
		return 0, err
	}
	pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{})
	if err != nil {
		return 0, err
	}
	cur := make(dataflow.Parallelism)
	for i, name := range w.Graph.Names() {
		if i < w.Graph.NumSources() {
			cur[name] = 1
		} else {
			cur[name] = probeWorkers
		}
	}
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, name := range w.Graph.Names() {
		if i >= w.Graph.NumSources() {
			total += dec.Parallelism[name]
		}
	}
	return total, nil
}

// RunTimelyLatency reproduces Fig. 9: the listed queries run in Timely
// mode at worker counts around the DS2-indicated total; each run lasts
// `horizon` seconds of 1 s epochs. Two parallel stages: the per-query
// indicated-worker probe, then every (query, workers) run; rows are
// assembled in (query, workers) order.
func RunTimelyLatency(queries []string, horizon float64) (*TimelyResult, error) {
	if len(queries) == 0 {
		queries = []string{"q3", "q5", "q11"} // the queries Fig. 9 shows
	}
	if horizon <= 0 {
		horizon = 120
	}
	// Stage 1: workload + DS2-indicated worker count per query.
	type probed struct {
		w         *nexmark.Workload
		indicated int
	}
	probes := make([]probed, len(queries))
	err := forEach(len(queries), func(i int) error {
		w, err := nexmark.Query(queries[i], nexmark.SystemTimely)
		if err != nil {
			return err
		}
		indicated, err := DecideTimelyWorkers(w, w.Indicated+4)
		if err != nil {
			return fmt.Errorf("%s: %w", queries[i], err)
		}
		probes[i] = probed{w: w, indicated: indicated}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Stage 2: the (query, workers) grid.
	type runJob struct {
		p       *probed
		workers int
	}
	var jobs []runJob
	for i := range probes {
		ind := probes[i].indicated
		for _, workers := range []int{ind - 1, ind, ind + 2, ind + 4} {
			if workers < 1 {
				continue
			}
			jobs = append(jobs, runJob{p: &probes[i], workers: workers})
		}
	}
	res := &TimelyResult{Rows: make([]TimelyRow, len(jobs))}
	err = forEach(len(jobs), func(i int) error {
		p, workers := jobs[i].p, jobs[i].workers
		e, err := timelyEngine(p.w, workers)
		if err != nil {
			return err
		}
		st := e.RunInterval(horizon)
		total := int(horizon) - 1
		onTime := 0
		for _, ep := range st.EpochLatencies {
			if ep.Latency <= 1.0 {
				onTime++
			}
		}
		row := TimelyRow{
			Query:           p.w.Query,
			Workers:         workers,
			Indicated:       workers == p.indicated,
			EpochsCompleted: len(st.EpochLatencies),
			EpochsTotal:     total,
			Latency:         epochQuantiles(st.EpochLatencies),
		}
		if len(st.EpochLatencies) > 0 {
			// Epochs that never completed count as missed.
			row.OnTimeFraction = float64(onTime) / float64(total)
		}
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
