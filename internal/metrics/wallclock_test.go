package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestWindowFromDurationsBasic(t *testing.T) {
	id := InstanceID{Operator: "op", Index: 2}
	w, err := WindowFromDurations(id, time.Second, Durations{
		Deserialization: 100 * time.Millisecond,
		Processing:      300 * time.Millisecond,
		Serialization:   100 * time.Millisecond,
		WaitingInput:    400 * time.Millisecond,
		WaitingOutput:   100 * time.Millisecond,
	}, 500, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.ID != id || w.Window != 1 || w.Processed != 500 || w.Pushed != 1000 {
		t.Fatalf("unexpected window %+v", w)
	}
	if got, want := w.Useful(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("useful = %v, want %v", got, want)
	}
	r, err := w.Rates()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TrueProcessing-1000) > 1e-9 || math.Abs(r.TrueOutput-2000) > 1e-9 {
		t.Fatalf("true rates %+v, want 1000/2000", r)
	}
}

func TestWindowFromDurationsExactBoundary(t *testing.T) {
	// Useful time exactly equal to the window must pass unscaled.
	w, err := WindowFromDurations(InstanceID{Operator: "op"}, time.Second,
		Durations{Processing: time.Second}, 10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Processing != 1 {
		t.Fatalf("processing = %v, want 1 (unscaled)", w.Processing)
	}
}

func TestWindowFromDurationsJitterClamped(t *testing.T) {
	// 10% overshoot sits inside the default 25% tolerance: the useful
	// components are scaled to fit the window, preserving proportions.
	d := Durations{
		Deserialization: 110 * time.Millisecond,
		Processing:      880 * time.Millisecond,
		Serialization:   110 * time.Millisecond,
	}
	w, err := WindowFromDurations(InstanceID{Operator: "op"}, time.Second, d, 100, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Useful(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("clamped useful = %v, want exactly the 1s window", got)
	}
	// Proportions preserved: processing is 80% of useful before and
	// after scaling.
	if got, want := w.Processing/w.Useful(), 0.8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("processing share = %v, want %v", got, want)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("clamped window fails validation: %v", err)
	}
}

func TestWindowFromDurationsJitterCustomTolerance(t *testing.T) {
	// 10% overshoot with a 5% tolerance must error; with a 15%
	// tolerance it clamps.
	d := Durations{Processing: 1100 * time.Millisecond}
	if _, err := WindowFromDurations(InstanceID{Operator: "op"}, time.Second, d, 1, 1, 0.05); err == nil {
		t.Fatal("expected error beyond 5% tolerance")
	}
	w, err := WindowFromDurations(InstanceID{Operator: "op"}, time.Second, d, 1, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Useful()-1) > 1e-12 {
		t.Fatalf("useful = %v, want 1", w.Useful())
	}
}

func TestWindowFromDurationsBeyondTolerance(t *testing.T) {
	// 30% overshoot exceeds the default tolerance: broken accounting,
	// not jitter.
	d := Durations{Processing: 1300 * time.Millisecond}
	if _, err := WindowFromDurations(InstanceID{Operator: "op"}, time.Second, d, 1, 1, 0); err == nil {
		t.Fatal("expected error beyond default tolerance")
	}
}

func TestWindowFromDurationsInvalid(t *testing.T) {
	if _, err := WindowFromDurations(InstanceID{Operator: "op"}, 0, Durations{}, 0, 0, 0); err == nil {
		t.Fatal("expected error for zero window")
	}
	if _, err := WindowFromDurations(InstanceID{Operator: "op"}, -time.Second, Durations{}, 0, 0, 0); err == nil {
		t.Fatal("expected error for negative window")
	}
}

// TestWindowFromDurationsRejectsNegatives pins that every negative
// duration component and negative count is rejected up front with an
// error naming the offending field — before the jitter clamp can scale
// a corrupted split into something that merely looks valid. A negative
// useful time would flip the sign of the true-rate estimate
// downstream.
func TestWindowFromDurationsRejectsNegatives(t *testing.T) {
	id := InstanceID{Operator: "op", Index: 1}
	cases := []struct {
		name      string
		d         Durations
		processed int64
		pushed    int64
	}{
		{"deserialization", Durations{Deserialization: -time.Millisecond}, 1, 1},
		{"processing", Durations{Processing: -time.Millisecond}, 1, 1},
		{"serialization", Durations{Serialization: -time.Millisecond}, 1, 1},
		{"waiting-for-input", Durations{WaitingInput: -time.Millisecond}, 1, 1},
		{"waiting-for-output", Durations{WaitingOutput: -time.Millisecond}, 1, 1},
		{"processed", Durations{Processing: time.Millisecond}, -1, 1},
		{"pushed", Durations{Processing: time.Millisecond}, 1, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := WindowFromDurations(id, time.Second, tc.d, tc.processed, tc.pushed, 0)
			if err == nil {
				t.Fatalf("negative %s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Fatalf("error %q does not name the %s field", err, tc.name)
			}
		})
	}
	// A negative component must not be rescued by a positive overshoot
	// elsewhere: useful time within tolerance overall, yet corrupted.
	_, err := WindowFromDurations(id, time.Second,
		Durations{Processing: 1100 * time.Millisecond, Serialization: -50 * time.Millisecond}, 1, 1, 0)
	if err == nil {
		t.Fatal("negative serialization masked by processing overshoot was accepted")
	}
}

func TestWindowFromDurationsWaitingUnscaled(t *testing.T) {
	// Waiting time is diagnostic: it may exceed the window (e.g. both
	// input and output blocked measurements overlapping a boundary)
	// without being touched by the clamp.
	d := Durations{
		Processing:   1200 * time.Millisecond,
		WaitingInput: 900 * time.Millisecond,
	}
	w, err := WindowFromDurations(InstanceID{Operator: "op"}, time.Second, d, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.WaitingInput, 0.9; math.Abs(got-want) > 1e-12 {
		t.Fatalf("waiting input = %v, want %v (unscaled)", got, want)
	}
}
