package metrics

import "sync"

// Repository is the metrics store of the deployment architecture
// (paper Fig. 5): instrumented jobs report snapshots, the Scaling
// Manager polls for the latest. It retains a bounded history in a ring
// buffer, so publishing past the limit evicts the oldest snapshot in
// O(1) and the store never holds more than limit entries. It is safe
// for concurrent use: job instances publish while the scaling side
// polls.
type Repository struct {
	mu sync.RWMutex
	// ring holds the retained snapshots. While unbounded (limit <= 0)
	// it simply grows by appending. Once bounded and full, head marks
	// the oldest entry and publishes overwrite in place.
	ring    []Snapshot
	head    int
	limit   int
	seq     int
	evicted int
}

// NewRepository creates a repository retaining up to limit snapshots
// (older ones are evicted). limit <= 0 means unbounded.
func NewRepository(limit int) *Repository {
	return &Repository{limit: limit}
}

// Publish stores a snapshot and returns its sequence number.
func (r *Repository) Publish(s Snapshot) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.ring) == r.limit {
		r.ring[r.head] = s.Clone()
		r.head = (r.head + 1) % r.limit
		r.evicted++
	} else {
		r.ring = append(r.ring, s.Clone())
	}
	r.seq++
	return r.seq
}

// Len returns the number of snapshots currently retained.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ring)
}

// at returns the i-th oldest retained snapshot (0 = oldest). Callers
// hold r.mu.
func (r *Repository) at(i int) Snapshot {
	return r.ring[(r.head+i)%len(r.ring)]
}

// Latest returns the most recent snapshot, if any.
func (r *Repository) Latest() (Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.ring) == 0 {
		return Snapshot{}, false
	}
	return r.at(len(r.ring) - 1).Clone(), true
}

// Seq returns the number of snapshots published so far (monotonic,
// unaffected by eviction).
func (r *Repository) Seq() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}

// Evicted returns how many snapshots the bounded ring has overwritten
// — the silent-data-loss counter the observability layer exports, so a
// history limit sized below the scrape cadence is visible instead of
// quietly shedding the oldest windows.
func (r *Repository) Evicted() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.evicted
}

// History returns up to n most recent snapshots, oldest first. n <= 0
// returns everything retained.
func (r *Repository) History(n int) []Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]Snapshot, 0, n)
	for i := len(r.ring) - n; i < len(r.ring); i++ {
		out = append(out, r.at(i).Clone())
	}
	return out
}
