package metrics

import "sort"

// MergeByInstance folds a list containing multiple windows per instance
// into one merged window per instance, sorted by (operator, index).
// Harnesses use it to aggregate fine-grained engine intervals into one
// policy interval. All windows of an instance must be mergeable; an
// error from Merge aborts the fold.
func MergeByInstance(windows []WindowMetrics) ([]WindowMetrics, error) {
	byID := make(map[InstanceID]WindowMetrics)
	order := make([]InstanceID, 0)
	for _, w := range windows {
		if prev, ok := byID[w.ID]; ok {
			m, err := prev.Merge(w)
			if err != nil {
				return nil, err
			}
			byID[w.ID] = m
		} else {
			byID[w.ID] = w
			order = append(order, w.ID)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Operator != order[j].Operator {
			return order[i].Operator < order[j].Operator
		}
		return order[i].Index < order[j].Index
	})
	out := make([]WindowMetrics, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out, nil
}

// BuildSnapshot aggregates per-instance windows into the per-operator
// snapshot the policy consumes, attaching the given source target
// rates. Windows are grouped by operator and folded with
// AggregateOperator.
func BuildSnapshot(t float64, windows []WindowMetrics, sourceRates map[string]float64) (Snapshot, error) {
	groups := make(map[string][]WindowMetrics)
	for _, w := range windows {
		groups[w.ID.Operator] = append(groups[w.ID.Operator], w)
	}
	snap := Snapshot{
		Time:        t,
		Operators:   make(map[string]OperatorRates, len(groups)),
		SourceRates: make(map[string]float64, len(sourceRates)),
	}
	for op, ws := range groups {
		agg, err := AggregateOperator(ws)
		if err != nil {
			return Snapshot{}, err
		}
		snap.Operators[op] = agg
	}
	for s, r := range sourceRates {
		snap.SourceRates[s] = r
	}
	return snap, nil
}
