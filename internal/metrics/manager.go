package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// EventKind enumerates the raw instrumentation events a stream
// processor emits. The set mirrors what the authors' MetricsManager
// consumes from Flink buffers and Timely trace logs (§4.1).
type EventKind int

const (
	// EvRecordsProcessed reports Value records pulled from the input.
	EvRecordsProcessed EventKind = iota
	// EvRecordsPushed reports Value records pushed to the output.
	EvRecordsPushed
	// EvDeserialization, EvProcessing, EvSerialization report Value
	// seconds spent in the respective useful activity.
	EvDeserialization
	EvProcessing
	EvSerialization
	// EvWaitingInput and EvWaitingOutput report Value seconds blocked.
	EvWaitingInput
	EvWaitingOutput
)

var eventKindNames = [...]string{
	"records_processed", "records_pushed",
	"deserialization", "processing", "serialization",
	"waiting_input", "waiting_output",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one raw instrumentation record.
type Event struct {
	Time  float64 // seconds since job start
	ID    InstanceID
	Kind  EventKind
	Value float64
}

// Manager aggregates raw events into WindowMetrics per reporting
// interval, one window per instance, exactly like the per-thread
// MetricsManager the authors added to Flink and Timely. It is safe for
// concurrent use: instance threads call Record, the scaling side calls
// Flush.
type Manager struct {
	mu       sync.Mutex
	interval float64
	// open windows keyed by instance; window start time tracked so
	// flushing can split correctly on interval boundaries.
	open        map[InstanceID]*WindowMetrics
	windowStart float64
	now         float64
	out         []WindowMetrics
	dropped     int
}

// NewManager creates a manager that cuts windows every interval
// seconds of event time.
func NewManager(interval float64) (*Manager, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("metrics: manager interval %v <= 0", interval)
	}
	return &Manager{
		interval: interval,
		open:     make(map[InstanceID]*WindowMetrics),
	}, nil
}

// Record folds one event into the current window of its instance.
// Events are expected in non-decreasing time order per the engine's
// log; out-of-order events (time before the current window start) are
// counted as dropped, mirroring how the real manager discards stale
// trace records rather than blocking.
func (m *Manager) Record(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recordLocked(e)
}

// RecordAll folds a batch of events under one lock acquisition — the
// path for reporters that flush per interval rather than per event
// (one lock round-trip per flush instead of one per event).
func (m *Manager) RecordAll(events []Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range events {
		m.recordLocked(e)
	}
}

func (m *Manager) recordLocked(e Event) {
	if e.Time < m.windowStart || e.Value < 0 {
		m.dropped++
		return
	}
	if e.Time > m.now {
		m.now = e.Time
	}
	for m.now >= m.windowStart+m.interval {
		m.cutLocked()
	}
	w, ok := m.open[e.ID]
	if !ok {
		w = &WindowMetrics{ID: e.ID}
		m.open[e.ID] = w
	}
	switch e.Kind {
	case EvRecordsProcessed:
		w.Processed += e.Value
	case EvRecordsPushed:
		w.Pushed += e.Value
	case EvDeserialization:
		w.Deserialization += e.Value
	case EvProcessing:
		w.Processing += e.Value
	case EvSerialization:
		w.Serialization += e.Value
	case EvWaitingInput:
		w.WaitingInput += e.Value
	case EvWaitingOutput:
		w.WaitingOutput += e.Value
	default:
		m.dropped++
	}
}

// cutLocked closes the current window for all instances and advances
// the window boundary by one interval. The open map is cleared in
// place (the delete-range loop lowers to a runtime map clear), not
// reallocated — a manager cutting every interval reuses its buckets
// instead of producing one garbage map per cut.
func (m *Manager) cutLocked() {
	for _, w := range m.open {
		w.Window = m.interval
		m.out = append(m.out, *w)
	}
	for id := range m.open {
		delete(m.open, id)
	}
	m.windowStart += m.interval
}

// Advance moves event time forward (e.g. on a quiescent stream) so
// that empty windows still close.
func (m *Manager) Advance(now float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now > m.now {
		m.now = now
	}
	for m.now >= m.windowStart+m.interval {
		m.cutLocked()
	}
}

// Flush returns all closed windows accumulated so far, oldest first,
// and clears the output buffer. Windows are sorted by (operator,
// instance) within equal close times for determinism.
func (m *Manager) Flush() []WindowMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.out
	m.out = nil
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].ID.Operator != out[j].ID.Operator {
			return out[i].ID.Operator < out[j].ID.Operator
		}
		return out[i].ID.Index < out[j].ID.Index
	})
	return out
}

// Dropped reports how many events were discarded (stale or malformed).
func (m *Manager) Dropped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}
