package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func validWindow() WindowMetrics {
	return WindowMetrics{
		ID:              InstanceID{Operator: "map", Index: 0},
		Window:          10,
		Deserialization: 1,
		Processing:      3,
		Serialization:   1,
		WaitingInput:    5,
		Processed:       1000,
		Pushed:          2000,
	}
}

func TestUsefulTime(t *testing.T) {
	w := validWindow()
	if got := w.Useful(); got != 5 {
		t.Fatalf("Useful = %v, want 5", got)
	}
}

func TestRates(t *testing.T) {
	w := validWindow()
	r, err := w.Rates()
	if err != nil {
		t.Fatalf("Rates: %v", err)
	}
	// λp = 1000/5, λ̂p = 1000/10, λo = 2000/5, λ̂o = 2000/10.
	if r.TrueProcessing != 200 || r.ObservedProcessing != 100 {
		t.Errorf("processing rates = %v/%v, want 200/100", r.TrueProcessing, r.ObservedProcessing)
	}
	if r.TrueOutput != 400 || r.ObservedOutput != 200 {
		t.Errorf("output rates = %v/%v, want 400/200", r.TrueOutput, r.ObservedOutput)
	}
}

func TestRatesZeroUsefulTime(t *testing.T) {
	w := WindowMetrics{ID: InstanceID{Operator: "idle"}, Window: 10, WaitingInput: 10}
	r, err := w.Rates()
	if !errors.Is(err, ErrNoUsefulTime) {
		t.Fatalf("err = %v, want ErrNoUsefulTime", err)
	}
	if r.ObservedProcessing != 0 || r.TrueProcessing != 0 {
		t.Errorf("rates on idle window = %+v", r)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*WindowMetrics)
		want   string
	}{
		{"zero window", func(w *WindowMetrics) { w.Window = 0 }, "window"},
		{"negative window", func(w *WindowMetrics) { w.Window = -1 }, "window"},
		{"negative processed", func(w *WindowMetrics) { w.Processed = -1 }, "processed"},
		{"NaN pushed", func(w *WindowMetrics) { w.Pushed = math.NaN() }, "pushed"},
		{"Inf processing", func(w *WindowMetrics) { w.Processing = math.Inf(1) }, "processing"},
		{"useful exceeds window", func(w *WindowMetrics) { w.Processing = 100 }, "exceeds window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := validWindow()
			tc.mutate(&w)
			err := w.Validate()
			if err == nil {
				t.Fatal("Validate passed")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v missing %q", err, tc.want)
			}
		})
	}
}

func TestMerge(t *testing.T) {
	a := validWindow()
	b := validWindow()
	m, err := a.Merge(b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.Window != 20 || m.Processed != 2000 || m.Useful() != 10 {
		t.Errorf("merged = %+v", m)
	}
	// Merged rates equal the originals' (they were identical).
	ra, _ := a.Rates()
	rm, _ := m.Rates()
	if ra != rm {
		t.Errorf("merge changed rates: %+v vs %+v", ra, rm)
	}
	b.ID.Index = 9
	if _, err := a.Merge(b); err == nil {
		t.Error("cross-instance merge accepted")
	}
}

// Property (paper §3.2): observed rates never exceed true rates, since
// Wu <= W.
func TestQuickObservedLeqTrue(t *testing.T) {
	f := func(procU, windowExtra, recs, pushed uint16) bool {
		useful := float64(procU%1000) / 100 // 0..10
		window := useful + float64(windowExtra%1000)/100 + 0.01
		w := WindowMetrics{
			ID:         InstanceID{Operator: "x"},
			Window:     window,
			Processing: useful,
			Processed:  float64(recs),
			Pushed:     float64(pushed),
		}
		r, err := w.Rates()
		if errors.Is(err, ErrNoUsefulTime) {
			return r.ObservedProcessing >= 0
		}
		if err != nil {
			return false
		}
		const eps = 1e-9
		return r.ObservedProcessing <= r.TrueProcessing+eps &&
			r.ObservedOutput <= r.TrueOutput+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging windows is a linear operation — the merged window's
// counters are the sums, so aggregate rate equals the time-weighted
// combination.
func TestQuickMergeLinearity(t *testing.T) {
	f := func(p1, p2, u1, u2 uint16) bool {
		mk := func(p, u uint16) WindowMetrics {
			return WindowMetrics{
				ID:         InstanceID{Operator: "x"},
				Window:     10,
				Processing: float64(u%10) + 0.1,
				Processed:  float64(p),
			}
		}
		a, b := mk(p1, u1), mk(p2, u2)
		m, err := a.Merge(b)
		if err != nil {
			return false
		}
		r, err := m.Rates()
		if err != nil {
			return false
		}
		want := (a.Processed + b.Processed) / (a.Useful() + b.Useful())
		return math.Abs(r.TrueProcessing-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateOperator(t *testing.T) {
	w1 := validWindow()
	w2 := validWindow()
	w2.ID.Index = 1
	w2.Processing = 1 // useful = 3 -> λp = 1000/3
	agg, err := AggregateOperator([]WindowMetrics{w1, w2})
	if err != nil {
		t.Fatalf("AggregateOperator: %v", err)
	}
	if agg.Instances != 2 {
		t.Errorf("Instances = %d", agg.Instances)
	}
	want := 200.0 + 1000.0/3.0
	if math.Abs(agg.TrueProcessing-want) > 1e-9 {
		t.Errorf("TrueProcessing = %v, want %v", agg.TrueProcessing, want)
	}
	if sel := agg.Selectivity(); math.Abs(sel-agg.TrueOutput/agg.TrueProcessing) > 1e-12 {
		t.Errorf("Selectivity = %v", sel)
	}
}

func TestAggregateOperatorIdleInstanceCounts(t *testing.T) {
	w1 := validWindow()
	idle := WindowMetrics{ID: InstanceID{Operator: "map", Index: 1}, Window: 10, WaitingInput: 10}
	agg, err := AggregateOperator([]WindowMetrics{w1, idle})
	if err != nil {
		t.Fatalf("AggregateOperator: %v", err)
	}
	if agg.Instances != 2 {
		t.Errorf("Instances = %d, want 2 (idle instance still deployed)", agg.Instances)
	}
	if agg.TrueProcessing != 200 {
		t.Errorf("TrueProcessing = %v, want 200 (idle adds 0)", agg.TrueProcessing)
	}
}

func TestAggregateOperatorErrors(t *testing.T) {
	if _, err := AggregateOperator(nil); err == nil {
		t.Error("empty aggregate accepted")
	}
	w1 := validWindow()
	w2 := validWindow()
	w2.ID.Operator = "other"
	if _, err := AggregateOperator([]WindowMetrics{w1, w2}); err == nil {
		t.Error("mixed-operator aggregate accepted")
	}
	w3 := validWindow() // same operator, same index as w1
	if _, err := AggregateOperator([]WindowMetrics{w1, w3}); err == nil {
		t.Error("duplicate-instance aggregate accepted")
	}
	bad := validWindow()
	bad.Window = -1
	if _, err := AggregateOperator([]WindowMetrics{bad}); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestSelectivityZeroProcessing(t *testing.T) {
	if got := (OperatorRates{}).Selectivity(); got != 0 {
		t.Errorf("Selectivity = %v, want 0", got)
	}
}

func TestSnapshotClone(t *testing.T) {
	s := Snapshot{
		Time:        5,
		Operators:   map[string]OperatorRates{"a": {Operator: "a", Instances: 2}},
		SourceRates: map[string]float64{"src": 100},
	}
	c := s.Clone()
	c.Operators["a"] = OperatorRates{Operator: "a", Instances: 9}
	c.SourceRates["src"] = 7
	if s.Operators["a"].Instances != 2 || s.SourceRates["src"] != 100 {
		t.Error("Clone aliases original maps")
	}
	empty := Snapshot{}.Clone()
	if empty.Operators != nil || empty.SourceRates != nil {
		t.Error("Clone of zero snapshot allocated maps")
	}
}

func TestInstanceIDString(t *testing.T) {
	id := InstanceID{Operator: "map", Index: 3}
	if id.String() != "map[3]" {
		t.Errorf("String = %q", id.String())
	}
}

func TestEventKindString(t *testing.T) {
	if EvRecordsProcessed.String() != "records_processed" {
		t.Error("EvRecordsProcessed name")
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}
