// Package metrics models the lightweight instrumentation DS2 requires
// (paper §4.1): per operator-instance counts of records processed and
// pushed, plus the split of elapsed time into useful time
// (deserialization + processing + serialization) and waiting time.
//
// From a window of such counters the package derives the paper's four
// rates (Eq. 1–4): true/observed processing/output rates. Windows from
// multiple instances aggregate into per-operator rates (Eq. 5–6), which
// is what the policy in internal/core consumes.
//
// The package also provides an event-level MetricsManager mirroring the
// per-thread managers the authors added to Flink and Timely: raw
// instrumentation events stream in, and aggregated WindowMetrics come
// out per reporting interval.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// InstanceID identifies one parallel instance of a logical operator.
type InstanceID struct {
	Operator string `json:"operator"`
	Index    int    `json:"index"`
}

func (id InstanceID) String() string {
	return fmt.Sprintf("%s[%d]", id.Operator, id.Index)
}

// WindowMetrics holds the counters one operator instance accumulated
// over one observation window of Window seconds (W in the paper).
// All durations are in seconds of observed (virtual or wall-clock) time
// and all counts are records. Counts are float64 because the fluid
// simulator produces fractional records; real integrations report
// integers, which embed losslessly.
type WindowMetrics struct {
	ID InstanceID `json:"id"`

	// Window is W: the observed duration of the window.
	Window float64 `json:"window"`
	// Deserialization, Processing and Serialization sum to the useful
	// time Wu. Integrations that cannot split the three activities may
	// report everything under Processing.
	Deserialization float64 `json:"deserialization"`
	Processing      float64 `json:"processing"`
	Serialization   float64 `json:"serialization"`
	// WaitingInput and WaitingOutput record time blocked on empty
	// input buffers / full output buffers. They are diagnostic: rates
	// derive from useful time only.
	WaitingInput  float64 `json:"waiting_input"`
	WaitingOutput float64 `json:"waiting_output"`

	// Processed is Rprc: records pulled from the input during the
	// window. Pushed is Rpsd: records pushed to the output.
	Processed float64 `json:"processed"`
	Pushed    float64 `json:"pushed"`
}

// Useful returns Wu, the useful time of the window.
func (w WindowMetrics) Useful() float64 {
	return w.Deserialization + w.Processing + w.Serialization
}

// Validate checks the structural invariants of a window: non-negative
// fields, and Wu <= W (allowing a small tolerance for float noise).
func (w WindowMetrics) Validate() error {
	if w.Window <= 0 {
		return fmt.Errorf("metrics: %s: window %v <= 0", w.ID, w.Window)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"deserialization", w.Deserialization},
		{"processing", w.Processing},
		{"serialization", w.Serialization},
		{"waiting_input", w.WaitingInput},
		{"waiting_output", w.WaitingOutput},
		{"processed", w.Processed},
		{"pushed", w.Pushed},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("metrics: %s: %s = %v", w.ID, f.name, f.v)
		}
	}
	if u := w.Useful(); u > w.Window*(1+1e-9)+1e-12 {
		return fmt.Errorf("metrics: %s: useful time %v exceeds window %v", w.ID, u, w.Window)
	}
	return nil
}

// ErrNoUsefulTime is returned when true rates are requested for a
// window in which the instance did no useful work (Wu = 0); the paper
// leaves λp, λo undefined in that case.
var ErrNoUsefulTime = errors.New("metrics: true rates undefined (zero useful time)")

// Rates bundles the four rates of the paper's Eq. 1–4 for one instance
// and one window, in records per second.
type Rates struct {
	TrueProcessing     float64 `json:"true_processing"`     // λp
	TrueOutput         float64 `json:"true_output"`         // λo
	ObservedProcessing float64 `json:"observed_processing"` // λ̂p
	ObservedOutput     float64 `json:"observed_output"`     // λ̂o
}

// Rates derives the instance rates from the window counters. It
// returns ErrNoUsefulTime when Wu = 0 and the true rates are undefined.
func (w WindowMetrics) Rates() (Rates, error) {
	if err := w.Validate(); err != nil {
		return Rates{}, err
	}
	u := w.Useful()
	r := Rates{
		ObservedProcessing: w.Processed / w.Window,
		ObservedOutput:     w.Pushed / w.Window,
	}
	if u == 0 {
		return r, ErrNoUsefulTime
	}
	r.TrueProcessing = w.Processed / u
	r.TrueOutput = w.Pushed / u
	return r, nil
}

// Merge combines two windows of the same instance into one covering
// both (counter addition). It is used to aggregate sub-interval
// reports into a policy interval.
func (w WindowMetrics) Merge(o WindowMetrics) (WindowMetrics, error) {
	if w.ID != o.ID {
		return WindowMetrics{}, fmt.Errorf("metrics: merging windows of %s and %s", w.ID, o.ID)
	}
	return WindowMetrics{
		ID:              w.ID,
		Window:          w.Window + o.Window,
		Deserialization: w.Deserialization + o.Deserialization,
		Processing:      w.Processing + o.Processing,
		Serialization:   w.Serialization + o.Serialization,
		WaitingInput:    w.WaitingInput + o.WaitingInput,
		WaitingOutput:   w.WaitingOutput + o.WaitingOutput,
		Processed:       w.Processed + o.Processed,
		Pushed:          w.Pushed + o.Pushed,
	}, nil
}

// OperatorRates holds the per-operator aggregates of Eq. 5–6 plus the
// instance count they were measured at.
type OperatorRates struct {
	Operator string `json:"operator"`
	// Instances is the number of instances that reported (pi).
	Instances int `json:"instances"`
	// TrueProcessing is oi[λp]: sum over instances of per-instance
	// true processing rate. TrueOutput likewise for oi[λo].
	TrueProcessing float64 `json:"true_processing"`
	TrueOutput     float64 `json:"true_output"`
	// ObservedProcessing and ObservedOutput are the corresponding sums
	// of observed rates; diagnostic only.
	ObservedProcessing float64 `json:"observed_processing"`
	ObservedOutput     float64 `json:"observed_output"`
}

// Selectivity returns oi[λo]/oi[λp], the operator's output-per-input
// ratio. It returns 0 when the processing rate is 0.
func (a OperatorRates) Selectivity() float64 {
	if a.TrueProcessing == 0 {
		return 0
	}
	return a.TrueOutput / a.TrueProcessing
}

// AggregateOperator folds instance windows of a single operator into
// OperatorRates per Eq. 5–6. Instances whose true rates are undefined
// (zero useful time) contribute zero to the true-rate sums but still
// count toward Instances; the policy layer decides how to treat
// operators where no instance did useful work.
//
// It returns an error if windows are empty, belong to different
// operators, or fail validation.
func AggregateOperator(windows []WindowMetrics) (OperatorRates, error) {
	if len(windows) == 0 {
		return OperatorRates{}, errors.New("metrics: no windows to aggregate")
	}
	op := windows[0].ID.Operator
	out := OperatorRates{Operator: op}
	seen := make(map[int]bool, len(windows))
	for _, w := range windows {
		if w.ID.Operator != op {
			return OperatorRates{}, fmt.Errorf("metrics: window for %s while aggregating %s", w.ID, op)
		}
		if seen[w.ID.Index] {
			return OperatorRates{}, fmt.Errorf("metrics: duplicate window for %s", w.ID)
		}
		seen[w.ID.Index] = true
		r, err := w.Rates()
		if err != nil && !errors.Is(err, ErrNoUsefulTime) {
			return OperatorRates{}, err
		}
		out.Instances++
		out.TrueProcessing += r.TrueProcessing
		out.TrueOutput += r.TrueOutput
		out.ObservedProcessing += r.ObservedProcessing
		out.ObservedOutput += r.ObservedOutput
	}
	return out, nil
}

// Snapshot is everything the DS2 policy needs for one decision: the
// per-operator aggregated rates and the externally observed output
// rate of each source (λsrc), in records per second.
type Snapshot struct {
	// Time is the virtual or wall-clock time the snapshot was taken
	// at, in seconds; informational.
	Time float64 `json:"time"`
	// Operators maps operator name to aggregated rates. Sources may
	// be present (their true output rate is then available as a
	// fallback) but SourceRates takes precedence.
	Operators map[string]OperatorRates `json:"operators"`
	// SourceRates maps source operator name to its target output
	// rate in records/s (the λsrc of Eq. 8).
	SourceRates map[string]float64 `json:"source_rates"`
}

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := Snapshot{Time: s.Time}
	if s.Operators != nil {
		out.Operators = make(map[string]OperatorRates, len(s.Operators))
		for k, v := range s.Operators {
			out.Operators[k] = v
		}
	}
	if s.SourceRates != nil {
		out.SourceRates = make(map[string]float64, len(s.SourceRates))
		for k, v := range s.SourceRates {
			out.SourceRates[k] = v
		}
	}
	return out
}
