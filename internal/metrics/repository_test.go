package metrics

import (
	"sync"
	"testing"
)

func TestRepositoryPublishLatest(t *testing.T) {
	r := NewRepository(0)
	if _, ok := r.Latest(); ok {
		t.Error("Latest on empty repo")
	}
	r.Publish(Snapshot{Time: 1})
	seq := r.Publish(Snapshot{Time: 2})
	if seq != 2 || r.Seq() != 2 {
		t.Errorf("seq = %d", seq)
	}
	s, ok := r.Latest()
	if !ok || s.Time != 2 {
		t.Errorf("Latest = %+v, %v", s, ok)
	}
}

func TestRepositoryEviction(t *testing.T) {
	r := NewRepository(2)
	for i := 1; i <= 5; i++ {
		r.Publish(Snapshot{Time: float64(i)})
	}
	h := r.History(0)
	if len(h) != 2 || h[0].Time != 4 || h[1].Time != 5 {
		t.Errorf("History = %+v", h)
	}
	if r.Seq() != 5 {
		t.Errorf("Seq = %d, want 5 (monotonic despite eviction)", r.Seq())
	}
	h1 := r.History(1)
	if len(h1) != 1 || h1[0].Time != 5 {
		t.Errorf("History(1) = %+v", h1)
	}
}

// TestRepositoryRingWraparound walks a small bounded repository far
// past its capacity and checks ordering across every ring position.
func TestRepositoryRingWraparound(t *testing.T) {
	const limit = 3
	r := NewRepository(limit)
	for i := 1; i <= 17; i++ {
		r.Publish(Snapshot{Time: float64(i)})
		if got := r.Len(); got > limit {
			t.Fatalf("Len = %d exceeds limit %d", got, limit)
		}
		want := i
		if want > limit {
			want = limit
		}
		h := r.History(0)
		if len(h) != want {
			t.Fatalf("after %d publishes History has %d entries, want %d", i, len(h), want)
		}
		for j, s := range h {
			if exp := float64(i - want + 1 + j); s.Time != exp {
				t.Fatalf("after %d publishes History[%d].Time = %v, want %v", i, j, s.Time, exp)
			}
		}
		latest, ok := r.Latest()
		if !ok || latest.Time != float64(i) {
			t.Fatalf("Latest = %+v, %v", latest, ok)
		}
	}
}

func TestRepositoryIsolation(t *testing.T) {
	r := NewRepository(0)
	s := Snapshot{Operators: map[string]OperatorRates{"a": {Instances: 1}}}
	r.Publish(s)
	s.Operators["a"] = OperatorRates{Instances: 99} // mutate after publish
	got, _ := r.Latest()
	if got.Operators["a"].Instances != 1 {
		t.Error("repository aliases published snapshot")
	}
	got.Operators["a"] = OperatorRates{Instances: 50} // mutate returned copy
	again, _ := r.Latest()
	if again.Operators["a"].Instances != 1 {
		t.Error("repository aliases returned snapshot")
	}
}

// TestRepositoryConcurrent hammers a bounded repository from writer
// and reader goroutines so `go test -race` exercises the ring-buffer
// eviction path, not just append.
func TestRepositoryConcurrent(t *testing.T) {
	r := NewRepository(10)
	const goroutines, publishes = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < publishes; i++ {
				r.Publish(Snapshot{
					Time:      float64(i),
					Operators: map[string]OperatorRates{"op": {Instances: i}},
				})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < publishes; i++ {
				if s, ok := r.Latest(); ok && s.Operators == nil {
					t.Error("Latest returned snapshot without operators")
					return
				}
				if h := r.History(5); len(h) > 10 {
					t.Errorf("History returned %d entries from a 10-bounded repo", len(h))
					return
				}
				r.Len()
			}
		}()
	}
	wg.Wait()
	if r.Seq() != goroutines*publishes {
		t.Errorf("Seq = %d, want %d", r.Seq(), goroutines*publishes)
	}
	if r.Len() != 10 {
		t.Errorf("Len = %d, want 10", r.Len())
	}
}
