package metrics

import (
	"sync"
	"testing"
)

func TestManagerBasicWindowing(t *testing.T) {
	m, err := NewManager(10)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	id := InstanceID{Operator: "map", Index: 0}
	m.Record(Event{Time: 1, ID: id, Kind: EvRecordsProcessed, Value: 100})
	m.Record(Event{Time: 2, ID: id, Kind: EvProcessing, Value: 0.5})
	m.Record(Event{Time: 9.5, ID: id, Kind: EvRecordsPushed, Value: 50})
	if got := m.Flush(); len(got) != 0 {
		t.Fatalf("window closed early: %v", got)
	}
	// Crossing t=10 closes the first window.
	m.Record(Event{Time: 11, ID: id, Kind: EvRecordsProcessed, Value: 7})
	ws := m.Flush()
	if len(ws) != 1 {
		t.Fatalf("Flush -> %d windows, want 1", len(ws))
	}
	w := ws[0]
	if w.Window != 10 || w.Processed != 100 || w.Pushed != 50 || w.Processing != 0.5 {
		t.Errorf("window = %+v", w)
	}
	// The t=11 event belongs to the next window.
	m.Advance(20)
	ws = m.Flush()
	if len(ws) != 1 || ws[0].Processed != 7 {
		t.Fatalf("second window = %v", ws)
	}
}

func TestManagerAllEventKinds(t *testing.T) {
	m, _ := NewManager(1)
	id := InstanceID{Operator: "x"}
	kinds := []EventKind{
		EvRecordsProcessed, EvRecordsPushed, EvDeserialization,
		EvProcessing, EvSerialization, EvWaitingInput, EvWaitingOutput,
	}
	for _, k := range kinds {
		m.Record(Event{Time: 0.5, ID: id, Kind: k, Value: 0.1})
	}
	m.Advance(1)
	ws := m.Flush()
	if len(ws) != 1 {
		t.Fatalf("windows = %d", len(ws))
	}
	w := ws[0]
	if w.Processed != 0.1 || w.Pushed != 0.1 || w.Deserialization != 0.1 ||
		w.Processing != 0.1 || w.Serialization != 0.1 ||
		w.WaitingInput != 0.1 || w.WaitingOutput != 0.1 {
		t.Errorf("window = %+v", w)
	}
}

func TestManagerMultipleInstancesSortedFlush(t *testing.T) {
	m, _ := NewManager(1)
	for i := 2; i >= 0; i-- {
		m.Record(Event{Time: 0.1, ID: InstanceID{Operator: "b", Index: i}, Kind: EvRecordsProcessed, Value: 1})
	}
	m.Record(Event{Time: 0.1, ID: InstanceID{Operator: "a", Index: 0}, Kind: EvRecordsProcessed, Value: 1})
	m.Advance(1)
	ws := m.Flush()
	if len(ws) != 4 {
		t.Fatalf("windows = %d, want 4", len(ws))
	}
	if ws[0].ID.Operator != "a" || ws[1].ID.Index != 0 || ws[3].ID.Index != 2 {
		t.Errorf("flush order: %v %v %v %v", ws[0].ID, ws[1].ID, ws[2].ID, ws[3].ID)
	}
}

func TestManagerDropsStaleAndMalformed(t *testing.T) {
	m, _ := NewManager(1)
	id := InstanceID{Operator: "x"}
	m.Advance(5)                                                          // window start now 5
	m.Record(Event{Time: 1, ID: id, Kind: EvRecordsProcessed, Value: 1})  // stale
	m.Record(Event{Time: 6, ID: id, Kind: EvRecordsProcessed, Value: -1}) // negative
	m.Record(Event{Time: 6, ID: id, Kind: EventKind(99), Value: 1})       // unknown kind
	if got := m.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
}

func TestManagerEmptyWindowsNotEmitted(t *testing.T) {
	m, _ := NewManager(1)
	m.Advance(100)
	if ws := m.Flush(); len(ws) != 0 {
		t.Errorf("empty windows emitted: %v", ws)
	}
}

func TestManagerGapSpanningEvent(t *testing.T) {
	m, _ := NewManager(1)
	id := InstanceID{Operator: "x"}
	m.Record(Event{Time: 0.5, ID: id, Kind: EvRecordsProcessed, Value: 1})
	// Long silence, then another event far in the future: the old
	// window closes at its boundary, and no phantom windows appear.
	m.Record(Event{Time: 10.5, ID: id, Kind: EvRecordsProcessed, Value: 2})
	m.Advance(11)
	ws := m.Flush()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].Processed+ws[1].Processed != 3 {
		t.Errorf("lost records: %v", ws)
	}
}

func TestManagerInvalidInterval(t *testing.T) {
	if _, err := NewManager(0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewManager(-1); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestManagerRecordAllBatch(t *testing.T) {
	// A batch fold must be indistinguishable from per-event Record,
	// including window cuts triggered mid-batch and drop accounting.
	single, _ := NewManager(10)
	batch, _ := NewManager(10)
	id := InstanceID{Operator: "map", Index: 1}
	events := []Event{
		{Time: 1, ID: id, Kind: EvRecordsProcessed, Value: 100},
		{Time: 2, ID: id, Kind: EvProcessing, Value: 0.5},
		{Time: 11, ID: id, Kind: EvRecordsProcessed, Value: 7}, // cuts window 1
		{Time: 5, ID: id, Kind: EvRecordsPushed, Value: 3},     // stale: dropped
		{Time: 12, ID: id, Kind: EvWaitingInput, Value: 0.2},
	}
	for _, e := range events {
		single.Record(e)
	}
	batch.RecordAll(events)
	single.Advance(20)
	batch.Advance(20)
	sw, bw := single.Flush(), batch.Flush()
	if len(sw) != len(bw) {
		t.Fatalf("windows: single %d, batch %d", len(sw), len(bw))
	}
	for i := range sw {
		if sw[i] != bw[i] {
			t.Errorf("window %d: single %+v, batch %+v", i, sw[i], bw[i])
		}
	}
	if single.Dropped() != batch.Dropped() || batch.Dropped() != 1 {
		t.Errorf("dropped: single %d, batch %d, want 1", single.Dropped(), batch.Dropped())
	}
}

func TestManagerCutReusesOpenMap(t *testing.T) {
	// After a cut, the open map is cleared in place: entries from the
	// previous window must not leak into the next, and instances with
	// no new events must not emit empty windows.
	m, _ := NewManager(1)
	a := InstanceID{Operator: "a"}
	b := InstanceID{Operator: "b"}
	m.Record(Event{Time: 0.5, ID: a, Kind: EvRecordsProcessed, Value: 5})
	m.Record(Event{Time: 0.5, ID: b, Kind: EvRecordsProcessed, Value: 9})
	// Cross several cuts; only instance a reports again.
	m.Record(Event{Time: 3.5, ID: a, Kind: EvRecordsProcessed, Value: 2})
	m.Advance(4)
	ws := m.Flush()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3 (a, b, then a again)", len(ws))
	}
	for _, w := range ws {
		switch {
		case w.ID == a && w.Processed != 5 && w.Processed != 2:
			t.Errorf("stale counts leaked into %+v", w)
		case w.ID == b && w.Processed != 9:
			t.Errorf("stale counts leaked into %+v", w)
		}
	}
}

func TestManagerConcurrentRecord(t *testing.T) {
	m, _ := NewManager(1000) // one big window
	var wg sync.WaitGroup
	const goroutines, events = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := InstanceID{Operator: "x", Index: g}
			for i := 0; i < events; i++ {
				m.Record(Event{Time: 1, ID: id, Kind: EvRecordsProcessed, Value: 1})
			}
		}(g)
	}
	wg.Wait()
	m.Advance(1000)
	ws := m.Flush()
	total := 0.0
	for _, w := range ws {
		total += w.Processed
	}
	if total != goroutines*events {
		t.Errorf("total = %v, want %d", total, goroutines*events)
	}
}
