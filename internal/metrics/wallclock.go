package metrics

import (
	"fmt"
	"time"
)

// LatencySample is a weighted per-record latency observation taken at
// a sink. It lives in the instrumentation package because both the
// simulator and real wall-clock runtimes produce it.
type LatencySample struct {
	Latency float64 `json:"latency"` // seconds
	Weight  float64 `json:"weight"`  // records represented
}

// Durations is the wall-clock split of one operator instance's elapsed
// time over one observation window — the raw material of §3's
// instrumentation, measured with real time.Now() deltas.
type Durations struct {
	Deserialization time.Duration
	Processing      time.Duration
	Serialization   time.Duration
	WaitingInput    time.Duration
	WaitingOutput   time.Duration
}

// Useful returns the useful portion (deserialization + processing +
// serialization) of the split.
func (d Durations) Useful() time.Duration {
	return d.Deserialization + d.Processing + d.Serialization
}

// DefaultJitterTolerance is the relative excess of useful time over the
// window that WindowFromDurations absorbs by default. Wall-clock
// measurements legitimately overshoot the window boundary: an instance
// accounts a record's time when the record completes, so a record
// straddling a window cut attributes its whole span — up to one
// per-record cost — to the window it completes in. 25% covers record
// spans up to a quarter of the reporting interval.
const DefaultJitterTolerance = 0.25

// WindowFromDurations builds a WindowMetrics from wall-clock
// measurements, tolerating timer jitter: when the measured useful time
// exceeds the window by at most jitterTol (relative, <= 0 selects
// DefaultJitterTolerance), the three useful components are scaled down
// proportionally so the window validates instead of hard-failing; a
// larger excess still errors, since it indicates broken accounting
// rather than a record straddling the cut. Waiting times are
// diagnostic and pass through unscaled.
func WindowFromDurations(id InstanceID, window time.Duration, d Durations, processed, pushed int64, jitterTol float64) (WindowMetrics, error) {
	if window <= 0 {
		return WindowMetrics{}, fmt.Errorf("metrics: %s: wall-clock window %v <= 0", id, window)
	}
	// A negative component means broken accounting upstream (a clock
	// stepped backwards, or a caller subtracted overlapping spans).
	// Rejecting it here matters: a negative useful time flips the sign
	// of the true-rate estimate and every policy decision built on it.
	switch {
	case d.Deserialization < 0:
		return WindowMetrics{}, fmt.Errorf("metrics: %s: negative deserialization time %v", id, d.Deserialization)
	case d.Processing < 0:
		return WindowMetrics{}, fmt.Errorf("metrics: %s: negative processing time %v", id, d.Processing)
	case d.Serialization < 0:
		return WindowMetrics{}, fmt.Errorf("metrics: %s: negative serialization time %v", id, d.Serialization)
	case d.WaitingInput < 0:
		return WindowMetrics{}, fmt.Errorf("metrics: %s: negative waiting-for-input time %v", id, d.WaitingInput)
	case d.WaitingOutput < 0:
		return WindowMetrics{}, fmt.Errorf("metrics: %s: negative waiting-for-output time %v", id, d.WaitingOutput)
	case processed < 0:
		return WindowMetrics{}, fmt.Errorf("metrics: %s: negative processed count %d", id, processed)
	case pushed < 0:
		return WindowMetrics{}, fmt.Errorf("metrics: %s: negative pushed count %d", id, pushed)
	}
	if jitterTol <= 0 {
		jitterTol = DefaultJitterTolerance
	}
	w := WindowMetrics{
		ID:              id,
		Window:          window.Seconds(),
		Deserialization: d.Deserialization.Seconds(),
		Processing:      d.Processing.Seconds(),
		Serialization:   d.Serialization.Seconds(),
		WaitingInput:    d.WaitingInput.Seconds(),
		WaitingOutput:   d.WaitingOutput.Seconds(),
		Processed:       float64(processed),
		Pushed:          float64(pushed),
	}
	if u := w.Useful(); u > w.Window {
		if u > w.Window*(1+jitterTol) {
			return WindowMetrics{}, fmt.Errorf("metrics: %s: useful time %v exceeds window %v beyond jitter tolerance %v",
				id, u, w.Window, jitterTol)
		}
		// Scale the split, not just the total, so the three activities
		// keep their measured proportions and Useful() == Window holds
		// exactly afterwards.
		f := w.Window / u
		w.Deserialization *= f
		w.Processing *= f
		w.Serialization *= f
	}
	if err := w.Validate(); err != nil {
		return WindowMetrics{}, err
	}
	return w, nil
}
