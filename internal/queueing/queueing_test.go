package queueing

import (
	"math"
	"testing"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

func fixture(t *testing.T) (*dataflow.Graph, *Controller) {
	t.Helper()
	g, err := dataflow.Linear("src", "map")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g, c
}

func snap(srcObserved, mapTrue float64, mapInstances int) metrics.Snapshot {
	return metrics.Snapshot{
		Operators: map[string]metrics.OperatorRates{
			"src": {Operator: "src", Instances: 1, ObservedOutput: srcObserved},
			"map": {Operator: "map", Instances: mapInstances,
				TrueProcessing: mapTrue, ObservedProcessing: math.Min(srcObserved, mapTrue)},
		},
		SourceRates: map[string]float64{"src": srcObserved},
	}
}

func TestErlangCBasics(t *testing.T) {
	// Single server M/M/1: Wq = rho/(mu - lambda).
	lambda, mu := 50.0, 100.0
	want := 0.5 / (100 - 50)
	if got := erlangCWait(lambda, mu, 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("M/M/1 Wq = %v, want %v", got, want)
	}
	// Unstable system: infinite wait.
	if got := erlangCWait(200, 100, 1); !math.IsInf(got, 1) {
		t.Errorf("unstable Wq = %v", got)
	}
	// More servers -> shorter wait.
	if erlangCWait(150, 100, 2) <= erlangCWait(150, 100, 3) {
		t.Error("Wq not decreasing in k")
	}
}

func TestDecideScalesToObservedLoad(t *testing.T) {
	_, c := fixture(t)
	cur := dataflow.Parallelism{"src": 1, "map": 1}
	// Observed arrival 500/s, per-instance service 100/s -> needs
	// at least 6 servers for rho < 0.9.
	dec, err := c.Decide(snap(500, 100, 1), cur)
	if err != nil {
		t.Fatal(err)
	}
	if dec["map"] < 6 {
		t.Errorf("map = %d, want >= 6", dec["map"])
	}
}

// TestUnderestimatesUnderBackpressure demonstrates the pathology DS2's
// paper calls out (§2): with the queue saturated, the observed arrival
// rate equals the service rate, so the queueing model sees utilisation
// ~1 server's worth and barely scales — unlike DS2, which uses the
// target source rate.
func TestUnderestimatesUnderBackpressure(t *testing.T) {
	_, c := fixture(t)
	cur := dataflow.Parallelism{"src": 1, "map": 1}
	// Real demand is 1000/s, but backpressure suppresses the source's
	// observed output to the map's capacity, 100/s.
	dec, err := c.Decide(snap(100, 100, 1), cur)
	if err != nil {
		t.Fatal(err)
	}
	if dec["map"] >= 10 {
		t.Errorf("map = %d; the observed-rate model should *not* reach the true requirement (10) in one step", dec["map"])
	}
	if dec["map"] < 2 {
		t.Errorf("map = %d, want at least some scale-up", dec["map"])
	}
}

func TestScaleDownWhenIdle(t *testing.T) {
	_, c := fixture(t)
	cur := dataflow.Parallelism{"src": 1, "map": 16}
	dec, err := c.Decide(snap(100, 1600, 16), cur)
	if err != nil {
		t.Fatal(err)
	}
	if dec["map"] >= 16 || dec["map"] < 2 {
		t.Errorf("map = %d, want scaled down to ~2", dec["map"])
	}
}

func TestHoldWithoutSignal(t *testing.T) {
	_, c := fixture(t)
	cur := dataflow.Parallelism{"src": 1, "map": 7}
	s := snap(100, 0, 7) // no useful work measured
	dec, err := c.Decide(s, cur)
	if err != nil {
		t.Fatal(err)
	}
	if dec["map"] != 7 {
		t.Errorf("map = %d, want held at 7", dec["map"])
	}
}

func TestZeroArrival(t *testing.T) {
	_, c := fixture(t)
	cur := dataflow.Parallelism{"src": 1, "map": 5}
	dec, err := c.Decide(snap(0, 500, 5), cur)
	if err != nil {
		t.Fatal(err)
	}
	if dec["map"] != 1 {
		t.Errorf("map = %d, want 1 with zero load", dec["map"])
	}
}

func TestMaxParallelismCap(t *testing.T) {
	g, _ := dataflow.Linear("src", "map")
	c, err := New(g, Config{MaxParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decide(snap(5000, 100, 1), dataflow.Parallelism{"src": 1, "map": 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec["map"] != 4 {
		t.Errorf("map = %d, want capped 4", dec["map"])
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	_, c := fixture(t)
	if _, err := c.Decide(metrics.Snapshot{}, dataflow.Parallelism{"src": 1}); err == nil {
		t.Error("bad parallelism accepted")
	}
	if _, err := c.Decide(metrics.Snapshot{
		Operators:   map[string]metrics.OperatorRates{},
		SourceRates: map[string]float64{"src": 1},
	}, dataflow.Parallelism{"src": 1, "map": 1}); err == nil {
		t.Error("missing operator accepted")
	}
}
