package queueing

import (
	"ds2/internal/controlloop"
	"ds2/internal/core"
)

// autoscaler adapts the queueing-theory controller to the shared
// control loop. The controller is stateless (it re-solves the M/M/k
// stations from each snapshot), so the adapter only suppresses
// no-change proposals.
type autoscaler struct {
	c *Controller
}

// Autoscaler wraps a queueing controller for use with a
// controlloop.Controller.
func Autoscaler(c *Controller) controlloop.Autoscaler {
	return autoscaler{c: c}
}

func (a autoscaler) Observe(o controlloop.Observation) (*core.Action, error) {
	snap, err := o.Snapshot()
	if err != nil {
		return nil, err
	}
	dec, err := a.c.Decide(snap, o.Parallelism)
	if err != nil {
		return nil, err
	}
	if dec.Equal(o.Parallelism) {
		return nil, nil
	}
	return &core.Action{
		Kind:   core.ActionRescale,
		New:    dec,
		Old:    o.Parallelism.Clone(),
		Reason: "queueing model",
	}, nil
}
