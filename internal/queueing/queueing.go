// Package queueing implements a queueing-theory scaling baseline in
// the style of DRS [Fu et al. 2017] and Nephele [Lohrmann et al. 2015]
// (Table 1): each operator is modelled as an M/M/k station; the
// controller picks the smallest k meeting a response-time objective
// given the *observed* arrival and service rates.
//
// The paper's critique (§2) is that such models are built from
// externally observed rates: under backpressure the observed arrival
// rate at a bottleneck is suppressed to its service rate, so the model
// systematically under-estimates demand and needs repeated
// reconfigurations — which the ablation benchmarks demonstrate against
// DS2 (see EXPERIMENTS.md).
package queueing

import (
	"errors"
	"fmt"
	"math"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// Config tunes the controller.
type Config struct {
	// LatencySLO is the per-operator expected waiting-time objective
	// in seconds (default 1).
	LatencySLO float64
	// Headroom keeps utilisation at or below this fraction (default
	// 0.9) regardless of the SLO computation.
	Headroom float64
	// MaxParallelism caps per-operator k (0 = uncapped).
	MaxParallelism int
}

func (c Config) withDefaults() Config {
	if c.LatencySLO <= 0 {
		c.LatencySLO = 1
	}
	if c.Headroom <= 0 || c.Headroom >= 1 {
		c.Headroom = 0.9
	}
	return c
}

// Controller proposes per-operator parallelism from observed rates.
type Controller struct {
	graph *dataflow.Graph
	cfg   Config
}

// New creates the controller.
func New(g *dataflow.Graph, cfg Config) (*Controller, error) {
	if g == nil {
		return nil, errors.New("queueing: nil graph")
	}
	return &Controller{graph: g, cfg: cfg.withDefaults()}, nil
}

// Decide proposes a configuration. Arrival rates are taken from the
// observed *output* of each operator's upstream operators (what a DRS
// style monitor measures: interarrival times at the queue), and
// per-instance service rates from observed processing when busy —
// λ̂p over the busy fraction of the window, i.e. the true rate when
// available, otherwise observed.
func (q *Controller) Decide(snap metrics.Snapshot, current dataflow.Parallelism) (dataflow.Parallelism, error) {
	if err := current.Validate(q.graph); err != nil {
		return nil, err
	}
	out := current.Clone()
	g := q.graph
	for i := g.NumSources(); i < g.NumOperators(); i++ {
		op := g.Operator(i)
		r, ok := snap.Operators[op.Name]
		if !ok {
			return nil, fmt.Errorf("queueing: snapshot missing %q", op.Name)
		}
		// Observed arrival rate: sum of upstream observed outputs.
		lambda := 0.0
		for _, u := range g.Upstream(i) {
			uname := g.Operator(u).Name
			if u < g.NumSources() {
				if ur, ok := snap.Operators[uname]; ok {
					lambda += ur.ObservedOutput
				} else {
					lambda += snap.SourceRates[uname]
				}
			} else if ur, ok := snap.Operators[uname]; ok {
				lambda += ur.ObservedOutput
			}
		}
		if r.TrueProcessing <= 0 || r.Instances < 1 {
			continue // no signal: hold
		}
		mu := r.TrueProcessing / float64(r.Instances) // per-server service rate
		if mu <= 0 {
			continue
		}
		k := q.minServers(lambda, mu)
		if !op.Scalable {
			k = current[op.Name]
		}
		if q.cfg.MaxParallelism > 0 && k > q.cfg.MaxParallelism {
			k = q.cfg.MaxParallelism
		}
		out[op.Name] = k
	}
	return out, nil
}

// minServers returns the smallest k such that an M/M/k station with
// arrival rate lambda and per-server rate mu has utilisation below
// Headroom and Erlang-C expected queueing delay below the SLO.
func (q *Controller) minServers(lambda, mu float64) int {
	if lambda <= 0 {
		return 1
	}
	for k := 1; ; k++ {
		rho := lambda / (float64(k) * mu)
		if rho >= q.cfg.Headroom {
			continue
		}
		wq := erlangCWait(lambda, mu, k)
		if wq <= q.cfg.LatencySLO {
			return k
		}
		if k > 1_000_000 {
			return k // defensive: unreachable for sane inputs
		}
	}
}

// erlangCWait computes the expected waiting time in queue for M/M/k.
func erlangCWait(lambda, mu float64, k int) float64 {
	a := lambda / mu // offered load in Erlangs
	rho := a / float64(k)
	if rho >= 1 {
		return math.Inf(1)
	}
	// P_wait via the Erlang-C formula, computed in log space free
	// iteratively to avoid overflow for large k.
	sum := 0.0
	term := 1.0 // a^0/0!
	for n := 0; n < k; n++ {
		sum += term
		term *= a / float64(n+1)
	}
	// term is now a^k/k!
	pw := term / (1 - rho) / (sum + term/(1-rho))
	return pw / (float64(k)*mu - lambda)
}
