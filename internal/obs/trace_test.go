package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanIDsAndOrdering(t *testing.T) {
	tr := NewTrace("rescale-1", "rescale")
	if tr.ID() != "rescale-1" {
		t.Fatalf("ID = %q", tr.ID())
	}

	parent := tr.NewSpanID()
	// Children added before the parent span itself lands.
	tr.Add(Span{Parent: parent, Name: "drain/w0", Worker: 0, StartNs: 10, EndNs: 30})
	tr.Add(Span{Parent: parent, Name: "drain/w1", Worker: 1, StartNs: 12, EndNs: 25})
	tr.Add(Span{ID: parent, Name: "drain", Worker: -1, StartNs: 5, EndNs: 40})
	tr.Add(Span{Name: "restart", Worker: -1, StartNs: 50, EndNs: 60})

	v := tr.View()
	if v.Complete {
		t.Fatalf("trace complete before Complete()")
	}
	if v.DurationNs != 60 {
		t.Fatalf("DurationNs = %d, want 60", v.DurationNs)
	}
	// View orders by start time.
	names := make([]string, len(v.Spans))
	for i, s := range v.Spans {
		names[i] = s.Name
	}
	want := []string{"drain", "drain/w0", "drain/w1", "restart"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("span order = %v, want %v", names, want)
		}
	}
	// IDs are unique and children reference the pre-allocated parent.
	seen := map[uint64]bool{}
	for _, s := range v.Spans {
		if s.ID == 0 || seen[s.ID] {
			t.Fatalf("span %q has duplicate/zero id %d", s.Name, s.ID)
		}
		seen[s.ID] = true
	}
	for _, s := range v.Spans {
		if s.Name == "drain/w0" || s.Name == "drain/w1" {
			if s.Parent != parent {
				t.Fatalf("span %q parent = %d, want %d", s.Name, s.Parent, parent)
			}
		}
	}

	tr.Complete()
	if !tr.View().Complete {
		t.Fatalf("trace not complete after Complete()")
	}
}

func TestTraceViewSpanLookupAndJSON(t *testing.T) {
	tr := NewTrace("r", "rescale")
	tr.Add(Span{Name: "drain", Worker: -1, StartNs: 0, EndNs: 7})
	v := tr.View()
	s, ok := v.Span("drain")
	if !ok || s.Duration() != 7*time.Nanosecond {
		t.Fatalf("Span(drain) = %+v, %v", s, ok)
	}
	if _, ok := v.Span("nope"); ok {
		t.Fatalf("Span(nope) found")
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceView
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "drain" || back.ID != "r" {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestTraceNowMonotone(t *testing.T) {
	tr := NewTrace("r", "rescale")
	a := tr.Now()
	b := tr.Now()
	if a < 0 || b < a {
		t.Fatalf("Now not monotone: %d then %d", a, b)
	}
}

func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace("r", "rescale")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add(Span{Name: fmt.Sprintf("s%d", g), Worker: g, StartNs: int64(i), EndNs: int64(i + 1)})
			}
		}(g)
	}
	wg.Wait()
	v := tr.View()
	if len(v.Spans) != 800 {
		t.Fatalf("spans = %d, want 800", len(v.Spans))
	}
	seen := map[uint64]bool{}
	for _, s := range v.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestTraceRingEvictsOldest(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Append(NewTrace(fmt.Sprintf("t%d", i), "rescale"))
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	views := r.Views()
	if len(views) != 3 {
		t.Fatalf("retained = %d, want 3", len(views))
	}
	for i, want := range []string{"t2", "t3", "t4"} {
		if views[i].ID != want {
			t.Fatalf("views[%d].ID = %q, want %q", i, views[i].ID, want)
		}
	}
	// An evicted trace pointer stays usable.
	r2 := NewTraceRing(1)
	old := NewTrace("old", "rescale")
	r2.Append(old)
	r2.Append(NewTrace("new", "rescale"))
	old.Add(Span{Name: "late", StartNs: 1, EndNs: 2})
	if _, ok := old.View().Span("late"); !ok {
		t.Fatalf("evicted trace rejected a late span")
	}
}

func TestTraceRingDefaultLimit(t *testing.T) {
	r := NewTraceRing(0)
	for i := 0; i < 40; i++ {
		r.Append(NewTrace(fmt.Sprintf("t%d", i), "rescale"))
	}
	if got := len(r.Views()); got != 32 {
		t.Fatalf("default retention = %d, want 32", got)
	}
}
