package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHistogramQuantileErrorBound pins Quantile's advertised contract
// against known distributions: the estimate is the upper bound of the
// bucket holding the true sample quantile, so for any sample that
// stays inside the finite grid,
//
//	true <= Quantile(q) <= true * Growth
//
// — conservative, and never off by more than one bucket's growth
// factor. Checked at p50/p90/p99/p100 for a uniform grid and a
// seeded exponential ladder (log-scale buckets meet a heavy tail).
func TestHistogramQuantileErrorBound(t *testing.T) {
	const growth = 2.0
	const n = 10_000
	rng := rand.New(rand.NewSource(7))
	dists := map[string][]float64{}
	uniform := make([]float64, n)
	for i := range uniform {
		// (0.01, 10]: strictly inside the grid, never on a 1e-3·2^k
		// bucket boundary.
		uniform[i] = 0.01 + 9.99*(float64(i)+0.5)/n
	}
	dists["uniform"] = uniform
	expo := make([]float64, n)
	for i := range expo {
		expo[i] = 0.002 + rng.ExpFloat64()*0.05
	}
	dists["exponential"] = expo

	for name, values := range dists {
		t.Run(name, func(t *testing.T) {
			h := newHistogram(HistogramOpts{Min: 1e-3, Growth: growth, Buckets: 30})
			for _, v := range values {
				h.Observe(v)
			}
			sorted := append([]float64(nil), values...)
			sort.Float64s(sorted)
			for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
				rank := int(math.Ceil(q * n))
				if rank < 1 {
					rank = 1
				}
				truth := sorted[rank-1]
				est := h.Quantile(q)
				if est < truth {
					t.Errorf("q=%g: estimate %g below true quantile %g", q, est, truth)
				}
				if est > truth*growth*(1+1e-9) {
					t.Errorf("q=%g: estimate %g exceeds true %g by more than the growth factor %g",
						q, est, truth, growth)
				}
			}
		})
	}
}

// TestHistogramQuantileEdges pins the degenerate cases the bound above
// excludes: empty histograms, underflow (everything at or below Min),
// and overflow into +Inf.
func TestHistogramQuantileEdges(t *testing.T) {
	opts := HistogramOpts{Min: 1e-3, Growth: 2, Buckets: 10}
	if got := newHistogram(opts).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram: %g, want 0", got)
	}
	under := newHistogram(opts)
	under.Observe(1e-9)
	under.Observe(0)
	if got := under.Quantile(0.99); got != 1e-3 {
		t.Errorf("underflow clamps to the first bound: %g, want 1e-3", got)
	}
	over := newHistogram(opts)
	over.Observe(1e12) // beyond Min·Growth^9
	last := 1e-3 * math.Pow(2, 9)
	if got := over.Quantile(0.5); math.Abs(got-last) > last*1e-12 {
		t.Errorf("overflow reports the last finite bound: %g, want %g", got, last)
	}
}

// TestWriteParseRoundTripProperty is the exposition fuzz: seeded
// random registries — counters, gauges (including ±Inf and NaN),
// histograms on random grids — with label values drawn from the
// format's worst cases (escapes, braces, unicode, an embedded
// le="..."). Every page the writer emits must parse, and every series
// must come back with its exact identity and value.
func TestWriteParseRoundTripProperty(t *testing.T) {
	weird := []string{
		"", "plain", `back\slash`, `qu"ote`, "new\nline", "tab\there",
		"héllo→世界", "{brace,=inner}", `le="0.1"`, "  padded  ", ",",
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		reg := NewRegistry()
		type series struct {
			name   string
			labels []Label
			value  float64
			count  uint64 // histogram observations; 0 = scalar series
		}
		var want []series
		for f, nFam := 0, 1+rng.Intn(5); f < nFam; f++ {
			name := fmt.Sprintf("prop_fam_%d_t", f)
			kind := rng.Intn(3)
			for s, nSeries := 0, 1+rng.Intn(3); s < nSeries; s++ {
				labels := []Label{
					L("idx", fmt.Sprintf("%d", s)), // keeps identities distinct
					L("w", weird[rng.Intn(len(weird))]),
				}
				switch kind {
				case 0:
					v := uint64(rng.Intn(1_000_000))
					reg.Counter(name, "h", labels...).Add(v)
					want = append(want, series{name, labels, float64(v), 0})
				case 1:
					v := [...]float64{rng.NormFloat64() * 1e3, math.Inf(1), math.Inf(-1), math.NaN()}[rng.Intn(4)]
					reg.Gauge(name, "h", labels...).Set(v)
					want = append(want, series{name, labels, v, 0})
				default:
					opts := HistogramOpts{Min: 1e-4, Growth: 1.5 + rng.Float64(), Buckets: 5 + rng.Intn(20)}
					h := reg.Histogram(name, "h", opts, labels...)
					n := uint64(1 + rng.Intn(50))
					for i := uint64(0); i < n; i++ {
						h.Observe(rng.ExpFloat64() * 0.01)
					}
					want = append(want, series{name, labels, 0, n})
				}
			}
		}

		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		page := buf.String()
		sc, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("trial %d: writer output does not parse: %v\n%s", trial, err, page)
		}
		for _, w := range want {
			if w.count > 0 {
				checkHistogramSeries(t, trial, sc, w.name, w.labels, w.count)
				continue
			}
			got, ok := findSample(sc, w.name, w.labels)
			if !ok {
				t.Errorf("trial %d: series %s{%v} lost", trial, w.name, w.labels)
				continue
			}
			same := got == w.value || (math.IsNaN(got) && math.IsNaN(w.value))
			if !same {
				t.Errorf("trial %d: %s{%v} = %g, want %g", trial, w.name, w.labels, got, w.value)
			}
		}
	}
}

// TestRegistryConcurrentRegistration pins that racing registrations
// of one identity all get the same metric instance (the variant is
// constructed under the registry lock) and that a scrape can run
// concurrently with registration. Run under -race in CI.
func TestRegistryConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	counters := make([]*Counter, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := reg.Counter("conc_total", "h", L("op", "x"))
				c.Inc()
				counters[g] = c
				reg.Histogram("conc_seconds", "h", HistogramOpts{}, L("op", fmt.Sprintf("%d", i))).Observe(0.1)
				var sink bytes.Buffer
				if err := reg.WritePrometheus(&sink); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if counters[g] != counters[0] {
			t.Fatalf("goroutine %d got a distinct counter for the same identity", g)
		}
	}
	if got := counters[0].Value(); got != goroutines*100 {
		t.Errorf("increments lost: %d, want %d", got, goroutines*100)
	}
}

// findSample locates the sample whose labels exactly match (same
// pairs, same order) and returns its value.
func findSample(sc Scrape, name string, labels []Label) (float64, bool) {
	for _, sm := range sc.Get(name) {
		if labelsEqual(sm.Labels, labels) {
			return sm.Value, true
		}
	}
	return 0, false
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkHistogramSeries verifies one histogram's wire invariants: the
// _count matches the observations made, buckets are cumulative with
// strictly increasing finite le bounds, and the +Inf bucket equals the
// count.
func checkHistogramSeries(t *testing.T, trial int, sc Scrape, name string, labels []Label, n uint64) {
	t.Helper()
	cnt, ok := findSample(sc, name+"_count", labels)
	if !ok || cnt != float64(n) {
		t.Errorf("trial %d: %s_count{%v} = %g (found=%v), want %d", trial, name, labels, cnt, ok, n)
		return
	}
	var cums, les []float64
	for _, sm := range sc.Get(name + "_bucket") {
		base := sm.Labels[:len(sm.Labels)-1] // le is appended last
		if !labelsEqual(base, labels) {
			continue
		}
		le := sm.Label("le")
		if le == "+Inf" {
			les = append(les, math.Inf(1))
		} else {
			v, err := parseValue(le)
			if err != nil {
				t.Errorf("trial %d: bad le %q", trial, le)
				return
			}
			les = append(les, v)
		}
		cums = append(cums, sm.Value)
	}
	if len(cums) == 0 {
		t.Errorf("trial %d: %s{%v} bucket series lost", trial, name, labels)
		return
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Errorf("trial %d: %s buckets not cumulative: %v", trial, name, cums)
		}
		if les[i] <= les[i-1] {
			t.Errorf("trial %d: %s le bounds not increasing: %v", trial, name, les)
		}
	}
	if !math.IsInf(les[len(les)-1], 1) || cums[len(cums)-1] != float64(n) {
		t.Errorf("trial %d: %s +Inf bucket = %g @le=%g, want %d", trial, name, cums[len(cums)-1], les[len(les)-1], n)
	}
}
