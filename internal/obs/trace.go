package obs

import (
	"sort"
	"sync"
	"time"
)

// Span is one timed phase inside a Trace. Times are nanosecond offsets
// from the trace's start on the monotonic clock, so a span tree is
// self-consistent even when its pieces were recorded on machines whose
// wall clocks disagree: cross-process children are re-based onto the
// coordinator span that covers their RPC (see streamrt's rescale
// instrumentation), which keeps every child inside its parent's bounds
// by construction.
type Span struct {
	// ID identifies the span within its trace (assigned by Trace.Add
	// when zero). Parent is the covering span's ID, 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name is the phase ("drain", "transfer/w1", ...). Worker is the
	// cluster index of the process that timed the span, -1 for the
	// coordinator.
	Name   string `json:"name"`
	Worker int    `json:"worker"`
	// StartNs/EndNs are nanoseconds since the trace started.
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return time.Duration(s.EndNs - s.StartNs) }

// Trace is one bounded, append-only span timeline — e.g. a single
// rescale. It is safe for concurrent use: fan-out goroutines (one per
// worker RPC) add spans while the coordinator times the enclosing
// phases, and a finisher goroutine may append the trailing span after
// the control action has already returned.
type Trace struct {
	id        string
	name      string
	startedAt time.Time // carries the monotonic anchor for Now()

	mu       sync.Mutex
	spans    []Span
	nextID   uint64
	complete bool
}

// NewTrace starts a trace identified by id (unique within its ring)
// with a human-readable name. The clock starts now.
func NewTrace(id, name string) *Trace {
	return &Trace{id: id, name: name, startedAt: time.Now()}
}

// ID returns the trace identity.
func (t *Trace) ID() string { return t.id }

// StartedAt returns the wall-clock instant the trace began.
func (t *Trace) StartedAt() time.Time { return t.startedAt }

// Now returns nanoseconds since the trace started, read from the
// monotonic clock.
func (t *Trace) Now() int64 { return int64(time.Since(t.startedAt)) }

// NewSpanID pre-allocates a span ID, for parents whose children must
// reference them before the parent's end time is known.
func (t *Trace) NewSpanID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	return t.nextID
}

// Add appends a span, assigning an ID if the caller left it zero, and
// returns the span's ID.
func (t *Trace) Add(s Span) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ID == 0 {
		t.nextID++
		s.ID = t.nextID
	} else if s.ID > t.nextID {
		t.nextID = s.ID
	}
	t.spans = append(t.spans, s)
	return s.ID
}

// Complete marks the timeline finished: every phase, including any
// asynchronous trailing span, has been recorded.
func (t *Trace) Complete() {
	t.mu.Lock()
	t.complete = true
	t.mu.Unlock()
}

// TraceView is an immutable snapshot of a Trace, ordered by span start
// (ties by ID), ready for JSON.
type TraceView struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	StartedAt  time.Time `json:"started_at"`
	Complete   bool      `json:"complete"`
	DurationNs int64     `json:"duration_ns"`
	Spans      []Span    `json:"spans"`
}

// Span returns the first span with the given name, if present.
func (v TraceView) Span(name string) (Span, bool) {
	for _, s := range v.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return Span{}, false
}

// View snapshots the trace.
func (t *Trace) View() TraceView {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	complete := t.complete
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].ID < spans[j].ID
	})
	var dur int64
	for _, s := range spans {
		if s.EndNs > dur {
			dur = s.EndNs
		}
	}
	return TraceView{
		ID:         t.id,
		Name:       t.name,
		StartedAt:  t.startedAt,
		Complete:   complete,
		DurationNs: dur,
		Spans:      spans,
	}
}

// TraceRing retains the most recent traces, oldest first. Appending
// beyond the limit evicts the oldest; an evicted trace stays valid (a
// finisher holding the pointer can still amend it — the ring just no
// longer serves it).
type TraceRing struct {
	mu     sync.Mutex
	limit  int
	total  uint64
	traces []*Trace
}

// NewTraceRing creates a ring retaining up to limit traces (values < 1
// default to 32).
func NewTraceRing(limit int) *TraceRing {
	if limit < 1 {
		limit = 32
	}
	return &TraceRing{limit: limit}
}

// Append adds a trace, evicting the oldest beyond the retention limit.
func (r *TraceRing) Append(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.traces = append(r.traces, t)
	if len(r.traces) > r.limit {
		copy(r.traces, r.traces[len(r.traces)-r.limit:])
		r.traces = r.traces[:r.limit]
	}
}

// Total returns how many traces were ever appended (retained or not).
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Views snapshots the retained traces, oldest first.
func (r *TraceRing) Views() []TraceView {
	r.mu.Lock()
	traces := append([]*Trace(nil), r.traces...)
	r.mu.Unlock()
	out := make([]TraceView, len(traces))
	for i, t := range traces {
		out[i] = t.View()
	}
	return out
}
