package obs

import (
	"math"
	"strconv"
	"sync/atomic"
)

// HistogramOpts fixes a histogram's log-scale bucket grid: Buckets
// upper bounds at Min·Growth^i for i in [0, Buckets), plus an implicit
// +Inf bucket. The grid is fixed at registration so recording never
// allocates or rebalances.
type HistogramOpts struct {
	// Min is the upper bound of the first bucket; observations at or
	// below it land there. Values <= 0 default to 1e-6 (a microsecond,
	// for the common seconds-unit latency histogram).
	Min float64
	// Growth is the bucket-to-bucket factor. Values <= 1 default to 2.
	Growth float64
	// Buckets is the number of finite buckets. Values < 1 default to 30
	// (with the defaults above: 1µs to ~17min).
	Buckets int
}

func (o HistogramOpts) withDefaults() HistogramOpts {
	if o.Min <= 0 {
		o.Min = 1e-6
	}
	if o.Growth <= 1 {
		o.Growth = 2
	}
	if o.Buckets < 1 {
		o.Buckets = 30
	}
	return o
}

// Histogram counts observations in a fixed log-scale bucket grid.
// Observe is lock-free and allocation-free: one atomic add on the
// bucket plus one CAS loop on the sum. Negative and NaN observations
// are counted in the first bucket's underflow (clamped), never
// dropped, so count and sum stay consistent.
type Histogram struct {
	min       float64
	invLogG   float64 // 1 / ln(growth)
	logMin    float64 // ln(min)
	uppers    []float64
	counts    []atomic.Uint64 // len(uppers)+1; last is +Inf
	sumBits   atomic.Uint64
	obsSerial atomic.Uint64 // total observations, for cheap Count()
}

func newHistogram(opts HistogramOpts) *Histogram {
	o := opts.withDefaults()
	h := &Histogram{
		min:     o.Min,
		invLogG: 1 / math.Log(o.Growth),
		logMin:  math.Log(o.Min),
		uppers:  make([]float64, o.Buckets),
		counts:  make([]atomic.Uint64, o.Buckets+1),
	}
	up := o.Min
	for i := range h.uppers {
		h.uppers[i] = up
		up *= o.Growth
	}
	return h
}

// bucketIndex maps an observation to its bucket. Index len(uppers) is
// the +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	if !(v > h.min) { // also catches NaN and negatives
		return 0
	}
	if v > h.uppers[len(h.uppers)-1] {
		// Checked before the log so +Inf (whose float→int conversion is
		// platform-defined garbage) lands in the overflow bucket.
		return len(h.uppers)
	}
	// ceil(log_growth(v/min)) — the bucket whose upper bound first
	// reaches v. Float noise at exact bucket boundaries may shift an
	// observation one bucket; the grid is approximate by design.
	idx := int(math.Ceil((math.Log(v) - h.logMin) * h.invLogG))
	if idx >= len(h.uppers) {
		return len(h.uppers)
	}
	if idx < 0 {
		return 0
	}
	return idx
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		// Clamp rather than drop: a clock that misbehaves shows up as a
		// spike in the first bucket instead of silently vanishing, and
		// the sum stays finite.
		v = 0
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.obsSerial.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.obsSerial.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot copies the per-bucket counts (finite buckets then +Inf).
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) as the upper bound
// of the bucket containing it — a conservative (over-)estimate, exact
// to within one bucket's growth factor. It returns 0 for an empty
// histogram and the last finite bound for quantiles landing in +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.Snapshot()
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i >= len(h.uppers) {
				return h.uppers[len(h.uppers)-1]
			}
			return h.uppers[i]
		}
	}
	return h.uppers[len(h.uppers)-1]
}

// appendProm renders the histogram in exposition format: cumulative
// _bucket series with le bounds, then _sum and _count.
func (h *Histogram) appendProm(b []byte, name string, labels []Label) []byte {
	cum := uint64(0)
	counts := h.Snapshot()
	for i, upper := range h.uppers {
		cum += counts[i]
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = appendLabels(b, labels, Label{Name: "le", Value: formatBound(upper)})
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	cum += counts[len(counts)-1]
	b = append(b, name...)
	b = append(b, "_bucket"...)
	b = appendLabels(b, labels, Label{Name: "le", Value: "+Inf"})
	b = append(b, ' ')
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')

	b = append(b, name...)
	b = append(b, "_sum"...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	b = appendFloat(b, h.Sum())
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count"...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	return b
}

// formatBound renders a bucket bound compactly and stably across
// scrapes (shortest round-trip float formatting).
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
