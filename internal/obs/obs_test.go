package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// buildFixture populates a registry with one of everything, at fixed
// values, for the exposition golden test.
func buildFixture() *Registry {
	reg := NewRegistry()
	reg.Counter("ds2d_http_requests_total", "HTTP requests served.",
		L("route", "GET /jobs"), L("code", "200")).Add(17)
	reg.Counter("ds2d_http_requests_total", "HTTP requests served.",
		L("route", "POST /jobs"), L("code", "400")).Add(2)
	// Braces inside a label value — a ServeMux route pattern — must not
	// confuse the parser's label-set terminator scan.
	reg.Counter("ds2d_http_requests_total", "HTTP requests served.",
		L("route", "GET /jobs/{id}/action"), L("code", "200")).Add(5)
	reg.Gauge("streamrt_operator_instances", "Deployed instances per operator.",
		L("operator", "q1-map")).Set(4)
	reg.Gauge("streamrt_time_fraction", "Fraction of the window per activity.",
		L("operator", "q1-map"), L("phase", "processing")).Set(0.625)
	reg.GaugeFunc("ds2d_uptime_seconds", "Daemon uptime.", func() float64 { return 12.5 })
	reg.CounterFunc("ds2d_snapshot_evictions_total", "Ring-buffer snapshot evictions.",
		func() float64 { return 3 })
	h := reg.Histogram("streamrt_record_latency_seconds",
		"Sampled source-to-sink record latency.",
		HistogramOpts{Min: 1e-3, Growth: 10, Buckets: 4}, L("operator", "q1-sink"))
	for _, v := range []float64{0.0005, 0.002, 0.03, 0.03, 0.4, 50} {
		h.Observe(v)
	}
	// A label value exercising every escape the writer knows.
	reg.Counter("escape_test_total", "Escaping.", L("v", "a\"b\\c\nd")).Inc()
	return reg
}

// TestPrometheusGolden pins the exposition byte-for-byte. Regenerate
// deliberately with -update-golden when the format changes.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestParseRoundTrip feeds the writer's output through the strict
// parser: every series must come back, with histogram suffixes folding
// onto their family.
func TestParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("writer output does not parse: %v", err)
	}
	wantFams := []string{
		"ds2d_http_requests_total", "ds2d_snapshot_evictions_total", "ds2d_uptime_seconds",
		"escape_test_total", "streamrt_operator_instances",
		"streamrt_record_latency_seconds", "streamrt_time_fraction",
	}
	got := scrape.Families()
	if strings.Join(got, ",") != strings.Join(wantFams, ",") {
		t.Errorf("families = %v, want %v", got, wantFams)
	}
	if scrape.Types["streamrt_record_latency_seconds"] != "histogram" {
		t.Errorf("histogram TYPE lost: %v", scrape.Types)
	}
	// The escaped label value must round-trip exactly.
	esc := scrape.Get("escape_test_total")
	if len(esc) != 1 || esc[0].Label("v") != "a\"b\\c\nd" {
		t.Errorf("escape round-trip failed: %+v", esc)
	}
	// Histogram invariants on the wire: buckets cumulative, _count ==
	// +Inf bucket, _sum present.
	var last float64 = -1
	for _, s := range scrape.Get("streamrt_record_latency_seconds_bucket") {
		if s.Value < last {
			t.Errorf("bucket counts not cumulative: %v after %v", s.Value, last)
		}
		last = s.Value
	}
	if cnt := scrape.Get("streamrt_record_latency_seconds_count"); len(cnt) != 1 || cnt[0].Value != 6 {
		t.Errorf("_count = %+v, want 6", cnt)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"1leading_digit 3\n",
		"name{unterminated=\"x} 1\n",
		"name{a=b} 1\n",
		"name 1 2 3\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "h", L("op", "a"))
	b := reg.Counter("x_total", "h", L("op", "a"))
	if a != b {
		t.Error("same identity returned distinct counters")
	}
	if c := reg.Counter("x_total", "h", L("op", "b")); c == a {
		t.Error("distinct labels returned the same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering a counter as a gauge did not panic")
			}
		}()
		reg.Gauge("x_total", "h")
	}()
}

func TestGaugeAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "h")
	g.Set(1.5)
	g.Add(-0.5)
	if v := g.Value(); v != 1.0 {
		t.Errorf("gauge = %v, want 1.0", v)
	}
}

// TestHistogramConcurrent hammers one histogram from N writers (run
// under -race in CI) and checks the merged invariants: exact count,
// exact sum (all values are integers, so float addition is exact),
// monotone quantiles that bracket the observed range.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "h", HistogramOpts{Min: 1, Growth: 2, Buckets: 20})
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(1 + (w*perWriter+i)%1000))
			}
		}(w)
	}
	wg.Wait()

	if got, want := h.Count(), uint64(writers*perWriter); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	wantSum := 0.0
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			wantSum += float64(1 + (w*perWriter+i)%1000)
		}
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v (atomic float adds of integers must be exact)", got, wantSum)
	}
	qs := []float64{0.1, 0.5, 0.9, 0.99, 1.0}
	prev := 0.0
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantiles not monotone: q%v = %v < %v", q, v, prev)
		}
		prev = v
	}
	// All observations are in [1, 1000]; quantile estimates are bucket
	// upper bounds so they may overshoot by at most one growth factor.
	if v := h.Quantile(1.0); v < 1000 || v > 2048 {
		t.Errorf("max quantile %v outside [1000, 2048]", v)
	}
	if v := h.Quantile(0.0); v > 2 {
		t.Errorf("min quantile %v > 2", v)
	}
	// Bucket totals must agree with Count.
	total := uint64(0)
	for _, c := range h.Snapshot() {
		total += c
	}
	if total != h.Count() {
		t.Errorf("bucket total %d != count %d", total, h.Count())
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge", "h", HistogramOpts{Min: 1e-3, Growth: 10, Buckets: 3})
	for _, v := range []float64{-5, math.NaN(), 0, 1e-9} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4 (clamped, not dropped)", h.Count())
	}
	if s := h.Sum(); s != 1e-9 || math.IsNaN(s) {
		t.Fatalf("sum = %v, want 1e-9 (negatives and NaN clamp to 0; tiny positives count)", s)
	}
	if h.Snapshot()[0] != 4 {
		t.Fatalf("clamped observations did not land in the first bucket: %v", h.Snapshot())
	}
	h.Observe(math.Inf(1))
	snap := h.Snapshot()
	if snap[len(snap)-1] != 1 {
		t.Fatalf("+Inf did not land in the overflow bucket: %v", snap)
	}
}

// BenchmarkHotPath pins the record-time cost of each primitive —
// these run on the live exchange, so they must stay allocation-free.
func BenchmarkHotPath(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "h")
	g := reg.Gauge("g", "h")
	h := reg.Histogram("h", "h", HistogramOpts{})
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i&1023) * 1e-4)
		}
	})
}

func TestHotPathAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "h")
	h := reg.Histogram("h", "h", HistogramOpts{})
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); h.Observe(0.01) }); n > 0 {
		t.Fatalf("hot-path recording allocates %v allocs/op, want 0", n)
	}
}
