// Package obs is the repo's dependency-free observability core: atomic
// counters and gauges, fixed-bucket log-scale histograms with
// zero-alloc lock-free recording, span traces for bounded control
// actions, and a registry that writes the whole lot in the Prometheus
// text exposition format (0.0.4).
//
// The design constraint is the live runtime's hot path: recording a
// metric must cost one (or for histograms, two) atomic operations and
// zero allocations, so instrumentation can sit on a 4M records/s
// exchange without moving the needle. Everything slow — name
// resolution, label formatting, exposition — happens at registration
// or scrape time, never at record time. Traces follow the same split:
// spans are recorded only inside rescales, which are rare and already
// pay milliseconds of drain time, so the per-record path never sees
// them.
//
// Metrics are identified by (name, ordered label pairs). Registration
// is idempotent: asking for the same identity returns the same metric,
// so layers that redeploy (the live runtime rebuilds instances on
// every rescale) can re-resolve their handles without bookkeeping.
//
// # Scraping quickstart
//
// Expose a registry over HTTP and point any Prometheus-compatible
// scraper (or curl, or cmd/ds2-top) at it:
//
//	reg := obs.NewRegistry()
//	requests := reg.Counter("myapp_requests_total", "Requests served.",
//		obs.L("route", "GET /items"))
//	http.Handle("GET /metrics", reg.Handler())
//	...
//	requests.Inc() // hot path: one atomic add
//
// cmd/ds2d mounts its registry at GET /metrics unconditionally;
// cmd/ds2-live does so behind -metrics-addr, and streamrt-worker
// serves its own registry behind the same flag (which ds2d then
// federates — see DESIGN.md). ParseText reads the exposition back into
// a Scrape for tests and tooling, and DESIGN.md's "Observability"
// section catalogs every family the repo exports.
//
// # Reading a rescale timeline
//
// A Trace is one bounded span tree — in this repo, one rescale. The
// streamrt runtime records a trace per rescale and serves the ring
// through the scaling service as GET /jobs/{id}/rescales:
//
//	{"total": 3, "rescales": [{
//	  "id": "rescale-3", "name": "rescale", "complete": true,
//	  "duration_ns": 41200000,
//	  "spans": [
//	    {"id": 1, "name": "drain",       "worker": -1, "start_ns": 0, "end_ns": 8100000},
//	    {"id": 2, "name": "drain/w0",    "worker": -1, "parent": 1, ...},
//	    {"id": 3, "name": "drain/teardown", "worker": 0, "parent": 2, ...},
//	    ...]}]}
//
// Span times are nanosecond offsets from the trace start, so the tree
// is self-consistent across processes whose wall clocks disagree:
// worker-recorded spans (worker >= 0) are re-based into the
// coordinator span covering their RPC. Roots (parent 0, worker -1)
// are the rescale's phases — drain, snapshot, router_rebuild,
// transfer, restart, first_record — and "complete": false means the
// trailing first_record span is still pending (or never arrived).
// cmd/ds2-top renders these as per-phase gantt bars; the downtime and
// per-phase durations are also exported as the
// streamrt_rescale_downtime_seconds and
// streamrt_rescale_phase_seconds{phase} histograms for trend lines
// over many rescales.
package obs
