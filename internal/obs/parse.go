package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition series: the metric name (with any
// _bucket/_sum/_count suffix intact), its labels in source order, and
// the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Scrape is a parsed exposition page.
type Scrape struct {
	// Samples holds every series in source order.
	Samples []Sample
	// Types maps family name to its declared TYPE.
	Types map[string]string
}

// Families returns the sorted set of family names seen — histogram
// suffixes are folded back onto their base family via the TYPE
// declarations, so a page with q_bucket/q_sum/q_count under
// "# TYPE q histogram" reports just "q".
func (s Scrape) Families() []string {
	set := make(map[string]bool)
	for _, sm := range s.Samples {
		name := sm.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && s.Types[base] == "histogram" {
				name = base
				break
			}
		}
		set[name] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns every sample of one series name.
func (s Scrape) Get(name string) []Sample {
	var out []Sample
	for _, sm := range s.Samples {
		if sm.Name == name {
			out = append(out, sm)
		}
	}
	return out
}

// ParseText parses a Prometheus text-format (0.0.4) page strictly:
// any line that is neither a comment, blank, nor a well-formed sample
// is an error. It is the validity check behind the smoke tests and the
// input side of ds2-top.
func ParseText(r io.Reader) (Scrape, error) {
	out := Scrape{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				out.Types[fields[2]] = fields[3]
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return Scrape{}, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return Scrape{}, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	// Name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := labelSetEnd(rest)
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	valueField := strings.Fields(rest)
	// A trailing timestamp (one extra integer field) is legal in the
	// format; this writer never emits one but the parser accepts it.
	if len(valueField) < 1 || len(valueField) > 2 {
		return s, fmt.Errorf("expected value after series in %q", line)
	}
	v, err := parseValue(valueField[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// labelSetEnd returns the index of the '}' terminating the label set
// opened at rest[0], or -1. A naive IndexByte would stop at a '}'
// inside a quoted label value (route patterns like "/jobs/{id}" put
// braces in values), so the scan tracks quoting and escapes.
func labelSetEnd(rest string) int {
	inQuote := false
	for i := 1; i < len(rest); i++ {
		switch c := rest[i]; {
		case inQuote && c == '\\':
			i++ // skip the escaped byte
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return i
		}
	}
	return -1
}

func parseValue(f string) (float64, error) {
	switch f {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", f)
	}
	return v, nil
}

func parseLabels(body string) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		name := strings.TrimSpace(body[i : i+eq])
		if !validName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(c)
					val.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if i < len(body) && body[i] == ',' {
			i++
		}
		for i < len(body) && (body[i] == ' ' || body[i] == '\t') {
			i++
		}
	}
	return out, nil
}
