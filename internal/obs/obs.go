package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter. The zero value is
// unusable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; they wrap).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by d (CAS loop; lock-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind enumerates exposition types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// sameType reports whether two kinds may share one family (a family
// mixes eager and callback variants of the same exposition type, but
// never a counter with a gauge).
func (k metricKind) sameType(o metricKind) bool { return k.promType() == o.promType() }

// metric is one registered series.
type metric struct {
	labels []Label
	key    string // serialized labels, the identity within the family
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups every series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	order   []string // insertion-ordered keys, re-sorted at scrape
	metrics map[string]*metric
}

// Registry holds metric families and renders them. All methods are
// safe for concurrent use; lookups take the registry mutex, so resolve
// handles outside hot loops and record through the returned pointers.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelKey serializes labels into the family-local identity.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(l.Value))
	}
	return sb.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup finds or creates the series (name, labels) and runs init on
// it while the registry lock is still held — variant construction must
// not race with a concurrent registration of the same identity. It
// panics on identity conflicts — registering one name as two different
// types is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, init func(*metric)) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Name, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, metrics: make(map[string]*metric)}
		r.fams[name] = f
	} else if !f.kind.sameType(kind) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)",
			name, kind.promType(), f.kind.promType()))
	}
	key := labelKey(labels)
	m, ok := f.metrics[key]
	if !ok {
		m = &metric{labels: append([]Label(nil), labels...), key: key, kind: kind}
		f.metrics[key] = m
		f.order = append(f.order, key)
	} else if m.kind != kind {
		panic(fmt.Sprintf("obs: series %q{%s} re-registered with a different variant", name, key))
	}
	if init != nil {
		init(m)
	}
	return m
}

// Counter returns the counter (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	var c *Counter
	r.lookup(name, help, kindCounter, labels, func(m *metric) {
		if m.counter == nil {
			m.counter = &Counter{}
		}
		c = m.counter
	})
	return c
}

// Gauge returns the gauge (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	var g *Gauge
	r.lookup(name, help, kindGauge, labels, func(m *metric) {
		if m.gauge == nil {
			m.gauge = &Gauge{}
		}
		g = m.gauge
	})
	return g
}

// CounterFunc registers a counter whose value is read from fn at every
// scrape — for counts maintained elsewhere (e.g. eviction totals inside
// a ring buffer). fn must be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindCounterFunc, labels, func(m *metric) { m.fn = fn })
}

// GaugeFunc registers a gauge read from fn at every scrape.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindGaugeFunc, labels, func(m *metric) { m.fn = fn })
}

// Histogram returns the histogram (name, labels), creating it with
// opts on first use (later opts are ignored — the first registration
// fixes the bucket grid for the whole family).
func (r *Registry) Histogram(name, help string, opts HistogramOpts, labels ...Label) *Histogram {
	var h *Histogram
	r.lookup(name, help, kindHistogram, labels, func(m *metric) {
		if m.hist == nil {
			m.hist = newHistogram(opts)
		}
		h = m.hist
	})
	return h
}

// appendFloat formats v the way Prometheus text format expects.
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendLabels renders {a="x",b="y"}, with extra appended last (the
// histogram writer passes le). Values are escaped per the exposition
// format: backslash, double-quote and newline.
func appendLabels(b []byte, labels []Label, extra ...Label) []byte {
	if len(labels)+len(extra) == 0 {
		return b
	}
	b = append(b, '{')
	all := labels
	for i, l := range append(all, extra...) {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Name...)
		b = append(b, '=', '"')
		for j := 0; j < len(l.Value); j++ {
			switch c := l.Value[j]; c {
			case '\\':
				b = append(b, '\\', '\\')
			case '"':
				b = append(b, '\\', '"')
			case '\n':
				b = append(b, '\\', 'n')
			default:
				b = append(b, c)
			}
		}
		b = append(b, '"')
	}
	return append(b, '}')
}

// WritePrometheus renders every registered series in the text
// exposition format, families sorted by name and series by label
// identity, so output is deterministic (golden-testable) scrape over
// scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot family headers and series pointers under the lock —
	// concurrent registrations mutate the maps — then render from the
	// snapshot; values are read atomically so a slow writer never
	// blocks recording.
	type famSnap struct {
		name string
		help string
		kind metricKind
		ms   []*metric
	}
	snaps := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.fams[name]
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		ms := make([]*metric, len(keys))
		for i, key := range keys {
			ms[i] = f.metrics[key]
		}
		snaps = append(snaps, famSnap{name: f.name, help: f.help, kind: f.kind, ms: ms})
	}
	r.mu.Unlock()

	var buf []byte
	for _, f := range snaps {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, strings.ReplaceAll(f.help, "\n", " ")...)
		buf = append(buf, '\n')
		buf = append(buf, "# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.promType()...)
		buf = append(buf, '\n')
		for _, m := range f.ms {
			switch m.kind {
			case kindCounter:
				buf = append(buf, f.name...)
				buf = appendLabels(buf, m.labels)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, m.counter.Value(), 10)
				buf = append(buf, '\n')
			case kindGauge:
				buf = append(buf, f.name...)
				buf = appendLabels(buf, m.labels)
				buf = append(buf, ' ')
				buf = appendFloat(buf, m.gauge.Value())
				buf = append(buf, '\n')
			case kindCounterFunc, kindGaugeFunc:
				buf = append(buf, f.name...)
				buf = appendLabels(buf, m.labels)
				buf = append(buf, ' ')
				buf = appendFloat(buf, m.fn())
				buf = append(buf, '\n')
			case kindHistogram:
				buf = m.hist.appendProm(buf, f.name, m.labels)
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ContentType is the exposition format version this package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}
