package dhalion

import (
	"strings"
	"testing"

	"ds2/internal/dataflow"
)

func graph(t *testing.T) *dataflow.Graph {
	t.Helper()
	g, err := dataflow.Linear("src", "flatmap", "count")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScalesBackpressureInitiator(t *testing.T) {
	c, err := New(graph(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Both operators' queues are full, but count is the initiator:
	// flatmap is merely suspended by count's backpressure.
	act, err := c.OnInterval(Observation{
		Backpressured:        []string{"count", "flatmap"},
		BackpressureFraction: map[string]float64{"flatmap": 1, "count": 1},
		Parallelism:          dataflow.Parallelism{"src": 1, "flatmap": 1, "count": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if act == nil || act.Operator != "count" {
		t.Fatalf("action = %+v, want count scaled (initiator)", act)
	}
	if act.To != 2 {
		t.Errorf("To = %d, want doubled", act.To)
	}
	if !strings.Contains(act.Reason, "backpressure") {
		t.Errorf("reason = %q", act.Reason)
	}
}

func TestPartialBackpressureSmallerStep(t *testing.T) {
	c, _ := New(graph(t), Config{})
	act, err := c.OnInterval(Observation{
		Backpressured:        []string{"count"},
		BackpressureFraction: map[string]float64{"count": 0.25},
		Parallelism:          dataflow.Parallelism{"src": 1, "flatmap": 4, "count": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if act == nil || act.To != 10 { // ceil(8 · 1.25)
		t.Fatalf("action = %+v, want count -> 10", act)
	}
}

func TestCooldownAfterAction(t *testing.T) {
	c, _ := New(graph(t), Config{StabilizeIntervals: 2})
	obs := Observation{
		Backpressured:        []string{"flatmap"},
		BackpressureFraction: map[string]float64{"flatmap": 1},
		Parallelism:          dataflow.Parallelism{"src": 1, "flatmap": 1, "count": 1},
	}
	if act, _ := c.OnInterval(obs); act == nil {
		t.Fatal("no first action")
	}
	for i := 0; i < 2; i++ {
		if act, _ := c.OnInterval(obs); act != nil {
			t.Fatalf("acted during stabilization interval %d", i)
		}
	}
	if act, _ := c.OnInterval(obs); act == nil {
		t.Fatal("no action after cooldown")
	}
}

func TestConvergenceAfterQuietIntervals(t *testing.T) {
	c, _ := New(graph(t), Config{QuietIntervals: 3})
	healthy := Observation{Parallelism: dataflow.Parallelism{"src": 1, "flatmap": 10, "count": 20}}
	for i := 0; i < 2; i++ {
		c.OnInterval(healthy)
		if c.Converged() {
			t.Fatalf("converged after %d quiet intervals", i+1)
		}
	}
	c.OnInterval(healthy)
	if !c.Converged() {
		t.Fatal("not converged after 3 quiet intervals")
	}
	// New backpressure resets convergence.
	c.OnInterval(Observation{
		Backpressured:        []string{"count"},
		BackpressureFraction: map[string]float64{"count": 1},
		Parallelism:          dataflow.Parallelism{"src": 1, "flatmap": 10, "count": 20},
	})
	if c.Converged() {
		t.Fatal("still converged despite backpressure")
	}
}

func TestBlacklistPreventsRegression(t *testing.T) {
	c, _ := New(graph(t), Config{StabilizeIntervals: 1})
	// flatmap at 8 fails; blacklist records 8.
	obs := Observation{
		Backpressured:        []string{"flatmap"},
		BackpressureFraction: map[string]float64{"flatmap": 0.01}, // tiny factor
		Parallelism:          dataflow.Parallelism{"src": 1, "flatmap": 8, "count": 1},
	}
	act, err := c.OnInterval(obs)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(8·1.01) = 9 > blacklist(8): ok, but had the factor rounded
	// to 8 the blacklist must push to 9.
	if act == nil || act.To < 9 {
		t.Fatalf("action = %+v, want >= 9", act)
	}
}

func TestMaxParallelismCap(t *testing.T) {
	c, _ := New(graph(t), Config{MaxParallelism: 10})
	obs := Observation{
		Backpressured:        []string{"count"},
		BackpressureFraction: map[string]float64{"count": 1},
		Parallelism:          dataflow.Parallelism{"src": 1, "flatmap": 1, "count": 9},
	}
	act, err := c.OnInterval(obs)
	if err != nil {
		t.Fatal(err)
	}
	if act == nil || act.To != 10 {
		t.Fatalf("action = %+v, want capped at 10", act)
	}
	// At the cap, no further action is possible.
	obs.Parallelism["count"] = 10
	act, err = c.OnInterval(obs)
	if err != nil {
		t.Fatal(err)
	}
	if act != nil {
		t.Fatalf("acted beyond cap: %+v", act)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	c, _ := New(graph(t), Config{})
	if _, err := c.OnInterval(Observation{}); err == nil {
		t.Error("observation without parallelism accepted")
	}
	if _, err := c.OnInterval(Observation{
		Backpressured: []string{"ghost"},
		Parallelism:   dataflow.Parallelism{"src": 1, "flatmap": 1, "count": 1},
	}); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, err := c.OnInterval(Observation{
		Backpressured: []string{"count"},
		Parallelism:   dataflow.Parallelism{"src": 1, "flatmap": 1, "count": 0},
	}); err == nil {
		t.Error("zero parallelism accepted")
	}
}

// TestGeometricConvergencePattern drives the controller through a
// synthetic wordcount bottleneck schedule and verifies the published
// pathology: several single-operator steps and an over-provisioned
// final configuration (§5.2).
func TestGeometricConvergencePattern(t *testing.T) {
	c, _ := New(graph(t), Config{StabilizeIntervals: 0})
	par := dataflow.Parallelism{"src": 1, "flatmap": 1, "count": 1}
	const fmOpt, cntOpt = 10, 20

	for i := 0; i < 50 && !c.Converged(); i++ {
		obs := Observation{Parallelism: par.Clone(), BackpressureFraction: map[string]float64{}}
		// Ground truth of the simulated bottlenecks: the most
		// upstream deficit produces the (only) backpressure signal.
		switch {
		case par["flatmap"] < fmOpt:
			obs.Backpressured = []string{"flatmap"}
			obs.BackpressureFraction["flatmap"] = 1
		case par["count"] < cntOpt:
			obs.Backpressured = []string{"count"}
			obs.BackpressureFraction["count"] = 1
		}
		act, err := c.OnInterval(obs)
		if err != nil {
			t.Fatal(err)
		}
		if act != nil {
			par[act.Operator] = act.To
		}
	}
	if !c.Converged() {
		t.Fatalf("never converged; final %v", par)
	}
	// Doubling from 1: flatmap 1→2→4→8→16 (4 steps), count
	// 1→2→4→8→16→32 (5 steps).
	if got := c.Decisions(); got != 9 {
		t.Errorf("decisions = %d, want 9 (geometric single-operator steps)", got)
	}
	if par["flatmap"] != 16 || par["count"] != 32 {
		t.Errorf("final = %v, want over-provisioned {flatmap:16 count:32}", par)
	}
	if par["flatmap"] <= fmOpt || par["count"] <= cntOpt {
		t.Errorf("final %v not over-provisioned vs optimum (%d, %d)", par, fmOpt, cntOpt)
	}
}
