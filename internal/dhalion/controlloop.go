package dhalion

import (
	"fmt"

	"ds2/internal/controlloop"
	"ds2/internal/core"
)

// autoscaler adapts the Dhalion controller to the shared control loop:
// it narrows the loop's observation down to the coarse signal set
// Dhalion consumes (backpressure only — deliberately not the true
// rates DS2 uses) and widens Dhalion's single-operator action back
// into a full-configuration rescale.
type autoscaler struct {
	c *Controller
}

// Autoscaler wraps a Dhalion controller for use with a
// controlloop.Controller, so DS2 and Dhalion drive the identical loop
// and emit the identical trace schema.
func Autoscaler(c *Controller) controlloop.Autoscaler {
	return autoscaler{c: c}
}

func (a autoscaler) Observe(o controlloop.Observation) (*core.Action, error) {
	act, err := a.c.OnInterval(Observation{
		Backpressured:        o.Backpressured,
		BackpressureFraction: o.BackpressureFraction,
		Parallelism:          o.Parallelism,
	})
	if err != nil || act == nil {
		return nil, err
	}
	next := o.Parallelism.Clone()
	next[act.Operator] = act.To
	return &core.Action{
		Kind:   core.ActionRescale,
		New:    next,
		Old:    o.Parallelism.Clone(),
		Reason: fmt.Sprintf("scale %s %d->%d (%s)", act.Operator, act.From, act.To, act.Reason),
	}, nil
}
