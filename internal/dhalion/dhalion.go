// Package dhalion reimplements the Dhalion scaling policy [Floratou et
// al., PVLDB 2017] as used by Heron — the state of the art DS2 is
// compared against in §5.2.
//
// Dhalion is a rule-based, reactive controller driven by coarse,
// externally observed signals: the backpressure signal and queue sizes.
// When an operator initiates backpressure, Dhalion's scale-up resolver
// grows *that single operator* by a factor derived from the fraction of
// time backpressure was observed, waits for the topology to stabilize,
// and repeats. Configurations that did not help are blacklisted. The
// consequences the paper demonstrates (Fig. 1, Fig. 6): many
// single-operator steps, slow reaction (the signal only fires once
// deep queues fill), and an over-provisioned final configuration.
package dhalion

import (
	"errors"
	"fmt"
	"math"

	"ds2/internal/dataflow"
)

// Config tunes the controller.
type Config struct {
	// MaxFactor caps the multiplicative step of one resolution
	// (default 2: at full-time backpressure the operator doubles).
	MaxFactor float64
	// StabilizeIntervals is how many intervals the controller waits
	// after an action before diagnosing again (default 2).
	StabilizeIntervals int
	// QuietIntervals is how many consecutive backpressure-free
	// intervals declare convergence (default 3).
	QuietIntervals int
	// MaxParallelism caps any single operator (0 = uncapped).
	MaxParallelism int
}

func (c Config) withDefaults() Config {
	if c.MaxFactor <= 1 {
		c.MaxFactor = 2
	}
	if c.StabilizeIntervals <= 0 {
		c.StabilizeIntervals = 2
	}
	if c.QuietIntervals <= 0 {
		c.QuietIntervals = 3
	}
	return c
}

// Observation is the coarse signal set Dhalion consumes each metric
// interval — deliberately *not* the true rates DS2 uses.
type Observation struct {
	// Backpressured lists operators currently signaling backpressure.
	Backpressured []string
	// BackpressureFraction is the per-operator fraction of the
	// interval spent signaling.
	BackpressureFraction map[string]float64
	// Parallelism is the currently deployed configuration.
	Parallelism dataflow.Parallelism
}

// Action scales a single operator — Dhalion reconfigures one operator
// per resolution to bound the blast radius of wrong decisions.
type Action struct {
	Operator string
	From, To int
	Reason   string
}

// Controller is the Dhalion health manager for one topology.
type Controller struct {
	graph *dataflow.Graph
	cfg   Config

	cooldown  int
	quiet     int
	converged bool
	decisions int
	// blacklist: per operator, parallelism values known insufficient
	// (tried, but backpressure persisted). The resolver never
	// proposes a value at or below a blacklisted one.
	blacklist map[string]int
}

// New creates a Dhalion controller for the graph.
func New(g *dataflow.Graph, cfg Config) (*Controller, error) {
	if g == nil {
		return nil, errors.New("dhalion: nil graph")
	}
	return &Controller{
		graph:     g,
		cfg:       cfg.withDefaults(),
		blacklist: make(map[string]int),
	}, nil
}

// Decisions returns the number of scaling actions taken so far.
func (c *Controller) Decisions() int { return c.decisions }

// Converged reports whether the controller has seen QuietIntervals
// consecutive healthy intervals.
func (c *Controller) Converged() bool { return c.converged }

// OnInterval consumes one observation and possibly emits an action.
func (c *Controller) OnInterval(obs Observation) (*Action, error) {
	if obs.Parallelism == nil {
		return nil, errors.New("dhalion: observation without parallelism")
	}
	if c.cooldown > 0 {
		c.cooldown--
		return nil, nil
	}
	if len(obs.Backpressured) == 0 {
		c.quiet++
		if c.quiet >= c.cfg.QuietIntervals {
			c.converged = true
		}
		return nil, nil
	}
	c.quiet = 0
	c.converged = false

	// Diagnose: Heron's backpressure is *initiated* by the slow
	// operator itself; upstream operators whose queues also filled
	// are victims of the suspension, not causes. In a chain of
	// backpressured operators the initiator is therefore the most
	// downstream one (its own consumers are healthy). Pick the
	// backpressured operator with the highest topological index.
	bottleneck := ""
	best := -1
	for _, name := range obs.Backpressured {
		idx := c.graph.IndexOf(name)
		if idx < 0 {
			return nil, fmt.Errorf("dhalion: unknown operator %q in observation", name)
		}
		if idx > best {
			best = idx
			bottleneck = name
		}
	}

	p := obs.Parallelism[bottleneck]
	if p < 1 {
		return nil, fmt.Errorf("dhalion: operator %q has parallelism %d", bottleneck, p)
	}
	// The current value failed to clear backpressure: blacklist it so
	// later resolutions never fall back to it.
	if p > c.blacklist[bottleneck] {
		c.blacklist[bottleneck] = p
	}

	frac := obs.BackpressureFraction[bottleneck]
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	factor := 1 + frac*(c.cfg.MaxFactor-1)
	want := int(math.Ceil(float64(p) * factor))
	if want <= c.blacklist[bottleneck] {
		want = c.blacklist[bottleneck] + 1
	}
	if c.cfg.MaxParallelism > 0 && want > c.cfg.MaxParallelism {
		want = c.cfg.MaxParallelism
	}
	if want == p {
		// Capped out: nothing Dhalion can do this round.
		return nil, nil
	}
	c.cooldown = c.cfg.StabilizeIntervals
	c.decisions++
	return &Action{
		Operator: bottleneck,
		From:     p,
		To:       want,
		Reason: fmt.Sprintf("backpressure %.0f%% of interval at %s; scale factor %.2f",
			frac*100, bottleneck, factor),
	}, nil
}
