package dataflow

import (
	"fmt"
	"sort"
	"strings"
)

// Parallelism maps operator names to instance counts. It represents
// either the current physical deployment of a graph or a scaling
// decision produced by a controller.
type Parallelism map[string]int

// UniformParallelism assigns p instances to every non-source operator
// and one instance to each source. Sources are driven by external rates
// in this model; engines that scale sources can override explicitly.
func UniformParallelism(g *Graph, p int) Parallelism {
	out := make(Parallelism, g.NumOperators())
	for i, name := range g.Names() {
		if i < g.NumSources() {
			out[name] = 1
		} else {
			out[name] = p
		}
	}
	return out
}

// Clone returns a deep copy.
func (p Parallelism) Clone() Parallelism {
	out := make(Parallelism, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Equal reports whether p and q assign the same counts to the same
// operators.
func (p Parallelism) Equal(q Parallelism) bool {
	if len(p) != len(q) {
		return false
	}
	for k, v := range p {
		if q[k] != v {
			return false
		}
	}
	return true
}

// Total returns the sum of instance counts, which in a Timely-style
// execution model is the required global worker count (paper §4.3).
func (p Parallelism) Total() int {
	sum := 0
	for _, v := range p {
		sum += v
	}
	return sum
}

// MaxAbsDiff returns the largest per-operator absolute difference
// between p and q; operators missing from either side count with their
// full value. The ScalingManager uses this to ignore minor changes
// (paper §4.2.2).
func (p Parallelism) MaxAbsDiff(q Parallelism) int {
	max := 0
	seen := make(map[string]bool, len(p))
	for k, v := range p {
		seen[k] = true
		d := v - q[k]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	for k, v := range q {
		if !seen[k] && v > max {
			max = v
		}
	}
	return max
}

// Validate checks that p covers exactly the operators of g with
// positive counts.
func (p Parallelism) Validate(g *Graph) error {
	for _, name := range g.Names() {
		v, ok := p[name]
		if !ok {
			return fmt.Errorf("dataflow: parallelism missing operator %q", name)
		}
		if v < 1 {
			return fmt.Errorf("dataflow: parallelism for %q is %d, want >= 1", name, v)
		}
	}
	if len(p) != g.NumOperators() {
		for name := range p {
			if g.IndexOf(name) < 0 {
				return fmt.Errorf("dataflow: parallelism names unknown operator %q", name)
			}
		}
	}
	return nil
}

// String renders the assignment in topological-friendly (sorted) order,
// e.g. "{Count:20 FlatMap:10 Source:1}".
func (p Parallelism) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s:%d", k, p[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// DOT renders the graph in Graphviz format, annotated with the given
// parallelism (which may be nil).
func (g *Graph) DOT(p Parallelism) string {
	var sb strings.Builder
	sb.WriteString("digraph dataflow {\n  rankdir=LR;\n")
	for _, op := range g.ops {
		label := op.Name
		if p != nil {
			label = fmt.Sprintf("%s (p=%d)", op.Name, p[op.Name])
		}
		shape := "box"
		switch op.Role {
		case RoleSource:
			shape = "ellipse"
		case RoleSink:
			shape = "doublecircle"
		}
		fmt.Fprintf(&sb, "  %q [label=%q shape=%s];\n", op.Name, label, shape)
	}
	for i := range g.ops {
		for _, j := range g.ops[i].downstream {
			fmt.Fprintf(&sb, "  %q -> %q;\n", g.ops[i].Name, g.ops[j].Name)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Linear is a convenience constructor for pipeline topologies
// source -> op1 -> ... -> opN. The first name is the source.
func Linear(names ...string) (*Graph, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("dataflow: Linear needs at least 2 operators")
	}
	b := NewBuilder()
	for _, n := range names {
		b.AddOperator(n)
	}
	for i := 0; i+1 < len(names); i++ {
		b.AddEdge(names[i], names[i+1])
	}
	return b.Build()
}
