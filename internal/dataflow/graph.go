// Package dataflow models logical streaming dataflow graphs: directed
// acyclic graphs whose vertices are operators and whose edges are data
// dependencies. The DS2 policy (internal/core) consumes these graphs,
// and the engine simulator (internal/engine) executes them.
//
// A graph is built incrementally with AddOperator/AddEdge and then
// frozen with Build, which validates acyclicity, connectivity and
// source/sink structure and computes a topological order. All consumers
// operate on the frozen *Graph.
package dataflow

import (
	"fmt"
	"sort"
)

// Role classifies an operator's position in the dataflow.
type Role int

const (
	// RoleSource marks an operator with no upstream edges. Sources
	// generate records at an externally defined rate.
	RoleSource Role = iota
	// RoleOperator marks an interior operator.
	RoleOperator
	// RoleSink marks an operator with no downstream edges.
	RoleSink
)

func (r Role) String() string {
	switch r {
	case RoleSource:
		return "source"
	case RoleOperator:
		return "operator"
	case RoleSink:
		return "sink"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Operator is a vertex of the logical dataflow graph.
type Operator struct {
	// Name uniquely identifies the operator within its graph.
	Name string
	// Role is derived by Build from the edge structure.
	Role Role
	// Scalable reports whether the operator is data-parallel. The
	// paper (§3.3) assumes data-parallel operators; users may tag
	// non-data-parallel operators so the policy leaves them alone.
	Scalable bool

	index      int
	upstream   []int
	downstream []int
}

// Index returns the operator's position in the graph's topological
// order. Sources come first (see Graph.Build).
func (o *Operator) Index() int { return o.index }

// Graph is a frozen logical dataflow DAG. The zero value is not usable;
// construct one through a Builder.
type Graph struct {
	ops    []*Operator // in topological order, sources first
	byName map[string]int
	edges  [][]bool // adjacency: edges[i][j] == true iff op i feeds op j
	nSrc   int
}

// Builder accumulates operators and edges before validation.
type Builder struct {
	names    []string
	scalable map[string]bool
	edges    map[[2]string]bool
	err      error
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{
		scalable: make(map[string]bool),
		edges:    make(map[[2]string]bool),
	}
}

// AddOperator registers a data-parallel operator. Adding the same name
// twice records an error that Build will report.
func (b *Builder) AddOperator(name string) *Builder {
	return b.add(name, true)
}

// AddNonScalableOperator registers an operator that the scaling policy
// must not resize (paper §3.3: non-data-parallel operators).
func (b *Builder) AddNonScalableOperator(name string) *Builder {
	return b.add(name, false)
}

func (b *Builder) add(name string, scalable bool) *Builder {
	if b.err != nil {
		return b
	}
	if name == "" {
		b.err = fmt.Errorf("dataflow: empty operator name")
		return b
	}
	if _, dup := b.scalable[name]; dup {
		b.err = fmt.Errorf("dataflow: duplicate operator %q", name)
		return b
	}
	b.scalable[name] = scalable
	b.names = append(b.names, name)
	return b
}

// AddEdge registers a data dependency from -> to. Both endpoints must
// have been added; self-loops and duplicate edges are errors.
func (b *Builder) AddEdge(from, to string) *Builder {
	if b.err != nil {
		return b
	}
	if _, ok := b.scalable[from]; !ok {
		b.err = fmt.Errorf("dataflow: edge from unknown operator %q", from)
		return b
	}
	if _, ok := b.scalable[to]; !ok {
		b.err = fmt.Errorf("dataflow: edge to unknown operator %q", to)
		return b
	}
	if from == to {
		b.err = fmt.Errorf("dataflow: self-loop on %q", from)
		return b
	}
	key := [2]string{from, to}
	if b.edges[key] {
		b.err = fmt.Errorf("dataflow: duplicate edge %q -> %q", from, to)
		return b
	}
	b.edges[key] = true
	return b
}

// Err returns the first error the builder has recorded, or nil. It
// lets wrapping builders surface a structural failure (duplicate
// operator, unknown edge endpoint) at the call that caused it instead
// of discovering it at Build, after later errors may have been
// recorded on the wrapper's side.
func (b *Builder) Err() error { return b.err }

// Build validates the accumulated structure and returns the frozen
// graph. It requires at least one source, at least one non-source, a
// DAG (no cycles), and that every operator is reachable from some
// source (so rates propagate to it).
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.names)
	if n < 2 {
		return nil, fmt.Errorf("dataflow: need at least 2 operators, have %d", n)
	}

	tmpIdx := make(map[string]int, n)
	for i, name := range b.names {
		tmpIdx[name] = i
	}
	out := make([][]int, n)
	in := make([][]int, n)
	for key := range b.edges {
		f, t := tmpIdx[key[0]], tmpIdx[key[1]]
		out[f] = append(out[f], t)
		in[t] = append(in[t], f)
	}

	// Kahn's algorithm, but seeded with sources first and using the
	// insertion order as a stable tie-break so topological order is
	// deterministic.
	order, err := topoOrder(b.names, in, out)
	if err != nil {
		return nil, err
	}

	// Sources must form a prefix of the topological order per the
	// paper's convention (0 <= j < n are sources in Eq. 8). Kahn's
	// seeded with all zero-indegree nodes guarantees this as long as
	// we emit the initial frontier before anything else, which
	// topoOrder does.
	g := &Graph{
		byName: make(map[string]int, n),
		edges:  make([][]bool, n),
	}
	for i := range g.edges {
		g.edges[i] = make([]bool, n)
	}
	for newIdx, oldIdx := range order {
		name := b.names[oldIdx]
		op := &Operator{
			Name:     name,
			Scalable: b.scalable[name],
			index:    newIdx,
		}
		g.ops = append(g.ops, op)
		g.byName[name] = newIdx
	}
	for key := range b.edges {
		f := g.byName[key[0]]
		t := g.byName[key[1]]
		if f >= t {
			return nil, fmt.Errorf("dataflow: internal error: topological order violated for %q -> %q", key[0], key[1])
		}
		g.edges[f][t] = true
		g.ops[f].downstream = append(g.ops[f].downstream, t)
		g.ops[t].upstream = append(g.ops[t].upstream, f)
	}
	for _, op := range g.ops {
		sort.Ints(op.downstream)
		sort.Ints(op.upstream)
		switch {
		case len(op.upstream) == 0 && len(op.downstream) == 0:
			return nil, fmt.Errorf("dataflow: operator %q is disconnected", op.Name)
		case len(op.upstream) == 0:
			op.Role = RoleSource
			g.nSrc++
		case len(op.downstream) == 0:
			op.Role = RoleSink
		default:
			op.Role = RoleOperator
		}
	}
	if g.nSrc == 0 {
		return nil, fmt.Errorf("dataflow: graph has no source (cycle?)")
	}
	if g.nSrc == len(g.ops) {
		return nil, fmt.Errorf("dataflow: graph has only sources")
	}
	// Every non-source must be reachable from a source; since the
	// graph is a DAG where every non-source has an upstream operator,
	// reachability follows by induction along the topological order.
	// Verify sources occupy the prefix.
	for i, op := range g.ops {
		if (i < g.nSrc) != (op.Role == RoleSource) {
			return nil, fmt.Errorf("dataflow: internal error: source %q not in topological prefix", op.Name)
		}
	}
	return g, nil
}

func topoOrder(names []string, in, out [][]int) ([]int, error) {
	n := len(names)
	indeg := make([]int, n)
	for i := range in {
		indeg[i] = len(in[i])
	}
	var frontier []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	var order []int
	for len(frontier) > 0 {
		// Stable: lowest insertion index first.
		sort.Ints(frontier)
		node := frontier[0]
		frontier = frontier[1:]
		order = append(order, node)
		for _, succ := range out[node] {
			indeg[succ]--
			if indeg[succ] == 0 {
				frontier = append(frontier, succ)
			}
		}
	}
	if len(order) != n {
		var cyclic []string
		for i, d := range indeg {
			if d > 0 {
				cyclic = append(cyclic, names[i])
			}
		}
		sort.Strings(cyclic)
		return nil, fmt.Errorf("dataflow: cycle involving %v", cyclic)
	}
	return order, nil
}

// NumOperators returns the number of operators (m in the paper).
func (g *Graph) NumOperators() int { return len(g.ops) }

// NumSources returns the number of source operators (n in the paper).
func (g *Graph) NumSources() int { return g.nSrc }

// Operator returns the operator at topological position i.
func (g *Graph) Operator(i int) *Operator { return g.ops[i] }

// Lookup returns the operator with the given name.
func (g *Graph) Lookup(name string) (*Operator, bool) {
	i, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	return g.ops[i], true
}

// IndexOf returns the topological index of the named operator, or -1.
func (g *Graph) IndexOf(name string) int {
	if i, ok := g.byName[name]; ok {
		return i
	}
	return -1
}

// HasEdge reports whether operator i feeds operator j (A_ij in the
// paper's adjacency matrix).
func (g *Graph) HasEdge(i, j int) bool { return g.edges[i][j] }

// Upstream returns the topological indices of the operators feeding i.
func (g *Graph) Upstream(i int) []int { return g.ops[i].upstream }

// Downstream returns the topological indices of the operators fed by i.
func (g *Graph) Downstream(i int) []int { return g.ops[i].downstream }

// Names returns operator names in topological order.
func (g *Graph) Names() []string {
	names := make([]string, len(g.ops))
	for i, op := range g.ops {
		names[i] = op.Name
	}
	return names
}

// Sources returns the names of the source operators.
func (g *Graph) Sources() []string {
	return g.Names()[:g.nSrc]
}
