package dataflow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustLinear(t *testing.T, names ...string) *Graph {
	t.Helper()
	g, err := Linear(names...)
	if err != nil {
		t.Fatalf("Linear(%v): %v", names, err)
	}
	return g
}

func TestLinearGraphStructure(t *testing.T) {
	g := mustLinear(t, "src", "flatmap", "count")
	if got := g.NumOperators(); got != 3 {
		t.Fatalf("NumOperators = %d, want 3", got)
	}
	if got := g.NumSources(); got != 1 {
		t.Fatalf("NumSources = %d, want 1", got)
	}
	wantRoles := []Role{RoleSource, RoleOperator, RoleSink}
	for i, want := range wantRoles {
		if got := g.Operator(i).Role; got != want {
			t.Errorf("op %d role = %v, want %v", i, got, want)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Errorf("unexpected adjacency: 0->1=%v 1->2=%v 0->2=%v",
			g.HasEdge(0, 1), g.HasEdge(1, 2), g.HasEdge(0, 2))
	}
}

func TestDiamondTopology(t *testing.T) {
	g, err := NewBuilder().
		AddOperator("src").
		AddOperator("a").
		AddOperator("b").
		AddOperator("join").
		AddEdge("src", "a").
		AddEdge("src", "b").
		AddEdge("a", "join").
		AddEdge("b", "join").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	join, ok := g.Lookup("join")
	if !ok {
		t.Fatal("join not found")
	}
	if len(g.Upstream(join.Index())) != 2 {
		t.Errorf("join upstream = %v, want 2 entries", g.Upstream(join.Index()))
	}
	if join.Role != RoleSink {
		t.Errorf("join role = %v, want sink", join.Role)
	}
}

func TestMultiSourceTopologicalPrefix(t *testing.T) {
	// Two sources (like Nexmark Q3: persons + auctions).
	g, err := NewBuilder().
		AddOperator("join").
		AddOperator("persons").
		AddOperator("auctions").
		AddOperator("sink").
		AddEdge("persons", "join").
		AddEdge("auctions", "join").
		AddEdge("join", "sink").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumSources() != 2 {
		t.Fatalf("NumSources = %d, want 2", g.NumSources())
	}
	for i := 0; i < g.NumSources(); i++ {
		if g.Operator(i).Role != RoleSource {
			t.Errorf("op %d (%s) should be a source", i, g.Operator(i).Name)
		}
	}
	srcs := g.Sources()
	if len(srcs) != 2 {
		t.Fatalf("Sources() = %v", srcs)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Graph, error)
		want  string
	}{
		{"empty name", func() (*Graph, error) {
			return NewBuilder().AddOperator("").AddOperator("x").Build()
		}, "empty operator name"},
		{"duplicate operator", func() (*Graph, error) {
			return NewBuilder().AddOperator("x").AddOperator("x").Build()
		}, "duplicate operator"},
		{"unknown edge endpoint", func() (*Graph, error) {
			return NewBuilder().AddOperator("x").AddEdge("x", "y").Build()
		}, "unknown operator"},
		{"self loop", func() (*Graph, error) {
			return NewBuilder().AddOperator("x").AddEdge("x", "x").Build()
		}, "self-loop"},
		{"duplicate edge", func() (*Graph, error) {
			return NewBuilder().AddOperator("x").AddOperator("y").
				AddEdge("x", "y").AddEdge("x", "y").Build()
		}, "duplicate edge"},
		{"too small", func() (*Graph, error) {
			return NewBuilder().AddOperator("x").Build()
		}, "at least 2"},
		{"cycle", func() (*Graph, error) {
			return NewBuilder().AddOperator("a").AddOperator("b").AddOperator("c").
				AddEdge("a", "b").AddEdge("b", "c").AddEdge("c", "b").Build()
		}, "cycle"},
		{"all cycle no source", func() (*Graph, error) {
			return NewBuilder().AddOperator("a").AddOperator("b").
				AddEdge("a", "b").AddEdge("b", "a").Build()
		}, ""},
		{"disconnected", func() (*Graph, error) {
			return NewBuilder().AddOperator("a").AddOperator("b").AddOperator("c").
				AddEdge("a", "b").Build()
		}, "disconnected"},
		{"only sources", func() (*Graph, error) {
			// Impossible to build without edges; disconnected fires
			// first, which is the right diagnosis.
			return NewBuilder().AddOperator("a").AddOperator("b").Build()
		}, "disconnected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err == nil {
				t.Fatalf("Build succeeded (%v), want error containing %q", g.Names(), tc.want)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestBuilderErrorSticks(t *testing.T) {
	b := NewBuilder().AddOperator("x").AddOperator("x")
	// Subsequent valid calls must not clear the error.
	b.AddOperator("y").AddEdge("x", "y")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded after duplicate operator")
	}
}

func TestLookupAndIndexOf(t *testing.T) {
	g := mustLinear(t, "s", "a", "b")
	if _, ok := g.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	if got := g.IndexOf("nope"); got != -1 {
		t.Errorf("IndexOf(nope) = %d, want -1", got)
	}
	if got := g.IndexOf("b"); got != 2 {
		t.Errorf("IndexOf(b) = %d, want 2", got)
	}
}

func TestRoleString(t *testing.T) {
	if RoleSource.String() != "source" || RoleOperator.String() != "operator" || RoleSink.String() != "sink" {
		t.Error("Role.String mismatch")
	}
	if Role(42).String() == "" {
		t.Error("unknown role should still render")
	}
}

// randomDAG builds a random layered DAG and returns it, or nil if the
// random structure was rejected by Build for a legitimate reason
// (e.g. disconnected vertex).
func randomDAG(rng *rand.Rand) *Graph {
	n := 2 + rng.Intn(10)
	b := NewBuilder()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
		b.AddOperator(names[i])
	}
	// Edges only forward in index order: guarantees acyclicity.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				b.AddEdge(names[i], names[j])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil
	}
	return g
}

func TestRandomDAGsTopologicalInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	built := 0
	for trial := 0; trial < 500; trial++ {
		g := randomDAG(rng)
		if g == nil {
			continue
		}
		built++
		// Invariant: every edge goes from a lower to a higher
		// topological index, and sources form a prefix.
		m := g.NumOperators()
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if g.HasEdge(i, j) && i >= j {
					t.Fatalf("edge %d -> %d violates topological order", i, j)
				}
			}
		}
		for i := 0; i < m; i++ {
			isSrc := g.Operator(i).Role == RoleSource
			if (i < g.NumSources()) != isSrc {
				t.Fatalf("source prefix violated at %d", i)
			}
		}
		// Upstream/Downstream must agree with HasEdge.
		for i := 0; i < m; i++ {
			for _, j := range g.Downstream(i) {
				if !g.HasEdge(i, j) {
					t.Fatalf("Downstream(%d) lists %d but HasEdge is false", i, j)
				}
			}
			for _, j := range g.Upstream(i) {
				if !g.HasEdge(j, i) {
					t.Fatalf("Upstream(%d) lists %d but HasEdge is false", i, j)
				}
			}
		}
	}
	if built < 100 {
		t.Fatalf("only %d random DAGs built; generator too restrictive", built)
	}
}

func TestParallelismHelpers(t *testing.T) {
	g := mustLinear(t, "src", "a", "b")
	p := UniformParallelism(g, 4)
	if p["src"] != 1 || p["a"] != 4 || p["b"] != 4 {
		t.Fatalf("UniformParallelism = %v", p)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone not equal")
	}
	q["a"] = 7
	if p.Equal(q) {
		t.Error("mutated clone equal to original")
	}
	if p["a"] != 4 {
		t.Error("clone aliases original")
	}
	if got := q.MaxAbsDiff(p); got != 3 {
		t.Errorf("MaxAbsDiff = %d, want 3", got)
	}
	if got := p.Total(); got != 9 {
		t.Errorf("Total = %d, want 9", got)
	}
	if got := p.String(); got != "{a:4 b:4 src:1}" {
		t.Errorf("String = %q", got)
	}
}

func TestParallelismValidateErrors(t *testing.T) {
	g := mustLinear(t, "src", "a")
	if err := (Parallelism{"src": 1}).Validate(g); err == nil {
		t.Error("missing operator accepted")
	}
	if err := (Parallelism{"src": 1, "a": 0}).Validate(g); err == nil {
		t.Error("zero parallelism accepted")
	}
	if err := (Parallelism{"src": 1, "a": 1, "ghost": 2}).Validate(g); err == nil {
		t.Error("unknown operator accepted")
	}
}

func TestMaxAbsDiffAsymmetricKeys(t *testing.T) {
	p := Parallelism{"a": 3}
	q := Parallelism{"b": 5}
	if got := p.MaxAbsDiff(q); got != 5 {
		t.Errorf("MaxAbsDiff = %d, want 5", got)
	}
	if got := q.MaxAbsDiff(p); got != 5 {
		t.Errorf("MaxAbsDiff reversed = %d, want 5", got)
	}
}

func TestDOTContainsAllOperators(t *testing.T) {
	g := mustLinear(t, "src", "map", "sink")
	dot := g.DOT(Parallelism{"src": 1, "map": 3, "sink": 1})
	for _, want := range []string{`"src"`, `"map"`, `"sink"`, "p=3", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.Contains(g.DOT(nil), `"map"`) {
		t.Error("DOT(nil) missing operator")
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear("only"); err == nil {
		t.Error("Linear with one name accepted")
	}
}

// Property: MaxAbsDiff is a metric-like function — symmetric and zero
// iff equal (on equal key sets with positive values).
func TestQuickMaxAbsDiffSymmetry(t *testing.T) {
	f := func(a, b uint8, c, d uint8) bool {
		p := Parallelism{"x": int(a%16) + 1, "y": int(c%16) + 1}
		q := Parallelism{"x": int(b%16) + 1, "y": int(d%16) + 1}
		if p.MaxAbsDiff(q) != q.MaxAbsDiff(p) {
			return false
		}
		if p.Equal(q) != (p.MaxAbsDiff(q) == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
