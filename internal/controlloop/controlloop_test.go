package controlloop_test

import (
	"errors"
	"testing"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/dhalion"
	"ds2/internal/engine"
	"ds2/internal/nexmark"
	"ds2/internal/wordcount"
)

// --- convergence parity with the pre-refactor hand-wired loops ----------
//
// Before the controlloop extraction every experiment hand-rolled the
// §4.2 loop. These tests keep byte-for-byte replicas of those loops
// and assert the Controller walks the exact same trajectory on the
// deterministic simulator.

// handWiredDS2 is the historical experiments.ds2Loop: settle each
// redeployment synchronously and discard the polluted window.
func handWiredDS2(t *testing.T, e *engine.Engine, mgr *core.Manager, interval float64, maxIntervals int) (decisions int, final dataflow.Parallelism) {
	t.Helper()
	for i := 0; i < maxIntervals; i++ {
		st := e.RunInterval(interval)
		if e.Paused() {
			continue
		}
		snap, err := engine.Snapshot(st)
		if err != nil {
			t.Fatal(err)
		}
		act, err := mgr.OnInterval(snap)
		if err != nil {
			t.Fatal(err)
		}
		if act != nil {
			if err := e.Rescale(act.New); err != nil {
				t.Fatal(err)
			}
			for e.Paused() {
				e.Run(1)
			}
			e.Collect()
			decisions++
		}
	}
	return decisions, e.Parallelism()
}

func heronWordcount(t *testing.T) (*engine.Engine, *core.Manager) {
	t.Helper()
	w, err := wordcount.Heron(0)
	if err != nil {
		t.Fatal(err)
	}
	initial := dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 1, wordcount.Count: 1}
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initial, engine.Config{
		Mode:          engine.ModeHeron,
		Tick:          0.05,
		QueueCapacity: 200_000,
		RedeployDelay: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(pol, initial, core.ManagerConfig{
		ActivationIntervals: 1,
		TargetRateRatio:     1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, mgr
}

func TestWordcountParityWithHandWiredLoop(t *testing.T) {
	e1, mgr1 := heronWordcount(t)
	wantDecisions, wantFinal := handWiredDS2(t, e1, mgr1, 60, 10)

	e2, mgr2 := heronWordcount(t)
	loop, err := controlloop.New(controlloop.NewEngineRuntime(e2, true), controlloop.DS2Autoscaler(mgr2),
		controlloop.Config{Interval: 60, MaxIntervals: 10})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Decisions != wantDecisions {
		t.Errorf("controller decisions = %d, hand-wired loop = %d", tr.Decisions, wantDecisions)
	}
	if !tr.Final.Equal(wantFinal) {
		t.Errorf("controller final = %v, hand-wired loop = %v", tr.Final, wantFinal)
	}
	// §5.2 sanity: one decision straight to the optimum.
	if tr.Decisions != 1 {
		t.Errorf("decisions = %d, want 1", tr.Decisions)
	}
	if len(tr.Intervals) != 10 {
		t.Errorf("intervals = %d, want 10", len(tr.Intervals))
	}
}

func flinkNexmark(t *testing.T, query string, initial int) (*engine.Engine, *core.Manager, *nexmark.Workload) {
	t.Helper()
	w, err := nexmark.Query(query, nexmark.SystemFlink)
	if err != nil {
		t.Fatal(err)
	}
	initPar := w.InitialParallelism(initial)
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initPar, engine.Config{
		Mode:          engine.ModeFlink,
		Tick:          0.05,
		QueueCapacity: 20_000,
		RedeployDelay: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(pol, initPar, core.ManagerConfig{
		WarmupIntervals:     1,
		ActivationIntervals: 1,
		Aggregation:         core.AggMax,
		TargetRateRatio:     1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, mgr, w
}

// handWiredNexmark is the historical experiments.convergenceRun loop:
// no settling, five-interval stability stop.
func handWiredNexmark(t *testing.T, e *engine.Engine, mgr *core.Manager, mainOp string) (steps []int, final int) {
	t.Helper()
	stable := 0
	for i := 0; i < 40 && stable < 5; i++ {
		st := e.RunInterval(30)
		if e.Paused() {
			continue
		}
		snap, err := engine.Snapshot(st)
		if err != nil {
			t.Fatal(err)
		}
		act, err := mgr.OnInterval(snap)
		if err != nil {
			t.Fatal(err)
		}
		if act != nil {
			if err := e.Rescale(act.New); err != nil {
				t.Fatal(err)
			}
			steps = append(steps, act.New[mainOp])
			stable = 0
		} else {
			stable++
		}
	}
	return steps, e.Parallelism()[mainOp]
}

func TestNexmarkParityWithHandWiredLoop(t *testing.T) {
	e1, mgr1, w := flinkNexmark(t, "q3", 8)
	wantSteps, wantFinal := handWiredNexmark(t, e1, mgr1, w.MainOperator)

	e2, mgr2, _ := flinkNexmark(t, "q3", 8)
	loop, err := controlloop.New(controlloop.NewEngineRuntime(e2, false), controlloop.DS2Autoscaler(mgr2),
		controlloop.Config{Interval: 30, MaxIntervals: 40, StableIntervals: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	for _, iv := range tr.Intervals {
		if iv.Applied != nil {
			steps = append(steps, iv.Applied[w.MainOperator])
		}
	}
	if len(steps) != len(wantSteps) {
		t.Fatalf("controller steps %v, hand-wired %v", steps, wantSteps)
	}
	for i := range steps {
		if steps[i] != wantSteps[i] {
			t.Fatalf("controller steps %v, hand-wired %v", steps, wantSteps)
		}
	}
	if got := tr.Final[w.MainOperator]; got != wantFinal {
		t.Errorf("controller final = %d, hand-wired = %d", got, wantFinal)
	}
}

// TestDhalionThroughController runs the Dhalion baseline through the
// same Controller DS2 uses — the first time both controllers share one
// loop — and checks the §5.2 qualitative behaviour plus the shared
// trace schema.
func TestDhalionThroughController(t *testing.T) {
	w, err := wordcount.Heron(0)
	if err != nil {
		t.Fatal(err)
	}
	initial := dataflow.Parallelism{wordcount.Source: 1, wordcount.FlatMap: 1, wordcount.Count: 1}
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initial, engine.Config{
		Mode:          engine.ModeHeron,
		Tick:          0.05,
		QueueCapacity: 200_000,
		RedeployDelay: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := dhalion.New(w.Graph, dhalion.Config{})
	if err != nil {
		t.Fatal(err)
	}
	loop, err := controlloop.New(controlloop.NewEngineRuntime(e, false), dhalion.Autoscaler(ctrl),
		controlloop.Config{Interval: 60, MaxIntervals: 50, Done: ctrl.Converged})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !ctrl.Converged() {
		t.Error("Dhalion did not converge within the horizon")
	}
	// Many single-operator steps, over-provisioned final (Fig. 1/6).
	if tr.Decisions < 5 {
		t.Errorf("decisions = %d, want >= 5", tr.Decisions)
	}
	if tr.Final[wordcount.FlatMap] <= w.Optimal[wordcount.FlatMap] ||
		tr.Final[wordcount.Count] <= w.Optimal[wordcount.Count] {
		t.Errorf("final %v not over-provisioned vs optimal %v", tr.Final, w.Optimal)
	}
	// Shared trace schema: every action row carries kind, reason and
	// the applied configuration, exactly like a DS2 trace.
	actions := 0
	for _, iv := range tr.Intervals {
		if iv.Action == "" {
			continue
		}
		actions++
		if iv.Action != "rescale" {
			t.Errorf("action kind = %q, want rescale", iv.Action)
		}
		if iv.Reason == "" {
			t.Error("action without reason")
		}
		if iv.Applied == nil {
			t.Error("action without applied configuration")
		}
	}
	if actions != tr.Decisions {
		t.Errorf("action rows = %d, decisions = %d", actions, tr.Decisions)
	}
	if tr.ConvergedAt <= 0 {
		t.Error("ConvergedAt not recorded")
	}
}

// --- loop mechanics on a scripted runtime -------------------------------

type fakeRuntime struct {
	now      float64
	par      dataflow.Parallelism
	busyFor  int // Advance calls reporting Busy after each Apply
	busyLeft int
	applied  []*core.Action
}

func (f *fakeRuntime) Advance(d float64) (controlloop.Observation, error) {
	f.now += d
	busy := f.busyLeft > 0
	if busy {
		f.busyLeft--
	}
	return controlloop.Observation{
		Start:          f.now - d,
		End:            f.now,
		Busy:           busy,
		TargetRates:    map[string]float64{"src": 100},
		SourceObserved: map[string]float64{"src": 80},
		Parallelism:    f.par.Clone(),
	}, nil
}

func (f *fakeRuntime) Apply(a *core.Action) error {
	f.applied = append(f.applied, a)
	f.par = a.New.Clone()
	f.busyLeft = f.busyFor
	return nil
}

func (f *fakeRuntime) Parallelism() dataflow.Parallelism { return f.par.Clone() }

type scripted struct {
	actions  []*core.Action
	observed int
}

func (s *scripted) Observe(controlloop.Observation) (*core.Action, error) {
	s.observed++
	if len(s.actions) == 0 {
		return nil, nil
	}
	a := s.actions[0]
	s.actions = s.actions[1:]
	return a, nil
}

func TestControllerBookkeeping(t *testing.T) {
	rt := &fakeRuntime{par: dataflow.Parallelism{"op": 1}}
	up := &core.Action{Kind: core.ActionRescale, New: dataflow.Parallelism{"op": 4}, Reason: "up"}
	back := &core.Action{Kind: core.ActionRollback, New: dataflow.Parallelism{"op": 1}, Reason: "degraded"}
	loop, err := controlloop.New(rt, &scripted{actions: []*core.Action{nil, up, nil, back}},
		controlloop.Config{Interval: 10, MaxIntervals: 6})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Decisions != 2 {
		t.Errorf("decisions = %d, want 2", tr.Decisions)
	}
	if tr.ConvergedAt != 40 {
		t.Errorf("converged at %v, want 40 (second action's interval end)", tr.ConvergedAt)
	}
	if len(tr.Intervals) != 6 {
		t.Fatalf("intervals = %d, want 6", len(tr.Intervals))
	}
	if got := tr.Intervals[1]; got.Action != "rescale" || got.Applied["op"] != 4 {
		t.Errorf("interval 1 = %+v, want rescale to op:4", got)
	}
	if got := tr.Intervals[3]; got.Action != "rollback" || got.Applied["op"] != 1 {
		t.Errorf("interval 3 = %+v, want rollback to op:1", got)
	}
	if !tr.Final.Equal(dataflow.Parallelism{"op": 1}) {
		t.Errorf("final = %v", tr.Final)
	}
	if tr.Intervals[0].Target != 100 || tr.Intervals[0].Achieved != 80 {
		t.Errorf("rate bookkeeping: %+v", tr.Intervals[0])
	}
}

func TestControllerSkipsAutoscalerWhileBusy(t *testing.T) {
	rt := &fakeRuntime{par: dataflow.Parallelism{"op": 1}, busyFor: 2}
	as := &scripted{actions: []*core.Action{{Kind: core.ActionRescale, New: dataflow.Parallelism{"op": 2}}}}
	loop, err := controlloop.New(rt, as, controlloop.Config{Interval: 10, MaxIntervals: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	// controlloop.Interval 1 acts; intervals 2-3 are busy and must not consult the
	// autoscaler; intervals 4-5 are quiet.
	if as.observed != 3 {
		t.Errorf("autoscaler consulted %d times, want 3", as.observed)
	}
	busy := 0
	for _, iv := range tr.Intervals {
		if iv.Busy {
			busy++
		}
	}
	if busy != 2 {
		t.Errorf("busy intervals = %d, want 2", busy)
	}
}

func TestControllerStableStop(t *testing.T) {
	rt := &fakeRuntime{par: dataflow.Parallelism{"op": 1}}
	loop, err := controlloop.New(rt, controlloop.Hold(), controlloop.Config{Interval: 10, MaxIntervals: 100, StableIntervals: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) != 3 {
		t.Errorf("intervals = %d, want 3 (stable stop)", len(tr.Intervals))
	}
	if tr.Decisions != 0 {
		t.Errorf("decisions = %d", tr.Decisions)
	}
}

func TestControllerDoneStop(t *testing.T) {
	rt := &fakeRuntime{par: dataflow.Parallelism{"op": 1}}
	n := 0
	loop, err := controlloop.New(rt, controlloop.Hold(), controlloop.Config{
		Interval:     10,
		MaxIntervals: 100,
		Done:         func() bool { n++; return n >= 4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) != 4 {
		t.Errorf("intervals = %d, want 4 (done stop)", len(tr.Intervals))
	}
}

type failingAutoscaler struct{ after int }

func (f *failingAutoscaler) Observe(controlloop.Observation) (*core.Action, error) {
	if f.after <= 0 {
		return nil, errors.New("boom")
	}
	f.after--
	return nil, nil
}

// TestErrorIntervalRecorded pins the post-mortem contract: the
// interval whose metrics triggered a failure reaches both the stored
// trace and the live OnInterval hook.
func TestErrorIntervalRecorded(t *testing.T) {
	rt := &fakeRuntime{par: dataflow.Parallelism{"op": 1}}
	var hooked int
	loop, err := controlloop.New(rt, &failingAutoscaler{after: 2}, controlloop.Config{
		Interval:     10,
		MaxIntervals: 10,
		OnInterval:   func(controlloop.Interval) { hooked++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Run()
	if err == nil {
		t.Fatal("expected error")
	}
	if len(tr.Intervals) != 3 {
		t.Errorf("intervals = %d, want 3 (two quiet + the failing one)", len(tr.Intervals))
	}
	if hooked != 3 {
		t.Errorf("OnInterval fired %d times, want 3 (stored trace and live output must not diverge)", hooked)
	}
}

func TestNewValidation(t *testing.T) {
	rt := &fakeRuntime{par: dataflow.Parallelism{"op": 1}}
	cases := []struct {
		name string
		rt   controlloop.Runtime
		as   controlloop.Autoscaler
		cfg  controlloop.Config
	}{
		{"nil runtime", nil, controlloop.Hold(), controlloop.Config{Interval: 1, MaxIntervals: 1}},
		{"nil autoscaler", rt, nil, controlloop.Config{Interval: 1, MaxIntervals: 1}},
		{"zero interval", rt, controlloop.Hold(), controlloop.Config{MaxIntervals: 1}},
		{"zero max intervals", rt, controlloop.Hold(), controlloop.Config{Interval: 1}},
		{"negative stable", rt, controlloop.Hold(), controlloop.Config{Interval: 1, MaxIntervals: 1, StableIntervals: -1}},
	}
	for _, c := range cases {
		if _, err := controlloop.New(c.rt, c.as, c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}
