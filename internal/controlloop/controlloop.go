// Package controlloop implements the paper's scaling-manager control
// loop (§4.2) exactly once: collect one interval of metrics, let a
// policy look at them, apply whatever rescale it proposes, and ride out
// the redeployment — for any controller over any runtime.
//
// The loop is deliberately split along the two seams the paper itself
// draws in Fig. 5:
//
//   - Runtime is the system under control. It advances (virtual or
//     real) time one policy interval and reports an Observation — the
//     instrumentation snapshot DS2 consumes plus the coarse external
//     signals (backpressure, queue occupancy) rule-based controllers
//     like Dhalion consume. The simulator implements it via
//     EngineRuntime; a real-engine backend would implement the same
//     three methods against savepoints and a metrics repository.
//
//   - Autoscaler is the decision maker. It observes one interval and
//     either holds or returns a core.Action. DS2Autoscaler adapts the
//     scaling manager (core.Manager); internal/dhalion and
//     internal/queueing ship adapters for their controllers, so every
//     baseline runs through the identical loop and emits the identical
//     Trace schema.
//
// The Controller in between owns what used to be copy-pasted into
// every experiment, example and cmd binary: interval pacing, skipping
// decisions while the job is mid-redeployment, discarding metric
// windows polluted by a restart (via the runtime's Apply), stability
// and convergence stopping rules, target-vs-achieved bookkeeping, and
// the structured per-interval Trace.
package controlloop

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
	"ds2/internal/metrics"
)

// Observation is everything a Runtime reports for one policy interval:
// the aggregated instrumentation snapshot (the DS2 policy's input) and
// the externally visible signals rule-based policies read.
type Observation struct {
	// Start and End delimit the interval in seconds.
	Start, End float64
	// Busy reports that the job is mid-redeployment at interval end;
	// the Controller records the interval but consults no autoscaler.
	Busy bool
	// SnapshotFn lazily builds the per-operator aggregate of the
	// interval's instrumentation windows — the DS2 policy's input.
	// Runtimes supply a memoized builder so snapshot-blind autoscalers
	// (Dhalion, Hold) never pay the aggregation; nil while Busy or when
	// the runtime has no instrumentation.
	SnapshotFn func() (metrics.Snapshot, error)
	// TargetRates is the target rate per source at interval end.
	TargetRates map[string]float64
	// SourceObserved is the achieved output rate per source over the
	// interval — what an external monitor sees.
	SourceObserved map[string]float64
	// Backpressured lists operators signaling backpressure, and
	// BackpressureFraction the fraction of the interval each spent
	// signaling (the Dhalion inputs).
	Backpressured        []string
	BackpressureFraction map[string]float64
	// Parallelism and Workers snapshot the deployment the interval ran
	// under.
	Parallelism dataflow.Parallelism
	Workers     int
	// Latencies are weighted per-record latency samples taken at sinks;
	// EpochLatencies are completed-epoch latencies (Timely mode).
	Latencies      []metrics.LatencySample
	EpochLatencies []engine.EpochLatency
}

// Snapshot builds (memoized, via SnapshotFn) the aggregated policy
// input. It returns a zero snapshot when the runtime supplied none.
func (o Observation) Snapshot() (metrics.Snapshot, error) {
	if o.SnapshotFn == nil {
		return metrics.Snapshot{}, nil
	}
	return o.SnapshotFn()
}

// TargetRate sums the target rates of all sources.
func (o Observation) TargetRate() float64 {
	sum := 0.0
	for _, r := range o.TargetRates {
		sum += r
	}
	return sum
}

// AchievedRate sums the observed output rates of all sources.
func (o Observation) AchievedRate() float64 {
	sum := 0.0
	for _, r := range o.SourceObserved {
		sum += r
	}
	return sum
}

// ErrStopped is returned by a Runtime's Advance when the job under
// control was shut down (deregistered, connection closed) rather than
// failed. Run treats it as a clean stop: the accumulated trace is
// returned and the error surfaces unwrapped so long-running hosts (the
// ds2d scaling service) can distinguish "job went away" from a real
// policy or runtime failure.
var ErrStopped = errors.New("controlloop: runtime stopped")

// Runtime is one executable streaming job under control: the simulator
// (EngineRuntime), the live in-process dataflow runtime with wall-clock
// instrumentation (internal/streamrt's Runtime), or a job across the
// network boundary via internal/service's RemoteRuntime.
//
// The Runtime owns the loop's pacing. A simulator-backed Runtime
// advances virtual time and returns immediately; a service-backed
// Runtime blocks in Advance until the remote job has reported d
// seconds' worth of wall-clock instrumentation — the Controller itself
// never sleeps, so the same loop drives both virtual-time experiments
// and real-time daemons.
type Runtime interface {
	// Advance runs the job for d seconds of (virtual or real) time and
	// reports the interval's observation. It returns ErrStopped when
	// the job was shut down cleanly.
	Advance(d float64) (Observation, error)
	// Apply deploys a scaling action. Implementations decide how the
	// redeployment interacts with the metric stream: they may settle
	// the restart synchronously and discard the polluted partial
	// window, or let the pause ride through subsequent intervals and
	// report Busy observations meanwhile.
	Apply(*core.Action) error
	// Parallelism returns the currently deployed configuration.
	Parallelism() dataflow.Parallelism
}

// Autoscaler is one scaling policy plus its operational state. Observe
// consumes one interval and returns nil to hold the deployment or an
// action to apply before the next interval.
type Autoscaler interface {
	Observe(Observation) (*core.Action, error)
}

// Config tunes one Controller run.
type Config struct {
	// Interval is the policy interval in seconds (required > 0).
	Interval float64
	// MaxIntervals bounds the run (required > 0).
	MaxIntervals int
	// StableIntervals, when > 0, stops the run once this many
	// consecutive non-busy intervals pass without an action — the
	// §5.4 stability criterion.
	StableIntervals int
	// TraceLimit, when > 0, bounds the retained trace to the most
	// recent intervals. Long-running hosts (the ds2d scaling service)
	// set it so a job with an effectively unbounded horizon does not
	// accrete memory; the Decisions/ConvergedAt bookkeeping and the
	// MaxIntervals stopping rule count all intervals regardless.
	TraceLimit int
	// Done, when non-nil, is consulted after every interval; returning
	// true stops the run (e.g. a Dhalion convergence check).
	Done func() bool
	// OnInterval, when non-nil, observes every recorded interval as it
	// happens — for live CLI/exporter output.
	OnInterval func(Interval)
	// OnDecision, when non-nil, observes every successfully applied
	// action as a structured audit record: the deciding interval's
	// input rates, the computed optimum, and the deployment it
	// replaced. Hosts append it to an AuditRing and/or export decision
	// counters; the service additionally resolves the ack outcome.
	OnDecision func(Decision)
}

// Quantiles carries the latency quantiles of one interval.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Interval is one row of a Trace: the deployment an interval ran
// under, the rates it delivered, its latency quantiles, and the action
// (if any) taken at its end.
type Interval struct {
	// Time is the interval's end in seconds.
	Time float64 `json:"time"`
	// Target and Achieved are the summed source rates.
	Target   float64 `json:"target"`
	Achieved float64 `json:"achieved"`
	// Parallelism and Workers are the deployment during the interval.
	Parallelism dataflow.Parallelism `json:"parallelism"`
	Workers     int                  `json:"workers,omitempty"`
	// Busy marks an interval spent (at least partly) redeploying; no
	// decision was taken.
	Busy bool `json:"busy,omitempty"`
	// Action is the kind of action taken at interval end ("rescale",
	// "rollback", or "" when the deployment held), Reason the
	// autoscaler's explanation, and Applied the configuration deployed
	// (nil when no action fired).
	Action  string               `json:"action,omitempty"`
	Reason  string               `json:"reason,omitempty"`
	Applied dataflow.Parallelism `json:"applied,omitempty"`
	// Latency holds per-record latency quantiles over the interval;
	// EpochLatency per-epoch completion quantiles (Timely mode).
	Latency      Quantiles `json:"latency"`
	EpochLatency Quantiles `json:"epoch_latency"`
}

// Trace is the structured record of one Controller run — the same
// schema for every autoscaler and runtime (and, JSON-encoded, on the
// scaling service's trace endpoint).
type Trace struct {
	Intervals []Interval `json:"intervals"`
	// Decisions counts the actions applied.
	Decisions int `json:"decisions"`
	// ConvergedAt is the virtual time of the last action (0 if none).
	ConvergedAt float64 `json:"converged_at"`
	// Final is the configuration deployed when the run stopped.
	Final dataflow.Parallelism `json:"final"`
}

// Last returns the final recorded interval (zero value when empty).
func (t Trace) Last() Interval {
	if len(t.Intervals) == 0 {
		return Interval{}
	}
	return t.Intervals[len(t.Intervals)-1]
}

func (t Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "time(s)\ttarget(rec/s)\tachieved(rec/s)\tp99(s)\tconfig\taction\n")
	for _, iv := range t.Intervals {
		action := iv.Action
		if iv.Reason != "" {
			action = fmt.Sprintf("%s: %s", iv.Action, iv.Reason)
		}
		fmt.Fprintf(&sb, "%.0f\t%.0f\t%.0f\t%.3f\t%s\t%s\n",
			iv.Time, iv.Target, iv.Achieved, iv.Latency.P99, iv.Parallelism, action)
	}
	fmt.Fprintf(&sb, "decisions=%d converged_at=%.0fs final=%s\n",
		t.Decisions, t.ConvergedAt, t.Final)
	return sb.String()
}

// Controller drives one Autoscaler over one Runtime: the single
// reusable control loop of §4.2.
type Controller struct {
	rt  Runtime
	as  Autoscaler
	cfg Config

	trace  Trace
	steps  int // intervals run, independent of trace trimming
	stable int
}

// New builds a Controller.
func New(rt Runtime, as Autoscaler, cfg Config) (*Controller, error) {
	if rt == nil {
		return nil, errors.New("controlloop: nil runtime")
	}
	if as == nil {
		return nil, errors.New("controlloop: nil autoscaler")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("controlloop: interval %v <= 0", cfg.Interval)
	}
	if cfg.MaxIntervals <= 0 {
		return nil, fmt.Errorf("controlloop: max intervals %d <= 0", cfg.MaxIntervals)
	}
	if cfg.StableIntervals < 0 {
		return nil, fmt.Errorf("controlloop: negative stable intervals")
	}
	if cfg.TraceLimit < 0 {
		return nil, fmt.Errorf("controlloop: negative trace limit")
	}
	return &Controller{rt: rt, as: as, cfg: cfg}, nil
}

// Step runs one policy interval: advance the runtime, consult the
// autoscaler (unless the runtime is mid-redeployment), apply any
// resulting action, and record the interval.
func (c *Controller) Step() (Interval, error) {
	obs, err := c.rt.Advance(c.cfg.Interval)
	if err != nil {
		return Interval{}, err
	}
	iv := Interval{
		Time:         obs.End,
		Target:       obs.TargetRate(),
		Achieved:     obs.AchievedRate(),
		Parallelism:  obs.Parallelism,
		Workers:      obs.Workers,
		Busy:         obs.Busy,
		Latency:      LatencyQuantiles(obs.Latencies),
		EpochLatency: EpochQuantiles(obs.EpochLatencies),
	}
	if !obs.Busy {
		act, err := c.as.Observe(obs)
		if err != nil {
			// Record the interval whose metrics triggered the failure:
			// it is the most relevant row of a post-mortem trace.
			c.record(iv)
			return iv, err
		}
		if act != nil {
			if err := c.rt.Apply(act); err != nil {
				c.record(iv)
				return iv, err
			}
			iv.Action = act.Kind.String()
			iv.Reason = act.Reason
			iv.Applied = act.New.Clone()
			c.trace.Decisions++
			c.trace.ConvergedAt = obs.End
			c.stable = 0
			if c.cfg.OnDecision != nil {
				c.cfg.OnDecision(Decision{
					Seq:            c.trace.Decisions,
					Time:           obs.End,
					Kind:           act.Kind.String(),
					Reason:         act.Reason,
					Target:         obs.TargetRate(),
					Achieved:       obs.AchievedRate(),
					TargetRates:    obs.TargetRates,
					SourceObserved: obs.SourceObserved,
					Old:            obs.Parallelism.Clone(),
					New:            act.New.Clone(),
					Outcome:        OutcomeApplied,
				})
			}
		} else {
			c.stable++
		}
	}
	c.record(iv)
	return iv, nil
}

// record appends the interval to the trace (trimming to TraceLimit)
// and forwards it to the live OnInterval hook, so printed timelines
// and the stored trace never diverge — including on error paths.
func (c *Controller) record(iv Interval) {
	c.steps++
	c.trace.Intervals = append(c.trace.Intervals, iv)
	if c.cfg.TraceLimit > 0 && len(c.trace.Intervals) > c.cfg.TraceLimit {
		c.trace.Intervals = c.trace.Intervals[len(c.trace.Intervals)-c.cfg.TraceLimit:]
	}
	if c.cfg.OnInterval != nil {
		c.cfg.OnInterval(iv)
	}
}

// Run drives the loop until MaxIntervals elapse, the Done predicate
// fires, or StableIntervals consecutive quiet intervals pass. It
// returns the accumulated trace (also on error, for post-mortems).
func (c *Controller) Run() (Trace, error) {
	for c.steps < c.cfg.MaxIntervals {
		if _, err := c.Step(); err != nil {
			return c.Trace(), err
		}
		if c.cfg.Done != nil && c.cfg.Done() {
			break
		}
		if c.cfg.StableIntervals > 0 && c.stable >= c.cfg.StableIntervals {
			break
		}
	}
	return c.Trace(), nil
}

// Trace returns the intervals recorded so far with Final filled from
// the runtime's current deployment.
func (c *Controller) Trace() Trace {
	tr := c.trace
	tr.Final = c.rt.Parallelism()
	return tr
}

// LatencyQuantiles summarizes weighted per-record latency samples with
// a single copy-and-sort (engine.LatencyQuantile would re-sort per
// quantile — too costly on the controller's every-interval path).
func LatencyQuantiles(samples []metrics.LatencySample) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	s := append([]metrics.LatencySample(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i].Latency < s[j].Latency })
	total := 0.0
	for _, x := range s {
		total += x.Weight
	}
	if total <= 0 {
		return Quantiles{}
	}
	var out Quantiles
	dst := []*float64{&out.P50, &out.P95, &out.P99}
	cum := 0.0
	i := 0
	for _, q := range []float64{0.50, 0.95, 0.99} {
		target := q * total
		for cum < target && i < len(s) {
			cum += s[i].Weight
			i++
		}
		idx := i - 1
		if idx < 0 {
			idx = 0
		}
		*dst[0] = s[idx].Latency
		dst = dst[1:]
	}
	return out
}

// EpochQuantiles summarizes completed-epoch latencies (Timely mode)
// with a single copy-and-sort.
func EpochQuantiles(eps []engine.EpochLatency) Quantiles {
	if len(eps) == 0 {
		return Quantiles{}
	}
	ls := make([]float64, len(eps))
	for i, e := range eps {
		ls[i] = e.Latency
	}
	sort.Float64s(ls)
	at := func(q float64) float64 { return ls[int(q*float64(len(ls)-1))] }
	return Quantiles{P50: at(0.50), P95: at(0.95), P99: at(0.99)}
}
