package controlloop

import "ds2/internal/core"

// ds2Autoscaler adapts the DS2 scaling manager (core.Manager) to the
// Autoscaler interface: the manager already speaks snapshots and
// actions, so the adapter only selects the snapshot out of the
// observation.
type ds2Autoscaler struct {
	m *core.Manager
}

// DS2Autoscaler wraps a scaling manager for use with a Controller.
func DS2Autoscaler(m *core.Manager) Autoscaler {
	return ds2Autoscaler{m: m}
}

func (a ds2Autoscaler) Observe(o Observation) (*core.Action, error) {
	snap, err := o.Snapshot()
	if err != nil {
		return nil, err
	}
	return a.m.OnInterval(snap)
}

// holdAutoscaler never proposes an action — the "no controller"
// baseline for workbench runs.
type holdAutoscaler struct{}

// Hold returns an Autoscaler that always holds the deployment.
func Hold() Autoscaler { return holdAutoscaler{} }

func (holdAutoscaler) Observe(Observation) (*core.Action, error) { return nil, nil }
