package controlloop

import (
	"sync"

	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
	"ds2/internal/metrics"
)

// EngineRuntime adapts the streaming-engine simulator to the Runtime
// interface. It is the reference implementation a real-engine backend
// would mirror: Advance maps to "wait one policy interval and collect
// the metric window", Apply to "trigger a savepoint-and-restore
// rescale".
type EngineRuntime struct {
	eng *engine.Engine
	// settle controls how Apply interacts with the metric stream. When
	// true, Apply runs the savepoint/restore pause out synchronously
	// and discards the partial metric window, exactly as the paper's
	// Flink integration resets its MetricsManager on restart (§4.1) —
	// the next interval starts clean. When false the pause rides
	// through subsequent Advance calls, which report Busy observations
	// until the job resumes (Heron's slow redeployments in §5.2 span
	// several metric intervals).
	settle bool
}

// NewEngineRuntime wraps a simulator. settle selects whether Apply
// absorbs the redeployment pause synchronously (see EngineRuntime).
func NewEngineRuntime(e *engine.Engine, settle bool) *EngineRuntime {
	return &EngineRuntime{eng: e, settle: settle}
}

// Engine exposes the wrapped simulator.
func (r *EngineRuntime) Engine() *engine.Engine { return r.eng }

// Advance runs the simulator for d virtual seconds and collects the
// interval's observation. The instrumentation snapshot is supplied as
// a memoized lazy builder: snapshot-blind autoscalers (Dhalion, Hold)
// never pay the per-instance window aggregation, and a paused job —
// whose windows are meaningless and which no autoscaler will be
// consulted about — supplies none at all.
func (r *EngineRuntime) Advance(d float64) (Observation, error) {
	st := r.eng.RunInterval(d)
	obs := Observation{
		Start:                st.Start,
		End:                  st.End,
		Busy:                 r.eng.Paused(),
		TargetRates:          st.TargetRates,
		SourceObserved:       st.SourceObserved,
		Backpressured:        st.Backpressured,
		BackpressureFraction: st.BackpressureFraction,
		Parallelism:          st.Parallelism,
		Workers:              st.Workers,
		Latencies:            st.Latencies,
		EpochLatencies:       st.EpochLatencies,
	}
	if !obs.Busy {
		obs.SnapshotFn = sync.OnceValues(func() (metrics.Snapshot, error) {
			return engine.Snapshot(st)
		})
	}
	return obs, nil
}

// Apply schedules the action's configuration on the simulator and,
// when settling, runs the redeployment pause out and discards the
// polluted partial metric window.
func (r *EngineRuntime) Apply(act *core.Action) error {
	if err := r.eng.Rescale(act.New); err != nil {
		return err
	}
	if r.settle {
		for r.eng.Paused() {
			r.eng.Run(1)
		}
		r.eng.Collect()
	}
	return nil
}

// Parallelism returns the simulator's deployed configuration.
func (r *EngineRuntime) Parallelism() dataflow.Parallelism {
	return r.eng.Parallelism()
}
