package controlloop

import (
	"sync"

	"ds2/internal/dataflow"
)

// Decision is one scaling-decision audit record: everything the
// policy saw and concluded for one applied action, plus what became of
// it. It is the per-decision analogue of the per-interval Trace row —
// a Trace answers "what happened", a Decision answers "why did the
// controller believe this was the optimum, and did the engine actually
// deploy it".
type Decision struct {
	// Seq numbers applied decisions within one run, 1-based. For a job
	// driven through the scaling service it equals the ActionEnvelope
	// sequence the engine acks.
	Seq int `json:"seq"`
	// Time is the job time the deciding interval ended at.
	Time float64 `json:"time"`
	// Kind and Reason echo the action ("rescale", "rollback").
	Kind   string `json:"kind"`
	Reason string `json:"reason,omitempty"`
	// Target and Achieved are the summed source rates of the deciding
	// interval; TargetRates and SourceObserved the per-source split —
	// the policy's input rates.
	Target         float64            `json:"target"`
	Achieved       float64            `json:"achieved"`
	TargetRates    map[string]float64 `json:"target_rates,omitempty"`
	SourceObserved map[string]float64 `json:"source_observed,omitempty"`
	// Old is the deployment the interval ran under; New the computed
	// optimum the action requested.
	Old dataflow.Parallelism `json:"old,omitempty"`
	New dataflow.Parallelism `json:"new"`
	// Outcome tracks the action's lifecycle: "applied" for runtimes
	// that settle the redeployment synchronously, "pending_ack" while
	// an engine driven through the service still owes an ack, then
	// "acked". Applied records the configuration the engine reported
	// actually deploying when that differs from New.
	Outcome string               `json:"outcome"`
	Applied dataflow.Parallelism `json:"applied,omitempty"`
}

// Decision outcomes.
const (
	OutcomeApplied    = "applied"
	OutcomePendingAck = "pending_ack"
	OutcomeAcked      = "acked"
)

// AuditRing retains the most recent decisions of one job in a bounded
// ring — the scaling-decision audit trace. It is safe for concurrent
// use: the decision loop appends while HTTP handlers read and the ack
// path resolves. ResolveAck tolerates arriving before its Append (the
// engine can poll, deploy, and ack an action in the gap between the
// runtime parking it and the controller's OnDecision hook running);
// the resolution is parked and folded in when the entry lands.
type AuditRing struct {
	mu    sync.Mutex
	buf   []Decision
	limit int
	total int
	// early holds ack resolutions whose entries have not landed yet,
	// keyed by decision seq.
	early map[int]dataflow.Parallelism
}

// NewAuditRing creates a ring retaining up to limit decisions.
// Values < 1 default to 256.
func NewAuditRing(limit int) *AuditRing {
	if limit < 1 {
		limit = 256
	}
	return &AuditRing{limit: limit, early: make(map[int]dataflow.Parallelism)}
}

// Append records one decision, evicting the oldest past the limit.
func (a *AuditRing) Append(d Decision) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if applied, ok := a.early[d.Seq]; ok {
		delete(a.early, d.Seq)
		d.Outcome = OutcomeAcked
		d.Applied = applied
	}
	a.buf = append(a.buf, d)
	if len(a.buf) > a.limit {
		a.buf = a.buf[len(a.buf)-a.limit:]
	}
	a.total++
}

// ResolveAck marks the decision with the given seq acked, recording
// the configuration the engine reported deploying (nil = the action's
// target). An ack for a decision not yet appended is parked; an ack
// for an evicted decision is dropped (the ring forgot it by design).
func (a *AuditRing) ResolveAck(seq int, applied dataflow.Parallelism) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.buf) - 1; i >= 0; i-- {
		if a.buf[i].Seq == seq {
			a.buf[i].Outcome = OutcomeAcked
			if applied != nil {
				a.buf[i].Applied = applied.Clone()
			}
			return
		}
	}
	if seq > a.total {
		// Beyond every appended entry — the ack won the race with
		// Append; park it.
		if applied != nil {
			applied = applied.Clone()
		}
		a.early[seq] = applied
	}
}

// Decisions returns the retained decisions, oldest first.
func (a *AuditRing) Decisions() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Decision(nil), a.buf...)
}

// Total returns how many decisions were ever appended (monotonic,
// unaffected by eviction).
func (a *AuditRing) Total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Last returns the most recent decision (zero value when empty).
func (a *AuditRing) Last() (Decision, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.buf) == 0 {
		return Decision{}, false
	}
	return a.buf[len(a.buf)-1], true
}
