package controlloop

import (
	"fmt"
	"sync"
	"testing"

	"ds2/internal/core"
	"ds2/internal/dataflow"
)

func TestAuditRingEvictionAndTotal(t *testing.T) {
	a := NewAuditRing(3)
	for i := 1; i <= 5; i++ {
		a.Append(Decision{Seq: i, Kind: "rescale"})
	}
	if a.Total() != 5 {
		t.Fatalf("total = %d, want 5", a.Total())
	}
	ds := a.Decisions()
	if len(ds) != 3 || ds[0].Seq != 3 || ds[2].Seq != 5 {
		t.Fatalf("retained %+v, want seqs 3..5", ds)
	}
	last, ok := a.Last()
	if !ok || last.Seq != 5 {
		t.Fatalf("last = %+v", last)
	}
}

func TestAuditRingAckResolution(t *testing.T) {
	a := NewAuditRing(8)
	a.Append(Decision{Seq: 1, Kind: "rescale", Outcome: OutcomePendingAck})
	applied := dataflow.Parallelism{"op": 3}
	a.ResolveAck(1, applied)
	ds := a.Decisions()
	if ds[0].Outcome != OutcomeAcked || ds[0].Applied["op"] != 3 {
		t.Fatalf("ack not resolved: %+v", ds[0])
	}
}

// TestAuditRingAckBeforeAppend pins the race tolerance: the engine can
// fetch, deploy, and ack an action in the gap between the runtime
// parking it and OnDecision appending the audit entry. The parked ack
// must fold in when the entry lands.
func TestAuditRingAckBeforeAppend(t *testing.T) {
	a := NewAuditRing(8)
	a.ResolveAck(1, dataflow.Parallelism{"op": 2})
	a.Append(Decision{Seq: 1, Kind: "rescale", Outcome: OutcomePendingAck})
	ds := a.Decisions()
	if ds[0].Outcome != OutcomeAcked || ds[0].Applied["op"] != 2 {
		t.Fatalf("early ack lost: %+v", ds[0])
	}
	// An ack for an evicted decision is dropped, not parked forever.
	small := NewAuditRing(1)
	small.Append(Decision{Seq: 1})
	small.Append(Decision{Seq: 2})
	small.ResolveAck(1, nil)
	if ds := small.Decisions(); len(ds) != 1 || ds[0].Seq != 2 || ds[0].Outcome == OutcomeAcked {
		t.Fatalf("evicted-ack handling wrong: %+v", ds)
	}
}

func TestAuditRingConcurrent(t *testing.T) {
	a := NewAuditRing(64)
	var wg sync.WaitGroup
	const n = 200
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			a.Append(Decision{Seq: i, Outcome: OutcomePendingAck})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			a.ResolveAck(i, nil)
		}
	}()
	wg.Wait()
	if a.Total() != n {
		t.Fatalf("total = %d, want %d", a.Total(), n)
	}
}

// TestControllerOnDecision drives the real Controller over a stub
// runtime and autoscaler: every applied action must surface as exactly
// one Decision with consecutive seqs and the deciding interval's rates.
func TestControllerOnDecision(t *testing.T) {
	rt := &stubRuntime{par: dataflow.Parallelism{"op": 1}}
	as := &stubScaler{every: 2} // acts on every 2nd interval
	var got []Decision
	ctrl, err := New(rt, as, Config{
		Interval:     1,
		MaxIntervals: 6,
		OnDecision:   func(d Decision) { got = append(got, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != tr.Decisions {
		t.Fatalf("OnDecision fired %d times, trace has %d decisions", len(got), tr.Decisions)
	}
	for i, d := range got {
		if d.Seq != i+1 {
			t.Errorf("decision %d has seq %d", i, d.Seq)
		}
		if d.Kind != "rescale" || d.Outcome != OutcomeApplied {
			t.Errorf("decision %+v", d)
		}
		if d.Target != 100 {
			t.Errorf("decision target %v, want 100 (the deciding interval's rate)", d.Target)
		}
		if d.New["op"] != d.Old["op"]+1 {
			t.Errorf("decision old=%v new=%v, want +1 step", d.Old, d.New)
		}
	}
}

type stubRuntime struct {
	par dataflow.Parallelism
	t   float64
}

func (r *stubRuntime) Advance(d float64) (Observation, error) {
	r.t += d
	return Observation{
		Start:       r.t - d,
		End:         r.t,
		TargetRates: map[string]float64{"src": 100},
		Parallelism: r.par.Clone(),
	}, nil
}

func (r *stubRuntime) Apply(act *core.Action) error {
	r.par = act.New.Clone()
	return nil
}

func (r *stubRuntime) Parallelism() dataflow.Parallelism { return r.par.Clone() }

type stubScaler struct {
	every, n int
}

func (s *stubScaler) Observe(obs Observation) (*core.Action, error) {
	s.n++
	if s.n%s.every != 0 {
		return nil, nil
	}
	cur := obs.Parallelism["op"]
	return &core.Action{
		Kind:   core.ActionRescale,
		Old:    obs.Parallelism.Clone(),
		New:    dataflow.Parallelism{"op": cur + 1},
		Reason: fmt.Sprintf("step to %d", cur+1),
	}, nil
}
