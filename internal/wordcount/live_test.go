package wordcount

import (
	"strings"
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/streamrt"
)

func TestLiveSentenceDeterministicAndSkewed(t *testing.T) {
	if LiveSentence(7, 42, 5, 1.2) != LiveSentence(7, 42, 5, 1.2) {
		t.Fatal("LiveSentence is not deterministic")
	}
	if LiveSentence(7, 42, 5, 1.2) == LiveSentence(8, 42, 5, 1.2) {
		t.Fatal("seed does not vary the stream")
	}
	if got := len(strings.Fields(LiveSentence(1, 0, 9, 0))); got != 9 {
		t.Fatalf("sentence has %d words, want 9", got)
	}
	// Zipf skew concentrates mass on the hot word far beyond uniform.
	hot := liveWord(0)
	count := func(zipfS float64) int {
		n := 0
		for seq := int64(0); seq < 400; seq++ {
			for _, w := range strings.Fields(LiveSentence(3, seq, 5, zipfS)) {
				if w == hot {
					n++
				}
			}
		}
		return n
	}
	skewed, uniform := count(1.4), count(0)
	if skewed < uniform*4 {
		t.Fatalf("zipf hot-word count %d not clearly above uniform %d", skewed, uniform)
	}
}

func TestLiveOptimal(t *testing.T) {
	cfg := LiveConfig{SplitCost: 4 * time.Millisecond, CountCost: time.Millisecond, WordsPerSentence: 5}
	got := LiveOptimal(cfg, 400)
	want := dataflow.Parallelism{LiveSource: 1, LiveSplit: 2, LiveCount: 2}
	if !got.Equal(want) {
		t.Fatalf("optimal at 400/s = %s, want %s", got, want)
	}
	if got := LiveOptimal(cfg, 1); !got.Equal(dataflow.Parallelism{LiveSource: 1, LiveSplit: 1, LiveCount: 1}) {
		t.Fatalf("optimal at 1/s = %s, want all ones", got)
	}
}

// TestLiveCountsExactAcrossRescales is the wordcount-shaped
// snapshot/repartition pin: a bounded zipf-skewed stream rescaled
// mid-flight (up, then down) must produce byte-identical word counts
// to an offline replay of the same deterministic stream.
func TestLiveCountsExactAcrossRescales(t *testing.T) {
	cfg := LiveConfig{
		Rate1:     3000,
		ZipfS:     1.2,
		Seed:      7,
		Limit:     700,
		SplitCost: 100 * time.Microsecond,
		CountCost: 40 * time.Microsecond,
	}
	p, err := Live(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := streamrt.NewJob(p, dataflow.Parallelism{LiveSource: 1, LiveSplit: 1, LiveCount: 1}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := j.Rescale(dataflow.Parallelism{LiveSource: 1, LiveSplit: 2, LiveCount: 4}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := j.Rescale(dataflow.Parallelism{LiveSource: 1, LiveSplit: 1, LiveCount: 2}); err != nil {
		t.Fatal(err)
	}
	j.Wait()
	states := j.Stop()

	want := LiveExpectedCounts(cfg, cfg.Limit)
	got := states[LiveCount]
	if len(got) != len(want) {
		t.Fatalf("%d distinct words, want %d", len(got), len(want))
	}
	for w, c := range want {
		if gc, _ := got[w].(int); gc != c {
			t.Errorf("count[%s] = %v, want %d", w, got[w], c)
		}
	}
}
