package wordcount

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/streamrt"
)

// Operator names of the live topology (distinct from the simulator
// constants so traces are unambiguous about which runtime produced
// them).
const (
	LiveSource = "source"
	LiveSplit  = "splitter"
	LiveCount  = "counter"
)

// LiveConfig parameterizes the word-count pipeline running on the
// streamrt dataflow runtime: a (optionally zipf-skewed) sentence
// source, a stateless splitter, and a keyed counter. Costs are
// per-record blocking work, so instance capacity is 1/cost records per
// second of useful time — controllable and CPU-cheap.
type LiveConfig struct {
	// Rate1 is the source rate in sentences/s until StepAt seconds of
	// job time, Rate2 after (StepAt <= 0 keeps Rate1 forever).
	Rate1, Rate2 float64
	StepAt       float64
	// WordsPerSentence is the splitter selectivity (default 5).
	WordsPerSentence int
	// ZipfS skews word choice with a zipf(s) distribution over the
	// vocabulary when > 1; otherwise words are uniform. The hot key
	// concentrates keyed-exchange load on one counter instance —
	// the skew scenario of §4.2.3.
	ZipfS float64
	// Seed makes the sentence stream deterministic.
	Seed int64
	// SplitCost and CountCost are the per-record costs (defaults 4ms
	// and 1.2ms: splitter capacity 250 sentences/s, counter capacity
	// ~833 words/s per instance).
	SplitCost, CountCost time.Duration
	// Limit bounds the source (0 = unbounded); a bounded live job
	// drains and every instance exits, so final counts are exact.
	Limit int64
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.WordsPerSentence <= 0 {
		c.WordsPerSentence = 5
	}
	if c.SplitCost <= 0 {
		c.SplitCost = 4 * time.Millisecond
	}
	if c.CountCost <= 0 {
		c.CountCost = 1200 * time.Microsecond
	}
	return c
}

// liveVocabularySize is the live key space: large enough that zipf
// skew concentrates load on a single hot key rather than on the whole
// (tiny) vocabulary, and that hash partitioning of the uniform
// residual balances.
const liveVocabularySize = 512

// liveWord returns the i-th word of the live vocabulary.
func liveWord(i uint64) string {
	return vocabulary[i%uint64(len(vocabulary))] + "-" + strconv.FormatUint(i/uint64(len(vocabulary)), 10)
}

// LiveSentence returns the seq-th sentence of the deterministic live
// stream — the oracle tests replay to recompute expected counts.
func LiveSentence(seed, seq int64, words int, zipfS float64) string {
	rng := rand.New(rand.NewSource(seed ^ (seq+1)*0x5E3779B97F4A7C15))
	var z *rand.Zipf
	if zipfS > 1 {
		z = rand.NewZipf(rng, zipfS, 1, liveVocabularySize-1)
	}
	out := make([]string, words)
	for i := range out {
		if z != nil {
			out[i] = liveWord(z.Uint64())
		} else {
			out[i] = liveWord(uint64(rng.Intn(liveVocabularySize)))
		}
	}
	return strings.Join(out, " ")
}

// Live builds the three-stage word-count pipeline on the live runtime:
// source → splitter (stateless, StringCodec exchange) → counter (keyed
// by word, per-key int state). The counter is the sink; its keyed
// state after Stop is the exact word histogram.
func Live(cfg LiveConfig) (*streamrt.Pipeline, error) {
	cfg = cfg.withDefaults()
	src := streamrt.TypedSource[string]{
		Rate: func(t float64) float64 {
			if cfg.StepAt > 0 && t >= cfg.StepAt {
				return cfg.Rate2
			}
			return cfg.Rate1
		},
		Next: func(seq int64) (string, string) {
			return "", LiveSentence(cfg.Seed, seq, cfg.WordsPerSentence, cfg.ZipfS)
		},
		Limit: cfg.Limit,
	}
	split := streamrt.TypedOperator[string, string, any]{
		Process: func(_ any, _ string, v string, emit streamrt.TypedEmit[string]) any {
			for _, w := range Split(v) {
				emit.Emit(w, w)
			}
			return nil
		},
		Cost:  cfg.SplitCost,
		Codec: streamrt.StringCodec{},
	}
	count := streamrt.TypedOperator[string, any, int]{
		Keyed: true,
		Process: func(c int, _ string, _ string, _ streamrt.TypedEmit[any]) int {
			return c + 1
		},
		Cost:  cfg.CountCost,
		Codec: streamrt.StringCodec{},
		State: streamrt.IntStateCodec{},
	}
	tb := streamrt.NewTypedPipeline()
	streamrt.AddTypedSource(tb, LiveSource, src)
	streamrt.AddTypedOperator(tb, LiveSplit, split)
	streamrt.AddTypedOperator(tb, LiveCount, count)
	return tb.
		AddEdge(LiveSource, LiveSplit).
		AddEdge(LiveSplit, LiveCount).
		Compile()
}

// LiveExpectedCounts replays sentences 0..n-1 through the live user
// functions — the oracle for snapshot/repartition correctness tests.
func LiveExpectedCounts(cfg LiveConfig, n int64) map[string]int {
	cfg = cfg.withDefaults()
	counts := make(map[string]int)
	for seq := int64(0); seq < n; seq++ {
		CountWords(counts, Split(LiveSentence(cfg.Seed, seq, cfg.WordsPerSentence, cfg.ZipfS)))
	}
	return counts
}

// LiveOptimal returns the analytically optimal configuration at a
// given source rate: ceil(rate · cost) instances per operator, the
// provisioning DS2 should converge to.
func LiveOptimal(cfg LiveConfig, rate float64) dataflow.Parallelism {
	cfg = cfg.withDefaults()
	need := func(r float64, cost time.Duration) int {
		n := int(math.Ceil(r * cost.Seconds()))
		if n < 1 {
			n = 1
		}
		return n
	}
	return dataflow.Parallelism{
		LiveSource: 1,
		LiveSplit:  need(rate, cfg.SplitCost),
		LiveCount:  need(rate*float64(cfg.WordsPerSentence), cfg.CountCost),
	}
}
