// Package wordcount builds the three-stage word-count topology
// (Source → FlatMap → Count) used throughout the paper's evaluation:
// the Dhalion benchmark of §5.2 (Heron) and the end-to-end dynamic
// scaling experiment of §5.3 (Flink). It also provides a sentence
// generator so examples and calibration code can run real data through
// encoders, and the skew variants of §4.2.3.
package wordcount

import (
	"fmt"
	"math/rand"
	"strings"

	"ds2/internal/dataflow"
	"ds2/internal/engine"
)

// Operator names of the topology.
const (
	Source  = "source"
	FlatMap = "flatmap"
	Count   = "count"
)

// WordsPerSentence is the FlatMap selectivity: with the paper's Heron
// ratios (1M sentences/min input, FlatMap splits 100K sentences/min
// per instance, Count handles 1M words/min per instance, optimum 10
// FlatMap / 20 Count) each sentence carries 20 words.
const WordsPerSentence = 20

// Graph returns the logical three-stage topology.
func Graph() (*dataflow.Graph, error) {
	return dataflow.Linear(Source, FlatMap, Count)
}

// Workload bundles everything needed to run the topology on the
// simulator.
type Workload struct {
	Graph   *dataflow.Graph
	Specs   map[string]engine.OperatorSpec
	Sources map[string]engine.SourceSpec
	// Optimal is the analytically known minimum configuration that
	// sustains the target rate (for assertions and reporting).
	Optimal dataflow.Parallelism
}

// Heron reproduces the §5.2 benchmark: the source emits 1M sentences
// per minute; each FlatMap instance splits at most 100K sentences per
// minute; each Count instance counts up to 1M words per minute. The
// rate limits are expressed as saturated per-record costs, exactly how
// a rate-limited Heron bolt appears to instrumentation (fully busy at
// its limit). skewHot > 0 routes that extra fraction of Count's input
// to its first instance (§4.2.3, 0.2/0.5/0.7 in the paper).
func Heron(skewHot float64) (*Workload, error) {
	g, err := Graph()
	if err != nil {
		return nil, err
	}
	const (
		perMin     = 1.0 / 60.0
		sourceRate = 1_000_000 * perMin // sentences/s
		flatMapCap = 100_000 * perMin   // sentences/s per instance
		countCap   = 1_000_000 * perMin // words/s per instance
	)
	w := &Workload{
		Graph: g,
		Specs: map[string]engine.OperatorSpec{
			FlatMap: {
				CostPerRecord: 1 / flatMapCap,
				DeserFrac:     0.1, SerFrac: 0.2,
				Selectivity: WordsPerSentence,
			},
			Count: {
				CostPerRecord: 1 / countCap,
				DeserFrac:     0.1,
				Selectivity:   0,
				SkewHot:       skewHot,
			},
		},
		Sources: map[string]engine.SourceSpec{
			// The benchmark spout generates at a fixed rate; records
			// suppressed by backpressure are never produced, so there
			// is no replay backlog (unlike a Kafka-fed Flink source).
			Source: {Rate: engine.ConstantRate(sourceRate), CostPerRecord: 1e-6, NoBacklog: true},
		},
		Optimal: dataflow.Parallelism{Source: 1, FlatMap: 10, Count: 20},
	}
	return w, nil
}

// FlinkPhases are the two source rates of the §5.3 experiment.
const (
	FlinkPhase1Rate = 2_000_000 // sentences/s
	FlinkPhase2Rate = 1_000_000
)

// Flink reproduces the §5.3 end-to-end experiment: sentences arrive at
// 2M/s for phaseLen seconds, then 1M/s. Costs are calibrated so the
// backpressure-free optima resemble the paper's (≈19 FlatMap / 11
// Count in phase 1; ≈7–8 FlatMap / 5 Count in phase 2), including the
// sub-linear scaling that makes configurations at high parallelism
// relatively more expensive.
func Flink(phaseLen float64) (*Workload, error) {
	g, err := Graph()
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Graph: g,
		Specs: map[string]engine.OperatorSpec{
			FlatMap: {
				// Base capacity 174K sentences/s/instance with 3.6%
				// visible coordination overhead: 7 instances sustain
				// 1M/s, 19 sustain 2M/s (see DESIGN.md calibration).
				CostPerRecord: 1.0 / 174_000,
				DeserFrac:     0.1, SerFrac: 0.2,
				Selectivity: 5, // words per sentence in this variant
				Alpha:       0.036,
			},
			Count: {
				// 1.071M words/s/instance, 1.8% overhead: 5 instances
				// for phase 2, 11 for phase 1.
				CostPerRecord: 1.0 / 1_071_000,
				DeserFrac:     0.1,
				Selectivity:   0,
				Alpha:         0.018,
			},
		},
		Sources: map[string]engine.SourceSpec{
			Source: {
				Rate:          engine.StepRate(phaseLen, FlinkPhase1Rate, FlinkPhase2Rate),
				CostPerRecord: 1e-8,
			},
		},
		Optimal: dataflow.Parallelism{Source: 1, FlatMap: 19, Count: 11}, // phase 1
	}
	return w, nil
}

// SentenceGenerator produces deterministic pseudo-natural sentences of
// WordsPerSentence words, optionally skewed toward a hot key. It backs
// the runnable examples and lets calibration code measure real
// serialization costs.
type SentenceGenerator struct {
	rng     *rand.Rand
	skewHot float64
	seq     int
}

// NewSentenceGenerator creates a generator. skewHot is the fraction of
// words drawn from a single hot key.
func NewSentenceGenerator(seed int64, skewHot float64) (*SentenceGenerator, error) {
	if skewHot < 0 || skewHot >= 1 {
		return nil, fmt.Errorf("wordcount: skew %v outside [0,1)", skewHot)
	}
	return &SentenceGenerator{rng: rand.New(rand.NewSource(seed)), skewHot: skewHot}, nil
}

var vocabulary = []string{
	"stream", "dataflow", "operator", "scaling", "window", "record",
	"throughput", "latency", "backpressure", "parallelism", "source",
	"sink", "savepoint", "snapshot", "controller", "policy", "metric",
	"rate", "useful", "observed", "epoch", "worker", "instance",
	"channel", "buffer", "queue", "topology", "graph", "decision",
	"convergence", "provisioning",
}

// Next returns the next sentence.
func (sg *SentenceGenerator) Next() string {
	sg.seq++
	words := make([]string, WordsPerSentence)
	for i := range words {
		if sg.skewHot > 0 && sg.rng.Float64() < sg.skewHot {
			words[i] = vocabulary[0]
			continue
		}
		words[i] = vocabulary[sg.rng.Intn(len(vocabulary))]
	}
	return strings.Join(words, " ")
}

// Split is the FlatMap user function: sentence → words.
func Split(sentence string) []string {
	return strings.Fields(sentence)
}

// CountWords is the Count user function fold step.
func CountWords(counts map[string]int, words []string) {
	for _, w := range words {
		counts[w]++
	}
}
