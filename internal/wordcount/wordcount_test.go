package wordcount

import (
	"math"
	"strings"
	"testing"

	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
)

func TestGraphShape(t *testing.T) {
	g, err := Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOperators() != 3 || g.NumSources() != 1 {
		t.Fatalf("graph = %v", g.Names())
	}
}

// TestHeronOptimumOneStep is the §5.2 headline on our substrate: from
// (1,1,1), one minute of default metrics is enough for DS2 to indicate
// exactly 10 FlatMap and 20 Count.
func TestHeronOptimumOneStep(t *testing.T) {
	w, err := Heron(0)
	if err != nil {
		t.Fatal(err)
	}
	initial := dataflow.Parallelism{Source: 1, FlatMap: 1, Count: 1}
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initial, engine.Config{Mode: engine.ModeHeron})
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunInterval(60)
	snap, err := engine.Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := pol.Decide(snap, initial, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism[FlatMap] != 10 || dec.Parallelism[Count] != 20 {
		t.Fatalf("decision = %v, want flatmap:10 count:20", dec.Parallelism)
	}
	if !dec.Parallelism.Equal(w.Optimal) {
		t.Errorf("decision %v != declared optimal %v", dec.Parallelism, w.Optimal)
	}
}

// TestHeronOptimalIsMinimal verifies the accuracy claim: the optimum
// sustains the source rate, and one fewer instance of either operator
// does not.
func TestHeronOptimalIsMinimal(t *testing.T) {
	w, err := Heron(0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p dataflow.Parallelism) float64 {
		e, err := engine.New(w.Graph, w.Specs, w.Sources, p, engine.Config{Mode: engine.ModeHeron, QueueCapacity: 2000})
		if err != nil {
			t.Fatal(err)
		}
		e.RunInterval(30)
		st := e.RunInterval(60)
		return st.SourceObserved[Source]
	}
	target := 1_000_000.0 / 60
	if got := run(w.Optimal); math.Abs(got-target) > target*0.02 {
		t.Errorf("optimal config achieves %v, want ~%v", got, target)
	}
	under := w.Optimal.Clone()
	under[FlatMap] = 9
	if got := run(under); got > target*0.95 {
		t.Errorf("9 flatmaps achieve %v, want clearly under target", got)
	}
	under = w.Optimal.Clone()
	under[Count] = 19
	if got := run(under); got > target*0.98 {
		t.Errorf("19 counts achieve %v, want under target", got)
	}
}

func TestFlinkWorkloadPhases(t *testing.T) {
	w, err := Flink(600)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Sources[Source].Rate
	if r(0) != FlinkPhase1Rate || r(599) != FlinkPhase1Rate || r(600) != FlinkPhase2Rate {
		t.Error("phase boundaries wrong")
	}
	// Calibration: 19 FlatMap sustain 2M/s, 18 do not; 7 sustain 1M/s.
	fm := w.Specs[FlatMap]
	cap := func(p int) float64 {
		return float64(p) / (fm.CostPerRecord * (1 + fm.Alpha*float64(p-1)))
	}
	if cap(19) < 2_000_000 {
		t.Errorf("cap(19) = %v < 2M", cap(19))
	}
	if cap(18) >= 2_000_000 {
		t.Errorf("cap(18) = %v >= 2M", cap(18))
	}
	if cap(7) < 1_000_000 {
		t.Errorf("cap(7) = %v < 1M", cap(7))
	}
}

func TestSentenceGenerator(t *testing.T) {
	sg, err := NewSentenceGenerator(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := sg.Next()
	words := Split(s)
	if len(words) != WordsPerSentence {
		t.Fatalf("words = %d, want %d", len(words), WordsPerSentence)
	}
	// Determinism.
	sg2, _ := NewSentenceGenerator(7, 0)
	if sg2.Next() != s {
		t.Error("generator not deterministic")
	}
	if _, err := NewSentenceGenerator(1, 1.5); err == nil {
		t.Error("bad skew accepted")
	}
}

func TestSentenceGeneratorSkew(t *testing.T) {
	sg, _ := NewSentenceGenerator(3, 0.7)
	counts := map[string]int{}
	total := 0
	for i := 0; i < 200; i++ {
		CountWords(counts, Split(sg.Next()))
		total += WordsPerSentence
	}
	hot := counts[vocabulary[0]]
	frac := float64(hot) / float64(total)
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("hot-word fraction = %v, want ~0.7", frac)
	}
}

func TestCountWords(t *testing.T) {
	counts := map[string]int{}
	CountWords(counts, strings.Fields("a b a"))
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}
