// Package core implements the DS2 scaling policy and scaling manager —
// the paper's primary contribution (§3 and §4.2).
//
// The policy consumes (i) the logical dataflow graph, (ii) the output
// rate of every source, and (iii) the aggregated true processing and
// output rates of every operator (Eq. 5–6), and computes the optimal
// parallelism of every operator in a single traversal of the graph
// (Eq. 7–8). The manager wraps the policy with the operational
// machinery of §4.2.1–4.2.2: policy intervals, warm-up, activation
// time, target-rate ratio correction, minor-change filtering, rollback,
// and decision limiting.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// ErrInsufficientData is returned by Decide when some operator has not
// yet done any useful work, so its true rates — and hence the global
// decision — are undefined. Callers should keep the current
// configuration and retry on the next policy interval.
var ErrInsufficientData = errors.New("core: true rates undefined for at least one operator")

// PolicyConfig tunes the pure decision function.
type PolicyConfig struct {
	// MaxParallelism caps the per-operator decision (the paper's Flink
	// setup caps at 36 slots). 0 means uncapped.
	MaxParallelism int
	// MinParallelism floors the decision; defaults to 1.
	MinParallelism int
}

func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.MinParallelism < 1 {
		c.MinParallelism = 1
	}
	return c
}

// Policy is the DS2 decision function for one logical graph.
type Policy struct {
	graph *dataflow.Graph
	cfg   PolicyConfig
}

// NewPolicy creates a policy for the given frozen graph.
func NewPolicy(g *dataflow.Graph, cfg PolicyConfig) (*Policy, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	cfg = cfg.withDefaults()
	if cfg.MaxParallelism != 0 && cfg.MaxParallelism < cfg.MinParallelism {
		return nil, fmt.Errorf("core: max parallelism %d < min %d", cfg.MaxParallelism, cfg.MinParallelism)
	}
	return &Policy{graph: g, cfg: cfg}, nil
}

// Decision is the output of one policy evaluation.
type Decision struct {
	// Parallelism is the estimated optimal instance count per
	// operator (πi in Eq. 7). Sources keep their current counts: the
	// model treats source rates as externally given.
	Parallelism dataflow.Parallelism
	// TargetRate maps each non-source operator to rt, the aggregated
	// optimal true output rate of its upstream operators — the rate
	// the operator must sustain (the summation in Eq. 7).
	TargetRate map[string]float64
	// OptimalOutput maps each operator to o[λo]* of Eq. 8: its true
	// output rate when the whole upstream dataflow runs at optimal
	// parallelism.
	OptimalOutput map[string]float64
}

// Decide evaluates Eq. 7–8 on a metrics snapshot given the current
// deployment. boost is a multiplicative correction (>= 1) applied to
// the source target rates, used by the manager's target-rate-ratio
// mechanism (§4.2.1) to compensate for overheads the instrumentation
// cannot capture; pass 1 for the pure model.
func (p *Policy) Decide(snap metrics.Snapshot, current dataflow.Parallelism, boost float64) (Decision, error) {
	if err := current.Validate(p.graph); err != nil {
		return Decision{}, err
	}
	if boost < 1 || math.IsNaN(boost) || math.IsInf(boost, 0) {
		return Decision{}, fmt.Errorf("core: boost %v < 1", boost)
	}
	g := p.graph
	m := g.NumOperators()
	n := g.NumSources()

	// Gather inputs, failing fast on gaps.
	optOut := make([]float64, m) // o[λo]* per topological index
	rates := make([]metrics.OperatorRates, m)
	for i := 0; i < m; i++ {
		op := g.Operator(i)
		if i < n {
			target, ok := snap.SourceRates[op.Name]
			if !ok {
				return Decision{}, fmt.Errorf("core: snapshot missing source rate for %q", op.Name)
			}
			if target < 0 || math.IsNaN(target) || math.IsInf(target, 0) {
				return Decision{}, fmt.Errorf("core: invalid source rate %v for %q", target, op.Name)
			}
			optOut[i] = target * boost
			continue
		}
		r, ok := snap.Operators[op.Name]
		if !ok {
			return Decision{}, fmt.Errorf("core: snapshot missing rates for operator %q", op.Name)
		}
		if r.TrueProcessing <= 0 {
			// Zero useful work anywhere makes the global single-pass
			// estimate undefined: selectivity and capacity are both
			// unknown (§3.2: rates undefined when Wu = 0).
			return Decision{}, fmt.Errorf("%w: %q", ErrInsufficientData, op.Name)
		}
		rates[i] = r
	}

	dec := Decision{
		Parallelism:   current.Clone(),
		TargetRate:    make(map[string]float64, m-n),
		OptimalOutput: make(map[string]float64, m),
	}
	for i := 0; i < n; i++ {
		dec.OptimalOutput[g.Operator(i).Name] = optOut[i]
	}

	// Single traversal in topological order (the paper's key
	// efficiency property): each operator's target rate depends only
	// on upstream optimal outputs already computed.
	for i := n; i < m; i++ {
		op := g.Operator(i)
		rt := 0.0
		for _, j := range g.Upstream(i) {
			rt += optOut[j]
		}
		dec.TargetRate[op.Name] = rt

		r := rates[i]
		pi := current[op.Name]
		// Eq. 7: πi = ceil( rt / (oi[λp]/pi) ).
		perInstance := r.TrueProcessing / float64(pi)
		want := int(math.Ceil(rt/perInstance - ceilSlack))
		if want < p.cfg.MinParallelism {
			want = p.cfg.MinParallelism
		}
		if p.cfg.MaxParallelism != 0 && want > p.cfg.MaxParallelism {
			want = p.cfg.MaxParallelism
		}
		if !op.Scalable {
			want = pi
		}
		dec.Parallelism[op.Name] = want

		// Eq. 8: o[λo]* = (oi[λo]/oi[λp]) · rt — the operator's
		// output when it keeps up with its optimal input.
		optOut[i] = r.Selectivity() * rt
		dec.OptimalOutput[op.Name] = optOut[i]
	}
	return dec, nil
}

// ceilSlack absorbs float noise so that a measured requirement of
// exactly k instances does not round up to k+1.
const ceilSlack = 1e-9

// Graph returns the logical graph the policy was built for.
func (p *Policy) Graph() *dataflow.Graph { return p.graph }

// TotalWorkers converts a per-operator decision into the global worker
// count required by execution models like Timely's, where every worker
// runs all operators round-robin (paper §4.3): the sum of per-operator
// optimal parallelism over non-source operators plus the source counts.
func TotalWorkers(d Decision) int {
	return d.Parallelism.Total()
}

// OperatorsByName returns the decision's operators sorted by name;
// convenience for deterministic reporting.
func (d Decision) OperatorsByName() []string {
	names := make([]string, 0, len(d.Parallelism))
	for name := range d.Parallelism {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
