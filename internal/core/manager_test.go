package core

import (
	"testing"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// managerFixture wires a linear src->map graph with linear scaling and
// a convenient snapshot generator that also reports observed source
// output (achieved rate).
type managerFixture struct {
	g       *dataflow.Graph
	pol     *Policy
	perInst float64
	sel     float64
}

func newManagerFixture(t *testing.T) *managerFixture {
	t.Helper()
	g, err := dataflow.Linear("src", "map")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewPolicy(g, PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return &managerFixture{g: g, pol: pol, perInst: 100, sel: 1}
}

// snap produces a snapshot at the given deployment where the map's
// aggregated true rate scales by effFactor (1 = linear) and the source
// achieved rate is `achieved` while the target is `target`.
func (f *managerFixture) snap(cur dataflow.Parallelism, target, achieved, effFactor float64) metrics.Snapshot {
	p := float64(cur["map"])
	return metrics.Snapshot{
		Operators: map[string]metrics.OperatorRates{
			"map": {
				Operator:       "map",
				Instances:      cur["map"],
				TrueProcessing: p * f.perInst * effFactor,
				TrueOutput:     p * f.perInst * effFactor * f.sel,
			},
			"src": {Operator: "src", Instances: 1, ObservedOutput: achieved},
		},
		SourceRates: map[string]float64{"src": target},
	}
}

func mustManager(t *testing.T, f *managerFixture, initial dataflow.Parallelism, cfg ManagerConfig) *Manager {
	t.Helper()
	m, err := NewManager(f.pol, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerImmediateRescale(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 1}
	m := mustManager(t, f, initial, ManagerConfig{})
	act, err := m.OnInterval(f.snap(initial, 400, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if act == nil || act.Kind != ActionRescale {
		t.Fatalf("action = %+v, want rescale", act)
	}
	if act.New["map"] != 4 {
		t.Errorf("new map = %d, want 4", act.New["map"])
	}
	if !m.Current().Equal(act.New) {
		t.Error("Current() not updated")
	}
	if m.Decisions() != 1 {
		t.Errorf("Decisions = %d", m.Decisions())
	}
}

func TestManagerWarmupSwallowsIntervals(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 1}
	m := mustManager(t, f, initial, ManagerConfig{WarmupIntervals: 2})
	s := f.snap(initial, 400, 100, 1)
	// NewManager does not start in warmup; warmup applies after
	// actions. First interval decides immediately.
	act, err := m.OnInterval(s)
	if err != nil || act == nil {
		t.Fatalf("first interval: act=%v err=%v", act, err)
	}
	// Next two intervals are warm-up: even wildly wrong metrics are
	// ignored.
	for i := 0; i < 2; i++ {
		act, err = m.OnInterval(f.snap(m.Current(), 400, 1, 1))
		if err != nil || act != nil {
			t.Fatalf("warmup interval %d: act=%v err=%v", i, act, err)
		}
	}
	// Post warm-up, a fixpoint snapshot produces no action.
	act, err = m.OnInterval(f.snap(m.Current(), 400, 400, 1))
	if err != nil || act != nil {
		t.Fatalf("post-warmup: act=%v err=%v", act, err)
	}
}

func TestManagerActivationWindow(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 1}
	m := mustManager(t, f, initial, ManagerConfig{ActivationIntervals: 3})
	s := f.snap(initial, 400, 100, 1)
	for i := 0; i < 2; i++ {
		act, err := m.OnInterval(s)
		if err != nil || act != nil {
			t.Fatalf("interval %d fired early: %v %v", i, act, err)
		}
	}
	act, err := m.OnInterval(s)
	if err != nil || act == nil {
		t.Fatalf("third interval: act=%v err=%v", act, err)
	}
	if act.New["map"] != 4 {
		t.Errorf("map = %d", act.New["map"])
	}
}

func TestManagerActivationAggregationMax(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 1}
	m := mustManager(t, f, initial, ManagerConfig{ActivationIntervals: 2, Aggregation: AggMax})
	// First proposal: 4 instances. Second (bursty window): 6.
	if act, _ := m.OnInterval(f.snap(initial, 400, 100, 1)); act != nil {
		t.Fatal("fired early")
	}
	act, err := m.OnInterval(f.snap(initial, 600, 100, 1))
	if err != nil || act == nil {
		t.Fatalf("act=%v err=%v", act, err)
	}
	if act.New["map"] != 6 {
		t.Errorf("max aggregation -> %d, want 6", act.New["map"])
	}
}

func TestManagerActivationAggregationMedian(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 1}
	m := mustManager(t, f, initial, ManagerConfig{ActivationIntervals: 3, Aggregation: AggMedian})
	for _, target := range []float64{400, 900, 600} {
		if act, err := m.OnInterval(f.snap(initial, target, 100, 1)); err != nil {
			t.Fatal(err)
		} else if act != nil {
			if act.New["map"] != 6 { // median of {4, 9, 6}
				t.Errorf("median aggregation -> %d, want 6", act.New["map"])
			}
			return
		}
	}
	t.Fatal("activation window never fired")
}

func TestManagerInsufficientDataResetsWindow(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 1}
	m := mustManager(t, f, initial, ManagerConfig{ActivationIntervals: 2})
	if act, _ := m.OnInterval(f.snap(initial, 400, 100, 1)); act != nil {
		t.Fatal("fired early")
	}
	// An interval with no useful work: decision window must reset.
	gap := f.snap(initial, 400, 0, 1)
	gap.Operators["map"] = metrics.OperatorRates{Operator: "map", Instances: 1}
	if act, err := m.OnInterval(gap); err != nil || act != nil {
		t.Fatalf("gap interval: act=%v err=%v", act, err)
	}
	// One more good interval is NOT enough (window restarted).
	if act, _ := m.OnInterval(f.snap(initial, 400, 100, 1)); act != nil {
		t.Fatal("window did not reset")
	}
	if act, _ := m.OnInterval(f.snap(initial, 400, 100, 1)); act == nil {
		t.Fatal("second consecutive interval should fire")
	}
}

func TestManagerMinChangeFilter(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 4}
	m := mustManager(t, f, initial, ManagerConfig{MinChange: 2})
	// Proposal differs by exactly 2 -> suppressed.
	act, err := m.OnInterval(f.snap(initial, 600, 400, 1))
	if err != nil || act != nil {
		t.Fatalf("small change fired: %v %v", act, err)
	}
	// Difference of 3 -> fires.
	act, err = m.OnInterval(f.snap(initial, 700, 400, 1))
	if err != nil || act == nil {
		t.Fatalf("large change suppressed: %v %v", act, err)
	}
}

func TestManagerTargetRatioBoost(t *testing.T) {
	f := newManagerFixture(t)
	// Deployed at the model's optimum (4 instances for 400), but the
	// system only achieves 320 due to uncaptured overhead.
	cur := dataflow.Parallelism{"src": 1, "map": 4}
	m := mustManager(t, f, cur, ManagerConfig{})
	// Intervals 1-2: policy says "no change"; the shortfall must
	// persist for two consecutive intervals (transient-pollution
	// guard) before the manager arms boost 400/320 = 1.25.
	for i := 1; i <= 2; i++ {
		act, err := m.OnInterval(f.snap(cur, 400, 320, 1))
		if err != nil || act != nil {
			t.Fatalf("interval %d: act=%v err=%v", i, act, err)
		}
	}
	// Interval 3: boosted target 500 -> 5 instances.
	act, err := m.OnInterval(f.snap(cur, 400, 320, 1))
	if err != nil || act == nil {
		t.Fatalf("interval 3: act=%v err=%v", act, err)
	}
	if act.New["map"] != 5 {
		t.Errorf("boosted decision = %d, want 5", act.New["map"])
	}
}

// TestManagerBoostIgnoresTransientDip: a single polluted interval
// (e.g. a redeployment window that slipped through) must not trigger a
// scale-up once the rate recovers.
func TestManagerBoostIgnoresTransientDip(t *testing.T) {
	f := newManagerFixture(t)
	cur := dataflow.Parallelism{"src": 1, "map": 4}
	m := mustManager(t, f, cur, ManagerConfig{})
	if act, err := m.OnInterval(f.snap(cur, 400, 150, 1)); err != nil || act != nil {
		t.Fatalf("dip interval: act=%v err=%v", act, err)
	}
	// Recovery: no boost was armed, so no action follows.
	for i := 0; i < 3; i++ {
		if act, err := m.OnInterval(f.snap(cur, 400, 400, 1)); err != nil || act != nil {
			t.Fatalf("recovered interval %d: act=%v err=%v", i, act, err)
		}
	}
}

func TestManagerTargetRatioToleratesShortfallWithinRatio(t *testing.T) {
	f := newManagerFixture(t)
	cur := dataflow.Parallelism{"src": 1, "map": 4}
	m := mustManager(t, f, cur, ManagerConfig{TargetRateRatio: 0.8})
	// 90% of the target is within the 0.8 ratio: no boost, no action.
	for i := 0; i < 3; i++ {
		act, err := m.OnInterval(f.snap(cur, 400, 360, 1))
		if err != nil || act != nil {
			t.Fatalf("interval %d: act=%v err=%v", i, act, err)
		}
	}
}

func TestManagerRollback(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 2}
	m := mustManager(t, f, initial, ManagerConfig{RollbackOnDegradation: true})
	// Scale-up action (achieved 200 before the action).
	act, err := m.OnInterval(f.snap(initial, 400, 200, 1))
	if err != nil || act == nil || act.Kind != ActionRescale {
		t.Fatalf("act=%v err=%v", act, err)
	}
	// After the action the rate *degraded* to 120: rollback.
	act, err = m.OnInterval(f.snap(m.Current(), 400, 120, 1))
	if err != nil {
		t.Fatal(err)
	}
	if act == nil || act.Kind != ActionRollback {
		t.Fatalf("act = %+v, want rollback", act)
	}
	if !act.New.Equal(initial) {
		t.Errorf("rollback target = %v, want %v", act.New, initial)
	}
	if !m.Current().Equal(initial) {
		t.Error("Current() not rolled back")
	}
}

func TestManagerNoRollbackWhenImproved(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 2}
	m := mustManager(t, f, initial, ManagerConfig{RollbackOnDegradation: true})
	act, _ := m.OnInterval(f.snap(initial, 400, 200, 1))
	if act == nil {
		t.Fatal("no initial action")
	}
	act, err := m.OnInterval(f.snap(m.Current(), 400, 400, 1))
	if err != nil || act != nil {
		t.Fatalf("improvement triggered action: %v %v", act, err)
	}
}

func TestManagerMaxDecisions(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 1}
	m := mustManager(t, f, initial, ManagerConfig{MaxDecisions: 1})
	act, _ := m.OnInterval(f.snap(initial, 400, 100, 1))
	if act == nil {
		t.Fatal("no first action")
	}
	if !m.Stopped() {
		t.Error("manager not stopped after MaxDecisions")
	}
	// Even with a snapshot demanding change, no further actions.
	act, err := m.OnInterval(f.snap(m.Current(), 4000, 100, 1))
	if err != nil || act != nil {
		t.Fatalf("stopped manager acted: %v %v", act, err)
	}
}

func TestManagerConstructorErrors(t *testing.T) {
	f := newManagerFixture(t)
	if _, err := NewManager(nil, nil, ManagerConfig{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewManager(f.pol, dataflow.Parallelism{"src": 1}, ManagerConfig{}); err == nil {
		t.Error("invalid initial parallelism accepted")
	}
	if _, err := NewManager(f.pol, dataflow.Parallelism{"src": 1, "map": 1}, ManagerConfig{TargetRateRatio: 1.5}); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestManagerConfigValidate(t *testing.T) {
	bad := []ManagerConfig{
		{WarmupIntervals: -1},
		{MinChange: -1},
		{MaxDecisions: -1},
		{TargetRateRatio: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if err := (ManagerConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestConvergenceTrace(t *testing.T) {
	var tr ConvergenceTrace
	a := dataflow.Parallelism{"x": 1}
	b := dataflow.Parallelism{"x": 4}
	tr.Record(a)
	tr.Record(a) // duplicate collapsed
	tr.Record(b)
	tr.Record(b)
	if tr.NumSteps() != 1 {
		t.Errorf("NumSteps = %d, want 1", tr.NumSteps())
	}
	if got := tr.OperatorSeries("x"); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("OperatorSeries = %v", got)
	}
	var empty ConvergenceTrace
	if empty.NumSteps() != 0 {
		t.Error("empty trace steps")
	}
}

func TestAggregationString(t *testing.T) {
	if AggLast.String() != "last" || AggMax.String() != "max" || AggMedian.String() != "median" {
		t.Error("Aggregation names")
	}
	if Aggregation(9).String() == "" {
		t.Error("unknown aggregation renders empty")
	}
	if ActionRescale.String() != "rescale" || ActionRollback.String() != "rollback" {
		t.Error("ActionKind names")
	}
}

// TestManagerSublinearConvergesInThreeSteps reproduces the paper's
// headline: with sub-linear true rates (coordination overhead), DS2
// needs more than one step, but converges within three (§3.4, §5.4).
func TestManagerSublinearConvergesInThreeSteps(t *testing.T) {
	f := newManagerFixture(t)
	initial := dataflow.Parallelism{"src": 1, "map": 1}
	m := mustManager(t, f, initial, ManagerConfig{})
	var tr ConvergenceTrace
	tr.Record(initial)

	// Efficiency drops mildly with parallelism, matching the
	// coordination overheads the paper attributes the extra steps to:
	// eff(p) = 1/(1+0.02(p-1)). Much stronger sub-linearity would be a
	// skew/straggler problem, which scaling cannot fix (§3.3).
	eff := func(p int) float64 { return 1.0 / (1.0 + 0.02*float64(p-1)) }
	cur := initial
	target := 1000.0
	for i := 0; i < 10; i++ {
		p := cur["map"]
		achieved := minF(target, float64(p)*f.perInst*eff(p))
		act, err := m.OnInterval(f.snap(cur, target, achieved, eff(p)))
		if err != nil {
			t.Fatal(err)
		}
		if act != nil {
			cur = act.New
			tr.Record(cur)
		}
	}
	steps := tr.NumSteps()
	if steps == 0 || steps > 3 {
		t.Fatalf("converged in %d steps (trace %v), want 1..3", steps, tr.OperatorSeries("map"))
	}
	// Final configuration must actually sustain the target.
	p := cur["map"]
	if float64(p)*f.perInst*eff(p) < target {
		t.Errorf("final config %d cannot sustain target", p)
	}
	// And must be minimal: one fewer instance cannot.
	if p > 1 && float64(p-1)*f.perInst*eff(p-1) >= target {
		t.Errorf("final config %d over-provisioned", p)
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
