package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// Aggregation selects how the manager combines the decisions of the
// activation window (paper §4.2.1: "DS2 can consider several
// consecutive policy decisions and, for example, compute the maximum or
// median parallelism across intervals").
type Aggregation int

const (
	// AggLast applies the most recent decision.
	AggLast Aggregation = iota
	// AggMax applies, per operator, the maximum across the window;
	// robust for bursty window operators.
	AggMax
	// AggMedian applies, per operator, the median across the window.
	AggMedian
)

func (a Aggregation) String() string {
	switch a {
	case AggLast:
		return "last"
	case AggMax:
		return "max"
	case AggMedian:
		return "median"
	default:
		return fmt.Sprintf("aggregation(%d)", int(a))
	}
}

// ManagerConfig carries the operational knobs of §4.2.1–4.2.2.
type ManagerConfig struct {
	// WarmupIntervals is the number of consecutive policy intervals
	// ignored after a scaling action, while rate measurements are
	// unstable.
	WarmupIntervals int
	// ActivationIntervals is the number of consecutive policy
	// decisions considered before a scaling command is issued.
	// Values < 1 behave as 1.
	ActivationIntervals int
	// Aggregation combines the activation window's decisions.
	Aggregation Aggregation
	// TargetRateRatio is the minimum acceptable fraction of the
	// target source rate the deployment must achieve (1.0 = exact).
	// When the policy proposes no change but the achieved rate is
	// below ratio·target, the manager boosts the next evaluation by
	// target/achieved to buy the uncaptured overhead headroom.
	TargetRateRatio float64
	// MaxBoost caps the target-rate-ratio correction factor (default
	// 2): even if the achieved rate collapses transiently (e.g. a
	// redeployment window slipping through), one decision is inflated
	// at most this much.
	MaxBoost float64
	// MinChange suppresses decisions whose largest per-operator
	// delta from the current deployment is <= MinChange instances
	// (noise filtering, §4.2.2). 0 disables filtering.
	MinChange int
	// MaxDecisions caps the number of scaling commands issued (0 =
	// unlimited). Under skew or stragglers this guarantees the
	// controller converges rather than chasing an unreachable target
	// (§4.2.3).
	MaxDecisions int
	// RollbackOnDegradation re-issues the previous configuration if
	// the achieved source rate after an action falls below the rate
	// before the action by more than DegradationTolerance.
	RollbackOnDegradation bool
	// DegradationTolerance is the relative slack for rollback
	// (default 0.05 = 5%).
	DegradationTolerance float64
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.ActivationIntervals < 1 {
		c.ActivationIntervals = 1
	}
	if c.TargetRateRatio <= 0 {
		c.TargetRateRatio = 1.0
	}
	if c.DegradationTolerance <= 0 {
		c.DegradationTolerance = 0.05
	}
	if c.MaxBoost == 0 {
		c.MaxBoost = 2
	}
	// MaxBoost == 1 disables the correction entirely (useful when the
	// target is known unreachable, e.g. under data skew, §4.2.3).
	if c.MaxBoost < 1 {
		c.MaxBoost = 1
	}
	return c
}

// ActionKind classifies what the manager asked the system to do.
type ActionKind int

const (
	// ActionRescale deploys a new parallelism configuration.
	ActionRescale ActionKind = iota
	// ActionRollback restores the configuration that preceded the
	// last rescale after observed degradation.
	ActionRollback
)

func (k ActionKind) String() string {
	if k == ActionRollback {
		return "rollback"
	}
	return "rescale"
}

// Action is a scaling command for the reference system.
type Action struct {
	Kind   ActionKind
	New    dataflow.Parallelism
	Old    dataflow.Parallelism
	Reason string
}

// Manager is the Scaling Manager of Fig. 5: it consumes one metrics
// snapshot per policy interval and occasionally emits a scaling Action.
// It is a single-threaded state machine; drive it from one goroutine.
type Manager struct {
	policy  *Policy
	cfg     ManagerConfig
	current dataflow.Parallelism

	warmupLeft  int
	pending     []dataflow.Parallelism
	boost       float64
	shortStreak int
	decisions   int
	prev        dataflow.Parallelism // configuration before last action
	prevRate    float64              // achieved source rate before last action
	awaitVerify bool                 // an action was issued; verify post-warmup
	stopped     bool
}

// NewManager wraps a policy with operational state, starting from the
// given deployed configuration.
func NewManager(p *Policy, initial dataflow.Parallelism, cfg ManagerConfig) (*Manager, error) {
	if p == nil {
		return nil, errors.New("core: nil policy")
	}
	if err := initial.Validate(p.graph); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.TargetRateRatio > 1 {
		return nil, fmt.Errorf("core: target rate ratio %v > 1", cfg.TargetRateRatio)
	}
	return &Manager{
		policy:  p,
		cfg:     cfg,
		current: initial.Clone(),
		boost:   1,
	}, nil
}

// Current returns the configuration the manager believes is deployed.
func (m *Manager) Current() dataflow.Parallelism { return m.current.Clone() }

// Decisions returns how many scaling commands have been issued.
func (m *Manager) Decisions() int { return m.decisions }

// Stopped reports whether the manager stopped issuing commands because
// it hit MaxDecisions.
func (m *Manager) Stopped() bool { return m.stopped }

// achievedRate sums the observed output rates of all sources in the
// snapshot; this is the externally visible throughput the target-rate
// ratio and rollback logic compare against.
func achievedRate(g *dataflow.Graph, snap metrics.Snapshot) float64 {
	sum := 0.0
	for _, src := range g.Sources() {
		if r, ok := snap.Operators[src]; ok {
			sum += r.ObservedOutput
		}
	}
	return sum
}

func targetRate(g *dataflow.Graph, snap metrics.Snapshot) float64 {
	sum := 0.0
	for _, src := range g.Sources() {
		sum += snap.SourceRates[src]
	}
	return sum
}

// OnInterval feeds the manager the snapshot for one policy interval.
// It returns a non-nil Action when the system should be rescaled. The
// caller must apply the action before the next interval (or report
// failure by simply continuing to send snapshots from the old
// configuration — the manager tracks only its own view).
func (m *Manager) OnInterval(snap metrics.Snapshot) (*Action, error) {
	if m.warmupLeft > 0 {
		m.warmupLeft--
		return nil, nil
	}

	achieved := achievedRate(m.policy.graph, snap)
	target := targetRate(m.policy.graph, snap)

	// Post-action verification: detect performance degradation and
	// roll back (§4.2.2) before any new decision making.
	if m.awaitVerify {
		m.awaitVerify = false
		if m.cfg.RollbackOnDegradation && m.prev != nil &&
			achieved < m.prevRate*(1-m.cfg.DegradationTolerance) {
			action := &Action{
				Kind:   ActionRollback,
				New:    m.prev.Clone(),
				Old:    m.current.Clone(),
				Reason: fmt.Sprintf("achieved rate %.0f fell below pre-action %.0f", achieved, m.prevRate),
			}
			m.current = m.prev.Clone()
			m.prev = nil
			m.warmupLeft = m.cfg.WarmupIntervals
			m.pending = nil
			return action, nil
		}
	}

	if m.stopped {
		return nil, nil
	}

	dec, err := m.policy.Decide(snap, m.current, m.boost)
	if errors.Is(err, ErrInsufficientData) {
		// Not enough signal yet: hold the configuration, drop the
		// activation window (stale decisions must not fire later).
		m.pending = nil
		return nil, nil
	}
	if err != nil {
		return nil, err
	}

	proposal := dec.Parallelism
	if proposal.Equal(m.current) {
		m.pending = nil
		// The model believes the deployment is optimal. If the
		// achieved rate still misses the target, overheads the
		// instrumentation cannot capture are to blame; grow the boost
		// by the observed shortfall (§4.2.1, target rate ratio). The
		// boost is sticky: it encodes a persistent overhead estimate,
		// so it is never reset — otherwise the next boost-free
		// evaluation would propose scaling back down and the manager
		// would oscillate. MaxBoost bounds the damage of transiently
		// collapsed measurements.
		if target > 0 && achieved < m.cfg.TargetRateRatio*target*(1-1e-9) && achieved > 0 {
			// Require two consecutive short intervals before growing
			// the boost: genuine uncaptured overhead depresses the
			// rate persistently, while a measurement window polluted
			// by a redeployment (or another transient) recovers by
			// the next interval and must not trigger a scale-up.
			m.shortStreak++
			if m.shortStreak >= 2 {
				b := m.boost * (target / achieved)
				if b > m.cfg.MaxBoost {
					b = m.cfg.MaxBoost
				}
				m.boost = b
			}
		} else {
			m.shortStreak = 0
		}
		return nil, nil
	}
	m.shortStreak = 0

	m.pending = append(m.pending, proposal)
	if len(m.pending) < m.cfg.ActivationIntervals {
		return nil, nil
	}
	agg := aggregate(m.pending, m.cfg.Aggregation)
	m.pending = nil

	if agg.Equal(m.current) {
		return nil, nil
	}
	if m.cfg.MinChange > 0 && agg.MaxAbsDiff(m.current) <= m.cfg.MinChange {
		return nil, nil
	}

	m.prev = m.current.Clone()
	m.prevRate = achieved
	m.current = agg.Clone()
	m.decisions++
	m.warmupLeft = m.cfg.WarmupIntervals
	m.awaitVerify = m.cfg.RollbackOnDegradation
	if m.cfg.MaxDecisions > 0 && m.decisions >= m.cfg.MaxDecisions {
		m.stopped = true
	}
	return &Action{
		Kind:   ActionRescale,
		New:    agg.Clone(),
		Old:    m.prev.Clone(),
		Reason: fmt.Sprintf("policy decision #%d", m.decisions),
	}, nil
}

// aggregate combines an activation window of proposals.
func aggregate(window []dataflow.Parallelism, kind Aggregation) dataflow.Parallelism {
	switch kind {
	case AggMax:
		out := window[0].Clone()
		for _, p := range window[1:] {
			for op, v := range p {
				if v > out[op] {
					out[op] = v
				}
			}
		}
		return out
	case AggMedian:
		out := make(dataflow.Parallelism, len(window[0]))
		for op := range window[0] {
			vals := make([]int, 0, len(window))
			for _, p := range window {
				vals = append(vals, p[op])
			}
			sort.Ints(vals)
			out[op] = vals[(len(vals)-1)/2]
		}
		return out
	default:
		return window[len(window)-1].Clone()
	}
}

// ConvergenceTrace records the sequence of configurations a manager
// walked through; experiments use it to report the paper's "steps to
// converge".
type ConvergenceTrace struct {
	Steps []dataflow.Parallelism
}

// Record appends a step if it differs from the last recorded one.
func (t *ConvergenceTrace) Record(p dataflow.Parallelism) {
	if len(t.Steps) > 0 && t.Steps[len(t.Steps)-1].Equal(p) {
		return
	}
	t.Steps = append(t.Steps, p.Clone())
}

// NumSteps returns the number of configuration changes recorded after
// the initial configuration.
func (t *ConvergenceTrace) NumSteps() int {
	if len(t.Steps) == 0 {
		return 0
	}
	return len(t.Steps) - 1
}

// OperatorSeries extracts one operator's parallelism across the trace,
// e.g. Table 4's "12→16" cells.
func (t *ConvergenceTrace) OperatorSeries(op string) []int {
	out := make([]int, 0, len(t.Steps))
	for _, s := range t.Steps {
		out = append(out, s[op])
	}
	return out
}

// Validate sanity-checks numeric config values the defaulting step
// cannot fix.
func (c ManagerConfig) Validate() error {
	if c.WarmupIntervals < 0 {
		return fmt.Errorf("core: negative warmup intervals")
	}
	if c.MinChange < 0 {
		return fmt.Errorf("core: negative min change")
	}
	if c.MaxDecisions < 0 {
		return fmt.Errorf("core: negative max decisions")
	}
	if c.TargetRateRatio < 0 || math.IsNaN(c.TargetRateRatio) {
		return fmt.Errorf("core: invalid target rate ratio")
	}
	return nil
}
