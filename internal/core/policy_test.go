package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// synthSnapshot builds the snapshot an ideal linear-scaling system
// would report: per-instance true processing rate perInst[op] and
// selectivity sel[op] are intrinsic, so at parallelism p the aggregated
// true rates are p·perInst and p·perInst·sel.
func synthSnapshot(g *dataflow.Graph, cur dataflow.Parallelism,
	perInst, sel map[string]float64, srcRates map[string]float64) metrics.Snapshot {
	snap := metrics.Snapshot{
		Operators:   make(map[string]metrics.OperatorRates),
		SourceRates: srcRates,
	}
	for i := g.NumSources(); i < g.NumOperators(); i++ {
		name := g.Operator(i).Name
		p := float64(cur[name])
		snap.Operators[name] = metrics.OperatorRates{
			Operator:       name,
			Instances:      cur[name],
			TrueProcessing: p * perInst[name],
			TrueOutput:     p * perInst[name] * sel[name],
		}
	}
	return snap
}

func mustPolicy(t *testing.T, g *dataflow.Graph, cfg PolicyConfig) *Policy {
	t.Helper()
	p, err := NewPolicy(g, cfg)
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	return p
}

// TestFig2Example reproduces the motivating example of Fig. 2: target
// 40 rec/s, o1 true rate 10 rec/s and selectivity 10, o2 true rate
// 200 rec/s. DS2 must raise o1 to 4 and o2 to 2 in one decision.
func TestFig2Example(t *testing.T) {
	g, err := dataflow.Linear("src", "o1", "o2")
	if err != nil {
		t.Fatal(err)
	}
	pol := mustPolicy(t, g, PolicyConfig{})
	cur := dataflow.Parallelism{"src": 1, "o1": 1, "o2": 1}
	snap := synthSnapshot(g, cur,
		map[string]float64{"o1": 10, "o2": 200},
		map[string]float64{"o1": 10, "o2": 1},
		map[string]float64{"src": 40})
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if dec.Parallelism["o1"] != 4 || dec.Parallelism["o2"] != 2 {
		t.Errorf("decision = %v, want o1:4 o2:2", dec.Parallelism)
	}
	if dec.TargetRate["o1"] != 40 {
		t.Errorf("rt(o1) = %v, want 40", dec.TargetRate["o1"])
	}
	if dec.TargetRate["o2"] != 400 {
		t.Errorf("rt(o2) = %v, want 400 (o1 optimal output)", dec.TargetRate["o2"])
	}
	if dec.OptimalOutput["src"] != 40 {
		t.Errorf("optOut(src) = %v", dec.OptimalOutput["src"])
	}
}

// TestWordcountOptimum checks §5.2's arithmetic: 1M sentences/min, a
// FlatMap instance splits 100K sentences/min into 20 words each, a
// Count instance counts 1M words/min. Optimal = 10 FlatMap, 20 Count,
// found in a single decision from (1, 1).
func TestWordcountOptimum(t *testing.T) {
	g, err := dataflow.Linear("source", "flatmap", "count")
	if err != nil {
		t.Fatal(err)
	}
	pol := mustPolicy(t, g, PolicyConfig{})
	perMin := 1.0 / 60.0
	cur := dataflow.Parallelism{"source": 1, "flatmap": 1, "count": 1}
	snap := synthSnapshot(g, cur,
		map[string]float64{"flatmap": 100_000 * perMin, "count": 1_000_000 * perMin},
		map[string]float64{"flatmap": 20, "count": 0},
		map[string]float64{"source": 1_000_000 * perMin})
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if dec.Parallelism["flatmap"] != 10 || dec.Parallelism["count"] != 20 {
		t.Errorf("decision = %v, want flatmap:10 count:20", dec.Parallelism)
	}
}

// TestScaleDown mirrors Property 2: an over-provisioned operator is
// scaled down to the minimum that still sustains the target.
func TestScaleDown(t *testing.T) {
	g, _ := dataflow.Linear("src", "map")
	pol := mustPolicy(t, g, PolicyConfig{})
	cur := dataflow.Parallelism{"src": 1, "map": 10}
	snap := synthSnapshot(g, cur,
		map[string]float64{"map": 100}, map[string]float64{"map": 1},
		map[string]float64{"src": 250})
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["map"] != 3 {
		t.Errorf("map = %d, want 3 (ceil(250/100))", dec.Parallelism["map"])
	}
}

func TestExactFitNoRoundUp(t *testing.T) {
	// Requirement of exactly 4.0 instances must not become 5.
	g, _ := dataflow.Linear("src", "map")
	pol := mustPolicy(t, g, PolicyConfig{})
	cur := dataflow.Parallelism{"src": 1, "map": 2}
	snap := synthSnapshot(g, cur,
		map[string]float64{"map": 100}, map[string]float64{"map": 1},
		map[string]float64{"src": 400})
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["map"] != 4 {
		t.Errorf("map = %d, want exactly 4", dec.Parallelism["map"])
	}
}

func TestMultiSourceAndDiamond(t *testing.T) {
	// persons + auctions join (Q3/Q8-like): rt of the join is the sum
	// of both sources' optimal outputs through their maps.
	g, err := dataflow.NewBuilder().
		AddOperator("persons").AddOperator("auctions").
		AddOperator("pmap").AddOperator("amap").
		AddOperator("join").
		AddEdge("persons", "pmap").AddEdge("auctions", "amap").
		AddEdge("pmap", "join").AddEdge("amap", "join").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pol := mustPolicy(t, g, PolicyConfig{})
	cur := dataflow.Parallelism{"persons": 1, "auctions": 1, "pmap": 1, "amap": 1, "join": 1}
	snap := synthSnapshot(g, cur,
		map[string]float64{"pmap": 100, "amap": 100, "join": 150},
		map[string]float64{"pmap": 0.5, "amap": 2, "join": 1},
		map[string]float64{"persons": 100, "auctions": 300})
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	// rt(join) = 100·0.5 + 300·2 = 650 -> ceil(650/150) = 5.
	if got := dec.TargetRate["join"]; got != 650 {
		t.Errorf("rt(join) = %v, want 650", got)
	}
	if dec.Parallelism["join"] != 5 {
		t.Errorf("join = %d, want 5", dec.Parallelism["join"])
	}
	if dec.Parallelism["pmap"] != 1 || dec.Parallelism["amap"] != 3 {
		t.Errorf("maps = %v", dec.Parallelism)
	}
}

func TestNonScalableOperatorHeld(t *testing.T) {
	g, err := dataflow.NewBuilder().
		AddOperator("src").AddNonScalableOperator("glob").AddOperator("sink").
		AddEdge("src", "glob").AddEdge("glob", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pol := mustPolicy(t, g, PolicyConfig{})
	cur := dataflow.Parallelism{"src": 1, "glob": 1, "sink": 1}
	snap := synthSnapshot(g, cur,
		map[string]float64{"glob": 10, "sink": 10},
		map[string]float64{"glob": 1, "sink": 0},
		map[string]float64{"src": 100})
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["glob"] != 1 {
		t.Errorf("non-scalable operator resized to %d", dec.Parallelism["glob"])
	}
	// Downstream demand still propagates through its selectivity.
	if dec.Parallelism["sink"] != 10 {
		t.Errorf("sink = %d, want 10", dec.Parallelism["sink"])
	}
}

func TestMaxParallelismCap(t *testing.T) {
	g, _ := dataflow.Linear("src", "map")
	pol := mustPolicy(t, g, PolicyConfig{MaxParallelism: 36})
	cur := dataflow.Parallelism{"src": 1, "map": 1}
	snap := synthSnapshot(g, cur,
		map[string]float64{"map": 1}, map[string]float64{"map": 1},
		map[string]float64{"src": 1000})
	dec, err := pol.Decide(snap, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["map"] != 36 {
		t.Errorf("map = %d, want capped 36", dec.Parallelism["map"])
	}
}

func TestBoostMultipliesTargets(t *testing.T) {
	g, _ := dataflow.Linear("src", "map")
	pol := mustPolicy(t, g, PolicyConfig{})
	cur := dataflow.Parallelism{"src": 1, "map": 1}
	snap := synthSnapshot(g, cur,
		map[string]float64{"map": 100}, map[string]float64{"map": 1},
		map[string]float64{"src": 400})
	dec, err := pol.Decide(snap, cur, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["map"] != 5 {
		t.Errorf("map = %d, want 5 (400·1.25/100)", dec.Parallelism["map"])
	}
}

func TestDecideErrors(t *testing.T) {
	g, _ := dataflow.Linear("src", "map")
	pol := mustPolicy(t, g, PolicyConfig{})
	cur := dataflow.Parallelism{"src": 1, "map": 1}
	good := synthSnapshot(g, cur,
		map[string]float64{"map": 100}, map[string]float64{"map": 1},
		map[string]float64{"src": 100})

	t.Run("missing source rate", func(t *testing.T) {
		s := good.Clone()
		delete(s.SourceRates, "src")
		if _, err := pol.Decide(s, cur, 1); err == nil || !strings.Contains(err.Error(), "source rate") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("negative source rate", func(t *testing.T) {
		s := good.Clone()
		s.SourceRates = map[string]float64{"src": -1}
		if _, err := pol.Decide(s, cur, 1); err == nil {
			t.Error("negative rate accepted")
		}
	})
	t.Run("missing operator", func(t *testing.T) {
		s := good.Clone()
		delete(s.Operators, "map")
		if _, err := pol.Decide(s, cur, 1); err == nil || !strings.Contains(err.Error(), "missing rates") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("zero true processing", func(t *testing.T) {
		s := good.Clone()
		s.Operators["map"] = metrics.OperatorRates{Operator: "map", Instances: 1}
		_, err := pol.Decide(s, cur, 1)
		if !errors.Is(err, ErrInsufficientData) {
			t.Errorf("err = %v, want ErrInsufficientData", err)
		}
	})
	t.Run("bad boost", func(t *testing.T) {
		if _, err := pol.Decide(good, cur, 0.5); err == nil {
			t.Error("boost < 1 accepted")
		}
		if _, err := pol.Decide(good, cur, math.NaN()); err == nil {
			t.Error("NaN boost accepted")
		}
	})
	t.Run("bad current", func(t *testing.T) {
		if _, err := pol.Decide(good, dataflow.Parallelism{"src": 1}, 1); err == nil {
			t.Error("incomplete parallelism accepted")
		}
	})
}

func TestNewPolicyErrors(t *testing.T) {
	if _, err := NewPolicy(nil, PolicyConfig{}); err == nil {
		t.Error("nil graph accepted")
	}
	g, _ := dataflow.Linear("s", "a")
	if _, err := NewPolicy(g, PolicyConfig{MaxParallelism: 2, MinParallelism: 5}); err == nil {
		t.Error("max < min accepted")
	}
}

func TestDecisionHelpers(t *testing.T) {
	d := Decision{Parallelism: dataflow.Parallelism{"b": 2, "a": 1}}
	names := d.OperatorsByName()
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("OperatorsByName = %v", names)
	}
	if TotalWorkers(d) != 3 {
		t.Errorf("TotalWorkers = %d", TotalWorkers(d))
	}
}

// randomPipeline produces a random linear dataflow with random
// per-instance rates and selectivities, its current deployment and the
// matching ideal-linear snapshot.
func randomPipeline(rng *rand.Rand) (*dataflow.Graph, dataflow.Parallelism, map[string]float64, map[string]float64, map[string]float64) {
	depth := 2 + rng.Intn(4)
	names := []string{"src"}
	for i := 1; i < depth; i++ {
		names = append(names, string(rune('a'+i-1)))
	}
	g, err := dataflow.Linear(names...)
	if err != nil {
		panic(err)
	}
	cur := dataflow.Parallelism{"src": 1}
	perInst := map[string]float64{}
	sel := map[string]float64{}
	for _, n := range names[1:] {
		cur[n] = 1 + rng.Intn(20)
		perInst[n] = 1 + rng.Float64()*999
		sel[n] = 0.1 + rng.Float64()*4
	}
	src := map[string]float64{"src": 1 + rng.Float64()*9999}
	return g, cur, perInst, sel, src
}

// TestQuickNoOvershootNoUndershoot verifies Properties 1 and 2 (§3.4)
// on random pipelines under the perfect-scaling assumption: the chosen
// πi is the *minimum* parallelism that sustains rt — πi·λ ≥ rt and
// (πi−1)·λ < rt.
func TestQuickNoOvershootNoUndershoot(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		g, cur, perInst, sel, src := randomPipeline(rng)
		pol, err := NewPolicy(g, PolicyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		snap := synthSnapshot(g, cur, perInst, sel, src)
		dec, err := pol.Decide(snap, cur, 1)
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		for name, rt := range dec.TargetRate {
			pi := dec.Parallelism[name]
			lam := perInst[name]
			const eps = 1e-6
			if float64(pi)*lam < rt*(1-eps) {
				t.Fatalf("undershoot: %s π=%d λ=%v rt=%v", name, pi, lam, rt)
			}
			if pi > 1 && float64(pi-1)*lam >= rt*(1+eps) {
				t.Fatalf("overshoot: %s π=%d λ=%v rt=%v", name, pi, lam, rt)
			}
		}
	}
}

// TestQuickOneStepFixpoint verifies §3.4's convergence claim under
// linear scaling: re-evaluating the policy at the decided configuration
// (with correspondingly re-measured rates) changes nothing — DS2
// converges in one step.
func TestQuickOneStepFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		g, cur, perInst, sel, src := randomPipeline(rng)
		pol, err := NewPolicy(g, PolicyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		snap := synthSnapshot(g, cur, perInst, sel, src)
		dec, err := pol.Decide(snap, cur, 1)
		if err != nil {
			t.Fatal(err)
		}
		snap2 := synthSnapshot(g, dec.Parallelism, perInst, sel, src)
		dec2, err := pol.Decide(snap2, dec.Parallelism, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !dec2.Parallelism.Equal(dec.Parallelism) {
			t.Fatalf("not a fixpoint: %v -> %v -> %v", cur, dec.Parallelism, dec2.Parallelism)
		}
	}
}

// TestQuickMonotoneUnderRateIncrease: raising the source rate never
// lowers any operator's decided parallelism (stability intuition behind
// the SASO discussion).
func TestQuickMonotoneUnderRateIncrease(t *testing.T) {
	f := func(baseRate uint16, bump uint8) bool {
		g, _ := dataflow.Linear("src", "a", "b")
		pol, err := NewPolicy(g, PolicyConfig{})
		if err != nil {
			return false
		}
		cur := dataflow.Parallelism{"src": 1, "a": 3, "b": 3}
		perInst := map[string]float64{"a": 50, "b": 120}
		sel := map[string]float64{"a": 2, "b": 1}
		lo := float64(baseRate%5000) + 1
		hi := lo + float64(bump)
		d1, err1 := pol.Decide(synthSnapshot(g, cur, perInst, sel, map[string]float64{"src": lo}), cur, 1)
		d2, err2 := pol.Decide(synthSnapshot(g, cur, perInst, sel, map[string]float64{"src": hi}), cur, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return d2.Parallelism["a"] >= d1.Parallelism["a"] && d2.Parallelism["b"] >= d1.Parallelism["b"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScaleInvariance: the decision depends on rates, not on the
// time unit — scaling all rates by a common factor leaves it unchanged.
func TestQuickScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, cur, perInst, sel, src := randomPipeline(rng)
		pol, err := NewPolicy(g, PolicyConfig{})
		if err != nil {
			return false
		}
		d1, err := pol.Decide(synthSnapshot(g, cur, perInst, sel, src), cur, 1)
		if err != nil {
			return false
		}
		const k = 60 // seconds -> minutes
		perInst2 := map[string]float64{}
		for op, v := range perInst {
			perInst2[op] = v * k
		}
		src2 := map[string]float64{}
		for s, v := range src {
			src2[s] = v * k
		}
		d2, err := pol.Decide(synthSnapshot(g, cur, perInst2, sel, src2), cur, 1)
		if err != nil {
			return false
		}
		return d1.Parallelism.Equal(d2.Parallelism)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
