package nexmark

import "math/rand"

// The live stream generators draw exactly three values from a
// freshly-seeded math/rand generator per element (LiveBidAt,
// LivePersonAt, LiveAuctionAt). rand.NewSource expands the seed into
// the full 607-entry lagged-Fibonacci state — ~1.8k LCG steps, tens of
// thousands of ns — of which three draws read exactly six entries:
// vec[331..333] (the feed side) and vec[604..606] (the tap side). This
// file computes just those six entries in closed form, ~30 LCG-step
// equivalents, keeping the generated stream byte-identical to the
// rand.New replay the oracles use.
//
// How the six entries are derived (math/rand's rngSource.Seed): the
// seed is normalized into (0, 2^31-1), run through 20 warm-up steps of
// the Lehmer LCG x -> 48271·x mod 2^31-1, and then every state entry i
// consumes three further steps a, b, c to form
//
//	vec[i] = int64((a<<40 ^ b<<20 ^ c) ^ cooked[i])
//
// so entry i uses LCG iterates 21+3i, 22+3i, 23+3i of the normalized
// seed. An iterate is a modular power: iterate e = (48271^e mod M)·x0
// mod M, so six entries cost 18 precomputed-multiplier modmuls. The
// first three Uint64 draws then read (tap, feed) pairs (606,333),
// (605,332), (604,331) — disjoint indices, so no feed write-back is
// visible within three draws.
//
// rngCooked is additive scrambling baked into math/rand's source; only
// the six entries actually read are embedded here. An init self-check
// replays a spread of seeds against the real generator and disables
// the fast path permanently on any mismatch (e.g. if a future Go
// release changes the generator), falling back to rand.New.

const (
	lcgM = (1 << 31) - 1 // Mersenne prime modulus of the seeding LCG
	lcgA = 48271         // its multiplier
)

// vecIdx lists the lagged-Fibonacci state entries the first three
// draws read, feed side then tap side.
var vecIdx = [6]int{333, 332, 331, 606, 605, 604}

// vecCooked holds math/rand's rngCooked at exactly those six indices.
var vecCooked = [6]int64{
	-4633371852008891965, // cooked[333]
	4287360518296753003,  // cooked[332]
	-1072987336855386047, // cooked[331]
	4152330101494654406,  // cooked[606]
	9103922860780351547,  // cooked[605]
	8382142935188824023,  // cooked[604]
}

// vecMult[k] holds the three multipliers 48271^(21+3i+j) mod M for
// entry vecIdx[k], filled by init.
var vecMult [6][3]uint64

// fastOK gates the fast path; cleared permanently if the init
// self-check finds any divergence from math/rand.
var fastOK bool

func init() {
	for k, i := range vecIdx {
		for j := 0; j < 3; j++ {
			vecMult[k][j] = powmod(lcgA, uint64(21+3*i+j), lcgM)
		}
	}
	fastOK = true
	for _, seed := range []int64{
		0, 1, -1, 89482311, lcgM - 1, lcgM, lcgM + 1, -lcgM,
		0x5E3779B97F4A7C15, -0x5E3779B97F4A7C15,
		liveRNG(42, 0), liveRNG(42, 1), liveRNG(-7, 123456),
	} {
		rng := rand.New(rand.NewSource(seed))
		d1, d2, d3 := fastDraws3(seed)
		if d1 != rng.Int63() || d2 != rng.Int63() || d3 != rng.Int63() {
			fastOK = false
			return
		}
	}
}

// powmod computes a^e mod m by square-and-multiply (m < 2^31, so every
// intermediate product fits uint64).
func powmod(a, e, m uint64) uint64 {
	r := uint64(1)
	a %= m
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = r * a % m
		}
		a = a * a % m
	}
	return r
}

// fastDraws3 returns the first three Int63 draws of
// rand.New(rand.NewSource(seed)), computed in closed form.
func fastDraws3(seed int64) (d1, d2, d3 int64) {
	s := seed % lcgM
	if s < 0 {
		s += lcgM
	}
	if s == 0 {
		s = 89482311
	}
	x0 := uint64(s)
	var vec [6]int64
	for k := range vec {
		a := vecMult[k][0] * x0 % lcgM
		b := vecMult[k][1] * x0 % lcgM
		c := vecMult[k][2] * x0 % lcgM
		vec[k] = int64((a<<40 ^ b<<20 ^ c) ^ uint64(vecCooked[k]))
	}
	const mask = 1<<63 - 1
	d1 = (vec[0] + vec[3]) & mask
	d2 = (vec[1] + vec[4]) & mask
	d3 = (vec[2] + vec[5]) & mask
	return d1, d2, d3
}

// fastInt63n maps one raw Int63 draw the way Rand.Int63n(n) does.
// ok=false reports the rejection-sampling retry case (probability
// about n/2^63), where the caller must replay with a real generator.
func fastInt63n(v, n int64) (int64, bool) {
	if n&(n-1) == 0 {
		return v & (n - 1), true
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	if v > max {
		return 0, false
	}
	return v % n, true
}

// fastIntn maps one raw Int63 draw the way Rand.Intn(n) does for
// n <= 2^31-1 (the Int31n path: the draw's top 31 bits).
func fastIntn(v int64, n int) (int, bool) {
	v31 := int32(v >> 32)
	n32 := int32(n)
	if n32&(n32-1) == 0 {
		return int(v31 & (n32 - 1)), true
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n32))
	if v31 > max {
		return 0, false
	}
	return int(v31 % n32), true
}
