package nexmark

import (
	"math/rand"
	"testing"
)

// TestFastDrawsMatchMathRand pins the closed form of fastrand.go to
// the real generator: the first three Int63 draws must be
// byte-identical for a broad sweep of seeds, including the exact
// seeds the live stream functions derive.
func TestFastDrawsMatchMathRand(t *testing.T) {
	if !fastOK {
		t.Fatal("fastOK is false: the init self-check found a divergence from math/rand")
	}
	check := func(seed int64) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		d1, d2, d3 := fastDraws3(seed)
		w1, w2, w3 := rng.Int63(), rng.Int63(), rng.Int63()
		if d1 != w1 || d2 != w2 || d3 != w3 {
			t.Fatalf("seed %d: fast draws (%d,%d,%d), math/rand (%d,%d,%d)",
				seed, d1, d2, d3, w1, w2, w3)
		}
	}
	for _, seed := range []int64{
		0, 1, -1, 2, -2, 89482311,
		lcgM - 1, lcgM, lcgM + 1, -lcgM, -lcgM - 1,
		1 << 62, -(1 << 62), 0x5E3779B97F4A7C15, -0x5E3779B97F4A7C15,
	} {
		check(seed)
	}
	for seq := int64(0); seq < 3000; seq++ {
		check(liveRNG(7, seq))
		check(liveRNG(-13, seq))
		check(liveRNG(0x9E37, seq))
	}
}

// TestLiveStreamsMatchRandReplay pins the full generator functions —
// fast path plus the Int63n/Intn mapping and rejection fallback —
// against a pure rand.New replay.
func TestLiveStreamsMatchRandReplay(t *testing.T) {
	for seq := int64(0); seq < 5000; seq++ {
		wantBid := func() Bid {
			rng := newRand(liveRNG(7, seq))
			return Bid{
				Auction: 1 + rng.Int63n(LiveAuctionUniverse),
				Bidder:  1 + rng.Int63n(1024),
				Price:   100 + rng.Int63n(100_000),
				Time:    seq,
			}
		}()
		if got := LiveBidAt(7, seq); got != wantBid {
			t.Fatalf("bid %d: %+v, want %+v", seq, got, wantBid)
		}
		wantPerson := func() Person {
			rng := newRand(liveRNG(7+0x9E37, seq))
			return Person{
				ID:    seq + 1,
				Name:  firstNames[rng.Intn(len(firstNames))],
				City:  cities[rng.Intn(len(cities))],
				State: states[rng.Intn(len(states))],
			}
		}()
		if got := LivePersonAt(7, seq); got != wantPerson {
			t.Fatalf("person %d: %+v, want %+v", seq, got, wantPerson)
		}
		wantAuction := func() Auction {
			rng := newRand(liveRNG(7+0x51F0, seq))
			return Auction{
				ID:       seq + 1,
				Seller:   1 + rng.Int63n(LiveSellerUniverse),
				Category: rng.Intn(10),
				Reserve:  100 + rng.Int63n(10_000),
				Expires:  seq + 60_000,
			}
		}()
		if got := LiveAuctionAt(7, seq); got != wantAuction {
			t.Fatalf("auction %d: %+v, want %+v", seq, got, wantAuction)
		}
	}
}

func BenchmarkLiveBidAt(b *testing.B) {
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		bid := LiveBidAt(7, int64(i))
		sink += bid.Price
	}
	_ = sink
}
