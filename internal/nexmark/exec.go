package nexmark

import (
	"fmt"
	"sort"
	"time"
)

// This file contains record-level reference implementations of the six
// queries. The fluid simulator needs only each operator's per-record
// cost and selectivity; these executors are where such numbers come
// from on real hardware: run the generator through the actual operator
// logic and measure (see Calibrate and cmd/nexmark-calibrate). They
// also pin down the queries' semantics, which the cost models in
// queries.go abstract.

// Q1Result is a bid with its price converted to euros.
type Q1Result struct {
	Auction  int64
	Bidder   int64
	PriceEUR int64
	Time     int64
}

// RunQ1 — currency conversion: map every bid's price to euros.
func RunQ1(events []Event) []Q1Result {
	out := make([]Q1Result, 0, len(events))
	for _, ev := range events {
		if ev.Kind != KindBid {
			continue
		}
		b := ev.Bid
		out = append(out, Q1Result{
			Auction:  b.Auction,
			Bidder:   b.Bidder,
			PriceEUR: DollarsToEuros(b.Price),
			Time:     b.Time,
		})
	}
	return out
}

// RunQ2 — selection: keep bids for the configured auction set.
func RunQ2(events []Event) []Bid {
	var out []Bid
	for _, ev := range events {
		if ev.Kind != KindBid {
			continue
		}
		if Q2AuctionFilter(ev.Bid) {
			out = append(out, *ev.Bid)
		}
	}
	return out
}

// Q3Result pairs a seller's profile with one of their open auctions.
type Q3Result struct {
	Name    string
	City    string
	State   string
	Auction int64
}

// q3States is the state filter of the original query.
var q3States = map[string]bool{"ZH": true, "WA": true, "MA": true}

// q3Category is the auction category filter.
const q3Category = 3

// RunQ3 — local item suggestion: an incremental two-input hash join of
// persons (filtered by state) with auctions (filtered by category).
// Record-at-a-time semantics: each arriving record probes the opposite
// side's accumulated state and emits matches immediately.
func RunQ3(events []Event) []Q3Result {
	persons := make(map[int64]*Person)  // seller id -> profile (filtered)
	auctions := make(map[int64][]int64) // seller id -> auction ids (filtered)
	var out []Q3Result
	for _, ev := range events {
		switch ev.Kind {
		case KindPerson:
			p := ev.Person
			if !q3States[p.State] {
				continue
			}
			persons[p.ID] = p
			for _, aid := range auctions[p.ID] {
				out = append(out, Q3Result{Name: p.Name, City: p.City, State: p.State, Auction: aid})
			}
		case KindAuction:
			a := ev.Auction
			if a.Category != q3Category {
				continue
			}
			auctions[a.Seller] = append(auctions[a.Seller], a.ID)
			if p, ok := persons[a.Seller]; ok {
				out = append(out, Q3Result{Name: p.Name, City: p.City, State: p.State, Auction: a.ID})
			}
		}
	}
	return out
}

// Q5Result reports the hottest auction of one sliding window.
type Q5Result struct {
	WindowEnd int64
	Auction   int64
	Bids      int
}

// RunQ5 — hot items: count bids per auction over a sliding window of
// windowMs advancing every slideMs; emit the auction with the most
// bids per window.
func RunQ5(events []Event, windowMs, slideMs int64) []Q5Result {
	if windowMs <= 0 || slideMs <= 0 {
		return nil
	}
	var bids []*Bid
	for _, ev := range events {
		if ev.Kind == KindBid {
			bids = append(bids, ev.Bid)
		}
	}
	if len(bids) == 0 {
		return nil
	}
	var out []Q5Result
	last := bids[len(bids)-1].Time
	for end := slideMs; end <= last+slideMs; end += slideMs {
		start := end - windowMs
		counts := make(map[int64]int)
		for _, b := range bids {
			if b.Time >= start && b.Time < end {
				counts[b.Auction]++
			}
		}
		if len(counts) == 0 {
			continue
		}
		best, bestN := int64(0), -1
		for a, n := range counts {
			if n > bestN || (n == bestN && a < best) {
				best, bestN = a, n
			}
		}
		out = append(out, Q5Result{WindowEnd: end, Auction: best, Bids: bestN})
	}
	return out
}

// Q8Result pairs a newly registered person with an auction they opened
// in the same tumbling window.
type Q8Result struct {
	Person  int64
	Name    string
	Auction int64
}

// RunQ8 — monitor new users: tumbling-window join of persons and
// auctions on seller id; both must fall in the same window.
func RunQ8(events []Event, windowMs int64) []Q8Result {
	if windowMs <= 0 {
		return nil
	}
	type windowState struct {
		persons  map[int64]*Person
		auctions map[int64][]int64
	}
	windows := make(map[int64]*windowState)
	get := func(t int64) *windowState {
		w := t / windowMs
		st, ok := windows[w]
		if !ok {
			st = &windowState{persons: map[int64]*Person{}, auctions: map[int64][]int64{}}
			windows[w] = st
		}
		return st
	}
	for _, ev := range events {
		switch ev.Kind {
		case KindPerson:
			get(ev.Time).persons[ev.Person.ID] = ev.Person
		case KindAuction:
			st := get(ev.Time)
			st.auctions[ev.Auction.Seller] = append(st.auctions[ev.Auction.Seller], ev.Auction.ID)
		}
	}
	var keys []int64
	for w := range windows {
		keys = append(keys, w)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []Q8Result
	for _, w := range keys {
		st := windows[w]
		var ids []int64
		for id := range st.persons {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			for _, aid := range st.auctions[id] {
				out = append(out, Q8Result{Person: id, Name: st.persons[id].Name, Auction: aid})
			}
		}
	}
	return out
}

// Q11Result reports one bidder session: a maximal run of bids with no
// gap exceeding gapMs.
type Q11Result struct {
	Bidder int64
	Start  int64
	End    int64
	Bids   int
}

// RunQ11 — user sessions: session-window bid counts per bidder.
func RunQ11(events []Event, gapMs int64) []Q11Result {
	if gapMs <= 0 {
		return nil
	}
	type session struct {
		start, end int64
		n          int
	}
	open := make(map[int64]*session)
	var out []Q11Result
	closeSession := func(bidder int64, s *session) {
		out = append(out, Q11Result{Bidder: bidder, Start: s.start, End: s.end, Bids: s.n})
	}
	var bidders []int64
	for _, ev := range events {
		if ev.Kind != KindBid {
			continue
		}
		b := ev.Bid
		s, ok := open[b.Bidder]
		if !ok {
			open[b.Bidder] = &session{start: b.Time, end: b.Time, n: 1}
			bidders = append(bidders, b.Bidder)
			continue
		}
		if b.Time-s.end > gapMs {
			closeSession(b.Bidder, s)
			open[b.Bidder] = &session{start: b.Time, end: b.Time, n: 1}
			continue
		}
		s.end = b.Time
		s.n++
	}
	// Flush open sessions deterministically (first-seen order).
	seen := map[int64]bool{}
	for _, bidder := range bidders {
		if seen[bidder] {
			continue
		}
		seen[bidder] = true
		if s, ok := open[bidder]; ok {
			closeSession(bidder, s)
		}
	}
	return out
}

// Calibration reports one operator stage's measured cost model: the
// numbers OperatorSpec carries, derived from real execution instead of
// hand calibration.
type Calibration struct {
	Query       string
	Stage       string
	RecordsIn   int
	RecordsOut  int
	Selectivity float64
	NsPerRecord float64
}

func (c Calibration) String() string {
	return fmt.Sprintf("%s/%s: in=%d out=%d selectivity=%.4f cost=%.0f ns/record",
		c.Query, c.Stage, c.RecordsIn, c.RecordsOut, c.Selectivity, c.NsPerRecord)
}

// Calibrate runs n generated events through the named query's
// reference implementation and measures per-record wall-clock cost and
// selectivity per stage. The measured numbers are hardware-dependent;
// the selectivities are deterministic (fixed generator seed).
func Calibrate(query string, n int) ([]Calibration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("nexmark: calibrate with n=%d", n)
	}
	gen, err := NewGenerator(42, 10_000)
	if err != nil {
		return nil, err
	}
	events := make([]Event, n)
	for i := range events {
		events[i] = gen.Next()
	}
	stage := func(name string, in int, run func() int) Calibration {
		start := time.Now()
		out := run()
		elapsed := time.Since(start)
		c := Calibration{Query: query, Stage: name, RecordsIn: in, RecordsOut: out}
		if in > 0 {
			c.Selectivity = float64(out) / float64(in)
			c.NsPerRecord = float64(elapsed.Nanoseconds()) / float64(in)
		}
		return c
	}
	bids := 0
	for _, ev := range events {
		if ev.Kind == KindBid {
			bids++
		}
	}
	switch query {
	case "q1":
		return []Calibration{stage("map", bids, func() int { return len(RunQ1(events)) })}, nil
	case "q2":
		return []Calibration{stage("filter", bids, func() int { return len(RunQ2(events)) })}, nil
	case "q3":
		return []Calibration{stage("join", n-bids, func() int { return len(RunQ3(events)) })}, nil
	case "q5":
		return []Calibration{stage("window", bids, func() int { return len(RunQ5(events, 10_000, 2_000)) })}, nil
	case "q8":
		return []Calibration{stage("join", n-bids, func() int { return len(RunQ8(events, 10_000)) })}, nil
	case "q11":
		return []Calibration{stage("window", bids, func() int { return len(RunQ11(events, 1_000)) })}, nil
	default:
		return nil, fmt.Errorf("nexmark: unknown query %q (have %v)", query, QueryNames())
	}
}
