//go:build race

package nexmark_test

// raceEnabled reports whether this test binary was built with the race
// detector; allocation-count pins skip under it (instrumentation
// allocates).
const raceEnabled = true
