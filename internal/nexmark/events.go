// Package nexmark provides the Nexmark benchmark workloads used in the
// paper's evaluation (§5.1): an event generator for the auction-site
// domain (persons, auctions, bids) and the six queries the paper runs
// (Q1, Q2, Q3, Q5, Q8, Q11) as simulator workloads with per-system
// calibrations for Apache Flink and Timely Dataflow.
package nexmark

import (
	"fmt"
	"math/rand"
)

// EventKind tags a generated event.
type EventKind int

const (
	KindPerson EventKind = iota
	KindAuction
	KindBid
)

func (k EventKind) String() string {
	switch k {
	case KindPerson:
		return "person"
	case KindAuction:
		return "auction"
	case KindBid:
		return "bid"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Person is a new account registration.
type Person struct {
	ID    int64  `json:"id"`
	Name  string `json:"name"`
	City  string `json:"city"`
	State string `json:"state"`
}

// Auction opens an item for bidding.
type Auction struct {
	ID       int64 `json:"id"`
	Seller   int64 `json:"seller"`
	Category int   `json:"category"`
	Reserve  int64 `json:"reserve"`
	Expires  int64 `json:"expires"`
}

// Bid offers a price on an auction.
type Bid struct {
	Auction int64 `json:"auction"`
	Bidder  int64 `json:"bidder"`
	Price   int64 `json:"price"`
	Time    int64 `json:"time"`
}

// Event is the union type the generator emits.
type Event struct {
	Kind    EventKind
	Time    int64 // event time, milliseconds
	Person  *Person
	Auction *Auction
	Bid     *Bid
}

// Generator deterministically produces the Nexmark event mix: out of
// every 50 events, 1 is a person, 3 are auctions and 46 are bids —
// the proportions of the original benchmark.
type Generator struct {
	rng        *rand.Rand
	seq        int64
	persons    int64
	auctions   int64
	timeMs     int64
	interEvent int64 // ms between events
}

// NewGenerator creates a generator emitting roughly eventsPerSecond.
func NewGenerator(seed int64, eventsPerSecond int) (*Generator, error) {
	if eventsPerSecond <= 0 {
		return nil, fmt.Errorf("nexmark: eventsPerSecond %d <= 0", eventsPerSecond)
	}
	inter := int64(1000 / eventsPerSecond)
	if inter < 1 {
		inter = 1
	}
	return &Generator{
		rng:        rand.New(rand.NewSource(seed)),
		interEvent: inter,
	}, nil
}

var (
	firstNames = []string{"ada", "grace", "alan", "edsger", "barbara", "tony", "leslie", "donald"}
	cities     = []string{"zurich", "seattle", "boston", "newcastle", "athens", "sofia"}
	states     = []string{"ZH", "WA", "MA", "NE", "AT", "SF"}
)

// Next produces the next event in the deterministic sequence.
func (g *Generator) Next() Event {
	g.seq++
	g.timeMs += g.interEvent
	switch g.seq % 50 {
	case 0:
		g.persons++
		p := &Person{
			ID:    g.persons,
			Name:  firstNames[g.rng.Intn(len(firstNames))],
			City:  cities[g.rng.Intn(len(cities))],
			State: states[g.rng.Intn(len(states))],
		}
		return Event{Kind: KindPerson, Time: g.timeMs, Person: p}
	case 1, 2, 3:
		g.auctions++
		a := &Auction{
			ID:       g.auctions,
			Seller:   1 + g.rng.Int63n(maxI64(g.persons, 1)),
			Category: g.rng.Intn(10),
			Reserve:  100 + g.rng.Int63n(10_000),
			Expires:  g.timeMs + 60_000 + g.rng.Int63n(600_000),
		}
		return Event{Kind: KindAuction, Time: g.timeMs, Auction: a}
	default:
		b := &Bid{
			Auction: 1 + g.rng.Int63n(maxI64(g.auctions, 1)),
			Bidder:  1 + g.rng.Int63n(maxI64(g.persons, 1)),
			Price:   100 + g.rng.Int63n(100_000),
			Time:    g.timeMs,
		}
		return Event{Kind: KindBid, Time: g.timeMs, Bid: b}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DollarsToEuros is Q1's mapping function.
func DollarsToEuros(priceUSD int64) int64 {
	return priceUSD * 89 / 100
}

// Q2AuctionFilter is Q2's predicate: keep bids for a fixed set of
// auctions (every 5th here, matching a ~20% selectivity).
func Q2AuctionFilter(b *Bid) bool { return b.Auction%5 == 0 }
