package nexmark

import (
	"fmt"
	"sort"

	"ds2/internal/dataflow"
	"ds2/internal/engine"
)

// System selects the per-system calibration (Table 3 uses different
// target rates for Flink and Timely, and §5.5 runs Timely with a
// global worker pool).
type System int

const (
	SystemFlink System = iota
	SystemTimely
)

func (s System) String() string {
	if s == SystemTimely {
		return "timely"
	}
	return "flink"
}

// Source operator names.
const (
	SrcBids     = "bids"
	SrcAuctions = "auctions"
	SrcPersons  = "persons"
)

// Workload is a ready-to-run simulator configuration for one query.
type Workload struct {
	Query string
	Graph *dataflow.Graph
	Specs map[string]engine.OperatorSpec
	// Sources carries the Table 3 target rates for the system.
	Sources map[string]engine.SourceSpec
	// MainOperator is the operator whose parallelism the paper
	// reports (Table 4 / Fig. 8).
	MainOperator string
	// Indicated is the paper's DS2-indicated parallelism for the main
	// operator (Flink, Fig. 8) or the DS2-indicated global worker
	// count (Timely, Fig. 9).
	Indicated int
	// Rates echoes the Table 3 source rates in records/s.
	Rates map[string]float64
}

// QueryNames lists the implemented queries in paper order.
func QueryNames() []string {
	return []string{"q1", "q2", "q3", "q5", "q8", "q11"}
}

// headroom keeps the calibrated optimum slightly above the demand so
// the optimal configuration is strictly sufficient.
const headroom = 1.01

// costFor calibrates a per-record cost such that pstar instances are
// the minimum sustaining rate rt, given visible/hidden coordination
// overheads: capacity(p) = p / (cost·(1+aV(p−1))·(1+aH(p−1))).
func costFor(rt float64, pstar int, aV, aH float64) float64 {
	v := 1 + aV*float64(pstar-1)
	h := 1 + aH*float64(pstar-1)
	return float64(pstar) / (rt * headroom * v * h)
}

// Query returns the workload for the named query on the given system.
func Query(name string, sys System) (*Workload, error) {
	switch name {
	case "q1":
		return q1(sys)
	case "q2":
		return q2(sys)
	case "q3":
		return q3(sys)
	case "q5":
		return q5(sys)
	case "q8":
		return q8(sys)
	case "q11":
		return q11(sys)
	default:
		return nil, fmt.Errorf("nexmark: unknown query %q (have %v)", name, QueryNames())
	}
}

// pipe builds src -> mid... -> sink linear graphs.
func pipe(names ...string) *dataflow.Graph {
	g, err := dataflow.Linear(names...)
	if err != nil {
		panic(err) // static topologies; structurally valid by construction
	}
	return g
}

func srcSpec(rate float64) engine.SourceSpec {
	return engine.SourceSpec{Rate: engine.ConstantRate(rate), CostPerRecord: 1e-8}
}

// q1 — currency conversion: a stateless map over every bid.
// Flink: 4M bids/s, indicated parallelism 16. Timely: 5M bids/s,
// indicated 4 total workers.
func q1(sys System) (*Workload, error) {
	g := pipe(SrcBids, "q1-map", "q1-sink")
	w := &Workload{Query: "q1", Graph: g, MainOperator: "q1-map"}
	if sys == SystemFlink {
		rate := 4_000_000.0
		w.Rates = map[string]float64{SrcBids: rate}
		w.Indicated = 16
		w.Specs = map[string]engine.OperatorSpec{
			"q1-map": {
				CostPerRecord: costFor(rate, 16, 0.012, 0),
				DeserFrac:     0.25, SerFrac: 0.25, Selectivity: 1,
				Alpha: 0.012,
			},
			"q1-sink": {
				CostPerRecord: costFor(rate, 4, 0, 0),
				DeserFrac:     0.3, Selectivity: 0,
			},
		}
	} else {
		rate := 5_000_000.0
		w.Rates = map[string]float64{SrcBids: rate}
		w.Indicated = 4 // map needs 3 workers, sink 1
		w.Specs = map[string]engine.OperatorSpec{
			"q1-map":  {CostPerRecord: 2.5 / rate, Selectivity: 1},
			"q1-sink": {CostPerRecord: 0.8 / rate, Selectivity: 0},
		}
	}
	w.Sources = sourcesFrom(w.Rates)
	return w, nil
}

// q2 — selection: filter bids by auction id, ~20% selectivity.
// Flink: 4M bids/s, indicated 14.
func q2(sys System) (*Workload, error) {
	g := pipe(SrcBids, "q2-filter", "q2-sink")
	w := &Workload{Query: "q2", Graph: g, MainOperator: "q2-filter"}
	if sys == SystemFlink {
		rate := 4_000_000.0
		w.Rates = map[string]float64{SrcBids: rate}
		w.Indicated = 14
		w.Specs = map[string]engine.OperatorSpec{
			"q2-filter": {
				CostPerRecord: costFor(rate, 14, 0.02, 0),
				DeserFrac:     0.3, SerFrac: 0.1, Selectivity: 0.2,
				Alpha: 0.02,
			},
			"q2-sink": {
				CostPerRecord: costFor(rate*0.2, 2, 0, 0),
				DeserFrac:     0.3, Selectivity: 0,
			},
		}
	} else {
		rate := 5_000_000.0
		w.Rates = map[string]float64{SrcBids: rate}
		w.Indicated = 4
		w.Specs = map[string]engine.OperatorSpec{
			"q2-filter": {CostPerRecord: 2.6 / rate, Selectivity: 0.2},
			"q2-sink":   {CostPerRecord: 0.6 / (rate * 0.2), Selectivity: 0},
		}
	}
	w.Sources = sourcesFrom(w.Rates)
	return w, nil
}

// q3 — local item suggestion: an incremental (record-at-a-time)
// two-input join of filtered persons with filtered auctions.
// Flink: auctions 500K/s + persons 100K/s, indicated 20.
func q3(sys System) (*Workload, error) {
	b := dataflow.NewBuilder().
		AddOperator(SrcPersons).
		AddOperator(SrcAuctions).
		AddOperator("q3-filter-persons").
		AddOperator("q3-filter-auctions").
		AddOperator("q3-join").
		AddOperator("q3-sink").
		AddEdge(SrcPersons, "q3-filter-persons").
		AddEdge(SrcAuctions, "q3-filter-auctions").
		AddEdge("q3-filter-persons", "q3-join").
		AddEdge("q3-filter-auctions", "q3-join").
		AddEdge("q3-join", "q3-sink")
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	w := &Workload{Query: "q3", Graph: g, MainOperator: "q3-join"}
	if sys == SystemFlink {
		persons, auctions := 100_000.0, 500_000.0
		w.Rates = map[string]float64{SrcPersons: persons, SrcAuctions: auctions}
		w.Indicated = 20
		joinIn := persons*0.8 + auctions*1.0 // 580K/s
		w.Specs = map[string]engine.OperatorSpec{
			"q3-filter-persons": {
				CostPerRecord: costFor(persons, 2, 0, 0),
				DeserFrac:     0.3, Selectivity: 0.8,
			},
			"q3-filter-auctions": {
				CostPerRecord: costFor(auctions, 3, 0, 0),
				DeserFrac:     0.3, Selectivity: 1.0,
			},
			"q3-join": {
				CostPerRecord: costFor(joinIn, 20, 0.015, 0),
				DeserFrac:     0.2, SerFrac: 0.1, Selectivity: 0.5,
				Alpha: 0.015,
			},
			"q3-sink": {
				CostPerRecord: costFor(joinIn*0.5, 2, 0, 0),
				DeserFrac:     0.3, Selectivity: 0,
			},
		}
	} else {
		persons, auctions := 800_000.0, 3_000_000.0
		w.Rates = map[string]float64{SrcPersons: persons, SrcAuctions: auctions}
		w.Indicated = 4 // demands 0.5 + 0.75 + 0.98 + 0.9 ≈ 3.1 workers
		joinIn := persons*0.8 + auctions
		w.Specs = map[string]engine.OperatorSpec{
			"q3-filter-persons":  {CostPerRecord: 0.5 / persons, Selectivity: 0.8},
			"q3-filter-auctions": {CostPerRecord: 0.75 / auctions, Selectivity: 1.0},
			"q3-join":            {CostPerRecord: 0.98 / joinIn, Selectivity: 0.5},
			"q3-sink":            {CostPerRecord: 0.9 / (joinIn * 0.5), Selectivity: 0},
		}
	}
	w.Sources = sourcesFrom(w.Rates)
	return w, nil
}

// q5 — hot items: sliding window aggregation over bids.
// Flink: 500K bids/s, indicated 16.
func q5(sys System) (*Workload, error) {
	g := pipe(SrcBids, "q5-window", "q5-sink")
	w := &Workload{Query: "q5", Graph: g, MainOperator: "q5-window"}
	if sys == SystemFlink {
		rate := 500_000.0
		w.Rates = map[string]float64{SrcBids: rate}
		w.Indicated = 16
		w.Specs = map[string]engine.OperatorSpec{
			"q5-window": {
				CostPerRecord: costFor(rate, 16, 0.02, 0),
				DeserFrac:     0.25, SerFrac: 0.05, Selectivity: 0.05,
				Alpha:  0.02,
				Window: &engine.WindowSpec{Slide: 2, InsertFrac: 0.85},
			},
			"q5-sink": {
				CostPerRecord: costFor(rate*0.05, 2, 0, 0),
				DeserFrac:     0.3, Selectivity: 0,
			},
		}
	} else {
		rate := 2_000_000.0
		w.Rates = map[string]float64{SrcBids: rate}
		w.Indicated = 4 // window 2.5 workers (ceil 3) + sink (1)
		w.Specs = map[string]engine.OperatorSpec{
			"q5-window": {
				CostPerRecord: 2.5 / rate, Selectivity: 0.05,
				Window: &engine.WindowSpec{Slide: 1.25, InsertFrac: 0.9},
			},
			"q5-sink": {CostPerRecord: 0.7 / (rate * 0.05), Selectivity: 0},
		}
	}
	w.Sources = sourcesFrom(w.Rates)
	return w, nil
}

// q8 — monitor new users: tumbling-window join of persons and
// auctions. Flink: auctions 420K/s + persons 120K/s, indicated 10.
func q8(sys System) (*Workload, error) {
	b := dataflow.NewBuilder().
		AddOperator(SrcPersons).
		AddOperator(SrcAuctions).
		AddOperator("q8-join").
		AddOperator("q8-sink").
		AddEdge(SrcPersons, "q8-join").
		AddEdge(SrcAuctions, "q8-join").
		AddEdge("q8-join", "q8-sink")
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	w := &Workload{Query: "q8", Graph: g, MainOperator: "q8-join"}
	if sys == SystemFlink {
		persons, auctions := 120_000.0, 420_000.0
		w.Rates = map[string]float64{SrcPersons: persons, SrcAuctions: auctions}
		w.Indicated = 10
		joinIn := persons + auctions
		w.Specs = map[string]engine.OperatorSpec{
			"q8-join": {
				CostPerRecord: costFor(joinIn, 10, 0.015, 0),
				DeserFrac:     0.2, SerFrac: 0.05, Selectivity: 0.1,
				Alpha:  0.015,
				Window: &engine.WindowSpec{Slide: 5, InsertFrac: 0.9},
			},
			"q8-sink": {
				CostPerRecord: costFor(joinIn*0.1, 2, 0, 0),
				DeserFrac:     0.3, Selectivity: 0,
			},
		}
	} else {
		persons, auctions := 4_000_000.0, 4_000_000.0
		w.Rates = map[string]float64{SrcPersons: persons, SrcAuctions: auctions}
		w.Indicated = 4
		joinIn := persons + auctions
		w.Specs = map[string]engine.OperatorSpec{
			"q8-join": {
				CostPerRecord: 2.9 / joinIn, Selectivity: 0.1,
				Window: &engine.WindowSpec{Slide: 1, InsertFrac: 0.9},
			},
			"q8-sink": {CostPerRecord: 0.8 / (joinIn * 0.1), Selectivity: 0},
		}
	}
	w.Sources = sourcesFrom(w.Rates)
	return w, nil
}

// q11 — user sessions: session-window aggregation over bids.
// Flink: 1M bids/s, indicated 28.
func q11(sys System) (*Workload, error) {
	g := pipe(SrcBids, "q11-window", "q11-sink")
	w := &Workload{Query: "q11", Graph: g, MainOperator: "q11-window"}
	if sys == SystemFlink {
		rate := 1_000_000.0
		w.Rates = map[string]float64{SrcBids: rate}
		w.Indicated = 28
		w.Specs = map[string]engine.OperatorSpec{
			"q11-window": {
				CostPerRecord: costFor(rate, 28, 0.015, 0),
				DeserFrac:     0.25, SerFrac: 0.05, Selectivity: 0.02,
				Alpha:  0.015,
				Window: &engine.WindowSpec{Slide: 1, InsertFrac: 0.8},
			},
			"q11-sink": {
				CostPerRecord: costFor(rate*0.02, 2, 0, 0),
				DeserFrac:     0.3, Selectivity: 0,
			},
		}
	} else {
		rate := 9_000_000.0
		w.Rates = map[string]float64{SrcBids: rate}
		w.Indicated = 4
		w.Specs = map[string]engine.OperatorSpec{
			"q11-window": {
				CostPerRecord: 2.8 / rate, Selectivity: 0.02,
				Window: &engine.WindowSpec{Slide: 1, InsertFrac: 0.9},
			},
			"q11-sink": {CostPerRecord: 0.6 / (rate * 0.02), Selectivity: 0},
		}
	}
	w.Sources = sourcesFrom(w.Rates)
	return w, nil
}

func sourcesFrom(rates map[string]float64) map[string]engine.SourceSpec {
	out := make(map[string]engine.SourceSpec, len(rates))
	for name, r := range rates {
		out[name] = srcSpec(r)
	}
	return out
}

// InitialParallelism builds the uniform initial configuration the
// convergence experiment sweeps (Table 4's leftmost column): p for
// every non-source operator, 1 per source.
func (w *Workload) InitialParallelism(p int) dataflow.Parallelism {
	return dataflow.UniformParallelism(w.Graph, p)
}

// SortedOperators returns the workload's non-source operator names in
// topological order (deterministic reporting).
func (w *Workload) SortedOperators() []string {
	names := w.Graph.Names()[w.Graph.NumSources():]
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
