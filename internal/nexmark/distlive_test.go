// Distributed live-query acceptance: the Nexmark pipelines running on
// a 2-worker streamrt cluster over real loopback TCP must match the
// same replay oracles the single-process tests pin — including across
// mid-stream rescales that migrate keyed state between workers.
package nexmark_test

import (
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/nexmark"
	"ds2/internal/streamrt"
)

// runClusterWithRescales is the distributed twin of
// runBoundedWithRescales: deploy on two workers, rescale up then back
// down mid-flight (moving instance ownership — and with it keyed
// state — between worker processes both times), drain, and return the
// final keyed states. It also asserts the run genuinely crossed
// processes: at least one worker-to-worker link must have moved bytes.
func runClusterWithRescales(t *testing.T, w *nexmark.LiveWorkload, up dataflow.Parallelism) map[string]map[string]any {
	t.Helper()
	pipes := map[string]*streamrt.Pipeline{w.Query: w.Pipeline}
	addrs := make([]string, 2)
	for i := range addrs {
		wk := streamrt.NewWorker(i, pipes, nil)
		addr, err := wk.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(wk.Close)
		addrs[i] = addr
	}
	cluster, err := streamrt.NewCluster(w.Pipeline, w.Query, w.Initial, addrs, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)

	time.Sleep(60 * time.Millisecond)
	if err := cluster.Rescale(up); err != nil {
		t.Fatalf("rescale up: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := cluster.Rescale(w.Initial); err != nil {
		t.Fatalf("rescale down: %v", err)
	}
	cluster.Wait()
	if _, err := cluster.Collect(); err != nil {
		t.Fatalf("collect: %v", err)
	}
	states := cluster.Stop()

	var bytes uint64
	for _, l := range cluster.LinkTotals() {
		bytes += l.TxBytes + l.RxBytes
	}
	if bytes == 0 {
		t.Fatal("no traffic on worker-to-worker links")
	}
	return states
}

// TestDistLiveQ1ExactAcrossWorkerRescale: the bounded bid stream
// through the live Q1 pipeline spread over two worker processes —
// rescaled up and back down mid-flight, with per-auction aggregates
// crossing the framed transport both times — must leave counts and
// euro checksums byte-identical to the offline replay.
func TestDistLiveQ1ExactAcrossWorkerRescale(t *testing.T) {
	cfg := nexmark.LiveQueryConfig{
		Rate1: 3000, Seed: 7, Limit: 900, Costs: fastCosts(),
		Distributed: true,
	}
	w, err := nexmark.LiveQuery("q1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := runClusterWithRescales(t, w,
		dataflow.Parallelism{nexmark.SrcBids: 1, "q1-map": 3, "q1-sink": 2})

	want := nexmark.LiveExpectedQ1(cfg, cfg.Limit)
	got := states["q1-sink"]
	if len(got) != len(want) {
		t.Fatalf("%d auctions at the sink, want %d", len(got), len(want))
	}
	for key, agg := range want {
		if g, _ := got[key].(*nexmark.Q1Agg); g == nil || *g != agg {
			t.Errorf("auction %s: %+v, want %+v", key, got[key], agg)
		}
	}
}

// TestDistLiveQ5FiredPlusResidualExact: small tumbling windows on a
// 2-worker cluster with mid-flight rescales — every bid must be
// reported by exactly one fired window or still buffered in a pane,
// even though the panes themselves were encoded, shipped between
// worker processes, and decoded during the rescales.
func TestDistLiveQ5FiredPlusResidualExact(t *testing.T) {
	cfg := nexmark.LiveQueryConfig{
		Rate1: 3000, Seed: 9, Limit: 900, Costs: fastCosts(),
		WindowSize: 80 * time.Millisecond, WindowSlide: 80 * time.Millisecond,
		Distributed: true,
	}
	w, err := nexmark.LiveQuery("q5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := runClusterWithRescales(t, w,
		dataflow.Parallelism{nexmark.SrcBids: 1, "q5-window": 3, "q5-sink": 2})

	fired := 0
	total := make(map[string]int)
	for key, st := range states["q5-sink"] {
		agg := st.(nexmark.Q5Agg)
		total[key] += agg.Bids
		fired += agg.Bids
	}
	if fired == 0 {
		t.Fatal("no window ever fired")
	}
	for key, st := range states["q5-window"] {
		ws := st.(*streamrt.WindowState)
		for _, agg := range ws.Panes {
			total[key] += agg.(int)
		}
	}
	want := nexmark.LiveExpectedBidCounts(cfg, cfg.Limit)
	if len(total) != len(want) {
		t.Fatalf("%d auctions accounted, want %d", len(total), len(want))
	}
	for key, n := range want {
		if total[key] != n {
			t.Errorf("auction %s: fired+residual = %d, want %d", key, total[key], n)
		}
	}
}
