package nexmark

import (
	"encoding/binary"
	"fmt"
)

// Distributed-runtime codecs for the live queries. A multi-process
// deployment needs two things a single-process job does not: every
// exchange edge must move bytes (the q1-map→q1-sink and
// q5-window→q5-sink edges carry direct values locally), and every
// keyed operator must serialize its per-key state so rescale
// snapshots can cross processes. These codecs are wired in only when
// LiveQueryConfig.Distributed is set — the single-process hot path
// stays byte-for-byte identical.

// q1ResultWire is the encoded size of one Q1Result: four
// little-endian int64s, mirroring BidCodec's layout discipline.
const q1ResultWire = 32

// Q1ResultCodec moves converted bids over the exchange into q1-sink.
// Like BidCodec it speaks pooled values: AppendEncode recycles the
// result it consumes, Decode hands out a pooled one owned by the
// receiving Process.
type Q1ResultCodec struct{}

// AppendEncode implements streamrt.AppendEncoder.
func (Q1ResultCodec) AppendEncode(dst []byte, v any) []byte {
	r := v.(*Q1Result)
	var w [q1ResultWire]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(r.Auction))
	binary.LittleEndian.PutUint64(w[8:], uint64(r.Bidder))
	binary.LittleEndian.PutUint64(w[16:], uint64(r.PriceEUR))
	binary.LittleEndian.PutUint64(w[24:], uint64(r.Time))
	q1ResultPool.Put(r)
	return append(dst, w[:]...)
}

// Encode implements streamrt.Codec (the runtime prefers AppendEncode).
func (c Q1ResultCodec) Encode(v any) []byte { return c.AppendEncode(nil, v) }

// Decode implements streamrt.Codec.
func (Q1ResultCodec) Decode(p []byte) any {
	if len(p) != q1ResultWire {
		panic(fmt.Sprintf("nexmark: q1 result record of %d bytes, want %d", len(p), q1ResultWire))
	}
	r := q1ResultPool.Get().(*Q1Result)
	r.Auction = int64(binary.LittleEndian.Uint64(p[0:]))
	r.Bidder = int64(binary.LittleEndian.Uint64(p[8:]))
	r.PriceEUR = int64(binary.LittleEndian.Uint64(p[16:]))
	r.Time = int64(binary.LittleEndian.Uint64(p[24:]))
	return r
}

// IntCodec moves plain int values (Q5's fired window counts) as
// varints.
type IntCodec struct{}

// AppendEncode implements streamrt.AppendEncoder.
func (IntCodec) AppendEncode(dst []byte, v any) []byte {
	return binary.AppendVarint(dst, int64(v.(int)))
}

// Encode implements streamrt.Codec.
func (c IntCodec) Encode(v any) []byte { return c.AppendEncode(nil, v) }

// Decode implements streamrt.Codec.
func (IntCodec) Decode(p []byte) any {
	x, n := binary.Varint(p)
	if n <= 0 {
		panic(fmt.Sprintf("nexmark: corrupt varint record (%d bytes)", len(p)))
	}
	return int(x)
}

// intStateCodec serializes int keyed state — Q5's per-pane bid count.
type intStateCodec struct{}

func (intStateCodec) EncodeState(v any) []byte {
	return binary.AppendVarint(nil, int64(v.(int)))
}

func (intStateCodec) DecodeState(b []byte) any {
	x, n := binary.Varint(b)
	if n <= 0 {
		panic(fmt.Sprintf("nexmark: corrupt int state (%d bytes)", len(b)))
	}
	return int(x)
}

// q1AggStateCodec serializes q1-sink's per-auction *Q1Agg.
type q1AggStateCodec struct{}

func (q1AggStateCodec) EncodeState(v any) []byte {
	agg := v.(*Q1Agg)
	dst := binary.AppendVarint(nil, int64(agg.Count))
	return binary.AppendVarint(dst, agg.EuroSum)
}

func (q1AggStateCodec) DecodeState(b []byte) any {
	count, n := binary.Varint(b)
	if n <= 0 {
		panic("nexmark: corrupt q1 aggregate state")
	}
	sum, m := binary.Varint(b[n:])
	if m <= 0 || n+m != len(b) {
		panic("nexmark: corrupt q1 aggregate state")
	}
	return &Q1Agg{Count: int(count), EuroSum: sum}
}

// q5AggStateCodec serializes q5-sink's per-auction Q5Agg.
type q5AggStateCodec struct{}

func (q5AggStateCodec) EncodeState(v any) []byte {
	agg := v.(Q5Agg)
	dst := binary.AppendVarint(nil, int64(agg.Windows))
	return binary.AppendVarint(dst, int64(agg.Bids))
}

func (q5AggStateCodec) DecodeState(b []byte) any {
	wins, n := binary.Varint(b)
	if n <= 0 {
		panic("nexmark: corrupt q5 aggregate state")
	}
	bids, m := binary.Varint(b[n:])
	if m <= 0 || n+m != len(b) {
		panic("nexmark: corrupt q5 aggregate state")
	}
	return Q5Agg{Windows: int(wins), Bids: int(bids)}
}
