package nexmark

import (
	"testing"
)

func genEvents(t *testing.T, n int) []Event {
	t.Helper()
	g, err := NewGenerator(42, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	events := make([]Event, n)
	for i := range events {
		events[i] = g.Next()
	}
	return events
}

func TestRunQ1ConvertsEveryBid(t *testing.T) {
	events := genEvents(t, 5000)
	out := RunQ1(events)
	bids := 0
	for _, ev := range events {
		if ev.Kind == KindBid {
			bids++
		}
	}
	if len(out) != bids {
		t.Fatalf("q1 results = %d, want %d (selectivity 1 over bids)", len(out), bids)
	}
	for i, r := range out {
		if r.PriceEUR <= 0 || r.Auction < 1 {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}
	// Spot check the conversion against the source event.
	for _, ev := range events {
		if ev.Kind == KindBid {
			if out[0].PriceEUR != DollarsToEuros(ev.Bid.Price) {
				t.Errorf("conversion mismatch: %d vs %d", out[0].PriceEUR, DollarsToEuros(ev.Bid.Price))
			}
			break
		}
	}
}

func TestRunQ2SelectivityNearTwentyPercent(t *testing.T) {
	events := genEvents(t, 20_000)
	out := RunQ2(events)
	bids := 0
	for _, ev := range events {
		if ev.Kind == KindBid {
			bids++
		}
	}
	sel := float64(len(out)) / float64(bids)
	if sel < 0.15 || sel > 0.25 {
		t.Errorf("q2 selectivity = %v, want ~0.2", sel)
	}
	for _, b := range out {
		if !Q2AuctionFilter(&b) {
			t.Fatalf("filter let through %+v", b)
		}
	}
}

func TestRunQ3JoinSemantics(t *testing.T) {
	// Hand-built sequence: person arrives after a matching auction
	// (probe finds build side) and before another (reverse order).
	mk := func(kind EventKind, t int64, payload any) Event {
		ev := Event{Kind: kind, Time: t}
		switch p := payload.(type) {
		case *Person:
			ev.Person = p
		case *Auction:
			ev.Auction = p
		}
		return ev
	}
	events := []Event{
		mk(KindAuction, 1, &Auction{ID: 100, Seller: 7, Category: q3Category}),
		mk(KindAuction, 2, &Auction{ID: 101, Seller: 7, Category: 9}), // wrong category
		mk(KindPerson, 3, &Person{ID: 7, Name: "ada", City: "zurich", State: "ZH"}),
		mk(KindAuction, 4, &Auction{ID: 102, Seller: 7, Category: q3Category}),
		mk(KindPerson, 5, &Person{ID: 8, Name: "tony", City: "sofia", State: "SF"}), // filtered state
		mk(KindAuction, 6, &Auction{ID: 103, Seller: 8, Category: q3Category}),
	}
	out := RunQ3(events)
	if len(out) != 2 {
		t.Fatalf("q3 results = %d, want 2: %+v", len(out), out)
	}
	if out[0].Auction != 100 || out[1].Auction != 102 {
		t.Errorf("join emitted %+v", out)
	}
	if out[0].Name != "ada" || out[0].State != "ZH" {
		t.Errorf("profile fields: %+v", out[0])
	}
}

func TestRunQ5HotItems(t *testing.T) {
	bid := func(t, auction int64) Event {
		return Event{Kind: KindBid, Time: t, Bid: &Bid{Auction: auction, Bidder: 1, Price: 100, Time: t}}
	}
	events := []Event{
		bid(100, 1), bid(200, 2), bid(300, 2), // auction 2 hot in first window
		bid(1100, 3), bid(1200, 3), bid(1300, 3), // auction 3 hot later
	}
	out := RunQ5(events, 1000, 500)
	if len(out) == 0 {
		t.Fatal("no windows emitted")
	}
	if out[0].Auction != 2 || out[0].Bids != 2 {
		t.Errorf("first window = %+v, want auction 2 with 2 bids", out[0])
	}
	last := out[len(out)-1]
	if last.Auction != 3 {
		t.Errorf("last window = %+v, want auction 3", last)
	}
	if RunQ5(events, 0, 500) != nil || RunQ5(nil, 1000, 500) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestRunQ8TumblingJoin(t *testing.T) {
	events := []Event{
		{Kind: KindPerson, Time: 100, Person: &Person{ID: 1, Name: "ada"}},
		{Kind: KindAuction, Time: 200, Auction: &Auction{ID: 10, Seller: 1}},
		// Next window: same seller opens an auction but did NOT
		// register in this window -> no result.
		{Kind: KindAuction, Time: 1200, Auction: &Auction{ID: 11, Seller: 1}},
		// A person registering without an auction -> no result.
		{Kind: KindPerson, Time: 1300, Person: &Person{ID: 2, Name: "grace"}},
	}
	out := RunQ8(events, 1000)
	if len(out) != 1 {
		t.Fatalf("q8 results = %+v, want exactly 1", out)
	}
	if out[0].Person != 1 || out[0].Auction != 10 || out[0].Name != "ada" {
		t.Errorf("q8 result = %+v", out[0])
	}
	if RunQ8(events, 0) != nil {
		t.Error("zero window accepted")
	}
}

func TestRunQ11Sessions(t *testing.T) {
	bid := func(t, bidder int64) Event {
		return Event{Kind: KindBid, Time: t, Bid: &Bid{Auction: 1, Bidder: bidder, Time: t}}
	}
	events := []Event{
		bid(100, 1), bid(200, 1), bid(250, 1), // session 1 of bidder 1
		bid(5000, 1), // gap > 1000 -> new session
		bid(300, 2),  // bidder 2, one bid
	}
	out := RunQ11(events, 1000)
	if len(out) != 3 {
		t.Fatalf("sessions = %+v, want 3", out)
	}
	// First closed session is bidder 1's first run.
	if out[0].Bidder != 1 || out[0].Bids != 3 || out[0].Start != 100 || out[0].End != 250 {
		t.Errorf("session 0 = %+v", out[0])
	}
	// Flush order is first-seen bidder order.
	if out[1].Bidder != 1 || out[1].Bids != 1 {
		t.Errorf("session 1 = %+v", out[1])
	}
	if out[2].Bidder != 2 || out[2].Bids != 1 {
		t.Errorf("session 2 = %+v", out[2])
	}
	if RunQ11(events, 0) != nil {
		t.Error("zero gap accepted")
	}
}

func TestCalibrateAllQueries(t *testing.T) {
	for _, q := range QueryNames() {
		cals, err := Calibrate(q, 20_000)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(cals) == 0 {
			t.Fatalf("%s: no stages", q)
		}
		for _, c := range cals {
			if c.RecordsIn <= 0 {
				t.Errorf("%s/%s: no input records", q, c.Stage)
			}
			if c.NsPerRecord <= 0 {
				t.Errorf("%s/%s: non-positive cost", q, c.Stage)
			}
			if c.Selectivity < 0 {
				t.Errorf("%s/%s: negative selectivity", q, c.Stage)
			}
			if c.String() == "" {
				t.Error("empty rendering")
			}
		}
	}
	if _, err := Calibrate("q99", 100); err == nil {
		t.Error("unknown query accepted")
	}
	if _, err := Calibrate("q1", 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestCalibrateSelectivitiesDeterministic(t *testing.T) {
	a, err := Calibrate("q2", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate("q2", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].RecordsOut != b[0].RecordsOut {
		t.Errorf("selectivity not deterministic: %d vs %d", a[0].RecordsOut, b[0].RecordsOut)
	}
	// Q2's measured selectivity should be near the cost model's 0.2.
	if a[0].Selectivity < 0.15 || a[0].Selectivity > 0.25 {
		t.Errorf("q2 measured selectivity %v far from the model's 0.2", a[0].Selectivity)
	}
}
