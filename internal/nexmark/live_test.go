package nexmark_test

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/nexmark"
	"ds2/internal/service"
	"ds2/internal/streamrt"
)

// fastCosts paces every stage in the tens of microseconds so the
// exactness tests finish in fractions of a second; correctness pins
// care about record accounting, not capacity.
func fastCosts() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, stage := range []string{
		"q1-map", "q1-sink", "q2-filter", "q2-sink",
		"q3-filter-persons", "q3-filter-auctions", "q3-join", "q3-sink",
		"q5-window", "q5-sink", "q8-join", "q8-sink",
	} {
		out[stage] = 30 * time.Microsecond
	}
	return out
}

// runBoundedWithRescales deploys the workload at all-ones, rescales it
// up then down mid-flight, drains and returns the final keyed states.
func runBoundedWithRescales(t *testing.T, w *nexmark.LiveWorkload, up dataflow.Parallelism) map[string]map[string]any {
	t.Helper()
	j, err := streamrt.NewJob(w.Pipeline, w.Initial, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := j.Rescale(up); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := j.Rescale(w.Initial); err != nil {
		t.Fatal(err)
	}
	j.Wait()
	return j.Stop()
}

// TestLiveQ1ExactAcrossRescales: the bounded bid stream through the
// live Q1 pipeline — rescaled up and back down mid-flight — must leave
// per-auction counts and euro checksums byte-identical to the offline
// replay.
func TestLiveQ1ExactAcrossRescales(t *testing.T) {
	cfg := nexmark.LiveQueryConfig{Rate1: 3000, Seed: 7, Limit: 900, Costs: fastCosts()}
	w, err := nexmark.LiveQuery("q1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := runBoundedWithRescales(t, w,
		dataflow.Parallelism{nexmark.SrcBids: 1, "q1-map": 3, "q1-sink": 2})

	want := nexmark.LiveExpectedQ1(cfg, cfg.Limit)
	got := states["q1-sink"]
	if len(got) != len(want) {
		t.Fatalf("%d auctions at the sink, want %d", len(got), len(want))
	}
	for key, agg := range want {
		if g, _ := got[key].(*nexmark.Q1Agg); g == nil || *g != agg {
			t.Errorf("auction %s: %+v, want %+v", key, got[key], agg)
		}
	}
}

// TestLiveQ2ExactAcrossRescales: the ~20% auction filter must keep
// exactly the oracle's bids, across rescales.
func TestLiveQ2ExactAcrossRescales(t *testing.T) {
	cfg := nexmark.LiveQueryConfig{Rate1: 3000, Seed: 11, Limit: 900, Costs: fastCosts()}
	w, err := nexmark.LiveQuery("q2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := runBoundedWithRescales(t, w,
		dataflow.Parallelism{nexmark.SrcBids: 1, "q2-filter": 2, "q2-sink": 3})

	want := nexmark.LiveExpectedQ2(cfg, cfg.Limit)
	got := states["q2-sink"]
	if len(got) != len(want) {
		t.Fatalf("%d auctions at the sink, want %d", len(got), len(want))
	}
	for key, n := range want {
		if g, _ := got[key].(int); g != n {
			t.Errorf("auction %s: %v kept bids, want %d", key, got[key], n)
		}
	}
}

// TestLiveQ3ExactAcrossRescales is the incremental-join pin: every
// (person, auction) pair is emitted exactly once regardless of arrival
// interleaving and rescale timing, so the sink's per-seller match
// counts and auction checksums are byte-identical to the replay.
func TestLiveQ3ExactAcrossRescales(t *testing.T) {
	cfg := nexmark.LiveQueryConfig{Rate1: 2500, Seed: 3, Limit: 800, Costs: fastCosts()}
	w, err := nexmark.LiveQuery("q3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	up := dataflow.Parallelism{
		nexmark.SrcPersons: 1, nexmark.SrcAuctions: 1,
		"q3-filter-persons": 2, "q3-filter-auctions": 2, "q3-join": 3, "q3-sink": 2,
	}
	states := runBoundedWithRescales(t, w, up)

	want := nexmark.LiveExpectedQ3(cfg, cfg.Limit)
	got := states["q3-sink"]
	if len(got) != len(want) {
		t.Fatalf("%d sellers at the sink, want %d", len(got), len(want))
	}
	for key, agg := range want {
		if g, _ := got[key].(nexmark.Q3Agg); g != agg {
			t.Errorf("seller %s: %+v, want %+v", key, got[key], agg)
		}
	}
}

// TestLiveQ5WindowStateSurvivesRescale: with a window far longer than
// the bounded run nothing ever fires, so after two rescales the open
// panes themselves must hold the oracle's per-auction bid counts —
// window contents survive repartitioning byte-exactly.
func TestLiveQ5WindowStateSurvivesRescale(t *testing.T) {
	cfg := nexmark.LiveQueryConfig{
		Rate1: 3000, Seed: 5, Limit: 900, Costs: fastCosts(),
		WindowSize: time.Hour, WindowSlide: time.Hour,
	}
	w, err := nexmark.LiveQuery("q5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := runBoundedWithRescales(t, w,
		dataflow.Parallelism{nexmark.SrcBids: 1, "q5-window": 4, "q5-sink": 2})

	if fired := len(states["q5-sink"]); fired != 0 {
		t.Fatalf("an hour-long window fired %d results mid-run", fired)
	}
	want := nexmark.LiveExpectedBidCounts(cfg, cfg.Limit)
	got := states["q5-window"]
	if len(got) != len(want) {
		t.Fatalf("%d auctions hold window state, want %d", len(got), len(want))
	}
	for key, n := range want {
		ws, ok := got[key].(*streamrt.WindowState)
		if !ok {
			t.Fatalf("auction %s: window state is %T", key, got[key])
		}
		total := 0
		for _, agg := range ws.Panes {
			total += agg.(int)
		}
		if total != n {
			t.Errorf("auction %s: %d buffered bids, want %d", key, total, n)
		}
	}
}

// TestLiveQ5FiredPlusResidualExact: with small tumbling windows and a
// mid-flight rescale, every bid is reported by exactly one fired
// window or still buffered — fired counts at the sink plus residual
// pane counts equal the oracle totals exactly (the watermark rides the
// snapshot, so no window fires twice).
func TestLiveQ5FiredPlusResidualExact(t *testing.T) {
	cfg := nexmark.LiveQueryConfig{
		Rate1: 3000, Seed: 9, Limit: 900, Costs: fastCosts(),
		WindowSize: 80 * time.Millisecond, WindowSlide: 80 * time.Millisecond,
	}
	w, err := nexmark.LiveQuery("q5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := runBoundedWithRescales(t, w,
		dataflow.Parallelism{nexmark.SrcBids: 1, "q5-window": 3, "q5-sink": 2})

	fired := 0
	total := make(map[string]int)
	for key, st := range states["q5-sink"] {
		agg := st.(nexmark.Q5Agg)
		total[key] += agg.Bids
		fired += agg.Bids
	}
	if fired == 0 {
		t.Fatal("no window ever fired")
	}
	for key, st := range states["q5-window"] {
		ws := st.(*streamrt.WindowState)
		for _, agg := range ws.Panes {
			total[key] += agg.(int)
		}
	}
	want := nexmark.LiveExpectedBidCounts(cfg, cfg.Limit)
	if len(total) != len(want) {
		t.Fatalf("%d auctions accounted, want %d", len(total), len(want))
	}
	for key, n := range want {
		if total[key] != n {
			t.Errorf("auction %s: fired+residual = %d, want %d", key, total[key], n)
		}
	}
}

// TestLiveQ8WindowJoin pins the windowed join both ways: with a
// window outlasting the bounded run, the single residual pane per
// seller holds exactly the oracle's persons and auctions after two
// rescales; with small windows, windows really fire and the fired pair
// count never exceeds the single-window upper bound.
func TestLiveQ8WindowJoin(t *testing.T) {
	base := nexmark.LiveQueryConfig{Rate1: 2500, Seed: 13, Limit: 800, Costs: fastCosts()}
	up := dataflow.Parallelism{
		nexmark.SrcPersons: 1, nexmark.SrcAuctions: 1, "q8-join": 3, "q8-sink": 2,
	}

	t.Run("state-survives-rescale", func(t *testing.T) {
		cfg := base
		cfg.WindowSize = time.Hour
		w, err := nexmark.LiveQuery("q8", cfg)
		if err != nil {
			t.Fatal(err)
		}
		states := runBoundedWithRescales(t, w, up)
		want := nexmark.LiveExpectedQ8Universe(cfg, cfg.Limit)
		got := states["q8-join"]
		if len(got) != len(want) {
			t.Fatalf("%d sellers hold pane state, want %d", len(got), len(want))
		}
		for key, pane := range want {
			ws, ok := got[key].(*streamrt.WindowState)
			if !ok {
				t.Fatalf("seller %s: state is %T", key, got[key])
			}
			var merged nexmark.Q8Pane
			for _, agg := range ws.Panes {
				p := agg.(*nexmark.Q8Pane)
				merged.Persons = append(merged.Persons, p.Persons...)
				merged.Auctions = append(merged.Auctions, p.Auctions...)
			}
			sortPane(&merged)
			sortPane(&pane)
			if fmt.Sprint(merged) != fmt.Sprint(pane) {
				t.Errorf("seller %s:\n got %v\nwant %v", key, merged, pane)
			}
		}
	})

	t.Run("small-windows-fire", func(t *testing.T) {
		cfg := base
		cfg.WindowSize = 100 * time.Millisecond
		w, err := nexmark.LiveQuery("q8", cfg)
		if err != nil {
			t.Fatal(err)
		}
		states := runBoundedWithRescales(t, w, up)
		fired := 0
		for _, st := range states["q8-sink"] {
			fired += st.(int)
		}
		if fired == 0 {
			t.Fatal("no q8 window ever fired")
		}
		// Splitting a stream into windows can only lose pairs relative
		// to one all-covering window.
		max := 0
		for _, pane := range nexmark.LiveExpectedQ8Universe(cfg, cfg.Limit) {
			max += len(pane.Persons) * len(pane.Auctions)
		}
		if fired > max {
			t.Fatalf("fired %d pairs, above the single-window bound %d", fired, max)
		}
	})
}

func sortPane(p *nexmark.Q8Pane) {
	sort.Slice(p.Persons, func(i, j int) bool { return p.Persons[i].ID < p.Persons[j].ID })
	sort.Slice(p.Auctions, func(i, j int) bool { return p.Auctions[i] < p.Auctions[j] })
}

// actionSeq reduces a trace to its decision sequence, the semantics
// the parity pin compares.
func actionSeq(tr controlloop.Trace) []string {
	var out []string
	for _, iv := range tr.Intervals {
		if iv.Action != "" {
			out = append(out, fmt.Sprintf("%s -> %s", iv.Action, iv.Applied))
		}
	}
	return out
}

// ds2For builds the DS2 autoscaler for a live workload (same knobs as
// the live wordcount convergence pin).
func ds2For(t *testing.T, w *nexmark.LiveWorkload) controlloop.Autoscaler {
	t.Helper()
	pol, err := core.NewPolicy(w.Pipeline.Graph(), core.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(pol, w.Initial, core.ManagerConfig{TargetRateRatio: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return controlloop.DS2Autoscaler(mgr)
}

// TestLiveNexmarkConvergence is the live-Nexmark acceptance pin
// (Table 4 on the wall clock): DS2, reading nothing but wall-clock
// instrumentation from the really-executing Q1 pipeline, must reach
// the workload's Table-4-consistent optimum within three policy
// intervals of the rate step and hold it — and the ds2d-attached run
// of the identical job must take the identical decision sequence.
func TestLiveNexmarkConvergence(t *testing.T) {
	const (
		interval  = 0.2
		intervals = 14
		stepAt    = 0.8
		rateLow   = 100.0
		rateHigh  = 400.0
	)
	cfg := nexmark.LiveQueryConfig{Rate1: rateLow, Rate2: rateHigh, StepAt: stepAt, Seed: 1}

	// Run 1: in-process Controller.
	w1, err := nexmark.LiveQuery("q1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := w1.Optimal(rateHigh)
	job1, err := streamrt.NewJob(w1.Pipeline, w1.Initial, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer job1.Stop()
	ctrl, err := controlloop.New(streamrt.NewRuntime(job1), ds2For(t, w1),
		controlloop.Config{Interval: interval, MaxIntervals: intervals})
	if err != nil {
		t.Fatal(err)
	}
	trLocal, err := ctrl.Run()
	if err != nil {
		t.Fatalf("in-process run: %v\n%s", err, trLocal)
	}

	if !trLocal.Final.Equal(want) {
		t.Fatalf("final = %s, want the Table-4-consistent optimum %s\n%s", trLocal.Final, want, trLocal)
	}
	if trLocal.Decisions < 1 {
		t.Fatalf("no decisions taken\n%s", trLocal)
	}
	firstStep, lastAction := -1, -1
	for i, iv := range trLocal.Intervals {
		if firstStep < 0 && iv.Target > rateLow*1.5 {
			firstStep = i
		}
		if iv.Action != "" {
			if firstStep < 0 {
				t.Fatalf("decision before the step change at interval %d\n%s", i, trLocal)
			}
			lastAction = i
		}
	}
	if firstStep < 0 {
		t.Fatalf("step change never observed\n%s", trLocal)
	}
	if lastAction < 0 || lastAction > firstStep+2 {
		t.Fatalf("last action at interval %d, want within 3 intervals of the step at %d\n%s",
			lastAction, firstStep, trLocal)
	}
	if quiet := len(trLocal.Intervals) - 1 - lastAction; quiet < 3 {
		t.Fatalf("only %d quiet intervals after convergence\n%s", quiet, trLocal)
	}

	// Run 2: the identical job attached to ds2d over HTTP loopback.
	srv := service.NewServer(service.ServerConfig{})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := service.NewClient(hs.URL, nil)

	w2, err := nexmark.LiveQuery("q1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	job2, err := streamrt.NewJob(w2.Pipeline, w2.Initial, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer job2.Stop()
	g := w2.Pipeline.Graph()
	var ops []service.JobOperator
	var edges [][2]string
	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		ops = append(ops, service.JobOperator{Name: op.Name})
		for _, d := range g.Downstream(i) {
			edges = append(edges, [2]string{op.Name, g.Operator(d).Name})
		}
	}
	attached := streamrt.Attach(client, job2, service.JobSpec{
		Name:         "live-nexmark-q1",
		Operators:    ops,
		Edges:        edges,
		Initial:      w2.Initial,
		Autoscaler:   service.AutoscalerDS2,
		IntervalSec:  interval,
		MaxIntervals: intervals,
		Manager:      &service.ManagerConfig{TargetRateRatio: 0.8},
	})
	trRemote, err := attached.Run()
	if err != nil {
		t.Fatalf("attached run: %v\n%s", err, trRemote)
	}

	localSeq, remoteSeq := actionSeq(trLocal), actionSeq(trRemote)
	if fmt.Sprint(localSeq) != fmt.Sprint(remoteSeq) {
		t.Fatalf("decision sequences differ:\nlocal:  %v\nremote: %v\n%s\n%s",
			localSeq, remoteSeq, trLocal, trRemote)
	}
	if !trRemote.Final.Equal(want) {
		t.Fatalf("attached final = %s, want %s\n%s", trRemote.Final, want, trRemote)
	}
	if job2.Rescales() != trRemote.Decisions {
		t.Fatalf("live job performed %d rescales, service decided %d", job2.Rescales(), trRemote.Decisions)
	}
}
