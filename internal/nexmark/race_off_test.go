//go:build !race

package nexmark_test

const raceEnabled = false
