package nexmark_test

import (
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/nexmark"
	"ds2/internal/obs"
	"ds2/internal/streamrt"
)

// TestLiveQ1ExactWithBatchesInFlight is the batched-exchange
// conservation pin: small batches, a tight flush bound, and rapid
// repeated rescales while records are mid-batch. The drain cascade
// must flush every partial batch before each snapshot, so the sink
// aggregates stay byte-identical to the offline replay. Run under
// -race in CI.
func TestLiveQ1ExactWithBatchesInFlight(t *testing.T) {
	cfg := nexmark.LiveQueryConfig{Rate1: 6000, Seed: 23, Limit: 2400, Costs: fastCosts()}
	w, err := nexmark.LiveQuery("q1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := streamrt.NewJob(w.Pipeline, w.Initial, streamrt.Config{
		BatchSize:       64,
		FlushInterval:   time.Millisecond,
		ChannelCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	shapes := []dataflow.Parallelism{
		{nexmark.SrcBids: 2, "q1-map": 3, "q1-sink": 2},
		{nexmark.SrcBids: 1, "q1-map": 1, "q1-sink": 3},
		{nexmark.SrcBids: 2, "q1-map": 2, "q1-sink": 1},
		{nexmark.SrcBids: 1, "q1-map": 1, "q1-sink": 1},
	}
	for _, p := range shapes {
		time.Sleep(25 * time.Millisecond)
		if err := j.Rescale(p); err != nil {
			t.Fatal(err)
		}
	}
	j.Wait()
	states := j.Stop()

	want := nexmark.LiveExpectedQ1(cfg, cfg.Limit)
	got := states["q1-sink"]
	if len(got) != len(want) {
		t.Fatalf("%d auctions at the sink, want %d", len(got), len(want))
	}
	for key, agg := range want {
		if g, _ := got[key].(*nexmark.Q1Agg); g == nil || *g != agg {
			t.Errorf("auction %s: %+v, want %+v", key, got[key], agg)
		}
	}
}

// runLiveQ1Hot drives the live Q1 pipeline flat out (zero pacing
// costs, effectively unbounded rate) for b.N records — the same shape
// the BenchmarkLiveNexmark suite measures. A non-nil registry turns
// the telemetry exporter on, which must not change the per-record
// allocation profile.
func runLiveQ1Hot(b *testing.B, reg *obs.Registry) {
	cfg := nexmark.LiveQueryConfig{Rate1: 1e12, Seed: 5, Limit: int64(b.N),
		Costs: map[string]time.Duration{"q1-map": 0, "q1-sink": 0}}
	w, err := nexmark.LiveQuery("q1", cfg)
	if err != nil {
		b.Fatal(err)
	}
	j, err := streamrt.NewJob(w.Pipeline, w.Initial, streamrt.Config{
		LatencySampleEvery: 1 << 30,
		Metrics:            reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	j.Wait()
	j.Stop()
}

// runLiveQ1HotTraced is runLiveQ1Hot with the rescale tracer live in
// the measured window: one mid-stream rescale records a full span
// timeline (plus its phase/downtime histogram observations and the
// asynchronous first-record finisher) while b.N records flow. The
// trace machinery runs only inside the rescale, so its one-time
// allocations must amortize to zero per record.
func runLiveQ1HotTraced(b *testing.B, reg *obs.Registry) {
	cfg := nexmark.LiveQueryConfig{Rate1: 1e12, Seed: 5, Limit: int64(b.N),
		Costs: map[string]time.Duration{"q1-map": 0, "q1-sink": 0}}
	w, err := nexmark.LiveQuery("q1", cfg)
	if err != nil {
		b.Fatal(err)
	}
	j, err := streamrt.NewJob(w.Pipeline, w.Initial, streamrt.Config{
		LatencySampleEvery: 1 << 30,
		Metrics:            reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := j.Rescale(dataflow.Parallelism{nexmark.SrcBids: 1, "q1-map": 2, "q1-sink": 1}); err != nil {
		b.Fatal(err)
	}
	j.Wait()
	j.Stop()
}

// TestLiveQ1SteadyStateAllocFree pins the live hot path at zero
// allocations per record: pooled bids and results, recycled batches,
// and a reused encode buffer leave nothing to allocate once the
// pipeline warms up. Startup allocations (channels, instances, pools)
// amortize below 1/record at the iteration counts testing.Benchmark
// settles on; integer division truncates them away.
func TestLiveQ1SteadyStateAllocFree(t *testing.T) {
	pinLiveQ1Allocs(t, nil)
}

// TestLiveQ1ObservedAllocFree is the same pin with the metrics
// exporter wired in: per-batch flush counters and the 1/1024 latency
// sampler work entirely through pre-registered atomics, so observing
// the job must stay alloc-free per record too.
func TestLiveQ1ObservedAllocFree(t *testing.T) {
	pinLiveQ1Allocs(t, obs.NewRegistry())
}

// TestLiveQ1TracedAllocFree extends the pin to tracing-enabled runs: a
// rescale happens inside the measured window, so the span tree, the
// phase/downtime observations, and the first-record hook (an atomic
// CAS on the instance's record tail) are all live. Steady-state record
// processing must still round to 0 allocs/record — the trace's
// bounded, per-rescale allocations disappear in the integer division
// exactly like startup's do.
func TestLiveQ1TracedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation pin runs without -race")
	}
	if testing.Short() {
		t.Skip("benchmark-driven pin skipped in -short")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		runLiveQ1HotTraced(b, obs.NewRegistry())
	})
	if res.N < 100_000 {
		t.Skipf("only %d iterations — too few to amortize the rescale", res.N)
	}
	if allocs := res.AllocsPerOp(); allocs > 0 {
		t.Fatalf("traced live q1 allocates %d allocs/record (%d B/record), want 0",
			allocs, res.AllocedBytesPerOp())
	}
}

func pinLiveQ1Allocs(t *testing.T, reg *obs.Registry) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation pin runs without -race")
	}
	if testing.Short() {
		t.Skip("benchmark-driven pin skipped in -short")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		runLiveQ1Hot(b, reg)
	})
	if res.N < 100_000 {
		t.Skipf("only %d iterations — too few to amortize startup allocations", res.N)
	}
	if allocs := res.AllocsPerOp(); allocs > 0 {
		t.Fatalf("live q1 steady state allocates %d allocs/record (%d B/record), want 0",
			allocs, res.AllocedBytesPerOp())
	}
}
