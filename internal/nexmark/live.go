package nexmark

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/streamrt"
)

// This file ports the Nexmark queries onto the live dataflow runtime
// (internal/streamrt): really-executing pipelines whose operators run
// the same per-record logic as the reference implementations in
// exec.go, paced by per-record costs so DS2 can scale them from
// wall-clock instrumentation alone. Q1/Q2 are the map-filter pair, Q3
// the incremental keyed join, Q5 the sliding hot-items window and Q8
// the tumbling-window join — the Table 4 set as far as the runtime's
// processing-time operator model reaches (Q11's session windows need
// event-time gaps and stay on the simulator for now).
//
// Sources are seq-addressable and pure — LiveBidAt/LivePersonAt/
// LiveAuctionAt(seed, seq) — so the runtime's surviving sequence
// counters make every stream element processed exactly once across
// rescales, and the LiveExpected* oracles can replay the identical
// stream offline to pin output correctness.

// Live stream universes. Bids draw auctions from a fixed universe so
// keyed state stays bounded and hash partitioning balances; auctions
// draw sellers from a smaller universe so the Q3/Q8 joins actually
// match.
const (
	LiveAuctionUniverse = 100
	LiveSellerUniverse  = 64
)

// liveRNG builds the per-element generator of the pure stream
// functions — the same splitmix-style seq mixing the live wordcount
// stream uses.
func liveRNG(seed, seq int64) int64 {
	return seed ^ (seq+1)*0x5E3779B97F4A7C15
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Each generator draws exactly three values from its freshly-seeded
// generator, so the first-three-draws closed form of fastrand.go
// replaces the full rand.New seed expansion (the dominant per-element
// cost) with a handful of modmuls — byte-identical, with the real
// generator as fallback for the rejection-sampling corner cases and
// for builds where the init self-check tripped.

// LiveBidAt returns the seq-th bid of the deterministic live bid
// stream.
func LiveBidAt(seed, seq int64) Bid {
	s := liveRNG(seed, seq)
	if fastOK {
		d1, d2, d3 := fastDraws3(s)
		a, ok1 := fastInt63n(d1, LiveAuctionUniverse)
		b, ok2 := fastInt63n(d2, 1024)
		p, ok3 := fastInt63n(d3, 100_000)
		if ok1 && ok2 && ok3 {
			return Bid{Auction: 1 + a, Bidder: 1 + b, Price: 100 + p, Time: seq}
		}
	}
	rng := newRand(s)
	return Bid{
		Auction: 1 + rng.Int63n(LiveAuctionUniverse),
		Bidder:  1 + rng.Int63n(1024),
		Price:   100 + rng.Int63n(100_000),
		Time:    seq,
	}
}

// LivePersonAt returns the seq-th person registration. IDs are unique
// (seq+1), so every (person, auction) join pair exists at most once
// and join outputs are order-independent — the property the
// byte-exactness oracles rely on.
func LivePersonAt(seed, seq int64) Person {
	s := liveRNG(seed+0x9E37, seq)
	if fastOK {
		d1, d2, d3 := fastDraws3(s)
		name, ok1 := fastIntn(d1, len(firstNames))
		city, ok2 := fastIntn(d2, len(cities))
		state, ok3 := fastIntn(d3, len(states))
		if ok1 && ok2 && ok3 {
			return Person{ID: seq + 1, Name: firstNames[name], City: cities[city], State: states[state]}
		}
	}
	rng := newRand(s)
	return Person{
		ID:    seq + 1,
		Name:  firstNames[rng.Intn(len(firstNames))],
		City:  cities[rng.Intn(len(cities))],
		State: states[rng.Intn(len(states))],
	}
}

// LiveAuctionAt returns the seq-th auction opening; sellers are drawn
// from the seller universe (only persons with those IDs ever match).
func LiveAuctionAt(seed, seq int64) Auction {
	s := liveRNG(seed+0x51F0, seq)
	if fastOK {
		d1, d2, d3 := fastDraws3(s)
		sell, ok1 := fastInt63n(d1, LiveSellerUniverse)
		cat, ok2 := fastIntn(d2, 10)
		res, ok3 := fastInt63n(d3, 10_000)
		if ok1 && ok2 && ok3 {
			return Auction{ID: seq + 1, Seller: 1 + sell, Category: cat, Reserve: 100 + res, Expires: seq + 60_000}
		}
	}
	rng := newRand(s)
	return Auction{
		ID:       seq + 1,
		Seller:   1 + rng.Int63n(LiveSellerUniverse),
		Category: rng.Intn(10),
		Reserve:  100 + rng.Int63n(10_000),
		Expires:  seq + 60_000,
	}
}

// bidPool and q1ResultPool recycle the records traveling the Q1/Q2/Q5
// hot path. Ownership is hand-to-hand: whoever consumes a pooled value
// (the codec when it encodes, the final Process otherwise) returns it.
var bidPool = sync.Pool{New: func() any { return new(Bid) }}
var q1ResultPool = sync.Pool{New: func() any { return new(Q1Result) }}

// liveAuctionKeys and liveSellerKeys precompute the partition-key
// strings of the fixed universes, so sources and filters never call
// strconv per record.
var liveAuctionKeys, liveSellerKeys [101]string

func init() {
	for i := range liveAuctionKeys {
		liveAuctionKeys[i] = strconv.Itoa(i)
	}
	liveSellerKeys = liveAuctionKeys
}

// bidWire is the encoded size of one bid: four little-endian int64s.
// Record framing is the exchange batch header's job, so the encoding
// itself carries no length prefix.
const bidWire = 32

// BidCodec moves bids over the exchange as fixed-width binary records,
// so the deserialization/serialization split of §3 measures real
// encoding work without encoding/json's per-record allocations. Both
// directions speak pooled *Bid values: AppendEncode recycles the bid
// it consumes, Decode hands out a pooled bid owned by the receiving
// Process.
type BidCodec struct{}

// AppendEncode implements streamrt.AppendEncoder.
func (BidCodec) AppendEncode(dst []byte, v any) []byte {
	b := v.(*Bid)
	var w [bidWire]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(b.Auction))
	binary.LittleEndian.PutUint64(w[8:], uint64(b.Bidder))
	binary.LittleEndian.PutUint64(w[16:], uint64(b.Price))
	binary.LittleEndian.PutUint64(w[24:], uint64(b.Time))
	bidPool.Put(b)
	return append(dst, w[:]...)
}

// Encode implements streamrt.Codec (the runtime prefers AppendEncode).
func (c BidCodec) Encode(v any) []byte { return c.AppendEncode(nil, v) }

// Decode implements streamrt.Codec.
func (BidCodec) Decode(p []byte) any {
	if len(p) != bidWire {
		panic(fmt.Sprintf("nexmark: bid record of %d bytes, want %d", len(p), bidWire))
	}
	b := bidPool.Get().(*Bid)
	b.Auction = int64(binary.LittleEndian.Uint64(p[0:]))
	b.Bidder = int64(binary.LittleEndian.Uint64(p[8:]))
	b.Price = int64(binary.LittleEndian.Uint64(p[16:]))
	b.Time = int64(binary.LittleEndian.Uint64(p[24:]))
	return b
}

// LiveQueryConfig parameterizes one live Nexmark query.
type LiveQueryConfig struct {
	// Rate1 is the primary-source rate in events/s until StepAt
	// seconds of job time, Rate2 after (StepAt <= 0 keeps Rate1). The
	// primary source is bids (Q1/Q2/Q5) or auctions (Q3/Q8); the
	// persons source of the join queries runs at a quarter of it,
	// echoing the paper's auctions-dominate mix (Table 3).
	Rate1, Rate2 float64
	StepAt       float64
	// Seed makes every stream deterministic.
	Seed int64
	// Limit bounds the primary source (events; 0 = unbounded); the
	// persons source is bounded at Limit/4. A bounded job drains, so
	// final keyed states are exact.
	Limit int64
	// Costs overrides per-stage per-record pacing costs by operator
	// name; missing stages use liveDefaultCosts. Use
	// LiveCalibratedCost to derive the main stage's cost from the
	// measured reference-implementation calibration instead.
	Costs map[string]time.Duration
	// WindowSize and WindowSlide shape Q5/Q8 windows (processing
	// time). Defaults: Q5 500ms sliding by 250ms, Q8 400ms tumbling.
	// WindowSlide is ignored for Q8 (tumbling by definition).
	WindowSize, WindowSlide time.Duration
	// Distributed equips the pipeline for multi-process deployment
	// (streamrt.Cluster): every exchange edge gets a wire codec and
	// every keyed operator a state codec, so records and rescale
	// snapshots can cross processes. Off, the single-process hot path
	// is byte-for-byte the same pipeline as before the distributed
	// runtime existed. Supported for q1 and q5.
	Distributed bool
}

func (c LiveQueryConfig) withDefaults() LiveQueryConfig {
	if c.Rate1 <= 0 {
		c.Rate1 = 100
	}
	return c
}

// personsShare derives the persons-source bound from the primary
// bound. A bounded primary must bound persons too — 0 would mean
// unbounded and the job would never drain — so tiny limits round up
// to one person.
func personsShare(limit int64) int64 {
	if limit <= 0 {
		return 0
	}
	if limit < 4 {
		return 1
	}
	return limit / 4
}

// liveDefaultCosts paces each stage so the convergence demos land
// mid-bucket: at 400 events/s the main stages need exactly 2
// instances (e.g. q1-map: 400/s x 4ms = 1.6) and the sinks stay at 1.
var liveDefaultCosts = map[string]time.Duration{
	"q1-map":             4 * time.Millisecond,
	"q1-sink":            time.Millisecond,
	"q2-filter":          4 * time.Millisecond,
	"q2-sink":            2 * time.Millisecond,
	"q3-filter-persons":  2 * time.Millisecond,
	"q3-filter-auctions": 4 * time.Millisecond,
	"q3-join":            3 * time.Millisecond,
	"q3-sink":            time.Millisecond,
	"q5-window":          4 * time.Millisecond,
	"q5-sink":            2 * time.Millisecond,
	"q8-join":            4 * time.Millisecond,
	"q8-sink":            time.Millisecond,
}

func (c LiveQueryConfig) cost(stage string) time.Duration {
	if d, ok := c.Costs[stage]; ok {
		return d
	}
	return liveDefaultCosts[stage]
}

// LiveCalibratedCost derives a live pacing cost for a query's main
// stage from the measured reference-implementation calibration
// (cmd/nexmark-calibrate): the measured ns/record scaled by `scale`.
// The raw measured cost is what a real deployment would pace with;
// the scale lets demos slow it to rates a laptop-friendly source can
// saturate.
func LiveCalibratedCost(query string, n int, scale float64) (time.Duration, error) {
	if scale <= 0 {
		return 0, fmt.Errorf("nexmark: calibrated-cost scale %v <= 0", scale)
	}
	cals, err := Calibrate(query, n)
	if err != nil {
		return 0, err
	}
	return time.Duration(cals[0].NsPerRecord * scale), nil
}

// LiveWorkload bundles one query's live pipeline with the control
// metadata the front ends need.
type LiveWorkload struct {
	Query    string
	Pipeline *streamrt.Pipeline
	// Initial is the all-ones starting configuration.
	Initial dataflow.Parallelism
	// Main is the operator whose provisioning the paper reports
	// (Table 4 / Fig. 8).
	Main string
	// Optimal returns the analytic optimum at a primary-source rate —
	// the Table-4-consistent configuration DS2 should reach.
	Optimal func(rate float64) dataflow.Parallelism
}

// LiveQueryNames lists the queries ported to the live runtime, in
// paper order.
func LiveQueryNames() []string { return []string{"q1", "q2", "q3", "q5", "q8"} }

// LiveQuery builds the named query on the live runtime.
func LiveQuery(name string, cfg LiveQueryConfig) (*LiveWorkload, error) {
	cfg = cfg.withDefaults()
	switch name {
	case "q1":
		return liveQ1(cfg)
	case "q2":
		return liveQ2(cfg)
	case "q3":
		return liveQ3(cfg)
	case "q5":
		return liveQ5(cfg)
	case "q8":
		return liveQ8(cfg)
	default:
		return nil, fmt.Errorf("nexmark: no live port of query %q (have %v)", name, LiveQueryNames())
	}
}

// liveRate builds the stepped rate function at a share of the primary
// rate.
func (c LiveQueryConfig) liveRate(share float64) func(float64) float64 {
	return func(t float64) float64 {
		r := c.Rate1
		if c.StepAt > 0 && t >= c.StepAt {
			r = c.Rate2
		}
		return r * share
	}
}

// bidSource is the shared bids source of Q1/Q2/Q5, keyed by auction so
// downstream keyed stages partition by the natural key. Bids travel as
// pooled pointers; the BidCodec edge into the first operator recycles
// them at encode time.
func (c LiveQueryConfig) bidSource() streamrt.TypedSource[*Bid] {
	return streamrt.TypedSource[*Bid]{
		Rate: c.liveRate(1),
		Next: func(seq int64) (string, *Bid) {
			b := bidPool.Get().(*Bid)
			*b = LiveBidAt(c.Seed, seq)
			return liveAuctionKeys[b.Auction], b
		},
		Limit: c.Limit,
	}
}

// typedPipeline starts a typed builder, marked distributed when the
// config asks for a multi-process deployment so Compile enforces codec
// completeness at build time.
func (c LiveQueryConfig) typedPipeline() *streamrt.TypedBuilder {
	tb := streamrt.NewTypedPipeline()
	if c.Distributed {
		tb.Distributed()
	}
	return tb
}

// personsSource and auctionsSource are the typed join-query sources.
func (c LiveQueryConfig) personsSource() streamrt.TypedSource[Person] {
	return streamrt.TypedSource[Person]{
		Rate: c.liveRate(0.25),
		Next: func(seq int64) (string, Person) {
			p := LivePersonAt(c.Seed, seq)
			return strconv.FormatInt(p.ID, 10), p
		},
		Limit: personsShare(c.Limit),
	}
}

func (c LiveQueryConfig) auctionsSource() streamrt.TypedSource[Auction] {
	return streamrt.TypedSource[Auction]{
		Rate: c.liveRate(1),
		Next: func(seq int64) (string, Auction) {
			a := LiveAuctionAt(c.Seed, seq)
			return liveSellerKeys[a.Seller], a
		},
		Limit: c.Limit,
	}
}

// need converts a stage's demand (input rate x cost) into instances.
func need(rate float64, cost time.Duration) int {
	n := int(math.Ceil(rate * cost.Seconds()))
	if n < 1 {
		n = 1
	}
	return n
}

// Q1Agg is the Q1 sink's per-auction aggregate: converted bids seen
// and the euro checksum the exactness tests compare.
type Q1Agg struct {
	Count   int
	EuroSum int64
}

// liveQ1 — currency conversion: bids → stateless map (dollars to
// euros, binary exchange) → keyed sink accumulating per-auction euro
// sums. Records and per-key aggregates are pooled/pointered so the
// whole path allocates nothing per record in steady state; Stop()
// therefore returns *Q1Agg states.
func liveQ1(cfg LiveQueryConfig) (*LiveWorkload, error) {
	mapCost, sinkCost := cfg.cost("q1-map"), cfg.cost("q1-sink")
	mapSpec := streamrt.TypedOperator[*Bid, *Q1Result, any]{
		Process: func(_ any, key string, b *Bid, emit streamrt.TypedEmit[*Q1Result]) any {
			r := q1ResultPool.Get().(*Q1Result)
			r.Auction = b.Auction
			r.Bidder = b.Bidder
			r.PriceEUR = DollarsToEuros(b.Price)
			r.Time = b.Time
			bidPool.Put(b)
			emit.Emit(key, r)
			return nil
		},
		Cost:  mapCost,
		Codec: BidCodec{},
	}
	sinkSpec := streamrt.TypedOperator[*Q1Result, any, *Q1Agg]{
		Keyed: true,
		Process: func(agg *Q1Agg, _ string, r *Q1Result, _ streamrt.TypedEmit[any]) *Q1Agg {
			if agg == nil {
				agg = new(Q1Agg)
			}
			agg.Count++
			agg.EuroSum += r.PriceEUR
			q1ResultPool.Put(r)
			return agg
		},
		Cost: sinkCost,
		// The state codec is unconditional so single-process q1 jobs
		// are savepointable; the record codec matters only when an
		// exchange crosses processes.
		State: q1AggStateCodec{},
	}
	if cfg.Distributed {
		sinkSpec.Codec = Q1ResultCodec{}
	}
	tb := cfg.typedPipeline()
	streamrt.AddTypedSource(tb, SrcBids, cfg.bidSource())
	streamrt.AddTypedOperator(tb, "q1-map", mapSpec)
	streamrt.AddTypedOperator(tb, "q1-sink", sinkSpec)
	p, err := tb.
		AddEdge(SrcBids, "q1-map").
		AddEdge("q1-map", "q1-sink").
		Compile()
	if err != nil {
		return nil, err
	}
	return &LiveWorkload{
		Query:    "q1",
		Pipeline: p,
		Initial:  dataflow.Parallelism{SrcBids: 1, "q1-map": 1, "q1-sink": 1},
		Main:     "q1-map",
		Optimal: func(rate float64) dataflow.Parallelism {
			return dataflow.Parallelism{
				SrcBids:   1,
				"q1-map":  need(rate, mapCost),
				"q1-sink": need(rate, sinkCost), // selectivity 1
			}
		},
	}, nil
}

// liveQ2 — selection: bids → filter (auction set, ~20% pass) → keyed
// sink counting kept bids per auction.
func liveQ2(cfg LiveQueryConfig) (*LiveWorkload, error) {
	filterCost, sinkCost := cfg.cost("q2-filter"), cfg.cost("q2-sink")
	tb := cfg.typedPipeline()
	streamrt.AddTypedSource(tb, SrcBids, cfg.bidSource())
	streamrt.AddTypedOperator(tb, "q2-filter", streamrt.TypedOperator[*Bid, Bid, any]{
		Process: func(_ any, key string, b *Bid, emit streamrt.TypedEmit[Bid]) any {
			if Q2AuctionFilter(b) {
				emit.Emit(key, *b)
			}
			bidPool.Put(b)
			return nil
		},
		Cost:  filterCost,
		Codec: BidCodec{},
	})
	streamrt.AddTypedOperator(tb, "q2-sink", streamrt.TypedOperator[Bid, any, int]{
		Keyed: true,
		Process: func(c int, _ string, _ Bid, _ streamrt.TypedEmit[any]) int {
			return c + 1
		},
		Cost: sinkCost,
	})
	p, err := tb.
		AddEdge(SrcBids, "q2-filter").
		AddEdge("q2-filter", "q2-sink").
		Compile()
	if err != nil {
		return nil, err
	}
	return &LiveWorkload{
		Query:    "q2",
		Pipeline: p,
		Initial:  dataflow.Parallelism{SrcBids: 1, "q2-filter": 1, "q2-sink": 1},
		Main:     "q2-filter",
		Optimal: func(rate float64) dataflow.Parallelism {
			return dataflow.Parallelism{
				SrcBids:     1,
				"q2-filter": need(rate, filterCost),
				"q2-sink":   need(rate*0.2, sinkCost), // 20 of the 100 auctions pass
			}
		},
	}, nil
}

// Q3Agg is the Q3 sink's per-seller aggregate: join matches and an
// auction-id checksum.
type Q3Agg struct {
	Matches    int
	AuctionSum int64
}

// q3JoinState is one seller's incremental join state. It is a plain
// exported-field struct so the rescale snapshot carries it opaquely.
type q3JoinState struct {
	Person   *Person
	Auctions []int64
}

// liveQ3 — local item suggestion: persons and auctions filtered, then
// an incremental record-at-a-time keyed join on seller id. Each
// (person, auction) pair is emitted exactly once regardless of arrival
// interleaving (persons are unique), so sink aggregates are
// deterministic across rescales.
func liveQ3(cfg LiveQueryConfig) (*LiveWorkload, error) {
	fpCost, faCost := cfg.cost("q3-filter-persons"), cfg.cost("q3-filter-auctions")
	joinCost, sinkCost := cfg.cost("q3-join"), cfg.cost("q3-sink")
	tb := cfg.typedPipeline()
	streamrt.AddTypedSource(tb, SrcPersons, cfg.personsSource())
	streamrt.AddTypedSource(tb, SrcAuctions, cfg.auctionsSource())
	streamrt.AddTypedOperator(tb, "q3-filter-persons", streamrt.TypedOperator[Person, Person, any]{
		Process: func(_ any, key string, p Person, emit streamrt.TypedEmit[Person]) any {
			if q3States[p.State] {
				emit.Emit(key, p)
			}
			return nil
		},
		Cost: fpCost,
	})
	streamrt.AddTypedOperator(tb, "q3-filter-auctions", streamrt.TypedOperator[Auction, Auction, any]{
		Process: func(_ any, key string, a Auction, emit streamrt.TypedEmit[Auction]) any {
			if a.Category == q3Category {
				emit.Emit(key, a)
			}
			return nil
		},
		Cost: faCost,
	})
	// The join consumes both Person and Auction records, so its input
	// type is the `any` escape hatch — Compile accepts both upstream
	// edges and the dynamic switch below keeps doing the dispatch.
	streamrt.AddTypedOperator(tb, "q3-join", streamrt.TypedOperator[any, Q3Result, *q3JoinState]{
		Keyed: true,
		Process: func(st *q3JoinState, key string, v any, emit streamrt.TypedEmit[Q3Result]) *q3JoinState {
			if st == nil {
				st = &q3JoinState{}
			}
			switch rec := v.(type) {
			case Person:
				st.Person = &rec
				for _, aid := range st.Auctions {
					emit.Emit(key, Q3Result{Name: rec.Name, City: rec.City, State: rec.State, Auction: aid})
				}
			case Auction:
				st.Auctions = append(st.Auctions, rec.ID)
				if p := st.Person; p != nil {
					emit.Emit(key, Q3Result{Name: p.Name, City: p.City, State: p.State, Auction: rec.ID})
				}
			}
			return st
		},
		Cost: joinCost,
	})
	streamrt.AddTypedOperator(tb, "q3-sink", streamrt.TypedOperator[Q3Result, any, Q3Agg]{
		Keyed: true,
		Process: func(agg Q3Agg, _ string, r Q3Result, _ streamrt.TypedEmit[any]) Q3Agg {
			agg.Matches++
			agg.AuctionSum += r.Auction
			return agg
		},
		Cost: sinkCost,
	})
	p, err := tb.
		AddEdge(SrcPersons, "q3-filter-persons").
		AddEdge(SrcAuctions, "q3-filter-auctions").
		AddEdge("q3-filter-persons", "q3-join").
		AddEdge("q3-filter-auctions", "q3-join").
		AddEdge("q3-join", "q3-sink").
		Compile()
	if err != nil {
		return nil, err
	}
	return &LiveWorkload{
		Query:    "q3",
		Pipeline: p,
		Initial: dataflow.Parallelism{
			SrcPersons: 1, SrcAuctions: 1,
			"q3-filter-persons": 1, "q3-filter-auctions": 1, "q3-join": 1, "q3-sink": 1,
		},
		Main: "q3-join",
		Optimal: func(rate float64) dataflow.Parallelism {
			// persons at rate/4, half pass the state filter; a tenth
			// of auctions pass the category filter.
			joinIn := rate/4*0.5 + rate*0.1
			return dataflow.Parallelism{
				SrcPersons:           1,
				SrcAuctions:          1,
				"q3-filter-persons":  need(rate/4, fpCost),
				"q3-filter-auctions": need(rate, faCost),
				"q3-join":            need(joinIn, joinCost),
				"q3-sink":            need(joinIn, sinkCost),
			}
		},
	}, nil
}

// Q5Agg is the Q5 sink's per-auction aggregate: fired windows and the
// total bids they reported.
type Q5Agg struct {
	Windows int
	Bids    int
}

// liveQ5 — hot items: bids → sliding-window per-auction bid count
// (keyed windowed operator; panes survive rescales) → keyed sink
// accumulating fired counts.
func liveQ5(cfg LiveQueryConfig) (*LiveWorkload, error) {
	size, slide := cfg.WindowSize, cfg.WindowSlide
	if size <= 0 {
		size, slide = 500*time.Millisecond, 250*time.Millisecond
	}
	winCost, sinkCost := cfg.cost("q5-window"), cfg.cost("q5-sink")
	winSpec := streamrt.TypedOperator[*Bid, int, int]{
		Keyed: true,
		Process: func(c int, _ string, b *Bid, _ streamrt.TypedEmit[int]) int {
			bidPool.Put(b) // only the bid's arrival counts
			return c + 1
		},
		Cost:  winCost,
		Codec: BidCodec{},
		Window: &streamrt.TypedWindow[int, int]{
			Size:    size,
			Slide:   slide,
			Fire:    func(key string, agg int, emit streamrt.TypedEmit[int]) { emit.Emit(key, agg) },
			Combine: func(a, b int) int { return a + b },
		},
	}
	sinkSpec := streamrt.TypedOperator[int, any, Q5Agg]{
		Keyed: true,
		Process: func(agg Q5Agg, _ string, v int, _ streamrt.TypedEmit[any]) Q5Agg {
			agg.Windows++
			agg.Bids += v
			return agg
		},
		Cost: sinkCost,
	}
	// State codecs are unconditional so single-process q5 jobs are
	// savepointable; the exchange record codec is distributed-only.
	winSpec.State = intStateCodec{} // pane aggregate: per-key bid count
	sinkSpec.State = q5AggStateCodec{}
	if cfg.Distributed {
		sinkSpec.Codec = IntCodec{}
	}
	tb := cfg.typedPipeline()
	streamrt.AddTypedSource(tb, SrcBids, cfg.bidSource())
	streamrt.AddTypedOperator(tb, "q5-window", winSpec)
	streamrt.AddTypedOperator(tb, "q5-sink", sinkSpec)
	p, err := tb.
		AddEdge(SrcBids, "q5-window").
		AddEdge("q5-window", "q5-sink").
		Compile()
	if err != nil {
		return nil, err
	}
	return &LiveWorkload{
		Query:    "q5",
		Pipeline: p,
		Initial:  dataflow.Parallelism{SrcBids: 1, "q5-window": 1, "q5-sink": 1},
		Main:     "q5-window",
		Optimal: func(rate float64) dataflow.Parallelism {
			// Sink load is one fired record per hot auction per slide —
			// negligible next to the per-bid window inserts.
			fires := float64(LiveAuctionUniverse) / slideOf(size, slide).Seconds()
			return dataflow.Parallelism{
				SrcBids:     1,
				"q5-window": need(rate, winCost),
				"q5-sink":   need(fires, sinkCost),
			}
		},
	}, nil
}

// slideOf normalizes a (size, slide) pair the way WindowSpec does.
func slideOf(size, slide time.Duration) time.Duration {
	if slide <= 0 {
		return size
	}
	return slide
}

// Q8Pane is one seller's tumbling-window join pane: the persons and
// auctions that arrived in the window. Exported so tests can inspect
// residual panes after Stop.
type Q8Pane struct {
	Persons  []Person
	Auctions []int64
}

// liveQ8 — monitor new users: persons and auctions into a
// tumbling-window keyed join; a window fires the number of (person,
// auction) pairs that registered within it.
func liveQ8(cfg LiveQueryConfig) (*LiveWorkload, error) {
	size := cfg.WindowSize
	if size <= 0 {
		size = 400 * time.Millisecond
	}
	joinCost, sinkCost := cfg.cost("q8-join"), cfg.cost("q8-sink")
	tb := cfg.typedPipeline()
	streamrt.AddTypedSource(tb, SrcPersons, cfg.personsSource())
	streamrt.AddTypedSource(tb, SrcAuctions, cfg.auctionsSource())
	streamrt.AddTypedOperator(tb, "q8-join", streamrt.TypedOperator[any, int, *Q8Pane]{
		Keyed: true,
		Process: func(pane *Q8Pane, _ string, v any, _ streamrt.TypedEmit[int]) *Q8Pane {
			if pane == nil {
				pane = &Q8Pane{}
			}
			switch rec := v.(type) {
			case Person:
				pane.Persons = append(pane.Persons, rec)
			case Auction:
				pane.Auctions = append(pane.Auctions, rec.ID)
			}
			return pane
		},
		Cost: joinCost,
		Window: &streamrt.TypedWindow[*Q8Pane, int]{
			Size: size, // tumbling
			Fire: func(key string, pane *Q8Pane, emit streamrt.TypedEmit[int]) {
				if n := len(pane.Persons) * len(pane.Auctions); n > 0 {
					emit.Emit(key, n)
				}
			},
		},
	})
	streamrt.AddTypedOperator(tb, "q8-sink", streamrt.TypedOperator[int, any, int]{
		Keyed: true,
		Process: func(c int, _ string, v int, _ streamrt.TypedEmit[any]) int {
			return c + v
		},
		Cost: sinkCost,
	})
	p, err := tb.
		AddEdge(SrcPersons, "q8-join").
		AddEdge(SrcAuctions, "q8-join").
		AddEdge("q8-join", "q8-sink").
		Compile()
	if err != nil {
		return nil, err
	}
	return &LiveWorkload{
		Query:    "q8",
		Pipeline: p,
		Initial:  dataflow.Parallelism{SrcPersons: 1, SrcAuctions: 1, "q8-join": 1, "q8-sink": 1},
		Main:     "q8-join",
		Optimal: func(rate float64) dataflow.Parallelism {
			joinIn := rate + rate/4
			fires := float64(LiveSellerUniverse) / size.Seconds()
			return dataflow.Parallelism{
				SrcPersons:  1,
				SrcAuctions: 1,
				"q8-join":   need(joinIn, joinCost),
				"q8-sink":   need(fires, sinkCost),
			}
		},
	}, nil
}

// --- Offline replay oracles ---------------------------------------------

// LiveExpectedQ1 replays bids 0..n-1 through Q1's logic: per-auction
// converted-bid counts and euro checksums.
func LiveExpectedQ1(cfg LiveQueryConfig, n int64) map[string]Q1Agg {
	out := make(map[string]Q1Agg)
	for seq := int64(0); seq < n; seq++ {
		b := LiveBidAt(cfg.Seed, seq)
		key := strconv.FormatInt(b.Auction, 10)
		agg := out[key]
		agg.Count++
		agg.EuroSum += DollarsToEuros(b.Price)
		out[key] = agg
	}
	return out
}

// LiveExpectedQ2 replays bids 0..n-1 through Q2's filter: per-auction
// kept-bid counts.
func LiveExpectedQ2(cfg LiveQueryConfig, n int64) map[string]int {
	out := make(map[string]int)
	for seq := int64(0); seq < n; seq++ {
		b := LiveBidAt(cfg.Seed, seq)
		if Q2AuctionFilter(&b) {
			out[strconv.FormatInt(b.Auction, 10)]++
		}
	}
	return out
}

// LiveExpectedQ3 replays persons 0..personsShare(n)-1 and auctions
// 0..n-1 through Q3's filters and join. The pair set is independent of
// arrival interleaving, so this is the exact sink oracle.
func LiveExpectedQ3(cfg LiveQueryConfig, n int64) map[string]Q3Agg {
	persons := make(map[int64]bool)
	for seq := int64(0); seq < personsShare(n); seq++ {
		p := LivePersonAt(cfg.Seed, seq)
		if q3States[p.State] {
			persons[p.ID] = true
		}
	}
	out := make(map[string]Q3Agg)
	for seq := int64(0); seq < n; seq++ {
		a := LiveAuctionAt(cfg.Seed, seq)
		if a.Category != q3Category || !persons[a.Seller] {
			continue
		}
		key := strconv.FormatInt(a.Seller, 10)
		agg := out[key]
		agg.Matches++
		agg.AuctionSum += a.ID
		out[key] = agg
	}
	return out
}

// LiveExpectedBidCounts replays bids 0..n-1 into per-auction totals —
// the conservation oracle for Q5's window path (fired plus residual
// pane counts must add up to it exactly).
func LiveExpectedBidCounts(cfg LiveQueryConfig, n int64) map[string]int {
	out := make(map[string]int)
	for seq := int64(0); seq < n; seq++ {
		out[strconv.FormatInt(LiveBidAt(cfg.Seed, seq).Auction, 10)]++
	}
	return out
}

// LiveExpectedQ8Universe replays persons and auctions into per-seller
// totals — the single-window oracle: with a window larger than the
// bounded run, the residual pane per seller must hold exactly these.
func LiveExpectedQ8Universe(cfg LiveQueryConfig, n int64) map[string]Q8Pane {
	out := make(map[string]Q8Pane)
	for seq := int64(0); seq < personsShare(n); seq++ {
		p := LivePersonAt(cfg.Seed, seq)
		key := strconv.FormatInt(p.ID, 10)
		pane := out[key]
		pane.Persons = append(pane.Persons, p)
		out[key] = pane
	}
	for seq := int64(0); seq < n; seq++ {
		a := LiveAuctionAt(cfg.Seed, seq)
		key := strconv.FormatInt(a.Seller, 10)
		pane := out[key]
		pane.Auctions = append(pane.Auctions, a.ID)
		out[key] = pane
	}
	return out
}
