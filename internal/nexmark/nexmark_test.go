package nexmark

import (
	"encoding/json"
	"math"
	"testing"

	"ds2/internal/core"
	"ds2/internal/engine"
)

func TestGeneratorMixAndDeterminism(t *testing.T) {
	g, err := NewGenerator(42, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventKind]int{}
	var prevTime int64 = -1
	for i := 0; i < 5000; i++ {
		ev := g.Next()
		counts[ev.Kind]++
		if ev.Time <= prevTime {
			t.Fatalf("event time not increasing: %d after %d", ev.Time, prevTime)
		}
		prevTime = ev.Time
		switch ev.Kind {
		case KindPerson:
			if ev.Person == nil {
				t.Fatal("person event without payload")
			}
		case KindAuction:
			if ev.Auction == nil {
				t.Fatal("auction event without payload")
			}
		case KindBid:
			if ev.Bid == nil {
				t.Fatal("bid event without payload")
			}
			if ev.Bid.Auction < 1 {
				t.Fatal("bid references no auction")
			}
		}
	}
	// 1 person : 3 auctions : 46 bids per 50 events.
	if counts[KindPerson] != 100 || counts[KindAuction] != 300 || counts[KindBid] != 4600 {
		t.Errorf("mix = %v, want 100/300/4600", counts)
	}
	// Determinism.
	g2, _ := NewGenerator(42, 1000)
	ev := g2.Next()
	g3, _ := NewGenerator(42, 1000)
	if ev2 := g3.Next(); ev.Kind != ev2.Kind || ev.Time != ev2.Time {
		t.Error("generator not deterministic")
	}
	if _, err := NewGenerator(1, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestEventsSerializable(t *testing.T) {
	g, _ := NewGenerator(1, 100)
	for i := 0; i < 60; i++ {
		ev := g.Next()
		var payload any
		switch ev.Kind {
		case KindPerson:
			payload = ev.Person
		case KindAuction:
			payload = ev.Auction
		default:
			payload = ev.Bid
		}
		if _, err := json.Marshal(payload); err != nil {
			t.Fatalf("marshal %v: %v", ev.Kind, err)
		}
	}
}

func TestHelpers(t *testing.T) {
	if DollarsToEuros(100) != 89 {
		t.Error("DollarsToEuros")
	}
	if !Q2AuctionFilter(&Bid{Auction: 10}) || Q2AuctionFilter(&Bid{Auction: 11}) {
		t.Error("Q2AuctionFilter")
	}
	if KindPerson.String() != "person" || KindBid.String() != "bid" || KindAuction.String() != "auction" {
		t.Error("EventKind names")
	}
	if SystemFlink.String() != "flink" || SystemTimely.String() != "timely" {
		t.Error("System names")
	}
}

func TestAllQueriesBuild(t *testing.T) {
	for _, name := range QueryNames() {
		for _, sys := range []System{SystemFlink, SystemTimely} {
			w, err := Query(name, sys)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, sys, err)
			}
			if w.MainOperator == "" || w.Graph.IndexOf(w.MainOperator) < 0 {
				t.Errorf("%s/%v: bad main operator %q", name, sys, w.MainOperator)
			}
			// Specs cover every non-source operator; sources covered.
			for i, opName := range w.Graph.Names() {
				if i < w.Graph.NumSources() {
					if _, ok := w.Sources[opName]; !ok {
						t.Errorf("%s/%v: missing source spec %q", name, sys, opName)
					}
				} else if _, ok := w.Specs[opName]; !ok {
					t.Errorf("%s/%v: missing op spec %q", name, sys, opName)
				}
			}
			if w.Indicated < 1 {
				t.Errorf("%s/%v: indicated %d", name, sys, w.Indicated)
			}
			// The engine must accept the workload as-is.
			if _, err := engine.New(w.Graph, w.Specs, w.Sources, w.InitialParallelism(2),
				engine.Config{Mode: engine.ModeFlink}); err != nil {
				t.Errorf("%s/%v: engine rejects workload: %v", name, sys, err)
			}
		}
	}
	if _, err := Query("q99", SystemFlink); err == nil {
		t.Error("unknown query accepted")
	}
}

// TestFlinkCalibration checks the cost model arithmetic: for the main
// operator of every query, the paper's indicated parallelism is the
// minimum whose capacity covers the operator's input rate.
func TestFlinkCalibration(t *testing.T) {
	for _, name := range QueryNames() {
		w, err := Query(name, SystemFlink)
		if err != nil {
			t.Fatal(err)
		}
		spec := w.Specs[w.MainOperator]
		// Input rate of the main operator: source rates through
		// upstream selectivities (all mains are fed either directly
		// by sources or by one stage of filters).
		idx := w.Graph.IndexOf(w.MainOperator)
		rt := 0.0
		for _, u := range w.Graph.Upstream(idx) {
			uname := w.Graph.Operator(u).Name
			if r, ok := w.Rates[uname]; ok {
				rt += r
			} else {
				// One stage up: filter fed by a source.
				var srcRate float64
				for _, uu := range w.Graph.Upstream(u) {
					srcRate += w.Rates[w.Graph.Operator(uu).Name]
				}
				rt += srcRate * w.Specs[uname].Selectivity
			}
		}
		capAt := func(p int) float64 {
			v := 1 + spec.Alpha*float64(p-1)
			h := 1 + spec.HiddenAlpha*float64(p-1)
			return float64(p) / (spec.CostPerRecord * v * h)
		}
		if capAt(w.Indicated) < rt {
			t.Errorf("%s: capacity at indicated %d = %v < input %v", name, w.Indicated, capAt(w.Indicated), rt)
		}
		if capAt(w.Indicated-1) >= rt {
			t.Errorf("%s: capacity at %d already sufficient (%v >= %v); indicated not minimal",
				name, w.Indicated-1, capAt(w.Indicated-1), rt)
		}
	}
}

// TestTimelyCalibration checks §5.5's setup: total worker demand is in
// (Indicated-1, Indicated] so the indicated worker count is minimal.
func TestTimelyCalibration(t *testing.T) {
	for _, name := range QueryNames() {
		w, err := Query(name, SystemTimely)
		if err != nil {
			t.Fatal(err)
		}
		demand := 0.0
		perOp := map[string]float64{}
		// Propagate rates through the graph (steady-state input rate
		// per operator × cost).
		inRate := map[string]float64{}
		for i := 0; i < w.Graph.NumOperators(); i++ {
			op := w.Graph.Operator(i)
			if i < w.Graph.NumSources() {
				inRate[op.Name] = w.Rates[op.Name]
				continue
			}
			r := 0.0
			for _, u := range w.Graph.Upstream(i) {
				un := w.Graph.Operator(u).Name
				if u < w.Graph.NumSources() {
					r += inRate[un]
				} else {
					r += inRate[un] * w.Specs[un].Selectivity
				}
			}
			inRate[op.Name] = r
			d := r * w.Specs[op.Name].CostPerRecord
			perOp[op.Name] = d
			demand += d
		}
		if demand > float64(w.Indicated) {
			t.Errorf("%s: demand %v exceeds indicated %d workers (per-op %v)", name, demand, w.Indicated, perOp)
		}
		if demand <= float64(w.Indicated-1) {
			t.Errorf("%s: demand %v fits in %d workers; indicated %d not minimal",
				name, demand, w.Indicated-1, w.Indicated)
		}
		// §4.3: summed per-operator ceils equal the indicated count.
		sum := 0
		for _, d := range perOp {
			sum += int(math.Ceil(d - 1e-9))
		}
		if sum != w.Indicated {
			t.Errorf("%s: sum of per-op worker ceils = %d, want %d (%v)", name, sum, w.Indicated, perOp)
		}
	}
}

// TestQ1ClosedLoopConvergence runs the full engine + manager loop on
// Q1 from a far-from-optimal start and requires convergence to the
// indicated parallelism in at most three steps (§5.4).
func TestQ1ClosedLoopConvergence(t *testing.T) {
	w, err := Query("q1", SystemFlink)
	if err != nil {
		t.Fatal(err)
	}
	initial := w.InitialParallelism(8)
	e, err := engine.New(w.Graph, w.Specs, w.Sources, initial,
		engine.Config{Mode: engine.ModeFlink, Tick: 0.05, RedeployDelay: 5})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(w.Graph, core.PolicyConfig{MaxParallelism: 36})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(pol, initial, core.ManagerConfig{WarmupIntervals: 1})
	if err != nil {
		t.Fatal(err)
	}
	var trace core.ConvergenceTrace
	trace.Record(initial)
	for i := 0; i < 30; i++ {
		st := e.RunInterval(30)
		snap, err := engine.Snapshot(st)
		if err != nil {
			t.Fatal(err)
		}
		act, err := mgr.OnInterval(snap)
		if err != nil {
			t.Fatal(err)
		}
		if act != nil {
			if err := e.Rescale(act.New); err != nil {
				t.Fatal(err)
			}
			trace.Record(act.New)
		}
	}
	steps := trace.NumSteps()
	if steps == 0 || steps > 3 {
		t.Fatalf("converged in %d steps: %v", steps, trace.OperatorSeries("q1-map"))
	}
	final := trace.Steps[len(trace.Steps)-1]["q1-map"]
	if final < w.Indicated-1 || final > w.Indicated+1 {
		t.Errorf("final q1-map parallelism = %d, want ~%d (trace %v)",
			final, w.Indicated, trace.OperatorSeries("q1-map"))
	}
	// Final configuration sustains the target.
	e.RunInterval(30)
	st := e.RunInterval(30)
	target := w.Rates[SrcBids]
	if got := st.SourceObserved[SrcBids]; got < target*0.98 {
		t.Errorf("final throughput %v < target %v", got, target)
	}
}
