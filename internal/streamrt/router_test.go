package streamrt

import (
	"fmt"
	"testing"
	"time"
)

func keyUniverse(n int) map[string]any {
	out := make(map[string]any, n)
	for i := 1; i <= n; i++ {
		out[fmt.Sprintf("%d", i)] = i
	}
	return out
}

func shardSizes(rt *router, known map[string]any, n int) []int {
	sizes := make([]int, n)
	for k := range known {
		sizes[rt.owner(k)]++
	}
	return sizes
}

// TestRouterStripesKnownKeysEvenly: a known universe must split within
// one key of perfectly even — the skew-aware guarantee FNV%n cannot
// give on small universes.
func TestRouterStripesKnownKeysEvenly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		known := keyUniverse(100)
		rt := buildRouter(known, n, nil)
		sizes := shardSizes(rt, known, n)
		lo, hi := sizes[0], sizes[0]
		total := 0
		for _, s := range sizes {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
			total += s
		}
		if total != 100 {
			t.Fatalf("n=%d: %d keys routed, want 100", n, total)
		}
		if hi-lo > 1 {
			t.Errorf("n=%d: shard sizes %v spread more than 1", n, sizes)
		}
	}
}

// TestRouterWeights: PartitionWeights skew the known-key shares by
// largest-remainder apportionment.
func TestRouterWeights(t *testing.T) {
	known := keyUniverse(100)
	rt := buildRouter(known, 3, []float64{2, 1, 1})
	if sizes := shardSizes(rt, known, 3); sizes[0] != 50 || sizes[1] != 25 || sizes[2] != 25 {
		t.Errorf("weighted shard sizes %v, want [50 25 25]", sizes)
	}
	// Invalid weights (wrong length, non-positive) fall back to equal.
	for _, w := range [][]float64{{1, 2}, {1, -1, 1}, {0, 1, 1}} {
		rt := buildRouter(known, 3, w)
		for _, s := range shardSizes(rt, known, 3) {
			if s < 33 || s > 34 {
				t.Errorf("weights %v: expected equal-share fallback, got %v", w, shardSizes(rt, known, 3))
			}
		}
	}
}

// TestRouterDeterministicAndStateAgreement: two routers built from the
// same snapshot agree on every owner (deployment determinism), and
// partitionState splits state exactly along the router's lines —
// disjoint across instances, nothing lost.
func TestRouterDeterministicAndStateAgreement(t *testing.T) {
	known := keyUniverse(64)
	a := buildRouter(known, 5, nil)
	b := buildRouter(known, 5, nil)
	seen := make(map[string]int)
	for idx := 0; idx < 5; idx++ {
		part := partitionState(known, a, idx)
		for k := range part {
			if prev, dup := seen[k]; dup {
				t.Fatalf("key %s in instances %d and %d", k, prev, idx)
			}
			seen[k] = idx
			if own := b.owner(k); own != idx {
				t.Fatalf("key %s: partitionState says %d, second router says %d", k, idx, own)
			}
		}
	}
	if len(seen) != len(known) {
		t.Fatalf("%d keys partitioned, want %d", len(seen), len(known))
	}
	// Unseen keys take the rendezvous fallback: deterministic and in
	// range, for fresh deployments with an empty table too.
	empty := buildRouter(nil, 5, nil)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("unseen-%d", i)
		own := a.owner(k)
		if own < 0 || own >= 5 {
			t.Fatalf("key %s routed to %d, out of range", k, own)
		}
		if own != b.owner(k) || own != empty.owner(k) {
			t.Fatalf("key %s: fallback owner differs between routers", k)
		}
	}
}

// TestLowRateRecordsFlowPromptly pins the time-bounded flush: at 50
// records/s a batch would take seconds to fill, so records must ride
// the idle/deadline flushes instead — the job drains its 10-record
// limit at stream speed, not at batch-fill speed.
func TestLowRateRecordsFlowPromptly(t *testing.T) {
	total := 0
	p, err := NewPipeline().
		AddSource("src", SourceSpec{
			Rate:  func(float64) float64 { return 50 },
			Next:  func(seq int64) (string, any) { return "k", seq },
			Limit: 10,
		}).
		AddOperator("sink", OperatorSpec{
			Process: func(_ any, _ string, _ any, _ Emit) any { total++; return nil },
		}).
		AddEdge("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	j, err := NewJob(p, map[string]int{"src": 1, "sink": 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	j.Stop()
	elapsed := time.Since(start)
	if total != 10 {
		t.Fatalf("sink saw %d records, want 10", total)
	}
	// 10 records at 50/s is 200ms of stream; batch-fill would need 5s.
	if elapsed > 1500*time.Millisecond {
		t.Errorf("drained in %v — records sat in partial batches", elapsed)
	}
}
