package streamrt

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ds2/internal/obs"
)

// internLimit bounds the per-connection key intern table. Interning
// makes the receive path's key strings amortized-zero-alloc for hot key
// universes (Nexmark's auctions, wordcount's word set); an unbounded
// key space (q3's person ids) resets the table instead of growing it
// forever.
const internLimit = 1 << 16

// remoteWindow is the per-(sending worker, destination instance)
// credit window, counted in batches — the cross-process analogue of
// ChannelCapacity. A sender may have this many batches in flight to one
// remote instance before it blocks, so backpressure propagates across
// processes exactly like a full bounded channel does in-process.
func remoteWindow(cfg *Config) int { return cfg.ChannelCapacity }

// linkStats is one connection's traffic counters. They are plain obs
// counters so a worker with a Registry exports them directly; the
// coordinator additionally mirrors every worker's links at collect
// time.
type linkStats struct {
	label    string // data-flow direction, "w0->w1"
	txBytes  obs.Counter
	txFrames obs.Counter
	rxBytes  obs.Counter
	rxFrames obs.Counter
	stalls   obs.Counter
}

// link is one persistent framed connection. Writers append frames to a
// shared buffer under a mutex and signal the write loop, which swaps
// the buffer out and writes it in one syscall — so a saturated link
// coalesces many batches per write, and an idle one still flushes
// within a scheduling quantum.
type link struct {
	conn  net.Conn
	peer  uint32
	stats *linkStats

	mu     sync.Mutex
	wbuf   []byte
	wake   chan struct{}
	closed chan struct{}
	once   sync.Once
	err    atomic.Value // first failure, for diagnostics
}

func newLink(conn net.Conn, peer uint32, stats *linkStats) *link {
	return &link{
		conn:   conn,
		peer:   peer,
		stats:  stats,
		wake:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
}

// close tears the link down; idempotent. The first recorded error (if
// any) is kept for diagnostics.
func (l *link) close(err error) {
	l.once.Do(func() {
		if err != nil {
			l.err.Store(err)
		}
		close(l.closed)
		l.conn.Close()
	})
}

func (l *link) failure() error {
	if e, ok := l.err.Load().(error); ok {
		return e
	}
	return nil
}

// signal wakes the write loop (non-blocking; one pending wakeup is
// enough, the loop drains the whole buffer).
func (l *link) signal() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// writeLoop drains the shared write buffer into the socket. The swap
// under the mutex is O(1); the write itself happens outside it, so
// senders never block on the kernel.
func (l *link) writeLoop() {
	var out []byte
	flush := func() bool {
		l.mu.Lock()
		out, l.wbuf = l.wbuf, out[:0]
		l.mu.Unlock()
		if len(out) == 0 {
			return true
		}
		n, err := l.conn.Write(out)
		l.stats.txBytes.Add(uint64(n))
		if err != nil {
			l.close(fmt.Errorf("streamrt: link write: %w", err))
			return false
		}
		return true
	}
	for {
		select {
		case <-l.wake:
			if !flush() {
				return
			}
		case <-l.closed:
			flush() // best-effort final drain
			return
		}
	}
}

// appendFrameLocked-style senders: each takes the lock, appends one
// frame, bumps the frame counter and signals the writer.

func (l *link) sendCredit(m creditMsg) {
	l.mu.Lock()
	l.wbuf = appendCredit(l.wbuf, m)
	l.mu.Unlock()
	l.stats.txFrames.Inc()
	l.signal()
}

func (l *link) sendDone(m doneMsg) {
	l.mu.Lock()
	l.wbuf = appendDone(l.wbuf, m)
	l.mu.Unlock()
	l.stats.txFrames.Inc()
	l.signal()
}

func (l *link) sendHello(m helloMsg) {
	l.mu.Lock()
	l.wbuf = appendHello(l.wbuf, m)
	l.mu.Unlock()
	l.stats.txFrames.Inc()
	l.signal()
}

func (l *link) sendCtrl(typ byte, m ctrlMsg) {
	l.mu.Lock()
	l.wbuf = appendCtrl(l.wbuf, typ, m)
	l.mu.Unlock()
	l.stats.txFrames.Inc()
	l.signal()
}

// sendData encodes one outgoing batch straight into the link's write
// buffer — the encode-at-flush path of the in-process exchange, with
// the socket buffer as the destination. Values still held as `any` are
// appended through the receiving operator's AppendEncoder (or Codec);
// already-encoded records are copied from the batch buffer.
func (l *link) sendData(gen uint32, opID, inst uint16, b *batch, enc AppendEncoder, codec Codec) error {
	l.mu.Lock()
	dst, off := beginFrame(l.wbuf, frameData)
	dst = appendU32(dst, gen)
	dst = appendU16(dst, opID)
	dst = appendU16(dst, inst)
	dst = appendU32(dst, uint32(len(b.msgs)))
	for k := range b.msgs {
		m := &b.msgs[k]
		if len(m.key) > 0xFFFF {
			l.mu.Unlock()
			err := fmt.Errorf("streamrt: record key %d bytes exceeds frame limit", len(m.key))
			l.close(err)
			return err
		}
		dst = appendU16(dst, uint16(len(m.key)))
		dst = append(dst, m.key...)
		var nano int64
		if !m.src.IsZero() {
			nano = m.src.UnixNano()
		}
		dst = appendU64(dst, uint64(nano))
		vOff := len(dst)
		dst = appendU32(dst, 0)
		if m.val != nil {
			if enc != nil {
				dst = enc.AppendEncode(dst, m.val)
			} else {
				dst = append(dst, codec.Encode(m.val)...)
			}
		} else {
			dst = append(dst, b.buf[m.encOff:m.encOff+m.encLen]...)
		}
		putU32(dst[vOff:], uint32(len(dst)-vOff-4))
	}
	l.wbuf = endFrame(dst, off)
	l.mu.Unlock()
	l.stats.txFrames.Inc()
	l.signal()
	return nil
}

func putU32(dst []byte, v uint32) {
	dst[0], dst[1], dst[2], dst[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// remoteDest is a sender worker's credit gate toward one remote
// instance: a pre-filled token pool sized remoteWindow, shared by every
// local sender instance targeting that (operator, instance). A CREDIT
// frame from the hosting worker returns one token per consumed batch.
type remoteDest struct {
	link   *link
	opID   uint16
	inst   uint16
	tokens chan struct{}
}

// acquire takes one in-flight token, blocking until the receiver
// returns credit. It reports whether the wait stalled (for the caller's
// waiting-output accounting) and false ok when the link died.
func (rd *remoteDest) acquire() (ok bool) {
	select {
	case <-rd.tokens:
		return true
	default:
	}
	rd.link.stats.stalls.Inc()
	select {
	case <-rd.tokens:
		return true
	case <-rd.link.closed:
		return false
	}
}

// recvOrigin records where a received batch came from, so recycling it
// returns one credit to the sending worker.
type recvOrigin struct {
	link *link
	gen  uint32
	op   uint16
	inst uint16
}

// recvTable is one deployment generation's receive-side routing: which
// channel each (operator, instance) hosted here feeds, which WaitGroup
// counts upstream exits, and which token pools take returned credits.
// The transport swaps it atomically at deploy, so read loops never take
// a lock.
type recvTable struct {
	gen     uint32
	job     *Job
	chans   [][]chan *batch   // [opID][globalInstance]; nil when not hosted here
	wgs     []*sync.WaitGroup // [opID]; nil when op not hosted here
	credits [][]chan struct{} // [opID][globalInstance]; sender-side token pools
}

// transport owns a worker's listener and its links: dialed data links
// to peers (data+done out, credits in), accepted data links from peers
// (data+done in, credits out), and accepted control connections from
// the coordinator.
type transport struct {
	worker uint32
	lis    net.Listener
	reg    *obs.Registry
	// handleControl serves one control request (called per frame on a
	// dispatch goroutine); nil transports reject control connections.
	handleControl func(l *link, m ctrlMsg)

	recv atomic.Pointer[recvTable]

	mu     sync.Mutex
	dialed map[uint32]*link
	all    []*link
	stats  []*linkStats
	closed bool
	wg     sync.WaitGroup
}

func newTransport(worker uint32, lis net.Listener, reg *obs.Registry) *transport {
	return &transport{worker: worker, lis: lis, reg: reg, dialed: make(map[uint32]*link)}
}

// Addr returns the transport's listen address.
func (tr *transport) Addr() string {
	if tr.lis == nil {
		return ""
	}
	return tr.lis.Addr().String()
}

func (tr *transport) newStats(label string) *linkStats {
	st := &linkStats{label: label}
	if tr.reg != nil {
		// Export through the registry instead of the standalone
		// counters, so a worker process's /metrics carries per-link
		// traffic directly.
		registerLinkStats(tr.reg, st)
	}
	tr.mu.Lock()
	tr.stats = append(tr.stats, st)
	tr.mu.Unlock()
	return st
}

// registerLinkStats exposes one link's counters as the per-link metric
// families. The obs registry hands back one counter per identity, so
// the linkStats fields are CounterFunc-mirrored rather than replaced.
func registerLinkStats(reg *obs.Registry, st *linkStats) {
	reg.CounterFunc("streamrt_link_bytes_total",
		"Bytes moved over a worker-to-worker exchange link, by direction.",
		func() float64 { return float64(st.txBytes.Value()) },
		obs.L("link", st.label), obs.L("dir", "tx"))
	reg.CounterFunc("streamrt_link_bytes_total",
		"Bytes moved over a worker-to-worker exchange link, by direction.",
		func() float64 { return float64(st.rxBytes.Value()) },
		obs.L("link", st.label), obs.L("dir", "rx"))
	reg.CounterFunc("streamrt_link_frames_total",
		"Frames moved over a worker-to-worker exchange link, by direction.",
		func() float64 { return float64(st.txFrames.Value()) },
		obs.L("link", st.label), obs.L("dir", "tx"))
	reg.CounterFunc("streamrt_link_frames_total",
		"Frames moved over a worker-to-worker exchange link, by direction.",
		func() float64 { return float64(st.rxFrames.Value()) },
		obs.L("link", st.label), obs.L("dir", "rx"))
	reg.CounterFunc("streamrt_link_stalls_total",
		"Remote batch sends that blocked waiting for flow-control credit.",
		func() float64 { return float64(st.stalls.Value()) },
		obs.L("link", st.label))
}

func (tr *transport) track(l *link) bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return false
	}
	tr.all = append(tr.all, l)
	return true
}

// serve accepts connections until the listener closes.
func (tr *transport) serve() {
	tr.wg.Add(1)
	go func() {
		defer tr.wg.Done()
		for {
			conn, err := tr.lis.Accept()
			if err != nil {
				return
			}
			tr.wg.Add(1)
			go func() {
				defer tr.wg.Done()
				tr.handleConn(conn)
			}()
		}
	}()
}

// handleConn reads the HELLO and runs the connection's read loop.
func (tr *transport) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReaderSize(conn, 1<<16)
	typ, payload, buf, err := readFrame(br, nil)
	if err != nil || typ != frameHello {
		conn.Close()
		return
	}
	hello, err := parseHello(payload)
	if err != nil || hello.proto != frameProto {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if hello.sender == helloCoordinator {
		l := newLink(conn, hello.sender, tr.newStats(fmt.Sprintf("ctl->w%d", tr.worker)))
		if tr.handleControl == nil || !tr.track(l) {
			l.close(nil)
			return
		}
		go l.writeLoop()
		tr.ctrlReadLoop(l, br, buf)
		return
	}
	l := newLink(conn, hello.sender, tr.newStats(fmt.Sprintf("w%d->w%d", hello.sender, tr.worker)))
	if !tr.track(l) {
		l.close(nil)
		return
	}
	go l.writeLoop()
	tr.dataReadLoop(l, br, buf)
}

// dialPeer returns the persistent outbound data link to peer, dialing
// it on first use.
func (tr *transport) dialPeer(peer uint32, addr string) (*link, error) {
	tr.mu.Lock()
	if l, ok := tr.dialed[peer]; ok {
		tr.mu.Unlock()
		return l, nil
	}
	tr.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("streamrt: dialing worker %d at %s: %w", peer, addr, err)
	}
	l := newLink(conn, peer, tr.newStats(fmt.Sprintf("w%d->w%d", tr.worker, peer)))
	tr.mu.Lock()
	if exist, ok := tr.dialed[peer]; ok {
		tr.mu.Unlock()
		conn.Close()
		return exist, nil
	}
	if tr.closed {
		tr.mu.Unlock()
		conn.Close()
		return nil, errors.New("streamrt: transport closed")
	}
	tr.dialed[peer] = l
	tr.all = append(tr.all, l)
	tr.mu.Unlock()
	go l.writeLoop()
	l.sendHello(helloMsg{proto: frameProto, sender: tr.worker})
	tr.wg.Add(1)
	go func() {
		defer tr.wg.Done()
		tr.creditReadLoop(l)
	}()
	return l, nil
}

// dataReadLoop consumes DATA and DONE frames from an accepted peer
// link, decoding batches into the current deployment's input channels.
func (tr *transport) dataReadLoop(l *link, br *bufio.Reader, buf []byte) {
	intern := make(map[string]string)
	for {
		typ, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			l.close(err)
			return
		}
		l.stats.rxBytes.Add(uint64(len(payload) + 5))
		l.stats.rxFrames.Inc()
		switch typ {
		case frameData:
			if err := tr.handleData(l, payload, intern); err != nil {
				l.close(err)
				return
			}
		case frameDone:
			m, err := parseDone(payload)
			if err != nil {
				l.close(err)
				return
			}
			rt := tr.recv.Load()
			if rt == nil || m.gen != rt.gen {
				continue // straggler from a drained generation
			}
			if int(m.op) >= len(rt.wgs) || rt.wgs[m.op] == nil {
				l.close(fmt.Errorf("streamrt: DONE for unhosted operator %d", m.op))
				return
			}
			rt.wgs[m.op].Done()
		default:
			l.close(fmt.Errorf("streamrt: unexpected frame type %d on data link", typ))
			return
		}
	}
}

// handleData decodes one DATA frame into a pooled batch and delivers it
// to the destination instance's input channel. Credit sizing guarantees
// channel space, so the send cannot block behind a slow consumer for
// longer than the consumer itself takes.
func (tr *transport) handleData(l *link, payload []byte, intern map[string]string) error {
	h, recs, err := parseDataHeader(payload)
	if err != nil {
		return err
	}
	rt := tr.recv.Load()
	if rt == nil || h.gen < rt.gen {
		return nil // straggler from a drained generation: drop
	}
	if h.gen > rt.gen {
		return fmt.Errorf("streamrt: data frame for future generation %d (at %d)", h.gen, rt.gen)
	}
	if int(h.op) >= len(rt.chans) || rt.chans[h.op] == nil {
		return fmt.Errorf("streamrt: data frame for unhosted operator %d", h.op)
	}
	if int(h.inst) >= len(rt.chans[h.op]) || rt.chans[h.op][h.inst] == nil {
		return fmt.Errorf("streamrt: data frame for unhosted instance %d/%d", h.op, h.inst)
	}
	b := rt.job.getBatch()
	for i := uint32(0); i < h.count; i++ {
		key, srcNano, val, rest, err := nextRecord(recs)
		if err != nil {
			rt.job.putBatch(b)
			return err
		}
		recs = rest
		ks, ok := intern[string(key)] // no-alloc map lookup on []byte key
		if !ok {
			if len(intern) >= internLimit {
				clear(intern)
			}
			ks = string(key)
			intern[ks] = ks
		}
		off := int32(len(b.buf))
		b.buf = append(b.buf, val...)
		var src time.Time
		if srcNano != 0 {
			src = time.Unix(0, srcNano)
		}
		b.msgs = append(b.msgs, message{key: ks, encOff: off, encLen: int32(len(val)), src: src})
	}
	if len(recs) != 0 {
		rt.job.putBatch(b)
		return fmt.Errorf("streamrt: %d trailing bytes after %d records", len(recs), h.count)
	}
	b.from = recvOrigin{link: l, gen: h.gen, op: h.op, inst: h.inst}
	rt.chans[h.op][h.inst] <- b
	return nil
}

// creditReadLoop consumes CREDIT frames flowing back on an outbound
// data link, refilling the sender-side token pools.
func (tr *transport) creditReadLoop(l *link) {
	br := bufio.NewReaderSize(l.conn, 1<<12)
	var buf []byte
	for {
		typ, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			l.close(err)
			return
		}
		l.stats.rxBytes.Add(uint64(len(payload) + 5))
		l.stats.rxFrames.Inc()
		if typ != frameCredit {
			l.close(fmt.Errorf("streamrt: unexpected frame type %d on credit path", typ))
			return
		}
		m, err := parseCredit(payload)
		if err != nil {
			l.close(err)
			return
		}
		rt := tr.recv.Load()
		if rt == nil || m.gen != rt.gen {
			continue // stale credit: the generation's pools are gone
		}
		if int(m.op) >= len(rt.credits) || rt.credits[m.op] == nil ||
			int(m.inst) >= len(rt.credits[m.op]) || rt.credits[m.op][m.inst] == nil {
			continue
		}
		pool := rt.credits[m.op][m.inst]
		for i := uint32(0); i < m.credits; i++ {
			select {
			case pool <- struct{}{}:
			default: // over-return would be a protocol bug; never block the read loop
			}
		}
	}
}

// ctrlReadLoop consumes CONTROL frames from the coordinator,
// dispatching each to the handler on its own goroutine (handlers block
// on drains) and serializing replies through the link writer.
func (tr *transport) ctrlReadLoop(l *link, br *bufio.Reader, buf []byte) {
	for {
		typ, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			l.close(err)
			return
		}
		l.stats.rxBytes.Add(uint64(len(payload) + 5))
		l.stats.rxFrames.Inc()
		if typ != frameControl {
			l.close(fmt.Errorf("streamrt: unexpected frame type %d on control link", typ))
			return
		}
		m, err := parseCtrl(payload)
		if err != nil {
			l.close(err)
			return
		}
		// The payload aliases the read buffer; the handler runs
		// concurrently with further reads.
		m.body = append([]byte(nil), m.body...)
		tr.wg.Add(1)
		go func() {
			defer tr.wg.Done()
			tr.handleControl(l, m)
		}()
	}
}

// close shuts the transport down: listener, every link, and the accept
// loop.
func (tr *transport) close() {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return
	}
	tr.closed = true
	links := append([]*link(nil), tr.all...)
	tr.mu.Unlock()
	if tr.lis != nil {
		tr.lis.Close()
	}
	for _, l := range links {
		l.close(nil)
	}
}

// linkSnapshots returns the cumulative counters of every link, for the
// coordinator's collect-time metric mirroring.
func (tr *transport) linkSnapshots() []LinkStats {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]LinkStats, 0, len(tr.stats))
	for _, st := range tr.stats {
		out = append(out, LinkStats{
			Link:     st.label,
			TxBytes:  st.txBytes.Value(),
			TxFrames: st.txFrames.Value(),
			RxBytes:  st.rxBytes.Value(),
			RxFrames: st.rxFrames.Value(),
			Stalls:   st.stalls.Value(),
		})
	}
	return out
}

// LinkStats is one exchange link's cumulative traffic counters, as
// shipped from workers to the coordinator at collect time.
type LinkStats struct {
	Link     string `json:"link"`
	TxBytes  uint64 `json:"tx_bytes"`
	TxFrames uint64 `json:"tx_frames"`
	RxBytes  uint64 `json:"rx_bytes"`
	RxFrames uint64 `json:"rx_frames"`
	Stalls   uint64 `json:"stalls"`
}
