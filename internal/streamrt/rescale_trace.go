package streamrt

import (
	"fmt"
	"sync/atomic"
	"time"

	"ds2/internal/obs"
)

// The rescale phase vocabulary. A single-process Job times drain,
// snapshot, restart and first_record; a Cluster adds router_rebuild,
// transfer (per-worker state shipment) and per-worker child spans under
// drain/transfer/restart. Phase names double as the `phase` label of
// streamrt_rescale_phase_seconds.
const (
	phaseDrain         = "drain"
	phaseSnapshot      = "snapshot"
	phaseRouterRebuild = "router_rebuild"
	phaseTransfer      = "transfer"
	phaseRestart       = "restart"
	phaseFirstRecord   = "first_record"
)

// firstRecordWait bounds how long a rescale trace waits for the new
// deployment to process its first record before giving up and leaving
// the timeline incomplete (a drained-again, stopped, or starved job may
// never produce one).
const firstRecordWait = 30 * time.Second

// rescaleObs owns a job's reconfiguration-cost instrumentation: the
// bounded trace ring served via GET /jobs/{id}/rescales and the two
// cost families. All of it is off the data hot path — rescales are
// rare, so spans may take locks and resolve registry handles freely.
type rescaleObs struct {
	reg      *obs.Registry
	ring     *obs.TraceRing
	downtime *obs.Histogram
}

func newRescaleObs(reg *obs.Registry) *rescaleObs {
	return &rescaleObs{
		reg:  reg,
		ring: obs.NewTraceRing(32),
		downtime: reg.Histogram("streamrt_rescale_downtime_seconds",
			"Rescale downtime: drain start to the first record processed after restart.",
			obs.HistogramOpts{Min: 1e-3, Growth: 2, Buckets: 20}),
	}
}

// phaseHist resolves the per-phase duration histogram. Buckets span
// 100µs..~1.7min.
func (o *rescaleObs) phaseHist(phase string) *obs.Histogram {
	return o.reg.Histogram("streamrt_rescale_phase_seconds",
		"Time spent in each phase of a rescale (drain, snapshot, router_rebuild, transfer, restart, first_record).",
		obs.HistogramOpts{Min: 1e-4, Growth: 2, Buckets: 20},
		obs.L("phase", phase))
}

// rescaleTrace times one rescale against a Trace. A nil *rescaleTrace
// (telemetry off) is fully functional: every method no-ops, so callers
// instrument unconditionally.
type rescaleTrace struct {
	ro *rescaleObs
	t  *obs.Trace
}

// beginRescaleTrace starts the n'th rescale's trace and publishes it to
// the ring immediately, so an in-flight rescale is already visible (as
// an incomplete timeline) to /rescales readers.
func (o *jobObs) beginRescaleTrace(n int) *rescaleTrace {
	if o == nil {
		return nil
	}
	rt := &rescaleTrace{ro: o.rescale, t: obs.NewTrace(fmt.Sprintf("rescale-%d", n), "rescale")}
	o.rescale.ring.Append(rt.t)
	return rt
}

// now returns nanoseconds since the trace started.
func (rt *rescaleTrace) now() int64 {
	if rt == nil {
		return 0
	}
	return rt.t.Now()
}

// phase runs fn as one top-level phase span and observes its duration
// into the phase histogram. fn receives the span's pre-allocated ID so
// fan-out work inside the phase can parent child spans under it.
func (rt *rescaleTrace) phase(name string, fn func(parent uint64)) {
	if rt == nil {
		fn(0)
		return
	}
	id := rt.t.NewSpanID()
	start := rt.t.Now()
	fn(id)
	end := rt.t.Now()
	rt.t.Add(obs.Span{ID: id, Name: name, Worker: -1, StartNs: start, EndNs: end})
	rt.ro.phaseHist(name).Observe(float64(end-start) / 1e9)
}

// child records one per-worker span (typically an RPC measured at the
// coordinator) under parent, then re-bases the worker-reported spans —
// offsets from the worker's handler start — onto this span's window.
// The worker's clock never mixes with the coordinator's: children are
// anchored at the RPC's start and clamped to its end, which keeps the
// tree causally ordered even across hosts with skewed wall clocks.
func (rt *rescaleTrace) child(name string, worker int, parent uint64, start, end int64, spans []wireSpan) {
	if rt == nil {
		return
	}
	id := rt.t.Add(obs.Span{Parent: parent, Name: name, Worker: worker, StartNs: start, EndNs: end})
	for _, ws := range spans {
		s, e := start+ws.Start, start+ws.End
		if e > end {
			e = end
		}
		if s > e {
			s = e
		}
		rt.t.Add(obs.Span{Parent: id, Name: ws.Name, Worker: worker, StartNs: s, EndNs: e})
	}
}

// finish appends the trailing first_record span and completes the
// timeline. at is the wall-clock unix-nano instant the first record was
// processed (ok=false — cancelled or timed out — leaves the trace
// incomplete, recording nothing). restartEnd is the offset the restart
// phase ended at; downtime is drain start (trace zero) to first record.
func (rt *rescaleTrace) finish(restartEnd int64, at int64, ok bool) {
	if rt == nil || !ok {
		return
	}
	end := at - rt.t.StartedAt().UnixNano()
	if end < restartEnd {
		// Records can flow the instant instances start, before Rescale
		// has even returned; clamp so the span tree stays monotone.
		end = restartEnd
	}
	rt.t.Add(obs.Span{Name: phaseFirstRecord, Worker: -1, StartNs: restartEnd, EndNs: end})
	rt.ro.phaseHist(phaseFirstRecord).Observe(float64(end-restartEnd) / 1e9)
	rt.ro.downtime.Observe(float64(end) / 1e9)
	rt.t.Complete()
}

// firstRecord resolves the instant a fresh deployment processes its
// first record. Instances race to note it: the first CAS wins and wakes
// every waiter; teardown cancels so waiters never leak. The hot path
// pays one pointer nil-check per batch in steady state (instances clear
// their pointer after noting).
type firstRecord struct {
	t  atomic.Int64 // 0 = pending, -1 = cancelled, else unix nanos
	ch chan struct{}
}

func newFirstRecord() *firstRecord { return &firstRecord{ch: make(chan struct{})} }

// note marks t as the first-record instant; only the first call wins.
func (f *firstRecord) note(t time.Time) {
	if f.t.CompareAndSwap(0, t.UnixNano()) {
		close(f.ch)
	}
}

// cancel resolves the wait negatively (teardown before any record).
func (f *firstRecord) cancel() {
	if f.t.CompareAndSwap(0, -1) {
		close(f.ch)
	}
}

// value returns the current resolution without blocking: 0 pending, -1
// cancelled, else the unix-nano instant. The distributed first-record
// poll reads this.
func (f *firstRecord) value() int64 { return f.t.Load() }

// wait blocks until the instant is noted, the deployment is cancelled,
// or timeout passes.
func (f *firstRecord) wait(timeout time.Duration) (int64, bool) {
	select {
	case <-f.ch:
	case <-time.After(timeout):
		return 0, false
	}
	v := f.t.Load()
	if v <= 0 {
		return 0, false
	}
	return v, true
}
