package streamrt

import (
	"time"

	"ds2/internal/metrics"
)

// WindowState is the per-key state of a windowed operator: the open
// pane aggregates indexed by pane sequence number (pane n covers job
// time [n·slide, (n+1)·slide)), plus the firing watermark. It is the
// value stored in the ordinary keyed state map, so Rescale snapshots
// and repartitions it by key like any other keyed state — window
// contents survive redeployments exactly once, and tests can inspect
// residual panes after Stop.
type WindowState struct {
	// NextFire is the earliest window-end pane index not yet fired.
	// Initialized to the pane of the key's first record; advancing it
	// is what makes every window fire at most once even across
	// rescales (the watermark rides the snapshot).
	NextFire int64
	// Panes maps pane index to the pane's aggregate.
	Panes map[int64]any
}

// paneIndex returns the pane covering job time t.
func paneIndex(t float64, slide time.Duration) int64 {
	return int64(t / slide.Seconds())
}

// fireDue fires, in pane order, every window of key's state whose end
// pane closed strictly before cur, emitting through emit. Fired panes
// that no longer contribute to any open window are dropped; a key
// whose panes are exhausted is removed from the state map entirely
// (deleting the in-range key during the caller's map iteration is
// safe in Go). Empty windows advance the watermark without firing.
func (in *instance) fireDue(key string, ws *WindowState, cur int64, emit Emit) {
	win := in.spec.Window
	k := win.panes()
	for e := ws.NextFire; e < cur; e++ {
		if len(ws.Panes) == 0 {
			// Nothing buffered for any remaining window: skip ahead
			// and drop the key so idle keys cost nothing.
			delete(in.state, key)
			return
		}
		var agg any
		has := false
		for p := e - k + 1; p <= e; p++ {
			a, ok := ws.Panes[p]
			if !ok {
				continue
			}
			if !has {
				agg, has = a, true
			} else {
				agg = win.Combine(agg, a)
			}
		}
		if has {
			win.Fire(key, agg, emit)
		}
		// The oldest pane of this window has now contributed to every
		// window that spans it.
		delete(ws.Panes, e-k+1)
		ws.NextFire = e + 1
	}
}

// sweepDue fires every due window of every key at current pane cur.
func (in *instance) sweepDue(cur int64, emit Emit) {
	for key, st := range in.state {
		if ws, ok := st.(*WindowState); ok {
			in.fireDue(key, ws, cur, emit)
		}
	}
}

// windowTick bounds how long an idle windowed instance waits before
// checking for due windows.
func windowTick(slide time.Duration) time.Duration {
	tick := slide / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 100*time.Millisecond {
		tick = 100 * time.Millisecond
	}
	return tick
}

// runWindowed is the worker loop of a windowed keyed instance: like
// runOperator, but records accumulate into per-key processing-time
// panes and due windows fire between records (and on an idle tick, so
// a quiet key still fires). Firing work is accounted as processing;
// fired emissions as serialization/waiting-for-output, with no source
// timestamp (a fired window aggregates many records, so sinks take no
// latency sample from it).
func (in *instance) runWindowed() {
	defer in.exit()
	spec := in.spec
	win := spec.Window
	slide := win.slide()
	ticker := time.NewTicker(windowTick(slide))
	defer ticker.Stop()
	emit := Emit(in.emit)
	swept := int64(-1)
	for {
		t0 := time.Now()
		select {
		case m, ok := <-in.in:
			t1 := time.Now()
			waitIn := t1.Sub(t0)
			if !ok {
				// Drain: leave open panes in the keyed state — the
				// teardown snapshot (rescale or stop) carries them to
				// the next deployment or to the caller.
				in.acc.add(metrics.Durations{WaitingInput: waitIn}, 0, 0, nil, nil)
				return
			}
			val := m.val
			var deser time.Duration
			if spec.Codec != nil {
				val = spec.Codec.Decode(m.enc)
				t2 := time.Now()
				deser = t2.Sub(t1)
				t1 = t2
			}
			in.resetEmitScratch()
			in.curSrc = m.src
			cur := paneIndex(in.job.Now(), slide)
			ws, _ := in.state[m.key].(*WindowState)
			if ws == nil {
				ws = &WindowState{NextFire: cur, Panes: make(map[int64]any)}
				in.state[m.key] = ws
			}
			ws.Panes[cur] = spec.Process(ws.Panes[cur], m.key, val, emit)
			if spec.Cost > 0 {
				in.work(spec.Cost)
			}
			if cur > swept {
				in.curSrc = time.Time{}
				in.sweepDue(cur, emit)
				swept = cur
			}
			t3 := time.Now()
			proc := t3.Sub(t1) - in.emitSer - in.emitWait
			if proc < 0 {
				proc = 0
			}
			in.acc.add(metrics.Durations{
				Deserialization: deser,
				Processing:      proc,
				Serialization:   in.emitSer,
				WaitingInput:    waitIn,
				WaitingOutput:   in.emitWait,
			}, 1, in.emitPushed, in.edgeWait, nil)
		case <-ticker.C:
			t1 := time.Now()
			waitIn := t1.Sub(t0)
			cur := paneIndex(in.job.Now(), slide)
			if cur <= swept {
				in.acc.add(metrics.Durations{WaitingInput: waitIn}, 0, 0, nil, nil)
				continue
			}
			in.resetEmitScratch()
			in.curSrc = time.Time{}
			in.sweepDue(cur, emit)
			swept = cur
			t3 := time.Now()
			proc := t3.Sub(t1) - in.emitSer - in.emitWait
			if proc < 0 {
				proc = 0
			}
			in.acc.add(metrics.Durations{
				Processing:    proc,
				Serialization: in.emitSer,
				WaitingInput:  waitIn,
				WaitingOutput: in.emitWait,
			}, 0, in.emitPushed, in.edgeWait, nil)
		}
	}
}
