package streamrt

import "time"

// WindowState is the per-key state of a windowed operator: the open
// pane aggregates indexed by pane sequence number (pane n covers job
// time [n·slide, (n+1)·slide)), plus the firing watermark. It is the
// value stored in the ordinary keyed state map, so Rescale snapshots
// and repartitions it by key like any other keyed state — window
// contents survive redeployments exactly once, and tests can inspect
// residual panes after Stop.
type WindowState struct {
	// NextFire is the earliest window-end pane index not yet fired.
	// Initialized to the pane of the key's first record; advancing it
	// is what makes every window fire at most once even across
	// rescales (the watermark rides the snapshot).
	NextFire int64
	// Panes maps pane index to the pane's aggregate.
	Panes map[int64]any
}

// paneIndex returns the pane covering job time t.
func paneIndex(t float64, slide time.Duration) int64 {
	return int64(t / slide.Seconds())
}

// fireDue fires, in pane order, every window of key's state whose end
// pane closed strictly before cur, emitting through emit. Fired panes
// that no longer contribute to any open window are dropped; a key
// whose panes are exhausted is removed from the state map entirely
// (deleting the in-range key during the caller's map iteration is
// safe in Go). Empty windows advance the watermark without firing.
func (in *instance) fireDue(key string, ws *WindowState, cur int64, emit Emit) {
	win := in.spec.Window
	k := win.panes()
	for e := ws.NextFire; e < cur; e++ {
		if len(ws.Panes) == 0 {
			// Nothing buffered for any remaining window: skip ahead
			// and drop the key so idle keys cost nothing.
			delete(in.state, key)
			return
		}
		var agg any
		has := false
		for p := e - k + 1; p <= e; p++ {
			a, ok := ws.Panes[p]
			if !ok {
				continue
			}
			if !has {
				agg, has = a, true
			} else {
				agg = win.Combine(agg, a)
			}
		}
		if has {
			win.Fire(key, agg, emit)
		}
		// The oldest pane of this window has now contributed to every
		// window that spans it.
		delete(ws.Panes, e-k+1)
		ws.NextFire = e + 1
	}
}

// sweepDue fires every due window of every key at current pane cur.
func (in *instance) sweepDue(cur int64, emit Emit) {
	for key, st := range in.state {
		if ws, ok := st.(*WindowState); ok {
			in.fireDue(key, ws, cur, emit)
		}
	}
}

// windowTick bounds how long an idle windowed instance waits before
// checking for due windows.
func windowTick(slide time.Duration) time.Duration {
	tick := slide / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 100*time.Millisecond {
		tick = 100 * time.Millisecond
	}
	return tick
}

// runWindowed is the worker loop of a windowed keyed instance: like
// runOperator, but records accumulate into per-key processing-time
// panes and due windows fire between batches (and on an idle tick, so
// a quiet key still fires). Firing work is accounted as processing;
// fired emissions as serialization/waiting-for-output, with no source
// timestamp (a fired window aggregates many records, so sinks take no
// latency sample from it).
func (in *instance) runWindowed() {
	defer in.drainExit()
	spec := in.spec
	win := spec.Window
	slide := win.slide()
	ticker := time.NewTicker(windowTick(slide))
	defer ticker.Stop()
	emit := Emit(in.emit)
	swept := int64(-1)
	for {
		t0 := time.Now()
		var b *batch
		var ok bool
		select {
		case b, ok = <-in.in:
		default:
			// About to block: partial batches and buffered counters go
			// out first, then wait for input or the sweep tick.
			in.idleFlush()
			select {
			case b, ok = <-in.in:
			case <-ticker.C:
				t1 := time.Now()
				in.local.dur.WaitingInput += t1.Sub(t0)
				if cur := paneIndex(in.job.Now(), slide); cur > swept {
					in.sweepTick(cur, t1, emit)
					swept = cur
				}
				continue
			}
		}
		t1 := time.Now()
		in.local.dur.WaitingInput += t1.Sub(t0)
		if !ok {
			// Drain: leave open panes in the keyed state — the
			// teardown snapshot (rescale or stop) carries them to the
			// next deployment or to the caller.
			return
		}
		vals, t1 := in.decodeBatch(b, t1)
		emitted0 := in.local.dur.Serialization + in.local.dur.WaitingOutput
		cur := paneIndex(in.job.Now(), slide)
		for i := range b.msgs {
			m := &b.msgs[i]
			v := m.val
			if vals != nil {
				v = vals[i]
			}
			in.curSrc = m.src
			ws, _ := in.state[m.key].(*WindowState)
			if ws == nil {
				ws = &WindowState{NextFire: cur, Panes: make(map[int64]any)}
				in.state[m.key] = ws
			}
			ws.Panes[cur] = spec.Process(ws.Panes[cur], m.key, v, emit)
			if spec.Cost > 0 {
				in.work(spec.Cost)
			}
		}
		if cur > swept {
			in.curSrc = time.Time{}
			in.sweepDue(cur, emit)
			swept = cur
		}
		t3 := time.Now()
		proc := t3.Sub(t1) - (in.local.dur.Serialization + in.local.dur.WaitingOutput - emitted0)
		if proc < 0 {
			proc = 0
		}
		in.local.dur.Processing += proc
		in.local.processed += int64(len(b.msgs))
		in.noteFirstRecord(t3)
		in.job.putBatch(b)
		in.maybeFlushAcc(t3)
		in.maybeFlushPending(t3)
	}
}

// sweepTick fires due windows from the idle tick. Fired results are
// flushed immediately — the next natural flush could be a whole tick
// away, far past FlushInterval.
func (in *instance) sweepTick(cur int64, t1 time.Time, emit Emit) {
	emitted0 := in.local.dur.Serialization + in.local.dur.WaitingOutput
	in.curSrc = time.Time{}
	in.sweepDue(cur, emit)
	t3 := time.Now()
	proc := t3.Sub(t1) - (in.local.dur.Serialization + in.local.dur.WaitingOutput - emitted0)
	if proc < 0 {
		proc = 0
	}
	in.local.dur.Processing += proc
	in.idleFlush()
}
