package streamrt

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
	"ds2/internal/obs"
)

// ErrStopped reports that the job was stopped; Runtime translates it
// to controlloop.ErrStopped so hosts see a clean shutdown.
var ErrStopped = errors.New("streamrt: job stopped")

// Config tunes a running Job.
type Config struct {
	// ChannelCapacity bounds every instance's input queue, counted in
	// batches (the exchange moves batches of up to BatchSize records).
	// Smaller queues mean tighter backpressure and faster drains on
	// rescale; values < 1 default to 16.
	ChannelCapacity int
	// BatchSize caps how many records one exchange batch carries. A
	// sender flushes a partial batch when it reaches this size, when
	// FlushInterval has passed, when it goes idle or sleeps for pacing,
	// and at exit. Values < 1 default to 256.
	BatchSize int
	// FlushInterval bounds how long a record may sit in a partial batch
	// (and how long instrumentation batches its clock splits), so
	// low-rate jobs keep per-record latency. Values <= 0 default to
	// 2ms.
	FlushInterval time.Duration
	// PartitionWeights optionally skews the deployment-time routing
	// table of a keyed operator (by name): instance i of operator op
	// receives a share of the known key universe proportional to
	// PartitionWeights[op][i]. Entries whose length does not match the
	// operator's parallelism, or with non-positive weights, are ignored
	// (equal shares). Keys outside the known universe fall back to
	// rendezvous hashing regardless.
	PartitionWeights map[string][]float64
	// BackpressureThreshold is the fraction of a window some upstream
	// instance must spend blocked pushing into an operator before that
	// operator is flagged backpressured (the Dhalion signal,
	// attributed to the congested receiver as on the simulator).
	// Values <= 0 default to 0.1.
	BackpressureThreshold float64
	// JitterTolerance is passed to metrics.WindowFromDurations; <= 0
	// selects metrics.DefaultJitterTolerance.
	JitterTolerance float64
	// LatencySampleEvery makes sinks record every Nth record's
	// source-to-sink latency (weight N). Values < 1 default to 1.
	LatencySampleEvery int
	// SourceSeqBlock is the block size of the distributed source
	// sequence striping: each worker process of a distributed job owns
	// every SourceSeqBlock-long run of global sequence numbers whose
	// block index is congruent to the worker index, so the workers
	// jointly emit exactly the single-process sequence set with no
	// cross-process coordination. Irrelevant to single-process jobs.
	// Values < 1 default to 8192.
	SourceSeqBlock int64
	// Metrics optionally exports the job's runtime telemetry — the §3
	// per-operator time splits, true/observed rates, batching and
	// backpressure counters, and a sampled record-latency histogram —
	// into an obs.Registry (typically shared with a /metrics exporter).
	// Nil disables telemetry; the hot path then pays one nil check per
	// batch and nothing per record.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.ChannelCapacity < 1 {
		c.ChannelCapacity = 16
	}
	if c.BatchSize < 1 {
		c.BatchSize = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.BackpressureThreshold <= 0 {
		c.BackpressureThreshold = 0.1
	}
	if c.LatencySampleEvery < 1 {
		c.LatencySampleEvery = 1
	}
	if c.SourceSeqBlock < 1 {
		c.SourceSeqBlock = 8192
	}
	return c
}

// Job is one deployed, running pipeline: goroutine-per-instance
// workers exchanging records over bounded channels. NewJob starts it;
// it runs until Stop (or until every bounded source is exhausted).
type Job struct {
	pipe  *Pipeline
	cfg   Config
	epoch time.Time // job time zero; job time = time.Since(epoch)
	// obs holds the pre-resolved metric handles when Config.Metrics is
	// set; nil disables all telemetry.
	obs *jobObs
	// dist is set when this Job hosts one worker's share of a
	// distributed deployment (see dist.go): instances whose placement
	// is elsewhere are skipped, remote edges go through the transport,
	// and sources stripe the sequence space. Nil for ordinary
	// single-process jobs — every dist branch below is a nil check.
	dist *distContext

	// batches recycles exchange batches job-wide: receivers return
	// every batch they finish, so the steady-state exchange allocates
	// nothing per record.
	batches sync.Pool

	mu         sync.Mutex
	cur        dataflow.Parallelism
	dep        *deployment
	seqs       map[string]*int64 // per-source sequence counters, shared across rescales
	winStart   float64           // job time of the last window cut
	rescales   int
	savepoints int
	stopped    bool
	final      map[string]map[string]any
}

// getBatch takes an empty batch from the pool (or allocates one sized
// for BatchSize records).
func (j *Job) getBatch() *batch {
	if b, ok := j.batches.Get().(*batch); ok {
		return b
	}
	return &batch{
		msgs: make([]message, 0, j.cfg.BatchSize),
		buf:  make([]byte, 0, j.cfg.BatchSize*32),
	}
}

// putBatch resets and recycles a processed batch. Message values are
// cleared so the pool does not pin records alive. A batch that arrived
// over a transport link returns one flow-control credit to its sender:
// recycling is the cross-process analogue of freeing a channel slot.
func (j *Job) putBatch(b *batch) {
	if b.from.link != nil {
		b.from.link.sendCredit(creditMsg{gen: b.from.gen, op: b.from.op, inst: b.from.inst, credits: 1})
		b.from = recvOrigin{}
	}
	clear(b.msgs)
	b.msgs = b.msgs[:0]
	b.buf = b.buf[:0]
	j.batches.Put(b)
}

// deployment is one generation of running instances; a rescale tears
// one down and builds the next.
type deployment struct {
	stopSources chan struct{}
	wg          sync.WaitGroup // every instance goroutine
	insts       map[string][]*instance
	// first resolves when the deployment processes its first record —
	// the end of a rescale's downtime window. Always allocated (one
	// channel per deploy); cancelled at teardown so waiters never leak.
	first *firstRecord
}

// NewJob validates the initial parallelism, deploys the pipeline and
// starts every instance.
func NewJob(p *Pipeline, initial dataflow.Parallelism, cfg Config) (*Job, error) {
	if p == nil {
		return nil, errors.New("streamrt: nil pipeline")
	}
	if err := initial.Validate(p.graph); err != nil {
		return nil, err
	}
	j := &Job{
		pipe:  p,
		cfg:   cfg.withDefaults(),
		epoch: time.Now(),
		cur:   initial.Clone(),
		seqs:  make(map[string]*int64),
	}
	for name := range p.sources {
		j.seqs[name] = new(int64)
	}
	if j.cfg.Metrics != nil {
		j.obs = newJobObs(j.cfg.Metrics, j.pipe, j.Rescales)
	}
	j.mu.Lock()
	j.deployLocked(nil)
	j.mu.Unlock()
	return j, nil
}

// newWorkerJob deploys one worker process's share of a distributed
// deployment: a Job whose instance set is filtered by the coordinator's
// placement, with remote edges riding dc's transport. The epoch and
// per-source sequence counters are the worker's — they survive across
// the worker's successive generations, exactly like a single-process
// Job's survive rescales.
func newWorkerJob(p *Pipeline, cur dataflow.Parallelism, cfg Config, dc *distContext,
	seqs map[string]*int64, epoch time.Time, states map[string]map[string]any) *Job {
	j := &Job{
		pipe:  p,
		cfg:   cfg.withDefaults(),
		epoch: epoch,
		cur:   cur.Clone(),
		seqs:  seqs,
		dist:  dc,
	}
	if j.cfg.Metrics != nil {
		j.obs = newJobObs(j.cfg.Metrics, j.pipe, j.Rescales)
	}
	j.mu.Lock()
	j.deployLocked(states)
	j.mu.Unlock()
	return j
}

// Now returns the current job time in seconds.
func (j *Job) Now() float64 { return time.Since(j.epoch).Seconds() }

// WindowStart returns the job time the open observation window
// started at.
func (j *Job) WindowStart() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.winStart
}

// Parallelism returns the deployed configuration.
func (j *Job) Parallelism() dataflow.Parallelism {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cur.Clone()
}

// Rescales returns how many redeployments the job has performed.
func (j *Job) Rescales() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rescales
}

// Stopped reports whether the job was stopped.
func (j *Job) Stopped() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stopped
}

// deployLocked builds channels and instances for j.cur and starts
// every worker. states carries repartitionable keyed state from the
// previous deployment (nil on first start). Callers hold j.mu.
func (j *Job) deployLocked(states map[string]map[string]any) {
	g := j.pipe.graph
	dep := &deployment{
		stopSources: make(chan struct{}),
		insts:       make(map[string][]*instance, g.NumOperators()),
		first:       newFirstRecord(),
	}

	// Input queues and close-cascade bookkeeping: each non-source
	// operator's channels close once all of its upstream instances
	// have exited, so records drain fully before downstream workers
	// stop.
	chans := make(map[string][]chan *batch, g.NumOperators())
	inWGs := make(map[string]*sync.WaitGroup, g.NumOperators())
	// One router per keyed operator per deployment, shared between the
	// exchange and state repartitioning, so a key's records and its
	// state can never disagree on the owning instance. The routing
	// table stripes the known key universe (the rescale snapshot's
	// keys) evenly — or by Config.PartitionWeights — over the
	// instances; unseen keys use rendezvous hashing.
	routers := make(map[string]*router)
	dc := j.dist
	hosted := func(op string, k int) bool { return dc == nil || dc.assign[op][k] == dc.worker }
	// In a distributed deployment a receiver's channel also buffers the
	// remote senders' credit windows: the transport read loop must be
	// able to deliver every in-flight remote batch without blocking, so
	// a slow consumer stalls its senders through the credit gate, never
	// the shared read loop.
	capacity := j.cfg.ChannelCapacity
	if dc != nil {
		capacity += remoteWindow(&j.cfg) * (dc.workers - 1)
	}
	// Per downstream operator, the sender-side remote machinery: credit
	// gates toward remotely hosted instances and the links that carry
	// the close cascade's DONE frames.
	remotes := make(map[string][]*remoteDest)
	doneTo := make(map[string][]*link)
	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		if op.Role == dataflow.RoleSource {
			continue
		}
		if spec := j.pipe.ops[op.Name]; spec.Keyed {
			if dc != nil {
				// The routing table is the coordinator's, identical on
				// every worker — a table rebuilt from this worker's
				// partial state would route keys differently per
				// process.
				routers[op.Name] = routerFromTable(dc.tables[op.Name], j.cur[op.Name])
			} else {
				routers[op.Name] = buildRouter(states[op.Name], j.cur[op.Name], j.cfg.PartitionWeights[op.Name])
			}
		}
		cs := make([]chan *batch, j.cur[op.Name])
		anyLocal := false
		for k := range cs {
			if hosted(op.Name, k) {
				cs[k] = make(chan *batch, capacity)
				anyLocal = true
			}
		}
		chans[op.Name] = cs
		if dc != nil {
			rds := make([]*remoteDest, j.cur[op.Name])
			seenPeer := make(map[int]bool)
			for k := range rds {
				w := dc.assign[op.Name][k]
				if w == dc.worker {
					continue
				}
				tokens := make(chan struct{}, remoteWindow(&j.cfg))
				for t := 0; t < cap(tokens); t++ {
					tokens <- struct{}{}
				}
				rds[k] = &remoteDest{link: dc.peers[w], opID: uint16(i), inst: uint16(k), tokens: tokens}
				if !seenPeer[w] {
					seenPeer[w] = true
					doneTo[op.Name] = append(doneTo[op.Name], dc.peers[w])
				}
			}
			remotes[op.Name] = rds
		}
		if !anyLocal {
			continue // close cascade and input wiring live where the instances do
		}
		up := 0
		for _, u := range g.Upstream(i) {
			up += j.cur[g.Operator(u).Name]
		}
		wg := new(sync.WaitGroup)
		wg.Add(up)
		inWGs[op.Name] = wg
		go func(wg *sync.WaitGroup, cs []chan *batch) {
			wg.Wait()
			for _, c := range cs {
				if c != nil {
					close(c)
				}
			}
		}(wg, cs)
	}

	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		p := j.cur[op.Name]
		var outs []outEdge
		for _, d := range g.Downstream(i) {
			down := g.Operator(d)
			spec := j.pipe.ops[down.Name]
			ae, _ := spec.Codec.(AppendEncoder)
			oe := outEdge{
				op:        down.Name,
				keyed:     spec.Keyed,
				codec:     spec.Codec,
				appendEnc: ae,
				router:    routers[down.Name],
				chans:     chans[down.Name],
				done:      inWGs[down.Name],
			}
			if dc != nil {
				oe.opID = uint16(d)
				oe.gen = dc.gen
				oe.remote = remotes[down.Name]
				oe.doneLinks = doneTo[down.Name]
			}
			outs = append(outs, oe)
		}
		for k := 0; k < p; k++ {
			if !hosted(op.Name, k) {
				continue
			}
			// Each instance gets its own edge copies: the per-edge
			// round-robin cursor and the pending output batches are
			// worker-goroutine state; the cursor is seeded with the
			// instance index to spread streams across senders.
			myOuts := append([]outEdge(nil), outs...)
			for e := range myOuts {
				myOuts[e].rr = k
				myOuts[e].pend = make([]*batch, len(myOuts[e].chans))
			}
			in := &instance{
				job:   j,
				op:    op.Name,
				idx:   k,
				sink:  op.Role == dataflow.RoleSink,
				outs:  myOuts,
				first: dep.first,
			}
			if in.sink && j.obs != nil {
				in.latHist = j.obs.latHist(op.Name)
			}
			in.local.downWait = make([]time.Duration, len(myOuts))
			if op.Role == dataflow.RoleSource {
				in.src = j.pipe.sources[op.Name]
				in.seq = j.seqs[op.Name]
				in.nsrc = p
				in.seqNW = 1
				in.srcLimit = in.src.Limit
				if dc != nil {
					// Sequence blocks are striped over the workers that
					// actually host an instance of this source — a
					// worker with no instances would own blocks nobody
					// ever emits.
					hosts := hostingWorkers(dc.assign[op.Name])
					rank := 0
					for i, w := range hosts {
						if w == dc.worker {
							rank = i
						}
					}
					in.seqNW = len(hosts)
					in.seqWorker = rank
					in.seqBlock = j.cfg.SourceSeqBlock
					in.srcLimit = localSeqLimit(in.src.Limit, rank, len(hosts), j.cfg.SourceSeqBlock)
					in.startGate = dc.start
				}
			} else {
				in.spec = j.pipe.ops[op.Name]
				in.in = chans[op.Name][k]
				if in.spec.Keyed {
					in.state = partitionState(states[op.Name], routers[op.Name], k)
				}
			}
			dep.insts[op.Name] = append(dep.insts[op.Name], in)
		}
	}

	if dc != nil {
		// Publish the receive table before any instance runs: DATA,
		// DONE and CREDIT frames for this generation may arrive the
		// moment the coordinator releases the start gates, and the
		// transport's read loops resolve everything through this one
		// atomic pointer.
		numOps := g.NumOperators()
		rt := &recvTable{
			gen:     dc.gen,
			job:     j,
			chans:   make([][]chan *batch, numOps),
			wgs:     make([]*sync.WaitGroup, numOps),
			credits: make([][]chan struct{}, numOps),
		}
		for i := 0; i < numOps; i++ {
			name := g.Operator(i).Name
			rt.chans[i] = chans[name]
			rt.wgs[i] = inWGs[name]
			if rds := remotes[name]; rds != nil {
				pools := make([]chan struct{}, len(rds))
				for k, rd := range rds {
					if rd != nil {
						pools[k] = rd.tokens
					}
				}
				rt.credits[i] = pools
			}
		}
		dc.tr.recv.Store(rt)
	}

	for _, list := range dep.insts {
		for _, in := range list {
			dep.wg.Add(1)
			go func(in *instance) {
				defer dep.wg.Done()
				switch {
				case in.src != nil:
					in.runSource(dep.stopSources)
				case in.spec.Window != nil:
					in.runWindowed()
				default:
					in.runOperator()
				}
			}(in)
		}
	}
	j.dep = dep
}

// partitionState selects the keys instance idx owns under the
// deployment's router.
func partitionState(all map[string]any, rt *router, idx int) map[string]any {
	out := make(map[string]any)
	for k, v := range all {
		if rt.owner(k) == idx {
			out[k] = v
		}
	}
	return out
}

// stopLocked stops the sources and drains the pipeline (the close
// cascade guarantees every in-flight record is processed), returning
// the quiesced deployment — the rescale trace's "drain" phase. Callers
// hold j.mu.
func (j *Job) stopLocked() *deployment {
	dep := j.dep
	dep.first.cancel()
	close(dep.stopSources)
	dep.wg.Wait()
	j.dep = nil
	return dep
}

// snapshotStates merges a quiesced deployment's keyed state per
// stateful operator — the "snapshot" phase. Instance goroutines have
// exited, so their state maps are safe to read; keys are disjoint
// across instances by the deployment's router.
func (j *Job) snapshotStates(dep *deployment) map[string]map[string]any {
	states := make(map[string]map[string]any)
	for name, list := range dep.insts {
		spec := j.pipe.ops[name]
		if spec == nil || !spec.Keyed {
			continue
		}
		merged := make(map[string]any)
		for _, in := range list {
			for k, v := range in.state {
				merged[k] = v
			}
		}
		states[name] = merged
	}
	return states
}

// teardownLocked stops, drains, and snapshots the current deployment.
// Callers hold j.mu.
func (j *Job) teardownLocked() map[string]map[string]any {
	return j.snapshotStates(j.stopLocked())
}

// Rescale redeploys the job at a new parallelism via the paper's
// savepoint-and-restore shape: drain, snapshot keyed state,
// repartition it under the new configuration, restart. The pause
// pollutes the open observation window, so the window is discarded and
// restarted at the new deployment (settle semantics — the next
// interval starts clean, as the Flink integration's §4.1 metrics
// reset).
func (j *Job) Rescale(newP dataflow.Parallelism) error {
	if err := newP.Validate(j.pipe.graph); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return ErrStopped
	}
	tr := j.obs.beginRescaleTrace(j.rescales + 1)
	var dep *deployment
	tr.phase(phaseDrain, func(uint64) { dep = j.stopLocked() })
	var states map[string]map[string]any
	tr.phase(phaseSnapshot, func(uint64) { states = j.snapshotStates(dep) })
	j.cur = newP.Clone()
	tr.phase(phaseRestart, func(uint64) { j.deployLocked(states) })
	j.rescales++
	j.winStart = j.Now()
	if tr != nil {
		restartEnd := tr.now()
		first := j.dep.first
		go func() {
			at, ok := first.wait(firstRecordWait)
			tr.finish(restartEnd, at, ok)
		}()
	}
	return nil
}

// RescaleTraces returns the retained rescale span timelines, oldest
// first — the payload behind the service's GET /jobs/{id}/rescales.
// Nil when telemetry is off (Config.Metrics unset).
func (j *Job) RescaleTraces() []obs.TraceView {
	if j.obs == nil {
		return nil
	}
	return j.obs.rescale.ring.Views()
}

// Stop tears the job down and returns the final keyed state of every
// stateful operator (operator -> key -> state). It is idempotent.
func (j *Job) Stop() map[string]map[string]any {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return j.final
	}
	j.final = j.teardownLocked()
	j.stopped = true
	return j.final
}

// Wait blocks until every instance has exited on its own — i.e. every
// bounded source hit its Limit and the pipeline drained — or the job
// was stopped. It does not stop the job; call Stop afterwards to
// collect final state. Rescales are transparent: a drained-for-rescale
// deployment does not satisfy Wait, which moves on to the replacement
// generation.
func (j *Job) Wait() {
	for {
		j.mu.Lock()
		dep := j.dep
		j.mu.Unlock()
		if dep == nil {
			return // stopped
		}
		dep.wg.Wait()
		j.mu.Lock()
		current := j.dep == dep
		j.mu.Unlock()
		if current {
			return // exhausted naturally and never replaced
		}
	}
}

// waitCurrent blocks until the current deployment's instances have all
// exited and reports whether that deployment was still current when
// they did — i.e. the sources exhausted naturally rather than being
// drained for a rescale. Used by the distributed worker's wait RPC.
func (j *Job) waitCurrent() bool {
	j.mu.Lock()
	dep := j.dep
	j.mu.Unlock()
	if dep == nil {
		return false
	}
	dep.wg.Wait()
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dep == dep
}

// drain stops and drains the current deployment, returning the merged
// keyed state — the worker-side half of a distributed rescale or stop.
// Nil if there is nothing deployed.
func (j *Job) drain() map[string]map[string]any {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped || j.dep == nil {
		return nil
	}
	return j.teardownLocked()
}

// Interval is everything one observation window produced — the
// wall-clock analogue of the simulator's IntervalStats. Observation
// and Report convert it for the in-process Controller and the ds2d
// wire format respectively.
type Interval struct {
	Start, End           float64
	Windows              []metrics.WindowMetrics
	TargetRates          map[string]float64
	SourceObserved       map[string]float64
	Backpressured        []string
	BackpressureFraction map[string]float64
	Parallelism          dataflow.Parallelism
	Workers              int
	Latencies            []metrics.LatencySample
}

// wireAcc is one instance's taken accumulator in wire form: a worker of
// a distributed deployment ships these to the coordinator at collect
// time, and the single-process Collect goes through the same struct so
// both runtimes build intervals with byte-identical logic (decision
// parity between local and distributed runs depends on it).
type wireAcc struct {
	Op            string                  `json:"op"`
	Idx           int                     `json:"idx"`
	IsSrc         bool                    `json:"is_src,omitempty"`
	DownOps       []string                `json:"down_ops,omitempty"`
	DurNanos      [5]int64                `json:"dur_nanos"` // deser, proc, ser, wait_in, wait_out
	Processed     int64                   `json:"processed"`
	Pushed        int64                   `json:"pushed"`
	DownWaitNanos []int64                 `json:"down_wait_nanos,omitempty"`
	Lats          []metrics.LatencySample `json:"lats,omitempty"`
}

// takeAccsLocked takes every deployed instance's accumulator (resetting
// them — the next window starts now) in wire form. Callers hold j.mu
// with j.dep non-nil.
func (j *Job) takeAccsLocked() []wireAcc {
	var out []wireAcc
	for name, list := range j.dep.insts {
		_, isSrc := j.pipe.sources[name]
		for _, in := range list {
			s := in.acc.take()
			wa := wireAcc{
				Op:    name,
				Idx:   in.idx,
				IsSrc: isSrc,
				DurNanos: [5]int64{
					int64(s.dur.Deserialization), int64(s.dur.Processing), int64(s.dur.Serialization),
					int64(s.dur.WaitingInput), int64(s.dur.WaitingOutput),
				},
				Processed: s.processed,
				Pushed:    s.pushed,
				Lats:      s.lats,
			}
			for e := range in.outs {
				wa.DownOps = append(wa.DownOps, in.outs[e].op)
			}
			for _, w := range s.downWait {
				wa.DownWaitNanos = append(wa.DownWaitNanos, int64(w))
			}
			out = append(out, wa)
		}
	}
	return out
}

// buildInterval turns taken accumulators into an Interval — the shared
// build phase of the single-process Job.Collect and the distributed
// Cluster.Collect. It needs no lock: it works on the taken snapshots
// and the immutable pipeline, plus the user's Rate function.
func buildInterval(pipe *Pipeline, cfg Config, accs []wireAcc, start, end float64, par dataflow.Parallelism) (Interval, error) {
	iv := Interval{
		Start:                start,
		End:                  end,
		TargetRates:          make(map[string]float64),
		SourceObserved:       make(map[string]float64),
		BackpressureFraction: make(map[string]float64),
		Parallelism:          par,
		Workers:              par.Total(),
	}
	span := end - start
	window := time.Duration(span * float64(time.Second))
	if len(accs) == 0 || window <= 0 {
		return iv, nil
	}
	// Backpressure is attributed to the congested *receiver* — the
	// operator whose input queue blocked its senders — matching the
	// simulator's input-queue semantics, so rule-based policies
	// (Dhalion's "most downstream backpressured operator") diagnose
	// the same bottleneck on both runtimes. Sources are never flagged
	// (nothing sends into them). The sender's blocked time still
	// appears as its own WaitingOutput window metric.
	maxBP := make(map[string]float64)
	for _, t := range accs {
		id := metrics.InstanceID{Operator: t.Op, Index: t.Idx}
		dur := metrics.Durations{
			Deserialization: time.Duration(t.DurNanos[0]),
			Processing:      time.Duration(t.DurNanos[1]),
			Serialization:   time.Duration(t.DurNanos[2]),
			WaitingInput:    time.Duration(t.DurNanos[3]),
			WaitingOutput:   time.Duration(t.DurNanos[4]),
		}
		w, err := metrics.WindowFromDurations(id, window, dur, t.Processed, t.Pushed, cfg.JitterTolerance)
		if err != nil {
			return Interval{}, fmt.Errorf("streamrt: collecting %s: %w", id, err)
		}
		iv.Windows = append(iv.Windows, w)
		if t.IsSrc {
			iv.SourceObserved[t.Op] += float64(t.Pushed) / span
		}
		for e, down := range t.DownOps {
			if e >= len(t.DownWaitNanos) {
				break // instance recorded nothing this window
			}
			f := (time.Duration(t.DownWaitNanos[e])).Seconds() / span
			if f > 1 {
				f = 1
			}
			if f > maxBP[down] {
				maxBP[down] = f
			}
		}
		iv.Latencies = append(iv.Latencies, t.Lats...)
	}
	for name, spec := range pipe.sources {
		iv.TargetRates[name] = spec.Rate(end)
	}
	for name, f := range maxBP {
		if f > 0 {
			iv.BackpressureFraction[name] = f
		}
		if f > cfg.BackpressureThreshold {
			iv.Backpressured = append(iv.Backpressured, name)
		}
	}
	// Map iteration order is random; the wire format and traces expect
	// deterministic ordering.
	sort.Strings(iv.Backpressured)
	sort.Slice(iv.Windows, func(a, b int) bool {
		if iv.Windows[a].ID.Operator != iv.Windows[b].ID.Operator {
			return iv.Windows[a].ID.Operator < iv.Windows[b].ID.Operator
		}
		return iv.Windows[a].ID.Index < iv.Windows[b].ID.Index
	})
	return iv, nil
}

// Collect cuts the open observation window: one WindowMetrics per
// instance from its wall-clock counters, plus the external signals
// (target and achieved source rates, backpressure flags, latency
// samples). The next window starts at the cut.
func (j *Job) Collect() (Interval, error) {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return Interval{}, ErrStopped
	}
	end := j.Now()
	start := j.winStart
	par := j.cur.Clone()
	var accs []wireAcc
	if j.dep != nil && end > start {
		// Take every accumulator and advance the window before building
		// a single WindowMetrics: a build error then discards the
		// interval wholesale — all counters reset and winStart advanced
		// together — instead of losing a random prefix of instances
		// while the next interval's span still includes this one.
		accs = j.takeAccsLocked()
		j.winStart = end
	}
	j.mu.Unlock()
	iv, err := buildInterval(j.pipe, j.cfg, accs, start, end, par)
	if err != nil {
		return Interval{}, err
	}
	if j.obs != nil && len(accs) > 0 {
		j.obs.observeInterval(iv)
	}
	return iv, nil
}

// NextInterval blocks until the open window covers d seconds of job
// time, then cuts and returns it. It returns ErrStopped once the job
// was stopped.
func (j *Job) NextInterval(d float64) (Interval, error) {
	for {
		j.mu.Lock()
		stopped := j.stopped
		remain := j.winStart + d - j.Now()
		j.mu.Unlock()
		if stopped {
			return Interval{}, ErrStopped
		}
		if remain <= 0 {
			return j.Collect()
		}
		// Cap the sleep so a Stop during a long interval is noticed
		// promptly.
		const maxSleep = 50 * time.Millisecond
		if remain > maxSleep.Seconds() {
			time.Sleep(maxSleep)
		} else {
			time.Sleep(time.Duration(remain * float64(time.Second)))
		}
	}
}

// hashKey is FNV-1a 64 — the stable hash behind the router's
// rendezvous fallback, so an unseen key's owning instance is a pure
// function of (key, parallelism).
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
