package streamrt

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
	"ds2/internal/obs"
)

// ErrStopped reports that the job was stopped; Runtime translates it
// to controlloop.ErrStopped so hosts see a clean shutdown.
var ErrStopped = errors.New("streamrt: job stopped")

// Config tunes a running Job.
type Config struct {
	// ChannelCapacity bounds every instance's input queue, counted in
	// batches (the exchange moves batches of up to BatchSize records).
	// Smaller queues mean tighter backpressure and faster drains on
	// rescale; values < 1 default to 16.
	ChannelCapacity int
	// BatchSize caps how many records one exchange batch carries. A
	// sender flushes a partial batch when it reaches this size, when
	// FlushInterval has passed, when it goes idle or sleeps for pacing,
	// and at exit. Values < 1 default to 256.
	BatchSize int
	// FlushInterval bounds how long a record may sit in a partial batch
	// (and how long instrumentation batches its clock splits), so
	// low-rate jobs keep per-record latency. Values <= 0 default to
	// 2ms.
	FlushInterval time.Duration
	// PartitionWeights optionally skews the deployment-time routing
	// table of a keyed operator (by name): instance i of operator op
	// receives a share of the known key universe proportional to
	// PartitionWeights[op][i]. Entries whose length does not match the
	// operator's parallelism, or with non-positive weights, are ignored
	// (equal shares). Keys outside the known universe fall back to
	// rendezvous hashing regardless.
	PartitionWeights map[string][]float64
	// BackpressureThreshold is the fraction of a window some upstream
	// instance must spend blocked pushing into an operator before that
	// operator is flagged backpressured (the Dhalion signal,
	// attributed to the congested receiver as on the simulator).
	// Values <= 0 default to 0.1.
	BackpressureThreshold float64
	// JitterTolerance is passed to metrics.WindowFromDurations; <= 0
	// selects metrics.DefaultJitterTolerance.
	JitterTolerance float64
	// LatencySampleEvery makes sinks record every Nth record's
	// source-to-sink latency (weight N). Values < 1 default to 1.
	LatencySampleEvery int
	// Metrics optionally exports the job's runtime telemetry — the §3
	// per-operator time splits, true/observed rates, batching and
	// backpressure counters, and a sampled record-latency histogram —
	// into an obs.Registry (typically shared with a /metrics exporter).
	// Nil disables telemetry; the hot path then pays one nil check per
	// batch and nothing per record.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.ChannelCapacity < 1 {
		c.ChannelCapacity = 16
	}
	if c.BatchSize < 1 {
		c.BatchSize = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.BackpressureThreshold <= 0 {
		c.BackpressureThreshold = 0.1
	}
	if c.LatencySampleEvery < 1 {
		c.LatencySampleEvery = 1
	}
	return c
}

// Job is one deployed, running pipeline: goroutine-per-instance
// workers exchanging records over bounded channels. NewJob starts it;
// it runs until Stop (or until every bounded source is exhausted).
type Job struct {
	pipe  *Pipeline
	cfg   Config
	epoch time.Time // job time zero; job time = time.Since(epoch)
	// obs holds the pre-resolved metric handles when Config.Metrics is
	// set; nil disables all telemetry.
	obs *jobObs

	// batches recycles exchange batches job-wide: receivers return
	// every batch they finish, so the steady-state exchange allocates
	// nothing per record.
	batches sync.Pool

	mu       sync.Mutex
	cur      dataflow.Parallelism
	dep      *deployment
	seqs     map[string]*int64 // per-source sequence counters, shared across rescales
	winStart float64           // job time of the last window cut
	rescales int
	stopped  bool
	final    map[string]map[string]any
}

// getBatch takes an empty batch from the pool (or allocates one sized
// for BatchSize records).
func (j *Job) getBatch() *batch {
	if b, ok := j.batches.Get().(*batch); ok {
		return b
	}
	return &batch{
		msgs: make([]message, 0, j.cfg.BatchSize),
		buf:  make([]byte, 0, j.cfg.BatchSize*32),
	}
}

// putBatch resets and recycles a processed batch. Message values are
// cleared so the pool does not pin records alive.
func (j *Job) putBatch(b *batch) {
	clear(b.msgs)
	b.msgs = b.msgs[:0]
	b.buf = b.buf[:0]
	j.batches.Put(b)
}

// deployment is one generation of running instances; a rescale tears
// one down and builds the next.
type deployment struct {
	stopSources chan struct{}
	wg          sync.WaitGroup // every instance goroutine
	insts       map[string][]*instance
}

// NewJob validates the initial parallelism, deploys the pipeline and
// starts every instance.
func NewJob(p *Pipeline, initial dataflow.Parallelism, cfg Config) (*Job, error) {
	if p == nil {
		return nil, errors.New("streamrt: nil pipeline")
	}
	if err := initial.Validate(p.graph); err != nil {
		return nil, err
	}
	j := &Job{
		pipe:  p,
		cfg:   cfg.withDefaults(),
		epoch: time.Now(),
		cur:   initial.Clone(),
		seqs:  make(map[string]*int64),
	}
	for name := range p.sources {
		j.seqs[name] = new(int64)
	}
	if j.cfg.Metrics != nil {
		j.obs = newJobObs(j.cfg.Metrics, j)
	}
	j.mu.Lock()
	j.deployLocked(nil)
	j.mu.Unlock()
	return j, nil
}

// Now returns the current job time in seconds.
func (j *Job) Now() float64 { return time.Since(j.epoch).Seconds() }

// WindowStart returns the job time the open observation window
// started at.
func (j *Job) WindowStart() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.winStart
}

// Parallelism returns the deployed configuration.
func (j *Job) Parallelism() dataflow.Parallelism {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cur.Clone()
}

// Rescales returns how many redeployments the job has performed.
func (j *Job) Rescales() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rescales
}

// Stopped reports whether the job was stopped.
func (j *Job) Stopped() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stopped
}

// deployLocked builds channels and instances for j.cur and starts
// every worker. states carries repartitionable keyed state from the
// previous deployment (nil on first start). Callers hold j.mu.
func (j *Job) deployLocked(states map[string]map[string]any) {
	g := j.pipe.graph
	dep := &deployment{
		stopSources: make(chan struct{}),
		insts:       make(map[string][]*instance, g.NumOperators()),
	}

	// Input queues and close-cascade bookkeeping: each non-source
	// operator's channels close once all of its upstream instances
	// have exited, so records drain fully before downstream workers
	// stop.
	chans := make(map[string][]chan *batch, g.NumOperators())
	inWGs := make(map[string]*sync.WaitGroup, g.NumOperators())
	// One router per keyed operator per deployment, shared between the
	// exchange and state repartitioning, so a key's records and its
	// state can never disagree on the owning instance. The routing
	// table stripes the known key universe (the rescale snapshot's
	// keys) evenly — or by Config.PartitionWeights — over the
	// instances; unseen keys use rendezvous hashing.
	routers := make(map[string]*router)
	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		if op.Role == dataflow.RoleSource {
			continue
		}
		if spec := j.pipe.ops[op.Name]; spec.Keyed {
			routers[op.Name] = buildRouter(states[op.Name], j.cur[op.Name], j.cfg.PartitionWeights[op.Name])
		}
		cs := make([]chan *batch, j.cur[op.Name])
		for k := range cs {
			cs[k] = make(chan *batch, j.cfg.ChannelCapacity)
		}
		chans[op.Name] = cs
		up := 0
		for _, u := range g.Upstream(i) {
			up += j.cur[g.Operator(u).Name]
		}
		wg := new(sync.WaitGroup)
		wg.Add(up)
		inWGs[op.Name] = wg
		go func(wg *sync.WaitGroup, cs []chan *batch) {
			wg.Wait()
			for _, c := range cs {
				close(c)
			}
		}(wg, cs)
	}

	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		p := j.cur[op.Name]
		var outs []outEdge
		for _, d := range g.Downstream(i) {
			down := g.Operator(d)
			spec := j.pipe.ops[down.Name]
			ae, _ := spec.Codec.(AppendEncoder)
			outs = append(outs, outEdge{
				op:        down.Name,
				keyed:     spec.Keyed,
				codec:     spec.Codec,
				appendEnc: ae,
				router:    routers[down.Name],
				chans:     chans[down.Name],
				done:      inWGs[down.Name],
			})
		}
		for k := 0; k < p; k++ {
			// Each instance gets its own edge copies: the per-edge
			// round-robin cursor and the pending output batches are
			// worker-goroutine state; the cursor is seeded with the
			// instance index to spread streams across senders.
			myOuts := append([]outEdge(nil), outs...)
			for e := range myOuts {
				myOuts[e].rr = k
				myOuts[e].pend = make([]*batch, len(myOuts[e].chans))
			}
			in := &instance{
				job:  j,
				op:   op.Name,
				idx:  k,
				sink: op.Role == dataflow.RoleSink,
				outs: myOuts,
			}
			if in.sink && j.obs != nil {
				in.latHist = j.obs.latHist(op.Name)
			}
			in.local.downWait = make([]time.Duration, len(myOuts))
			if op.Role == dataflow.RoleSource {
				in.src = j.pipe.sources[op.Name]
				in.seq = j.seqs[op.Name]
				in.nsrc = p
			} else {
				in.spec = j.pipe.ops[op.Name]
				in.in = chans[op.Name][k]
				if in.spec.Keyed {
					in.state = partitionState(states[op.Name], routers[op.Name], k)
				}
			}
			dep.insts[op.Name] = append(dep.insts[op.Name], in)
		}
	}

	for _, list := range dep.insts {
		for _, in := range list {
			dep.wg.Add(1)
			go func(in *instance) {
				defer dep.wg.Done()
				switch {
				case in.src != nil:
					in.runSource(dep.stopSources)
				case in.spec.Window != nil:
					in.runWindowed()
				default:
					in.runOperator()
				}
			}(in)
		}
	}
	j.dep = dep
}

// partitionState selects the keys instance idx owns under the
// deployment's router.
func partitionState(all map[string]any, rt *router, idx int) map[string]any {
	out := make(map[string]any)
	for k, v := range all {
		if rt.owner(k) == idx {
			out[k] = v
		}
	}
	return out
}

// teardownLocked stops the sources, drains the pipeline (the close
// cascade guarantees every in-flight record is processed), and returns
// the merged keyed state of every stateful operator. Callers hold
// j.mu.
func (j *Job) teardownLocked() map[string]map[string]any {
	dep := j.dep
	close(dep.stopSources)
	dep.wg.Wait()
	states := make(map[string]map[string]any)
	for name, list := range dep.insts {
		spec := j.pipe.ops[name]
		if spec == nil || !spec.Keyed {
			continue
		}
		merged := make(map[string]any)
		for _, in := range list {
			// Instance goroutines have exited (wg.Wait above), so
			// their state maps are safe to read. Keys are disjoint
			// across instances by the deployment's router.
			for k, v := range in.state {
				merged[k] = v
			}
		}
		states[name] = merged
	}
	j.dep = nil
	return states
}

// Rescale redeploys the job at a new parallelism via the paper's
// savepoint-and-restore shape: drain, snapshot keyed state,
// repartition it under the new configuration, restart. The pause
// pollutes the open observation window, so the window is discarded and
// restarted at the new deployment (settle semantics — the next
// interval starts clean, as the Flink integration's §4.1 metrics
// reset).
func (j *Job) Rescale(newP dataflow.Parallelism) error {
	if err := newP.Validate(j.pipe.graph); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return ErrStopped
	}
	states := j.teardownLocked()
	j.cur = newP.Clone()
	j.deployLocked(states)
	j.rescales++
	j.winStart = j.Now()
	return nil
}

// Stop tears the job down and returns the final keyed state of every
// stateful operator (operator -> key -> state). It is idempotent.
func (j *Job) Stop() map[string]map[string]any {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return j.final
	}
	j.final = j.teardownLocked()
	j.stopped = true
	return j.final
}

// Wait blocks until every instance has exited on its own — i.e. every
// bounded source hit its Limit and the pipeline drained — or the job
// was stopped. It does not stop the job; call Stop afterwards to
// collect final state. Rescales are transparent: a drained-for-rescale
// deployment does not satisfy Wait, which moves on to the replacement
// generation.
func (j *Job) Wait() {
	for {
		j.mu.Lock()
		dep := j.dep
		j.mu.Unlock()
		if dep == nil {
			return // stopped
		}
		dep.wg.Wait()
		j.mu.Lock()
		current := j.dep == dep
		j.mu.Unlock()
		if current {
			return // exhausted naturally and never replaced
		}
	}
}

// Interval is everything one observation window produced — the
// wall-clock analogue of the simulator's IntervalStats. Observation
// and Report convert it for the in-process Controller and the ds2d
// wire format respectively.
type Interval struct {
	Start, End           float64
	Windows              []metrics.WindowMetrics
	TargetRates          map[string]float64
	SourceObserved       map[string]float64
	Backpressured        []string
	BackpressureFraction map[string]float64
	Parallelism          dataflow.Parallelism
	Workers              int
	Latencies            []metrics.LatencySample
}

// Collect cuts the open observation window: one WindowMetrics per
// instance from its wall-clock counters, plus the external signals
// (target and achieved source rates, backpressure flags, latency
// samples). The next window starts at the cut.
func (j *Job) Collect() (Interval, error) {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return Interval{}, ErrStopped
	}
	end := j.Now()
	iv := Interval{
		Start:                j.winStart,
		End:                  end,
		TargetRates:          make(map[string]float64),
		SourceObserved:       make(map[string]float64),
		BackpressureFraction: make(map[string]float64),
		Parallelism:          j.cur.Clone(),
		Workers:              j.cur.Total(),
	}
	span := end - j.winStart
	window := time.Duration(span * float64(time.Second))
	if j.dep == nil || window <= 0 {
		j.mu.Unlock()
		return iv, nil
	}
	// Take every accumulator and advance the window before building a
	// single WindowMetrics: a build error then discards the interval
	// wholesale — all counters reset and winStart advanced together —
	// instead of losing a random prefix of instances while the next
	// interval's span still includes this one.
	type takenAcc struct {
		id      metrics.InstanceID
		isSrc   bool
		downOps []string // receiving operator per out edge
		snap    accSnapshot
	}
	var taken []takenAcc
	for name, list := range j.dep.insts {
		_, isSrc := j.pipe.sources[name]
		for _, in := range list {
			t := takenAcc{
				id:    metrics.InstanceID{Operator: name, Index: in.idx},
				isSrc: isSrc,
				snap:  in.acc.take(),
			}
			for e := range in.outs {
				t.downOps = append(t.downOps, in.outs[e].op)
			}
			taken = append(taken, t)
		}
	}
	j.winStart = end
	// The build phase below needs nothing the lock guards — it works
	// on the taken snapshots and the immutable pipeline — and it calls
	// the user's Rate function, which (although SourceSpec forbids it
	// from touching the Job API) should at least not deadlock the
	// collection path if it does.
	j.mu.Unlock()

	// Backpressure is attributed to the congested *receiver* — the
	// operator whose input queue blocked its senders — matching the
	// simulator's input-queue semantics, so rule-based policies
	// (Dhalion's "most downstream backpressured operator") diagnose
	// the same bottleneck on both runtimes. Sources are never flagged
	// (nothing sends into them). The sender's blocked time still
	// appears as its own WaitingOutput window metric.
	maxBP := make(map[string]float64)
	for _, t := range taken {
		w, err := metrics.WindowFromDurations(t.id, window, t.snap.dur,
			t.snap.processed, t.snap.pushed, j.cfg.JitterTolerance)
		if err != nil {
			return Interval{}, fmt.Errorf("streamrt: collecting %s: %w", t.id, err)
		}
		iv.Windows = append(iv.Windows, w)
		if t.isSrc {
			iv.SourceObserved[t.id.Operator] += float64(t.snap.pushed) / span
		}
		for e, down := range t.downOps {
			if e >= len(t.snap.downWait) {
				break // instance recorded nothing this window
			}
			f := t.snap.downWait[e].Seconds() / span
			if f > 1 {
				f = 1
			}
			if f > maxBP[down] {
				maxBP[down] = f
			}
		}
		iv.Latencies = append(iv.Latencies, t.snap.lats...)
	}
	for name, spec := range j.pipe.sources {
		iv.TargetRates[name] = spec.Rate(end)
	}
	for name, f := range maxBP {
		if f > 0 {
			iv.BackpressureFraction[name] = f
		}
		if f > j.cfg.BackpressureThreshold {
			iv.Backpressured = append(iv.Backpressured, name)
		}
	}
	// Map iteration order is random; the wire format and traces expect
	// deterministic ordering.
	sort.Strings(iv.Backpressured)
	sort.Slice(iv.Windows, func(a, b int) bool {
		if iv.Windows[a].ID.Operator != iv.Windows[b].ID.Operator {
			return iv.Windows[a].ID.Operator < iv.Windows[b].ID.Operator
		}
		return iv.Windows[a].ID.Index < iv.Windows[b].ID.Index
	})
	if j.obs != nil {
		j.obs.observeInterval(iv)
	}
	return iv, nil
}

// NextInterval blocks until the open window covers d seconds of job
// time, then cuts and returns it. It returns ErrStopped once the job
// was stopped.
func (j *Job) NextInterval(d float64) (Interval, error) {
	for {
		j.mu.Lock()
		stopped := j.stopped
		remain := j.winStart + d - j.Now()
		j.mu.Unlock()
		if stopped {
			return Interval{}, ErrStopped
		}
		if remain <= 0 {
			return j.Collect()
		}
		// Cap the sleep so a Stop during a long interval is noticed
		// promptly.
		const maxSleep = 50 * time.Millisecond
		if remain > maxSleep.Seconds() {
			time.Sleep(maxSleep)
		} else {
			time.Sleep(time.Duration(remain * float64(time.Second)))
		}
	}
}

// hashKey is FNV-1a 64 — the stable hash behind the router's
// rendezvous fallback, so an unseen key's owning instance is a pure
// function of (key, parallelism).
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
