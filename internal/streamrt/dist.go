package streamrt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/obs"
)

// Distributed streamrt: a Cluster (the coordinator, living in the
// controller process) drives N Worker processes, each hosting a subset
// of the pipeline's operator instances. Everything rides the framed
// transport (frame.go, transport.go): batches as DATA frames between
// workers, flow-control CREDIT frames back, DONE frames for the
// cross-process close cascade, and a JSON control protocol from the
// coordinator. The Cluster mirrors the single-process Job API
// (NextInterval / Collect / Rescale / Stop / Wait), builds intervals
// with the exact same code path (buildInterval), and routes keys from
// the exact same tables — so DS2 decisions, convergence behaviour and
// sink results are identical whether a pipeline runs in one process or
// many.

// Control request kinds.
const (
	ctrlDeploy  = byte(1)
	ctrlStart   = byte(2)
	ctrlDrain   = byte(3)
	ctrlCollect = byte(4)
	ctrlWait    = byte(5)
	// ctrlFirstRec polls whether the current generation has processed
	// its first record — the tail of a rescale trace. Non-blocking by
	// design: the coordinator polls, so the handler never parks a
	// control goroutine for seconds.
	ctrlFirstRec = byte(6)
)

// distContext is one worker process's view of one deployment
// generation, threaded through Job.deployLocked.
type distContext struct {
	worker  int
	workers int
	gen     uint32
	tr      *transport
	assign  map[string][]int          // operator -> instance -> hosting worker
	tables  map[string]map[string]int // keyed operator -> coordinator routing table
	peers   []*link                   // outbound data link per worker index (nil for self)
	start   chan struct{}             // closed by the coordinator's START
	started bool
}

// wireConfig is Config in wire form, shipped with every deploy so all
// workers batch, flush, pace and stripe identically.
type wireConfig struct {
	ChannelCapacity       int                  `json:"channel_capacity"`
	BatchSize             int                  `json:"batch_size"`
	FlushIntervalNanos    int64                `json:"flush_interval_nanos"`
	PartitionWeights      map[string][]float64 `json:"partition_weights,omitempty"`
	BackpressureThreshold float64              `json:"backpressure_threshold"`
	JitterTolerance       float64              `json:"jitter_tolerance"`
	LatencySampleEvery    int                  `json:"latency_sample_every"`
	SourceSeqBlock        int64                `json:"source_seq_block"`
}

func toWireConfig(c Config) wireConfig {
	return wireConfig{
		ChannelCapacity:       c.ChannelCapacity,
		BatchSize:             c.BatchSize,
		FlushIntervalNanos:    int64(c.FlushInterval),
		PartitionWeights:      c.PartitionWeights,
		BackpressureThreshold: c.BackpressureThreshold,
		JitterTolerance:       c.JitterTolerance,
		LatencySampleEvery:    c.LatencySampleEvery,
		SourceSeqBlock:        c.SourceSeqBlock,
	}
}

func (w wireConfig) config() Config {
	return Config{
		ChannelCapacity:       w.ChannelCapacity,
		BatchSize:             w.BatchSize,
		FlushInterval:         time.Duration(w.FlushIntervalNanos),
		PartitionWeights:      w.PartitionWeights,
		BackpressureThreshold: w.BackpressureThreshold,
		JitterTolerance:       w.JitterTolerance,
		LatencySampleEvery:    w.LatencySampleEvery,
		SourceSeqBlock:        w.SourceSeqBlock,
	}
}

// traceCtx propagates a rescale trace's identity with a control
// request: the trace ID and the coordinator span covering this RPC. A
// worker that receives a non-zero traceCtx times its handler phases and
// ships them back as wireSpans on the reply; the coordinator re-bases
// them under the parent span (rescaleTrace.child), so one rescale
// yields one causally-ordered cross-process timeline.
type traceCtx struct {
	ID   string `json:"id,omitempty"`
	Span uint64 `json:"span,omitempty"`
}

// wireSpan is a worker-recorded span in wire form. Offsets are
// nanoseconds from the worker's handler start — never absolute worker
// clock readings, which would smuggle cross-host clock skew into the
// timeline.
type wireSpan struct {
	Name  string `json:"name"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// Control protocol bodies (JSON inside CONTROL/REPLY frames).
type deployReq struct {
	Workload    string                       `json:"workload"`
	Gen         uint32                       `json:"gen"`
	Worker      int                          `json:"worker"`
	Workers     int                          `json:"workers"`
	Peers       []string                     `json:"peers"` // data addr per worker index
	Parallelism map[string]int               `json:"parallelism"`
	Assign      map[string][]int             `json:"assign"`
	Tables      map[string]map[string]int    `json:"tables,omitempty"`
	States      map[string]map[string][]byte `json:"states,omitempty"`
	// Seqs, when present, overwrites this worker's per-source local
	// sequence counters before the generation starts — the
	// restore-from-savepoint path. Absent on ordinary deploys and
	// rescales, where the counters persist in the worker process.
	Seqs    map[string]int64 `json:"seqs,omitempty"`
	Elapsed float64          `json:"elapsed"` // coordinator job time, aligning worker epochs
	Config  wireConfig       `json:"config"`
	Trace   traceCtx         `json:"trace,omitempty"`
}

type deployResp struct {
	Spans []wireSpan `json:"spans,omitempty"`
}

type startReq struct {
	Gen uint32 `json:"gen"`
}

type drainReq struct {
	Trace traceCtx `json:"trace,omitempty"`
}

type drainResp struct {
	States map[string]map[string][]byte `json:"states,omitempty"`
	// Seqs reports the worker's per-source local sequence counters at
	// the drain, so a coordinator cutting a savepoint can persist the
	// exact resume point of every stripe.
	Seqs  map[string]int64 `json:"seqs,omitempty"`
	Spans []wireSpan       `json:"spans,omitempty"`
}

// firstRecReq/firstRecResp poll the first-record instant of generation
// Gen: At is 0 while pending, -1 when there is nothing to wait for
// (cancelled, other generation, nothing deployed), else the wall-clock
// unix-nano instant the worker processed its first record.
type firstRecReq struct {
	Gen uint32 `json:"gen"`
}

type firstRecResp struct {
	At int64 `json:"at"`
}

type collectResp struct {
	Accs  []wireAcc   `json:"accs,omitempty"`
	Links []LinkStats `json:"links,omitempty"`
}

type waitResp struct {
	Natural bool `json:"natural"`
}

// validateDistributed checks that a pipeline can cross process
// boundaries: every exchange needs a Codec (values travel as bytes),
// every keyed operator a StateCodec (rescale snapshots travel as
// bytes), and the frame header's u16 fields bound the shape.
func validateDistributed(pipe *Pipeline, par dataflow.Parallelism, workers int) error {
	if workers < 1 {
		return errors.New("streamrt: distributed deployment needs at least one worker")
	}
	if workers > 0xFFFF {
		return fmt.Errorf("streamrt: %d workers exceeds the transport's limit", workers)
	}
	if n := pipe.graph.NumOperators(); n > 0xFFFF {
		return fmt.Errorf("streamrt: %d operators exceeds the frame header's limit", n)
	}
	for name, p := range par {
		if p > 0xFFFF {
			return fmt.Errorf("streamrt: operator %q parallelism %d exceeds the frame header's limit", name, p)
		}
	}
	for name, spec := range pipe.ops {
		if spec.Codec == nil {
			return fmt.Errorf("streamrt: operator %q has no Codec; distributed exchanges move bytes", name)
		}
		if spec.Keyed && spec.State == nil {
			return fmt.Errorf("streamrt: keyed operator %q has no StateCodec; distributed rescales move state as bytes", name)
		}
	}
	return nil
}

// PlanPlacement maps every operator instance to a worker process:
// instance k goes to worker k % workers. Aligned indices across
// operators keep chains local (instance k of a source feeds instance k
// of a round-robin-preferring downstream on the same worker), and every
// worker hosts ⌈p/W⌉ or ⌊p/W⌋ instances of each operator.
func PlanPlacement(par dataflow.Parallelism, workers int) map[string][]int {
	out := make(map[string][]int, len(par))
	for name, p := range par {
		a := make([]int, p)
		for k := range a {
			a[k] = k % workers
		}
		out[name] = a
	}
	return out
}

// encodeStates serializes drained keyed state for the wire.
func encodeStates(pipe *Pipeline, states map[string]map[string]any) (map[string]map[string][]byte, error) {
	if len(states) == 0 {
		return nil, nil
	}
	out := make(map[string]map[string][]byte, len(states))
	for op, kv := range states {
		spec := pipe.ops[op]
		if spec == nil {
			return nil, fmt.Errorf("streamrt: state for unknown operator %q", op)
		}
		enc := make(map[string][]byte, len(kv))
		for k, v := range kv {
			b, err := encodeOpState(spec, v)
			if err != nil {
				return nil, fmt.Errorf("streamrt: encoding %s[%q]: %w", op, k, err)
			}
			enc[k] = b
		}
		out[op] = enc
	}
	return out, nil
}

// decodeStates is the inverse of encodeStates.
func decodeStates(pipe *Pipeline, states map[string]map[string][]byte) (map[string]map[string]any, error) {
	if len(states) == 0 {
		return nil, nil
	}
	out := make(map[string]map[string]any, len(states))
	for op, kv := range states {
		spec := pipe.ops[op]
		if spec == nil {
			return nil, fmt.Errorf("streamrt: state for unknown operator %q", op)
		}
		dec := make(map[string]any, len(kv))
		for k, b := range kv {
			v, err := decodeOpState(spec, b)
			if err != nil {
				return nil, fmt.Errorf("streamrt: decoding %s[%q]: %w", op, k, err)
			}
			dec[k] = v
		}
		out[op] = dec
	}
	return out, nil
}

// Worker hosts one process's share of distributed deployments: it
// listens for the coordinator's control connection and its peers' data
// links, and builds a (placement-filtered) Job per deploy. One Worker
// serves any number of successive generations and jobs; the per-source
// sequence counters persist across generations of the same workload, so
// rescales never replay or skip a record.
type Worker struct {
	index int
	pipes map[string]*Pipeline
	reg   *obs.Registry
	tr    *transport

	mu       sync.Mutex
	workload string
	seqs     map[string]*int64
	job      *Job
	dc       *distContext
}

// NewWorker creates a worker with the given index (its position in the
// cluster's worker list — placement and hello frames identify it by
// this) serving the named pipelines. reg, when non-nil, exports the
// worker's runtime and per-link telemetry.
func NewWorker(index int, pipes map[string]*Pipeline, reg *obs.Registry) *Worker {
	return &Worker{index: index, pipes: pipes, reg: reg}
}

// Listen binds the worker's transport (control + data on one listener)
// and returns the bound address.
func (w *Worker) Listen(addr string) (string, error) {
	if w.tr != nil {
		return "", errors.New("streamrt: worker already listening")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	w.tr = newTransport(uint32(w.index), lis, w.reg)
	w.tr.handleControl = w.handleControl
	w.tr.serve()
	return w.tr.Addr(), nil
}

// Addr returns the transport's listen address ("" before Listen).
func (w *Worker) Addr() string {
	if w.tr == nil {
		return ""
	}
	return w.tr.Addr()
}

// Close tears the worker's transport down. Any deployed job should have
// been drained by the coordinator first.
func (w *Worker) Close() {
	if w.tr != nil {
		w.tr.close()
	}
}

// handleControl serves one coordinator request (on its own goroutine —
// drain and wait block).
func (w *Worker) handleControl(l *link, m ctrlMsg) {
	var body []byte
	var err error
	switch m.kind {
	case ctrlDeploy:
		body, err = w.deploy(m.body)
	case ctrlStart:
		body, err = w.start(m.body)
	case ctrlDrain:
		body, err = w.drain(m.body)
	case ctrlCollect:
		body, err = w.collect()
	case ctrlWait:
		body, err = w.wait()
	case ctrlFirstRec:
		body, err = w.firstRecord(m.body)
	default:
		err = fmt.Errorf("streamrt: unknown control kind %d", m.kind)
	}
	if err != nil {
		eb, _ := json.Marshal(map[string]string{"error": err.Error()})
		l.sendCtrl(frameReply, ctrlMsg{req: m.req, kind: 0, body: eb})
		return
	}
	if body == nil {
		body = []byte("{}")
	}
	l.sendCtrl(frameReply, ctrlMsg{req: m.req, kind: 1, body: body})
}

// deploy builds this worker's share of a new generation. Sources stay
// gated until the coordinator's START — by then every worker has
// installed its receive table, so no frame can arrive unroutable.
func (w *Worker) deploy(body []byte) ([]byte, error) {
	h0 := time.Now()
	var req deployReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("streamrt: bad deploy request: %w", err)
	}
	pipe := w.pipes[req.Workload]
	if pipe == nil {
		return nil, fmt.Errorf("streamrt: unknown workload %q", req.Workload)
	}
	par := dataflow.Parallelism(req.Parallelism)
	if err := par.Validate(pipe.graph); err != nil {
		return nil, err
	}
	if err := validateDistributed(pipe, par, req.Workers); err != nil {
		return nil, err
	}
	if req.Worker != w.index {
		return nil, fmt.Errorf("streamrt: deploy addressed to worker %d, this is worker %d", req.Worker, w.index)
	}
	states, err := decodeStates(pipe, req.States)
	if err != nil {
		return nil, err
	}
	decoded := time.Since(h0)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.job != nil {
		return nil, errors.New("streamrt: deploy while a generation is live (drain first)")
	}
	if w.seqs == nil || w.workload != req.Workload {
		w.workload = req.Workload
		w.seqs = make(map[string]*int64)
		for name := range pipe.sources {
			w.seqs[name] = new(int64)
		}
	}
	// Restore-on-deploy: a coordinator restoring from a savepoint ships
	// the persisted counters; install them before anything emits.
	for name, v := range req.Seqs {
		if p := w.seqs[name]; p != nil {
			atomic.StoreInt64(p, v)
		}
	}
	peers := make([]*link, req.Workers)
	for i, addr := range req.Peers {
		if i == req.Worker || addr == "" {
			continue
		}
		l, err := w.tr.dialPeer(uint32(i), addr)
		if err != nil {
			return nil, err
		}
		peers[i] = l
	}
	dc := &distContext{
		worker:  req.Worker,
		workers: req.Workers,
		gen:     req.Gen,
		tr:      w.tr,
		assign:  req.Assign,
		tables:  req.Tables,
		peers:   peers,
		start:   make(chan struct{}),
	}
	cfg := req.Config.config()
	cfg.Metrics = w.reg
	epoch := time.Now().Add(-time.Duration(req.Elapsed * float64(time.Second)))
	built0 := time.Since(h0)
	w.job = newWorkerJob(pipe, par, cfg, dc, w.seqs, epoch, states)
	w.dc = dc
	resp := deployResp{}
	if req.Trace.ID != "" {
		resp.Spans = []wireSpan{
			{Name: "deploy/decode_state", Start: 0, End: int64(decoded)},
			{Name: "deploy/build", Start: int64(built0), End: int64(time.Since(h0))},
		}
	}
	return json.Marshal(resp)
}

// start releases the deployed generation's sources.
func (w *Worker) start(body []byte) ([]byte, error) {
	var req startReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("streamrt: bad start request: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dc == nil || w.dc.gen != req.Gen {
		return nil, fmt.Errorf("streamrt: start for generation %d, none deployed", req.Gen)
	}
	if !w.dc.started {
		w.dc.started = true
		close(w.dc.start)
	}
	return nil, nil
}

// drain stops this worker's share of the current generation — the
// coordinator broadcasts drains, so the cross-process close cascade
// completes everywhere — and returns its keyed state, encoded. A
// traced request additionally gets the teardown/encode phase spans.
func (w *Worker) drain(body []byte) ([]byte, error) {
	var req drainReq
	if len(body) > 0 {
		// Tolerate empty and legacy bodies: a drain without trace
		// context is still a drain.
		_ = json.Unmarshal(body, &req)
	}
	h0 := time.Now()
	w.mu.Lock()
	j := w.job
	w.mu.Unlock()
	var resp drainResp
	if j != nil {
		states := j.drain()
		drained := time.Since(h0)
		w.mu.Lock()
		w.job = nil
		w.dc = nil
		// The drained counters are this worker's exact resume points;
		// a savepointing coordinator persists them.
		resp.Seqs = make(map[string]int64, len(w.seqs))
		for name, p := range w.seqs {
			resp.Seqs[name] = atomic.LoadInt64(p)
		}
		w.mu.Unlock()
		enc, err := encodeStates(j.pipe, states)
		if err != nil {
			return nil, err
		}
		resp.States = enc
		if req.Trace.ID != "" {
			resp.Spans = []wireSpan{
				{Name: "drain/teardown", Start: 0, End: int64(drained)},
				{Name: "drain/encode_state", Start: int64(drained), End: int64(time.Since(h0))},
			}
		}
	}
	return json.Marshal(resp)
}

// firstRecord reports whether the given generation has processed its
// first record yet (see firstRecResp). Non-blocking: the coordinator's
// trace finisher polls.
func (w *Worker) firstRecord(body []byte) ([]byte, error) {
	var req firstRecReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("streamrt: bad first-record request: %w", err)
	}
	resp := firstRecResp{At: -1}
	w.mu.Lock()
	j, dc := w.job, w.dc
	w.mu.Unlock()
	if j != nil && dc != nil && dc.gen == req.Gen {
		j.mu.Lock()
		dep := j.dep
		j.mu.Unlock()
		if dep != nil {
			resp.At = dep.first.value()
		}
	}
	return json.Marshal(resp)
}

// collect takes the local instances' accumulators plus the transport's
// link counters. When the worker exports its own registry, the same
// accumulators additionally feed the worker-local §3 gauges — so a
// worker's /metrics page shows its own share of the time splits and
// rates, not just the hot-path counters.
func (w *Worker) collect() ([]byte, error) {
	w.mu.Lock()
	j := w.job
	w.mu.Unlock()
	resp := collectResp{Links: w.tr.linkSnapshots()}
	if j != nil {
		var start, end float64
		localPar := make(dataflow.Parallelism)
		j.mu.Lock()
		if j.dep != nil {
			resp.Accs = j.takeAccsLocked()
			start, end = j.winStart, j.Now()
			j.winStart = end
			for op, list := range j.dep.insts {
				localPar[op] = len(list)
			}
		}
		j.mu.Unlock()
		if j.obs != nil && len(resp.Accs) > 0 && end > start {
			// Best-effort: the coordinator's interval build is the one
			// that drives decisions; this one only refreshes gauges.
			if iv, err := buildInterval(j.pipe, j.cfg, resp.Accs, start, end, localPar); err == nil {
				j.obs.observeInterval(iv)
			}
		}
	}
	return json.Marshal(resp)
}

// wait blocks until the current generation's local instances have all
// exited, reporting whether the exit was natural source exhaustion (as
// opposed to a drain-for-rescale).
func (w *Worker) wait() ([]byte, error) {
	w.mu.Lock()
	j := w.job
	w.mu.Unlock()
	resp := waitResp{}
	if j != nil {
		resp.Natural = j.waitCurrent()
	}
	return json.Marshal(resp)
}

// ctrlClient is the coordinator's end of one worker's control
// connection: a correlation table over CONTROL/REPLY frames.
type ctrlClient struct {
	worker int
	l      *link

	mu   sync.Mutex
	next uint32
	pend map[uint32]chan ctrlMsg
}

func dialCtrl(worker int, addr string) (*ctrlClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("streamrt: dialing worker %d at %s: %w", worker, addr, err)
	}
	l := newLink(conn, uint32(worker), &linkStats{label: fmt.Sprintf("ctl->w%d", worker)})
	go l.writeLoop()
	l.sendHello(helloMsg{proto: frameProto, sender: helloCoordinator})
	c := &ctrlClient{worker: worker, l: l, pend: make(map[uint32]chan ctrlMsg)}
	go c.readLoop()
	return c, nil
}

func (c *ctrlClient) readLoop() {
	br := bufio.NewReaderSize(c.l.conn, 1<<16)
	var buf []byte
	for {
		typ, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			c.l.close(err)
			return
		}
		if typ != frameReply {
			c.l.close(fmt.Errorf("streamrt: unexpected frame type %d on control client", typ))
			return
		}
		m, err := parseCtrl(payload)
		if err != nil {
			c.l.close(err)
			return
		}
		c.mu.Lock()
		ch := c.pend[m.req]
		delete(c.pend, m.req)
		c.mu.Unlock()
		if ch != nil {
			m.body = append([]byte(nil), m.body...) // payload aliases the read buffer
			ch <- m
		}
	}
}

// rpc performs one request/reply round trip. No timeout: drains and
// waits legitimately block; a dead link fails all callers promptly.
func (c *ctrlClient) rpc(kind byte, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ch := make(chan ctrlMsg, 1)
	c.mu.Lock()
	c.next++
	id := c.next
	c.pend[id] = ch
	c.mu.Unlock()
	c.l.sendCtrl(frameControl, ctrlMsg{req: id, kind: kind, body: body})
	select {
	case m := <-ch:
		if m.kind == 0 {
			var e struct {
				Error string `json:"error"`
			}
			json.Unmarshal(m.body, &e)
			return fmt.Errorf("streamrt: worker %d: %s", c.worker, e.Error)
		}
		if resp != nil {
			return json.Unmarshal(m.body, resp)
		}
		return nil
	case <-c.l.closed:
		c.mu.Lock()
		delete(c.pend, id)
		c.mu.Unlock()
		err := c.l.failure()
		if err == nil {
			err = errors.New("connection closed")
		}
		return fmt.Errorf("streamrt: worker %d control link: %w", c.worker, err)
	}
}

func (c *ctrlClient) close() { c.l.close(nil) }

// linkMirror holds the last collected snapshot of one link's counters,
// read by the coordinator registry's CounterFuncs.
type linkMirror struct {
	mu sync.Mutex
	v  LinkStats
}

func (m *linkMirror) get() LinkStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v
}

func registerLinkMirror(reg *obs.Registry, label string, m *linkMirror) {
	reg.CounterFunc("streamrt_link_bytes_total",
		"Bytes moved over a worker-to-worker exchange link, by direction.",
		func() float64 { return float64(m.get().TxBytes) },
		obs.L("link", label), obs.L("dir", "tx"))
	reg.CounterFunc("streamrt_link_bytes_total",
		"Bytes moved over a worker-to-worker exchange link, by direction.",
		func() float64 { return float64(m.get().RxBytes) },
		obs.L("link", label), obs.L("dir", "rx"))
	reg.CounterFunc("streamrt_link_frames_total",
		"Frames moved over a worker-to-worker exchange link, by direction.",
		func() float64 { return float64(m.get().TxFrames) },
		obs.L("link", label), obs.L("dir", "tx"))
	reg.CounterFunc("streamrt_link_frames_total",
		"Frames moved over a worker-to-worker exchange link, by direction.",
		func() float64 { return float64(m.get().RxFrames) },
		obs.L("link", label), obs.L("dir", "rx"))
	reg.CounterFunc("streamrt_link_stalls_total",
		"Remote batch sends that blocked waiting for flow-control credit.",
		func() float64 { return float64(m.get().Stalls) },
		obs.L("link", label))
}

// Cluster is the coordinator of a distributed deployment: the
// drop-in-for-Job engine the control loop drives. Deploys are
// two-phase (every worker installs its receive table, then all sources
// start), rescales are drain → snapshot → repartition → redeploy with
// state crossing processes through the framed transport, and interval
// collection fans out to the workers and rebuilds through the exact
// single-process code path.
type Cluster struct {
	pipe     *Pipeline
	workload string
	cfg      Config
	epoch    time.Time
	obs      *jobObs
	ctrls    []*ctrlClient
	addrs    []string

	mu         sync.Mutex
	cur        dataflow.Parallelism
	gen        uint32
	winStart   float64
	rescales   int
	savepoints int
	stopped    bool
	final      map[string]map[string]any

	linkMu   sync.Mutex
	linkSeen map[string]*linkMirror
}

// NewCluster deploys pipe over the workers at addrs (each running a
// Worker serving the named workload) and starts it.
func NewCluster(pipe *Pipeline, workload string, initial dataflow.Parallelism, addrs []string, cfg Config) (*Cluster, error) {
	if pipe == nil {
		return nil, errors.New("streamrt: nil pipeline")
	}
	if err := initial.Validate(pipe.graph); err != nil {
		return nil, err
	}
	if err := validateDistributed(pipe, initial, len(addrs)); err != nil {
		return nil, err
	}
	c := &Cluster{
		pipe:     pipe,
		workload: workload,
		cfg:      cfg.withDefaults(),
		epoch:    time.Now(),
		addrs:    addrs,
		cur:      initial.Clone(),
		linkSeen: make(map[string]*linkMirror),
	}
	if c.cfg.Metrics != nil {
		c.obs = newJobObs(c.cfg.Metrics, pipe, c.Rescales)
	}
	for i, addr := range addrs {
		cc, err := dialCtrl(i, addr)
		if err != nil {
			c.closeCtrls()
			return nil, err
		}
		c.ctrls = append(c.ctrls, cc)
	}
	if err := c.deployLocked(initial, nil, nil, nil); err != nil {
		c.closeCtrls()
		return nil, err
	}
	return c, nil
}

func (c *Cluster) closeCtrls() {
	for _, cc := range c.ctrls {
		cc.close()
	}
}

// each fans f out to every worker and joins the errors.
func (c *Cluster) each(f func(cc *ctrlClient) error) error {
	errs := make([]error, len(c.ctrls))
	var wg sync.WaitGroup
	for i, cc := range c.ctrls {
		wg.Add(1)
		go func(i int, cc *ctrlClient) {
			defer wg.Done()
			errs[i] = f(cc)
		}(i, cc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// deployLocked pushes one new generation: placement, routing tables
// (built over the merged key universe — identical on every worker),
// per-worker state slices, then the two-phase deploy/start barrier.
// seqs, when non-nil, carries per-rank source counters to restore
// (the from-savepoint path); each hosting worker receives its rank's
// counter. tr, when non-nil, times the router_rebuild/transfer/restart
// phases with per-worker child spans (nil on the initial deploy — only
// rescales are traced). Callers hold c.mu (or own c exclusively).
func (c *Cluster) deployLocked(par dataflow.Parallelism, encStates map[string]map[string][]byte, seqs map[string][]int64, tr *rescaleTrace) error {
	c.gen++
	workers := len(c.ctrls)
	var assign map[string][]int
	tables := make(map[string]map[string]int)
	perWorker := make([]map[string]map[string][]byte, workers)
	tr.phase(phaseRouterRebuild, func(uint64) {
		assign = PlanPlacement(par, workers)
		routers := make(map[string]*router)
		for name, spec := range c.pipe.ops {
			if !spec.Keyed {
				continue
			}
			known := make(map[string]any, len(encStates[name]))
			for k := range encStates[name] {
				known[k] = nil
			}
			r := buildRouter(known, par[name], c.cfg.PartitionWeights[name])
			routers[name] = r
			if r.table != nil {
				tables[name] = r.table
			}
		}
		for op, kv := range encStates {
			r := routers[op]
			for k, b := range kv {
				w := assign[op][r.owner(k)]
				if perWorker[w] == nil {
					perWorker[w] = make(map[string]map[string][]byte)
				}
				if perWorker[w][op] == nil {
					perWorker[w][op] = make(map[string][]byte)
				}
				perWorker[w][op][k] = b
			}
		}
	})
	// Per-worker restore counters: rank r of a source maps to the r'th
	// sorted hosting worker under the new placement.
	perWorkerSeqs := make([]map[string]int64, workers)
	for src, counters := range seqs {
		for rank, w := range hostingWorkers(PlanPlacement(par, workers)[src]) {
			if rank >= len(counters) {
				break // shape was validated at restore; belt and braces
			}
			if perWorkerSeqs[w] == nil {
				perWorkerSeqs[w] = make(map[string]int64)
			}
			perWorkerSeqs[w][src] = counters[rank]
		}
	}
	elapsed := c.Now()
	var err error
	tr.phase(phaseTransfer, func(parent uint64) {
		err = c.each(func(cc *ctrlClient) error {
			req := deployReq{
				Workload:    c.workload,
				Gen:         c.gen,
				Worker:      cc.worker,
				Workers:     workers,
				Peers:       c.addrs,
				Parallelism: par,
				Assign:      assign,
				Tables:      tables,
				States:      perWorker[cc.worker],
				Seqs:        perWorkerSeqs[cc.worker],
				Elapsed:     elapsed,
				Config:      toWireConfig(c.cfg),
			}
			if tr != nil {
				req.Trace = traceCtx{ID: tr.t.ID(), Span: parent}
			}
			s0 := tr.now()
			var resp deployResp
			if err := cc.rpc(ctrlDeploy, req, &resp); err != nil {
				return err
			}
			tr.child(fmt.Sprintf("transfer/w%d", cc.worker), cc.worker, parent, s0, tr.now(), resp.Spans)
			return nil
		})
	})
	if err != nil {
		return err
	}
	tr.phase(phaseRestart, func(parent uint64) {
		err = c.each(func(cc *ctrlClient) error {
			s0 := tr.now()
			if err := cc.rpc(ctrlStart, startReq{Gen: c.gen}, nil); err != nil {
				return err
			}
			tr.child(fmt.Sprintf("restart/w%d", cc.worker), cc.worker, parent, s0, tr.now(), nil)
			return nil
		})
	})
	if err != nil {
		return err
	}
	c.cur = par.Clone()
	return nil
}

// drainWorkersLocked drains every worker, recording one child span per
// worker RPC under parent (plus the worker-shipped handler spans), and
// returns the per-worker responses. Callers hold c.mu.
func (c *Cluster) drainWorkersLocked(tr *rescaleTrace, parent uint64) ([]drainResp, error) {
	resps := make([]drainResp, len(c.ctrls))
	err := c.each(func(cc *ctrlClient) error {
		req := drainReq{}
		if tr != nil {
			req.Trace = traceCtx{ID: tr.t.ID(), Span: parent}
		}
		s0 := tr.now()
		if err := cc.rpc(ctrlDrain, req, &resps[cc.worker]); err != nil {
			return err
		}
		tr.child(fmt.Sprintf("drain/w%d", cc.worker), cc.worker, parent, s0, tr.now(), resps[cc.worker].Spans)
		return nil
	})
	return resps, err
}

// mergeEncStates merges per-worker state snapshots (disjoint key sets —
// each key's state lives with its owning instance).
func mergeEncStates(resps []drainResp) map[string]map[string][]byte {
	merged := make(map[string]map[string][]byte)
	for _, r := range resps {
		for op, kv := range r.States {
			if merged[op] == nil {
				merged[op] = make(map[string][]byte)
			}
			for k, b := range kv {
				merged[op][k] = b
			}
		}
	}
	return merged
}

// drainAllLocked drains every worker and merges their state snapshots.
// Callers hold c.mu.
func (c *Cluster) drainAllLocked() (map[string]map[string][]byte, error) {
	resps, err := c.drainWorkersLocked(nil, 0)
	if err != nil {
		return nil, err
	}
	return mergeEncStates(resps), nil
}

// Now returns the cluster's job time in seconds (worker epochs are
// aligned to it at every deploy).
func (c *Cluster) Now() float64 { return time.Since(c.epoch).Seconds() }

// WindowStart returns the job time the open observation window started.
func (c *Cluster) WindowStart() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.winStart
}

// Parallelism returns the deployed configuration.
func (c *Cluster) Parallelism() dataflow.Parallelism {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.Clone()
}

// Rescales returns how many redeployments the cluster has performed.
func (c *Cluster) Rescales() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rescales
}

// Stopped reports whether the cluster's job was stopped.
func (c *Cluster) Stopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// Collect cuts the open observation window across every worker and
// builds the Interval exactly as a single-process Job would from the
// union of the workers' accumulators.
func (c *Cluster) Collect() (Interval, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return Interval{}, ErrStopped
	}
	end := c.Now()
	start := c.winStart
	par := c.cur.Clone()
	var mu sync.Mutex
	var accs []wireAcc
	var links []LinkStats
	err := c.each(func(cc *ctrlClient) error {
		var resp collectResp
		if err := cc.rpc(ctrlCollect, struct{}{}, &resp); err != nil {
			return err
		}
		mu.Lock()
		accs = append(accs, resp.Accs...)
		links = append(links, resp.Links...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return Interval{}, err
	}
	c.winStart = end
	c.mirrorLinks(links)
	iv, err := buildInterval(c.pipe, c.cfg, accs, start, end, par)
	if err != nil {
		return Interval{}, err
	}
	if c.obs != nil && len(accs) > 0 {
		c.obs.observeInterval(iv)
	}
	return iv, nil
}

// mirrorLinks folds the workers' link counters into the coordinator's
// registry. The same label appears on both ends of a connection (the
// dialer counts tx, the acceptor rx), so summing per label yields the
// link's complete traffic.
func (c *Cluster) mirrorLinks(links []LinkStats) {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	agg := make(map[string]LinkStats, len(links))
	for _, s := range links {
		a := agg[s.Link]
		a.Link = s.Link
		a.TxBytes += s.TxBytes
		a.TxFrames += s.TxFrames
		a.RxBytes += s.RxBytes
		a.RxFrames += s.RxFrames
		a.Stalls += s.Stalls
		agg[s.Link] = a
	}
	for label, s := range agg {
		m := c.linkSeen[label]
		if m == nil {
			m = &linkMirror{}
			c.linkSeen[label] = m
			if c.cfg.Metrics != nil {
				registerLinkMirror(c.cfg.Metrics, label, m)
			}
		}
		m.mu.Lock()
		m.v = s
		m.mu.Unlock()
	}
}

// LinkTotals returns the last collected per-link counters, aggregated
// across both endpoints of every connection.
func (c *Cluster) LinkTotals() []LinkStats {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	out := make([]LinkStats, 0, len(c.linkSeen))
	for _, m := range c.linkSeen {
		out = append(out, m.get())
	}
	return out
}

// NextInterval blocks until the open window covers d seconds of job
// time, then cuts and returns it.
func (c *Cluster) NextInterval(d float64) (Interval, error) {
	for {
		c.mu.Lock()
		stopped := c.stopped
		remain := c.winStart + d - c.Now()
		c.mu.Unlock()
		if stopped {
			return Interval{}, ErrStopped
		}
		if remain <= 0 {
			return c.Collect()
		}
		const maxSleep = 50 * time.Millisecond
		if remain > maxSleep.Seconds() {
			time.Sleep(maxSleep)
		} else {
			time.Sleep(time.Duration(remain * float64(time.Second)))
		}
	}
}

// Rescale redeploys the cluster at a new parallelism: drain everywhere
// (the cross-process close cascade flushes every in-flight record),
// snapshot and merge keyed state, repartition it under the new routing
// tables, and push the next generation — state moving between worker
// processes through the framed transport. Settle semantics: the open
// observation window restarts at the new deployment.
func (c *Cluster) Rescale(newP dataflow.Parallelism) error {
	if err := newP.Validate(c.pipe.graph); err != nil {
		return err
	}
	if err := validateDistributed(c.pipe, newP, len(c.ctrls)); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return ErrStopped
	}
	tr := c.obs.beginRescaleTrace(c.rescales + 1)
	var resps []drainResp
	var err error
	tr.phase(phaseDrain, func(parent uint64) {
		resps, err = c.drainWorkersLocked(tr, parent)
	})
	if err != nil {
		return err
	}
	var states map[string]map[string][]byte
	tr.phase(phaseSnapshot, func(uint64) {
		states = mergeEncStates(resps)
	})
	if err := c.deployLocked(newP, states, nil, tr); err != nil {
		return err
	}
	c.rescales++
	// The cluster-wide first record lands on some worker; rescalesDone
	// polls them off the lock so the rescale returns now.
	c.rescalesDone(tr)
	return nil
}

// resolveFirstRecord polls the workers for the first record processed
// by generation gen and completes the rescale trace with it. Once any
// worker has noted a time, workers still pending can only note later
// ones, so the minimum over the first round with a hit is the
// cluster-wide first record. Gives up (leaving the trace incomplete)
// after firstRecordWait, on a control error, or when gen is obsolete.
func (c *Cluster) resolveFirstRecord(tr *rescaleTrace, restartEnd int64, gen uint32) {
	deadline := time.Now().Add(firstRecordWait)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		stale := c.stopped || c.gen != gen
		c.mu.Unlock()
		if stale {
			return
		}
		var mu sync.Mutex
		best := int64(-1)
		err := c.each(func(cc *ctrlClient) error {
			var resp firstRecResp
			if err := cc.rpc(ctrlFirstRec, firstRecReq{Gen: gen}, &resp); err != nil {
				return err
			}
			if resp.At > 0 {
				mu.Lock()
				if best < 0 || resp.At < best {
					best = resp.At
				}
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			return
		}
		if best > 0 {
			tr.finish(restartEnd, best, true)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	tr.finish(restartEnd, 0, false)
}

// RescaleTraces returns the retained rescale span timelines,
// oldest-first. Nil without metrics.
func (c *Cluster) RescaleTraces() []obs.TraceView {
	if c.obs == nil {
		return nil
	}
	return c.obs.rescale.ring.Views()
}

// Stop drains the cluster and returns the final keyed state of every
// stateful operator, decoded — the distributed analogue of Job.Stop.
// Idempotent. The control and data connections stay up until Close.
func (c *Cluster) Stop() map[string]map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return c.final
	}
	c.stopped = true
	enc, err := c.drainAllLocked()
	if err == nil {
		c.final, _ = decodeStates(c.pipe, enc)
	}
	if c.final == nil {
		c.final = make(map[string]map[string]any)
	}
	// Job.Stop returns a (possibly empty) map per stateful operator.
	for name, spec := range c.pipe.ops {
		if spec.Keyed && c.final[name] == nil {
			c.final[name] = make(map[string]any)
		}
	}
	return c.final
}

// Close releases the coordinator's control connections. Call after
// Stop.
func (c *Cluster) Close() { c.closeCtrls() }

// Wait blocks until every bounded source is exhausted and the pipeline
// drained on every worker, or the cluster is stopped. Rescales are
// transparent, as with Job.Wait.
func (c *Cluster) Wait() {
	for {
		c.mu.Lock()
		if c.stopped {
			c.mu.Unlock()
			return
		}
		gen := c.gen
		c.mu.Unlock()
		natural := true
		var mu sync.Mutex
		err := c.each(func(cc *ctrlClient) error {
			var resp waitResp
			if err := cc.rpc(ctrlWait, struct{}{}, &resp); err != nil {
				return err
			}
			if !resp.Natural {
				mu.Lock()
				natural = false
				mu.Unlock()
			}
			return nil
		})
		if err != nil || natural {
			return
		}
		// Not natural: a drain happened. If it was a rescale, c.mu is
		// held until the next generation is live, so by the time we can
		// read c.gen again it has moved; an unchanged gen means Stop.
		c.mu.Lock()
		same := c.gen == gen
		stopped := c.stopped
		c.mu.Unlock()
		if stopped || same {
			return
		}
	}
}
