package streamrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/obs"
)

// Durable checkpoints. A savepoint is the rescale cycle's snapshot —
// drained keyed state plus the source sequence counters — made
// durable: encoded with the operators' StateCodecs into one versioned,
// CRC-guarded binary blob and handed to a CheckpointStore. Restoring
// deploys a fresh Job/Cluster from that blob; because the sources are
// deterministic generators and the counters are persisted, the
// restored job resumes the sequence space exactly where the savepoint
// cut it — no record replayed, none skipped — at whatever operator
// parallelism the restore chooses (state repartitions through the
// ordinary deploy path).

// CheckpointStore persists encoded savepoints by name. Save must be
// atomic with respect to Load: a reader sees either the complete prior
// blob or the complete new one, never a torn write.
type CheckpointStore interface {
	Save(name string, data []byte) error
	Load(name string) ([]byte, error)
}

// MemoryStore is an in-process CheckpointStore, for tests and for
// savepoint-shaped rescues that never need to survive the process.
type MemoryStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore { return &MemoryStore{m: make(map[string][]byte)} }

// Save implements CheckpointStore.
func (s *MemoryStore) Save(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
	return nil
}

// Load implements CheckpointStore.
func (s *MemoryStore) Load(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		return nil, fmt.Errorf("streamrt: no savepoint %q", name)
	}
	return append([]byte(nil), b...), nil
}

// DirStore is a directory-backed CheckpointStore. Save writes the blob
// to a temporary file in the same directory, fsyncs it, and renames it
// into place — the atomic-publish idiom, so a crash mid-save leaves
// the previous savepoint intact and a Load never observes a torn file.
type DirStore struct{ dir string }

// NewDirStore creates dir if needed and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *DirStore) Dir() string { return s.dir }

// Save implements CheckpointStore.
func (s *DirStore) Save(name string, data []byte) error {
	if name == "" || name != filepath.Base(name) {
		return fmt.Errorf("streamrt: savepoint name %q must be a bare file name", name)
	}
	f, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if cerr := f.Close(); cerr != nil {
		os.Remove(tmp)
		return cerr
	}
	return os.Rename(tmp, filepath.Join(s.dir, name))
}

// Load implements CheckpointStore.
func (s *DirStore) Load(name string) ([]byte, error) {
	if name == "" || name != filepath.Base(name) {
		return nil, fmt.Errorf("streamrt: savepoint name %q must be a bare file name", name)
	}
	return os.ReadFile(filepath.Join(s.dir, name))
}

// Savepoint file format (all integers big-endian where fixed-width,
// varint/uvarint otherwise; strings and blobs are uvarint-length-
// prefixed):
//
//	magic    [8]byte "DS2SAVE0"
//	version  u16
//	workload string           // "" for single-process jobs
//	workers  uvarint          // processes the savepoint was cut over
//	seqBlock uvarint          // source sequence striping block size
//	elapsed  f64 (u64 bits)   // job time at the cut, seconds
//	nSrc     uvarint
//	nSrc ×  (name string, nRanks uvarint, nRanks × varint counter)
//	nOps     uvarint
//	nOps ×  (name string, nKeys uvarint, nKeys × (key string, blob))
//	crc32    u32              // IEEE, over everything above
//
// Per-key state blobs are encodeOpState's output — the operator's
// StateCodec bytes, wrapped in the canonical window encoding for
// windowed operators — i.e. exactly what crosses the wire during a
// distributed rescale. Source counters are per *rank* (position in
// the sorted list of workers hosting the source), counting the rank's
// locally emitted records under block striping; rank 0 of a
// single-process job is the global next sequence number. The trailing
// CRC is verified before any structural parsing, so a truncated or
// bit-flipped file fails with one clean error instead of feeding
// garbage lengths (or worse, a user codec) mid-parse.

var savepointMagic = [8]byte{'D', 'S', '2', 'S', 'A', 'V', 'E', '0'}

const savepointVersion = 1

// savepointData is the decoded form of one savepoint file.
type savepointData struct {
	Workload string
	Workers  int
	SeqBlock int64
	Elapsed  float64
	Seqs     map[string][]int64           // source -> per-rank local counters
	States   map[string]map[string][]byte // operator -> key -> encoded state
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendSpString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encodeSavepoint serializes sp. Map keys are sorted into the encoding
// so identical snapshots produce identical bytes regardless of map
// iteration order.
func encodeSavepoint(sp *savepointData) []byte {
	buf := make([]byte, 0, 1024)
	buf = append(buf, savepointMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, savepointVersion)
	buf = appendSpString(buf, sp.Workload)
	buf = binary.AppendUvarint(buf, uint64(sp.Workers))
	buf = binary.AppendUvarint(buf, uint64(sp.SeqBlock))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(sp.Elapsed))
	buf = binary.AppendUvarint(buf, uint64(len(sp.Seqs)))
	for _, name := range sortedKeys(sp.Seqs) {
		buf = appendSpString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(len(sp.Seqs[name])))
		for _, c := range sp.Seqs[name] {
			buf = binary.AppendVarint(buf, c)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(sp.States)))
	for _, op := range sortedKeys(sp.States) {
		buf = appendSpString(buf, op)
		kv := sp.States[op]
		buf = binary.AppendUvarint(buf, uint64(len(kv)))
		for _, k := range sortedKeys(kv) {
			buf = appendSpString(buf, k)
			buf = binary.AppendUvarint(buf, uint64(len(kv[k])))
			buf = append(buf, kv[k]...)
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// spReader is the structural decoder's cursor; every read names the
// field it was after, so a malformed file fails with "corrupt <field>"
// rather than a panic or a silent partial parse.
type spReader struct{ b []byte }

func (r *spReader) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("streamrt: savepoint: corrupt %s", field)
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *spReader) varint(field string) (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("streamrt: savepoint: corrupt %s", field)
	}
	r.b = r.b[n:]
	return v, nil
}

// count reads a uvarint bounded by the remaining bytes (every counted
// element occupies at least one byte), so a corrupt length can never
// drive an allocation beyond the file's own size.
func (r *spReader) count(field string) (int, error) {
	v, err := r.uvarint(field)
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)) {
		return 0, fmt.Errorf("streamrt: savepoint: %s %d exceeds the %d bytes left in the file", field, v, len(r.b))
	}
	return int(v), nil
}

func (r *spReader) str(field string) (string, error) {
	n, err := r.count(field + " length")
	if err != nil {
		return "", err
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *spReader) blob(field string) ([]byte, error) {
	n, err := r.count(field + " length")
	if err != nil {
		return nil, err
	}
	b := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return b, nil
}

func (r *spReader) f64(field string) (float64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("streamrt: savepoint: truncated %s", field)
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}

// decodeSavepoint parses and validates one savepoint file. It is
// purely structural — no user codec runs — and total: any input either
// decodes or returns an error naming the failing field.
func decodeSavepoint(data []byte) (*savepointData, error) {
	header := len(savepointMagic) + 2
	if len(data) < header+4 {
		return nil, fmt.Errorf("streamrt: savepoint: %d bytes is shorter than the smallest savepoint", len(data))
	}
	if !bytes.Equal(data[:len(savepointMagic)], savepointMagic[:]) {
		return nil, errors.New("streamrt: savepoint: bad magic; not a savepoint file")
	}
	if v := binary.BigEndian.Uint16(data[len(savepointMagic):header]); v != savepointVersion {
		return nil, fmt.Errorf("streamrt: savepoint: format version %d; this build reads version %d", v, savepointVersion)
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("streamrt: savepoint: checksum mismatch (have %08x, file says %08x); truncated or corrupted", got, sum)
	}
	r := &spReader{b: body[header:]}
	sp := &savepointData{}
	var err error
	if sp.Workload, err = r.str("workload"); err != nil {
		return nil, err
	}
	workers, err := r.uvarint("worker count")
	if err != nil {
		return nil, err
	}
	if workers < 1 || workers > 0xFFFF {
		return nil, fmt.Errorf("streamrt: savepoint: worker count %d outside [1, 65535]", workers)
	}
	sp.Workers = int(workers)
	seqBlock, err := r.uvarint("seq block size")
	if err != nil {
		return nil, err
	}
	if seqBlock < 1 || seqBlock > math.MaxInt64 {
		return nil, fmt.Errorf("streamrt: savepoint: seq block size %d outside [1, 2^63)", seqBlock)
	}
	sp.SeqBlock = int64(seqBlock)
	if sp.Elapsed, err = r.f64("elapsed time"); err != nil {
		return nil, err
	}
	if math.IsNaN(sp.Elapsed) || sp.Elapsed < 0 {
		return nil, fmt.Errorf("streamrt: savepoint: elapsed time %v is not a non-negative duration", sp.Elapsed)
	}
	nSrc, err := r.count("source count")
	if err != nil {
		return nil, err
	}
	sp.Seqs = make(map[string][]int64, nSrc)
	for i := 0; i < nSrc; i++ {
		name, err := r.str("source name")
		if err != nil {
			return nil, err
		}
		if _, dup := sp.Seqs[name]; dup {
			return nil, fmt.Errorf("streamrt: savepoint: duplicate source %q", name)
		}
		nRanks, err := r.count(fmt.Sprintf("source %q rank count", name))
		if err != nil {
			return nil, err
		}
		if nRanks < 1 || nRanks > sp.Workers {
			return nil, fmt.Errorf("streamrt: savepoint: source %q has %d seq ranks for %d workers", name, nRanks, sp.Workers)
		}
		counters := make([]int64, nRanks)
		for rank := range counters {
			c, err := r.varint(fmt.Sprintf("source %q rank %d counter", name, rank))
			if err != nil {
				return nil, err
			}
			if c < 0 {
				return nil, fmt.Errorf("streamrt: savepoint: source %q rank %d counter %d is negative", name, rank, c)
			}
			counters[rank] = c
		}
		sp.Seqs[name] = counters
	}
	nOps, err := r.count("operator count")
	if err != nil {
		return nil, err
	}
	sp.States = make(map[string]map[string][]byte, nOps)
	for i := 0; i < nOps; i++ {
		op, err := r.str("operator name")
		if err != nil {
			return nil, err
		}
		if _, dup := sp.States[op]; dup {
			return nil, fmt.Errorf("streamrt: savepoint: duplicate operator %q", op)
		}
		nKeys, err := r.count(fmt.Sprintf("operator %q key count", op))
		if err != nil {
			return nil, err
		}
		kv := make(map[string][]byte, nKeys)
		for k := 0; k < nKeys; k++ {
			key, err := r.str(fmt.Sprintf("operator %q state key", op))
			if err != nil {
				return nil, err
			}
			if _, dup := kv[key]; dup {
				return nil, fmt.Errorf("streamrt: savepoint: operator %q has duplicate key %q", op, key)
			}
			if kv[key], err = r.blob(fmt.Sprintf("operator %q state for key %q", op, key)); err != nil {
				return nil, err
			}
		}
		sp.States[op] = kv
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("streamrt: savepoint: %d trailing bytes after the last operator", len(r.b))
	}
	return sp, nil
}

// phasePersist is the savepoint-only trace phase: the store write,
// between snapshot and restart.
const phasePersist = "persist"

// beginSavepointTrace starts the n'th savepoint's trace on the same
// ring the rescale traces live in, so GET /jobs/{id}/rescales shows
// savepoint timelines alongside reconfigurations.
func (o *jobObs) beginSavepointTrace(n int) *rescaleTrace {
	if o == nil {
		return nil
	}
	rt := &rescaleTrace{ro: o.rescale, t: obs.NewTrace(fmt.Sprintf("savepoint-%d", n), "savepoint")}
	o.rescale.ring.Append(rt.t)
	return rt
}

// savepointHist resolves the savepoint duration histogram (nil when
// telemetry is off). Registered lazily — the family appears on
// /metrics once the job has actually taken a savepoint.
func (o *jobObs) savepointHist() *obs.Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram("streamrt_savepoint_seconds",
		"Wall time of a savepoint: drain, snapshot, persist to the checkpoint store, restart.",
		obs.HistogramOpts{Min: 1e-3, Growth: 2, Buckets: 20})
}

// checkSavepointable verifies every keyed operator can serialize its
// state, before anything is drained — a savepoint must fail cleanly,
// not stop the job and then discover it cannot encode.
func checkSavepointable(pipe *Pipeline) error {
	for _, name := range sortedKeys(pipe.ops) {
		if spec := pipe.ops[name]; spec.Keyed && spec.State == nil {
			return fmt.Errorf("streamrt: savepoint: keyed operator %q has no StateCodec; savepoints store state as bytes", name)
		}
	}
	return nil
}

// Savepoint drains the job, snapshots and encodes its keyed state and
// source sequence counters, persists the blob under name, and
// restarts the job at its current parallelism — the rescale cycle
// with a persist phase spliced in, traced the same way (the timeline
// appears on the rescale trace ring as "savepoint-N") and observed
// into streamrt_savepoint_seconds. The restart happens even when the
// store write fails: a failed persist returns the error but never
// leaves the job drained.
func (j *Job) Savepoint(store CheckpointStore, name string) error {
	if store == nil {
		return errors.New("streamrt: nil checkpoint store")
	}
	if err := checkSavepointable(j.pipe); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return ErrStopped
	}
	j.savepoints++
	tr := j.obs.beginSavepointTrace(j.savepoints)
	t0 := time.Now()
	var dep *deployment
	tr.phase(phaseDrain, func(uint64) { dep = j.stopLocked() })
	var states map[string]map[string]any
	var enc map[string]map[string][]byte
	var err error
	tr.phase(phaseSnapshot, func(uint64) {
		states = j.snapshotStates(dep)
		enc, err = encodeStates(j.pipe, states)
	})
	if err == nil {
		tr.phase(phasePersist, func(uint64) {
			sp := &savepointData{
				Workers:  1,
				SeqBlock: j.cfg.SourceSeqBlock,
				Elapsed:  j.Now(),
				Seqs:     make(map[string][]int64, len(j.seqs)),
				States:   enc,
			}
			for src, p := range j.seqs {
				sp.Seqs[src] = []int64{atomic.LoadInt64(p)}
			}
			err = store.Save(name, encodeSavepoint(sp))
		})
	}
	tr.phase(phaseRestart, func(uint64) { j.deployLocked(states) })
	j.winStart = j.Now()
	if h := j.obs.savepointHist(); h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
	if tr != nil {
		restartEnd := tr.now()
		first := j.dep.first
		go func() {
			at, ok := first.wait(firstRecordWait)
			tr.finish(restartEnd, at, ok)
		}()
	}
	return err
}

// restoreStates decodes persisted per-key state through the pipeline's
// StateCodecs. User codecs may panic on bytes they never wrote (a
// savepoint from an older state layout passes the CRC but not the
// codec); the recover turns that into a restore error instead of
// taking the process down.
func restoreStates(pipe *Pipeline, enc map[string]map[string][]byte) (states map[string]map[string]any, err error) {
	defer func() {
		if r := recover(); r != nil {
			states, err = nil, fmt.Errorf("streamrt: savepoint: decoding operator state: %v", r)
		}
	}()
	return decodeStates(pipe, enc)
}

// checkRestoreShape verifies a decoded savepoint fits the pipeline it
// is being restored into: every pipeline source has a persisted
// counter, and nothing in the file references a source or operator the
// pipeline does not have.
func checkRestoreShape(pipe *Pipeline, sp *savepointData) error {
	for _, src := range sortedKeys(pipe.sources) {
		if _, ok := sp.Seqs[src]; !ok {
			return fmt.Errorf("streamrt: savepoint: no sequence counter for source %q; savepoint is from a different pipeline", src)
		}
	}
	for _, src := range sortedKeys(sp.Seqs) {
		if _, ok := pipe.sources[src]; !ok {
			return fmt.Errorf("streamrt: savepoint: sequence counter for unknown source %q", src)
		}
	}
	for _, op := range sortedKeys(sp.States) {
		if pipe.ops[op] == nil {
			return fmt.Errorf("streamrt: savepoint: state for unknown operator %q", op)
		}
	}
	return nil
}

// NewJobFromSavepoint deploys a fresh single-process Job from a
// savepoint: keyed state repartitions under initial (which may differ
// from the parallelism the savepoint was cut at), source counters
// resume the sequence space exactly where the cut left it, and job
// time continues from the persisted elapsed time so rate schedules
// pick up where they stopped.
func NewJobFromSavepoint(p *Pipeline, initial dataflow.Parallelism, cfg Config, store CheckpointStore, name string) (*Job, error) {
	if p == nil {
		return nil, errors.New("streamrt: nil pipeline")
	}
	if store == nil {
		return nil, errors.New("streamrt: nil checkpoint store")
	}
	if err := initial.Validate(p.graph); err != nil {
		return nil, err
	}
	data, err := store.Load(name)
	if err != nil {
		return nil, fmt.Errorf("streamrt: loading savepoint %q: %w", name, err)
	}
	sp, err := decodeSavepoint(data)
	if err != nil {
		return nil, err
	}
	if sp.Workers != 1 {
		return nil, fmt.Errorf("streamrt: savepoint was cut over %d worker processes; restore it with NewClusterFromSavepoint", sp.Workers)
	}
	if err := checkRestoreShape(p, sp); err != nil {
		return nil, err
	}
	states, err := restoreStates(p, sp.States)
	if err != nil {
		return nil, err
	}
	j := &Job{
		pipe:     p,
		cfg:      cfg.withDefaults(),
		epoch:    time.Now().Add(-time.Duration(sp.Elapsed * float64(time.Second))),
		cur:      initial.Clone(),
		seqs:     make(map[string]*int64),
		winStart: sp.Elapsed,
	}
	// The block size participates in nothing single-process (seqNW ==
	// 1), but keep it so a later distributed hand-off of the config
	// stays consistent with the file.
	j.cfg.SourceSeqBlock = sp.SeqBlock
	for src := range p.sources {
		c := sp.Seqs[src][0]
		j.seqs[src] = &c
	}
	if j.cfg.Metrics != nil {
		j.obs = newJobObs(j.cfg.Metrics, j.pipe, j.Rescales)
	}
	j.mu.Lock()
	j.deployLocked(states)
	j.mu.Unlock()
	return j, nil
}

// clusterSeqs assembles the per-rank source counters of a just-drained
// cluster generation: rank r of a source is the r'th (sorted) worker
// hosting it under the generation's placement, and its counter is that
// worker's drained local count.
func clusterSeqs(pipe *Pipeline, par dataflow.Parallelism, workers int, resps []drainResp) map[string][]int64 {
	assign := PlanPlacement(par, workers)
	out := make(map[string][]int64, len(pipe.sources))
	for src := range pipe.sources {
		hosts := hostingWorkers(assign[src])
		counters := make([]int64, len(hosts))
		for rank, w := range hosts {
			counters[rank] = resps[w].Seqs[src]
		}
		out[src] = counters
	}
	return out
}

// Savepoint drains the cluster, merges the workers' encoded state and
// sequence counters, persists the blob under name, and redeploys the
// current parallelism — Cluster.Rescale with a persist phase, traced
// and observed like the single-process Job.Savepoint. As there, a
// failed store write returns the error after the cluster is back up.
func (c *Cluster) Savepoint(store CheckpointStore, name string) error {
	if store == nil {
		return errors.New("streamrt: nil checkpoint store")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return ErrStopped
	}
	c.savepoints++
	tr := c.obs.beginSavepointTrace(c.savepoints)
	t0 := time.Now()
	var resps []drainResp
	var err error
	tr.phase(phaseDrain, func(parent uint64) { resps, err = c.drainWorkersLocked(tr, parent) })
	if err != nil {
		return err
	}
	var states map[string]map[string][]byte
	var perr error
	tr.phase(phaseSnapshot, func(uint64) { states = mergeEncStates(resps) })
	tr.phase(phasePersist, func(uint64) {
		sp := &savepointData{
			Workload: c.workload,
			Workers:  len(c.ctrls),
			SeqBlock: c.cfg.SourceSeqBlock,
			Elapsed:  c.Now(),
			Seqs:     clusterSeqs(c.pipe, c.cur, len(c.ctrls), resps),
			States:   states,
		}
		perr = store.Save(name, encodeSavepoint(sp))
	})
	if err := c.deployLocked(c.cur, states, nil, tr); err != nil {
		return err
	}
	c.rescalesDone(tr)
	if h := c.obs.savepointHist(); h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
	return perr
}

// rescalesDone is the shared tail of a cluster redeploy: restart the
// observation window and resolve the new generation's first record
// into the trace off the lock. Callers hold c.mu.
func (c *Cluster) rescalesDone(tr *rescaleTrace) {
	c.winStart = c.Now()
	if tr != nil {
		restartEnd := tr.now()
		gen := c.gen
		go c.resolveFirstRecord(tr, restartEnd, gen)
	}
}

// NewClusterFromSavepoint deploys a fresh distributed cluster from a
// savepoint. The worker count must match the savepoint's — source
// sequence striping is per worker process, so a different count would
// re-stripe the sequence space and replay or skip records. Operator
// parallelism is free to differ (state repartitions through the
// routing tables), as long as each source keeps the same number of
// hosting workers; the striping block size is taken from the file.
func NewClusterFromSavepoint(pipe *Pipeline, workload string, initial dataflow.Parallelism, addrs []string, cfg Config, store CheckpointStore, name string) (*Cluster, error) {
	if pipe == nil {
		return nil, errors.New("streamrt: nil pipeline")
	}
	if store == nil {
		return nil, errors.New("streamrt: nil checkpoint store")
	}
	if err := initial.Validate(pipe.graph); err != nil {
		return nil, err
	}
	if err := validateDistributed(pipe, initial, len(addrs)); err != nil {
		return nil, err
	}
	data, err := store.Load(name)
	if err != nil {
		return nil, fmt.Errorf("streamrt: loading savepoint %q: %w", name, err)
	}
	sp, err := decodeSavepoint(data)
	if err != nil {
		return nil, err
	}
	if sp.Workload != workload {
		return nil, fmt.Errorf("streamrt: savepoint holds workload %q, not %q", sp.Workload, workload)
	}
	if sp.Workers != len(addrs) {
		return nil, fmt.Errorf("streamrt: savepoint was cut over %d workers; restoring over %d would re-stripe source sequences", sp.Workers, len(addrs))
	}
	if err := checkRestoreShape(pipe, sp); err != nil {
		return nil, err
	}
	assign := PlanPlacement(initial, len(addrs))
	for _, src := range sortedKeys(pipe.sources) {
		if hosts := hostingWorkers(assign[src]); len(hosts) != len(sp.Seqs[src]) {
			return nil, fmt.Errorf("streamrt: restore changes source %q from %d to %d hosting workers; sequence stripes would not line up", src, len(sp.Seqs[src]), len(hosts))
		}
	}
	c := &Cluster{
		pipe:     pipe,
		workload: workload,
		cfg:      cfg.withDefaults(),
		addrs:    addrs,
		cur:      initial.Clone(),
		linkSeen: make(map[string]*linkMirror),
	}
	c.cfg.SourceSeqBlock = sp.SeqBlock
	c.epoch = time.Now().Add(-time.Duration(sp.Elapsed * float64(time.Second)))
	c.winStart = sp.Elapsed
	if c.cfg.Metrics != nil {
		c.obs = newJobObs(c.cfg.Metrics, pipe, c.Rescales)
	}
	for i, addr := range addrs {
		cc, err := dialCtrl(i, addr)
		if err != nil {
			c.closeCtrls()
			return nil, err
		}
		c.ctrls = append(c.ctrls, cc)
	}
	if err := c.deployLocked(initial, sp.States, sp.Seqs, nil); err != nil {
		c.closeCtrls()
		return nil, err
	}
	return c, nil
}
