// Rescale trace acceptance: one rescale must yield one causally
// ordered span timeline — every phase present, worker child spans
// inside their coordinator parents, monotone non-overlapping top-level
// phase bounds — and feed the reconfiguration-cost histograms.
package streamrt_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/obs"
	"ds2/internal/streamrt"
)

// waitCompleteTrace polls until the latest retained rescale trace is
// complete (the trailing first_record span lands from a finisher
// goroutine after Rescale returns).
func waitCompleteTrace(t *testing.T, traces func() []obs.TraceView) obs.TraceView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		vs := traces()
		if n := len(vs); n > 0 && vs[n-1].Complete {
			return vs[n-1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("rescale trace never completed")
	return obs.TraceView{}
}

// requirePhases asserts the named top-level phases are all present,
// coordinator-owned, and laid out back-to-back: each phase starts no
// earlier than the previous one ended.
func requirePhases(t *testing.T, v obs.TraceView, names ...string) map[string]obs.Span {
	t.Helper()
	got := make(map[string]obs.Span, len(names))
	prevEnd := int64(-1)
	for _, name := range names {
		s, ok := v.Span(name)
		if !ok {
			t.Fatalf("trace %s: phase %q missing (spans: %v)", v.ID, name, spanNames(v))
		}
		if s.Worker != -1 {
			t.Errorf("phase %q: worker = %d, want -1 (coordinator)", name, s.Worker)
		}
		if s.Parent != 0 {
			t.Errorf("phase %q: parent = %d, want 0 (top level)", name, s.Parent)
		}
		if s.EndNs < s.StartNs {
			t.Errorf("phase %q: end %d before start %d", name, s.EndNs, s.StartNs)
		}
		if s.StartNs < prevEnd {
			t.Errorf("phase %q starts at %d, overlapping previous phase ending at %d", name, s.StartNs, prevEnd)
		}
		prevEnd = s.EndNs
		got[name] = s
	}
	return got
}

func spanNames(v obs.TraceView) []string {
	names := make([]string, len(v.Spans))
	for i, s := range v.Spans {
		names[i] = s.Name
	}
	return names
}

// requireChild asserts one span exists with the given name parented
// under parent, contained in its bounds, and owned by worker.
func requireChild(t *testing.T, v obs.TraceView, name string, parent obs.Span, worker int) obs.Span {
	t.Helper()
	var s obs.Span
	ok := false
	for _, c := range v.Spans {
		if c.Name == name && c.Parent == parent.ID {
			s, ok = c, true
			break
		}
	}
	if !ok {
		t.Fatalf("trace %s: no span %q under %s#%d (spans: %v)", v.ID, name, parent.Name, parent.ID, spanNames(v))
	}
	if s.Worker != worker {
		t.Errorf("span %q: worker = %d, want %d", name, s.Worker, worker)
	}
	if s.StartNs < parent.StartNs || s.EndNs > parent.EndNs {
		t.Errorf("span %q [%d,%d] outside parent %q [%d,%d]",
			name, s.StartNs, s.EndNs, parent.Name, parent.StartNs, parent.EndNs)
	}
	return s
}

func TestJobRescaleTraceTimeline(t *testing.T) {
	reg := obs.NewRegistry()
	pipe := distWordcountish(t, func(float64) float64 { return 8000 }, 0, 0, 0)
	job, err := streamrt.NewJob(pipe,
		dataflow.Parallelism{"src": 1, "split": 1, "count": 1},
		streamrt.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	time.Sleep(100 * time.Millisecond)
	if err := job.Rescale(dataflow.Parallelism{"src": 1, "split": 2, "count": 2}); err != nil {
		t.Fatal(err)
	}
	v := waitCompleteTrace(t, job.RescaleTraces)
	if v.ID != "rescale-1" {
		t.Errorf("trace id = %q, want rescale-1", v.ID)
	}
	// A single-process rescale times drain → snapshot → restart, then
	// the asynchronous first_record tail.
	ph := requirePhases(t, v, "drain", "snapshot", "restart", "first_record")
	if fr := ph["first_record"]; fr.StartNs < ph["restart"].EndNs {
		t.Errorf("first_record starts at %d, before restart ended at %d", fr.StartNs, ph["restart"].EndNs)
	}
	if v.DurationNs < ph["first_record"].EndNs {
		t.Errorf("duration %d < last span end %d", v.DurationNs, ph["first_record"].EndNs)
	}

	var page strings.Builder
	reg.WritePrometheus(&page)
	for _, fam := range []string{"streamrt_rescale_phase_seconds", "streamrt_rescale_downtime_seconds"} {
		if !strings.Contains(page.String(), fam+"_count") {
			t.Errorf("metrics page missing %s samples", fam)
		}
	}
	if !strings.Contains(page.String(), `streamrt_rescale_phase_seconds_count{phase="drain"}`) {
		t.Error("phase histogram missing drain label")
	}
}

func TestClusterRescaleTraceTimeline(t *testing.T) {
	const workers = 2
	reg := obs.NewRegistry()
	pipe := distWordcountish(t, func(float64) float64 { return 8000 }, 0, 0, 0)
	addrs := startWorkers(t, workers, map[string]*streamrt.Pipeline{"wc": pipe})
	cluster, err := streamrt.NewCluster(pipe, "wc",
		dataflow.Parallelism{"src": 1, "split": 2, "count": 2}, addrs,
		streamrt.Config{Metrics: reg, SourceSeqBlock: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	defer cluster.Stop()

	time.Sleep(150 * time.Millisecond)
	if err := cluster.Rescale(dataflow.Parallelism{"src": 1, "split": 3, "count": 4}); err != nil {
		t.Fatal(err)
	}
	v := waitCompleteTrace(t, cluster.RescaleTraces)

	// All six phases, in order, none overlapping.
	ph := requirePhases(t, v,
		"drain", "snapshot", "router_rebuild", "transfer", "restart", "first_record")

	// Each worker contributes RPC child spans under drain/transfer/
	// restart, and its handler-side spans nest under the RPC span.
	for w := 0; w < workers; w++ {
		d := requireChild(t, v, fmt.Sprintf("drain/w%d", w), ph["drain"], w)
		requireChild(t, v, "drain/teardown", d, d.Worker)
		tr := requireChild(t, v, fmt.Sprintf("transfer/w%d", w), ph["transfer"], w)
		requireChild(t, v, "deploy/build", tr, tr.Worker)
		requireChild(t, v, fmt.Sprintf("restart/w%d", w), ph["restart"], w)
	}
	// Every handler-side span appears once per worker.
	for _, handler := range []string{"drain/teardown", "drain/encode_state", "deploy/decode_state", "deploy/build"} {
		n := 0
		for _, s := range v.Spans {
			if s.Name == handler {
				n++
				if s.Worker < 0 || s.Worker >= workers {
					t.Errorf("handler span %q: worker = %d out of range", handler, s.Worker)
				}
			}
		}
		if n != workers {
			t.Errorf("handler span %q: %d copies, want one per worker (%d)", handler, n, workers)
		}
	}
}

// TestClusterRescaleTraceRingAndTotal pins that repeated rescales
// accumulate distinct retained timelines.
func TestClusterRescaleTraceRingAndTotal(t *testing.T) {
	reg := obs.NewRegistry()
	pipe := distWordcountish(t, func(float64) float64 { return 8000 }, 0, 0, 0)
	addrs := startWorkers(t, 2, map[string]*streamrt.Pipeline{"wc": pipe})
	cluster, err := streamrt.NewCluster(pipe, "wc",
		dataflow.Parallelism{"src": 1, "split": 2, "count": 2}, addrs,
		streamrt.Config{Metrics: reg, SourceSeqBlock: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	defer cluster.Stop()

	pars := []dataflow.Parallelism{
		{"src": 1, "split": 3, "count": 3},
		{"src": 1, "split": 1, "count": 2},
	}
	for _, p := range pars {
		time.Sleep(100 * time.Millisecond)
		if err := cluster.Rescale(p); err != nil {
			t.Fatal(err)
		}
	}
	vs := cluster.RescaleTraces()
	if len(vs) != len(pars) {
		t.Fatalf("retained %d traces, want %d", len(vs), len(pars))
	}
	for i, v := range vs {
		if want := fmt.Sprintf("rescale-%d", i+1); v.ID != want {
			t.Errorf("trace %d: id = %q, want %q", i, v.ID, want)
		}
	}
}
